// JSON-driven simulation driver (docs/scenarios.md).
//
// Single-run mode: validate a config, run it (multi-rank via the
// simulated MPI world when run.ranks > 1), stream checkpoints/VTK per
// the output policy, and print the metrics report as JSON.
//
// Daemon mode (--serve K): submit every config to a svc::SimulationServer
// that multiplexes up to K jobs over one shared modeled device, fusing
// kernel launches across jobs, and print the service status report.
//
//   ./ramr_run --config problem.json [--config more.json ...]
//   ./ramr_run --serve 4 --config a.json --config b.json ...
//   ./ramr_run --serve 4 --manifest state.json   # resume a stopped server
//   ./ramr_run --print-config problem.json   # effective config, then exit
//   ./ramr_run --list-problems
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "app/problem_registry.hpp"
#include "app/simulation.hpp"
#include "app/vtk_writer.hpp"
#include "cfg/config.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "svc/server.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open config file \"%s\"\n",
                 path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string job_name(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

/// One rank's slice of a single-run job: advance with interval outputs.
void run_with_outputs(ramr::app::Simulation& sim,
                      const ramr::cfg::RunConfig& config, int rank) {
  const ramr::cfg::RunBudget& budget = config.run;
  const ramr::cfg::OutputPolicy& out = config.output;
  const auto write = [&](bool final_output) {
    if (out.basename.empty()) {
      return;
    }
    const std::string prefix =
        out.basename + "_step" + std::to_string(sim.step_count());
    if (out.checkpoint_interval > 0 &&
        (final_output || sim.step_count() % out.checkpoint_interval == 0)) {
      sim.save_checkpoint(prefix + ".ckpt");
    }
    if (rank == 0 && out.vtk_interval > 0 &&
        (final_output || sim.step_count() % out.vtk_interval == 0)) {
      ramr::app::write_vtk(sim, prefix,
                           {{"density", sim.fields().density0},
                            {"energy", sim.fields().energy0}});
    }
  };
  for (int s = 0; s < budget.max_steps && sim.time() < budget.end_time; ++s) {
    sim.step();
    if (s + 1 < budget.max_steps && sim.time() < budget.end_time) {
      write(/*final_output=*/false);
    }
  }
  write(/*final_output=*/true);
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    std::fprintf(stderr, "error: cannot open \"%s\" for writing\n",
                 path.c_str());
    std::exit(2);
  }
  os << text;
}

/// Observability artifacts of one rank: the Chrome trace events (when
/// tracing) and the JSONL metric stream (when sampling). Collected per
/// rank inside the world, written once after it joins.
void collect_observability(ramr::app::Simulation& sim, int rank,
                           std::vector<ramr::cfg::Json>* trace_events,
                           std::vector<std::string>* metrics_lines) {
  if (ramr::obs::TraceRecorder* rec = sim.trace_recorder()) {
    (*trace_events)[static_cast<std::size_t>(rank)] =
        ramr::obs::chrome_trace_events(*rec, rank);
  }
  if (rank == 0) {
    if (ramr::obs::MetricsRegistry* reg = sim.metrics_registry()) {
      *metrics_lines = reg->jsonl();
    }
  }
}

void write_observability(const ramr::cfg::RunConfig& config,
                         std::vector<ramr::cfg::Json> trace_events,
                         const std::vector<std::string>& metrics_lines) {
  const ramr::obs::ObservabilityConfig* oc = config.sim.observability.get();
  if (oc == nullptr) {
    return;
  }
  if (oc->trace && !oc->trace_path.empty()) {
    // Drop ranks that never recorded (tracing disabled mid-flight is
    // impossible today, but keep the export robust to empty slots).
    std::vector<ramr::cfg::Json> present;
    for (ramr::cfg::Json& e : trace_events) {
      if (e.is_array()) {
        present.push_back(std::move(e));
      }
    }
    write_text_file(
        oc->trace_path,
        ramr::obs::chrome_trace_document(std::move(present)).dump() + "\n");
  }
  if (oc->metrics && !oc->metrics_path.empty()) {
    std::string text;
    for (const std::string& line : metrics_lines) {
      text += line;
      text += "\n";
    }
    write_text_file(oc->metrics_path, text);
  }
}

int run_single(const std::string& path) {
  const ramr::cfg::RunConfig config =
      ramr::cfg::parse_run_config_text(read_file(path));
  ramr::cfg::Json report;
  std::vector<ramr::cfg::Json> trace_events(
      static_cast<std::size_t>(config.run.ranks));
  std::vector<std::string> metrics_lines;
  if (config.run.ranks == 1) {
    ramr::app::Simulation sim(config.sim, nullptr);
    sim.initialize();
    run_with_outputs(sim, config, 0);
    report = ramr::svc::run_metrics_json(sim);
    collect_observability(sim, 0, &trace_events, &metrics_lines);
  } else {
    ramr::simmpi::World world(config.run.ranks, config.network);
    world.run([&](ramr::simmpi::Communicator& comm) {
      ramr::app::Simulation sim(config.sim, &comm);
      sim.initialize();
      run_with_outputs(sim, config, comm.rank());
      // Every rank builds the report: the summary totals inside it are
      // collective reductions. Rank 0 keeps the result.
      ramr::cfg::Json rank_report = ramr::svc::run_metrics_json(sim);
      if (comm.rank() == 0) {
        report = std::move(rank_report);
      }
      // Each rank writes only its own slot: no lock needed.
      collect_observability(sim, comm.rank(), &trace_events, &metrics_lines);
    });
  }
  write_observability(config, std::move(trace_events), metrics_lines);
  std::printf("%s\n", report.dump().c_str());
  return 0;
}

int run_server(int concurrency, const std::vector<std::string>& paths,
               const std::string& manifest, const std::string& metrics_out) {
  ramr::svc::ServerConfig sc;
  sc.max_concurrent_jobs = concurrency;
  sc.manifest_path = manifest;
  sc.metrics_out = metrics_out;
  ramr::svc::SimulationServer server(sc);
  // Unfinished jobs from a previous server instance come back first
  // (restored from their streamed checkpoints), then the new submissions.
  const int resumed = server.resume_from_manifest();
  if (resumed > 0) {
    std::fprintf(stderr, "resumed %d jobs from %s\n", resumed,
                 manifest.c_str());
  }
  for (const std::string& path : paths) {
    server.submit({job_name(path),
                   ramr::cfg::parse_run_config_text(read_file(path))});
  }
  server.run();
  std::printf("%s\n", server.status_json().dump().c_str());
  // Any failed job fails the invocation.
  for (int id = 0; id < server.queue().size(); ++id) {
    if (server.status(id).state == ramr::svc::JobState::kFailed) {
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> configs;
  std::string manifest;
  std::string metrics_out;
  int serve = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--config") {
      configs.push_back(next());
    } else if (arg == "--serve") {
      serve = std::atoi(next());
      if (serve < 1) {
        std::fprintf(stderr, "error: --serve needs a positive job count\n");
        return 2;
      }
    } else if (arg == "--manifest") {
      manifest = next();
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--print-config") {
      const ramr::cfg::RunConfig config =
          ramr::cfg::parse_run_config_text(read_file(next()));
      std::printf("%s\n", ramr::cfg::to_json(config).dump().c_str());
      return 0;
    } else if (arg == "--list-problems") {
      for (const std::string& name :
           ramr::app::ProblemRegistry::instance().names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else {
      std::fprintf(stderr,
                   "usage: ramr_run [--serve K [--manifest state.json] "
                   "[--metrics-out metrics.prom]] "
                   "--config file.json [--config ...]\n"
                   "       ramr_run --print-config file.json\n"
                   "       ramr_run --list-problems\n");
      return 2;
    }
  }
  if (manifest.empty() ? configs.empty() : serve < 1) {
    std::fprintf(stderr, manifest.empty()
                             ? "error: no --config given\n"
                             : "error: --manifest requires --serve\n");
    return 2;
  }
  if (!metrics_out.empty() && serve < 1) {
    std::fprintf(stderr, "error: --metrics-out requires --serve\n");
    return 2;
  }
  try {
    if (serve > 0) {
      return run_server(serve, configs, manifest, metrics_out);
    }
    int rc = 0;
    for (const std::string& path : configs) {
      rc |= run_single(path);
    }
    return rc;
  } catch (const ramr::util::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
