// Sod shock tube (paper §V-A workload) validated against the exact
// Riemann solution.
//
// Runs the GPU-resident AMR simulation to t = 0.15, extracts the density
// profile along the tube from the finest available level at each
// position, and compares with the analytic solution: shock, contact and
// rarefaction positions and levels.
//
//   ./sod_shock_tube [nx]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "app/simulation.hpp"
#include "hydro/riemann.hpp"
#include "pdat/cuda/cuda_data.hpp"

namespace {

/// Density along the horizontal midline, sampled from the finest level
/// covering each x position.
std::vector<double> midline_density(ramr::app::Simulation& sim, int samples) {
  auto& h = sim.hierarchy();
  std::vector<double> profile(static_cast<std::size_t>(samples), -1.0);
  for (int l = h.num_levels() - 1; l >= 0; --l) {
    auto& level = h.level(l);
    const ramr::mesh::Box domain = level.domain_box();
    const int jmid = (domain.lower().j + domain.upper().j) / 2;
    for (const auto& patch : level.local_patches()) {
      if (jmid < patch->box().lower().j || jmid > patch->box().upper().j) {
        continue;
      }
      auto& rho = patch->typed_data<ramr::pdat::cuda::CudaData>(
          sim.fields().density0);
      const auto plane = rho.component(0).download_plane();
      const ramr::mesh::Box ib = rho.component(0).index_box();
      ramr::util::ConstView v(plane.data(), ib.lower().i, ib.lower().j,
                              ib.width(), ib.height());
      for (int i = patch->box().lower().i; i <= patch->box().upper().i; ++i) {
        const double x = (i + 0.5) / domain.width();  // unit tube
        const int s = std::min(samples - 1,
                               static_cast<int>(x * samples));
        profile[static_cast<std::size_t>(s)] = v(i, jmid);
      }
    }
  }
  return profile;
}

}  // namespace

int main(int argc, char** argv) {
  ramr::app::SimulationConfig cfg;
  cfg.problem = "sod";
  cfg.nx = argc > 1 ? std::atoi(argv[1]) : 256;
  cfg.ny = 64;
  cfg.max_levels = 3;
  cfg.regrid_interval = 5;
  cfg.device = ramr::vgpu::tesla_k20x();

  ramr::app::Simulation sim(cfg, nullptr);
  sim.initialize();
  const double t_end = 0.15;
  sim.run(100000, t_end);
  std::printf("Sod shock tube: %d x %d base grid, 3 levels, t = %.4f "
              "(%d steps)\n\n",
              cfg.nx, cfg.ny, sim.time(), sim.step_count());

  const int samples = 64;
  const auto profile = midline_density(sim, samples);
  const ramr::hydro::RiemannSolution exact(ramr::hydro::sod_left(),
                                           ramr::hydro::sod_right());

  std::printf("    x      rho(AMR)   rho(exact)   |err|\n");
  double max_err = 0.0;
  double l1 = 0.0;
  int counted = 0;
  for (int s = 0; s < samples; ++s) {
    const double x = (s + 0.5) / samples;
    const double sim_rho = profile[static_cast<std::size_t>(s)];
    const double exact_rho = exact.sample((x - 0.5) / sim.time()).rho;
    if (sim_rho < 0.0) {
      continue;
    }
    const double err = std::fabs(sim_rho - exact_rho);
    max_err = std::max(max_err, err);
    l1 += err;
    ++counted;
    if (s % 4 == 1) {
      // ASCII bar of the simulated density.
      const int bar = static_cast<int>(sim_rho * 40);
      std::printf("  %.3f   %8.4f   %8.4f   %7.4f  |%s\n", x, sim_rho,
                  exact_rho, err, std::string(bar, '#').c_str());
    }
  }
  std::printf("\nL1 density error: %.4f   max pointwise error: %.4f\n",
              l1 / counted, max_err);
  std::printf("(pointwise error peaks at the discontinuities, where any\n"
              "finite-volume scheme smears over a few finest-level cells)\n");
  std::printf("\nexact star state: p* = %.5f, u* = %.5f (textbook: 0.30313, "
              "0.92745)\n",
              exact.star_pressure(), exact.star_velocity());
  return 0;
}
