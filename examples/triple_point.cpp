// Triple-point shock interaction (paper §V-B workload): a strong shock
// travels left to right, generating vorticity where the three material
// regions meet; the AMR hierarchy follows the rolling interface.
//
// Prints an ASCII density map with the refined regions overlaid, plus
// patch statistics over time — the moving-patch behaviour the paper's
// weak-scaling study stresses.
//
//   ./triple_point [steps]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "app/simulation.hpp"
#include "pdat/cuda/cuda_data.hpp"

namespace {

void print_map(ramr::app::Simulation& sim) {
  auto& h = sim.hierarchy();
  const auto& l0 = h.level(0);
  const ramr::mesh::Box domain = l0.domain_box();
  const int w = 100;
  const int rows = 24;

  // Density shading from level 0; refinement overlay from finer levels.
  std::vector<std::string> canvas(rows, std::string(w, ' '));
  for (const auto& patch : l0.local_patches()) {
    auto& rho =
        patch->typed_data<ramr::pdat::cuda::CudaData>(sim.fields().density0);
    const auto plane = rho.component(0).download_plane();
    const ramr::mesh::Box ib = rho.component(0).index_box();
    ramr::util::ConstView v(plane.data(), ib.lower().i, ib.lower().j,
                            ib.width(), ib.height());
    for (int j = patch->box().lower().j; j <= patch->box().upper().j; ++j) {
      for (int i = patch->box().lower().i; i <= patch->box().upper().i; ++i) {
        const int cx = i * w / domain.width();
        const int cy = (domain.upper().j - j) * rows / domain.height();
        static const char shades[] = " .:-=+*%@";
        const double d = v(i, j);
        // A non-finite density would make the cast below undefined and
        // the index wild; render it as '?' instead of crashing.
        char c = '?';
        if (std::isfinite(d)) {
          const int shade =
              std::max(0, std::min(8, static_cast<int>(d / 1.5 * 8)));
          c = shades[shade];
        }
        canvas[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] = c;
      }
    }
  }
  // Overlay: mark cells covered by the finest level with its outline.
  if (h.num_levels() > 1) {
    const auto& fine = h.level(h.finest_level_number());
    const auto r = fine.ratio_to_level_zero();
    for (const auto& b : fine.boxes().boxes()) {
      const ramr::mesh::Box cb = b.coarsen(r);
      for (int j = cb.lower().j; j <= cb.upper().j; ++j) {
        for (int i = cb.lower().i; i <= cb.upper().i; ++i) {
          const int cx = i * w / domain.width();
          const int cy = (domain.upper().j - j) * rows / domain.height();
          if (cy >= 0 && cy < rows && cx >= 0 && cx < w) {
            char& c = canvas[static_cast<std::size_t>(cy)]
                            [static_cast<std::size_t>(cx)];
            if (c == ' ' || c == '.') {
              c = 'o';
            }
          }
        }
      }
    }
  }
  for (const auto& row : canvas) {
    std::printf("|%s|\n", row.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 120;
  ramr::app::SimulationConfig cfg;
  cfg.problem = "triple_point";
  cfg.nx = 224;  // 7 x 3 domain
  cfg.ny = 96;
  cfg.max_levels = 3;
  cfg.regrid_interval = 10;
  cfg.device = ramr::vgpu::tesla_k20x();

  ramr::app::Simulation sim(cfg, nullptr);
  sim.initialize();

  std::printf("Triple point: 7x3 domain, %dx%d base grid, 3 levels\n\n",
              cfg.nx, cfg.ny);
  std::printf("step  time     levels  patches  cells (per level)\n");
  const auto report = [&]() {
    auto& h = sim.hierarchy();
    std::size_t patches = 0;
    std::string cells;
    for (int l = 0; l < h.num_levels(); ++l) {
      patches += h.level(l).patch_count();
      cells += (l ? " / " : "") +
               std::to_string(static_cast<long long>(h.level(l).total_cells()));
    }
    std::printf("%4d  %.4f  %6d  %7zu  %s\n", sim.step_count(), sim.time(),
                h.num_levels(), patches, cells.c_str());
  };
  report();
  for (int s = 0; s < steps; ++s) {
    sim.step();
    if ((s + 1) % (steps / 4) == 0) {
      report();
    }
  }

  std::printf("\ndensity map (shades) with finest-level coverage ('o'):\n");
  print_map(sim);

  const auto sum = sim.composite_summary();
  std::printf("\nconservation: mass %.10f, internal+kinetic %.10f\n", sum.mass,
              sum.internal_energy + sum.kinetic_energy);
  return 0;
}
