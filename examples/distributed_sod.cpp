// Distributed run: the same Sod problem on multiple (simulated) MPI
// ranks, one K20x each, demonstrating the cross-node GPU data path of
// the paper (device pack -> PCIe -> MPI -> PCIe -> device unpack) and
// that the distributed answer matches the serial one.
//
//   ./distributed_sod [ranks]
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "app/simulation.hpp"
#include "perf/machine.hpp"

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  ramr::app::SimulationConfig cfg;
  cfg.problem = "sod";
  cfg.nx = 192;
  cfg.ny = 192;
  cfg.max_levels = 3;
  cfg.regrid_interval = 5;
  cfg.max_patch_cells = 48 * 48;
  cfg.device = ramr::perf::ipa().gpu_spec;
  const int steps = 25;

  // Serial reference.
  ramr::app::Simulation serial(cfg, nullptr);
  serial.initialize();
  serial.run(steps);
  const auto ref = serial.composite_summary();

  std::printf("Distributed Sod on %d ranks (one K20x each, FDR IB "
              "model)\n\n", ranks);
  struct RankReport {
    std::int64_t cells = 0;
    std::size_t patches = 0;
    double hydro = 0.0;
    double boundary = 0.0;
    std::uint64_t pcie_bytes = 0;
  };
  std::vector<RankReport> reports(static_cast<std::size_t>(ranks));
  ramr::hydro::FieldSummary dist;

  std::mutex m;
  ramr::simmpi::World world(ranks, ramr::perf::ipa().network);
  world.run([&](ramr::simmpi::Communicator& comm) {
    ramr::app::Simulation sim(cfg, &comm);
    sim.initialize();
    sim.run(steps);
    const auto s = sim.composite_summary();
    RankReport r;
    for (int l = 0; l < sim.hierarchy().num_levels(); ++l) {
      r.cells += sim.hierarchy().level(l).local_cells();
      r.patches += sim.hierarchy().level(l).local_patches().size();
    }
    r.hydro = sim.clock().component("hydro");
    r.boundary = sim.clock().component("boundary");
    r.pcie_bytes = sim.device().transfers().total_bytes();
    std::lock_guard<std::mutex> lock(m);
    reports[static_cast<std::size_t>(comm.rank())] = r;
    if (comm.rank() == 0) {
      dist = s;
    }
  });

  std::printf("rank   patches  local cells   hydro (s)  boundary (s)  PCIe "
              "bytes\n");
  for (int r = 0; r < ranks; ++r) {
    const auto& rep = reports[static_cast<std::size_t>(r)];
    std::printf("%4d   %7zu  %11lld   %9.4f  %12.4f  %10llu\n", r,
                rep.patches, static_cast<long long>(rep.cells), rep.hydro,
                rep.boundary,
                static_cast<unsigned long long>(rep.pcie_bytes));
  }
  std::printf("\nconservation check (distributed vs serial):\n");
  std::printf("  mass:   %.15f vs %.15f\n", dist.mass, ref.mass);
  std::printf("  energy: %.15f vs %.15f\n",
              dist.internal_energy + dist.kinetic_energy,
              ref.internal_energy + ref.kinetic_energy);
  std::printf("\nGhost data between ranks takes the paper's path: device "
              "pack kernel ->\nPCIe -> MPI -> PCIe -> device unpack kernel "
              "(Fig. 4).\n");
  return 0;
}
