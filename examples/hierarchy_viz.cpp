// Hierarchy visualisation (paper Fig. 1): prints the adaptive mesh as an
// ASCII map — each position shows the finest level covering it — and the
// G0/G1/G2 patch inventory, before and after the solution evolves.
//
//   ./hierarchy_viz [steps]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "app/simulation.hpp"

namespace {

void print_hierarchy(ramr::app::Simulation& sim) {
  auto& h = sim.hierarchy();
  const ramr::mesh::Box domain = h.level(0).domain_box();
  const int w = 64;
  const int rows = 24;
  std::vector<std::string> canvas(rows, std::string(w, '.'));
  for (int l = 1; l < h.num_levels(); ++l) {
    const auto& level = h.level(l);
    const auto r = level.ratio_to_level_zero();
    const char mark = static_cast<char>('0' + l);
    for (const auto& b : level.boxes().boxes()) {
      const ramr::mesh::Box cb = b.coarsen(r);
      for (int j = cb.lower().j; j <= cb.upper().j; ++j) {
        for (int i = cb.lower().i; i <= cb.upper().i; ++i) {
          const int cx = i * w / domain.width();
          const int cy = (domain.upper().j - j) * rows / domain.height();
          if (cx >= 0 && cx < w && cy >= 0 && cy < rows) {
            char& c =
                canvas[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)];
            c = std::max(c, mark);
          }
        }
      }
    }
  }
  std::printf("+%s+\n", std::string(w, '-').c_str());
  for (const auto& row : canvas) {
    std::printf("|%s|\n", row.c_str());
  }
  std::printf("+%s+\n", std::string(w, '-').c_str());
  std::printf("('.' = level 0 only; digit = finest level covering the "
              "position)\n\n");
  std::printf("%-7s %-9s %-10s %-12s %s\n", "level", "patches", "cells",
              "dx", "coverage");
  for (int l = 0; l < h.num_levels(); ++l) {
    const auto& level = h.level(l);
    std::printf("G%-6d %-9zu %-10lld %-12.6f %5.1f%%\n", l,
                level.patch_count(),
                static_cast<long long>(level.total_cells()), level.dx()[0],
                100.0 * level.total_cells() / level.domain_box().size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 60;
  ramr::app::SimulationConfig cfg;
  cfg.problem = "sod";
  cfg.nx = 128;
  cfg.ny = 128;
  cfg.max_levels = 3;
  cfg.regrid_interval = 5;
  cfg.device = ramr::vgpu::tesla_k20x();

  ramr::app::Simulation sim(cfg, nullptr);
  sim.initialize();
  std::printf("Initial hierarchy (the Sod interface at x = 0.5 is "
              "refined):\n\n");
  print_hierarchy(sim);

  sim.run(steps);
  std::printf("\nAfter %d steps (t = %.4f) — the patches have followed the "
              "waves:\n\n",
              sim.step_count(), sim.time());
  print_hierarchy(sim);
  return 0;
}
