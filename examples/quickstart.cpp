// Quickstart: the smallest complete resident-AMR run.
//
// Builds a GPU-resident CleverLeaf simulation of the Sod shock tube on a
// 3-level adaptive hierarchy, advances it, and prints the hierarchy
// structure, conservation diagnostics and the modeled time breakdown.
//
//   ./quickstart
#include <cstdio>

#include "app/simulation.hpp"

int main() {
  // 1. Describe the run: problem, base grid, AMR depth, backend.
  ramr::app::SimulationConfig config;
  config.problem = "sod";
  config.nx = 128;
  config.ny = 128;
  config.max_levels = 3;       // as in the paper's experiments
  config.ratio = 2;            // refinement ratio between levels
  config.regrid_interval = 10; // steps between hierarchy rebuilds
  config.device = ramr::vgpu::tesla_k20x();  // the resident GPU backend

  // 2. Create and initialise (tags the shock interface, builds levels).
  ramr::app::Simulation sim(config, /*comm=*/nullptr);
  sim.initialize();

  std::printf("initial hierarchy:\n");
  for (int l = 0; l < sim.hierarchy().num_levels(); ++l) {
    const auto& level = sim.hierarchy().level(l);
    std::printf("  level %d: %3zu patches, %8lld cells, dx = %.5f\n", l,
                level.patch_count(),
                static_cast<long long>(level.total_cells()), level.dx()[0]);
  }

  // 3. Advance. All field data stays in (virtual) GPU memory; ghost
  //    exchange, interpolation and coarsening run as device kernels.
  const auto before = sim.composite_summary();
  sim.run(/*max_steps=*/50);
  const auto after = sim.composite_summary();

  std::printf("\nafter %d steps (t = %.4f):\n", sim.step_count(), sim.time());
  std::printf("  mass:            %.12f -> %.12f\n", before.mass, after.mass);
  std::printf("  internal energy: %.12f -> %.12f\n", before.internal_energy,
              after.internal_energy);
  std::printf("  kinetic energy:  %.12f -> %.12f\n", before.kinetic_energy,
              after.kinetic_energy);

  // 4. Where did the (modeled) time go? These are the components the
  //    paper's Figure 11 reports.
  std::printf("\nmodeled K20x time by component:\n");
  for (const auto& [name, seconds] : sim.clock().components()) {
    std::printf("  %-10s %8.4f s\n", name.c_str(), seconds);
  }
  std::printf("\nPCIe crossings: %llu (%llu bytes) — the residency story:\n"
              "only tags, dt scalars and sync staging ever leave the GPU.\n",
              static_cast<unsigned long long>(sim.device().transfers().total_count()),
              static_cast<unsigned long long>(sim.device().transfers().total_bytes()));
  return 0;
}
