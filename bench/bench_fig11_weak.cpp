// Figure 11: weak-scaling performance on Titan — triple-point shock
// interaction, 1 to 4,096 nodes (one K20x each), per-node work held
// constant, grind time (seconds per cell per step) split into the
// paper's components: Total, Hydrodynamics (kernels + boundary
// exchange), Synchronisation, Regridding; plus the timestep (global
// reduction) fraction quoted in the text.
//
// Method: node counts up to a cap (default 16, RAMR_WEAK_CAP to change)
// run for real as threaded ranks with the Gemini wire model; larger node
// counts extend the measured per-rank components analytically — hydro /
// boundary / sync stay constant per node (nearest-neighbour halos), the
// dt allreduce and the regrid tag gather grow with the log2(P) tree
// terms. Extrapolated rows are marked "(model)".
//
// Paper text anchors: at 1 node ~59% of runtime advances the simulation,
// <1% computes dt, ~1% synchronises; at 4,096 nodes 44% advances, 6%
// computes dt, 3% synchronises.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "app/simulation.hpp"
#include "perf/machine.hpp"
#include "perf/report.hpp"

namespace {

struct Components {
  double hydro = 0.0;     // kernels
  double boundary = 0.0;  // halo exchange
  double timestep = 0.0;  // dt kernels + allreduce
  double sync = 0.0;
  double regrid = 0.0;
  /// Cross-rank load imbalance (max/mean local cells) of the last level
  /// build — a partition quality, not a time, so it stays out of total().
  double imbalance = 1.0;
  double total() const { return hydro + boundary + timestep + sync + regrid; }
};

constexpr int kTile = 160;  // per-node coarse tile edge
constexpr int kSteps = 10;   // measured steps per run

/// Per-node coarse tile arrangement: a x b tiles with a*b = nodes.
void tiles(int nodes, int& a, int& b) {
  a = 1;
  b = nodes;
  for (int c = 1; c * c <= nodes; ++c) {
    if (nodes % c == 0) {
      a = c;
      b = nodes / c;
    }
  }
  if (a < b) {
    std::swap(a, b);  // wider than tall, like the 7:3 triple point
  }
}

/// Slowest rank's sync-vs-overlap step times of one real configuration.
struct StepTimes {
  double sync_s = 0.0;   ///< synchronous modeled seconds / step
  double async_s = 0.0;  ///< async-overlap comparable seconds / step
  double saved_s = 0.0;  ///< slowest async rank's overlap saving / step
};

/// Real distributed run; returns the slowest rank's per-step components
/// and the cells advanced per step. With `async` the run executes under
/// the timeline model (split-phase state exchange, network-lane wire
/// legs) and `step_out`/`saved_out` record the slowest rank's
/// comparable step time and overlap saving.
Components run_real(int nodes, const ramr::perf::Machine& m,
                    std::int64_t& cells_out, bool async = false,
                    double* step_out = nullptr, double* saved_out = nullptr) {
  int a = 1;
  int b = 1;
  tiles(nodes, a, b);
  ramr::app::SimulationConfig cfg;
  cfg.problem = "triple_point";
  cfg.nx = kTile * a;
  cfg.ny = kTile * b;
  cfg.max_levels = 3;
  cfg.ratio = 2;
  cfg.regrid_interval = 10;
  cfg.max_patch_cells = 96 * 96;
  cfg.min_patch_size = 8;
  cfg.device = m.gpu_spec;
  cfg.device.mem_bytes = 64ull << 30;
  cfg.async_overlap = async;

  std::mutex mu;
  Components worst;
  double worst_step = 0.0;
  double worst_saved = 0.0;
  std::int64_t cells = 0;
  ramr::simmpi::World world(nodes, m.network);
  world.run([&](ramr::simmpi::Communicator& comm) {
    ramr::app::Simulation sim(cfg, &comm);
    sim.initialize();
    sim.clock().reset();
    sim.run(kSteps);
    Components c;
    c.hydro = sim.clock().component("hydro") / kSteps;
    c.boundary = sim.clock().component("boundary") / kSteps;
    c.timestep = sim.clock().component("timestep") / kSteps;
    c.sync = sim.clock().component("sync") / kSteps;
    c.regrid = sim.clock().component("regrid") / kSteps;
    const auto& imbal = sim.gridding_stats().imbalance_history;
    c.imbalance = imbal.empty() ? 1.0 : imbal.back();
    const double step = sim.modeled_seconds() / kSteps;
    const double saved =
        sim.timeline() != nullptr
            ? sim.timeline()->overlap_seconds_saved() / kSteps
            : 0.0;
    const std::int64_t total_cells = sim.hierarchy().total_cells();
    std::lock_guard<std::mutex> lock(mu);
    if (c.total() > worst.total()) {
      worst = c;
    }
    if (step > worst_step) {
      worst_step = step;
      worst_saved = saved;
    }
    cells = total_cells;
  });
  cells_out = cells;
  if (step_out != nullptr) {
    *step_out = worst_step;
  }
  if (saved_out != nullptr) {
    *saved_out = worst_saved;
  }
  return worst;
}

/// Extends measured per-rank components from `base_nodes` to `nodes`:
/// per-node terms stay constant; tree collectives deepen with log2.
Components extrapolate(const Components& base, int base_nodes, int nodes,
                       const ramr::perf::Machine& m,
                       std::int64_t tag_bytes_per_rank) {
  Components c = base;
  const double depth_base = std::ceil(std::log2(static_cast<double>(base_nodes)));
  const double depth = std::ceil(std::log2(static_cast<double>(nodes)));
  const double extra_depth = depth - depth_base;
  // dt allreduce: one per step, 2*log2(P) message latencies.
  c.timestep += 2.0 * extra_depth * m.network.message_time(sizeof(double));
  // Regrid, amortised per step over the regrid interval:
  //  (a) the tag gather-broadcast tree over the compressed payload;
  //  (b) the host-side mesh-management work over the replicated global
  //      metadata, which grows with the global patch count — this is the
  //      SAMRAI scaling term that makes regridding the paper's largest
  //      non-hydro component at 4,096 nodes.
  c.regrid += 2.0 * extra_depth * m.network.message_time(
                  static_cast<std::uint64_t>(tag_bytes_per_rank)) / 10.0;
  c.regrid *= 1.0 + 0.35 * extra_depth;
  return c;
}

}  // namespace

int main() {
  const ramr::perf::Machine m = ramr::perf::titan();
  int cap = 16;
  if (const char* env = std::getenv("RAMR_WEAK_CAP")) {
    cap = std::atoi(env);
  }
  std::printf(
      "Figure 11: weak scaling on Titan, triple point, 3 levels, r=2\n"
      "grind time (s/cell/step) per component; per-node coarse tile "
      "%dx%d\n"
      "node counts above %d are analytic extensions of the largest real "
      "run\n\n",
      kTile, kTile, cap);

  ramr::perf::Table t({8, 12, 12, 12, 12, 12, 12, 8});
  t.header({"nodes", "total", "hydro", "boundary", "timestep", "sync",
            "regrid", "imbal"});

  Components largest_real;
  StepTimes largest_times;
  int largest_real_nodes = 1;
  std::int64_t largest_cells = 1;
  Components first;
  Components last;
  std::int64_t first_cells = 1;
  std::int64_t last_cells = 1;
  int last_nodes = 1;

  struct JsonRow {
    int nodes = 0;
    bool modeled = false;
    std::int64_t cells_per_node = 0;
    Components c;
    StepTimes times;  ///< real rows only (zeros on modeled rows)
  };
  std::vector<JsonRow> rows;

  for (int nodes : {1, 4, 16, 64, 256, 1024, 4096}) {
    Components c;
    StepTimes times;
    std::int64_t cells = 0;
    bool modeled = false;
    if (nodes <= cap) {
      c = run_real(nodes, m, cells, /*async=*/false, &times.sync_s);
      std::int64_t async_cells = 0;
      run_real(nodes, m, async_cells, /*async=*/true, &times.async_s,
               &times.saved_s);
      largest_real = c;
      largest_times = times;
      largest_real_nodes = nodes;
      largest_cells = cells;
    } else {
      // Compressed tags of one rank's tile: 1 bit/cell on levels 0..1.
      const std::int64_t tag_bytes = kTile * kTile * 5 / 8 / 4;
      c = extrapolate(largest_real, largest_real_nodes, nodes, m, tag_bytes);
      cells = largest_cells / largest_real_nodes * nodes;
      // Project the sync/overlap step times from the analytic model too,
      // so the JSON trajectory is usable at every node count (the rows
      // used to carry hard zeros): the synchronous step grows by the
      // extrapolated collective terms; the hidden time stays the
      // largest real run's — halo volume per node is constant under
      // weak scaling and the deepening collectives do not overlap.
      times.sync_s =
          largest_times.sync_s + (c.total() - largest_real.total());
      times.saved_s = largest_times.saved_s;
      times.async_s = times.sync_s - times.saved_s;
      modeled = true;
    }
    // Weak-scaling grind time: per-step component seconds of the slowest
    // rank over the cells that rank advances (cells per node), which the
    // paper holds constant across node counts.
    const double denom = static_cast<double>(cells) / nodes;
    rows.push_back(JsonRow{nodes, modeled,
                           static_cast<std::int64_t>(denom), c, times});
    t.row({ramr::perf::Table::count(nodes) + (modeled ? "*" : ""),
           ramr::perf::Table::sci(c.total() / denom),
           ramr::perf::Table::sci(c.hydro / denom),
           ramr::perf::Table::sci(c.boundary / denom),
           ramr::perf::Table::sci(c.timestep / denom),
           ramr::perf::Table::sci(c.sync / denom),
           ramr::perf::Table::sci(c.regrid / denom),
           ramr::perf::Table::ratio(c.imbalance)});
    if (nodes == 1) {
      first = c;
      first_cells = cells;
    }
    last = c;
    last_cells = cells;
    last_nodes = nodes;
  }
  (void)first_cells;
  (void)last_cells;
  (void)last_nodes;

  std::printf("\n(* = analytic extension of the largest real run)\n\n");
  std::printf("Runtime fractions (paper text, Section V-B):\n");
  ramr::perf::Table f({22, 16, 16, 16, 16});
  f.header({"", "advance", "timestep", "sync", "paper"});
  f.row({"1 node",
         ramr::perf::Table::percent((first.hydro + first.boundary) / first.total()),
         ramr::perf::Table::percent(first.timestep / first.total()),
         ramr::perf::Table::percent(first.sync / first.total()),
         "59% / <1% / 1%"});
  f.row({"4096 nodes",
         ramr::perf::Table::percent((last.hydro + last.boundary) / last.total()),
         ramr::perf::Table::percent(last.timestep / last.total()),
         ramr::perf::Table::percent(last.sync / last.total()),
         "44% / 6% / 3%"});

  // Sync vs async-overlap step times of the real runs: the split-phase
  // state exchange + network-lane wire legs shave the hidden
  // communication off the slowest rank's step (docs/async_overlap.md).
  std::printf(
      "\nSync vs overlapped step times (slowest rank; * = projected from\n"
      "the analytic grind model):\n");
  ramr::perf::Table o({8, 14, 14, 14});
  o.header({"nodes", "sync s/step", "async s/step", "saved s/step"});
  for (const JsonRow& r : rows) {
    o.row({ramr::perf::Table::count(r.nodes) + (r.modeled ? "*" : ""),
           ramr::perf::Table::sci(r.times.sync_s),
           ramr::perf::Table::sci(r.times.async_s),
           ramr::perf::Table::sci(r.times.saved_s)});
    if (r.modeled) {
      continue;
    }
    // Hard acceptance check on distributed rows: overlap must save
    // modeled time and beat the synchronous step.
    if (r.nodes > 1 &&
        (r.times.saved_s <= 0.0 || r.times.async_s >= r.times.sync_s)) {
      std::printf("FAIL: no overlap saving at %d nodes (sync %.3e, async "
                  "%.3e, saved %.3e)\n",
                  r.nodes, r.times.sync_s, r.times.async_s, r.times.saved_s);
      return 1;
    }
  }

  // Machine-readable record for CI perf tracking (alongside
  // BENCH_fig09.json / BENCH_fig10.json). Extrapolated rows carry the
  // analytic grind components AND the projected sync/async/saved step
  // times (no more hard zeros above the real-run cap).
  if (FILE* json = std::fopen("BENCH_fig11.json", "w")) {
    std::fprintf(json, "{\n  \"tile\": %d,\n  \"configs\": [\n", kTile);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const JsonRow& r = rows[i];
      const double denom = static_cast<double>(r.cells_per_node);
      std::fprintf(
          json,
          "    {\"nodes\": %d, \"modeled\": %s, \"grind_total\": %.6e, "
          "\"grind_hydro\": %.6e, \"grind_boundary\": %.6e, "
          "\"grind_timestep\": %.6e, \"grind_sync\": %.6e, "
          "\"grind_regrid\": %.6e, \"load_imbalance\": %.4f, "
          "\"sync_s_per_step\": %.6e, "
          "\"async_s_per_step\": %.6e, \"overlap_saved_per_step\": %.6e}%s\n",
          r.nodes, r.modeled ? "true" : "false", r.c.total() / denom,
          r.c.hydro / denom, r.c.boundary / denom, r.c.timestep / denom,
          r.c.sync / denom, r.c.regrid / denom, r.c.imbalance, r.times.sync_s,
          r.times.async_s, r.times.saved_s,
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_fig11.json\n");
  }
  return 0;
}
