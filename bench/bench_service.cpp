// Service throughput: jobs/hour of one modeled K20x running the same
// job list at K ∈ {1, 2, 4, 8} resident jobs.
//
// K = 1 executes jobs back-to-back exactly like today's standalone
// driver (no fusion). K >= 2 interleaves level advances inside a
// launch-fusion scope, so the same stage kernel of different jobs (and
// levels) is charged as ONE launch: overhead amortizes and the occupancy
// ramp sees the summed grid — the cross-job generalisation of the
// paper's per-level batching, aimed at the small-grid regime where a
// single job cannot saturate a throughput-oriented device.
//
// Physics is asserted bit-identical across K (execution stays eager and
// per-job; only the time accounting fuses). Set RAMR_BENCH_FAST=1 for a
// smaller job list. Emits BENCH_service.json; exits nonzero when any
// K >= 2 fails to beat K = 1 throughput.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "svc/server.hpp"

namespace {

struct Point {
  int concurrency = 0;
  double clock_seconds = 0.0;
  double jobs_per_hour = 0.0;
  double fused_seconds_saved = 0.0;
  std::uint64_t launches = 0;
};

double summary_value(const ramr::cfg::Json& metrics, const char* key) {
  const ramr::cfg::Json* summary = metrics.find("summary");
  const ramr::cfg::Json* v = summary != nullptr ? summary->find(key) : nullptr;
  return v != nullptr ? v->as_number() : 0.0;
}

}  // namespace

int main() {
  const bool fast = std::getenv("RAMR_BENCH_FAST") != nullptr;
  const int jobs = 8;
  const int nx = fast ? 96 : 128;
  const int steps = fast ? 8 : 20;

  ramr::cfg::RunConfig job;
  job.sim.problem = "sod";
  job.sim.nx = nx;
  job.sim.ny = nx;
  job.sim.max_levels = 3;
  job.sim.regrid_interval = 5;
  job.run.max_steps = steps;

  std::printf(
      "Service throughput: %d Sod jobs (%d^2, 3 levels, %d steps each) on "
      "one K20x\n\n",
      jobs, nx, steps);

  std::vector<Point> points;
  std::vector<double> reference_summary;  // K=1 conservation totals
  bool identical = true;
  for (const int concurrency : {1, 2, 4, 8}) {
    ramr::svc::ServerConfig sc;
    sc.max_concurrent_jobs = concurrency;
    // K=1 is the baseline: strictly serial, unfused — today's behavior.
    sc.fuse_across_jobs = concurrency > 1;
    ramr::svc::SimulationServer server(sc);
    for (int j = 0; j < jobs; ++j) {
      server.submit({"sod_" + std::to_string(j), job});
    }
    server.run();

    Point p;
    p.concurrency = concurrency;
    p.clock_seconds = server.clock().total();
    p.jobs_per_hour = jobs * 3600.0 / p.clock_seconds;
    const ramr::vgpu::FusionStats& fs = server.device().fusion_stats();
    p.fused_seconds_saved = fs.serial_seconds - fs.fused_seconds;
    p.launches = server.device().launch_count();
    points.push_back(p);

    // Cross-K physics check: the conservation totals of every job must
    // match the serial run exactly (fusion defers charges, not work).
    std::vector<double> summary;
    for (int id = 0; id < server.queue().size(); ++id) {
      const ramr::svc::JobStatus st = server.status(id);
      if (st.state != ramr::svc::JobState::kDone) {
        std::printf("FAIL: job %d state %s at K=%d\n", id,
                    ramr::svc::job_state_name(st.state), concurrency);
        return 1;
      }
      summary.push_back(summary_value(st.metrics, "mass"));
      summary.push_back(summary_value(st.metrics, "internal_energy"));
      summary.push_back(summary_value(st.metrics, "kinetic_energy"));
    }
    if (reference_summary.empty()) {
      reference_summary = summary;
    } else if (summary != reference_summary) {
      identical = false;
    }
  }

  std::printf("   K   modeled s   jobs/hour    launches   fusion saved (s)\n");
  for (const Point& p : points) {
    std::printf("%4d   %9.3f   %9.1f  %10llu   %16.3f\n", p.concurrency,
                p.clock_seconds, p.jobs_per_hour,
                static_cast<unsigned long long>(p.launches),
                p.fused_seconds_saved);
  }

  const double serial = points.front().jobs_per_hour;
  bool ok = true;
  for (const Point& p : points) {
    if (p.concurrency >= 2 && p.jobs_per_hour <= serial) {
      std::printf("FAIL: K=%d throughput %.1f jobs/h does not beat K=1 "
                  "(%.1f jobs/h)\n",
                  p.concurrency, p.jobs_per_hour, serial);
      ok = false;
    }
  }
  if (!identical) {
    std::printf("FAIL: conservation totals differ across K — cross-job "
                "fusion changed the physics\n");
    ok = false;
  }
  if (ok) {
    std::printf("\nOK: every K>=2 beats serial throughput (best %.2fx) and "
                "physics is bit-identical across K\n",
                points.back().jobs_per_hour / serial);
  }

  if (FILE* json = std::fopen("BENCH_service.json", "w")) {
    std::fprintf(json,
                 "{\n  \"jobs\": %d, \"nx\": %d, \"steps_per_job\": %d,\n"
                 "  \"points\": [\n",
                 jobs, nx, steps);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::fprintf(json,
                   "    {\"concurrency\": %d, \"modeled_seconds\": %.6e, "
                   "\"jobs_per_hour\": %.3f, \"launches\": %llu, "
                   "\"fusion_seconds_saved\": %.6e}%s\n",
                   p.concurrency, p.clock_seconds, p.jobs_per_hour,
                   static_cast<unsigned long long>(p.launches),
                   p.fused_seconds_saved, i + 1 < points.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"batched_beats_serial\": %s\n}\n",
                 ok ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_service.json\n");
  }
  return ok ? 0 : 1;
}
