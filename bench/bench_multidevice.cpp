// Multi-device ranks: the devices-per-rank axis of the paper's Fig. 10 /
// Fig. 11 runs. Each rank owns a vgpu::Topology of N modeled K20x-class
// devices joined by NVLink-style peer links; the level's patches spread
// over the devices, every kernel stage issues one fused launch per
// device on its own "gpu<i>" timeline lane, and cross-device halo copies
// ride the compiled per-(src,dst)-device plans onto the "peer<i>-<j>"
// link lanes (docs/device_topology.md).
//
// Hard asserts (CI bench-smoke):
//   - 2- and 4-device ranks beat the 1-device modeled step time under
//     the async-overlap model;
//   - GPU-direct wire mode strictly reduces wire+staging seconds
//     (net + d2h + h2d lane busy) against host-staged sends;
//   - the physics (composite mass / internal / kinetic energy) is
//     bit-identical across device counts and wire modes;
//   - no compiled-plan fallbacks anywhere.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "app/simulation.hpp"
#include "perf/machine.hpp"
#include "perf/report.hpp"

namespace {

constexpr int kRanks = 2;

struct RunResult {
  int device_count = 1;
  bool gpu_direct = false;
  double step_s = 0.0;          ///< slowest rank's modeled seconds / step
  double wire_staging_s = 0.0;  ///< sum over ranks: net+d2h+h2d lane busy
  double peer_s = 0.0;          ///< sum over ranks: peer link lane busy
  std::uint64_t peer_bytes = 0;
  std::uint64_t plan_fallbacks = 0;
  ramr::hydro::FieldSummary summary;
};

RunResult run(int device_count, bool gpu_direct, int steps, int n,
              bool traced = false) {
  ramr::app::SimulationConfig cfg;
  cfg.problem = "triple_point";
  cfg.nx = n;
  cfg.ny = n;
  cfg.max_levels = 3;
  cfg.regrid_interval = 5;
  cfg.device = ramr::perf::ipa().gpu_spec;
  cfg.async_overlap = true;
  cfg.topology.device_count = device_count;
  cfg.topology.gpu_direct = gpu_direct;
  if (traced) {
    // Observability overhead column: the recorder only observes clock
    // charges, so the traced run must be bit-identical in modeled time.
    auto oc = std::make_shared<ramr::obs::ObservabilityConfig>();
    oc->trace = true;
    oc->trace_capacity = 1 << 15;
    cfg.observability = std::move(oc);
  }
  if (device_count > 1) {
    // Measured balancing: after the first regrid the patch-to-device
    // assignment follows the gpu lanes' observed busy time.
    cfg.balance_method = ramr::amr::BalanceMethod::kMeasured;
  }

  RunResult res;
  res.device_count = device_count;
  res.gpu_direct = gpu_direct;
  std::mutex mu;
  ramr::simmpi::World world(kRanks, ramr::perf::ipa().network);
  world.run([&](ramr::simmpi::Communicator& comm) {
    ramr::app::Simulation sim(cfg, &comm);
    sim.initialize();
    sim.run(steps);
    const double step = sim.modeled_seconds() / steps;
    ramr::vgpu::Timeline* tl = sim.timeline();
    double wire = tl->busy(tl->lane("net")) + tl->busy(tl->lane("d2h")) +
                  tl->busy(tl->lane("h2d"));
    double peer = 0.0;
    std::uint64_t peer_bytes = 0;
    if (ramr::vgpu::Topology* topo = sim.topology()) {
      for (int s = 0; s < topo->device_count(); ++s) {
        peer_bytes += topo->device(s).transfers().peer_bytes;
        for (int d = 0; d < topo->device_count(); ++d) {
          if (s != d) {
            peer += tl->busy(
                tl->lane(ramr::vgpu::Topology::peer_lane_name(s, d)));
          }
        }
      }
    }
    const ramr::hydro::FieldSummary summary = sim.composite_summary();
    const std::uint64_t fallbacks =
        sim.integrator().transfer_counters().plan_fallbacks;
    std::lock_guard<std::mutex> lock(mu);
    if (step > res.step_s) {
      res.step_s = step;
    }
    res.wire_staging_s += wire;
    res.peer_s += peer;
    res.peer_bytes += peer_bytes;
    res.plan_fallbacks += fallbacks;
    res.summary = summary;  // allreduced: identical on every rank
  });
  return res;
}

bool same_physics(const ramr::hydro::FieldSummary& a,
                  const ramr::hydro::FieldSummary& b) {
  return a.mass == b.mass && a.internal_energy == b.internal_energy &&
         a.kinetic_energy == b.kinetic_energy;
}

}  // namespace

int main() {
  const bool fast = std::getenv("RAMR_BENCH_FAST") != nullptr;
  const int steps = 5;
  const int n = fast ? 192 : 320;

  std::printf(
      "Multi-device ranks: %d ranks, triple point %dx%d, 3 levels, "
      "async overlap\n"
      "peer link: NVLink-class all-to-all; measured device balancing\n\n",
      kRanks, n, n);

  std::vector<RunResult> runs;
  runs.push_back(run(1, false, steps, n));
  runs.push_back(run(2, false, steps, n));
  runs.push_back(run(4, false, steps, n));
  runs.push_back(run(2, true, steps, n));

  // Observability-overhead column: the same configs with span tracing on.
  std::vector<RunResult> traced;
  for (const RunResult& r : runs) {
    traced.push_back(run(r.device_count, r.gpu_direct, steps, n,
                         /*traced=*/true));
  }

  const RunResult& base = runs[0];
  ramr::perf::Table t({22, 12, 14, 14, 10, 12});
  t.header({"config", "s/step", "wire+staging", "peer busy", "speedup",
            "traced s/st"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    const std::string label = std::to_string(r.device_count) + " device" +
                              (r.device_count > 1 ? "s" : "") +
                              (r.gpu_direct ? " +gpu_direct" : "");
    t.row({label, ramr::perf::Table::seconds(r.step_s),
           ramr::perf::Table::seconds(r.wire_staging_s),
           ramr::perf::Table::seconds(r.peer_s),
           ramr::perf::Table::ratio(base.step_s / r.step_s),
           ramr::perf::Table::seconds(traced[i].step_s)});
  }

  // --- Hard asserts ---------------------------------------------------
  for (const RunResult& r : runs) {
    if (r.plan_fallbacks != 0) {
      std::printf("\nFAIL: %llu compiled-plan fallbacks with %d devices "
                  "(multi-device endpoints must compile as the fast path)\n",
                  static_cast<unsigned long long>(r.plan_fallbacks),
                  r.device_count);
      return 1;
    }
    if (!same_physics(r.summary, base.summary)) {
      std::printf("\nFAIL: physics differs with %d devices%s: mass %.17e vs "
                  "%.17e, ie %.17e vs %.17e, ke %.17e vs %.17e\n",
                  r.device_count, r.gpu_direct ? " (gpu_direct)" : "",
                  r.summary.mass, base.summary.mass,
                  r.summary.internal_energy, base.summary.internal_energy,
                  r.summary.kinetic_energy, base.summary.kinetic_energy);
      return 1;
    }
  }
  std::printf("\nOK: physics bit-identical across device counts and wire "
              "modes\n");

  for (std::size_t i : {std::size_t{1}, std::size_t{2}}) {
    if (runs[i].step_s >= base.step_s) {
      std::printf("FAIL: %d devices do not beat 1 device (%.3e >= %.3e "
                  "s/step)\n",
                  runs[i].device_count, runs[i].step_s, base.step_s);
      return 1;
    }
    if (runs[i].peer_bytes == 0) {
      std::printf("FAIL: no peer-link traffic with %d devices (cross-device "
                  "plans did not engage)\n",
                  runs[i].device_count);
      return 1;
    }
  }
  std::printf("OK: 2- and 4-device ranks beat the 1-device step time\n");

  const RunResult& staged = runs[1];
  const RunResult& direct = runs[3];
  if (direct.wire_staging_s >= staged.wire_staging_s) {
    std::printf("FAIL: gpu_direct does not reduce wire+staging seconds "
                "(%.3e >= %.3e)\n",
                direct.wire_staging_s, staged.wire_staging_s);
    return 1;
  }
  if (!same_physics(direct.summary, staged.summary)) {
    std::printf("FAIL: gpu_direct changes the physics\n");
    return 1;
  }
  std::printf("OK: gpu_direct strictly reduces wire+staging seconds "
              "(%.3e -> %.3e) with identical physics\n",
              staged.wire_staging_s, direct.wire_staging_s);

  // Tracing is a passive observer of the modeled clock: the traced runs
  // must reproduce the untraced modeled time (and physics) BIT-identically
  // — any drift means the recorder charged time it should only watch.
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (traced[i].step_s != runs[i].step_s ||
        !same_physics(traced[i].summary, runs[i].summary)) {
      std::printf("FAIL: tracing changed the run with %d devices%s "
                  "(%.17e vs %.17e s/step)\n",
                  runs[i].device_count,
                  runs[i].gpu_direct ? " (gpu_direct)" : "",
                  traced[i].step_s, runs[i].step_s);
      return 1;
    }
  }
  std::printf("OK: span tracing is modeled-time neutral (bit-identical "
              "s/step on every config)\n");

  // Machine-readable record (alongside BENCH_fig10.json/BENCH_fig11.json).
  if (FILE* json = std::fopen("BENCH_multidevice.json", "w")) {
    std::fprintf(json, "{\n  \"ranks\": %d,\n  \"grid\": %d,\n"
                 "  \"configs\": [\n", kRanks, n);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const RunResult& r = runs[i];
      std::fprintf(
          json,
          "    {\"devices\": %d, \"gpu_direct\": %s, \"s_per_step\": %.6e, "
          "\"wire_staging_s\": %.6e, \"peer_busy_s\": %.6e, "
          "\"peer_bytes\": %llu, \"speedup_vs_1dev\": %.4f, "
          "\"traced_s_per_step\": %.6e, "
          "\"mass\": %.17e, \"internal_energy\": %.17e, "
          "\"kinetic_energy\": %.17e}%s\n",
          r.device_count, r.gpu_direct ? "true" : "false", r.step_s,
          r.wire_staging_s, r.peer_s,
          static_cast<unsigned long long>(r.peer_bytes),
          base.step_s / r.step_s, traced[i].step_s, r.summary.mass,
          r.summary.internal_energy,
          r.summary.kinetic_energy, i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_multidevice.json\n");
  }
  return 0;
}
