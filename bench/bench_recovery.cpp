// Recovery goodput: jobs/hour of one modeled K20x serving a Sod job
// list while launch faults are injected at a per-step rate, with
// `launch_retries = 0` so every injected fault escapes the device and
// exercises the server's full recovery path — backoff, restore from the
// newest streamed checkpoint, replay (docs/fault_tolerance.md).
//
// Asserted properties:
//  - graceful degradation: goodput at a 1%-per-step fault rate stays
//    within 25% of the fault-free baseline, and the 5% point still
//    clears half of it (no cliff);
//  - determinism: the same fault seed reproduces the identical modeled
//    clock and fault counts;
//  - bit-identical recovery: every job's conservation totals at every
//    fault rate equal the fault-free run's exactly — replay from a
//    checkpoint reproduces the lost steps bit for bit.
//
// Set RAMR_BENCH_FAST=1 for a smaller job list. Emits
// BENCH_recovery.json; exits nonzero when any assertion fails.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "svc/server.hpp"
#include "util/fault.hpp"

namespace {

struct Point {
  double fault_rate = 0.0;
  double clock_seconds = 0.0;
  double jobs_per_hour = 0.0;
  std::int64_t faults_injected = 0;
  int retries = 0;
  int recoveries = 0;
  std::vector<double> summary;  // per-job conservation totals
};

double summary_value(const ramr::cfg::Json& metrics, const char* key) {
  const ramr::cfg::Json* summary = metrics.find("summary");
  const ramr::cfg::Json* v = summary != nullptr ? summary->find(key) : nullptr;
  return v != nullptr ? v->as_number() : 0.0;
}

}  // namespace

int main() {
  const bool fast = std::getenv("RAMR_BENCH_FAST") != nullptr;
  const int jobs = fast ? 4 : 6;
  const int nx = fast ? 64 : 96;
  const int steps = fast ? 10 : 20;

  ramr::cfg::RunConfig job;
  job.sim.problem = "sod";
  job.sim.nx = nx;
  job.sim.ny = nx;
  job.sim.max_levels = 3;
  job.sim.regrid_interval = 5;
  job.run.max_steps = steps;
  job.output.checkpoint_interval = 5;

  std::printf(
      "Recovery goodput: %d Sod jobs (%d^2, 3 levels, %d steps, checkpoint "
      "every 5) on one K20x, K=4\n"
      "launch faults per step at rate r, launch_retries=0 (every fault "
      "escapes to the server)\n\n",
      jobs, nx, steps);

  const auto run_rate = [&](double rate) {
    ramr::svc::ServerConfig sc;
    sc.max_concurrent_jobs = 4;
    sc.output_dir = "/tmp";
    sc.max_retries = 10;
    ramr::svc::SimulationServer server(sc);
    std::vector<std::string> files;
    for (int j = 0; j < jobs; ++j) {
      ramr::cfg::RunConfig spec = job;
      spec.output.basename = "ramr_bench_recovery_job" + std::to_string(j);
      if (rate > 0.0) {
        auto faults = std::make_shared<ramr::util::FaultConfig>();
        faults->seed = 20250007 + static_cast<std::uint64_t>(j);
        faults->site(ramr::util::FaultSite::kLaunch).step_probability = rate;
        faults->launch_retries = 0;
        spec.sim.faults = faults;
      }
      server.submit({"sod_" + std::to_string(j), spec});
    }
    server.run();

    Point p;
    p.fault_rate = rate;
    p.clock_seconds = server.clock().total();
    p.jobs_per_hour = jobs * 3600.0 / p.clock_seconds;
    bool all_done = true;
    for (int id = 0; id < server.queue().size(); ++id) {
      const ramr::svc::JobStatus st = server.status(id);
      if (st.state != ramr::svc::JobState::kDone) {
        std::printf("FAIL: job %d state %s at rate %.2f: %s\n", id,
                    ramr::svc::job_state_name(st.state), rate,
                    st.error.c_str());
        all_done = false;
      }
      p.faults_injected += st.faults_injected;
      p.retries += st.retry_count;
      p.recoveries += st.recoveries;
      p.summary.push_back(summary_value(st.metrics, "mass"));
      p.summary.push_back(summary_value(st.metrics, "internal_energy"));
      p.summary.push_back(summary_value(st.metrics, "kinetic_energy"));
      for (const std::string& f : st.files) {
        files.push_back(f);
      }
    }
    for (const std::string& f : files) {
      std::remove(f.c_str());
      std::remove((f + ".rank0").c_str());
    }
    if (!all_done) {
      std::exit(1);
    }
    return p;
  };

  std::vector<Point> points;
  for (const double rate : {0.0, 0.01, 0.05}) {
    points.push_back(run_rate(rate));
  }
  // Same seed, second run of the 1% point: the fault schedule, recovery
  // path and modeled time must all reproduce exactly.
  const Point replay = run_rate(0.01);

  std::printf("  rate   modeled s   jobs/hour   faults   retries\n");
  for (const Point& p : points) {
    std::printf("  %4.2f   %9.3f   %9.1f   %6lld   %7d\n", p.fault_rate,
                p.clock_seconds, p.jobs_per_hour,
                static_cast<long long>(p.faults_injected), p.retries);
  }

  const Point& base = points[0];
  const Point& pct1 = points[1];
  const Point& pct5 = points[2];
  bool ok = true;
  if (pct1.jobs_per_hour < 0.75 * base.jobs_per_hour) {
    std::printf("FAIL: 1%% fault-rate goodput %.1f jobs/h fell more than 25%% "
                "below the fault-free %.1f jobs/h\n",
                pct1.jobs_per_hour, base.jobs_per_hour);
    ok = false;
  }
  if (pct5.jobs_per_hour < 0.5 * base.jobs_per_hour) {
    std::printf("FAIL: 5%% fault-rate goodput %.1f jobs/h cliffed below half "
                "of the fault-free %.1f jobs/h\n",
                pct5.jobs_per_hour, base.jobs_per_hour);
    ok = false;
  }
  if (pct1.faults_injected == 0) {
    std::printf("FAIL: the 1%% point injected no faults — the benchmark "
                "exercised nothing\n");
    ok = false;
  }
  if (replay.clock_seconds != pct1.clock_seconds ||
      replay.faults_injected != pct1.faults_injected ||
      replay.retries != pct1.retries) {
    std::printf("FAIL: same seed, different run — clock %.6e vs %.6e, "
                "faults %lld vs %lld, retries %d vs %d\n",
                replay.clock_seconds, pct1.clock_seconds,
                static_cast<long long>(replay.faults_injected),
                static_cast<long long>(pct1.faults_injected), replay.retries,
                pct1.retries);
    ok = false;
  }
  for (const Point& p : {pct1, pct5, replay}) {
    if (p.summary != base.summary) {
      std::printf("FAIL: conservation totals at rate %.2f differ from the "
                  "fault-free run — recovery is not bit-identical\n",
                  p.fault_rate);
      ok = false;
    }
  }
  if (ok) {
    std::printf(
        "\nOK: goodput degrades gracefully (1%%: %.1f%% of baseline, 5%%: "
        "%.1f%%), the fault schedule is seed-deterministic, and every "
        "recovered job is bit-identical to the fault-free run\n",
        100.0 * pct1.jobs_per_hour / base.jobs_per_hour,
        100.0 * pct5.jobs_per_hour / base.jobs_per_hour);
  }

  if (FILE* json = std::fopen("BENCH_recovery.json", "w")) {
    std::fprintf(json,
                 "{\n  \"jobs\": %d, \"nx\": %d, \"steps_per_job\": %d, "
                 "\"checkpoint_interval\": 5, \"concurrency\": 4,\n"
                 "  \"points\": [\n",
                 jobs, nx, steps);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::fprintf(json,
                   "    {\"fault_rate\": %.2f, \"modeled_seconds\": %.6e, "
                   "\"jobs_per_hour\": %.3f, \"faults_injected\": %lld, "
                   "\"retries\": %d, \"recoveries\": %d, "
                   "\"goodput_vs_baseline\": %.4f}%s\n",
                   p.fault_rate, p.clock_seconds, p.jobs_per_hour,
                   static_cast<long long>(p.faults_injected), p.retries,
                   p.recoveries,
                   p.jobs_per_hour / points[0].jobs_per_hour,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"deterministic_replay\": %s,\n"
                 "  \"recovery_bit_identical\": %s,\n"
                 "  \"graceful_degradation\": %s\n}\n",
                 replay.clock_seconds == pct1.clock_seconds ? "true" : "false",
                 pct1.summary == base.summary ? "true" : "false",
                 ok ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_recovery.json\n");
  }
  return ok ? 0 : 1;
}
