// Micro-bench + ablation: data-parallel buffer packing (paper Fig. 4).
// The resident design gathers an overlap into one contiguous device
// buffer (one thread per element) and crosses PCIe once; the naive
// alternative transfers each overlap row separately. Counters report the
// modeled PCIe cost of both.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "pdat/cuda/cuda_data.hpp"
#include "vgpu/device_spec.hpp"

namespace {

using ramr::mesh::Box;
using ramr::mesh::BoxList;
using ramr::mesh::Centering;
using ramr::mesh::IntVector;
using ramr::pdat::BoxOverlap;
using ramr::pdat::MessageStream;
using ramr::pdat::cuda::CudaCellData;

BoxOverlap halo_overlap(int n, int g) {
  // The four ghost bands a neighbour exchange fills.
  BoxList cells;
  cells.push_back(Box(0, 0, n - 1, g - 1));          // bottom
  cells.push_back(Box(0, n - g, n - 1, n - 1));      // top
  cells.push_back(Box(0, g, g - 1, n - g - 1));      // left
  cells.push_back(Box(n - g, g, n - 1, n - g - 1));  // right
  return ramr::pdat::overlap_for_region(Centering::kCell, cells);
}

void BM_DataParallelPack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ramr::vgpu::Device dev(ramr::vgpu::tesla_k20x());
  CudaCellData data(dev, Box(0, 0, n - 1, n - 1), IntVector(2, 2));
  data.fill(1.0);
  const BoxOverlap ov = halo_overlap(n, 2);
  for (auto _ : state) {
    MessageStream ms;
    data.pack_stream(ms, ov);
    benchmark::DoNotOptimize(ms.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(ov.element_count()) * 8);
  state.counters["pcie_transfers_per_pack"] =
      static_cast<double>(dev.transfers().d2h_count) / state.iterations();
  state.counters["modeled_us_per_pack"] =
      dev.clock().total() / state.iterations() * 1e6;
}
BENCHMARK(BM_DataParallelPack)->Arg(64)->Arg(256)->Arg(1024);

void BM_NaiveRowByRowPack(benchmark::State& state) {
  // The contrast class: one PCIe transfer per overlap row (what a
  // non-resident port does when it memcpy's subregions directly).
  const int n = static_cast<int>(state.range(0));
  ramr::vgpu::Device dev(ramr::vgpu::tesla_k20x());
  CudaCellData data(dev, Box(0, 0, n - 1, n - 1), IntVector(2, 2));
  data.fill(1.0);
  const BoxOverlap ov = halo_overlap(n, 2);
  for (auto _ : state) {
    MessageStream ms;
    for (const Box& b : ov.component(0).boxes()) {
      for (int j = b.lower().j; j <= b.upper().j; ++j) {
        // One transfer per row.
        std::vector<double> row(static_cast<std::size_t>(b.width()));
        const auto& arr = data.component(0);
        const Box ib = arr.index_box();
        const std::int64_t offset =
            static_cast<std::int64_t>(j - ib.lower().j) * ib.width() +
            (b.lower().i - ib.lower().i);
        dev.memcpy_d2h(row.data(), arr.device_view().data() + offset,
                       row.size() * sizeof(double));
        ms.write_doubles(row.data(), row.size());
      }
    }
    benchmark::DoNotOptimize(ms.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(ov.element_count()) * 8);
  state.counters["pcie_transfers_per_pack"] =
      static_cast<double>(dev.transfers().d2h_count) / state.iterations();
  state.counters["modeled_us_per_pack"] =
      dev.clock().total() / state.iterations() * 1e6;
}
BENCHMARK(BM_NaiveRowByRowPack)->Arg(64)->Arg(256)->Arg(1024);

void BM_FusedMultiVariablePack(benchmark::State& state) {
  // The aggregated transfer path: every variable of a peer message packs
  // into ONE exact-size-reserved stream inside a transfer batch, so the
  // whole aggregated buffer crosses PCIe once (the per-variable staging
  // copies fuse). Contrast with BM_PerVariablePack below.
  const int n = static_cast<int>(state.range(0));
  constexpr int kVars = 5;
  ramr::vgpu::Device dev(ramr::vgpu::tesla_k20x());
  std::vector<std::unique_ptr<CudaCellData>> vars;
  for (int v = 0; v < kVars; ++v) {
    vars.push_back(std::make_unique<CudaCellData>(
        dev, Box(0, 0, n - 1, n - 1), IntVector(2, 2)));
    vars.back()->fill(1.0 + v);
  }
  const BoxOverlap ov = halo_overlap(n, 2);
  const std::size_t bytes_per_var = vars.front()->data_stream_size(ov);
  for (auto _ : state) {
    MessageStream ms;
    ms.reserve(kVars * bytes_per_var);
    {
      ramr::vgpu::TransferBatch batch(&dev);
      for (const auto& v : vars) {
        v->pack_stream(ms, ov);
      }
    }
    benchmark::DoNotOptimize(ms.size());
  }
  state.SetBytesProcessed(state.iterations() * kVars *
                          static_cast<std::int64_t>(ov.element_count()) * 8);
  state.counters["variables_per_message"] = kVars;
  state.counters["messages_per_fill"] = 1.0;  // one aggregated peer message
  state.counters["pcie_crossings_per_fill"] =
      static_cast<double>(dev.transfers().d2h_count) / state.iterations();
  state.counters["modeled_us_per_fill"] =
      dev.clock().total() / state.iterations() * 1e6;
}
BENCHMARK(BM_FusedMultiVariablePack)->Arg(64)->Arg(256)->Arg(1024);

void BM_PerVariablePack(benchmark::State& state) {
  // The pre-aggregation contrast: one stream, one message and one PCIe
  // crossing per (edge, variable), as the old schedule execute loops did.
  const int n = static_cast<int>(state.range(0));
  constexpr int kVars = 5;
  ramr::vgpu::Device dev(ramr::vgpu::tesla_k20x());
  std::vector<std::unique_ptr<CudaCellData>> vars;
  for (int v = 0; v < kVars; ++v) {
    vars.push_back(std::make_unique<CudaCellData>(
        dev, Box(0, 0, n - 1, n - 1), IntVector(2, 2)));
    vars.back()->fill(1.0 + v);
  }
  const BoxOverlap ov = halo_overlap(n, 2);
  for (auto _ : state) {
    std::size_t total = 0;
    for (const auto& v : vars) {
      MessageStream ms;
      v->pack_stream(ms, ov);
      total += ms.size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetBytesProcessed(state.iterations() * kVars *
                          static_cast<std::int64_t>(ov.element_count()) * 8);
  state.counters["variables_per_message"] = 1.0;
  state.counters["messages_per_fill"] = kVars;
  state.counters["pcie_crossings_per_fill"] =
      static_cast<double>(dev.transfers().d2h_count) / state.iterations();
  state.counters["modeled_us_per_fill"] =
      dev.clock().total() / state.iterations() * 1e6;
}
BENCHMARK(BM_PerVariablePack)->Arg(64)->Arg(256)->Arg(1024);

void BM_UnpackRoundTrip(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ramr::vgpu::Device dev(ramr::vgpu::tesla_k20x());
  CudaCellData src(dev, Box(0, 0, n - 1, n - 1), IntVector(2, 2));
  CudaCellData dst(dev, Box(0, 0, n - 1, n - 1), IntVector(2, 2));
  src.fill(3.0);
  const BoxOverlap ov = halo_overlap(n, 2);
  for (auto _ : state) {
    MessageStream ms;
    src.pack_stream(ms, ov);
    dst.unpack_stream(ms, ov);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(ov.element_count()) * 16);
  state.counters["modeled_us_per_roundtrip"] =
      dev.clock().total() / state.iterations() * 1e6;
}
BENCHMARK(BM_UnpackRoundTrip)->Arg(256)->Arg(1024);

}  // namespace
