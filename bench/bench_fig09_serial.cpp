// Figure 9: serial performance. One NVIDIA K20x vs one IPA node (16
// E5-2670 cores), Sod problem, 3 levels of refinement, ratio 2, 1000
// timesteps, coarse resolutions from ~3 thousand to 6.4 million zones.
//
// Paper result: below 200k cells the GPU averages ~1.6x *slower* than
// the CPU; above, it wins, up to 2.67x at 6.4M (average 1.99x for
// >= 200k). The crossover is the launch-overhead-vs-bandwidth trade of
// the throughput-oriented GPU.
//
// Method: each configuration runs a short real simulation (every kernel,
// halo exchange and regrid actually executes); the machine model
// accumulates modeled time per step, which is scaled to the paper's 1000
// steps. The fused per-level launch batching (docs/kernel_batching.md)
// is on by default; the ablation block at the end re-runs one
// configuration with per-patch launches to show the batching win
// directly. Set RAMR_BENCH_FAST=1 to drop the two largest sizes.
//
// Emits BENCH_fig09.json (modeled s/step, launches/step, PCIe bytes/step
// per configuration) for CI perf tracking.
#include <cstdio>
#include <cstdlib>

#include "app/simulation.hpp"
#include "perf/machine.hpp"
#include "util/statistics.hpp"
#include "perf/report.hpp"

namespace {

struct Result {
  double seconds_1000 = 0.0;
  std::int64_t cells = 0;
  double pcie_per_step = 0.0;       ///< modeled PCIe crossings / timestep
  double pcie_bytes_per_step = 0.0; ///< modeled PCIe bytes / timestep
  double launches_per_step = 0.0;   ///< kernel launches / timestep
  double kernel_s_per_step = 0.0;   ///< modeled kernel seconds / timestep
};

Result run_backend(int n, const ramr::vgpu::DeviceSpec& spec,
                   bool batched = true,
                   std::int64_t max_patch_cells = 512 * 512) {
  ramr::app::SimulationConfig cfg;
  cfg.problem = "sod";
  cfg.nx = n;
  cfg.ny = n;
  cfg.max_levels = 3;
  cfg.ratio = 2;
  cfg.regrid_interval = 10;
  cfg.max_patch_cells = max_patch_cells;
  cfg.min_patch_size = 16;
  cfg.device = spec;
  cfg.batched_launch = batched;
  // Large problems exceed one modeled K20x (the paper's 6.4M-zone case
  // fills most of the 6 GB card); keep the model but uncap failure by
  // allowing spill, which the paper lists as future work. We instead
  // raise the modeled capacity for this sweep only.
  cfg.device.mem_bytes = 64ull << 30;

  ramr::app::Simulation sim(cfg, nullptr);
  sim.initialize();
  // Measure whole steps, including one regrid per 5 steps (the paper's
  // runtime includes regridding).
  sim.clock().reset();
  const ramr::vgpu::TransferLog transfers0 = sim.device().transfers();
  const std::uint64_t launches0 = sim.device().launch_count();
  const double kernel0 = sim.device().kernel_seconds();
  const int steps = 10;
  sim.run(steps);
  Result r;
  r.seconds_1000 = sim.clock().total() / steps * 1000.0;
  r.cells = static_cast<std::int64_t>(cfg.nx) * cfg.ny;
  const ramr::vgpu::TransferLog dt = sim.device().transfers() - transfers0;
  r.pcie_per_step = static_cast<double>(dt.total_count()) / steps;
  r.pcie_bytes_per_step = static_cast<double>(dt.total_bytes()) / steps;
  r.launches_per_step =
      static_cast<double>(sim.device().launch_count() - launches0) / steps;
  r.kernel_s_per_step =
      (sim.device().kernel_seconds() - kernel0) / steps;
  return r;
}

}  // namespace

int main() {
  const bool fast = std::getenv("RAMR_BENCH_FAST") != nullptr;
  std::printf(
      "Figure 9: serial performance, Sod, 1000 timesteps, 3 levels, r=2\n"
      "NVIDIA K20x (resident GPU CleverLeaf) vs 2x Intel E5-2670 (CPU "
      "CleverLeaf)\n"
      "(modeled runtimes from short real runs; see EXPERIMENTS.md)\n\n");

  const ramr::perf::Machine m = ramr::perf::ipa();
  // Coarse resolutions: 3,136 ... 6.4M zones (the paper's axis endpoints
  // are 3,125 and 6,400,000).
  std::vector<int> sizes = {56, 112, 224, 448, 896, 1792, 2530};
  if (fast) {
    sizes.resize(5);
  }

  ramr::perf::Table t({10, 12, 14, 14, 10, 12, 14});
  t.header({"n", "zones", "K20x (s)", "E5-2670 (s)", "GPU/CPU",
            "launch/step", "kernel s/step"});
  ramr::util::RunningStats small_speedup;
  ramr::util::RunningStats large_speedup;
  std::vector<std::pair<int, std::pair<Result, Result>>> all;
  for (int n : sizes) {
    const Result gpu = run_backend(n, m.gpu_spec);
    const Result cpu = run_backend(n, m.cpu_node_spec);
    const double speedup = cpu.seconds_1000 / gpu.seconds_1000;
    t.row({ramr::perf::Table::count(n), ramr::perf::Table::count(gpu.cells),
           ramr::perf::Table::seconds(gpu.seconds_1000),
           ramr::perf::Table::seconds(cpu.seconds_1000),
           ramr::perf::Table::ratio(speedup),
           ramr::perf::Table::count(
               static_cast<std::int64_t>(gpu.launches_per_step)),
           ramr::perf::Table::seconds(gpu.kernel_s_per_step)});
    (gpu.cells < 200000 ? small_speedup : large_speedup).add(speedup);
    all.push_back({n, {gpu, cpu}});
  }
  std::printf("\n");
  if (small_speedup.count() > 0) {
    std::printf("avg GPU/CPU below 200k zones: %.2fx (paper: 1/1.6 = 0.63x)\n",
                small_speedup.mean());
  }
  if (large_speedup.count() > 0) {
    std::printf("avg GPU/CPU at/above 200k zones: %.2fx (paper: 1.99x)\n",
                large_speedup.mean());
    std::printf("max GPU/CPU speedup: %.2fx (paper: 2.67x)\n",
                large_speedup.max());
  }

  // Batching ablation: 3-level 512^2 Sod decomposed into many small
  // (<= 64^2) patches — the launch-overhead-bound regime — with
  // per-patch launches (one kernel per patch per stage, the pre-batching
  // structure) against the default fused per-level launches.
  const int abl_n = 512;
  const std::int64_t abl_patch_cells = 64 * 64;
  const Result fused =
      run_backend(abl_n, m.gpu_spec, /*batched=*/true, abl_patch_cells);
  const Result per_patch =
      run_backend(abl_n, m.gpu_spec, /*batched=*/false, abl_patch_cells);
  std::printf(
      "\nBatching ablation (K20x, 3-level %d^2 Sod, <=64^2 patches):\n"
      "  fused      %6.0f launches/step  %.4f s/step\n"
      "  per-patch  %6.0f launches/step  %.4f s/step\n"
      "  -> %.2fx step speedup, %.1fx fewer launches\n",
      abl_n, fused.launches_per_step, fused.seconds_1000 / 1000.0,
      per_patch.launches_per_step, per_patch.seconds_1000 / 1000.0,
      per_patch.seconds_1000 / fused.seconds_1000,
      per_patch.launches_per_step / fused.launches_per_step);

  // Machine-readable record for CI perf tracking.
  if (FILE* json = std::fopen("BENCH_fig09.json", "w")) {
    std::fprintf(json, "{\n  \"configs\": [\n");
    for (std::size_t c = 0; c < all.size(); ++c) {
      const auto& [n, rr] = all[c];
      const auto& [gpu, cpu] = rr;
      std::fprintf(
          json,
          "    {\"n\": %d, \"zones\": %lld, \"gpu_s_per_step\": %.6e, "
          "\"cpu_s_per_step\": %.6e, \"gpu_launches_per_step\": %.1f, "
          "\"gpu_kernel_s_per_step\": %.6e, \"gpu_pcie_bytes_per_step\": "
          "%.1f, \"gpu_pcie_crossings_per_step\": %.1f}%s\n",
          n, static_cast<long long>(gpu.cells), gpu.seconds_1000 / 1000.0,
          cpu.seconds_1000 / 1000.0, gpu.launches_per_step,
          gpu.kernel_s_per_step, gpu.pcie_bytes_per_step, gpu.pcie_per_step,
          c + 1 < all.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"ablation\": {\"n\": %d, \"fused_s_per_step\": "
                 "%.6e, \"per_patch_s_per_step\": %.6e, "
                 "\"fused_launches_per_step\": %.1f, "
                 "\"per_patch_launches_per_step\": %.1f}\n}\n",
                 abl_n, fused.seconds_1000 / 1000.0,
                 per_patch.seconds_1000 / 1000.0, fused.launches_per_step,
                 per_patch.launches_per_step);
    std::fclose(json);
    std::printf("wrote BENCH_fig09.json\n");
  }
  return 0;
}
