// Figure 9: serial performance. One NVIDIA K20x vs one IPA node (16
// E5-2670 cores), Sod problem, 3 levels of refinement, ratio 2, 1000
// timesteps, coarse resolutions from ~3 thousand to 6.4 million zones.
//
// Paper result: below 200k cells the GPU averages ~1.6x *slower* than
// the CPU; above, it wins, up to 2.67x at 6.4M (average 1.99x for
// >= 200k). The crossover is the launch-overhead-vs-bandwidth trade of
// the throughput-oriented GPU.
//
// Method: each configuration runs a short real simulation (every kernel,
// halo exchange and regrid actually executes); the machine model
// accumulates modeled time per step, which is scaled to the paper's 1000
// steps. Set RAMR_BENCH_FAST=1 to drop the two largest sizes.
#include <cstdio>
#include <cstdlib>

#include "app/simulation.hpp"
#include "perf/machine.hpp"
#include "util/statistics.hpp"
#include "perf/report.hpp"

namespace {

struct Result {
  double seconds_1000 = 0.0;
  std::int64_t cells = 0;
  double pcie_per_step = 0.0;  ///< modeled PCIe crossings / timestep
};

Result run_backend(int n, const ramr::vgpu::DeviceSpec& spec) {
  ramr::app::SimulationConfig cfg;
  cfg.problem = ramr::app::ProblemKind::kSod;
  cfg.nx = n;
  cfg.ny = n;
  cfg.max_levels = 3;
  cfg.ratio = 2;
  cfg.regrid_interval = 10;
  cfg.max_patch_cells = 512 * 512;
  cfg.min_patch_size = 16;
  cfg.device = spec;
  // Large problems exceed one modeled K20x (the paper's 6.4M-zone case
  // fills most of the 6 GB card); keep the model but uncap failure by
  // allowing spill, which the paper lists as future work. We instead
  // raise the modeled capacity for this sweep only.
  cfg.device.mem_bytes = 64ull << 30;

  ramr::app::Simulation sim(cfg, nullptr);
  sim.initialize();
  // Measure whole steps, including one regrid per 5 steps (the paper's
  // runtime includes regridding).
  sim.clock().reset();
  const ramr::vgpu::TransferLog transfers0 = sim.device().transfers();
  const int steps = 10;
  sim.run(steps);
  Result r;
  r.seconds_1000 = sim.clock().total() / steps * 1000.0;
  r.cells = static_cast<std::int64_t>(cfg.nx) * cfg.ny;
  r.pcie_per_step =
      static_cast<double>((sim.device().transfers() - transfers0).total_count()) /
      steps;
  return r;
}

}  // namespace

int main() {
  const bool fast = std::getenv("RAMR_BENCH_FAST") != nullptr;
  std::printf(
      "Figure 9: serial performance, Sod, 1000 timesteps, 3 levels, r=2\n"
      "NVIDIA K20x (resident GPU CleverLeaf) vs 2x Intel E5-2670 (CPU "
      "CleverLeaf)\n"
      "(modeled runtimes from short real runs; see EXPERIMENTS.md)\n\n");

  const ramr::perf::Machine m = ramr::perf::ipa();
  // Coarse resolutions: 3,136 ... 6.4M zones (the paper's axis endpoints
  // are 3,125 and 6,400,000).
  std::vector<int> sizes = {56, 112, 224, 448, 896, 1792, 2530};
  if (fast) {
    sizes.resize(5);
  }

  ramr::perf::Table t({10, 12, 14, 14, 10, 13});
  t.header({"n", "zones", "K20x (s)", "E5-2670 (s)", "GPU/CPU",
            "PCIe x/step"});
  ramr::util::RunningStats small_speedup;
  ramr::util::RunningStats large_speedup;
  for (int n : sizes) {
    const Result gpu = run_backend(n, m.gpu_spec);
    const Result cpu = run_backend(n, m.cpu_node_spec);
    const double speedup = cpu.seconds_1000 / gpu.seconds_1000;
    t.row({ramr::perf::Table::count(n), ramr::perf::Table::count(gpu.cells),
           ramr::perf::Table::seconds(gpu.seconds_1000),
           ramr::perf::Table::seconds(cpu.seconds_1000),
           ramr::perf::Table::ratio(speedup),
           ramr::perf::Table::seconds(gpu.pcie_per_step)});
    (gpu.cells < 200000 ? small_speedup : large_speedup).add(speedup);
  }
  std::printf("\n");
  if (small_speedup.count() > 0) {
    std::printf("avg GPU/CPU below 200k zones: %.2fx (paper: 1/1.6 = 0.63x)\n",
                small_speedup.mean());
  }
  if (large_speedup.count() > 0) {
    std::printf("avg GPU/CPU at/above 200k zones: %.2fx (paper: 1.99x)\n",
                large_speedup.mean());
    std::printf("max GPU/CPU speedup: %.2fx (paper: 2.67x)\n",
                large_speedup.max());
  }
  return 0;
}
