// Ablation: residency. The paper's central design decision is that
// simulation data lives in GPU memory at all times; the contrast class
// (Wang et al. [4], GAMER [19], Uintah [7]) copies fields between host
// and device around every kernel group. This bench runs the real
// resident step and compares its modeled time against the same step with
// the copy-in/copy-out traffic added (state fields across PCIe around
// each of the step's kernel groups).
#include <cstdio>

#include "app/simulation.hpp"
#include "perf/machine.hpp"
#include "perf/report.hpp"

int main() {
  ramr::app::SimulationConfig cfg;
  cfg.problem = ramr::app::ProblemKind::kSod;
  cfg.nx = 512;
  cfg.ny = 512;
  cfg.max_levels = 3;
  cfg.regrid_interval = 5;
  cfg.device = ramr::perf::ipa().gpu_spec;

  ramr::app::Simulation sim(cfg, nullptr);
  sim.initialize();
  sim.clock().reset();
  const int steps = 5;
  sim.run(steps);
  const double resident = sim.clock().total() / steps;

  // Copy-in/copy-out model: the 8 kernel groups of the step each move
  // the live state (density, energy, pressure, viscosity, soundspeed,
  // velocities, fluxes ~ 13 field planes) both ways across PCIe.
  const double field_bytes =
      static_cast<double>(sim.hierarchy().total_cells()) * 13.0 * 8.0;
  const auto& spec = sim.device().spec();
  constexpr int kKernelGroups = 8;
  const double copy_penalty =
      2.0 * kKernelGroups *
      (spec.pcie_lat_s + field_bytes / (spec.pcie_bw_gbs * 1.0e9));
  const double nonresident = resident + copy_penalty;

  std::printf("Ablation: resident vs copy-in/copy-out GPU AMR (512^2 Sod, "
              "3 levels)\n\n");
  ramr::perf::Table t({30, 14});
  t.header({"", "s/step"});
  t.row({"resident (this work)", ramr::perf::Table::seconds(resident)});
  t.row({"copy-in/copy-out (modeled)", ramr::perf::Table::seconds(nonresident)});
  t.row({"residency speedup", ramr::perf::Table::ratio(nonresident / resident)});
  std::printf(
      "\nPCIe traffic of the resident step (log): %llu bytes D2H, %llu "
      "bytes H2D\n",
      static_cast<unsigned long long>(sim.device().transfers().d2h_bytes),
      static_cast<unsigned long long>(sim.device().transfers().h2d_bytes));
  std::printf("Resident traffic is tags + dt scalars + level-sync staging "
              "only —\n%.2f%% of one copy-in/copy-out round trip.\n",
              100.0 * sim.device().transfers().total_bytes() /
                  (2.0 * field_bytes));
  return 0;
}
