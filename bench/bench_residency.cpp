// Ablation: residency. The paper's central design decision is that
// simulation data lives in GPU memory at all times; the contrast class
// (Wang et al. [4], GAMER [19], Uintah [7]) copies fields between host
// and device around every kernel group. This bench runs the real
// resident step and compares its modeled time against the same step with
// the copy-in/copy-out traffic added (state fields across PCIe around
// each of the step's kernel groups).
//
// It also asserts the post-batching residency accounting: with fused
// per-level launches a serial step's resident PCIe traffic is regrid
// tags + ONE dt scalar per level per step + inter-level staging only
// (per-patch dt readbacks are gone; see docs/kernel_batching.md).
#include <cstdio>

#include "app/simulation.hpp"
#include "perf/machine.hpp"
#include "perf/report.hpp"

int main() {
  ramr::app::SimulationConfig cfg;
  cfg.problem = "sod";
  cfg.nx = 512;
  cfg.ny = 512;
  cfg.max_levels = 3;
  cfg.regrid_interval = 5;
  cfg.device = ramr::perf::ipa().gpu_spec;

  ramr::app::Simulation sim(cfg, nullptr);
  sim.initialize();
  sim.clock().reset();
  const ramr::vgpu::TransferLog transfers0 = sim.device().transfers();
  const int steps = 5;
  const int levels = sim.hierarchy().num_levels();
  // One dt scalar per level per step; count the levels each step sees,
  // since a regrid inside the window may change the hierarchy depth.
  std::uint64_t expected_scalars = 0;
  for (int s = 0; s < steps; ++s) {
    expected_scalars += static_cast<std::uint64_t>(sim.hierarchy().num_levels());
    sim.step();
  }
  const double resident = sim.clock().total() / steps;
  const ramr::vgpu::TransferLog traffic =
      sim.device().transfers() - transfers0;

  // Copy-in/copy-out model: the 8 kernel groups of the step each move
  // the live state (density, energy, pressure, viscosity, soundspeed,
  // velocities, fluxes ~ 13 field planes) both ways across PCIe.
  const double field_bytes =
      static_cast<double>(sim.hierarchy().total_cells()) * 13.0 * 8.0;
  const auto& spec = sim.device().spec();
  constexpr int kKernelGroups = 8;
  const double copy_penalty =
      2.0 * kKernelGroups *
      (spec.pcie_lat_s + field_bytes / (spec.pcie_bw_gbs * 1.0e9));
  const double nonresident = resident + copy_penalty;

  std::printf("Ablation: resident vs copy-in/copy-out GPU AMR (512^2 Sod, "
              "3 levels)\n\n");
  ramr::perf::Table t({30, 14});
  t.header({"", "s/step"});
  t.row({"resident (this work)", ramr::perf::Table::seconds(resident)});
  t.row({"copy-in/copy-out (modeled)", ramr::perf::Table::seconds(nonresident)});
  t.row({"residency speedup", ramr::perf::Table::ratio(nonresident / resident)});
  std::printf(
      "\nPCIe traffic of the resident run (%d steps): %llu bytes D2H, %llu "
      "bytes H2D\n",
      steps, static_cast<unsigned long long>(traffic.d2h_bytes),
      static_cast<unsigned long long>(traffic.h2d_bytes));
  std::printf(
      "Resident traffic is regrid tags + ONE dt scalar per level per step\n"
      "(%d levels x %d steps = %llu scalar readbacks; per-patch launching\n"
      "read one back per patch) + inter-level staging only — %.2f%% of one\n"
      "copy-in/copy-out round trip.\n",
      levels, steps, static_cast<unsigned long long>(traffic.d2h_scalar_count),
      100.0 * traffic.total_bytes() / (2.0 * field_bytes));

  // Hard accounting check, enforced in CI's bench-smoke job: exactly one
  // dt scalar per level per step.
  if (traffic.d2h_scalar_count != expected_scalars) {
    std::printf("FAIL: expected %llu dt scalar readbacks, logged %llu\n",
                static_cast<unsigned long long>(expected_scalars),
                static_cast<unsigned long long>(traffic.d2h_scalar_count));
    return 1;
  }
  std::printf("OK: dt readback accounting matches (one scalar per level per "
              "step)\n");

  // Transfer-path launch accounting (compiled transfer plans): an
  // exchange must never issue more fused pack/unpack launches than it
  // sends/receives aggregated messages, and local copies fuse into at
  // most two launches per engine exchange — one apply, plus one
  // snapshot gather where node/side seam reads alias writes — with up to
  // two engine exchanges per refine fill (same-level + coarse gather).
  // A serial run sends no messages at all, so the pack/unpack bounds
  // double as "zero pack/unpack launches" here.
  const auto& tc = sim.integrator().transfer_counters();
  const std::uint64_t pack_launches =
      sim.device().launch_count(ramr::vgpu::LaunchTag::kTransferPack);
  const std::uint64_t unpack_launches =
      sim.device().launch_count(ramr::vgpu::LaunchTag::kTransferUnpack);
  const std::uint64_t copy_launches =
      sim.device().launch_count(ramr::vgpu::LaunchTag::kLocalCopy);
  std::printf(
      "\ntransfer-path launches: %llu pack (%llu messages sent), %llu "
      "unpack (%llu received), %llu local-copy (%llu exchanges)\n",
      static_cast<unsigned long long>(pack_launches),
      static_cast<unsigned long long>(tc.messages_sent),
      static_cast<unsigned long long>(unpack_launches),
      static_cast<unsigned long long>(tc.messages_received),
      static_cast<unsigned long long>(copy_launches),
      static_cast<unsigned long long>(tc.halo_fills));
  if (pack_launches > tc.messages_sent) {
    std::printf("FAIL: %llu pack launches for %llu messages sent\n",
                static_cast<unsigned long long>(pack_launches),
                static_cast<unsigned long long>(tc.messages_sent));
    return 1;
  }
  if (unpack_launches > tc.messages_received) {
    std::printf("FAIL: %llu unpack launches for %llu messages received\n",
                static_cast<unsigned long long>(unpack_launches),
                static_cast<unsigned long long>(tc.messages_received));
    return 1;
  }
  if (copy_launches > 4 * tc.halo_fills) {
    std::printf("FAIL: %llu local-copy launches for %llu exchanges\n",
                static_cast<unsigned long long>(copy_launches),
                static_cast<unsigned long long>(tc.halo_fills));
    return 1;
  }
  std::printf("OK: transfer launch accounting matches (fused plans: at most "
              "one launch per message / exchange)\n");

  // Compiled-plan demotions: a single-device run's endpoints are always
  // device-viewable, so every exchange must take the compiled path. A
  // nonzero count is the silent legacy fallback this counter exists to
  // catch.
  if (tc.plan_fallbacks != 0) {
    std::printf("FAIL: %llu compiled-plan fallbacks on a single-device run\n",
                static_cast<unsigned long long>(tc.plan_fallbacks));
    return 1;
  }
  std::printf("OK: zero compiled-plan fallbacks\n");
  return 0;
}
