// Micro-bench: the paper's data-parallel refine/coarsen operators
// (§IV-B2, Figs. 5, 7, 8) — wall time of the real data-parallel
// execution plus the modeled K20x kernel time as a counter.
#include <benchmark/benchmark.h>

#include "geom/coarsen_operators.hpp"
#include "geom/refine_operators.hpp"
#include "pdat/cuda/cuda_data.hpp"
#include "vgpu/device_spec.hpp"

namespace {

using ramr::mesh::Box;
using ramr::mesh::IntVector;
using ramr::pdat::cuda::CudaCellData;
using ramr::pdat::cuda::CudaNodeData;
using ramr::pdat::cuda::CudaSideData;

template <typename Data>
struct RefinePair {
  ramr::vgpu::Device device{ramr::vgpu::tesla_k20x()};
  Box coarse_cells;
  Box fine_cells;
  Data coarse;
  Data fine;

  explicit RefinePair(int n, int r)
      : coarse_cells(0, 0, n - 1, n - 1),
        fine_cells(coarse_cells.refine(IntVector(r, r))),
        coarse(device, coarse_cells, IntVector(2, 2)),
        fine(device, fine_cells, IntVector(2, 2)) {
    coarse.fill(1.0);
    fine.fill(0.0);
  }
};

void BM_NodeLinearRefine(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  RefinePair<CudaNodeData> p(n, 2);
  ramr::geom::NodeLinearRefine op;
  for (auto _ : state) {
    op.refine(p.fine, p.coarse, p.fine_cells, IntVector(2, 2));
  }
  state.SetItemsProcessed(state.iterations() * p.fine_cells.size());
  state.counters["modeled_us_per_call"] =
      p.device.clock().total() / state.iterations() * 1e6;
}
BENCHMARK(BM_NodeLinearRefine)->Arg(64)->Arg(256)->Arg(1024);

void BM_CellConservativeLinearRefine(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  RefinePair<CudaCellData> p(n, 2);
  ramr::geom::CellConservativeLinearRefine op;
  for (auto _ : state) {
    op.refine(p.fine, p.coarse, p.fine_cells, IntVector(2, 2));
  }
  state.SetItemsProcessed(state.iterations() * p.fine_cells.size());
  state.counters["modeled_us_per_call"] =
      p.device.clock().total() / state.iterations() * 1e6;
}
BENCHMARK(BM_CellConservativeLinearRefine)->Arg(64)->Arg(256)->Arg(1024);

void BM_SideConservativeLinearRefine(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  RefinePair<CudaSideData> p(n, 2);
  ramr::geom::SideConservativeLinearRefine op;
  for (auto _ : state) {
    op.refine(p.fine, p.coarse, p.fine_cells, IntVector(2, 2));
  }
  state.SetItemsProcessed(state.iterations() * p.fine_cells.size() * 2);
  state.counters["modeled_us_per_call"] =
      p.device.clock().total() / state.iterations() * 1e6;
}
BENCHMARK(BM_SideConservativeLinearRefine)->Arg(64)->Arg(256);

void BM_NodeInjectionCoarsen(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  RefinePair<CudaNodeData> p(n, 2);
  ramr::geom::NodeInjectionCoarsen op;
  for (auto _ : state) {
    op.coarsen(p.coarse, p.fine, nullptr, p.coarse_cells, IntVector(2, 2));
  }
  state.SetItemsProcessed(state.iterations() * p.coarse_cells.size());
  state.counters["modeled_us_per_call"] =
      p.device.clock().total() / state.iterations() * 1e6;
}
BENCHMARK(BM_NodeInjectionCoarsen)->Arg(64)->Arg(256)->Arg(1024);

void BM_VolumeWeightedCoarsen(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  RefinePair<CudaCellData> p(n, r);
  ramr::geom::VolumeWeightedCoarsen op;
  for (auto _ : state) {
    op.coarsen(p.coarse, p.fine, nullptr, p.coarse_cells, IntVector(r, r));
  }
  state.SetItemsProcessed(state.iterations() * p.fine_cells.size());
  state.counters["modeled_us_per_call"] =
      p.device.clock().total() / state.iterations() * 1e6;
}
BENCHMARK(BM_VolumeWeightedCoarsen)
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({1024, 2});

void BM_MassWeightedCoarsen(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  RefinePair<CudaCellData> p(n, 2);
  CudaCellData density(p.device, p.fine_cells, IntVector(2, 2));
  density.fill(1.25);
  ramr::geom::MassWeightedCoarsen op;
  for (auto _ : state) {
    op.coarsen(p.coarse, p.fine, &density, p.coarse_cells, IntVector(2, 2));
  }
  state.SetItemsProcessed(state.iterations() * p.fine_cells.size());
  state.counters["modeled_us_per_call"] =
      p.device.clock().total() / state.iterations() * 1e6;
}
BENCHMARK(BM_MassWeightedCoarsen)->Arg(256)->Arg(1024);

}  // namespace
