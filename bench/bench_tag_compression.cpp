// Ablation: bit-compressed tag transfer (paper §IV-C). Tags are
// computed on the device as ints; the paper compresses them to bits
// before the PCIe transfer (32x smaller) and skips untagged patches
// entirely via a per-patch flag. Counters report the transferred bytes
// and modeled time of each variant.
#include <benchmark/benchmark.h>

#include "amr/tag_buffer.hpp"
#include "vgpu/device_spec.hpp"

namespace {

using ramr::amr::DeviceTagData;
using ramr::mesh::Box;

/// Tags a diagonal band (a shock-front-like pattern, ~10% of cells).
void tag_band(ramr::vgpu::Device& dev, DeviceTagData& tags) {
  auto view = tags.device_view();
  const Box box = tags.box();
  ramr::vgpu::Stream s(dev, "bench");
  dev.launch2d(s, box.lower().i, box.lower().j, box.width(), box.height(),
               ramr::vgpu::KernelCost{2.0, 4.0}, [=](int i, int j) {
                 view(i, j) = (std::abs(i - j) < box.width() / 20) ? 1 : 0;
               });
}

void BM_CompressedTagDownload(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ramr::vgpu::Device dev(ramr::vgpu::tesla_k20x());
  DeviceTagData tags(dev, Box(0, 0, n - 1, n - 1));
  tag_band(dev, tags);
  dev.clock().reset();
  dev.transfers().reset();
  for (auto _ : state) {
    auto words = tags.download_compressed();
    benchmark::DoNotOptimize(words.data());
  }
  state.counters["bytes_per_transfer"] =
      static_cast<double>(dev.transfers().d2h_bytes) / state.iterations();
  state.counters["modeled_us"] = dev.clock().total() / state.iterations() * 1e6;
}
BENCHMARK(BM_CompressedTagDownload)->Arg(128)->Arg(512)->Arg(2048);

void BM_RawTagDownload(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ramr::vgpu::Device dev(ramr::vgpu::tesla_k20x());
  DeviceTagData tags(dev, Box(0, 0, n - 1, n - 1));
  tag_band(dev, tags);
  dev.clock().reset();
  dev.transfers().reset();
  for (auto _ : state) {
    auto ints = tags.download_raw();
    benchmark::DoNotOptimize(ints.data());
  }
  state.counters["bytes_per_transfer"] =
      static_cast<double>(dev.transfers().d2h_bytes) / state.iterations();
  state.counters["modeled_us"] = dev.clock().total() / state.iterations() * 1e6;
}
BENCHMARK(BM_RawTagDownload)->Arg(128)->Arg(512)->Arg(2048);

void BM_UntaggedPatchShortCircuit(benchmark::State& state) {
  // An untagged patch costs one flag readback, not a tag array transfer.
  const int n = static_cast<int>(state.range(0));
  ramr::vgpu::Device dev(ramr::vgpu::tesla_k20x());
  DeviceTagData tags(dev, Box(0, 0, n - 1, n - 1));
  dev.clock().reset();
  dev.transfers().reset();
  for (auto _ : state) {
    const bool any = tags.any_tagged();
    benchmark::DoNotOptimize(any);
  }
  state.counters["bytes_per_check"] =
      static_cast<double>(dev.transfers().d2h_bytes) / state.iterations();
  state.counters["modeled_us"] = dev.clock().total() / state.iterations() * 1e6;
}
BENCHMARK(BM_UntaggedPatchShortCircuit)->Arg(512)->Arg(2048);

}  // namespace
