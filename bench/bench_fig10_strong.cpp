// Figure 10: strong-scaling parallel performance on IPA. The 6.4M-zone
// Sod problem, 1000 timesteps, on 1-8 nodes: the GPU code runs 2 MPI
// ranks per node (one per K20x), the CPU code one rank per node (16
// cores). Paper result: GPUs 4.87x faster on one node, dropping to
// 1.92x on eight — boundary exchange and regridding become the serial
// fraction (Amdahl) as per-GPU work shrinks.
//
// Method: real distributed runs (threaded ranks, modeled network wire
// time) at a reduced number of steps, scaled to 1000. Set
// RAMR_BENCH_FAST=1 for a smaller problem.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "app/simulation.hpp"
#include "perf/machine.hpp"
#include "perf/report.hpp"

namespace {

struct Run {
  double seconds_1000 = 0.0;
  double overlap_saved_1000 = 0.0;  ///< slowest rank's overlap_seconds_saved
  /// Slowest rank's per-window overlap attribution (wide runs): which
  /// fill windows actually hide time (TransferCounters::window).
  double window_saved_1000[ramr::app::TransferCounters::kWindowCount] = {};
  double hydro_fraction = 0.0;
  double messages_per_fill = 0.0;   ///< aggregated messages sent / schedule fill
  double pcie_per_step = 0.0;       ///< modeled PCIe crossings / timestep
  double launches_per_step = 0.0;   ///< fused kernel launches / timestep
  double kernel_s_per_step = 0.0;   ///< modeled kernel seconds / timestep
  double pack_per_step = 0.0;       ///< fused pack launches / timestep
  double unpack_per_step = 0.0;     ///< fused unpack launches / timestep
  double local_copy_per_step = 0.0; ///< fused local-copy launches / timestep
  double messages_per_step = 0.0;   ///< wire messages sent / timestep
  double received_per_step = 0.0;   ///< wire messages received / timestep
};

Run run_config(int n, int ranks, const ramr::vgpu::DeviceSpec& spec,
               const ramr::simmpi::NetworkSpec& net, bool async_overlap = false,
               bool wide_overlap = true, bool traced = false) {
  ramr::app::SimulationConfig cfg;
  cfg.problem = "sod";
  cfg.nx = n;
  cfg.ny = n;
  cfg.max_levels = 3;
  cfg.ratio = 2;
  cfg.regrid_interval = 10;
  cfg.max_patch_cells = 512 * 512;
  cfg.min_patch_size = 16;
  cfg.device = spec;
  cfg.device.mem_bytes = 64ull << 30;
  cfg.async_overlap = async_overlap;
  cfg.wide_overlap = wide_overlap;
  if (traced) {
    // Observability-overhead check: span tracing only observes the clock,
    // so the traced run must reproduce the modeled time bit-identically.
    auto oc = std::make_shared<ramr::obs::ObservabilityConfig>();
    oc->trace = true;
    oc->trace_capacity = 1 << 15;
    cfg.observability = std::move(oc);
  }

  const int steps = 10;
  std::mutex m;
  double worst_total = 0.0;
  double worst_saved = 0.0;
  double worst_hydro = 0.0;
  double worst_msgs_per_fill = 0.0;
  double worst_pcie_per_step = 0.0;
  double worst_launches_per_step = 0.0;
  double worst_kernel_s_per_step = 0.0;
  double worst_pack_per_step = 0.0;
  double worst_unpack_per_step = 0.0;
  double worst_local_copy_per_step = 0.0;
  double worst_messages_per_step = 0.0;
  double worst_received_per_step = 0.0;
  ramr::app::TransferCounters worst_counters;
  ramr::simmpi::World world(ranks, net);
  world.run([&](ramr::simmpi::Communicator& comm) {
    ramr::app::Simulation sim(cfg, &comm);
    sim.initialize();
    sim.clock().reset();
    const ramr::simmpi::CommStats comm0 = comm.stats();
    const ramr::vgpu::TransferLog transfers0 = sim.device().transfers();
    const ramr::app::TransferCounters tc0 = sim.integrator().transfer_counters();
    const std::uint64_t launches0 = sim.device().launch_count();
    const std::uint64_t pack0 =
        sim.device().launch_count(ramr::vgpu::LaunchTag::kTransferPack);
    const std::uint64_t unpack0 =
        sim.device().launch_count(ramr::vgpu::LaunchTag::kTransferUnpack);
    const std::uint64_t copy0 =
        sim.device().launch_count(ramr::vgpu::LaunchTag::kLocalCopy);
    const double kernel0 = sim.device().kernel_seconds();
    sim.run(steps);
    // The slowest rank sets the runtime. With async_overlap the rank's
    // completion time is the timeline makespan (max over its lanes),
    // not the serial charge sum.
    const double total = sim.modeled_seconds();
    const double saved =
        sim.timeline() != nullptr ? sim.timeline()->overlap_seconds_saved()
                                  : 0.0;
    const double hydro = sim.clock().component("hydro");
    // Aggregated-transfer diagnostics: with one message per peer per
    // fill, messages/fill approaches the rank's neighbour count, and the
    // fused pack keeps modeled PCIe crossings per step flat.
    const ramr::app::TransferCounters tc = sim.integrator().transfer_counters();
    const std::uint64_t fills = tc.halo_fills - tc0.halo_fills;
    const std::uint64_t msgs = tc.messages_sent - tc0.messages_sent;
    const ramr::vgpu::TransferLog dt =
        sim.device().transfers() - transfers0;
    std::lock_guard<std::mutex> lock(m);
    if (total > worst_total) {
      worst_total = total;
      worst_saved = saved;
      worst_hydro = hydro;
      worst_msgs_per_fill =
          fills > 0 ? static_cast<double>(msgs) / fills : 0.0;
      worst_pcie_per_step = static_cast<double>(dt.total_count()) / steps;
      worst_launches_per_step =
          static_cast<double>(sim.device().launch_count() - launches0) / steps;
      worst_kernel_s_per_step =
          (sim.device().kernel_seconds() - kernel0) / steps;
      worst_pack_per_step =
          static_cast<double>(
              sim.device().launch_count(ramr::vgpu::LaunchTag::kTransferPack) -
              pack0) /
          steps;
      worst_unpack_per_step =
          static_cast<double>(sim.device().launch_count(
                                  ramr::vgpu::LaunchTag::kTransferUnpack) -
                              unpack0) /
          steps;
      worst_local_copy_per_step =
          static_cast<double>(
              sim.device().launch_count(ramr::vgpu::LaunchTag::kLocalCopy) -
              copy0) /
          steps;
      // Wire-level message counts (includes the regrid solution
      // transfer, which the integrator counters do not own) for the
      // pack/unpack launch-budget check.
      const ramr::simmpi::CommStats cs = comm.stats() - comm0;
      worst_messages_per_step = static_cast<double>(cs.messages_sent) / steps;
      worst_received_per_step =
          static_cast<double>(cs.messages_received) / steps;
      worst_counters = tc;
    }
  });
  Run r;
  r.seconds_1000 = worst_total / steps * 1000.0;
  r.overlap_saved_1000 = worst_saved / steps * 1000.0;
  r.hydro_fraction = worst_total > 0.0 ? worst_hydro / worst_total : 0.0;
  r.messages_per_fill = worst_msgs_per_fill;
  r.pcie_per_step = worst_pcie_per_step;
  r.launches_per_step = worst_launches_per_step;
  r.kernel_s_per_step = worst_kernel_s_per_step;
  r.pack_per_step = worst_pack_per_step;
  r.unpack_per_step = worst_unpack_per_step;
  r.local_copy_per_step = worst_local_copy_per_step;
  r.messages_per_step = worst_messages_per_step;
  r.received_per_step = worst_received_per_step;
  for (int w = 0; w < ramr::app::TransferCounters::kWindowCount; ++w) {
    r.window_saved_1000[w] =
        worst_counters.window[w].overlap_seconds_saved / steps * 1000.0;
  }
  return r;
}

}  // namespace

int main() {
  const bool fast = std::getenv("RAMR_BENCH_FAST") != nullptr;
  const int n = fast ? 896 : 2530;  // 6.4M zones as in the paper
  std::printf(
      "Figure 10: strong scaling on IPA, Sod %dx%d (%.1fM zones), 1000 "
      "steps\n"
      "GPU code: 2 ranks/node (1 per K20x); CPU code: 1 rank/node (16 "
      "cores)\n\n",
      n, n, n * static_cast<double>(n) / 1e6);

  const ramr::perf::Machine m = ramr::perf::ipa();
  ramr::perf::Table t(
      {8, 12, 12, 12, 12, 12, 14, 10, 16, 10, 13, 13, 11, 11, 11});
  t.header({"nodes", "K20x (s)", "async (s)", "traced (s)", "saved (s)",
            "saved1w (s)", "E5-2670 (s)", "GPU/CPU", "GPU hydro frac",
            "msg/fill", "PCIe x/step", "launch/step", "pack/step",
            "unpk/step", "copy/step"});
  double first_speedup = 0.0;
  double last_speedup = 0.0;
  struct Row {
    Run gpu, gpu_async, gpu_narrow, gpu_traced, cpu;
  };
  std::vector<std::pair<int, Row>> all;
  for (int nodes : {1, 2, 4, 8}) {
    const Run gpu = run_config(n, 2 * nodes, m.gpu_spec, m.network);
    // Wide overlap (default): every fill window hides behind its
    // consumer stage's interior sweep. The narrow ablation is the
    // original single-window path (only the state exchange overlaps).
    const Run gpu_async =
        run_config(n, 2 * nodes, m.gpu_spec, m.network, /*async=*/true);
    const Run gpu_narrow = run_config(n, 2 * nodes, m.gpu_spec, m.network,
                                      /*async=*/true, /*wide=*/false);
    // The async run again with span tracing on — the observability
    // overhead column, hard-asserted bit-identical below.
    const Run gpu_traced = run_config(n, 2 * nodes, m.gpu_spec, m.network,
                                      /*async=*/true, /*wide=*/true,
                                      /*traced=*/true);
    const Run cpu = run_config(n, nodes, m.cpu_node_spec, m.network);
    const double speedup = cpu.seconds_1000 / gpu.seconds_1000;
    if (nodes == 1) first_speedup = speedup;
    last_speedup = speedup;
    all.push_back({nodes, Row{gpu, gpu_async, gpu_narrow, gpu_traced, cpu}});
    t.row({ramr::perf::Table::count(nodes),
           ramr::perf::Table::seconds(gpu.seconds_1000),
           ramr::perf::Table::seconds(gpu_async.seconds_1000),
           ramr::perf::Table::seconds(gpu_traced.seconds_1000),
           ramr::perf::Table::seconds(gpu_async.overlap_saved_1000),
           ramr::perf::Table::seconds(gpu_narrow.overlap_saved_1000),
           ramr::perf::Table::seconds(cpu.seconds_1000),
           ramr::perf::Table::ratio(speedup),
           ramr::perf::Table::percent(gpu.hydro_fraction),
           ramr::perf::Table::seconds(gpu.messages_per_fill),
           ramr::perf::Table::seconds(gpu.pcie_per_step),
           ramr::perf::Table::count(
               static_cast<std::int64_t>(gpu.launches_per_step)),
           ramr::perf::Table::seconds(gpu.pack_per_step),
           ramr::perf::Table::seconds(gpu.unpack_per_step),
           ramr::perf::Table::seconds(gpu.local_copy_per_step)});
    // Hard accounting check (compiled transfer plans): the slowest rank
    // may not issue more fused pack (unpack) launches per step than it
    // sends (receives) wire messages per step.
    if (gpu.pack_per_step > gpu.messages_per_step + 1e-9) {
      std::printf("FAIL: %.1f pack launches/step for %.1f messages/step\n",
                  gpu.pack_per_step, gpu.messages_per_step);
      return 1;
    }
    if (gpu.unpack_per_step > gpu.received_per_step + 1e-9) {
      std::printf(
          "FAIL: %.1f unpack launches/step for %.1f received messages/step\n",
          gpu.unpack_per_step, gpu.received_per_step);
      return 1;
    }
    // Hard acceptance check (async timeline subsystem): the distributed
    // async path must beat the synchronous compiled path's modeled step
    // time (wire time hidden behind interior compute) and the slowest
    // rank must report a positive overlap saving. Launch contents are
    // identical, so this is purely the timing model's overlap.
    if (gpu_async.seconds_1000 >= gpu.seconds_1000) {
      std::printf("FAIL: async %.3f s not below sync %.3f s at %d nodes\n",
                  gpu_async.seconds_1000, gpu.seconds_1000, nodes);
      return 1;
    }
    if (gpu_async.overlap_saved_1000 <= 0.0) {
      std::printf("FAIL: overlap saved %.6f s not positive at %d nodes\n",
                  gpu_async.overlap_saved_1000, nodes);
      return 1;
    }
    // Hard acceptance check (wide overlap): at 2 and 4 nodes the widened
    // window must hide strictly more modeled time than the single-window
    // path it generalises.
    if ((nodes == 2 || nodes == 4) &&
        gpu_async.overlap_saved_1000 <= gpu_narrow.overlap_saved_1000) {
      std::printf(
          "FAIL: wide overlap saved %.6f s not above single-window %.6f s "
          "at %d nodes\n",
          gpu_async.overlap_saved_1000, gpu_narrow.overlap_saved_1000, nodes);
      return 1;
    }
    // Hard acceptance check (observability): tracing is a passive
    // observer of the modeled clock, so the traced modeled step time must
    // be BIT-identical (==, not approximately) to the untraced run.
    if (gpu_traced.seconds_1000 != gpu_async.seconds_1000) {
      std::printf(
          "FAIL: tracing changed the modeled time at %d nodes "
          "(%.17e vs %.17e s)\n",
          nodes, gpu_traced.seconds_1000, gpu_async.seconds_1000);
      return 1;
    }
  }
  std::printf(
      "\nspeedup at 1 node: %.2fx (paper: 4.87x); at 8 nodes: %.2fx "
      "(paper: 1.92x)\n",
      first_speedup, last_speedup);
  std::printf(
      "async (s) is the same run under SimulationConfig::async_overlap with\n"
      "the (default) wide_overlap window: EVERY per-step exchange executes\n"
      "split-phase around the ghost-free interior sweep of its consumer\n"
      "stage (interior/rind stage decomposition), wire legs ride the\n"
      "timeline's network lane, and the slowest rank completes at the max\n"
      "of its lane chains (imbalance waits excluded for comparability with\n"
      "the busy-only sync column — see docs/async_overlap.md); saved (s)\n"
      "is that rank's overlap_seconds_saved, saved1w (s) the same under\n"
      "the single-window (state-exchange-only) ablation. traced (s)\n"
      "repeats the async run with span tracing on (the observability\n"
      "block, docs/observability.md): hard-asserted BIT-identical, since\n"
      "the recorder observes clock charges and never makes one. Fields\n"
      "are bit-identical in every mode.\n"
      "The falloff is the paper's Amdahl effect: boundary exchange and\n"
      "(host-side) regridding do not shrink with per-GPU work.\n"
      "msg/fill counts the slowest rank's aggregated sends per schedule\n"
      "execution (one message per peer per fill); PCIe x/step is that\n"
      "rank's modeled crossings per timestep with the fused device pack;\n"
      "launch/step is that rank's fused kernel launches per timestep\n"
      "(one per kernel sub-stage per level, independent of patch count).\n"
      "pack/unpk/copy per step are the compiled transfer plans' fused\n"
      "launches: one pack per message sent, one unpack per message\n"
      "received, one local-copy per engine exchange (plus one snapshot\n"
      "gather where node/side seam reads alias writes).\n");

  // Machine-readable record for CI perf tracking (alongside
  // BENCH_fig09.json).
  if (FILE* json = std::fopen("BENCH_fig10.json", "w")) {
    std::fprintf(json, "{\n  \"zones\": %lld,\n  \"configs\": [\n",
                 static_cast<long long>(n) * n);
    for (std::size_t c = 0; c < all.size(); ++c) {
      const auto& [nodes, rr] = all[c];
      const auto& [gpu, gpu_async, gpu_narrow, gpu_traced, cpu] = rr;
      std::fprintf(
          json,
          "    {\"nodes\": %d, \"gpu_s_per_step\": %.6e, "
          "\"gpu_async_s_per_step\": %.6e, "
          "\"gpu_traced_s_per_step\": %.6e, "
          "\"overlap_saved_per_step\": %.6e, "
          "\"overlap_saved_narrow_per_step\": %.6e, "
          "\"cpu_s_per_step\": %.6e, \"gpu_hydro_fraction\": %.4f, "
          "\"messages_per_fill\": %.3f, \"pcie_per_step\": %.1f, "
          "\"launches_per_step\": %.1f, \"pack_per_step\": %.1f, "
          "\"unpack_per_step\": %.1f, \"local_copy_per_step\": %.1f, "
          "\"window_saved_per_step\": {",
          nodes, gpu.seconds_1000 / 1000.0, gpu_async.seconds_1000 / 1000.0,
          gpu_traced.seconds_1000 / 1000.0,
          gpu_async.overlap_saved_1000 / 1000.0,
          gpu_narrow.overlap_saved_1000 / 1000.0, cpu.seconds_1000 / 1000.0,
          gpu.hydro_fraction, gpu.messages_per_fill, gpu.pcie_per_step,
          gpu.launches_per_step, gpu.pack_per_step, gpu.unpack_per_step,
          gpu.local_copy_per_step);
      for (int w = 0; w < ramr::app::TransferCounters::kWindowCount; ++w) {
        std::fprintf(json, "\"%s\": %.6e%s",
                     ramr::app::TransferCounters::window_name(w),
                     gpu_async.window_saved_1000[w] / 1000.0,
                     w + 1 < ramr::app::TransferCounters::kWindowCount ? ", "
                                                                       : "");
      }
      std::fprintf(json, "}}%s\n", c + 1 < all.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_fig10.json\n");
  }
  return 0;
}
