// Micro-bench: Berger-Rigoutsos clustering and load balancing — the
// host-side regridding work that becomes the Amdahl bottleneck in the
// paper's strong-scaling study (§V-B).
#include <benchmark/benchmark.h>

#include <cmath>

#include "amr/berger_rigoutsos.hpp"
#include "amr/load_balancer.hpp"

namespace {

using ramr::amr::ClusterParams;
using ramr::amr::TagBitmap;
using ramr::mesh::Box;

TagBitmap ring_tags(int n) {
  // An annulus, like a radiating shock front.
  TagBitmap tags(Box(0, 0, n - 1, n - 1));
  const double c = n / 2.0;
  const double r0 = n / 4.0;
  const double r1 = n / 4.0 + n / 32.0 + 2.0;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      const double r = std::hypot(i - c, j - c);
      if (r >= r0 && r <= r1) {
        tags.set(i, j);
      }
    }
  }
  return tags;
}

void BM_BergerRigoutsosRing(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const TagBitmap tags = ring_tags(n);
  ClusterParams params;
  params.min_size = 8;
  std::size_t boxes = 0;
  for (auto _ : state) {
    const auto out =
        ramr::amr::berger_rigoutsos(tags, tags.region(), params);
    boxes = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["boxes"] = static_cast<double>(boxes);
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_BergerRigoutsosRing)->Arg(128)->Arg(512)->Arg(2048);

void BM_TagBuffer(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    TagBitmap tags = ring_tags(n);
    state.ResumeTiming();
    tags.buffer(2);
    benchmark::DoNotOptimize(tags.count_tags());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TagBuffer)->Arg(128)->Arg(512);

void BM_LoadBalance(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int ranks = static_cast<int>(state.range(1));
  const TagBitmap tags = ring_tags(n);
  ClusterParams cp;
  cp.min_size = 8;
  const auto boxes = ramr::amr::berger_rigoutsos(tags, tags.region(), cp);
  ramr::amr::BalanceParams bp;
  bp.max_patch_cells = 64 * 64;
  double imbalance = 0.0;
  for (auto _ : state) {
    const auto patches = ramr::amr::balance_boxes(boxes, ranks, bp);
    imbalance = ramr::amr::load_imbalance(patches, ranks);
    benchmark::DoNotOptimize(patches.data());
  }
  state.counters["imbalance"] = imbalance;
}
BENCHMARK(BM_LoadBalance)->Args({512, 4})->Args({512, 64})->Args({2048, 1024});

}  // namespace
