// Table I: hardware and software configurations of IPA and Titan. Every
// other bench pulls its device and network models from these presets, so
// this bench both reproduces the table and documents the model inputs.
#include <cstdio>

#include "perf/machine.hpp"
#include "perf/report.hpp"

int main() {
  using ramr::perf::Machine;
  const Machine a = ramr::perf::ipa();
  const Machine b = ramr::perf::titan();

  std::printf("Table I: IPA and Titan hardware and software configurations\n");
  std::printf("(model presets used by all benches)\n\n");
  ramr::perf::Table t({16, 28, 28});
  t.header({"", a.name, b.name});
  t.row({"Processor", a.processor, b.processor});
  t.row({"Clock", a.clock, b.clock});
  t.row({"Accelerator", a.accelerator, b.accelerator});
  t.row({"PCI gen", a.pci_gen, b.pci_gen});
  t.row({"Nodes", ramr::perf::Table::count(a.nodes),
         ramr::perf::Table::count(b.nodes)});
  t.row({"CPUs/node", a.cpus_per_node, b.cpus_per_node});
  t.row({"GPUs/node", ramr::perf::Table::count(a.gpus_per_node),
         ramr::perf::Table::count(b.gpus_per_node)});
  t.row({"CPU RAM/node", a.cpu_ram, b.cpu_ram});
  t.row({"GPU RAM/node", a.gpu_ram, b.gpu_ram});
  t.row({"Interconnect", a.interconnect, b.interconnect});
  t.row({"Compiler", a.compiler, b.compiler});
  t.row({"MPI", a.mpi, b.mpi});
  t.row({"CUDA Version", a.cuda_version, b.cuda_version});

  std::printf("\nDerived model parameters:\n");
  ramr::perf::Table m({26, 14, 14});
  m.header({"", "K20x", "E5-2670 node"});
  m.row({"sustained GFLOP/s", ramr::perf::Table::seconds(a.gpu_spec.peak_gflops),
         ramr::perf::Table::seconds(a.cpu_node_spec.peak_gflops)});
  m.row({"sustained GB/s", ramr::perf::Table::seconds(a.gpu_spec.mem_bw_gbs),
         ramr::perf::Table::seconds(a.cpu_node_spec.mem_bw_gbs)});
  m.row({"launch overhead (us)",
         ramr::perf::Table::seconds(a.gpu_spec.launch_overhead_s * 1e6),
         ramr::perf::Table::seconds(a.cpu_node_spec.launch_overhead_s * 1e6)});
  m.row({"PCIe GB/s", ramr::perf::Table::seconds(a.gpu_spec.pcie_bw_gbs), "-"});
  std::printf("\nNetworks: %s (%.1f us, %.1f GB/s); %s (%.1f us, %.1f GB/s)\n",
              a.network.name.c_str(), a.network.latency_s * 1e6,
              a.network.bw_gbs, b.network.name.c_str(),
              b.network.latency_s * 1e6, b.network.bw_gbs);
  return 0;
}
