#include "simmpi/communicator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <exception>
#include <thread>

#include "util/error.hpp"
#include "util/logger.hpp"

namespace ramr::simmpi {

namespace {

/// Tree depth of a P-rank collective (0 for a single rank).
double tree_depth(int size) {
  return size > 1 ? std::ceil(std::log2(static_cast<double>(size))) : 0.0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Communicator

Communicator::Communicator(World& world, int rank)
    : world_(&world), rank_(rank), clock_(&owned_clock_) {}

int Communicator::size() const { return world_->size(); }

void Communicator::send(int dest, int tag, const void* data, std::size_t bytes) {
  RAMR_REQUIRE(dest >= 0 && dest < size(), "send to invalid rank " << dest);
  double wire = world_->network().message_time(bytes);
  if (fault_plan_ != nullptr) {
    // Wire faults never lose the payload — delivery semantics (and thus
    // physics) stay bit-identical; only the modeled time grows. A drop
    // costs the retransmit timeout plus a second full wire crossing; a
    // delay stretches the crossing by the configured amount.
    if (fault_plan_->should_inject(util::FaultSite::kMessageDrop)) {
      ++stats_.messages_dropped;
      wire += fault_plan_->config().drop_timeout_s +
              world_->network().message_time(bytes);
    }
    if (fault_plan_->should_inject(util::FaultSite::kMessageDelay)) {
      ++stats_.messages_delayed;
      wire += fault_plan_->config().message_delay_s;
    }
  }
  double available_at = 0.0;
  vgpu::Timeline* tl = timeline();
  if (tl != nullptr) {
    // The NIC drains the message: wire time runs on the network lane,
    // starting no earlier than the issuing lane's cursor (the payload
    // exists only once the pack that produced it is done). The issuing
    // lane does NOT advance — this is what lets a nonblocking send's
    // wire time hide behind compute.
    vgpu::LaneScope net(tl, tl->lane("net"));
    clock_->charge(wire);
    available_at = tl->now(tl->lane("net"));
  } else {
    clock_->charge(wire);
  }
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;
  world_->deliver(dest, rank_, tag, data, bytes, available_at);
}

std::vector<std::byte> Communicator::recv(int src, int tag) {
  RAMR_REQUIRE(src >= 0 && src < size(), "recv from invalid rank " << src);
  World::Mailbox& box = *world_->mailboxes_[rank_];
  std::unique_lock<std::mutex> lock(box.mutex);
  const auto key = std::make_pair(src, tag);
  box.cv.wait(lock, [&] {
    const auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  });
  auto it = box.queues.find(key);
  std::vector<std::byte> payload = std::move(it->second.front().payload);
  const double available_at = it->second.front().available_at;
  it->second.pop_front();
  const double wire = world_->network().message_time(payload.size());
  vgpu::Timeline* tl = timeline();
  if (tl != nullptr) {
    // Timeline model: the sender's network lane already carried the wire
    // time; the receiver WAITS on the message-arrival event (cursor =
    // max, no busy charge) instead of re-paying it. The synchronous
    // model's serial re-pay is recorded so overlap_seconds_saved()
    // compares like with like; the part of the wait beyond the wire
    // time is a LAGGING SENDER — load imbalance, not failed overlap —
    // and is booked as excluded idle.
    const double wait = available_at - tl->now();
    tl->advance(tl->active_lane(), available_at);
    tl->add_serial_only(wire);
    if (wait > wire) {
      tl->add_imbalance_idle(wait - wire);
    }
  } else {
    // The receiver also pays the wire time (no overlap modeled).
    clock_->charge(wire);
  }
  ++stats_.messages_received;
  stats_.bytes_received += payload.size();
  return payload;
}

Request Communicator::isend(int dest, int tag, const void* data,
                            std::size_t bytes) {
  Request r;
  r.kind_ = Request::Kind::kSend;
  r.peer_ = dest;
  r.tag_ = tag;
  // The mailbox copies the payload, so the caller's buffer is reusable on
  // return and the request completes immediately (MPI buffered-send
  // semantics; wire time is still charged here).
  send(dest, tag, data, bytes);
  r.done_ = true;
  return r;
}

Request Communicator::irecv(int src, int tag) {
  RAMR_REQUIRE(src >= 0 && src < size(), "irecv from invalid rank " << src);
  Request r;
  r.kind_ = Request::Kind::kRecv;
  r.peer_ = src;
  r.tag_ = tag;
  return r;
}

void Communicator::wait(Request& request) {
  if (request.done_ || request.kind_ == Request::Kind::kNone) {
    return;
  }
  if (request.kind_ == Request::Kind::kRecv) {
    request.payload_ = recv(request.peer_, request.tag_);
  }
  request.done_ = true;
}

void Communicator::wait_all(std::vector<Request>& requests) {
  for (Request& r : requests) {
    wait(r);
  }
}

void Communicator::collective_rendezvous(double my_time) {
  vgpu::Timeline* tl = timeline();
  if (tl != nullptr) {
    tl->rendezvous(my_time);
  }
}

double Communicator::allreduce(double value, ReduceOp op) {
  World::CollectiveState& c = world_->collective_;
  // Recursive-doubling allreduce: 2*log2(P) message latencies.
  clock_->charge(2.0 * tree_depth(size()) *
                 world_->network().message_time(sizeof(double)));
  const double my_time = timeline() != nullptr ? timeline()->now() : 0.0;
  std::unique_lock<std::mutex> lock(c.mutex);
  const std::uint64_t generation = c.generation;
  c.fold_time(c.arrived == 0, my_time);
  if (c.arrived == 0) {
    c.dvalue = value;
  } else {
    switch (op) {
      case ReduceOp::kMin: c.dvalue = std::min(c.dvalue, value); break;
      case ReduceOp::kMax: c.dvalue = std::max(c.dvalue, value); break;
      case ReduceOp::kSum: c.dvalue += value; break;
    }
  }
  if (++c.arrived == size()) {
    c.dresult = c.dvalue;
    c.publish_time();
    c.arrived = 0;
    ++c.generation;
    c.cv.notify_all();
    collective_rendezvous(c.tmax_result);
    return c.dresult;
  }
  c.cv.wait(lock, [&] { return c.generation != generation; });
  collective_rendezvous(c.tmax_result);
  return c.dresult;
}

std::int64_t Communicator::allreduce(std::int64_t value, ReduceOp op) {
  World::CollectiveState& c = world_->collective_;
  clock_->charge(2.0 * tree_depth(size()) *
                 world_->network().message_time(sizeof(std::int64_t)));
  const double my_time = timeline() != nullptr ? timeline()->now() : 0.0;
  std::unique_lock<std::mutex> lock(c.mutex);
  const std::uint64_t generation = c.generation;
  c.fold_time(c.arrived == 0, my_time);
  if (c.arrived == 0) {
    c.ivalue = value;
  } else {
    switch (op) {
      case ReduceOp::kMin: c.ivalue = std::min(c.ivalue, value); break;
      case ReduceOp::kMax: c.ivalue = std::max(c.ivalue, value); break;
      case ReduceOp::kSum: c.ivalue += value; break;
    }
  }
  if (++c.arrived == size()) {
    c.iresult = c.ivalue;
    c.publish_time();
    c.arrived = 0;
    ++c.generation;
    c.cv.notify_all();
    collective_rendezvous(c.tmax_result);
    return c.iresult;
  }
  c.cv.wait(lock, [&] { return c.generation != generation; });
  collective_rendezvous(c.tmax_result);
  return c.iresult;
}

std::vector<std::vector<std::byte>> Communicator::allgather(const void* data,
                                                            std::size_t bytes) {
  World::CollectiveState& c = world_->collective_;
  // Ring allgather: (P-1) steps, each moving this rank's contribution.
  if (size() > 1) {
    clock_->charge(static_cast<double>(size() - 1) *
                   world_->network().message_time(bytes));
  }
  const double my_time = timeline() != nullptr ? timeline()->now() : 0.0;
  std::unique_lock<std::mutex> lock(c.mutex);
  const std::uint64_t generation = c.generation;
  c.fold_time(c.arrived == 0, my_time);
  if (c.arrived == 0) {
    c.gather_in.assign(static_cast<std::size_t>(size()), {});
  }
  const auto* p = static_cast<const std::byte*>(data);
  c.gather_in[static_cast<std::size_t>(rank_)].assign(p, p + bytes);
  if (++c.arrived == size()) {
    c.gather_out = std::make_shared<std::vector<std::vector<std::byte>>>(
        std::move(c.gather_in));
    c.publish_time();
    c.arrived = 0;
    ++c.generation;
    c.cv.notify_all();
    collective_rendezvous(c.tmax_result);
    return *c.gather_out;
  }
  auto result_holder = [&] {
    c.cv.wait(lock, [&] { return c.generation != generation; });
    return c.gather_out;
  }();
  collective_rendezvous(c.tmax_result);
  return *result_holder;
}

void Communicator::barrier() {
  World::CollectiveState& c = world_->collective_;
  clock_->charge(2.0 * tree_depth(size()) *
                 world_->network().message_time(0));
  const double my_time = timeline() != nullptr ? timeline()->now() : 0.0;
  std::unique_lock<std::mutex> lock(c.mutex);
  const std::uint64_t generation = c.generation;
  c.fold_time(c.arrived == 0, my_time);
  if (++c.arrived == size()) {
    c.publish_time();
    c.arrived = 0;
    ++c.generation;
    c.cv.notify_all();
    collective_rendezvous(c.tmax_result);
    return;
  }
  c.cv.wait(lock, [&] { return c.generation != generation; });
  collective_rendezvous(c.tmax_result);
}

// ---------------------------------------------------------------------------
// World

World::World(int size, NetworkSpec network)
    : size_(size), network_(std::move(network)) {
  RAMR_REQUIRE(size >= 1, "world size must be positive, got " << size);
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

World::~World() = default;

void World::deliver(int dest, int src, int tag, const void* data,
                    std::size_t bytes, double available_at) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  Message msg;
  msg.available_at = available_at;
  const auto* p = static_cast<const std::byte*>(data);
  msg.payload.assign(p, p + bytes);
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queues[std::make_pair(src, tag)].push_back(std::move(msg));
  }
  box.cv.notify_all();
}

void World::run(const std::function<void(Communicator&)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      util::Logger::set_thread_rank(r);
      try {
        Communicator comm(*this, r);
        body(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace ramr::simmpi
