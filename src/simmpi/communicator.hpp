// Simulated MPI: ranks are threads in one process.
//
// The communication *structure* of the AMR algorithm (who sends what to
// whom, message counts and sizes, global reductions) is executed for
// real through tagged mailboxes; only the wire time is modeled, using a
// NetworkSpec, and charged to each rank's SimClock. The API is the small
// subset of MPI the paper's code needs (see the LLNL MPI tutorial: most
// MPI programs use a dozen routines or fewer).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "simmpi/network_spec.hpp"
#include "util/fault.hpp"
#include "vgpu/sim_clock.hpp"
#include "vgpu/timeline.hpp"

namespace ramr::simmpi {

class World;

/// Reduction operators for allreduce.
enum class ReduceOp { kMin, kMax, kSum };

/// Point-to-point traffic counters for one rank. Collectives are not
/// counted: these exist so tests and benches can assert how many
/// aggregated messages a communication schedule really exchanges.
struct CommStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  /// Injected wire faults (util/fault.hpp). A dropped message is
  /// retransmitted after a timeout and a delayed one arrives late —
  /// delivery still happens exactly once, so physics stays bit-identical;
  /// only the modeled wire time grows.
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_delayed = 0;

  CommStats operator-(const CommStats& rhs) const {
    return CommStats{messages_sent - rhs.messages_sent,
                     bytes_sent - rhs.bytes_sent,
                     messages_received - rhs.messages_received,
                     bytes_received - rhs.bytes_received,
                     messages_dropped - rhs.messages_dropped,
                     messages_delayed - rhs.messages_delayed};
  }
};

/// Handle for a nonblocking operation. Sends complete immediately (the
/// mailbox buffers them); receives complete inside wait(), which blocks
/// until the matching message arrives and stores its payload here.
class Request {
 public:
  Request() = default;

  bool done() const { return done_; }

  /// Moves the received payload out (recv requests, after wait()).
  std::vector<std::byte> take_payload() { return std::move(payload_); }

 private:
  friend class Communicator;
  enum class Kind { kNone, kSend, kRecv };

  Kind kind_ = Kind::kNone;
  int peer_ = -1;
  int tag_ = 0;
  bool done_ = false;
  std::vector<std::byte> payload_;
};

/// Per-rank handle used inside World::run callbacks. All members may be
/// called concurrently from different ranks (each rank owns one Comm).
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Charges communication time into `clock` (defaults to an internal
  /// clock; the application points this at its per-rank clock so network
  /// time lands in the current component scope).
  ///
  /// When the clock carries a Timeline (async-overlap runs) the wire
  /// legs become NETWORK-LANE operations: a send charges its wire time
  /// on the rank's "net" lane — the NIC — starting no earlier than the
  /// issuing lane's cursor, so it proceeds concurrently with compute;
  /// the message carries its arrival timestamp and the receiver WAITS on
  /// that message-arrival event (cursor = max, no busy time) instead of
  /// serially re-paying the wire time as the synchronous model does.
  /// Collectives become rendezvous points that synchronise every rank's
  /// virtual time to the latest arrival.
  void set_clock(vgpu::SimClock* clock) { clock_ = clock; }
  vgpu::SimClock& clock() { return *clock_; }

  /// Attaches a fault plan consulted on every send (util/fault.hpp):
  /// injected drops retransmit after a timeout, injected delays stretch
  /// the wire leg — both charge extra modeled time (on the net lane under
  /// a timeline) without ever losing the payload. Null disables
  /// injection. The communicator does not own the plan; the owner must
  /// clear it before the plan dies.
  void set_fault_plan(util::FaultPlan* plan) { fault_plan_ = plan; }
  util::FaultPlan* fault_plan() const { return fault_plan_; }

  /// Blocking buffered send (never deadlocks: delivery is asynchronous).
  void send(int dest, int tag, const void* data, std::size_t bytes);

  /// Blocking receive of the matching (src, tag) message.
  std::vector<std::byte> recv(int src, int tag);

  /// Nonblocking send. The mailbox buffers the payload, so the request is
  /// complete on return; wait() is a no-op kept for MPI shape.
  Request isend(int dest, int tag, const void* data, std::size_t bytes);

  /// Posts a receive for (src, tag). Completion happens in wait(), which
  /// stores the payload in the request. Posting all receives of an
  /// exchange up front before packing/sending is the aggregated transfer
  /// path's pattern.
  Request irecv(int src, int tag);

  /// Completes one request (blocking for receives).
  void wait(Request& request);

  /// Completes every request in the span.
  void wait_all(std::vector<Request>& requests);

  /// Cumulative point-to-point counters for this rank.
  const CommStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CommStats{}; }

  /// Convenience overloads for trivially copyable values.
  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    send(dest, tag, &value, sizeof(T));
  }
  template <typename T>
  T recv_value(int src, int tag) {
    const std::vector<std::byte> buf = recv(src, tag);
    T value{};
    std::memcpy(&value, buf.data(), sizeof(T));
    return value;
  }

  double allreduce(double value, ReduceOp op);
  std::int64_t allreduce(std::int64_t value, ReduceOp op);

  /// Gathers each rank's buffer to all ranks (returned indexed by rank).
  std::vector<std::vector<std::byte>> allgather(const void* data,
                                                std::size_t bytes);

  void barrier();

 private:
  friend class World;
  Communicator(World& world, int rank);

  /// Active timeline, or null in the synchronous model.
  vgpu::Timeline* timeline() const { return clock_->timeline(); }

  /// Rendezvous: synchronises this rank's virtual time with the slowest
  /// participant of the collective that just completed (no-op without a
  /// timeline). `my_time` is this rank's cursor at arrival.
  void collective_rendezvous(double my_time);

  World* world_;
  int rank_;
  vgpu::SimClock owned_clock_;
  vgpu::SimClock* clock_;
  CommStats stats_;
  util::FaultPlan* fault_plan_ = nullptr;
};

/// A set of simulated ranks sharing a network. Create a World, then call
/// run() with the per-rank body; after run() returns the per-rank comm
/// clocks can be inspected via comm_time(rank).
class World {
 public:
  World(int size, NetworkSpec network);
  ~World();

  int size() const { return size_; }
  const NetworkSpec& network() const { return network_; }

  /// Executes body(comm) on `size` threads, one per rank. Blocks until
  /// all ranks return. Rethrows the first rank exception (after joining).
  void run(const std::function<void(Communicator&)>& body);

 private:
  friend class Communicator;

  struct Message {
    std::vector<std::byte> payload;
    /// Sender-side virtual time at which the last wire byte arrives
    /// (timeline runs only; 0 in the synchronous model). Rank virtual
    /// clocks share an origin and are re-synchronised at every
    /// collective, so the receiver may wait on this directly.
    double available_at = 0.0;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::map<std::pair<int, int>, std::deque<Message>> queues;  // (src,tag)
  };

  struct CollectiveState {
    std::mutex mutex;
    std::condition_variable cv;
    int arrived = 0;
    std::uint64_t generation = 0;
    double tmax = 0.0;         ///< latest arrival cursor this round
    double tmax_result = 0.0;  ///< rendezvous time of the completed round

    /// Folds one rank's virtual arrival time into the round (the single
    /// home of the rendezvous protocol; call under the mutex, with
    /// `first` true on the round's first arrival).
    void fold_time(bool first, double t) {
      tmax = first ? t : std::max(tmax, t);
    }
    /// Publishes the completed round's rendezvous time (releasing rank,
    /// under the mutex, before notifying).
    void publish_time() { tmax_result = tmax; }

    double dvalue = 0.0;
    std::int64_t ivalue = 0;
    double dresult = 0.0;
    std::int64_t iresult = 0;
    std::vector<std::vector<std::byte>> gather_in;
    std::shared_ptr<std::vector<std::vector<std::byte>>> gather_out;
  };

  void deliver(int dest, int src, int tag, const void* data, std::size_t bytes,
               double available_at);

  int size_;
  NetworkSpec network_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  CollectiveState collective_;
};

}  // namespace ramr::simmpi
