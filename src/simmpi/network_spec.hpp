// Interconnect models for the two platforms in Table I of the paper.
//
// Point-to-point messages are charged latency + bytes/bandwidth on both
// endpoints; collectives use the standard log2(P) tree terms. These are
// first-order LogP-style parameters for FDR InfiniBand (IPA) and the Cray
// Gemini torus (Titan).
#pragma once

#include <cstdint>
#include <string>

namespace ramr::simmpi {

/// Latency/bandwidth description of the network between ranks.
struct NetworkSpec {
  std::string name;
  double latency_s = 0.0;   ///< one-way small-message latency
  double bw_gbs = 0.0;      ///< per-link sustained bandwidth, GB/s

  /// Modeled wire time of a single point-to-point message.
  double message_time(std::uint64_t bytes) const {
    return latency_s + static_cast<double>(bytes) / (bw_gbs * 1.0e9);
  }
};

/// Mellanox FDR InfiniBand (IPA testbed): ~1.3 us latency, ~6 GB/s/port.
inline NetworkSpec fdr_infiniband() {
  return NetworkSpec{"Mellanox FDR InfiniBand", 1.3e-6, 6.0};
}

/// Cray Gemini (Titan): ~1.5 us latency, ~5 GB/s sustained per direction.
inline NetworkSpec cray_gemini() {
  return NetworkSpec{"Cray Gemini", 1.5e-6, 5.0};
}

/// Zero-cost network for single-process runs and unit tests that do not
/// exercise the performance model.
inline NetworkSpec ideal_network() {
  return NetworkSpec{"ideal", 0.0, 1.0e12};
}

}  // namespace ramr::simmpi
