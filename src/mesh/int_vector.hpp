// 2-D integer vector used for cell indices, ghost widths and refinement
// ratios. The paper's scheme is 2-D (CloverLeaf/CleverLeaf), so the mesh
// library is specialised for two dimensions.
#pragma once

#include <algorithm>
#include <ostream>

namespace ramr::mesh {

/// 2-D integer vector with componentwise arithmetic.
struct IntVector {
  int i = 0;
  int j = 0;

  constexpr IntVector() = default;
  constexpr IntVector(int ii, int jj) : i(ii), j(jj) {}

  /// Uniform vector (v, v): convenient for isotropic ghost widths and
  /// refinement ratios.
  static constexpr IntVector uniform(int v) { return IntVector(v, v); }
  static constexpr IntVector zero() { return IntVector(0, 0); }

  constexpr int operator[](int axis) const { return axis == 0 ? i : j; }

  constexpr IntVector operator+(const IntVector& o) const { return {i + o.i, j + o.j}; }
  constexpr IntVector operator-(const IntVector& o) const { return {i - o.i, j - o.j}; }
  constexpr IntVector operator*(const IntVector& o) const { return {i * o.i, j * o.j}; }
  constexpr IntVector operator*(int s) const { return {i * s, j * s}; }
  constexpr IntVector operator-() const { return {-i, -j}; }

  constexpr bool operator==(const IntVector& o) const { return i == o.i && j == o.j; }
  constexpr bool operator!=(const IntVector& o) const { return !(*this == o); }

  /// True when both components satisfy the comparison (partial order).
  constexpr bool all_ge(const IntVector& o) const { return i >= o.i && j >= o.j; }
  constexpr bool all_le(const IntVector& o) const { return i <= o.i && j <= o.j; }
  constexpr bool all_gt(const IntVector& o) const { return i > o.i && j > o.j; }

  constexpr int min_component() const { return std::min(i, j); }
  constexpr int max_component() const { return std::max(i, j); }
};

constexpr IntVector componentwise_min(const IntVector& a, const IntVector& b) {
  return {std::min(a.i, b.i), std::min(a.j, b.j)};
}

constexpr IntVector componentwise_max(const IntVector& a, const IntVector& b) {
  return {std::max(a.i, b.i), std::max(a.j, b.j)};
}

/// Flooring division, correct for negative indices; used by coarsening.
constexpr int floor_div(int a, int b) {
  return (a >= 0) ? a / b : -((-a + b - 1) / b);
}

constexpr IntVector floor_div(const IntVector& a, const IntVector& b) {
  return {floor_div(a.i, b.i), floor_div(a.j, b.j)};
}

inline std::ostream& operator<<(std::ostream& os, const IntVector& v) {
  return os << "(" << v.i << "," << v.j << ")";
}

}  // namespace ramr::mesh
