// Axis-aligned index boxes (the "logically rectangular grids" of
// Berger-Colella AMR) and the centring index-space maps.
//
// A Box holds inclusive lower/upper cell indices. Node- and side-centred
// quantities live in index spaces one element wider along the relevant
// axes; to_centering() maps a cell box to the covering index box of a
// given centring, exactly as SAMRAI's pdat geometry classes do.
#pragma once

#include <cstdint>
#include <ostream>

#include "mesh/int_vector.hpp"
#include "util/error.hpp"

namespace ramr::mesh {

/// Data centrings needed by the hydrodynamics scheme (paper §IV-B2).
/// kSide is a variable-level centring with two components (x-faces and
/// y-faces, as SAMRAI's SideData); kXSide / kYSide name the component
/// index spaces.
enum class Centering { kCell, kNode, kXSide, kYSide, kSide };

const char* centering_name(Centering c);

/// Number of component arrays of a variable with centring c.
inline int centering_components(Centering c) {
  return c == Centering::kSide ? 2 : 1;
}

/// Index space of component k of a variable with centring c.
inline Centering component_centering(Centering c, int k) {
  if (c == Centering::kSide) {
    return k == 0 ? Centering::kXSide : Centering::kYSide;
  }
  return c;
}

/// Inclusive index box [lo, hi]. Empty when any component of hi < lo.
class Box {
 public:
  Box() : lo_(0, 0), hi_(-1, -1) {}  // canonical empty box
  Box(IntVector lo, IntVector hi) : lo_(lo), hi_(hi) {}
  Box(int ilo, int jlo, int ihi, int jhi) : lo_(ilo, jlo), hi_(ihi, jhi) {}

  const IntVector& lower() const { return lo_; }
  const IntVector& upper() const { return hi_; }

  bool empty() const { return hi_.i < lo_.i || hi_.j < lo_.j; }

  int width() const { return empty() ? 0 : hi_.i - lo_.i + 1; }
  int height() const { return empty() ? 0 : hi_.j - lo_.j + 1; }

  /// Number of index points in the box.
  std::int64_t size() const {
    return static_cast<std::int64_t>(width()) * height();
  }

  bool contains(const IntVector& p) const {
    return p.all_ge(lo_) && p.all_le(hi_);
  }

  bool contains(const Box& other) const {
    return other.empty() || (other.lo_.all_ge(lo_) && other.hi_.all_le(hi_));
  }

  bool intersects(const Box& other) const {
    return !intersect(other).empty();
  }

  /// Intersection (empty box when disjoint).
  Box intersect(const Box& other) const {
    return Box(componentwise_max(lo_, other.lo_),
               componentwise_min(hi_, other.hi_));
  }

  Box grow(const IntVector& g) const { return Box(lo_ - g, hi_ + g); }
  Box grow(int g) const { return grow(IntVector::uniform(g)); }

  /// Interior core at rind depth d: the cells at least d away from every
  /// face of this box (empty when the box is thinner than 2d+1).
  Box shrink(int d) const { return grow(-d); }

  Box shift(const IntVector& s) const { return Box(lo_ + s, hi_ + s); }

  /// Fine-index box covering the same region at `ratio` times the
  /// resolution: [lo*r, (hi+1)*r - 1].
  Box refine(const IntVector& ratio) const {
    if (empty()) return {};
    return Box(lo_ * ratio, (hi_ + IntVector(1, 1)) * ratio - IntVector(1, 1));
  }

  /// Coarse-index box covering this region (flooring division).
  Box coarsen(const IntVector& ratio) const {
    if (empty()) return {};
    return Box(floor_div(lo_, ratio), floor_div(hi_, ratio));
  }

  bool operator==(const Box& o) const {
    return (empty() && o.empty()) || (lo_ == o.lo_ && hi_ == o.hi_);
  }
  bool operator!=(const Box& o) const { return !(*this == o); }

 private:
  IntVector lo_;
  IntVector hi_;
};

/// Exact 4-piece decomposition of `region` minus `core` (the rind shell
/// of an interior/boundary stage split): bottom and top strips spanning
/// the full region width, then left and right strips of the remaining
/// middle rows. The pieces are pairwise disjoint and, together with
/// region.intersect(core), cover every index of `region` exactly once —
/// for ANY core, including an empty one (whole region becomes the bottom
/// strip) or one containing the region (all pieces empty).
struct RindPieces {
  Box piece[4];
};
inline RindPieces rind_pieces(const Box& region, const Box& core) {
  RindPieces r;
  if (region.empty()) {
    return r;
  }
  const Box c = region.intersect(core);
  if (c.empty()) {
    r.piece[0] = region;
    return r;
  }
  r.piece[0] = Box(region.lower().i, region.lower().j,  // bottom
                   region.upper().i, c.lower().j - 1);
  r.piece[1] = Box(region.lower().i, c.upper().j + 1,  // top
                   region.upper().i, region.upper().j);
  r.piece[2] = Box(region.lower().i, c.lower().j,  // left
                   c.lower().i - 1, c.upper().j);
  r.piece[3] = Box(c.upper().i + 1, c.lower().j,  // right
                   region.upper().i, c.upper().j);
  return r;
}

/// Index box of centring `c` covering cell box `cells`: nodes extend one
/// index past the upper cell along both axes, sides along their axis.
Box to_centering(const Box& cells, Centering c);

/// Number of data elements of centring `c` covering cell box `cells`.
std::int64_t centering_size(const Box& cells, Centering c);

std::ostream& operator<<(std::ostream& os, const Box& b);

}  // namespace ramr::mesh
