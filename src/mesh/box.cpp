#include "mesh/box.hpp"

namespace ramr::mesh {

const char* centering_name(Centering c) {
  switch (c) {
    case Centering::kCell:
      return "cell";
    case Centering::kNode:
      return "node";
    case Centering::kXSide:
      return "xside";
    case Centering::kYSide:
      return "yside";
    case Centering::kSide:
      return "side";
  }
  return "?";
}

Box to_centering(const Box& cells, Centering c) {
  if (cells.empty()) {
    return {};
  }
  switch (c) {
    case Centering::kCell:
      return cells;
    case Centering::kNode:
      return Box(cells.lower(), cells.upper() + IntVector(1, 1));
    case Centering::kXSide:
      return Box(cells.lower(), cells.upper() + IntVector(1, 0));
    case Centering::kYSide:
      return Box(cells.lower(), cells.upper() + IntVector(0, 1));
    case Centering::kSide:
      break;  // kSide has two component index spaces; callers must use
              // component_centering() first.
  }
  RAMR_FAIL("to_centering requires a component centering, got "
            << centering_name(c));
}

std::int64_t centering_size(const Box& cells, Centering c) {
  return to_centering(cells, c).size();
}

std::ostream& operator<<(std::ostream& os, const Box& b) {
  if (b.empty()) {
    return os << "[empty]";
  }
  return os << "[" << b.lower() << ".." << b.upper() << "]";
}

}  // namespace ramr::mesh
