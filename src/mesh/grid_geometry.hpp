// Physical geometry of the computational domain.
//
// The base grid G0 covers `domain_box` in level-0 index space and the
// physical rectangle [x_lo, x_hi] x [y_lo, y_hi]. Finer levels refine the
// index space by the cumulative refinement ratio; mesh spacing follows
// h_l = h_{l-1} / r_l (paper §II).
#pragma once

#include <array>

#include "mesh/box.hpp"
#include "util/error.hpp"

namespace ramr::mesh {

/// Immutable description of the problem domain.
class GridGeometry {
 public:
  GridGeometry(Box domain_box, std::array<double, 2> x_lo,
               std::array<double, 2> x_hi)
      : domain_box_(domain_box), x_lo_(x_lo), x_hi_(x_hi) {
    RAMR_REQUIRE(!domain_box.empty(), "domain box must be non-empty");
    RAMR_REQUIRE(x_hi[0] > x_lo[0] && x_hi[1] > x_lo[1],
                 "domain extents must be positive");
  }

  const Box& domain_box() const { return domain_box_; }
  const std::array<double, 2>& x_lo() const { return x_lo_; }
  const std::array<double, 2>& x_hi() const { return x_hi_; }

  /// Level-0 mesh spacing along `axis`.
  double dx0(int axis) const {
    const double extent = x_hi_[static_cast<std::size_t>(axis)] -
                          x_lo_[static_cast<std::size_t>(axis)];
    const int cells = axis == 0 ? domain_box_.width() : domain_box_.height();
    return extent / cells;
  }

  /// Domain box in the index space of a level with cumulative refinement
  /// ratio `ratio_to_level_zero`.
  Box domain_box_at(const IntVector& ratio_to_level_zero) const {
    return domain_box_.refine(ratio_to_level_zero);
  }

  /// Mesh spacing at a level with the given cumulative ratio.
  std::array<double, 2> dx_at(const IntVector& ratio_to_level_zero) const {
    return {dx0(0) / ratio_to_level_zero.i, dx0(1) / ratio_to_level_zero.j};
  }

  /// Physical coordinate of the lower-left corner of cell (i, j) at a
  /// level with the given cumulative ratio.
  std::array<double, 2> cell_lower(const IntVector& cell,
                                   const IntVector& ratio) const {
    const std::array<double, 2> dx = dx_at(ratio);
    return {x_lo_[0] + cell.i * dx[0], x_lo_[1] + cell.j * dx[1]};
  }

 private:
  Box domain_box_;
  std::array<double, 2> x_lo_;
  std::array<double, 2> x_hi_;
};

}  // namespace ramr::mesh
