#include "mesh/box_list.hpp"

#include <algorithm>

namespace ramr::mesh {

BoxList::BoxList(std::vector<Box> boxes) {
  boxes_.reserve(boxes.size());
  for (const Box& b : boxes) {
    push_back(b);
  }
}

std::int64_t BoxList::size() const {
  std::int64_t total = 0;
  for (const Box& b : boxes_) {
    total += b.size();
  }
  return total;
}

std::vector<Box> box_difference(const Box& from, const Box& takeaway) {
  std::vector<Box> result;
  const Box overlap = from.intersect(takeaway);
  if (overlap.empty()) {
    result.push_back(from);
    return result;
  }
  if (overlap == from) {
    return result;  // fully covered
  }
  // Slice the four bands around the overlap (left, right, below, above of
  // the middle band), producing disjoint boxes.
  const IntVector lo = from.lower();
  const IntVector hi = from.upper();
  const IntVector olo = overlap.lower();
  const IntVector ohi = overlap.upper();

  // Bottom band (full width).
  if (olo.j > lo.j) {
    result.emplace_back(IntVector(lo.i, lo.j), IntVector(hi.i, olo.j - 1));
  }
  // Top band (full width).
  if (ohi.j < hi.j) {
    result.emplace_back(IntVector(lo.i, ohi.j + 1), IntVector(hi.i, hi.j));
  }
  // Left band (middle rows only).
  if (olo.i > lo.i) {
    result.emplace_back(IntVector(lo.i, olo.j), IntVector(olo.i - 1, ohi.j));
  }
  // Right band (middle rows only).
  if (ohi.i < hi.i) {
    result.emplace_back(IntVector(ohi.i + 1, olo.j), IntVector(hi.i, ohi.j));
  }
  return result;
}

void BoxList::remove_intersections(const Box& takeaway) {
  if (takeaway.empty()) {
    return;
  }
  std::vector<Box> next;
  next.reserve(boxes_.size());
  for (const Box& b : boxes_) {
    for (const Box& piece : box_difference(b, takeaway)) {
      next.push_back(piece);
    }
  }
  boxes_ = std::move(next);
}

void BoxList::remove_intersections(const BoxList& takeaway) {
  for (const Box& t : takeaway.boxes()) {
    remove_intersections(t);
    if (boxes_.empty()) {
      return;
    }
  }
}

void BoxList::intersect(const Box& region) {
  std::vector<Box> next;
  next.reserve(boxes_.size());
  for (const Box& b : boxes_) {
    const Box piece = b.intersect(region);
    if (!piece.empty()) {
      next.push_back(piece);
    }
  }
  boxes_ = std::move(next);
}

void BoxList::intersect(const BoxList& region) {
  std::vector<Box> next;
  for (const Box& b : boxes_) {
    // Disjoint decomposition: subtract the already-kept pieces of this box
    // from each intersection so overlapping region boxes do not duplicate
    // points.
    std::vector<Box> kept_for_b;
    for (const Box& r : region.boxes()) {
      BoxList cut(b.intersect(r));
      for (const Box& prev : kept_for_b) {
        cut.remove_intersections(prev);
      }
      for (const Box& piece : cut.boxes()) {
        kept_for_b.push_back(piece);
      }
    }
    next.insert(next.end(), kept_for_b.begin(), kept_for_b.end());
  }
  boxes_ = std::move(next);
}

bool BoxList::contains_point(const IntVector& p) const {
  return std::any_of(boxes_.begin(), boxes_.end(),
                     [&](const Box& b) { return b.contains(p); });
}

bool BoxList::contains_box(const Box& b) const {
  BoxList remainder(b);
  remainder.remove_intersections(*this);
  return remainder.empty();
}

void BoxList::coalesce() {
  bool merged = true;
  while (merged) {
    merged = false;
    for (std::size_t a = 0; a < boxes_.size() && !merged; ++a) {
      for (std::size_t b = a + 1; b < boxes_.size() && !merged; ++b) {
        const Box& x = boxes_[a];
        const Box& y = boxes_[b];
        // Horizontally adjacent with equal vertical extent.
        const bool same_rows =
            x.lower().j == y.lower().j && x.upper().j == y.upper().j;
        const bool same_cols =
            x.lower().i == y.lower().i && x.upper().i == y.upper().i;
        Box combined;
        if (same_rows && (x.upper().i + 1 == y.lower().i)) {
          combined = Box(x.lower(), y.upper());
        } else if (same_rows && (y.upper().i + 1 == x.lower().i)) {
          combined = Box(y.lower(), x.upper());
        } else if (same_cols && (x.upper().j + 1 == y.lower().j)) {
          combined = Box(x.lower(), y.upper());
        } else if (same_cols && (y.upper().j + 1 == x.lower().j)) {
          combined = Box(y.lower(), x.upper());
        } else {
          continue;
        }
        boxes_[a] = combined;
        boxes_.erase(boxes_.begin() + static_cast<std::ptrdiff_t>(b));
        merged = true;
      }
    }
  }
}

Box BoxList::bounding_box() const {
  if (boxes_.empty()) {
    return {};
  }
  IntVector lo = boxes_.front().lower();
  IntVector hi = boxes_.front().upper();
  for (const Box& b : boxes_) {
    lo = componentwise_min(lo, b.lower());
    hi = componentwise_max(hi, b.upper());
  }
  return Box(lo, hi);
}

}  // namespace ramr::mesh
