// Box-list calculus: unions of boxes with removal (set difference),
// intersection and coalescing. These operations drive ghost-region fill
// planning (which parts of a patch boundary come from siblings, from the
// coarser level, or from physical boundary conditions) and the proper
// nesting enforcement in the gridding algorithm.
#pragma once

#include <vector>

#include "mesh/box.hpp"

namespace ramr::mesh {

/// An (unordered, possibly overlapping) union of boxes.
class BoxList {
 public:
  BoxList() = default;
  explicit BoxList(const Box& b) {
    if (!b.empty()) boxes_.push_back(b);
  }
  explicit BoxList(std::vector<Box> boxes);

  const std::vector<Box>& boxes() const { return boxes_; }
  bool empty() const { return boxes_.empty(); }
  std::size_t count() const { return boxes_.size(); }

  /// Total index points (exact only when boxes are disjoint, which all
  /// BoxList operations here maintain).
  std::int64_t size() const;

  void push_back(const Box& b) {
    if (!b.empty()) boxes_.push_back(b);
  }

  /// Removes `takeaway` from every box: afterwards no box intersects it.
  /// Splits boxes into at most 4 disjoint pieces each (2-D).
  void remove_intersections(const Box& takeaway);
  void remove_intersections(const BoxList& takeaway);

  /// Keeps only the parts inside `region` / inside the union `region`.
  void intersect(const Box& region);
  void intersect(const BoxList& region);

  /// True when p lies inside some box of the list.
  bool contains_point(const IntVector& p) const;

  /// True when every point of b is covered by the union of the list.
  bool contains_box(const Box& b) const;

  /// Merges axis-adjacent boxes with identical extent on the other axis;
  /// reduces fragmentation after removal operations.
  void coalesce();

  /// Smallest box containing the whole list.
  Box bounding_box() const;

 private:
  std::vector<Box> boxes_;
};

/// The (up to 4) disjoint pieces of `from` not covered by `takeaway`.
std::vector<Box> box_difference(const Box& from, const Box& takeaway);

}  // namespace ramr::mesh
