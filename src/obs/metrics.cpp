#include "obs/metrics.hpp"

#include <utility>

#include "cfg/json.hpp"
#include "util/error.hpp"

namespace ramr::obs {

namespace {

/// A metric's family: the part before the baked-in label set.
std::string family_of(const std::string& name) {
  const std::size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

bool is_counter(const std::string& family) {
  static const std::string kSuffix = "_total";
  return family.size() >= kSuffix.size() &&
         family.compare(family.size() - kSuffix.size(), kSuffix.size(),
                        kSuffix) == 0;
}

/// Number formatting shared with the JSON layer: integral values print
/// as integers, everything else round-trips exactly.
std::string format_number(double v) {
  return cfg::Json(v).dump(0);
}

}  // namespace

void MetricsRegistry::set(const std::string& name, double value) {
  const auto it = value_index_.find(name);
  if (it != value_index_.end()) {
    values_[it->second].value = value;
    return;
  }
  value_index_.emplace(name, values_.size());
  values_.push_back(Value{name, value});
}

void MetricsRegistry::observe(const std::string& name, double value) {
  const auto it = histogram_index_.find(name);
  Histogram* h = nullptr;
  if (it != histogram_index_.end()) {
    h = &histograms_[it->second];
  } else {
    histogram_index_.emplace(name, histograms_.size());
    Histogram fresh;
    fresh.name = name;
    fresh.bounds = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0};
    fresh.counts.assign(fresh.bounds.size() + 1, 0);
    histograms_.push_back(std::move(fresh));
    h = &histograms_.back();
  }
  std::size_t bucket = h->bounds.size();  // +Inf
  for (std::size_t i = 0; i < h->bounds.size(); ++i) {
    if (value <= h->bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++h->counts[bucket];
  ++h->count;
  h->sum += value;
}

double MetricsRegistry::value(const std::string& name) const {
  const auto it = value_index_.find(name);
  RAMR_REQUIRE(it != value_index_.end(), "unknown metric: " << name);
  return values_[it->second].value;
}

cfg::Json MetricsRegistry::latest() const {
  cfg::Json j = cfg::Json::make_object();
  for (const Value& v : values_) {
    j.set(v.name, cfg::Json(v.value));
  }
  for (const Histogram& h : histograms_) {
    cfg::Json hist = cfg::Json::make_object();
    hist.set("count", cfg::Json(static_cast<std::int64_t>(h.count)));
    hist.set("sum", cfg::Json(h.sum));
    j.set(h.name, std::move(hist));
  }
  return j;
}

void MetricsRegistry::sample(std::int64_t step) {
  cfg::Json line = cfg::Json::make_object();
  line.set("step", cfg::Json(step));
  line.set("metrics", latest());
  samples_.push_back(line.dump(0));
}

std::string MetricsRegistry::prometheus_text() const {
  // Group values by family, families in first-registration order:
  // registration may interleave a family's labelled series (per-window
  // loops), but valid exposition requires each family's samples
  // contiguous under exactly one TYPE line. For registries whose
  // families are already contiguous this reproduces registration order.
  std::vector<std::string> family_order;
  std::unordered_map<std::string, std::vector<const Value*>> by_family;
  for (const Value& v : values_) {
    std::string family = family_of(v.name);
    const auto [it, inserted] = by_family.try_emplace(std::move(family));
    if (inserted) {
      family_order.push_back(it->first);
    }
    it->second.push_back(&v);
  }
  std::string out;
  for (const std::string& family : family_order) {
    out += "# TYPE " + family + (is_counter(family) ? " counter\n"
                                                    : " gauge\n");
    for (const Value* v : by_family[family]) {
      out += v->name + " " + format_number(v->value) + "\n";
    }
  }
  for (const Histogram& h : histograms_) {
    const std::string family = family_of(h.name);
    out += "# TYPE " + family + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out += family + "_bucket{le=\"" + format_number(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += family + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += family + "_sum " + format_number(h.sum) + "\n";
    out += family + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

}  // namespace ramr::obs
