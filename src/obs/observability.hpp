// Configuration of the observability subsystem (the top-level
// "observability" config block, cfg/config.cpp).
//
// Everything defaults to OFF. An absent/disabled block must leave the
// run bit-identical — same launch counts, same modeled seconds, same
// fields — because the whole subsystem is an observer of the modeled
// clock, never a participant in it. All artifacts it produces are
// derived from modeled time only (no wall clock), so traces and metric
// streams are seed-reproducible.
#pragma once

#include <string>

namespace ramr::obs {

struct ObservabilityConfig {
  /// Attach an obs::TraceRecorder to the rank clock.
  bool trace = false;
  /// Span ring-buffer capacity; oldest spans are dropped beyond this.
  int trace_capacity = 1 << 16;
  /// Where ramr_run writes the Chrome trace-event JSON (empty: no file).
  std::string trace_path;

  /// Sample an obs::MetricsRegistry once per `metrics_stride` steps.
  bool metrics = false;
  int metrics_stride = 1;
  /// Where ramr_run writes the JSONL time series (empty: no file).
  std::string metrics_path;

  /// Logger level override ("debug"/"info"/"warn"/"error"); empty keeps
  /// the RAMR_LOG_LEVEL environment value or the built-in default.
  std::string log_level;
};

}  // namespace ramr::obs
