// Stable-named metrics registry: counters, gauges and histograms
// sampled from the modeled run into machine-readable streams.
//
// Names follow Prometheus conventions with the label set baked into
// the name (e.g. `ramr_launches_total{tag="hydro"}`): the registry
// itself stays a flat ordered map, registration order is first-set
// order, and every exporter — the per-step JSONL time series, the
// Prometheus text dump the server refreshes each round, and the
// `"metrics"` block folded into svc::run_metrics_json — walks the same
// order, so artifacts are deterministic and diffable. Families ending
// in `_total` export as counters, everything else as gauges; values
// come exclusively from the modeled clock and modeled byte accounting,
// never from wall time.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace ramr::cfg {
class Json;
}  // namespace ramr::cfg

namespace ramr::obs {

class MetricsRegistry {
 public:
  /// Sets the current value of `name` (registering it on first use).
  void set(const std::string& name, double value);
  void set(const std::string& name, std::uint64_t value) {
    set(name, static_cast<double>(value));
  }
  void set(const std::string& name, std::int64_t value) {
    set(name, static_cast<double>(value));
  }
  void set(const std::string& name, int value) {
    set(name, static_cast<double>(value));
  }

  /// Adds one observation to the histogram `name` (fixed exponential
  /// buckets, 1e-6 .. 1e2 modeled seconds, plus +Inf).
  void observe(const std::string& name, double value);

  double value(const std::string& name) const;
  bool empty() const { return values_.empty() && histograms_.empty(); }

  /// Snapshots every metric into one JSONL line tagged with `step`.
  void sample(std::int64_t step);
  const std::vector<std::string>& jsonl() const { return samples_; }

  /// Current values (and histogram count/sum) as one JSON object, in
  /// registration order.
  cfg::Json latest() const;

  /// Prometheus text exposition of the current values.
  std::string prometheus_text() const;

 private:
  struct Value {
    std::string name;
    double value = 0.0;
  };
  struct Histogram {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (+Inf)
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  std::vector<Value> values_;  ///< registration order
  std::unordered_map<std::string, std::size_t> value_index_;
  std::vector<Histogram> histograms_;
  std::unordered_map<std::string, std::size_t> histogram_index_;
  std::vector<std::string> samples_;
};

}  // namespace ramr::obs
