#include "obs/trace.hpp"

#include <utility>

#include "cfg/json.hpp"
#include "util/error.hpp"
#include "vgpu/device.hpp"
#include "vgpu/timeline.hpp"

namespace ramr::obs {

const char* launch_tag_label(int tag) {
  static const char* const kNames[vgpu::kLaunchTagCount] = {
      "other",      "hydro",  "transfer_pack", "transfer_unpack",
      "local_copy", "regrid", "rind"};
  if (tag < 0 || tag >= vgpu::kLaunchTagCount) {
    return "none";
  }
  return kNames[tag];
}

TraceRecorder::TraceRecorder(vgpu::SimClock& clock, std::size_t capacity)
    : clock_(&clock), capacity_(capacity) {
  RAMR_REQUIRE(capacity_ > 0, "trace ring capacity must be positive");
  RAMR_REQUIRE(clock_->listener() == nullptr,
               "SimClock already has an attached listener");
  clock_->set_listener(this);
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

TraceRecorder::~TraceRecorder() {
  if (clock_->listener() == this) {
    clock_->set_listener(nullptr);
  }
}

std::vector<TraceSpan> TraceRecorder::spans() const {
  std::vector<TraceSpan> out;
  out.reserve(ring_.size());
  // Once full, head_ points at the oldest retained span.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

const std::string& TraceRecorder::name(std::int32_t id) const {
  RAMR_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < names_.size(),
               "trace name id " << id << " out of range");
  return names_[static_cast<std::size_t>(id)];
}

std::string TraceRecorder::lane_label(std::int32_t lane) const {
  const vgpu::Timeline* tl = clock_->timeline();
  if (tl != nullptr && lane >= 0 &&
      static_cast<std::size_t>(lane) < tl->lane_count()) {
    return tl->lane_name(lane);
  }
  return lane == 0 ? "host" : "lane" + std::to_string(lane);
}

std::int32_t TraceRecorder::intern(const std::string& name) {
  const auto it = name_ids_.find(name);
  if (it != name_ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<std::int32_t>(names_.size());
  names_.push_back(name);
  name_ids_.emplace(name, id);
  return id;
}

void TraceRecorder::record(const TraceSpan& span) {
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
    return;
  }
  ring_[head_] = span;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

void TraceRecorder::on_charge(const std::string& component, double seconds) {
  TraceSpan s;
  const vgpu::Timeline* tl = clock_->timeline();
  if (tl != nullptr) {
    // The timeline has already absorbed this charge: the active lane's
    // cursor moved by exactly `seconds`. Bracketing [now - seconds, now]
    // replays the same doubles in the same order as Lane::busy, so span
    // sums match the timeline's accounting bitwise.
    s.lane = tl->active_lane();
    s.t_end = tl->now(s.lane);
  } else {
    s.lane = 0;
    s.t_end = clock_->total();
  }
  s.t_begin = s.t_end - seconds;
  s.duration_s = seconds;
  s.name = intern(component);
  s.tag = pending_tag_;
  pending_tag_ = -1;
  s.step = step_;
  s.kind = SpanKind::kCharge;
  record(s);
}

void TraceRecorder::on_kernel_launch(int tag) {
  pending_tag_ = tag;
}

void TraceRecorder::on_lane_wait(int lane, double t_begin, double t_end,
                                 bool rendezvous) {
  TraceSpan s;
  s.lane = lane;
  s.name = intern(rendezvous ? "rendezvous" : "wait");
  s.step = step_;
  s.t_begin = t_begin;
  s.t_end = t_end;
  s.duration_s = t_end - t_begin;
  s.kind = rendezvous ? SpanKind::kRendezvous : SpanKind::kWait;
  record(s);
}

void TraceRecorder::on_annotation_begin(const std::string& name) {
  OpenAnnotation a;
  a.name = intern(name);
  a.step = step_;
  const vgpu::Timeline* tl = clock_->timeline();
  if (tl != nullptr) {
    a.lane = tl->active_lane();
    a.t_begin = tl->now(a.lane);
  } else {
    a.lane = 0;
    a.t_begin = clock_->total();
  }
  annotation_stack_.push_back(a);
}

void TraceRecorder::on_annotation_end() {
  if (annotation_stack_.empty()) {
    // An end with no matching begin: this recorder attached to the
    // clock inside an already-open AnnotationScope (service mode
    // attaches a retried job's recorder during recovery, inside the
    // server's recovery/round scopes). There is nothing to bracket.
    return;
  }
  const OpenAnnotation a = annotation_stack_.back();
  annotation_stack_.pop_back();
  TraceSpan s;
  s.lane = a.lane;
  s.name = a.name;
  s.step = a.step;
  s.t_begin = a.t_begin;
  const vgpu::Timeline* tl = clock_->timeline();
  s.t_end = tl != nullptr ? tl->now(a.lane) : clock_->total();
  s.duration_s = s.t_end - s.t_begin;
  s.kind = SpanKind::kAnnotation;
  record(s);
}

void TraceRecorder::on_clock_reset() {
  // Virtual time re-anchored at zero: previously recorded timestamps no
  // longer share an origin with what follows, so start over.
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  annotation_stack_.clear();
  pending_tag_ = -1;
}

namespace {

const char* span_category(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCharge:
      return "charge";
    case SpanKind::kWait:
      return "wait";
    case SpanKind::kRendezvous:
      return "rendezvous";
    case SpanKind::kAnnotation:
      return "annotation";
  }
  return "charge";
}

}  // namespace

cfg::Json chrome_trace_events(const TraceRecorder& recorder, int pid) {
  cfg::Json events = cfg::Json::make_array();

  cfg::Json process_meta = cfg::Json::make_object();
  process_meta.set("name", cfg::Json("process_name"));
  process_meta.set("ph", cfg::Json("M"));
  process_meta.set("pid", cfg::Json(pid));
  cfg::Json process_args = cfg::Json::make_object();
  process_args.set("name", cfg::Json("rank " + std::to_string(pid)));
  process_meta.set("args", std::move(process_args));
  events.push_back(std::move(process_meta));

  // Truncated traces are self-describing: once the ring overflows, the
  // retained spans no longer sum to the Timeline's busy totals, and a
  // viewer must be able to see that without consulting the recorder.
  cfg::Json ring_meta = cfg::Json::make_object();
  ring_meta.set("name", cfg::Json("trace_ring"));
  ring_meta.set("ph", cfg::Json("M"));
  ring_meta.set("pid", cfg::Json(pid));
  cfg::Json ring_args = cfg::Json::make_object();
  ring_args.set("capacity",
                cfg::Json(static_cast<std::int64_t>(recorder.capacity())));
  ring_args.set("dropped_spans",
                cfg::Json(static_cast<std::int64_t>(recorder.dropped())));
  ring_args.set("complete", cfg::Json(recorder.dropped() == 0));
  ring_meta.set("args", std::move(ring_args));
  events.push_back(std::move(ring_meta));

  // One Perfetto thread per lane the recorder has seen.
  const std::vector<TraceSpan> spans = recorder.spans();
  std::int32_t max_lane = 0;
  for (const TraceSpan& s : spans) {
    max_lane = s.lane > max_lane ? s.lane : max_lane;
  }
  for (std::int32_t lane = 0; lane <= max_lane; ++lane) {
    cfg::Json thread_meta = cfg::Json::make_object();
    thread_meta.set("name", cfg::Json("thread_name"));
    thread_meta.set("ph", cfg::Json("M"));
    thread_meta.set("pid", cfg::Json(pid));
    thread_meta.set("tid", cfg::Json(lane));
    cfg::Json thread_args = cfg::Json::make_object();
    thread_args.set("name", cfg::Json(recorder.lane_label(lane)));
    thread_meta.set("args", std::move(thread_args));
    events.push_back(std::move(thread_meta));
  }

  for (const TraceSpan& s : spans) {
    cfg::Json e = cfg::Json::make_object();
    e.set("name", cfg::Json(recorder.name(s.name)));
    e.set("cat", cfg::Json(span_category(s.kind)));
    e.set("ph", cfg::Json("X"));
    e.set("pid", cfg::Json(pid));
    e.set("tid", cfg::Json(s.lane));
    // Modeled seconds to trace microseconds.
    e.set("ts", cfg::Json(s.t_begin * 1.0e6));
    e.set("dur", cfg::Json(s.duration() * 1.0e6));
    cfg::Json args = cfg::Json::make_object();
    args.set("step", cfg::Json(s.step));
    if (s.tag >= 0) {
      args.set("tag", cfg::Json(launch_tag_label(s.tag)));
    }
    e.set("args", std::move(args));
    events.push_back(std::move(e));
  }
  return events;
}

cfg::Json chrome_trace_document(std::vector<cfg::Json> per_rank_events) {
  cfg::Json events = cfg::Json::make_array();
  for (cfg::Json& rank_events : per_rank_events) {
    for (cfg::Json& e : rank_events.as_array()) {
      events.push_back(std::move(e));
    }
  }
  cfg::Json doc = cfg::Json::make_object();
  doc.set("traceEvents", std::move(events));
  return doc;
}

}  // namespace ramr::obs
