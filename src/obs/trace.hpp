// Span recorder for the modeled clock: the observability half of the
// async timing model.
//
// A TraceRecorder attaches to a rank's SimClock as its ChargeListener
// and turns the stream of charges, counted launches, lane waits, and
// annotation scopes into timestamped spans on the Timeline's lanes —
// {lane, category, LaunchTag, step, t_begin, t_end} in modeled
// seconds. Spans live in a bounded ring buffer (oldest dropped first)
// and export to Chrome trace-event JSON, loadable in Perfetto with one
// process per rank and one thread per lane, so the host lane's
// interior sweep visibly covering the comm/copy-engine/peer lanes can
// be *seen* rather than inferred from aggregates.
//
// Recording is an exact shadow of the accounting it observes: a charge
// span's [t_begin, t_end] brackets exactly the seconds the Timeline
// added to the active lane's busy total (same doubles, same order), so
// per-lane span sums reproduce Timeline::busy bitwise, and one kernel
// span is recorded per counted launch, so the per-tag span partition
// reproduces Device::launch_count exactly (tests/test_obs.cpp). Both
// guarantees hold over the retained spans only: once the ring
// overflows (dropped() > 0) the trace is truncated, and the export
// flags it via a per-rank trace_ring metadata event.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "vgpu/sim_clock.hpp"

namespace ramr::cfg {
class Json;
}  // namespace ramr::cfg

namespace ramr::obs {

enum class SpanKind : std::uint8_t {
  kCharge = 0,   ///< modeled busy time on a lane
  kWait = 1,     ///< lane cursor jump: fork sync, join, arrival wait
  kRendezvous = 2,  ///< cross-rank barrier (imbalance idle)
  kAnnotation = 3,  ///< named scope (stage / window / message / round)
};

struct TraceSpan {
  std::int32_t lane = 0;     ///< Timeline lane index (0 = host)
  std::int32_t name = 0;     ///< interned string id (TraceRecorder::name)
  std::int32_t tag = -1;     ///< LaunchTag for counted launches, else -1
  std::int64_t step = -1;    ///< step in flight (-1: outside any step)
  double t_begin = 0.0;      ///< modeled seconds
  double t_end = 0.0;        ///< modeled seconds
  /// For kCharge: the EXACT seconds the accounting added (the same
  /// double Lane::busy accumulated), so per-lane span-duration sums
  /// reproduce Timeline::busy bitwise — t_end - t_begin would lose low
  /// bits to the subtraction round trip. For other kinds: t_end-t_begin.
  double duration_s = 0.0;
  SpanKind kind = SpanKind::kCharge;

  double duration() const { return duration_s; }
};

/// Human name of a LaunchTag index (span `tag` field); "none" for -1.
const char* launch_tag_label(int tag);

class TraceRecorder final : public vgpu::ChargeListener {
 public:
  /// Attaches to `clock` as its listener. The clock must not already
  /// have one (one recorder per rank clock).
  TraceRecorder(vgpu::SimClock& clock, std::size_t capacity);
  ~TraceRecorder() override;

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Tags subsequently recorded spans with `step` (call at step entry).
  void begin_step(std::int64_t step) { step_ = step; }
  std::int64_t step() const { return step_; }

  /// Spans currently retained, oldest first (ring order resolved).
  std::vector<TraceSpan> spans() const;
  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Spans overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_; }

  /// Interned span-name lookup.
  const std::string& name(std::int32_t id) const;

  /// Label of a span's lane: the Timeline lane name, or "host" when the
  /// clock has no timeline (synchronous model, everything on lane 0).
  std::string lane_label(std::int32_t lane) const;

  vgpu::SimClock& clock() const { return *clock_; }

  // vgpu::ChargeListener
  void on_charge(const std::string& component, double seconds) override;
  void on_kernel_launch(int tag) override;
  void on_lane_wait(int lane, double t_begin, double t_end,
                    bool rendezvous) override;
  void on_annotation_begin(const std::string& name) override;
  void on_annotation_end() override;
  void on_clock_reset() override;

 private:
  std::int32_t intern(const std::string& name);
  void record(const TraceSpan& span);

  vgpu::SimClock* clock_;
  std::size_t capacity_;
  std::vector<TraceSpan> ring_;
  std::size_t head_ = 0;  ///< overwrite position once the ring is full
  std::uint64_t dropped_ = 0;
  std::int64_t step_ = -1;
  std::int32_t pending_tag_ = -1;  ///< LaunchTag for the next charge

  std::vector<std::string> names_;
  std::unordered_map<std::string, std::int32_t> name_ids_;

  struct OpenAnnotation {
    std::int32_t name;
    std::int32_t lane;
    std::int64_t step;
    double t_begin;
  };
  std::vector<OpenAnnotation> annotation_stack_;
};

/// One rank's spans as a Chrome trace-event array: "X" (complete)
/// events with pid=`pid` (the rank), tid=lane, ts/dur in microseconds
/// of modeled time, plus process_name/thread_name metadata events.
cfg::Json chrome_trace_events(const TraceRecorder& recorder, int pid);

/// Assembles per-rank event arrays into one Perfetto-loadable document
/// ({"traceEvents": [...]}).
cfg::Json chrome_trace_document(std::vector<cfg::Json> per_rank_events);

}  // namespace ramr::obs
