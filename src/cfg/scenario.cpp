#include "cfg/scenario.hpp"

#include <cmath>

namespace ramr::cfg {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

double perturbed(double bound, double other, const Region& r) {
  return bound + r.interface_amplitude *
                     std::cos(kTwoPi * other / r.interface_wavelength +
                              r.interface_phase);
}

double side_bound(const Region& r, const char* side, double raw,
                  double other) {
  return r.interface_side == side ? perturbed(raw, other, r) : raw;
}

FluidState blend(const FluidState& a, const FluidState& b, double t) {
  FluidState s;
  s.density = a.density + t * (b.density - a.density);
  s.energy = a.energy + t * (b.energy - a.energy);
  s.xvel = a.xvel + t * (b.xvel - a.xvel);
  s.yvel = a.yvel + t * (b.yvel - a.yvel);
  return s;
}

bool state_moving(const FluidState& s) {
  return s.xvel != 0.0 || s.yvel != 0.0;
}

}  // namespace

bool Region::contains(double x, double y) const {
  switch (shape) {
    case Shape::kBox: {
      if (x_min && x < side_bound(*this, "x_min", *x_min, y)) return false;
      if (x_max && x >= side_bound(*this, "x_max", *x_max, y)) return false;
      if (y_min && y < side_bound(*this, "y_min", *y_min, x)) return false;
      if (y_max && y >= side_bound(*this, "y_max", *y_max, x)) return false;
      return true;
    }
    case Shape::kCircle: {
      const double dx = x - center[0];
      const double dy = y - center[1];
      return dx * dx + dy * dy < radius * radius;
    }
    case Shape::kRamp:
      return true;
  }
  return false;
}

FluidState ScenarioSpec::sample(double x, double y) const {
  FluidState state = background;
  for (const Region& r : regions) {
    if (r.shape == Region::Shape::kRamp) {
      const double c = r.ramp_axis == 0 ? x : y;
      double t = 0.0;
      if (r.ramp_to != r.ramp_from) {
        t = (c - r.ramp_from) / (r.ramp_to - r.ramp_from);
        t = t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
      } else {
        t = c < r.ramp_from ? 0.0 : 1.0;
      }
      state = blend(r.ramp_state0, r.ramp_state1, t);
    } else if (r.contains(x, y)) {
      state = r.state;
    }
  }
  return state;
}

bool ScenarioSpec::has_velocity() const {
  if (state_moving(background)) {
    return true;
  }
  for (const Region& r : regions) {
    if (r.shape == Region::Shape::kRamp) {
      if (state_moving(r.ramp_state0) || state_moving(r.ramp_state1)) {
        return true;
      }
    } else if (state_moving(r.state)) {
      return true;
    }
  }
  return false;
}

}  // namespace ramr::cfg
