#include "cfg/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/error.hpp"

namespace ramr::cfg {

namespace {

/// Recursive-descent parser over the raw text. Tracks line/column so
/// every error points at the offending character.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ < text_.size()) {
      fail("trailing garbage after JSON document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    RAMR_FAIL("JSON parse error at line " << line_ << ", column " << column_
                                          << ": " << message);
  }

  bool eof() const { return pos_ >= text_.size(); }

  char peek() const {
    if (eof()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void expect(char want) {
    const char c = peek();
    if (c != want) {
      fail(std::string("expected '") + want + "', got '" + c + "'");
    }
    advance();
  }

  void skip_whitespace() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else if (c == '/') {
        fail("comments are not allowed in strict JSON");
      } else {
        break;
      }
    }
  }

  Json parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
      case 'f':
        return parse_bool();
      case 'n':
        parse_literal("null");
        return Json();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          return parse_number();
        }
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  void parse_literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (eof() || text_[pos_] != *p) {
        fail(std::string("invalid literal (expected \"") + word + "\")");
      }
      advance();
    }
  }

  Json parse_bool() {
    if (peek() == 't') {
      parse_literal("true");
      return Json(true);
    }
    parse_literal("false");
    return Json(false);
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::make_object();
    skip_whitespace();
    if (peek() == '}') {
      advance();
      return obj;
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') {
        fail("expected object key (a double-quoted string)");
      }
      std::string key = parse_string();
      if (obj.find(key) != nullptr) {
        fail("duplicate object key \"" + key + "\"");
      }
      skip_whitespace();
      expect(':');
      obj.as_object().emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        advance();
        skip_whitespace();
        if (peek() == '}') {
          fail("trailing comma in object");
        }
      } else if (c == '}') {
        advance();
        return obj;
      } else {
        fail(std::string("expected ',' or '}' in object, got '") + c + "'");
      }
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::make_array();
    skip_whitespace();
    if (peek() == ']') {
      advance();
      return arr;
    }
    while (true) {
      arr.as_array().push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        advance();
        skip_whitespace();
        if (peek() == ']') {
          fail("trailing comma in array");
        }
      } else if (c == ']') {
        advance();
        return arr;
      } else {
        fail(std::string("expected ',' or ']' in array, got '") + c + "'");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = advance();
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = advance();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = advance();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the code point (configs are ASCII in practice;
          // surrogate pairs are rejected rather than half-decoded).
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate \\u escapes are not supported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail(std::string("invalid escape '\\") + esc + "'");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      advance();
    }
    if (peek() == '0') {
      advance();
      if (!eof() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        fail("leading zeros are not allowed");
      }
    } else if (peek() >= '1' && peek() <= '9') {
      while (!eof() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        advance();
      }
    } else {
      fail("invalid number");
    }
    if (!eof() && text_[pos_] == '.') {
      advance();
      if (eof() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("expected digit after decimal point");
      }
      while (!eof() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        advance();
      }
    }
    if (!eof() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      advance();
      if (!eof() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        advance();
      }
      if (eof() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("expected digit in exponent");
      }
      while (!eof() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        advance();
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail("invalid number \"" + token + "\"");
    }
    if (!std::isfinite(value)) {
      fail("number \"" + token + "\" overflows a double");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  char buf[40];
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    // max_digits10 for double: the value survives a parse round trip.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

}  // namespace

bool Json::is_integer() const {
  if (type_ != Type::kNumber) {
    return false;
  }
  return number_ == std::floor(number_) &&
         std::abs(number_) <= 9.007199254740992e15;  // 2^53
}

bool Json::as_bool() const {
  RAMR_REQUIRE(type_ == Type::kBool,
               "expected bool, got " << type_name(type_));
  return bool_;
}

double Json::as_number() const {
  RAMR_REQUIRE(type_ == Type::kNumber,
               "expected number, got " << type_name(type_));
  return number_;
}

std::int64_t Json::as_integer() const {
  RAMR_REQUIRE(is_integer(),
               "expected integer, got " << type_name(type_));
  return static_cast<std::int64_t>(number_);
}

const std::string& Json::as_string() const {
  RAMR_REQUIRE(type_ == Type::kString,
               "expected string, got " << type_name(type_));
  return string_;
}

const Json::Array& Json::as_array() const {
  RAMR_REQUIRE(type_ == Type::kArray,
               "expected array, got " << type_name(type_));
  return array_;
}

Json::Array& Json::as_array() {
  RAMR_REQUIRE(type_ == Type::kArray,
               "expected array, got " << type_name(type_));
  return array_;
}

const Json::Object& Json::as_object() const {
  RAMR_REQUIRE(type_ == Type::kObject,
               "expected object, got " << type_name(type_));
  return object_;
}

Json::Object& Json::as_object() {
  RAMR_REQUIRE(type_ == Type::kObject,
               "expected object, got " << type_name(type_));
  return object_;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

void Json::set(std::string key, Json value) {
  RAMR_REQUIRE(type_ == Type::kObject,
               "set() requires an object, got " << type_name(type_));
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) {
  RAMR_REQUIRE(type_ == Type::kArray,
               "push_back() requires an array, got " << type_name(type_));
  array_.push_back(std::move(value));
}

const char* Json::type_name(Type t) {
  switch (t) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "unknown";
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const auto newline_pad = [&](int d) {
    if (pretty) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent) * d, ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      append_number(out, number_);
      break;
    case Type::kString:
      append_escaped(out, string_);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t n = 0; n < array_.size(); ++n) {
        if (n > 0) {
          out.push_back(',');
          if (!pretty) {
            out.push_back(' ');
          }
        }
        newline_pad(depth + 1);
        array_[n].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t n = 0; n < object_.size(); ++n) {
        if (n > 0) {
          out.push_back(',');
          if (!pretty) {
            out.push_back(' ');
          }
        }
        newline_pad(depth + 1);
        append_escaped(out, object_[n].first);
        out += ": ";
        object_[n].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) {
    return false;
  }
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
  }
  return false;
}

}  // namespace ramr::cfg
