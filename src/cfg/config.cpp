#include "cfg/config.hpp"

#include <algorithm>
#include <cmath>

#include "app/problem_registry.hpp"
#include "obs/observability.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/logger.hpp"

namespace ramr::cfg {

namespace {

// ---------------------------------------------------------------------
// Reader: one JSON object being validated. Typed getters consume keys;
// finish() turns every unconsumed key into an unknown-key error naming
// its dotted path. Every object in the schema goes through one Reader,
// so a typo anywhere in the document fails loudly instead of silently
// falling back to a default.
class Reader {
 public:
  Reader(const Json& value, std::string path)
      : value_(&value), path_(std::move(path)) {
    RAMR_REQUIRE(value.is_object(),
                 "config key \"" << path_ << "\": expected an object, got "
                                 << Json::type_name(value.type()));
  }

  const std::string& path() const { return path_; }

  std::string path_of(const std::string& key) const {
    return path_.empty() ? key : path_ + "." + key;
  }

  bool has(const std::string& key) const {
    return value_->find(key) != nullptr;
  }

  /// Marks `key` consumed and returns its value (null when absent).
  const Json* consume(const std::string& key) {
    const Json* v = value_->find(key);
    if (v != nullptr) {
      seen_.push_back(key);
    }
    return v;
  }

  bool get_bool(const std::string& key, bool def) {
    const Json* v = consume(key);
    if (v == nullptr) {
      return def;
    }
    RAMR_REQUIRE(v->is_bool(), "config key \"" << path_of(key)
                                               << "\": expected a bool, got "
                                               << Json::type_name(v->type()));
    return v->as_bool();
  }

  double get_number(const std::string& key, double def) {
    const Json* v = consume(key);
    if (v == nullptr) {
      return def;
    }
    RAMR_REQUIRE(v->is_number(), "config key \"" << path_of(key)
                                                 << "\": expected a number, got "
                                                 << Json::type_name(v->type()));
    return v->as_number();
  }

  std::int64_t get_integer(const std::string& key, std::int64_t def) {
    const Json* v = consume(key);
    if (v == nullptr) {
      return def;
    }
    RAMR_REQUIRE(v->is_integer(),
                 "config key \"" << path_of(key)
                                 << "\": expected an integer, got "
                                 << (v->is_number()
                                         ? "a non-integral number"
                                         : Json::type_name(v->type())));
    return v->as_integer();
  }

  int get_int(const std::string& key, int def) {
    return static_cast<int>(get_integer(key, def));
  }

  std::string get_string(const std::string& key, const std::string& def) {
    const Json* v = consume(key);
    if (v == nullptr) {
      return def;
    }
    RAMR_REQUIRE(v->is_string(), "config key \"" << path_of(key)
                                                 << "\": expected a string, got "
                                                 << Json::type_name(v->type()));
    return v->as_string();
  }

  /// [x, y] pair of numbers.
  std::array<double, 2> get_pair(const std::string& key,
                                 std::array<double, 2> def) {
    const Json* v = consume(key);
    if (v == nullptr) {
      return def;
    }
    RAMR_REQUIRE(v->is_array() && v->as_array().size() == 2 &&
                     v->as_array()[0].is_number() &&
                     v->as_array()[1].is_number(),
                 "config key \"" << path_of(key)
                                 << "\": expected an array of two numbers");
    return {v->as_array()[0].as_number(), v->as_array()[1].as_number()};
  }

  /// Unknown-key check; call after consuming everything the schema knows.
  void finish() const {
    for (const auto& [key, unused] : value_->as_object()) {
      (void)unused;
      if (std::find(seen_.begin(), seen_.end(), key) == seen_.end()) {
        RAMR_FAIL("unknown config key \"" << path_of(key) << "\"");
      }
    }
  }

 private:
  const Json* value_;
  std::string path_;
  std::vector<std::string> seen_;
};

// Range checks with the path in the message.
void require_ge(double v, double lo, const std::string& path) {
  RAMR_REQUIRE(v >= lo, "config key \"" << path << "\": must be >= " << lo
                                        << ", got " << v);
}

void require_gt(double v, double lo, const std::string& path) {
  RAMR_REQUIRE(v > lo, "config key \"" << path << "\": must be > " << lo
                                       << ", got " << v);
}

FluidState parse_state(const Json& value, const std::string& path,
                       FluidState def = {}) {
  Reader r(value, path);
  FluidState s;
  s.density = r.get_number("density", def.density);
  s.energy = r.get_number("energy", def.energy);
  s.xvel = r.get_number("xvel", def.xvel);
  s.yvel = r.get_number("yvel", def.yvel);
  require_gt(s.density, 0.0, r.path_of("density"));
  require_gt(s.energy, 0.0, r.path_of("energy"));
  r.finish();
  return s;
}

Json state_to_json(const FluidState& s) {
  Json j = Json::make_object();
  j.set("density", Json(s.density));
  j.set("energy", Json(s.energy));
  j.set("xvel", Json(s.xvel));
  j.set("yvel", Json(s.yvel));
  return j;
}

Region parse_region(const Json& value, const std::string& path) {
  Reader r(value, path);
  Region reg;
  const std::string shape = r.get_string("shape", "");
  RAMR_REQUIRE(shape == "box" || shape == "circle" || shape == "ramp",
               "config key \"" << r.path_of("shape")
                               << "\": expected \"box\", \"circle\" or "
                                  "\"ramp\", got \""
                               << shape << "\"");
  if (shape == "box") {
    reg.shape = Region::Shape::kBox;
    if (const Json* v = r.consume("state")) {
      reg.state = parse_state(*v, r.path_of("state"));
    }
    // Per-side bounds stay unset when omitted: {x_max: 0.5} is the
    // half-space x < 0.5, ghost cells included.
    if (r.has("x_min")) reg.x_min = r.get_number("x_min", 0.0);
    if (r.has("x_max")) reg.x_max = r.get_number("x_max", 0.0);
    if (r.has("y_min")) reg.y_min = r.get_number("y_min", 0.0);
    if (r.has("y_max")) reg.y_max = r.get_number("y_max", 0.0);
    if (reg.x_min && reg.x_max) {
      RAMR_REQUIRE(*reg.x_min < *reg.x_max,
                   "config key \"" << r.path_of("x_min")
                                   << "\": x_min must be < x_max");
    }
    if (reg.y_min && reg.y_max) {
      RAMR_REQUIRE(*reg.y_min < *reg.y_max,
                   "config key \"" << r.path_of("y_min")
                                   << "\": y_min must be < y_max");
    }
    reg.interface_side = r.get_string("interface_side", "");
    reg.interface_amplitude = r.get_number("interface_amplitude", 0.0);
    reg.interface_wavelength = r.get_number("interface_wavelength", 1.0);
    reg.interface_phase = r.get_number("interface_phase", 0.0);
    require_gt(reg.interface_wavelength, 0.0,
               r.path_of("interface_wavelength"));
    if (!reg.interface_side.empty()) {
      const bool names_present_bound =
          (reg.interface_side == "x_min" && reg.x_min) ||
          (reg.interface_side == "x_max" && reg.x_max) ||
          (reg.interface_side == "y_min" && reg.y_min) ||
          (reg.interface_side == "y_max" && reg.y_max);
      RAMR_REQUIRE(names_present_bound,
                   "config key \"" << r.path_of("interface_side")
                                   << "\": must name a bound present on this "
                                      "box (\"x_min\", \"x_max\", \"y_min\" "
                                      "or \"y_max\"), got \""
                                   << reg.interface_side << "\"");
    }
  } else if (shape == "circle") {
    reg.shape = Region::Shape::kCircle;
    if (const Json* v = r.consume("state")) {
      reg.state = parse_state(*v, r.path_of("state"));
    }
    reg.center = r.get_pair("center", {0.0, 0.0});
    reg.radius = r.get_number("radius", 0.0);
    require_gt(reg.radius, 0.0, r.path_of("radius"));
  } else {
    reg.shape = Region::Shape::kRamp;
    const std::string axis = r.get_string("axis", "x");
    RAMR_REQUIRE(axis == "x" || axis == "y",
                 "config key \"" << r.path_of("axis")
                                 << "\": expected \"x\" or \"y\", got \""
                                 << axis << "\"");
    reg.ramp_axis = axis == "x" ? 0 : 1;
    reg.ramp_from = r.get_number("from", 0.0);
    reg.ramp_to = r.get_number("to", 1.0);
    RAMR_REQUIRE(reg.ramp_from < reg.ramp_to,
                 "config key \"" << r.path_of("from")
                                 << "\": must be < \"to\", got [" << reg.ramp_from
                                 << ", " << reg.ramp_to << "]");
    if (const Json* v = r.consume("state0")) {
      reg.ramp_state0 = parse_state(*v, r.path_of("state0"));
    }
    if (const Json* v = r.consume("state1")) {
      reg.ramp_state1 = parse_state(*v, r.path_of("state1"));
    }
  }
  r.finish();
  return reg;
}

Json region_to_json(const Region& reg) {
  Json j = Json::make_object();
  switch (reg.shape) {
    case Region::Shape::kBox: {
      j.set("shape", Json("box"));
      j.set("state", state_to_json(reg.state));
      if (reg.x_min) j.set("x_min", Json(*reg.x_min));
      if (reg.x_max) j.set("x_max", Json(*reg.x_max));
      if (reg.y_min) j.set("y_min", Json(*reg.y_min));
      if (reg.y_max) j.set("y_max", Json(*reg.y_max));
      if (!reg.interface_side.empty()) {
        j.set("interface_side", Json(reg.interface_side));
        j.set("interface_amplitude", Json(reg.interface_amplitude));
        j.set("interface_wavelength", Json(reg.interface_wavelength));
        j.set("interface_phase", Json(reg.interface_phase));
      }
      break;
    }
    case Region::Shape::kCircle: {
      j.set("shape", Json("circle"));
      j.set("state", state_to_json(reg.state));
      Json c = Json::make_array();
      c.push_back(Json(reg.center[0]));
      c.push_back(Json(reg.center[1]));
      j.set("center", std::move(c));
      j.set("radius", Json(reg.radius));
      break;
    }
    case Region::Shape::kRamp: {
      j.set("shape", Json("ramp"));
      j.set("axis", Json(reg.ramp_axis == 0 ? "x" : "y"));
      j.set("from", Json(reg.ramp_from));
      j.set("to", Json(reg.ramp_to));
      j.set("state0", state_to_json(reg.ramp_state0));
      j.set("state1", state_to_json(reg.ramp_state1));
      break;
    }
  }
  return j;
}

vgpu::DeviceSpec device_preset(const std::string& name,
                               const std::string& path) {
  if (name == "tesla_k20x") return vgpu::tesla_k20x();
  if (name == "xeon_e5_2670_node") return vgpu::xeon_e5_2670_node();
  if (name == "xeon_e5_2670_socket") return vgpu::xeon_e5_2670_socket();
  if (name == "opteron_6274_node") return vgpu::opteron_6274_node();
  RAMR_FAIL("config key \"" << path << "\": unknown device preset \"" << name
                            << "\"; known presets: tesla_k20x, "
                               "xeon_e5_2670_node, xeon_e5_2670_socket, "
                               "opteron_6274_node");
}

vgpu::DeviceSpec parse_device(const Json& value, const std::string& path) {
  Reader r(value, path);
  vgpu::DeviceSpec spec =
      device_preset(r.get_string("preset", "tesla_k20x"), r.path_of("preset"));
  spec.name = r.get_string("name", spec.name);
  spec.peak_gflops = r.get_number("peak_gflops", spec.peak_gflops);
  spec.mem_bw_gbs = r.get_number("mem_bw_gbs", spec.mem_bw_gbs);
  spec.launch_overhead_s =
      r.get_number("launch_overhead_s", spec.launch_overhead_s);
  spec.pcie_bw_gbs = r.get_number("pcie_bw_gbs", spec.pcie_bw_gbs);
  spec.pcie_lat_s = r.get_number("pcie_lat_s", spec.pcie_lat_s);
  spec.half_saturation_threads =
      r.get_number("half_saturation_threads", spec.half_saturation_threads);
  spec.mem_bytes = static_cast<std::uint64_t>(r.get_integer(
      "mem_bytes", static_cast<std::int64_t>(spec.mem_bytes)));
  spec.is_accelerator = r.get_bool("is_accelerator", spec.is_accelerator);
  require_gt(spec.peak_gflops, 0.0, r.path_of("peak_gflops"));
  require_gt(spec.mem_bw_gbs, 0.0, r.path_of("mem_bw_gbs"));
  require_ge(spec.launch_overhead_s, 0.0, r.path_of("launch_overhead_s"));
  require_ge(spec.pcie_bw_gbs, 0.0, r.path_of("pcie_bw_gbs"));
  require_ge(spec.pcie_lat_s, 0.0, r.path_of("pcie_lat_s"));
  require_ge(spec.half_saturation_threads, 0.0,
             r.path_of("half_saturation_threads"));
  RAMR_REQUIRE(spec.mem_bytes > 0, "config key \"" << r.path_of("mem_bytes")
                                                   << "\": must be positive");
  r.finish();
  return spec;
}

vgpu::PeerLinkSpec peer_link_preset(const std::string& name,
                                    const std::string& path) {
  if (name == "nvlink") return vgpu::nvlink2();
  if (name == "pcie_switch") return vgpu::pcie_switch();
  if (name == "ideal") return vgpu::ideal_peer_link();
  RAMR_FAIL("config key \"" << path << "\": unknown peer link preset \""
                            << name
                            << "\"; known presets: nvlink, pcie_switch, "
                               "ideal");
}

vgpu::TopologySpec parse_topology(const Json& value, const std::string& path) {
  Reader r(value, path);
  vgpu::TopologySpec spec;
  spec.device_count = r.get_int("device_count", spec.device_count);
  require_ge(spec.device_count, 1, r.path_of("device_count"));
  if (const Json* v = r.consume("link")) {
    Reader l(*v, r.path_of("link"));
    spec.link =
        peer_link_preset(l.get_string("preset", "nvlink"), l.path_of("preset"));
    spec.link.name = l.get_string("name", spec.link.name);
    spec.link.latency_s = l.get_number("latency_s", spec.link.latency_s);
    spec.link.bw_gbs = l.get_number("bw_gbs", spec.link.bw_gbs);
    require_ge(spec.link.latency_s, 0.0, l.path_of("latency_s"));
    require_gt(spec.link.bw_gbs, 0.0, l.path_of("bw_gbs"));
    l.finish();
  }
  spec.gpu_direct = r.get_bool("gpu_direct", spec.gpu_direct);
  r.finish();
  return spec;
}

Json topology_to_json(const vgpu::TopologySpec& spec) {
  Json j = Json::make_object();
  j.set("device_count", Json(spec.device_count));
  Json link = Json::make_object();
  link.set("name", Json(spec.link.name));
  link.set("latency_s", Json(spec.link.latency_s));
  link.set("bw_gbs", Json(spec.link.bw_gbs));
  j.set("link", std::move(link));
  j.set("gpu_direct", Json(spec.gpu_direct));
  return j;
}

const char* balance_method_name(amr::BalanceMethod m) {
  switch (m) {
    case amr::BalanceMethod::kGreedy:
      return "greedy";
    case amr::BalanceMethod::kMeasured:
      return "measured";
    case amr::BalanceMethod::kMorton:
      break;
  }
  return "morton";
}

simmpi::NetworkSpec network_preset(const std::string& name,
                                   const std::string& path) {
  if (name == "ideal") return simmpi::ideal_network();
  if (name == "fdr_infiniband") return simmpi::fdr_infiniband();
  if (name == "cray_gemini") return simmpi::cray_gemini();
  RAMR_FAIL("config key \"" << path << "\": unknown network preset \"" << name
                            << "\"; known presets: ideal, fdr_infiniband, "
                               "cray_gemini");
}

simmpi::NetworkSpec parse_network(const Json& value, const std::string& path) {
  Reader r(value, path);
  simmpi::NetworkSpec spec =
      network_preset(r.get_string("preset", "ideal"), r.path_of("preset"));
  spec.name = r.get_string("name", spec.name);
  spec.latency_s = r.get_number("latency_s", spec.latency_s);
  spec.bw_gbs = r.get_number("bw_gbs", spec.bw_gbs);
  require_ge(spec.latency_s, 0.0, r.path_of("latency_s"));
  require_gt(spec.bw_gbs, 0.0, r.path_of("bw_gbs"));
  r.finish();
  return spec;
}

}  // namespace

ScenarioSpec parse_scenario(const Json& value, const std::string& path) {
  Reader r(value, path);
  ScenarioSpec spec;
  spec.name = r.get_string("name", "custom");
  RAMR_REQUIRE(!spec.name.empty(),
               "config key \"" << r.path_of("name") << "\": must be non-empty");
  spec.domain_lower = r.get_pair("domain_lower", {0.0, 0.0});
  spec.domain_upper = r.get_pair("domain_upper", {1.0, 1.0});
  RAMR_REQUIRE(spec.domain_lower[0] < spec.domain_upper[0] &&
                   spec.domain_lower[1] < spec.domain_upper[1],
               "config key \"" << r.path_of("domain_upper")
                               << "\": domain_upper must exceed domain_lower "
                                  "on both axes");
  spec.gamma = r.get_number("gamma", 1.4);
  require_gt(spec.gamma, 1.0, r.path_of("gamma"));
  spec.gravity = r.get_pair("gravity", {0.0, 0.0});
  if (const Json* v = r.consume("background")) {
    spec.background = parse_state(*v, r.path_of("background"));
  }
  if (const Json* v = r.consume("regions")) {
    RAMR_REQUIRE(v->is_array(), "config key \"" << r.path_of("regions")
                                                << "\": expected an array, got "
                                                << Json::type_name(v->type()));
    for (std::size_t i = 0; i < v->as_array().size(); ++i) {
      spec.regions.push_back(
          parse_region(v->as_array()[i],
                       r.path_of("regions") + "[" + std::to_string(i) + "]"));
    }
  }
  r.finish();
  return spec;
}

Json to_json(const ScenarioSpec& spec) {
  Json j = Json::make_object();
  j.set("name", Json(spec.name));
  Json lo = Json::make_array();
  lo.push_back(Json(spec.domain_lower[0]));
  lo.push_back(Json(spec.domain_lower[1]));
  j.set("domain_lower", std::move(lo));
  Json hi = Json::make_array();
  hi.push_back(Json(spec.domain_upper[0]));
  hi.push_back(Json(spec.domain_upper[1]));
  j.set("domain_upper", std::move(hi));
  j.set("gamma", Json(spec.gamma));
  Json g = Json::make_array();
  g.push_back(Json(spec.gravity[0]));
  g.push_back(Json(spec.gravity[1]));
  j.set("gravity", std::move(g));
  j.set("background", state_to_json(spec.background));
  Json regions = Json::make_array();
  for (const Region& reg : spec.regions) {
    regions.push_back(region_to_json(reg));
  }
  j.set("regions", std::move(regions));
  return j;
}

namespace {

/// JSON names of the injection sites, indexed by util::FaultSite.
const char* const kFaultSiteKeys[util::kFaultSiteCount] = {
    "launch",           "alloc", "message_drop",
    "message_delay",    "checkpoint_write", "step"};

util::FaultSiteConfig parse_fault_site(const Json& value,
                                       const std::string& path) {
  Reader r(value, path);
  util::FaultSiteConfig s;
  s.probability = r.get_number("probability", s.probability);
  s.step_probability = r.get_number("step_probability", s.step_probability);
  require_ge(s.probability, 0.0, r.path_of("probability"));
  require_ge(s.step_probability, 0.0, r.path_of("step_probability"));
  RAMR_REQUIRE(s.probability <= 1.0 && s.step_probability <= 1.0,
               "config key \"" << path << "\": probabilities must be <= 1");
  if (const Json* v = r.consume("at_steps")) {
    RAMR_REQUIRE(v->is_array(), "config key \"" << r.path_of("at_steps")
                 << "\": expected an array of integers");
    for (const Json& e : v->as_array()) {
      RAMR_REQUIRE(e.is_integer(), "config key \"" << r.path_of("at_steps")
                   << "\": expected an array of integers");
      s.at_steps.push_back(static_cast<int>(e.as_integer()));
    }
  }
  if (const Json* v = r.consume("at_events")) {
    RAMR_REQUIRE(v->is_array(), "config key \"" << r.path_of("at_events")
                 << "\": expected an array of integers");
    for (const Json& e : v->as_array()) {
      RAMR_REQUIRE(e.is_integer(), "config key \"" << r.path_of("at_events")
                   << "\": expected an array of integers");
      s.at_events.push_back(e.as_integer());
    }
  }
  s.max_injections = r.get_int("max_injections", s.max_injections);
  require_ge(s.max_injections, -1, r.path_of("max_injections"));
  r.finish();
  return s;
}

util::FaultConfig parse_faults(const Json& value, const std::string& path) {
  Reader r(value, path);
  util::FaultConfig f;
  f.seed = static_cast<std::uint64_t>(
      r.get_integer("seed", static_cast<std::int64_t>(f.seed)));
  f.launch_retries = r.get_int("launch_retries", f.launch_retries);
  f.message_delay_s = r.get_number("message_delay_s", f.message_delay_s);
  f.drop_timeout_s = r.get_number("drop_timeout_s", f.drop_timeout_s);
  f.truncate_bytes = r.get_int("truncate_bytes", f.truncate_bytes);
  require_ge(f.launch_retries, 0, r.path_of("launch_retries"));
  require_ge(f.message_delay_s, 0.0, r.path_of("message_delay_s"));
  require_ge(f.drop_timeout_s, 0.0, r.path_of("drop_timeout_s"));
  require_ge(f.truncate_bytes, 1, r.path_of("truncate_bytes"));
  for (int s = 0; s < util::kFaultSiteCount; ++s) {
    if (const Json* v = r.consume(kFaultSiteKeys[s])) {
      f.sites[static_cast<std::size_t>(s)] =
          parse_fault_site(*v, r.path_of(kFaultSiteKeys[s]));
    }
  }
  r.finish();
  return f;
}

Json fault_site_to_json(const util::FaultSiteConfig& s) {
  Json j = Json::make_object();
  j.set("probability", Json(s.probability));
  j.set("step_probability", Json(s.step_probability));
  Json steps = Json::make_array();
  for (int v : s.at_steps) {
    steps.push_back(Json(v));
  }
  j.set("at_steps", std::move(steps));
  Json events = Json::make_array();
  for (std::int64_t v : s.at_events) {
    events.push_back(Json(v));
  }
  j.set("at_events", std::move(events));
  j.set("max_injections", Json(s.max_injections));
  return j;
}

Json faults_to_json(const util::FaultConfig& f) {
  Json j = Json::make_object();
  j.set("seed", Json(static_cast<std::int64_t>(f.seed)));
  j.set("launch_retries", Json(f.launch_retries));
  j.set("message_delay_s", Json(f.message_delay_s));
  j.set("drop_timeout_s", Json(f.drop_timeout_s));
  j.set("truncate_bytes", Json(f.truncate_bytes));
  for (int s = 0; s < util::kFaultSiteCount; ++s) {
    j.set(kFaultSiteKeys[s],
          fault_site_to_json(f.sites[static_cast<std::size_t>(s)]));
  }
  return j;
}

}  // namespace

RunConfig parse_run_config(const Json& root) {
  Reader r(root, "");
  RunConfig config;

  // --- problem selection: a registered name, or an inline scenario.
  const bool has_scenario = r.has("scenario");
  if (const Json* v = r.consume("problem")) {
    RAMR_REQUIRE(v->is_string(), "config key \"problem\": expected a string, "
                                 "got " << Json::type_name(v->type()));
    RAMR_REQUIRE(!has_scenario,
                 "config key \"problem\": cannot be combined with an inline "
                 "\"scenario\" block (the scenario names itself)");
    const std::string& name = v->as_string();
    if (!app::ProblemRegistry::instance().contains(name)) {
      std::string known;
      for (const std::string& n : app::ProblemRegistry::instance().names()) {
        known += known.empty() ? n : ", " + n;
      }
      RAMR_FAIL("config key \"problem\": unknown problem \""
                << name << "\"; registered problems: " << known);
    }
    config.sim.problem = name;
  }
  if (const Json* v = r.consume("scenario")) {
    auto spec = std::make_shared<ScenarioSpec>(parse_scenario(*v, "scenario"));
    config.sim.problem = spec->name;
    config.sim.scenario = std::move(spec);
  }

  if (const Json* v = r.consume("grid")) {
    Reader g(*v, "grid");
    config.sim.nx = g.get_int("nx", config.sim.nx);
    config.sim.ny = g.get_int("ny", config.sim.ny);
    require_ge(config.sim.nx, 1, g.path_of("nx"));
    require_ge(config.sim.ny, 1, g.path_of("ny"));
    g.finish();
  }

  if (const Json* v = r.consume("amr")) {
    Reader a(*v, "amr");
    config.sim.max_levels = a.get_int("max_levels", config.sim.max_levels);
    config.sim.ratio = a.get_int("ratio", config.sim.ratio);
    config.sim.regrid_interval =
        a.get_int("regrid_interval", config.sim.regrid_interval);
    config.sim.tag_buffer = a.get_int("tag_buffer", config.sim.tag_buffer);
    config.sim.tag_threshold =
        a.get_number("tag_threshold", config.sim.tag_threshold);
    config.sim.max_patch_cells =
        a.get_integer("max_patch_cells", config.sim.max_patch_cells);
    config.sim.min_patch_size =
        a.get_int("min_patch_size", config.sim.min_patch_size);
    config.sim.cluster_efficiency =
        a.get_number("cluster_efficiency", config.sim.cluster_efficiency);
    const std::string bm = a.get_string(
        "balance_method", balance_method_name(config.sim.balance_method));
    if (bm == "morton") {
      config.sim.balance_method = amr::BalanceMethod::kMorton;
    } else if (bm == "greedy") {
      config.sim.balance_method = amr::BalanceMethod::kGreedy;
    } else if (bm == "measured") {
      config.sim.balance_method = amr::BalanceMethod::kMeasured;
    } else {
      RAMR_FAIL("config key \"" << a.path_of("balance_method")
                                << "\": expected \"morton\", \"greedy\" or "
                                   "\"measured\", got \""
                                << bm << "\"");
    }
    require_ge(config.sim.max_levels, 1, a.path_of("max_levels"));
    // The refinement machinery (operator stencils, rind widths, tag
    // coarsening) is built for power-of-two ratios; anything else only
    // "works" until the first regrid.
    RAMR_REQUIRE(
        config.sim.max_levels == 1 ||
            (config.sim.ratio == 2 || config.sim.ratio == 4),
        "config key \"" << a.path_of("ratio")
                        << "\": refinement ratio must be 2 or 4 when "
                           "max_levels > 1, got "
                        << config.sim.ratio);
    require_ge(config.sim.ratio, 1, a.path_of("ratio"));
    require_ge(config.sim.regrid_interval, 1, a.path_of("regrid_interval"));
    require_ge(config.sim.tag_buffer, 0, a.path_of("tag_buffer"));
    require_ge(config.sim.tag_threshold, 0.0, a.path_of("tag_threshold"));
    require_ge(static_cast<double>(config.sim.max_patch_cells), 1,
               a.path_of("max_patch_cells"));
    require_ge(config.sim.min_patch_size, 1, a.path_of("min_patch_size"));
    require_gt(config.sim.cluster_efficiency, 0.0,
               a.path_of("cluster_efficiency"));
    RAMR_REQUIRE(config.sim.cluster_efficiency <= 1.0,
                 "config key \"" << a.path_of("cluster_efficiency")
                                 << "\": must be <= 1, got "
                                 << config.sim.cluster_efficiency);
    a.finish();
  }

  if (const Json* v = r.consume("execution")) {
    Reader e(*v, "execution");
    config.sim.batched_launch =
        e.get_bool("batched_launch", config.sim.batched_launch);
    config.sim.compiled_transfer =
        e.get_bool("compiled_transfer", config.sim.compiled_transfer);
    config.sim.async_overlap =
        e.get_bool("async_overlap", config.sim.async_overlap);
    config.sim.wide_overlap =
        e.get_bool("wide_overlap", config.sim.wide_overlap);
    e.finish();
  }

  if (const Json* v = r.consume("device")) {
    config.sim.device = parse_device(*v, "device");
  }
  if (const Json* v = r.consume("topology")) {
    config.sim.topology = parse_topology(*v, "topology");
  }
  if (const Json* v = r.consume("network")) {
    config.network = parse_network(*v, "network");
  }

  if (const Json* v = r.consume("run")) {
    Reader b(*v, "run");
    config.run.max_steps = b.get_int("max_steps", config.run.max_steps);
    config.run.end_time = b.get_number("end_time", config.run.end_time);
    config.run.ranks = b.get_int("ranks", config.run.ranks);
    require_ge(config.run.max_steps, 0, b.path_of("max_steps"));
    require_gt(config.run.end_time, 0.0, b.path_of("end_time"));
    require_ge(config.run.ranks, 1, b.path_of("ranks"));
    b.finish();
  }

  if (const Json* v = r.consume("faults")) {
    config.sim.faults =
        std::make_shared<util::FaultConfig>(parse_faults(*v, "faults"));
  }

  if (const Json* v = r.consume("observability")) {
    Reader o(*v, "observability");
    obs::ObservabilityConfig oc;
    oc.trace = o.get_bool("trace", oc.trace);
    oc.trace_capacity = o.get_int("trace_capacity", oc.trace_capacity);
    oc.trace_path = o.get_string("trace_path", oc.trace_path);
    oc.metrics = o.get_bool("metrics", oc.metrics);
    oc.metrics_stride = o.get_int("metrics_stride", oc.metrics_stride);
    oc.metrics_path = o.get_string("metrics_path", oc.metrics_path);
    oc.log_level = o.get_string("log_level", oc.log_level);
    require_ge(oc.trace_capacity, 1, o.path_of("trace_capacity"));
    require_ge(oc.metrics_stride, 1, o.path_of("metrics_stride"));
    if (!oc.log_level.empty()) {
      try {
        (void)util::parse_log_level(oc.log_level);
      } catch (const util::Error&) {
        RAMR_FAIL("config key \"" << o.path_of("log_level")
                  << "\": unknown log level \"" << oc.log_level
                  << "\" (expected debug, info, warn, or error)");
      }
    }
    o.finish();
    config.sim.observability =
        std::make_shared<obs::ObservabilityConfig>(std::move(oc));
  }

  if (const Json* v = r.consume("output")) {
    Reader o(*v, "output");
    config.output.basename = o.get_string("basename", config.output.basename);
    config.output.checkpoint_interval = o.get_int(
        "checkpoint_interval", config.output.checkpoint_interval);
    config.output.vtk_interval =
        o.get_int("vtk_interval", config.output.vtk_interval);
    require_ge(config.output.checkpoint_interval, 0,
               o.path_of("checkpoint_interval"));
    require_ge(config.output.vtk_interval, 0, o.path_of("vtk_interval"));
    o.finish();
  }

  r.finish();
  return config;
}

RunConfig parse_run_config_text(std::string_view text) {
  return parse_run_config(Json::parse(text));
}

Json to_json(const RunConfig& config) {
  Json j = Json::make_object();
  if (config.sim.scenario != nullptr) {
    j.set("scenario", to_json(*config.sim.scenario));
  } else {
    j.set("problem", Json(config.sim.problem));
  }

  Json grid = Json::make_object();
  grid.set("nx", Json(config.sim.nx));
  grid.set("ny", Json(config.sim.ny));
  j.set("grid", std::move(grid));

  Json amr = Json::make_object();
  amr.set("max_levels", Json(config.sim.max_levels));
  amr.set("ratio", Json(config.sim.ratio));
  amr.set("regrid_interval", Json(config.sim.regrid_interval));
  amr.set("tag_buffer", Json(config.sim.tag_buffer));
  amr.set("tag_threshold", Json(config.sim.tag_threshold));
  amr.set("max_patch_cells", Json(config.sim.max_patch_cells));
  amr.set("min_patch_size", Json(config.sim.min_patch_size));
  amr.set("cluster_efficiency", Json(config.sim.cluster_efficiency));
  amr.set("balance_method",
          Json(std::string(balance_method_name(config.sim.balance_method))));
  j.set("amr", std::move(amr));

  Json execution = Json::make_object();
  execution.set("batched_launch", Json(config.sim.batched_launch));
  execution.set("compiled_transfer", Json(config.sim.compiled_transfer));
  execution.set("async_overlap", Json(config.sim.async_overlap));
  execution.set("wide_overlap", Json(config.sim.wide_overlap));
  j.set("execution", std::move(execution));

  Json device = Json::make_object();
  device.set("name", Json(config.sim.device.name));
  device.set("peak_gflops", Json(config.sim.device.peak_gflops));
  device.set("mem_bw_gbs", Json(config.sim.device.mem_bw_gbs));
  device.set("launch_overhead_s", Json(config.sim.device.launch_overhead_s));
  device.set("pcie_bw_gbs", Json(config.sim.device.pcie_bw_gbs));
  device.set("pcie_lat_s", Json(config.sim.device.pcie_lat_s));
  device.set("half_saturation_threads",
             Json(config.sim.device.half_saturation_threads));
  device.set("mem_bytes",
             Json(static_cast<std::int64_t>(config.sim.device.mem_bytes)));
  device.set("is_accelerator", Json(config.sim.device.is_accelerator));
  j.set("device", std::move(device));

  // Emitted only when the rank has more than one device or a non-default
  // wire mode (like the faults block): the default single-device run
  // carries no topology, and `{}` keeps round-tripping to itself.
  {
    const vgpu::TopologySpec def;
    const vgpu::TopologySpec& t = config.sim.topology;
    if (t.device_count != def.device_count || t.gpu_direct != def.gpu_direct ||
        t.link.name != def.link.name ||
        t.link.latency_s != def.link.latency_s ||
        t.link.bw_gbs != def.link.bw_gbs) {
      j.set("topology", topology_to_json(t));
    }
  }

  Json network = Json::make_object();
  network.set("name", Json(config.network.name));
  network.set("latency_s", Json(config.network.latency_s));
  network.set("bw_gbs", Json(config.network.bw_gbs));
  j.set("network", std::move(network));

  Json run = Json::make_object();
  run.set("max_steps", Json(config.run.max_steps));
  run.set("end_time", Json(config.run.end_time));
  run.set("ranks", Json(config.run.ranks));
  j.set("run", std::move(run));

  // Emitted only when configured (like the scenario block): the default
  // run carries no faults, and `{}` must keep round-tripping to itself.
  if (config.sim.faults != nullptr) {
    j.set("faults", faults_to_json(*config.sim.faults));
  }

  // Same deal: no observability block unless the run asked for one.
  if (config.sim.observability != nullptr) {
    const obs::ObservabilityConfig& oc = *config.sim.observability;
    Json observability = Json::make_object();
    observability.set("trace", Json(oc.trace));
    observability.set("trace_capacity", Json(oc.trace_capacity));
    observability.set("trace_path", Json(oc.trace_path));
    observability.set("metrics", Json(oc.metrics));
    observability.set("metrics_stride", Json(oc.metrics_stride));
    observability.set("metrics_path", Json(oc.metrics_path));
    observability.set("log_level", Json(oc.log_level));
    j.set("observability", std::move(observability));
  }

  Json output = Json::make_object();
  output.set("basename", Json(config.output.basename));
  output.set("checkpoint_interval", Json(config.output.checkpoint_interval));
  output.set("vtk_interval", Json(config.output.vtk_interval));
  j.set("output", std::move(output));

  return j;
}

}  // namespace ramr::cfg
