// Self-contained JSON value type, parser and serializer for the config
// subsystem (docs/scenarios.md). No external dependencies: the container
// ships no JSON library, and problem configs are small, so a strict
// recursive-descent reader is all that is needed.
//
// Strictness is a feature: the parser rejects trailing commas, comments,
// duplicate object keys and garbage after the document, and reports
// every error with line:column context. Objects preserve insertion
// order so a config's round trip through parse() + dump() is stable and
// diffable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ramr::cfg {

/// One JSON value (null / bool / number / string / array / object).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  /// Object members in insertion order (configs stay diffable; duplicate
  /// keys are rejected at parse time and by set()).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}                // NOLINT
  Json(double v) : type_(Type::kNumber), number_(v) {}          // NOLINT
  Json(int v) : type_(Type::kNumber), number_(v) {}             // NOLINT
  Json(std::int64_t v)                                          // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}     // NOLINT
  Json(std::string s)                                           // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}

  static Json make_array() { Json j; j.type_ = Type::kArray; return j; }
  static Json make_object() { Json j; j.type_ = Type::kObject; return j; }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// True for a number with an exact integral value that fits an int64
  /// (the bar every integer-typed config field must clear).
  bool is_integer() const;

  // Typed access; throws util::Error naming the actual type on mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_integer() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object member lookup; null when absent (or not an object).
  const Json* find(std::string_view key) const;

  /// Inserts or replaces an object member, preserving insertion order.
  /// The value must be an object.
  void set(std::string key, Json value);

  /// Appends to an array value.
  void push_back(Json value);

  /// Human-readable name of a type ("number", "object", ...).
  static const char* type_name(Type t);

  /// Serializes with 2-space indentation (indent <= 0: compact one-line).
  /// Numbers round-trip exactly: integral values print as integers,
  /// everything else with max_digits10 precision.
  std::string dump(int indent = 2) const;

  /// Parses one JSON document; throws util::Error with line:column
  /// context on malformed input, duplicate keys, or trailing garbage.
  static Json parse(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace ramr::cfg
