// Declarative initial-condition description: a background fluid state
// plus an ordered list of region primitives (box / circle / ramp) that
// override it, evaluated analytically at any physical point — the same
// contract as the hand-written problem lambdas in app/problems.cpp, so
// region-driven problems initialize ghost cells by analytic continuation
// exactly like the built-ins do.
//
// This layer is pure geometry and state; it knows nothing about meshes,
// fields or devices. app::RegionProblem adapts it to the AMR machinery,
// and cfg::parse_scenario builds it from JSON (docs/scenarios.md).
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

namespace ramr::cfg {

/// Fluid state assigned by the background or a region. Velocities are
/// sampled at nodes, density/energy at cell centres.
struct FluidState {
  double density = 1.0;
  double energy = 1.0;   ///< specific internal energy
  double xvel = 0.0;
  double yvel = 0.0;
};

/// One initial-condition primitive. Later regions override earlier ones
/// where they overlap (painter's order).
struct Region {
  enum class Shape { kBox, kCircle, kRamp };

  Shape shape = Shape::kBox;

  /// State painted inside the region (box and circle; a ramp blends
  /// ramp_state0 -> ramp_state1 instead).
  FluidState state;

  // --- box: optional per-side bounds; an omitted side is unbounded, so
  // {x_max: 0.5} reproduces the classic "x < 0.5" half-space including
  // its analytic continuation into ghost cells. Containment is
  // half-open: min <= p < max.
  std::optional<double> x_min, x_max, y_min, y_max;

  /// Optional sinusoidal perturbation of ONE box bound (the seeding
  /// mechanism for Kelvin-Helmholtz / Rayleigh-Taylor interfaces): the
  /// named side moves to
  ///   bound + amplitude * cos(2*pi * other_coord / wavelength + phase).
  /// Empty string = no perturbation.
  std::string interface_side;
  double interface_amplitude = 0.0;
  double interface_wavelength = 1.0;
  double interface_phase = 0.0;

  // --- circle: strict interior (dist^2 < radius^2).
  std::array<double, 2> center = {0.0, 0.0};
  double radius = 0.0;

  // --- ramp: along `ramp_axis` (0 = x, 1 = y), linearly blends
  // ramp_state0 (coordinate <= ramp_from) into ramp_state1
  // (coordinate >= ramp_to); applies everywhere on the domain.
  int ramp_axis = 0;
  double ramp_from = 0.0;
  double ramp_to = 1.0;
  FluidState ramp_state0;
  FluidState ramp_state1;

  /// Box/circle membership test (true everywhere for ramps).
  bool contains(double x, double y) const;
};

/// A complete scenario: domain, EOS, gravity, and the painted initial
/// state. Everything defaults to the values hard-coded in today's
/// built-in problems so an empty spec changes nothing.
struct ScenarioSpec {
  std::string name = "custom";
  std::array<double, 2> domain_lower = {0.0, 0.0};
  std::array<double, 2> domain_upper = {1.0, 1.0};
  /// Ideal-gas ratio of specific heats (hydro::Constants::gamma today).
  double gamma = 1.4;
  /// Constant body acceleration applied in the acceleration stage;
  /// {0, 0} keeps the kernel on its exact gravity-free path.
  std::array<double, 2> gravity = {0.0, 0.0};
  FluidState background;
  std::vector<Region> regions;

  /// Initial state at a physical point: background, then each region in
  /// order (later wins).
  FluidState sample(double x, double y) const;

  /// True when any state in the scenario carries a nonzero velocity —
  /// the trigger for initializing node velocities analytically instead
  /// of the zero-fill fast path (which stays bit-identical to the
  /// built-in problems).
  bool has_velocity() const;

  /// True when gravity is exactly (0, 0) — keeps the acceleration
  /// kernel on its unmodified arithmetic.
  bool gravity_free() const {
    return gravity[0] == 0.0 && gravity[1] == 0.0;
  }
};

}  // namespace ramr::cfg
