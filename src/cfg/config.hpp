// JSON problem/run configuration: a strict parser-validator that turns a
// config document into a ready-to-run RunConfig (SimulationConfig plus
// run budget, network and output policy) and a serializer that round-
// trips it back (docs/scenarios.md).
//
// Contract: every field is optional and every omitted field defaults to
// exactly today's hard-coded behaviour, so the empty document `{}`
// reproduces the default Sod run bit for bit. Unknown keys, type
// mismatches and out-of-range values are hard errors that name the
// offending JSON path (e.g. "amr.tag_threshold") — a config either
// means exactly what it says or it does not load.
#pragma once

#include <string>
#include <string_view>

#include "app/simulation.hpp"
#include "cfg/json.hpp"
#include "simmpi/network_spec.hpp"

namespace ramr::cfg {

/// Stopping criteria and parallel layout of one run.
struct RunBudget {
  int max_steps = 100;        ///< advance() calls per job
  double end_time = 1.0e30;   ///< stop when sim time reaches this
  int ranks = 1;              ///< simulated MPI ranks (threads)
};

/// What the run writes and how often. Intervals are in steps; 0 = only
/// at the end of the run, and an empty basename disables the stream
/// entirely.
struct OutputPolicy {
  std::string basename;           ///< file prefix; "" = no output
  int checkpoint_interval = 0;    ///< steps between checkpoints (0 = off)
  int vtk_interval = 0;           ///< steps between VTK dumps (0 = off)
};

/// Everything a driver needs to execute one configured run.
struct RunConfig {
  app::SimulationConfig sim;
  simmpi::NetworkSpec network = simmpi::ideal_network();
  RunBudget run;
  OutputPolicy output;
};

/// Validates and converts a parsed JSON document. Throws util::Error
/// with the dotted JSON path of the offending key on unknown keys, type
/// mismatches, out-of-range values, or an unregistered problem name.
RunConfig parse_run_config(const Json& root);

/// Convenience: Json::parse + parse_run_config.
RunConfig parse_run_config_text(std::string_view text);

/// Parses one scenario block (the value of the top-level "scenario" key
/// or a stock-scenario file). `path` prefixes error messages.
ScenarioSpec parse_scenario(const Json& value, const std::string& path);

/// Serializes every field explicitly (including the defaulted ones), so
/// parse_run_config(to_json(c)) reproduces `c` and the dump documents
/// the full effective configuration of a run.
Json to_json(const RunConfig& config);

/// Scenario block serializer (inverse of parse_scenario).
Json to_json(const ScenarioSpec& spec);

}  // namespace ramr::cfg
