// The paper's data-parallel refinement operators (§IV-B2, Fig. 5):
//   * NodeLinearRefine — bilinear interpolation of node-centred data
//     (velocities), one device thread per fine node;
//   * CellConservativeLinearRefine — MC-limited piecewise-linear
//     reconstruction of cell-centred data (density, energy), exactly
//     conservative under summation over each coarse cell;
//   * SideConservativeLinearRefine — linear along the face normal,
//     constant tangentially, for side-centred data (fluxes).
#pragma once

#include "xfer/refine_operator.hpp"

namespace ramr::geom {

/// Bilinear node-centred refine (paper Fig. 5b). Fine nodes coincident
/// with coarse nodes copy them exactly; interior fine nodes blend the
/// four surrounding coarse nodes with weights (1-x)(1-y) etc.
class NodeLinearRefine : public xfer::RefineOperator {
 public:
  mesh::IntVector stencil_width() const override { return {0, 0}; }
  void refine(pdat::PatchData& dst, const pdat::PatchData& src,
              const mesh::Box& fine_cells,
              const mesh::IntVector& ratio) const override;
  void refine_batched(std::span<const xfer::RefineTask> tasks,
                      const mesh::IntVector& ratio) const override;
  const char* name() const override { return "node-linear-refine"; }
};

/// Conservative MC-limited linear refine for cell-centred data.
class CellConservativeLinearRefine : public xfer::RefineOperator {
 public:
  mesh::IntVector stencil_width() const override { return {1, 1}; }
  void refine(pdat::PatchData& dst, const pdat::PatchData& src,
              const mesh::Box& fine_cells,
              const mesh::IntVector& ratio) const override;
  void refine_batched(std::span<const xfer::RefineTask> tasks,
                      const mesh::IntVector& ratio) const override;
  const char* name() const override { return "cell-conservative-linear-refine"; }
};

/// Side-centred refine: linear interpolation between the two adjacent
/// coarse faces along the normal; constant in the tangential direction.
class SideConservativeLinearRefine : public xfer::RefineOperator {
 public:
  mesh::IntVector stencil_width() const override { return {0, 0}; }
  void refine(pdat::PatchData& dst, const pdat::PatchData& src,
              const mesh::Box& fine_cells,
              const mesh::IntVector& ratio) const override;
  void refine_batched(std::span<const xfer::RefineTask> tasks,
                      const mesh::IntVector& ratio) const override;
  const char* name() const override { return "side-conservative-linear-refine"; }
};

}  // namespace ramr::geom
