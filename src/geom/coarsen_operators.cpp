#include "geom/coarsen_operators.hpp"

#include "geom/operator_support.hpp"

namespace ramr::geom {

using mesh::Box;
using mesh::Centering;
using mesh::IntVector;
using pdat::cuda::CudaData;

namespace {

/// r x r gather per coarse element: reads r^2 doubles, writes one.
vgpu::KernelCost gather_cost(const IntVector& ratio) {
  const double n = static_cast<double>(ratio.i) * ratio.j;
  return vgpu::KernelCost{2.0 * n, 8.0 * (n + 1.0)};
}

/// Clips a requested coarse region so all fine reads stay in bounds.
Box clip_coarse_region(const CudaData& dst, const CudaData& src,
                       const Box& coarse_cells, const IntVector& ratio,
                       Centering comp, int k, bool node_like) {
  Box region = mesh::to_centering(coarse_cells, comp)
                   .intersect(dst.component(k).index_box());
  const Box fbox = src.component(k).index_box();
  Box coarse_ok;
  if (node_like) {
    // Injection reads the single coincident fine index I*r.
    coarse_ok = Box(IntVector(mesh::floor_div(fbox.lower().i + ratio.i - 1, ratio.i),
                              mesh::floor_div(fbox.lower().j + ratio.j - 1, ratio.j)),
                    IntVector(mesh::floor_div(fbox.upper().i, ratio.i),
                              mesh::floor_div(fbox.upper().j, ratio.j)));
  } else {
    // Cell gather reads [I*r, I*r + r - 1].
    coarse_ok = Box(IntVector(mesh::floor_div(fbox.lower().i + ratio.i - 1, ratio.i),
                              mesh::floor_div(fbox.lower().j + ratio.j - 1, ratio.j)),
                    IntVector(mesh::floor_div(fbox.upper().i - ratio.i + 1, ratio.i),
                              mesh::floor_div(fbox.upper().j - ratio.j + 1, ratio.j)));
  }
  return region.intersect(coarse_ok);
}

}  // namespace

void NodeInjectionCoarsen::coarsen(pdat::PatchData& dst_pd,
                                   const pdat::PatchData& src_pd,
                                   const pdat::PatchData* /*src_aux*/,
                                   const Box& coarse_cells,
                                   const IntVector& ratio) const {
  CudaData& dst = as_cuda(dst_pd);
  const CudaData& src = as_cuda(src_pd);
  vgpu::Device& device = dst.device();
  vgpu::Stream stream(device, "coarsen");

  for (int k = 0; k < dst.components(); ++k) {
    const Box r = clip_coarse_region(dst, src, coarse_cells, ratio,
                                     Centering::kNode, k, /*node_like=*/true);
    if (r.empty()) {
      continue;
    }
    util::View c = dst.device_view(k);
    util::View f = src.device_view(k);
    const int ri = ratio.i;
    const int rj = ratio.j;
    device.launch2d(stream, r.lower().i, r.lower().j, r.width(), r.height(),
                    vgpu::KernelCost{0.0, 16.0},
                    [=](int i, int j) { c(i, j) = f(i * ri, j * rj); });
  }
}

void VolumeWeightedCoarsen::coarsen(pdat::PatchData& dst_pd,
                                    const pdat::PatchData& src_pd,
                                    const pdat::PatchData* /*src_aux*/,
                                    const Box& coarse_cells,
                                    const IntVector& ratio) const {
  CudaData& dst = as_cuda(dst_pd);
  const CudaData& src = as_cuda(src_pd);
  vgpu::Device& device = dst.device();
  vgpu::Stream stream(device, "coarsen");

  for (int k = 0; k < dst.components(); ++k) {
    const Box r = clip_coarse_region(dst, src, coarse_cells, ratio,
                                     Centering::kCell, k, /*node_like=*/false);
    if (r.empty()) {
      continue;
    }
    util::View c = dst.device_view(k);
    util::View f = src.device_view(k);
    const int ri = ratio.i;
    const int rj = ratio.j;
    // Uniform mesh: vol(fine)/vol(coarse) = 1 / (ri * rj). The kernel
    // follows the paper's Fig. 8 listing.
    const double inv_vc = 1.0 / (static_cast<double>(ri) * rj);
    device.launch2d(stream, r.lower().i, r.lower().j, r.width(), r.height(),
                    gather_cost(ratio), [=](int i, int j) {
                      double spv = 0.0;
                      for (int jj = 0; jj < rj; ++jj) {
                        for (int ii = 0; ii < ri; ++ii) {
                          spv += f(i * ri + ii, j * rj + jj);
                        }
                      }
                      c(i, j) = spv * inv_vc;
                    });
  }
}

void MassWeightedCoarsen::coarsen(pdat::PatchData& dst_pd,
                                  const pdat::PatchData& src_pd,
                                  const pdat::PatchData* src_aux,
                                  const Box& coarse_cells,
                                  const IntVector& ratio) const {
  RAMR_REQUIRE(src_aux != nullptr,
               "mass-weighted coarsen requires the fine density as aux");
  CudaData& dst = as_cuda(dst_pd);
  const CudaData& src = as_cuda(src_pd);
  const CudaData& rho = as_cuda(*src_aux);
  vgpu::Device& device = dst.device();
  vgpu::Stream stream(device, "coarsen");

  for (int k = 0; k < dst.components(); ++k) {
    const Box r = clip_coarse_region(dst, src, coarse_cells, ratio,
                                     Centering::kCell, k, /*node_like=*/false);
    if (r.empty()) {
      continue;
    }
    util::View c = dst.device_view(k);
    util::View f = src.device_view(k);
    util::View w = rho.device_view(k);
    const int ri = ratio.i;
    const int rj = ratio.j;
    vgpu::KernelCost cost = gather_cost(ratio);
    cost.bytes_per_thread *= 2.0;  // reads density too
    device.launch2d(stream, r.lower().i, r.lower().j, r.width(), r.height(),
                    cost, [=](int i, int j) {
                      double mass_energy = 0.0;
                      double mass = 0.0;
                      for (int jj = 0; jj < rj; ++jj) {
                        for (int ii = 0; ii < ri; ++ii) {
                          const double m = w(i * ri + ii, j * rj + jj);
                          mass_energy += m * f(i * ri + ii, j * rj + jj);
                          mass += m;
                        }
                      }
                      c(i, j) = mass > 0.0 ? mass_energy / mass : 0.0;
                    });
  }
}

void SideSumCoarsen::coarsen(pdat::PatchData& dst_pd,
                             const pdat::PatchData& src_pd,
                             const pdat::PatchData* /*src_aux*/,
                             const Box& coarse_cells,
                             const IntVector& ratio) const {
  CudaData& dst = as_cuda(dst_pd);
  const CudaData& src = as_cuda(src_pd);
  vgpu::Device& device = dst.device();
  vgpu::Stream stream(device, "coarsen");
  RAMR_REQUIRE(dst.components() == 2, "side coarsen requires side data");

  for (int k = 0; k < 2; ++k) {
    const Centering comp = (k == 0) ? Centering::kXSide : Centering::kYSide;
    Box region = mesh::to_centering(coarse_cells, comp)
                     .intersect(dst.component(k).index_box());
    const Box fbox = src.component(k).index_box();
    // A coarse x-face (I,J) averages fine faces (I*r, J*r + jj).
    Box coarse_ok;
    if (k == 0) {
      coarse_ok =
          Box(IntVector(mesh::floor_div(fbox.lower().i + ratio.i - 1, ratio.i),
                        mesh::floor_div(fbox.lower().j + ratio.j - 1, ratio.j)),
              IntVector(mesh::floor_div(fbox.upper().i, ratio.i),
                        mesh::floor_div(fbox.upper().j - ratio.j + 1, ratio.j)));
    } else {
      coarse_ok =
          Box(IntVector(mesh::floor_div(fbox.lower().i + ratio.i - 1, ratio.i),
                        mesh::floor_div(fbox.lower().j + ratio.j - 1, ratio.j)),
              IntVector(mesh::floor_div(fbox.upper().i - ratio.i + 1, ratio.i),
                        mesh::floor_div(fbox.upper().j, ratio.j)));
    }
    const Box r = region.intersect(coarse_ok);
    if (r.empty()) {
      continue;
    }
    util::View c = dst.device_view(k);
    util::View f = src.device_view(k);
    const int ri = ratio.i;
    const int rj = ratio.j;
    const bool x_normal = (k == 0);
    device.launch2d(stream, r.lower().i, r.lower().j, r.width(), r.height(),
                    gather_cost(ratio), [=](int i, int j) {
                      double sum = 0.0;
                      if (x_normal) {
                        for (int jj = 0; jj < rj; ++jj) {
                          sum += f(i * ri, j * rj + jj);
                        }
                        c(i, j) = sum / rj;
                      } else {
                        for (int ii = 0; ii < ri; ++ii) {
                          sum += f(i * ri + ii, j * rj);
                        }
                        c(i, j) = sum / ri;
                      }
                    });
  }
}

}  // namespace ramr::geom
