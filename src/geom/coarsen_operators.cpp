#include "geom/coarsen_operators.hpp"

#include <vector>

#include "geom/operator_support.hpp"

namespace ramr::geom {

using mesh::Box;
using mesh::Centering;
using mesh::IntVector;
using pdat::cuda::CudaData;
using xfer::CoarsenTask;

namespace {

/// r x r gather per coarse element: reads r^2 doubles, writes one.
vgpu::KernelCost gather_cost(const IntVector& ratio) {
  const double n = static_cast<double>(ratio.i) * ratio.j;
  return vgpu::KernelCost{2.0 * n, 8.0 * (n + 1.0)};
}

/// Clips a requested coarse region so all fine reads stay in bounds.
Box clip_coarse_region(const CudaData& dst, const CudaData& src,
                       const Box& coarse_cells, const IntVector& ratio,
                       Centering comp, int k, bool node_like) {
  Box region = mesh::to_centering(coarse_cells, comp)
                   .intersect(dst.component(k).index_box());
  const Box fbox = src.component(k).index_box();
  Box coarse_ok;
  if (node_like) {
    // Injection reads the single coincident fine index I*r.
    coarse_ok = Box(IntVector(mesh::floor_div(fbox.lower().i + ratio.i - 1, ratio.i),
                              mesh::floor_div(fbox.lower().j + ratio.j - 1, ratio.j)),
                    IntVector(mesh::floor_div(fbox.upper().i, ratio.i),
                              mesh::floor_div(fbox.upper().j, ratio.j)));
  } else {
    // Cell gather reads [I*r, I*r + r - 1].
    coarse_ok = Box(IntVector(mesh::floor_div(fbox.lower().i + ratio.i - 1, ratio.i),
                              mesh::floor_div(fbox.lower().j + ratio.j - 1, ratio.j)),
                    IntVector(mesh::floor_div(fbox.upper().i - ratio.i + 1, ratio.i),
                              mesh::floor_div(fbox.upper().j - ratio.j + 1, ratio.j)));
  }
  return region.intersect(coarse_ok);
}

/// Coarse/fine/aux views of one task's component k, indexed by the fused
/// launch's segment id.
struct ViewTriple {
  util::View c;
  util::View f;
  util::View w;  ///< aux (fine density) when the operator needs it
};

/// Builds the fused launch inputs for component k: one segment per task
/// covering region(task) (empty regions keep their slot) and the
/// matching views. The aux view is materialized only when the operator
/// reads it — a forwarded aux of a different centring need not have a
/// component k at all.
template <typename RegionFn>
vgpu::SegmentTable gather_component(std::span<const CoarsenTask> tasks, int k,
                                    RegionFn&& region, bool use_aux,
                                    std::vector<ViewTriple>& views) {
  vgpu::SegmentTable segs;
  views.clear();
  views.reserve(tasks.size());
  for (const CoarsenTask& t : tasks) {
    CudaData& dst = as_cuda(*t.dst);
    const CudaData& src = as_cuda(*t.src);
    const Box r = region(dst, src, t.coarse_cells);
    segs.add(r.lower().i, r.lower().j, r.width(), r.height());
    views.push_back(ViewTriple{
        dst.device_view(k), src.device_view(k),
        use_aux && t.src_aux != nullptr ? as_cuda(*t.src_aux).device_view(k)
                                        : util::View{}});
  }
  return segs;
}

}  // namespace

void NodeInjectionCoarsen::coarsen(pdat::PatchData& dst_pd,
                                   const pdat::PatchData& src_pd,
                                   const pdat::PatchData* src_aux,
                                   const Box& coarse_cells,
                                   const IntVector& ratio) const {
  const CoarsenTask t{&dst_pd, &src_pd, src_aux, coarse_cells};
  coarsen_batched({&t, 1}, ratio);
}

void NodeInjectionCoarsen::coarsen_batched(std::span<const CoarsenTask> tasks,
                                           const IntVector& ratio) const {
  if (tasks.empty()) {
    return;
  }
  vgpu::Device& device = as_cuda(*tasks[0].dst).device();
  vgpu::Stream stream(device, "coarsen");
  const int ri = ratio.i;
  const int rj = ratio.j;

  for (int k = 0; k < as_cuda(*tasks[0].dst).components(); ++k) {
    std::vector<ViewTriple> views;
    const vgpu::SegmentTable segs = gather_component(
        tasks, k,
        [&](const CudaData& dst, const CudaData& src, const Box& coarse_cells) {
          return clip_coarse_region(dst, src, coarse_cells, ratio,
                                    Centering::kNode, k, /*node_like=*/true);
        },
        /*use_aux=*/false, views);
    const ViewTriple* pv = views.data();
    device.launch_batched(stream, segs, vgpu::KernelCost{0.0, 16.0},
                          [=](std::size_t s, int i, int j) {
                            pv[s].c(i, j) = pv[s].f(i * ri, j * rj);
                          });
  }
}

void VolumeWeightedCoarsen::coarsen(pdat::PatchData& dst_pd,
                                    const pdat::PatchData& src_pd,
                                    const pdat::PatchData* src_aux,
                                    const Box& coarse_cells,
                                    const IntVector& ratio) const {
  const CoarsenTask t{&dst_pd, &src_pd, src_aux, coarse_cells};
  coarsen_batched({&t, 1}, ratio);
}

void VolumeWeightedCoarsen::coarsen_batched(std::span<const CoarsenTask> tasks,
                                            const IntVector& ratio) const {
  if (tasks.empty()) {
    return;
  }
  vgpu::Device& device = as_cuda(*tasks[0].dst).device();
  vgpu::Stream stream(device, "coarsen");
  const int ri = ratio.i;
  const int rj = ratio.j;
  // Uniform mesh: vol(fine)/vol(coarse) = 1 / (ri * rj). The kernel
  // follows the paper's Fig. 8 listing.
  const double inv_vc = 1.0 / (static_cast<double>(ri) * rj);

  for (int k = 0; k < as_cuda(*tasks[0].dst).components(); ++k) {
    std::vector<ViewTriple> views;
    const vgpu::SegmentTable segs = gather_component(
        tasks, k,
        [&](const CudaData& dst, const CudaData& src, const Box& coarse_cells) {
          return clip_coarse_region(dst, src, coarse_cells, ratio,
                                    Centering::kCell, k, /*node_like=*/false);
        },
        /*use_aux=*/false, views);
    const ViewTriple* pv = views.data();
    device.launch_batched(
        stream, segs, gather_cost(ratio), [=](std::size_t s, int i, int j) {
          const util::View& c = pv[s].c;
          const util::View& f = pv[s].f;
          double spv = 0.0;
          for (int jj = 0; jj < rj; ++jj) {
            for (int ii = 0; ii < ri; ++ii) {
              spv += f(i * ri + ii, j * rj + jj);
            }
          }
          c(i, j) = spv * inv_vc;
        });
  }
}

void MassWeightedCoarsen::coarsen(pdat::PatchData& dst_pd,
                                  const pdat::PatchData& src_pd,
                                  const pdat::PatchData* src_aux,
                                  const Box& coarse_cells,
                                  const IntVector& ratio) const {
  const CoarsenTask t{&dst_pd, &src_pd, src_aux, coarse_cells};
  coarsen_batched({&t, 1}, ratio);
}

void MassWeightedCoarsen::coarsen_batched(std::span<const CoarsenTask> tasks,
                                          const IntVector& ratio) const {
  if (tasks.empty()) {
    return;
  }
  for (const CoarsenTask& t : tasks) {
    RAMR_REQUIRE(t.src_aux != nullptr,
                 "mass-weighted coarsen requires the fine density as aux");
  }
  vgpu::Device& device = as_cuda(*tasks[0].dst).device();
  vgpu::Stream stream(device, "coarsen");
  const int ri = ratio.i;
  const int rj = ratio.j;
  vgpu::KernelCost cost = gather_cost(ratio);
  cost.bytes_per_thread *= 2.0;  // reads density too

  for (int k = 0; k < as_cuda(*tasks[0].dst).components(); ++k) {
    std::vector<ViewTriple> views;
    const vgpu::SegmentTable segs = gather_component(
        tasks, k,
        [&](const CudaData& dst, const CudaData& src, const Box& coarse_cells) {
          return clip_coarse_region(dst, src, coarse_cells, ratio,
                                    Centering::kCell, k, /*node_like=*/false);
        },
        /*use_aux=*/true, views);
    const ViewTriple* pv = views.data();
    device.launch_batched(
        stream, segs, cost, [=](std::size_t s, int i, int j) {
          const util::View& c = pv[s].c;
          const util::View& f = pv[s].f;
          const util::View& w = pv[s].w;
          double mass_energy = 0.0;
          double mass = 0.0;
          for (int jj = 0; jj < rj; ++jj) {
            for (int ii = 0; ii < ri; ++ii) {
              const double m = w(i * ri + ii, j * rj + jj);
              mass_energy += m * f(i * ri + ii, j * rj + jj);
              mass += m;
            }
          }
          c(i, j) = mass > 0.0 ? mass_energy / mass : 0.0;
        });
  }
}

void SideSumCoarsen::coarsen(pdat::PatchData& dst_pd,
                             const pdat::PatchData& src_pd,
                             const pdat::PatchData* src_aux,
                             const Box& coarse_cells,
                             const IntVector& ratio) const {
  const CoarsenTask t{&dst_pd, &src_pd, src_aux, coarse_cells};
  coarsen_batched({&t, 1}, ratio);
}

void SideSumCoarsen::coarsen_batched(std::span<const CoarsenTask> tasks,
                                     const IntVector& ratio) const {
  if (tasks.empty()) {
    return;
  }
  vgpu::Device& device = as_cuda(*tasks[0].dst).device();
  vgpu::Stream stream(device, "coarsen");
  RAMR_REQUIRE(as_cuda(*tasks[0].dst).components() == 2,
               "side coarsen requires side data");
  const int ri = ratio.i;
  const int rj = ratio.j;

  for (int k = 0; k < 2; ++k) {
    const Centering comp = (k == 0) ? Centering::kXSide : Centering::kYSide;
    std::vector<ViewTriple> views;
    const vgpu::SegmentTable segs = gather_component(
        tasks, k,
        [&](const CudaData& dst, const CudaData& src, const Box& coarse_cells) {
          const Box region = mesh::to_centering(coarse_cells, comp)
                                 .intersect(dst.component(k).index_box());
          const Box fbox = src.component(k).index_box();
          // A coarse x-face (I,J) averages fine faces (I*r, J*r + jj).
          Box coarse_ok;
          if (k == 0) {
            coarse_ok = Box(
                IntVector(mesh::floor_div(fbox.lower().i + ri - 1, ri),
                          mesh::floor_div(fbox.lower().j + rj - 1, rj)),
                IntVector(mesh::floor_div(fbox.upper().i, ri),
                          mesh::floor_div(fbox.upper().j - rj + 1, rj)));
          } else {
            coarse_ok = Box(
                IntVector(mesh::floor_div(fbox.lower().i + ri - 1, ri),
                          mesh::floor_div(fbox.lower().j + rj - 1, rj)),
                IntVector(mesh::floor_div(fbox.upper().i - ri + 1, ri),
                          mesh::floor_div(fbox.upper().j, rj)));
          }
          return region.intersect(coarse_ok);
        },
        /*use_aux=*/false, views);
    const ViewTriple* pv = views.data();
    const bool x_normal = (k == 0);
    device.launch_batched(
        stream, segs, gather_cost(ratio), [=](std::size_t s, int i, int j) {
          const util::View& c = pv[s].c;
          const util::View& f = pv[s].f;
          double sum = 0.0;
          if (x_normal) {
            for (int jj = 0; jj < rj; ++jj) {
              sum += f(i * ri, j * rj + jj);
            }
            c(i, j) = sum / rj;
          } else {
            for (int ii = 0; ii < ri; ++ii) {
              sum += f(i * ri + ii, j * rj);
            }
            c(i, j) = sum / ri;
          }
        });
  }
}

}  // namespace ramr::geom
