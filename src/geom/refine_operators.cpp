#include "geom/refine_operators.hpp"

#include <vector>

#include "geom/operator_support.hpp"

namespace ramr::geom {

using mesh::Box;
using mesh::Centering;
using mesh::IntVector;
using pdat::cuda::CudaData;
using xfer::RefineTask;

namespace {

/// Refine kernels read 4 coarse values + write 1 fine value (bilinear) or
/// read 3x3 and write 1 (limited linear): ~40-80 bytes, ~15 flops.
constexpr vgpu::KernelCost kBilinearCost{12.0, 48.0};
constexpr vgpu::KernelCost kLimitedCost{24.0, 88.0};

/// Fine/coarse view pair of one task's component k, indexed by the fused
/// launch's segment id.
struct ViewPair {
  util::View f;
  util::View c;
};

/// Builds the fused launch inputs for component k: one segment per task
/// covering region(task) (empty regions keep their slot) and the
/// matching view pairs.
template <typename RegionFn>
vgpu::SegmentTable gather_component(std::span<const RefineTask> tasks, int k,
                                    RegionFn&& region,
                                    std::vector<ViewPair>& pairs) {
  vgpu::SegmentTable segs;
  pairs.clear();
  pairs.reserve(tasks.size());
  for (const RefineTask& t : tasks) {
    const CudaData& dst = as_cuda(*t.dst);
    const CudaData& src = as_cuda(*t.src);
    const Box r = region(dst, src, t.fine_cells);
    segs.add(r.lower().i, r.lower().j, r.width(), r.height());
    pairs.push_back(ViewPair{dst.device_view(k), src.device_view(k)});
  }
  return segs;
}

}  // namespace

void NodeLinearRefine::refine(pdat::PatchData& dst_pd,
                              const pdat::PatchData& src_pd,
                              const Box& fine_cells,
                              const IntVector& ratio) const {
  const RefineTask t{&dst_pd, &src_pd, fine_cells};
  refine_batched({&t, 1}, ratio);
}

void NodeLinearRefine::refine_batched(std::span<const RefineTask> tasks,
                                      const IntVector& ratio) const {
  if (tasks.empty()) {
    return;
  }
  vgpu::Device& device = as_cuda(*tasks[0].dst).device();
  vgpu::Stream stream(device, "refine");
  const int ri = ratio.i;
  const int rj = ratio.j;

  for (int k = 0; k < as_cuda(*tasks[0].dst).components(); ++k) {
    std::vector<ViewPair> pairs;
    const vgpu::SegmentTable segs = gather_component(
        tasks, k,
        [&](const CudaData& dst, const CudaData& src, const Box& fine_cells) {
          // Node data: a fine node at (i, j) maps to coarse node space via
          // ic = floor(i/r); coincident nodes (remainder 0) need no +1
          // coarse neighbour, so the usable region is computed directly
          // here rather than via writable_fine_region.
          const Box region = mesh::to_centering(fine_cells, Centering::kNode)
                                 .intersect(dst.component(k).index_box());
          // Clip so every read (ic, ic+1 when needed) stays inside the
          // coarse array: fine index range [clo*r, chi*r].
          const Box cbox = src.component(k).index_box();
          const Box fine_ok(cbox.lower() * ratio, cbox.upper() * ratio);
          return region.intersect(fine_ok);
        },
        pairs);
    const ViewPair* pv = pairs.data();
    device.launch_batched(
        stream, segs, kBilinearCost, [=](std::size_t s, int i, int j) {
          const util::View& f = pv[s].f;
          const util::View& c = pv[s].c;
          const int ic = mesh::floor_div(i, ri);
          const int jc = mesh::floor_div(j, rj);
          const int ir = i - ic * ri;
          const int jr = j - jc * rj;
          const double x = static_cast<double>(ir) / ri;
          const double y = static_cast<double>(jr) / rj;
          const int ip = (ir == 0) ? ic : ic + 1;
          const int jp = (jr == 0) ? jc : jc + 1;
          f(i, j) = (c(ic, jc) * (1.0 - x) + c(ip, jc) * x) * (1.0 - y) +
                    (c(ic, jp) * (1.0 - x) + c(ip, jp) * x) * y;
        });
  }
}

void CellConservativeLinearRefine::refine(pdat::PatchData& dst_pd,
                                          const pdat::PatchData& src_pd,
                                          const Box& fine_cells,
                                          const IntVector& ratio) const {
  const RefineTask t{&dst_pd, &src_pd, fine_cells};
  refine_batched({&t, 1}, ratio);
}

void CellConservativeLinearRefine::refine_batched(
    std::span<const RefineTask> tasks, const IntVector& ratio) const {
  if (tasks.empty()) {
    return;
  }
  vgpu::Device& device = as_cuda(*tasks[0].dst).device();
  vgpu::Stream stream(device, "refine");
  const int ri = ratio.i;
  const int rj = ratio.j;

  for (int k = 0; k < as_cuda(*tasks[0].dst).components(); ++k) {
    std::vector<ViewPair> pairs;
    const vgpu::SegmentTable segs = gather_component(
        tasks, k,
        [&](const CudaData& dst, const CudaData& src, const Box& fine_cells) {
          return writable_fine_region(dst, src, fine_cells, ratio,
                                      Centering::kCell, k, stencil_width());
        },
        pairs);
    const ViewPair* pv = pairs.data();
    device.launch_batched(
        stream, segs, kLimitedCost, [=](std::size_t s, int i, int j) {
          const util::View& f = pv[s].f;
          const util::View& c = pv[s].c;
          const int ic = mesh::floor_div(i, ri);
          const int jc = mesh::floor_div(j, rj);
          // Offset of the fine cell centre from the coarse cell centre,
          // in coarse-cell units; offsets over one coarse cell sum to
          // zero, which makes the reconstruction conservative.
          const double xoff = (i - ic * ri + 0.5) / ri - 0.5;
          const double yoff = (j - jc * rj + 0.5) / rj - 0.5;
          const double sx = mc_slope(c(ic - 1, jc), c(ic, jc), c(ic + 1, jc));
          const double sy = mc_slope(c(ic, jc - 1), c(ic, jc), c(ic, jc + 1));
          f(i, j) = c(ic, jc) + sx * xoff + sy * yoff;
        });
  }
}

void SideConservativeLinearRefine::refine(pdat::PatchData& dst_pd,
                                          const pdat::PatchData& src_pd,
                                          const Box& fine_cells,
                                          const IntVector& ratio) const {
  const RefineTask t{&dst_pd, &src_pd, fine_cells};
  refine_batched({&t, 1}, ratio);
}

void SideConservativeLinearRefine::refine_batched(
    std::span<const RefineTask> tasks, const IntVector& ratio) const {
  if (tasks.empty()) {
    return;
  }
  vgpu::Device& device = as_cuda(*tasks[0].dst).device();
  vgpu::Stream stream(device, "refine");
  RAMR_REQUIRE(as_cuda(*tasks[0].dst).components() == 2,
               "side refine requires side data");
  const int ri = ratio.i;
  const int rj = ratio.j;

  for (int k = 0; k < 2; ++k) {
    const Centering comp = (k == 0) ? Centering::kXSide : Centering::kYSide;
    std::vector<ViewPair> pairs;
    const vgpu::SegmentTable segs = gather_component(
        tasks, k,
        [&](const CudaData& dst, const CudaData& src, const Box& fine_cells) {
          const Box region = mesh::to_centering(fine_cells, comp)
                                 .intersect(dst.component(k).index_box());
          // Along the normal axis a fine face interpolates the two
          // bracketing coarse faces; clip so the +1 face read stays in
          // bounds.
          const Box cbox = src.component(k).index_box();
          Box fine_ok;
          if (k == 0) {
            fine_ok = Box(IntVector(cbox.lower().i * ri, cbox.lower().j * rj),
                          IntVector(cbox.upper().i * ri,
                                    (cbox.upper().j + 1) * rj - 1));
          } else {
            fine_ok = Box(IntVector(cbox.lower().i * ri, cbox.lower().j * rj),
                          IntVector((cbox.upper().i + 1) * ri - 1,
                                    cbox.upper().j * rj));
          }
          return region.intersect(fine_ok);
        },
        pairs);
    const ViewPair* pv = pairs.data();
    const bool x_normal = (k == 0);
    device.launch_batched(
        stream, segs, kBilinearCost, [=](std::size_t s, int i, int j) {
          const util::View& f = pv[s].f;
          const util::View& c = pv[s].c;
          const int ic = mesh::floor_div(i, ri);
          const int jc = mesh::floor_div(j, rj);
          if (x_normal) {
            const int ir = i - ic * ri;
            const double x = static_cast<double>(ir) / ri;
            const int ip = (ir == 0) ? ic : ic + 1;
            f(i, j) = c(ic, jc) * (1.0 - x) + c(ip, jc) * x;
          } else {
            const int jr = j - jc * rj;
            const double y = static_cast<double>(jr) / rj;
            const int jp = (jr == 0) ? jc : jc + 1;
            f(i, j) = c(ic, jc) * (1.0 - y) + c(ic, jp) * y;
          }
        });
  }
}

}  // namespace ramr::geom
