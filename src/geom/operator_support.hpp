// Shared helpers for the data-parallel refine/coarsen kernels.
#pragma once

#include <algorithm>
#include <cmath>

#include "mesh/box.hpp"
#include "pdat/cuda/cuda_data.hpp"
#include "util/error.hpp"

namespace ramr::geom {

/// Casts PatchData to the device-resident type the operators require.
inline const pdat::cuda::CudaData& as_cuda(const pdat::PatchData& pd) {
  const auto* p = dynamic_cast<const pdat::cuda::CudaData*>(&pd);
  RAMR_REQUIRE(p != nullptr,
               "inter-level operators require device-resident CudaData");
  return *p;
}

inline pdat::cuda::CudaData& as_cuda(pdat::PatchData& pd) {
  auto* p = dynamic_cast<pdat::cuda::CudaData*>(&pd);
  RAMR_REQUIRE(p != nullptr,
               "inter-level operators require device-resident CudaData");
  return *p;
}

/// The fine-index region of component centring `comp` that the operator
/// may write: the requested fine cell region mapped to the component
/// index space, clipped to both arrays.
inline mesh::Box writable_fine_region(const pdat::cuda::CudaData& dst,
                                      const pdat::cuda::CudaData& src,
                                      const mesh::Box& fine_cells,
                                      const mesh::IntVector& ratio,
                                      mesh::Centering comp, int k,
                                      const mesh::IntVector& stencil) {
  mesh::Box region =
      mesh::to_centering(fine_cells, comp).intersect(dst.component(k).index_box());
  // The coarse stencil must be available: clip to the coarse array grown
  // inward by the stencil width, mapped up to fine space.
  const mesh::Box src_usable =
      src.component(k).index_box().grow(-stencil);
  // A fine index f reads coarse indices around floor(f / ratio); keep f
  // only when floor(f / ratio) lies in src_usable.
  const mesh::Box fine_ok(src_usable.lower() * ratio,
                          (src_usable.upper() + mesh::IntVector(1, 1)) * ratio -
                              mesh::IntVector(1, 1));
  return region.intersect(fine_ok);
}

/// MC-limited slope (van Leer): monotonised central difference. This is
/// the slope SAMRAI's conservative linear refine uses; it guarantees no
/// new extrema while keeping second-order accuracy in smooth regions.
inline double mc_slope(double um, double u0, double up) {
  const double dc = 0.5 * (up - um);
  const double dl = u0 - um;
  const double dr = up - u0;
  if (dl * dr <= 0.0) {
    return 0.0;
  }
  const double lim = 2.0 * std::min(std::fabs(dl), std::fabs(dr));
  const double mag = std::min(std::fabs(dc), lim);
  return dc >= 0.0 ? mag : -mag;
}

}  // namespace ramr::geom
