// The paper's data-parallel coarsening operators (§IV-B2, §IV-C,
// Figs. 7-8): each launches one device thread per coarse value; the
// thread reads the r x r fine values covering it and reduces them.
//
//   * NodeInjectionCoarsen — coarse node takes the coincident fine node;
//   * VolumeWeightedCoarsen — c_i = sum_j f_j vol(j) / vol(i) (density);
//   * MassWeightedCoarsen   — c_i = sum_j f_j m_j / sum_j m_j (energy,
//     weighted by the fine density so internal energy stays conserved).
//
// The paper presents the volume-/mass-weighted forms as the first
// data-parallel implementations of these operators.
#pragma once

#include "xfer/coarsen_operator.hpp"

namespace ramr::geom {

/// Injection for node-centred data: coarse node (I,J) <- fine (I*r, J*r).
class NodeInjectionCoarsen : public xfer::CoarsenOperator {
 public:
  void coarsen(pdat::PatchData& dst, const pdat::PatchData& src,
               const pdat::PatchData* src_aux, const mesh::Box& coarse_cells,
               const mesh::IntVector& ratio) const override;
  void coarsen_batched(std::span<const xfer::CoarsenTask> tasks,
                       const mesh::IntVector& ratio) const override;
  const char* name() const override { return "node-injection-coarsen"; }
};

/// Volume-weighted conservative average for cell-centred data (Fig. 8).
class VolumeWeightedCoarsen : public xfer::CoarsenOperator {
 public:
  void coarsen(pdat::PatchData& dst, const pdat::PatchData& src,
               const pdat::PatchData* src_aux, const mesh::Box& coarse_cells,
               const mesh::IntVector& ratio) const override;
  void coarsen_batched(std::span<const xfer::CoarsenTask> tasks,
                       const mesh::IntVector& ratio) const override;
  const char* name() const override { return "volume-weighted-coarsen"; }
};

/// Mass-weighted conservative average for cell-centred data; the
/// auxiliary source is the fine density.
class MassWeightedCoarsen : public xfer::CoarsenOperator {
 public:
  void coarsen(pdat::PatchData& dst, const pdat::PatchData& src,
               const pdat::PatchData* src_aux, const mesh::Box& coarse_cells,
               const mesh::IntVector& ratio) const override;
  void coarsen_batched(std::span<const xfer::CoarsenTask> tasks,
                       const mesh::IntVector& ratio) const override;
  bool needs_aux() const override { return true; }
  const char* name() const override { return "mass-weighted-coarsen"; }
};

/// Plain arithmetic average for side-centred data along the face: coarse
/// face value is the mean of the r coincident fine faces (fluxes).
class SideSumCoarsen : public xfer::CoarsenOperator {
 public:
  void coarsen(pdat::PatchData& dst, const pdat::PatchData& src,
               const pdat::PatchData* src_aux, const mesh::Box& coarse_cells,
               const mesh::IntVector& ratio) const override;
  void coarsen_batched(std::span<const xfer::CoarsenTask> tasks,
                       const mesh::IntVector& ratio) const override;
  const char* name() const override { return "side-sum-coarsen"; }
};

}  // namespace ramr::geom
