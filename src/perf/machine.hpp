// Machine descriptions for the paper's two platforms (Table I) and
// helpers to build per-rank simulation configs for each.
#pragma once

#include <string>

#include "simmpi/network_spec.hpp"
#include "vgpu/device_spec.hpp"

namespace ramr::perf {

/// One platform from Table I.
struct Machine {
  std::string name;
  std::string processor;
  std::string clock;
  std::string accelerator;
  std::string pci_gen;
  int nodes = 0;
  std::string cpus_per_node;
  int gpus_per_node = 0;
  std::string cpu_ram;
  std::string gpu_ram;
  std::string interconnect;
  std::string compiler;
  std::string mpi;
  std::string cuda_version;

  vgpu::DeviceSpec gpu_spec;       ///< one GPU
  vgpu::DeviceSpec cpu_node_spec;  ///< all cores of one node
  vgpu::DeviceSpec cpu_rank_spec;  ///< share of a node backing one GPU rank
  simmpi::NetworkSpec network;
};

/// The IPA testbed at LLNL: 8 nodes, dual E5-2670 + 2x K20x, FDR IB.
inline Machine ipa() {
  Machine m;
  m.name = "IPA";
  m.processor = "Intel Xeon E5-2670";
  m.clock = "2.6 GHz";
  m.accelerator = "NVIDIA Tesla K20x";
  m.pci_gen = "2.0";
  m.nodes = 8;
  m.cpus_per_node = "2x 8 cores";
  m.gpus_per_node = 2;
  m.cpu_ram = "128 Gb";
  m.gpu_ram = "6 Gb";
  m.interconnect = "Mellanox FDR Infiniband";
  m.compiler = "Intel 13.1.163";
  m.mpi = "MVAPICH 1.9";
  m.cuda_version = "5.5";
  m.gpu_spec = vgpu::tesla_k20x();
  m.cpu_node_spec = vgpu::xeon_e5_2670_node();
  m.cpu_rank_spec = vgpu::xeon_e5_2670_socket();
  m.network = simmpi::fdr_infiniband();
  return m;
}

/// Titan at ORNL: 18,688 nodes, Opteron 6274 + K20x, Cray Gemini.
inline Machine titan() {
  Machine m;
  m.name = "Titan";
  m.processor = "AMD Opteron 6274";
  m.clock = "2.2 GHz";
  m.accelerator = "NVIDIA Tesla K20x";
  m.pci_gen = "2.0";
  m.nodes = 18688;
  m.cpus_per_node = "1x 16 cores";
  m.gpus_per_node = 1;
  m.cpu_ram = "32 Gb";
  m.gpu_ram = "6 Gb";
  m.interconnect = "Cray Gemini";
  m.compiler = "Intel 13.1.3.192";
  m.mpi = "Cray MPT";
  m.cuda_version = "5.5";
  m.gpu_spec = vgpu::tesla_k20x();
  m.cpu_node_spec = vgpu::opteron_6274_node();
  m.cpu_rank_spec = vgpu::opteron_6274_node();
  m.network = simmpi::cray_gemini();
  return m;
}

}  // namespace ramr::perf
