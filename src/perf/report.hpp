// Small fixed-width table formatting for the bench harness output.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace ramr::perf {

/// Prints a row of columns with the given widths (right-aligned numbers,
/// left-aligned first column).
class Table {
 public:
  explicit Table(std::vector<int> widths) : widths_(std::move(widths)) {}

  void header(const std::vector<std::string>& names) const {
    print_row(names, /*is_header=*/true);
    std::string rule;
    for (int w : widths_) {
      rule += std::string(static_cast<std::size_t>(w), '-') + "  ";
    }
    std::printf("%s\n", rule.c_str());
  }

  void row(const std::vector<std::string>& cells) const {
    print_row(cells, /*is_header=*/false);
  }

  static std::string seconds(double s) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", s);
    return buf;
  }

  static std::string sci(double s) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3e", s);
    return buf;
  }

  static std::string ratio(double r) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.2fx", r);
    return buf;
  }

  static std::string count(std::int64_t n) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
    return buf;
  }

  static std::string percent(double f) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.0f%%", 100.0 * f);
    return buf;
  }

 private:
  void print_row(const std::vector<std::string>& cells, bool is_header) const {
    std::string line;
    for (std::size_t c = 0; c < cells.size() && c < widths_.size(); ++c) {
      const int w = widths_[c];
      char buf[256];
      if (c == 0 || is_header) {
        std::snprintf(buf, sizeof(buf), "%-*s  ", w, cells[c].c_str());
      } else {
        std::snprintf(buf, sizeof(buf), "%*s  ", w, cells[c].c_str());
      }
      line += buf;
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<int> widths_;
};

}  // namespace ramr::perf
