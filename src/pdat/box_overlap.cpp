#include "pdat/box_overlap.hpp"

namespace ramr::pdat {

using mesh::Box;
using mesh::BoxList;
using mesh::Centering;

BoxOverlap overlap_for_copy(Centering centering, const Box& src_cells,
                            const Box& dst_cells,
                            const mesh::IntVector& dst_ghosts) {
  std::vector<BoxList> lists;
  const int ncomp = mesh::centering_components(centering);
  lists.reserve(static_cast<std::size_t>(ncomp));
  const Box dst_grown = dst_cells.grow(dst_ghosts);
  for (int k = 0; k < ncomp; ++k) {
    const Centering comp = mesh::component_centering(centering, k);
    const Box src_idx = mesh::to_centering(src_cells, comp);
    const Box dst_idx = mesh::to_centering(dst_grown, comp);
    lists.emplace_back(src_idx.intersect(dst_idx));
  }
  return BoxOverlap(centering, std::move(lists));
}

BoxOverlap overlap_for_region(Centering centering, const BoxList& fill_cells) {
  std::vector<BoxList> lists;
  const int ncomp = mesh::centering_components(centering);
  lists.reserve(static_cast<std::size_t>(ncomp));
  for (int k = 0; k < ncomp; ++k) {
    const Centering comp = mesh::component_centering(centering, k);
    BoxList list;
    for (const Box& b : fill_cells.boxes()) {
      list.push_back(mesh::to_centering(b, comp));
    }
    // Cell boxes that were disjoint can produce overlapping node/side
    // boxes along shared edges; make the decomposition disjoint again so
    // pack/unpack sizes stay exact.
    BoxList disjoint;
    for (const Box& b : list.boxes()) {
      BoxList piece(b);
      piece.remove_intersections(disjoint);
      for (const Box& p : piece.boxes()) {
        disjoint.push_back(p);
      }
    }
    lists.push_back(std::move(disjoint));
  }
  return BoxOverlap(centering, std::move(lists));
}

}  // namespace ramr::pdat
