// Host-side contiguous array over an index box (SAMRAI's ArrayData).
// The CPU analogue of pdat::cuda::CudaArrayData (paper Fig. 3).
#pragma once

#include <vector>

#include "mesh/box.hpp"
#include "mesh/box_list.hpp"
#include "pdat/message_stream.hpp"
#include "util/array_view.hpp"

namespace ramr::pdat {

/// Row-major array of doubles covering `index_box` with `depth` planes.
class ArrayData {
 public:
  ArrayData(const mesh::Box& index_box, int depth = 1);

  const mesh::Box& index_box() const { return box_; }
  int depth() const { return depth_; }
  std::int64_t elements_per_depth() const { return box_.size(); }
  std::int64_t total_elements() const { return box_.size() * depth_; }

  util::View view(int d = 0);
  util::ConstView view(int d = 0) const;

  double* plane(int d);
  const double* plane(int d) const;

  double& at(int i, int j, int d = 0) { return view(d)(i, j); }
  double at(int i, int j, int d = 0) const { return view(d)(i, j); }

  void fill(double value);
  void fill(double value, const mesh::Box& region);

  /// dst(p) = src(p - shift) over `region` (dst index space), all depths.
  void copy_from(const ArrayData& src, const mesh::Box& region,
                 const mesh::IntVector& shift = mesh::IntVector::zero());

  /// Appends the listed regions (row-major per box, depth-major outer).
  void pack(MessageStream& stream, const mesh::BoxList& regions) const;
  void unpack(MessageStream& stream, const mesh::BoxList& regions);

  static std::size_t stream_size(const mesh::BoxList& regions, int depth) {
    return static_cast<std::size_t>(regions.size()) *
           static_cast<std::size_t>(depth) * sizeof(double);
  }

 private:
  mesh::Box box_;
  int depth_;
  std::vector<double> data_;
};

}  // namespace ramr::pdat
