#include "pdat/database.hpp"

#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace ramr::pdat {

namespace {
constexpr std::uint64_t kMagic = 0x52414d5244423031ull;  // "RAMRDB01"
}  // namespace

void Database::put_bytes(const std::string& key, const void* data,
                         std::size_t bytes) {
  auto& entry = entries_[key];
  entry.resize(bytes);
  if (bytes > 0) {
    std::memcpy(entry.data(), data, bytes);
  }
}

const std::vector<std::byte>& Database::get_bytes(const std::string& key) const {
  const auto it = entries_.find(key);
  RAMR_REQUIRE(it != entries_.end(), "missing restart key: " << key);
  return it->second;
}

std::vector<double> Database::get_doubles(const std::string& key) const {
  const auto& bytes = get_bytes(key);
  RAMR_REQUIRE(bytes.size() % sizeof(double) == 0,
               "restart key " << key << " is not a double array");
  std::vector<double> out(bytes.size() / sizeof(double));
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

std::string Database::get_string(const std::string& key) const {
  const auto& bytes = get_bytes(key);
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

void Database::write_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  RAMR_REQUIRE(os.good(), "cannot open " << path << " for writing");
  const std::uint64_t magic = kMagic;
  const std::uint64_t count = entries_.size();
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [key, payload] : entries_) {
    const std::uint64_t klen = key.size();
    const std::uint64_t plen = payload.size();
    os.write(reinterpret_cast<const char*>(&klen), sizeof(klen));
    os.write(key.data(), static_cast<std::streamsize>(klen));
    os.write(reinterpret_cast<const char*>(&plen), sizeof(plen));
    os.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(plen));
  }
  RAMR_REQUIRE(os.good(), "write to " << path << " failed");
}

Database Database::read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  RAMR_REQUIRE(is.good(), "cannot open " << path << " for reading");
  std::uint64_t magic = 0;
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  RAMR_REQUIRE(magic == kMagic, path << " is not a ramr restart file");
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  Database db;
  for (std::uint64_t n = 0; n < count; ++n) {
    std::uint64_t klen = 0;
    is.read(reinterpret_cast<char*>(&klen), sizeof(klen));
    std::string key(klen, '\0');
    is.read(key.data(), static_cast<std::streamsize>(klen));
    std::uint64_t plen = 0;
    is.read(reinterpret_cast<char*>(&plen), sizeof(plen));
    std::vector<std::byte> payload(plen);
    is.read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(plen));
    RAMR_REQUIRE(is.good(), "truncated restart file " << path);
    db.entries_.emplace(std::move(key), std::move(payload));
  }
  return db;
}

std::vector<std::string> Database::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [key, payload] : entries_) {
    (void)payload;
    if (key.rfind(prefix, 0) == 0) {
      out.push_back(key);
    }
  }
  return out;
}

}  // namespace ramr::pdat
