#include "pdat/database.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/error.hpp"

namespace ramr::pdat {

namespace {

constexpr std::uint64_t kMagic = 0x52414d5244423032ull;  // "RAMRDB02"

/// FNV-1a 64: cheap, deterministic, catches truncation and bit rot.
std::uint64_t fnv1a(const std::byte* data, std::size_t bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t n = 0; n < bytes; ++n) {
    h ^= static_cast<std::uint64_t>(data[n]);
    h *= 1099511628211ull;
  }
  return h;
}

void append_raw(std::vector<std::byte>& out, const void* data,
                std::size_t bytes) {
  const auto* p = static_cast<const std::byte*>(data);
  out.insert(out.end(), p, p + bytes);
}

}  // namespace

void Database::put_bytes(const std::string& key, const void* data,
                         std::size_t bytes) {
  auto& entry = entries_[key];
  entry.resize(bytes);
  if (bytes > 0) {
    std::memcpy(entry.data(), data, bytes);
  }
}

const std::vector<std::byte>& Database::get_bytes(const std::string& key) const {
  const auto it = entries_.find(key);
  RAMR_REQUIRE(it != entries_.end(), "missing restart key: " << key);
  return it->second;
}

std::vector<double> Database::get_doubles(const std::string& key) const {
  const auto& bytes = get_bytes(key);
  RAMR_REQUIRE(bytes.size() % sizeof(double) == 0,
               "restart key " << key << " is not a double array");
  std::vector<double> out(bytes.size() / sizeof(double));
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

std::string Database::get_string(const std::string& key) const {
  const auto& bytes = get_bytes(key);
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

std::vector<std::byte> Database::serialize() const {
  std::vector<std::byte> body;
  const std::uint64_t count = entries_.size();
  append_raw(body, &count, sizeof(count));
  for (const auto& [key, payload] : entries_) {
    const std::uint64_t klen = key.size();
    const std::uint64_t plen = payload.size();
    append_raw(body, &klen, sizeof(klen));
    append_raw(body, key.data(), klen);
    append_raw(body, &plen, sizeof(plen));
    append_raw(body, payload.data(), plen);
  }
  return body;
}

void Database::write_file(const std::string& path) const {
  // Serialise to memory first: the checksum covers the complete body, and
  // the file appears under its real name only via the atomic rename — a
  // crash mid-write leaves at worst a stale .tmp, never a torn file.
  const std::vector<std::byte> body = serialize();
  const std::uint64_t magic = kMagic;
  const std::uint64_t checksum = fnv1a(body.data(), body.size());
  const std::uint64_t body_bytes = body.size();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    RAMR_REQUIRE(os.good(), "cannot open " << tmp << " for writing");
    os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    os.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    os.write(reinterpret_cast<const char*>(&body_bytes), sizeof(body_bytes));
    os.write(reinterpret_cast<const char*>(body.data()),
             static_cast<std::streamsize>(body.size()));
    os.flush();
    RAMR_REQUIRE(os.good(), "write to " << tmp << " failed");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  RAMR_REQUIRE(!ec, "cannot rename " << tmp << " to " << path << ": "
               << ec.message());
}

Database Database::read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  RAMR_REQUIRE(is.good(), "cannot open " << path << " for reading");
  std::uint64_t magic = 0;
  std::uint64_t checksum = 0;
  std::uint64_t body_bytes = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  RAMR_REQUIRE(is.good() && magic == kMagic,
               path << " is not a ramr restart file (bad or missing "
               "version header)");
  is.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  is.read(reinterpret_cast<char*>(&body_bytes), sizeof(body_bytes));
  RAMR_REQUIRE(is.good(), "truncated restart file " << path);
  std::vector<std::byte> body(body_bytes);
  is.read(reinterpret_cast<char*>(body.data()),
          static_cast<std::streamsize>(body.size()));
  RAMR_REQUIRE(is.good() &&
                   static_cast<std::uint64_t>(is.gcount()) == body_bytes,
               "truncated restart file " << path << " (expected "
               << body_bytes << " body bytes)");
  RAMR_REQUIRE(fnv1a(body.data(), body.size()) == checksum,
               "restart file " << path
               << " failed checksum verification (corrupt or truncated)");

  Database db;
  std::size_t at = 0;
  const auto take = [&](void* dst, std::size_t bytes) {
    RAMR_REQUIRE(at + bytes <= body.size(),
                 "corrupt restart file " << path << " (record overruns body)");
    std::memcpy(dst, body.data() + at, bytes);
    at += bytes;
  };
  std::uint64_t count = 0;
  take(&count, sizeof(count));
  for (std::uint64_t n = 0; n < count; ++n) {
    std::uint64_t klen = 0;
    take(&klen, sizeof(klen));
    std::string key(klen, '\0');
    take(key.data(), klen);
    std::uint64_t plen = 0;
    take(&plen, sizeof(plen));
    std::vector<std::byte> payload(plen);
    take(payload.data(), plen);
    db.entries_.emplace(std::move(key), std::move(payload));
  }
  return db;
}

std::vector<std::string> Database::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [key, payload] : entries_) {
    (void)payload;
    if (key.rfind(prefix, 0) == 0) {
      out.push_back(key);
    }
  }
  return out;
}

}  // namespace ramr::pdat
