#include "pdat/cuda/cuda_data.hpp"

#include "util/error.hpp"

namespace ramr::pdat::cuda {

using mesh::Box;
using mesh::Centering;
using mesh::IntVector;

CudaData::CudaData(vgpu::Device& device, const Box& cell_box,
                   const IntVector& ghosts, Centering centering, int depth)
    : PatchData(cell_box, ghosts, centering, depth), device_(&device) {
  const int ncomp = mesh::centering_components(centering);
  arrays_.reserve(static_cast<std::size_t>(ncomp));
  for (int k = 0; k < ncomp; ++k) {
    const Centering comp = mesh::component_centering(centering, k);
    arrays_.emplace_back(device, mesh::to_centering(ghost_box(), comp), depth);
  }
}

void CudaData::fill(double value) {
  for (CudaArrayData& a : arrays_) {
    a.fill(value);
  }
}

void CudaData::copy(const PatchData& src) {
  const auto& s = dynamic_cast<const CudaData&>(src);
  RAMR_REQUIRE(s.centering() == centering() && s.depth() == depth(),
               "incompatible CudaData copy");
  for (int k = 0; k < components(); ++k) {
    const Box region =
        component(k).index_box().intersect(s.component(k).index_box());
    component(k).copy_from(s.component(k), region);
  }
}

void CudaData::copy(const PatchData& src, const BoxOverlap& overlap) {
  const auto& s = dynamic_cast<const CudaData&>(src);
  RAMR_REQUIRE(overlap.components() == components(),
               "overlap component count mismatch");
  for (int k = 0; k < components(); ++k) {
    // One launch for all overlap boxes of the component: halo overlaps
    // are many small strips, and per-box launches would be bound by the
    // device's launch overhead.
    component(k).copy_from_multi(s.component(k),
                                 overlap.component(k).boxes(),
                                 overlap.src_shift());
  }
}

std::size_t CudaData::data_stream_size(const BoxOverlap& overlap) const {
  return static_cast<std::size_t>(overlap.element_count()) *
         static_cast<std::size_t>(depth()) * sizeof(double);
}

void CudaData::pack_stream(MessageStream& stream, const BoxOverlap& overlap) const {
  RAMR_REQUIRE(overlap.components() == components(),
               "overlap component count mismatch");
  for (int k = 0; k < components(); ++k) {
    mesh::BoxList src_regions;
    for (const Box& b : overlap.component(k).boxes()) {
      src_regions.push_back(b.shift(-overlap.src_shift()));
    }
    component(k).pack(stream, src_regions);
  }
}

void CudaData::unpack_stream(MessageStream& stream, const BoxOverlap& overlap) {
  RAMR_REQUIRE(overlap.components() == components(),
               "overlap component count mismatch");
  for (int k = 0; k < components(); ++k) {
    component(k).unpack(stream, overlap.component(k));
  }
}

void CudaData::put_to_restart(Database& db, const std::string& prefix) const {
  db.put_value<double>(prefix + ".time", time());
  for (int k = 0; k < components(); ++k) {
    for (int d = 0; d < depth(); ++d) {
      const std::vector<double> plane = component(k).download_plane(d);
      db.put_doubles(prefix + ".c" + std::to_string(k) + ".d" + std::to_string(d),
                     plane.data(), plane.size());
    }
  }
}

void CudaData::get_from_restart(const Database& db, const std::string& prefix) {
  set_time(db.get_value<double>(prefix + ".time"));
  for (int k = 0; k < components(); ++k) {
    for (int d = 0; d < depth(); ++d) {
      const auto values = db.get_doubles(prefix + ".c" + std::to_string(k) +
                                         ".d" + std::to_string(d));
      component(k).upload_plane(values, d);
    }
  }
}

}  // namespace ramr::pdat::cuda
