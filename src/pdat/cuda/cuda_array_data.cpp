#include "pdat/cuda/cuda_array_data.hpp"

#include "util/error.hpp"

namespace ramr::pdat::cuda {

using mesh::Box;
using mesh::BoxList;
using mesh::IntVector;

namespace {

/// Copy / pack / unpack move 8 bytes in and 8 bytes out per thread.
constexpr vgpu::KernelCost kCopyCost{0.0, 16.0};

}  // namespace

CudaArrayData::CudaArrayData(vgpu::Device& device, const Box& index_box,
                             int depth)
    : device_(&device),
      box_(index_box),
      depth_(depth),
      buffer_(device, index_box.size() * depth),
      stream_(device, "pdat") {
  RAMR_REQUIRE(!index_box.empty(), "CudaArrayData over empty box");
  RAMR_REQUIRE(depth >= 1, "CudaArrayData depth must be >= 1");
}

util::View CudaArrayData::device_view(int d) const {
  RAMR_REQUIRE(!spilled_, "data spilled to host: call make_resident() first");
  RAMR_DEBUG_ASSERT(d >= 0 && d < depth_);
  double* plane = buffer_.device_ptr() +
                  static_cast<std::int64_t>(d) * elements_per_depth();
  return util::View(plane, box_.lower().i, box_.lower().j, box_.width(),
                    box_.height());
}

util::View CudaArrayData::region_view(const mesh::Box& region, int d) const {
  RAMR_REQUIRE(box_.contains(region),
               "transfer region " << region << " outside device array "
               << box_);
  return device_view(d);
}

void CudaArrayData::fill(double value) { fill(value, box_); }

void CudaArrayData::fill(double value, const Box& region) {
  const Box r = box_.intersect(region);
  if (r.empty()) {
    return;
  }
  for (int d = 0; d < depth_; ++d) {
    util::View v = device_view(d);
    device_->launch2d(stream_, r.lower().i, r.lower().j, r.width(), r.height(),
                      vgpu::KernelCost{0.0, 8.0},
                      [=](int i, int j) { v(i, j) = value; });
  }
}

void CudaArrayData::copy_from(const CudaArrayData& src, const Box& region,
                              const IntVector& shift) {
  RAMR_REQUIRE(src.depth_ == depth_, "depth mismatch in CudaArrayData copy");
  RAMR_REQUIRE(src.device_ == device_,
               "device-to-device copy across devices requires pack/unpack");
  const Box dst_valid = box_.intersect(region);
  const Box valid = src.box_.shift(shift).intersect(dst_valid);
  if (valid.empty()) {
    return;
  }
  for (int d = 0; d < depth_; ++d) {
    util::View dst = device_view(d);
    util::View s = src.device_view(d);
    const int si = shift.i;
    const int sj = shift.j;
    device_->launch2d(stream_, valid.lower().i, valid.lower().j, valid.width(),
                      valid.height(), kCopyCost,
                      [=](int i, int j) { dst(i, j) = s(i - si, j - sj); });
  }
}

void CudaArrayData::copy_from_multi(const CudaArrayData& src,
                                    const std::vector<Box>& regions,
                                    const IntVector& shift) {
  RAMR_REQUIRE(src.depth_ == depth_, "depth mismatch in CudaArrayData copy");
  RAMR_REQUIRE(src.device_ == device_,
               "device-to-device copy across devices requires pack/unpack");
  // Clip each region and build a flat-index partition.
  auto clipped = std::make_shared<std::vector<Box>>();
  auto offsets = std::make_shared<std::vector<std::int64_t>>();
  std::int64_t total = 0;
  for (const Box& region : regions) {
    const Box valid = src.box_.shift(shift).intersect(box_.intersect(region));
    if (valid.empty()) {
      continue;
    }
    clipped->push_back(valid);
    offsets->push_back(total);
    total += valid.size();
  }
  if (total == 0) {
    return;
  }
  const int si = shift.i;
  const int sj = shift.j;
  for (int d = 0; d < depth_; ++d) {
    util::View dst = device_view(d);
    util::View s = src.device_view(d);
    device_->launch(stream_, total, kCopyCost, [=](std::int64_t t) {
      // Find the box containing flat index t (few boxes: linear scan).
      std::size_t b = clipped->size() - 1;
      while ((*offsets)[b] > t) {
        --b;
      }
      const Box& box = (*clipped)[b];
      const std::int64_t local = t - (*offsets)[b];
      const int i = box.lower().i + static_cast<int>(local % box.width());
      const int j = box.lower().j + static_cast<int>(local / box.width());
      dst(i, j) = s(i - si, j - sj);
    });
  }
}

void CudaArrayData::pack(MessageStream& stream, const BoxList& regions) const {
  const std::int64_t count = regions.size() * depth_;
  if (count == 0) {
    return;
  }
  // Stage 1: data-parallel gather into a contiguous device buffer, one
  // thread per packed element (paper Fig. 4).
  vgpu::DeviceBuffer<double> staging(*device_, count);
  std::int64_t offset = 0;
  for (int d = 0; d < depth_; ++d) {
    util::View v = device_view(d);
    for (const Box& b : regions.boxes()) {
      RAMR_REQUIRE(box_.contains(b),
                   "pack region " << b << " outside device array " << box_);
      double* out = staging.device_ptr() + offset;
      const int ilo = b.lower().i;
      const int jlo = b.lower().j;
      const int w = b.width();
      device_->launch(stream_, b.size(), kCopyCost, [=](std::int64_t t) {
        const int i = ilo + static_cast<int>(t % w);
        const int j = jlo + static_cast<int>(t / w);
        out[t] = v(i, j);
      });
      offset += b.size();
    }
  }
  // Stage 2: one PCIe copy of the contiguous buffer into the stream.
  std::byte* dst = stream.grow(static_cast<std::size_t>(count) * sizeof(double));
  device_->memcpy_d2h(dst, staging.device_ptr(),
                      static_cast<std::uint64_t>(count) * sizeof(double));
}

void CudaArrayData::unpack(MessageStream& stream, const BoxList& regions) {
  const std::int64_t count = regions.size() * depth_;
  if (count == 0) {
    return;
  }
  // Stage 1: one PCIe upload of the contiguous payload.
  vgpu::DeviceBuffer<double> staging(*device_, count);
  const std::byte* src =
      stream.view_and_skip(static_cast<std::size_t>(count) * sizeof(double));
  device_->memcpy_h2d(staging.device_ptr(), src,
                      static_cast<std::uint64_t>(count) * sizeof(double));
  // Stage 2: data-parallel scatter into the array.
  std::int64_t offset = 0;
  for (int d = 0; d < depth_; ++d) {
    util::View v = device_view(d);
    for (const Box& b : regions.boxes()) {
      RAMR_REQUIRE(box_.contains(b),
                   "unpack region " << b << " outside device array " << box_);
      const double* in = staging.device_ptr() + offset;
      const int ilo = b.lower().i;
      const int jlo = b.lower().j;
      const int w = b.width();
      device_->launch(stream_, b.size(), kCopyCost, [=](std::int64_t t) {
        const int i = ilo + static_cast<int>(t % w);
        const int j = jlo + static_cast<int>(t / w);
        v(i, j) = in[t];
      });
      offset += b.size();
    }
  }
}

void CudaArrayData::spill_to_host() {
  RAMR_REQUIRE(!spilled_, "array already spilled");
  host_backing_.resize(static_cast<std::size_t>(total_elements()));
  buffer_.download(host_backing_.data(), total_elements());
  buffer_ = vgpu::DeviceBuffer<double>();  // releases the device arena
  spilled_ = true;
}

void CudaArrayData::make_resident() {
  if (!spilled_) {
    return;
  }
  buffer_ = vgpu::DeviceBuffer<double>(*device_, total_elements());
  buffer_.upload(host_backing_.data(), total_elements());
  host_backing_.clear();
  host_backing_.shrink_to_fit();
  spilled_ = false;
}

std::vector<double> CudaArrayData::download_plane(int d) const {
  RAMR_REQUIRE(!spilled_, "data spilled to host: call make_resident() first");
  std::vector<double> host(static_cast<std::size_t>(elements_per_depth()));
  buffer_.download(host.data(), elements_per_depth(),
                   static_cast<std::int64_t>(d) * elements_per_depth());
  return host;
}

void CudaArrayData::upload_plane(const std::vector<double>& host, int d) {
  RAMR_REQUIRE(static_cast<std::int64_t>(host.size()) == elements_per_depth(),
               "upload_plane size mismatch");
  buffer_.upload(host.data(), elements_per_depth(),
                 static_cast<std::int64_t>(d) * elements_per_depth());
}

}  // namespace ramr::pdat::cuda
