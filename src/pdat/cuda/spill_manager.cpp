#include "pdat/cuda/spill_manager.hpp"

#include "util/error.hpp"

namespace ramr::pdat::cuda {

std::uint64_t PatchSpillManager::patch_bytes(hier::Patch& patch) {
  std::uint64_t bytes = 0;
  RAMR_REQUIRE(patch.allocated(), "cannot manage an unallocated patch");
  for (int id = 0; id < patch.data_count(); ++id) {
    auto& cd = patch.typed_data<CudaData>(id);
    for (int k = 0; k < cd.components(); ++k) {
      bytes += static_cast<std::uint64_t>(cd.component(k).total_elements()) *
               sizeof(double);
    }
  }
  return bytes;
}

void PatchSpillManager::register_patch(hier::Patch& patch) {
  const std::uint64_t key = key_of(patch);
  RAMR_REQUIRE(entries_.find(key) == entries_.end(),
               "patch registered twice with the spill manager");
  Entry e;
  e.patch = &patch;
  e.bytes = patch_bytes(patch);
  RAMR_REQUIRE(e.bytes <= budget_,
               "patch (" << e.bytes << " bytes) exceeds the spill budget "
               << budget_);
  e.resident = true;
  lru_.push_back(key);
  e.lru_pos = std::prev(lru_.end());
  resident_bytes_ += e.bytes;
  entries_.emplace(key, e);
  // Registration itself may overflow the budget: evict older patches.
  auto it = lru_.begin();
  while (resident_bytes_ > budget_ && it != lru_.end()) {
    const std::uint64_t victim_key = *it;
    ++it;
    if (victim_key == key) {
      continue;
    }
    spill_entry(entries_.at(victim_key));
  }
  RAMR_REQUIRE(resident_bytes_ <= budget_, "spill budget unsatisfiable");
}

void PatchSpillManager::forget_patch(const hier::Patch& patch) {
  const auto it = entries_.find(key_of(patch));
  if (it == entries_.end()) {
    return;
  }
  if (it->second.resident) {
    resident_bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru_pos);
  }
  entries_.erase(it);
}

void PatchSpillManager::spill_entry(Entry& e) {
  RAMR_REQUIRE(e.resident, "spilling a non-resident entry");
  for (int id = 0; id < e.patch->data_count(); ++id) {
    e.patch->typed_data<CudaData>(id).spill_to_host();
  }
  e.resident = false;
  resident_bytes_ -= e.bytes;
  lru_.erase(e.lru_pos);
  ++spill_events_;
}

void PatchSpillManager::ensure_resident(hier::Patch& patch) {
  const auto it = entries_.find(key_of(patch));
  RAMR_REQUIRE(it != entries_.end(), "patch not registered for spilling");
  Entry& e = it->second;
  if (e.resident) {
    // Refresh LRU position.
    lru_.erase(e.lru_pos);
    lru_.push_back(it->first);
    e.lru_pos = std::prev(lru_.end());
    return;
  }
  // Evict until it fits.
  while (resident_bytes_ + e.bytes > budget_) {
    RAMR_REQUIRE(!lru_.empty(), "spill budget too small for the working set");
    spill_entry(entries_.at(lru_.front()));
  }
  for (int id = 0; id < e.patch->data_count(); ++id) {
    e.patch->typed_data<CudaData>(id).make_resident();
  }
  e.resident = true;
  resident_bytes_ += e.bytes;
  lru_.push_back(it->first);
  e.lru_pos = std::prev(lru_.end());
  ++reload_events_;
}

void PatchSpillManager::spill_all() {
  while (!lru_.empty()) {
    spill_entry(entries_.at(lru_.front()));
  }
}

std::size_t PatchSpillManager::resident_count() const { return lru_.size(); }

}  // namespace ramr::pdat::cuda
