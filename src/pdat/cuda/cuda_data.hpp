// GPU-resident PatchData implementations: CudaCellData, CudaNodeData and
// CudaSideData (paper Fig. 3), plus their factory.
//
// Each data-centring owns CudaArrayData objects sized by passing "a
// slightly different Box" (the centring index-space map) to the common
// store, exactly as the paper describes. Because these classes implement
// the PatchData interface (Fig. 2), the unmodified mesh-management and
// communication machinery works on GPU-resident data: this is the
// resident-AMR contribution.
#pragma once

#include <vector>

#include "pdat/cuda/cuda_array_data.hpp"
#include "pdat/patch_data.hpp"

namespace ramr::pdat::cuda {

/// Common implementation for device-resident array PatchData.
class CudaData : public PatchData {
 public:
  CudaData(vgpu::Device& device, const mesh::Box& cell_box,
           const mesh::IntVector& ghosts, mesh::Centering centering, int depth);

  vgpu::Device& device() const { return *device_; }

  int components() const { return static_cast<int>(arrays_.size()); }
  CudaArrayData& component(int k) { return arrays_[static_cast<std::size_t>(k)]; }
  const CudaArrayData& component(int k) const {
    return arrays_[static_cast<std::size_t>(k)];
  }

  /// Device-space view of component k, plane d, for kernel arguments.
  util::View device_view(int k = 0, int d = 0) const {
    return component(k).device_view(d);
  }

  void fill(double value);

  /// Spill / restore all component arrays (paper §VI future work).
  void spill_to_host() {
    for (auto& a : arrays_) a.spill_to_host();
  }
  void make_resident() {
    for (auto& a : arrays_) a.make_resident();
  }
  bool resident() const {
    for (const auto& a : arrays_) {
      if (!a.resident()) return false;
    }
    return true;
  }

  void copy(const PatchData& src) override;
  void copy(const PatchData& src, const BoxOverlap& overlap) override;
  std::size_t data_stream_size(const BoxOverlap& overlap) const override;
  void pack_stream(MessageStream& stream, const BoxOverlap& overlap) const override;
  void unpack_stream(MessageStream& stream, const BoxOverlap& overlap) override;

  /// Compiled-transfer view export: device-resident data participates in
  /// the fused per-message plan kernels; spilled data falls back to the
  /// per-transaction legacy path (which REQUIREs residency anyway).
  bool supports_transfer_views() const override { return resident(); }
  vgpu::Device* transfer_device() const override { return device_; }
  util::View transfer_view(int k, int d, const mesh::Box& region) const override {
    return component(k).region_view(region, d);
  }

  /// Checkpointing crosses PCIe by design (a full-field download/upload,
  /// charged and logged like any other crossing).
  void put_to_restart(Database& db, const std::string& prefix) const override;
  void get_from_restart(const Database& db, const std::string& prefix) override;

 private:
  vgpu::Device* device_;
  std::vector<CudaArrayData> arrays_;
};

/// Cell-centred device data (density, energy, pressure, viscosity, ...).
class CudaCellData : public CudaData {
 public:
  CudaCellData(vgpu::Device& device, const mesh::Box& cell_box,
               const mesh::IntVector& ghosts, int depth = 1)
      : CudaData(device, cell_box, ghosts, mesh::Centering::kCell, depth) {}
};

/// Node-centred device data (velocities).
class CudaNodeData : public CudaData {
 public:
  CudaNodeData(vgpu::Device& device, const mesh::Box& cell_box,
               const mesh::IntVector& ghosts, int depth = 1)
      : CudaData(device, cell_box, ghosts, mesh::Centering::kNode, depth) {}
};

/// Side-centred device data (volume / mass fluxes), x- and y-face
/// components.
class CudaSideData : public CudaData {
 public:
  CudaSideData(vgpu::Device& device, const mesh::Box& cell_box,
               const mesh::IntVector& ghosts, int depth = 1)
      : CudaData(device, cell_box, ghosts, mesh::Centering::kSide, depth) {}
};

/// Factory producing device-resident data on a fixed device.
class CudaDataFactory : public PatchDataFactory {
 public:
  CudaDataFactory(vgpu::Device& device, mesh::Centering centering,
                  mesh::IntVector ghosts, int depth = 1)
      : device_(&device), centering_(centering), ghosts_(ghosts), depth_(depth) {}

  std::unique_ptr<PatchData> allocate(const mesh::Box& cell_box) const override {
    return std::make_unique<CudaData>(*device_, cell_box, ghosts_, centering_,
                                      depth_);
  }
  std::unique_ptr<PatchData> allocate_with_ghosts(
      const mesh::Box& cell_box, const mesh::IntVector& ghosts) const override {
    return std::make_unique<CudaData>(*device_, cell_box, ghosts, centering_,
                                      depth_);
  }
  std::unique_ptr<PatchData> allocate_on(const mesh::Box& cell_box,
                                         vgpu::Device* device) const override {
    return std::make_unique<CudaData>(device != nullptr ? *device : *device_,
                                      cell_box, ghosts_, centering_, depth_);
  }
  std::unique_ptr<PatchData> allocate_with_ghosts_on(
      const mesh::Box& cell_box, const mesh::IntVector& ghosts,
      vgpu::Device* device) const override {
    return std::make_unique<CudaData>(device != nullptr ? *device : *device_,
                                      cell_box, ghosts, centering_, depth_);
  }
  mesh::Centering centering() const override { return centering_; }
  mesh::IntVector ghosts() const override { return ghosts_; }
  int depth() const override { return depth_; }

 private:
  vgpu::Device* device_;
  mesh::Centering centering_;
  mesh::IntVector ghosts_;
  int depth_;
};

}  // namespace ramr::pdat::cuda
