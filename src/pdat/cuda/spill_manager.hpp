// Patch spilling (paper §VI future work): "allowing patches to be
// 'spilled' into CPU memory and then be transferred back to the device
// when necessary. Using both CPU and GPU resources will allow larger
// problems to be solved."
//
// The manager keeps the working set of patches resident on the device
// under a byte budget, evicting least-recently-used patches to host
// memory. Before operating on a patch the integrator calls
// ensure_resident(); eviction and reload each cost one PCIe crossing per
// array, charged and logged like every other crossing.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "hier/patch.hpp"
#include "pdat/cuda/cuda_data.hpp"

namespace ramr::pdat::cuda {

/// LRU residency manager for GPU patch data.
class PatchSpillManager {
 public:
  /// `budget_bytes` caps the device bytes the managed patches may hold
  /// (the rest of the card — scratch, staging — is not managed here).
  PatchSpillManager(vgpu::Device& device, std::uint64_t budget_bytes)
      : device_(&device), budget_(budget_bytes) {}

  /// Registers a patch (all its CudaData) under the budget; the patch is
  /// currently resident. Keyed by (level, global id).
  void register_patch(hier::Patch& patch);

  /// Drops a patch from management (e.g. its level was regridded away).
  void forget_patch(const hier::Patch& patch);

  /// Makes `patch` resident, evicting LRU patches if the budget would be
  /// exceeded, and marks it most recently used. Throws util::Error when
  /// the patch alone exceeds the budget.
  void ensure_resident(hier::Patch& patch);

  /// Spills every managed patch (e.g. before a big temporary allocation).
  void spill_all();

  std::uint64_t resident_bytes() const { return resident_bytes_; }
  std::uint64_t budget_bytes() const { return budget_; }
  std::size_t managed_count() const { return entries_.size(); }
  std::size_t resident_count() const;

  /// Eviction / reload traffic so far (diagnostics for the ablation).
  std::uint64_t spill_events() const { return spill_events_; }
  std::uint64_t reload_events() const { return reload_events_; }

 private:
  struct Entry {
    hier::Patch* patch = nullptr;
    std::uint64_t bytes = 0;
    bool resident = true;
    std::list<std::uint64_t>::iterator lru_pos;  // valid when resident
  };

  static std::uint64_t key_of(const hier::Patch& patch) {
    return (static_cast<std::uint64_t>(patch.level_number()) << 32) |
           static_cast<std::uint32_t>(patch.global_id());
  }

  static std::uint64_t patch_bytes(hier::Patch& patch);
  void spill_entry(Entry& e);

  vgpu::Device* device_;
  std::uint64_t budget_;
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t spill_events_ = 0;
  std::uint64_t reload_events_ = 0;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  // front = least recently used
};

}  // namespace ramr::pdat::cuda
