// GPU-resident contiguous array over an index box — the common data
// store of the paper's CudaPatchData library (Fig. 3).
//
// CudaArrayData allocates one contiguous array in (virtual) device memory
// for a given box, and provides the data-parallel routines the paper
// describes: copy between device arrays, pack a region of the array into
// a contiguous device buffer, and unpack a buffer into a region — each
// executed with one device thread per element (Fig. 4). The packed
// buffer is then copied across the (modeled) PCIe bus into the host
// MessageStream, which SAMRAI hands to MPI.
#pragma once

#include "mesh/box.hpp"
#include "mesh/box_list.hpp"
#include "pdat/message_stream.hpp"
#include "util/array_view.hpp"
#include "vgpu/device_buffer.hpp"

namespace ramr::pdat::cuda {

/// Device-resident row-major array of doubles covering `index_box`.
class CudaArrayData {
 public:
  CudaArrayData(vgpu::Device& device, const mesh::Box& index_box, int depth = 1);

  const mesh::Box& index_box() const { return box_; }
  int depth() const { return depth_; }
  std::int64_t elements_per_depth() const { return box_.size(); }
  std::int64_t total_elements() const { return box_.size() * depth_; }
  vgpu::Device& device() const { return *device_; }

  /// Device-space view for kernels (host code must not dereference).
  util::View device_view(int d = 0) const;

  /// Checked view export for the compiled transfer plans: REQUIREs
  /// `region` to lie inside the array box and returns the plane view
  /// (fused pack/unpack/copy kernels index it directly, replacing the
  /// per-box pack/unpack launches below).
  util::View region_view(const mesh::Box& region, int d = 0) const;

  /// Fills `region` (clipped to the array box) with a constant, one
  /// thread per element.
  void fill(double value);
  void fill(double value, const mesh::Box& region);

  /// dst(p) = src(p - shift) over `region` in dst index space; a
  /// device-to-device data-parallel copy (both arrays must live on the
  /// same device, as patches within one rank do).
  void copy_from(const CudaArrayData& src, const mesh::Box& region,
                 const mesh::IntVector& shift = mesh::IntVector::zero());

  /// Batched form: copies every region in one kernel launch (overlaps in
  /// halo exchange often have several small boxes; one launch per box
  /// would be launch-overhead-bound on the device).
  void copy_from_multi(const CudaArrayData& src,
                       const std::vector<mesh::Box>& regions,
                       const mesh::IntVector& shift = mesh::IntVector::zero());

  /// Data-parallel pack: gathers the listed regions into a contiguous
  /// device buffer (one thread per element), then copies that buffer over
  /// PCIe into the stream (paper Fig. 4).
  void pack(MessageStream& stream, const mesh::BoxList& regions) const;

  /// Reverse of pack: PCIe upload into a contiguous device buffer, then a
  /// data-parallel scatter kernel.
  void unpack(MessageStream& stream, const mesh::BoxList& regions);

  /// Downloads one depth plane to host memory (examples/diagnostics only;
  /// charges PCIe like any other crossing).
  std::vector<double> download_plane(int d = 0) const;

  /// Uploads a full host plane (initialisation).
  void upload_plane(const std::vector<double>& host, int d = 0);

  // -- Spilling (paper §VI future work: patches "spilled" into CPU
  //    memory and transferred back to the device when necessary) -------

  /// True while the array occupies device memory.
  bool resident() const { return !spilled_; }

  /// Downloads the array to a host backing store and frees the device
  /// allocation (one PCIe crossing; the modeled capacity is released).
  void spill_to_host();

  /// Re-allocates device memory and uploads the backing store (throws
  /// like any allocation when the device is full).
  void make_resident();

 private:
  vgpu::Device* device_;
  mesh::Box box_;
  int depth_;
  vgpu::DeviceBuffer<double> buffer_;
  mutable vgpu::Stream stream_;
  bool spilled_ = false;
  std::vector<double> host_backing_;
};

}  // namespace ramr::pdat::cuda
