// Restart database (SAMRAI's Database in the PatchData interface,
// Fig. 2: getFromRestart / putToRestart). A flat key -> byte-array store
// with typed helpers and a simple binary file format, sufficient for
// checkpoint/restart of a whole hierarchy.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace ramr::pdat {

/// Flat key/value store with binary (de)serialisation.
class Database {
 public:
  bool has(const std::string& key) const {
    return entries_.find(key) != entries_.end();
  }
  std::size_t size() const { return entries_.size(); }

  void put_bytes(const std::string& key, const void* data, std::size_t bytes);
  const std::vector<std::byte>& get_bytes(const std::string& key) const;

  template <typename T>
  void put_value(const std::string& key, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_bytes(key, &value, sizeof(T));
  }

  template <typename T>
  T get_value(const std::string& key) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto& bytes = get_bytes(key);
    T value{};
    RAMR_REQUIRE(bytes.size() == sizeof(T),
                 "restart key " << key << " has wrong size");
    std::memcpy(&value, bytes.data(), sizeof(T));
    return value;
  }

  void put_doubles(const std::string& key, const double* data, std::size_t n) {
    put_bytes(key, data, n * sizeof(double));
  }
  std::vector<double> get_doubles(const std::string& key) const;

  void put_string(const std::string& key, const std::string& s) {
    put_bytes(key, s.data(), s.size());
  }
  std::string get_string(const std::string& key) const;

  /// Crash-consistent binary round trip. The v2 format is a header
  /// (version magic, FNV-1a checksum and byte count of the body) followed
  /// by (key, payload) records; write_file serialises to memory, writes
  /// `<path>.tmp` and atomically renames, so a crash mid-write can never
  /// leave a torn file under the real name. read_file verifies the magic
  /// and the checksum and fails with an error naming the file.
  void write_file(const std::string& path) const;
  static Database read_file(const std::string& path);

  /// The serialised body (header excluded) — the unit the checksum
  /// covers. Exposed so checkpoint tooling can size files.
  std::vector<std::byte> serialize() const;

  /// Keys beginning with `prefix` (checkpoint introspection/tests).
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

 private:
  std::map<std::string, std::vector<std::byte>> entries_;
};

}  // namespace ramr::pdat
