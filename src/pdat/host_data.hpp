// Host-memory PatchData implementations: CellData, NodeData, SideData.
//
// These are the CPU-resident counterparts of the paper's CudaCellData /
// CudaNodeData / CudaSideData (Fig. 3) and are what the CPU-based
// CleverLeaf integrator uses. One ArrayData per component: cell and node
// data have one component; side data has x-face and y-face components.
#pragma once

#include <vector>

#include "pdat/array_data.hpp"
#include "pdat/patch_data.hpp"

namespace ramr::pdat {

/// Common implementation for host-resident array PatchData.
class HostData : public PatchData {
 public:
  HostData(const mesh::Box& cell_box, const mesh::IntVector& ghosts,
           mesh::Centering centering, int depth);

  int components() const { return static_cast<int>(arrays_.size()); }
  ArrayData& component(int k) { return arrays_[static_cast<std::size_t>(k)]; }
  const ArrayData& component(int k) const {
    return arrays_[static_cast<std::size_t>(k)];
  }

  /// View of component k, depth plane d (indexed in global index space).
  util::View view(int k = 0, int d = 0) { return component(k).view(d); }
  util::ConstView view(int k = 0, int d = 0) const { return component(k).view(d); }

  void fill(double value);

  void copy(const PatchData& src) override;
  void copy(const PatchData& src, const BoxOverlap& overlap) override;
  std::size_t data_stream_size(const BoxOverlap& overlap) const override;
  void pack_stream(MessageStream& stream, const BoxOverlap& overlap) const override;
  void unpack_stream(MessageStream& stream, const BoxOverlap& overlap) override;
  void put_to_restart(Database& db, const std::string& prefix) const override;
  void get_from_restart(const Database& db, const std::string& prefix) override;

 private:
  std::vector<ArrayData> arrays_;
};

/// Cell-centred host data (density, energy, pressure, ...).
class CellData : public HostData {
 public:
  CellData(const mesh::Box& cell_box, const mesh::IntVector& ghosts, int depth = 1)
      : HostData(cell_box, ghosts, mesh::Centering::kCell, depth) {}
};

/// Node-centred host data (velocities).
class NodeData : public HostData {
 public:
  NodeData(const mesh::Box& cell_box, const mesh::IntVector& ghosts, int depth = 1)
      : HostData(cell_box, ghosts, mesh::Centering::kNode, depth) {}
};

/// Side-centred host data with x-face (component 0) and y-face
/// (component 1) arrays (volume and mass fluxes).
class SideData : public HostData {
 public:
  SideData(const mesh::Box& cell_box, const mesh::IntVector& ghosts, int depth = 1)
      : HostData(cell_box, ghosts, mesh::Centering::kSide, depth) {}
};

/// Factory producing host data of a fixed centring/ghost width/depth.
class HostDataFactory : public PatchDataFactory {
 public:
  HostDataFactory(mesh::Centering centering, mesh::IntVector ghosts, int depth = 1)
      : centering_(centering), ghosts_(ghosts), depth_(depth) {}

  std::unique_ptr<PatchData> allocate(const mesh::Box& cell_box) const override;
  std::unique_ptr<PatchData> allocate_with_ghosts(
      const mesh::Box& cell_box, const mesh::IntVector& ghosts) const override;
  mesh::Centering centering() const override { return centering_; }
  mesh::IntVector ghosts() const override { return ghosts_; }
  int depth() const override { return depth_; }

 private:
  mesh::Centering centering_;
  mesh::IntVector ghosts_;
  int depth_;
};

}  // namespace ramr::pdat
