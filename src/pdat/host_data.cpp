#include "pdat/host_data.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ramr::pdat {

using mesh::Box;
using mesh::Centering;
using mesh::IntVector;

HostData::HostData(const Box& cell_box, const IntVector& ghosts,
                   Centering centering, int depth)
    : PatchData(cell_box, ghosts, centering, depth) {
  const int ncomp = mesh::centering_components(centering);
  arrays_.reserve(static_cast<std::size_t>(ncomp));
  for (int k = 0; k < ncomp; ++k) {
    const Centering comp = mesh::component_centering(centering, k);
    arrays_.emplace_back(mesh::to_centering(ghost_box(), comp), depth);
  }
}

void HostData::fill(double value) {
  for (ArrayData& a : arrays_) {
    a.fill(value);
  }
}

void HostData::copy(const PatchData& src) {
  const auto& s = dynamic_cast<const HostData&>(src);
  RAMR_REQUIRE(s.centering() == centering() && s.depth() == depth(),
               "incompatible PatchData copy");
  for (int k = 0; k < components(); ++k) {
    const Box region =
        component(k).index_box().intersect(s.component(k).index_box());
    component(k).copy_from(s.component(k), region);
  }
}

void HostData::copy(const PatchData& src, const BoxOverlap& overlap) {
  const auto& s = dynamic_cast<const HostData&>(src);
  RAMR_REQUIRE(overlap.components() == components(),
               "overlap component count mismatch");
  for (int k = 0; k < components(); ++k) {
    for (const Box& b : overlap.component(k).boxes()) {
      component(k).copy_from(s.component(k), b, overlap.src_shift());
    }
  }
}

std::size_t HostData::data_stream_size(const BoxOverlap& overlap) const {
  return static_cast<std::size_t>(overlap.element_count()) *
         static_cast<std::size_t>(depth()) * sizeof(double);
}

void HostData::pack_stream(MessageStream& stream, const BoxOverlap& overlap) const {
  RAMR_REQUIRE(overlap.components() == components(),
               "overlap component count mismatch");
  for (int k = 0; k < components(); ++k) {
    // Pack in source index space: shift destination boxes back.
    mesh::BoxList src_regions;
    for (const Box& b : overlap.component(k).boxes()) {
      src_regions.push_back(b.shift(-overlap.src_shift()));
    }
    component(k).pack(stream, src_regions);
  }
}

void HostData::unpack_stream(MessageStream& stream, const BoxOverlap& overlap) {
  RAMR_REQUIRE(overlap.components() == components(),
               "overlap component count mismatch");
  for (int k = 0; k < components(); ++k) {
    component(k).unpack(stream, overlap.component(k));
  }
}

void HostData::put_to_restart(Database& db, const std::string& prefix) const {
  db.put_value<double>(prefix + ".time", time());
  for (int k = 0; k < components(); ++k) {
    for (int d = 0; d < depth(); ++d) {
      db.put_doubles(prefix + ".c" + std::to_string(k) + ".d" + std::to_string(d),
                     component(k).plane(d),
                     static_cast<std::size_t>(component(k).elements_per_depth()));
    }
  }
}

void HostData::get_from_restart(const Database& db, const std::string& prefix) {
  set_time(db.get_value<double>(prefix + ".time"));
  for (int k = 0; k < components(); ++k) {
    for (int d = 0; d < depth(); ++d) {
      const auto values = db.get_doubles(prefix + ".c" + std::to_string(k) +
                                         ".d" + std::to_string(d));
      RAMR_REQUIRE(values.size() ==
                       static_cast<std::size_t>(component(k).elements_per_depth()),
                   "restart size mismatch for " << prefix);
      std::copy(values.begin(), values.end(), component(k).plane(d));
    }
  }
}

std::unique_ptr<PatchData> HostDataFactory::allocate(const Box& cell_box) const {
  return std::make_unique<HostData>(cell_box, ghosts_, centering_, depth_);
}

std::unique_ptr<PatchData> HostDataFactory::allocate_with_ghosts(
    const Box& cell_box, const IntVector& ghosts) const {
  return std::make_unique<HostData>(cell_box, ghosts, centering_, depth_);
}

}  // namespace ramr::pdat
