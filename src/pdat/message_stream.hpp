// Byte stream used to marshal patch data for MPI transfer, mirroring
// SAMRAI's MessageStream in the paper's PatchData interface (Fig. 2):
// packStream / unpackStream operate on this type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/error.hpp"

namespace ramr::pdat {

/// Growable little-endian byte stream with sequential read/write.
class MessageStream {
 public:
  MessageStream() = default;

  /// Wraps received bytes for unpacking.
  explicit MessageStream(std::vector<std::byte> data) : buffer_(std::move(data)) {}

  const std::byte* data() const { return buffer_.data(); }
  std::size_t size() const { return buffer_.size(); }
  std::size_t capacity() const { return buffer_.capacity(); }
  std::size_t read_position() const { return read_pos_; }
  bool fully_consumed() const { return read_pos_ == buffer_.size(); }

  /// Moves the buffer out and resets the stream to a fresh, empty state.
  std::vector<std::byte> release() {
    read_pos_ = 0;
    reserved_ = false;
    return std::move(buffer_);
  }

  /// Preallocates room for `bytes` more bytes. Pack paths that hold
  /// pointers returned by grow() across further growth MUST reserve the
  /// exact total first (from PatchData::data_stream_size): a reallocation
  /// would invalidate every previously returned pointer. After reserve(),
  /// growing past the reservation is a debug-checked contract violation.
  void reserve(std::size_t bytes) {
    buffer_.reserve(buffer_.size() + bytes);
    reserved_ = true;
  }

  /// Pre-extends the buffer and returns a pointer to the new region; used
  /// by device pack kernels that write directly into the stream after the
  /// PCIe copy.
  std::byte* grow(std::size_t bytes) {
    const std::size_t offset = buffer_.size();
    RAMR_DEBUG_ASSERT(!reserved_ || offset + bytes <= buffer_.capacity());
    buffer_.resize(offset + bytes);
    return buffer_.data() + offset;
  }

  void write_bytes(const void* src, std::size_t bytes) {
    std::memcpy(grow(bytes), src, bytes);
  }

  template <typename T>
  void write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_bytes(&value, sizeof(T));
  }

  void write_doubles(const double* src, std::size_t count) {
    write_bytes(src, count * sizeof(double));
  }

  void read_bytes(void* dst, std::size_t bytes) {
    RAMR_REQUIRE(read_pos_ + bytes <= buffer_.size(),
                 "MessageStream underflow: need " << bytes << " at "
                 << read_pos_ << " of " << buffer_.size());
    std::memcpy(dst, buffer_.data() + read_pos_, bytes);
    read_pos_ += bytes;
  }

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    read_bytes(&value, sizeof(T));
    return value;
  }

  void read_doubles(double* dst, std::size_t count) {
    read_bytes(dst, count * sizeof(double));
  }

  /// Returns a pointer to `bytes` bytes at the read position and advances
  /// past them (zero-copy read used by device unpack kernels).
  const std::byte* view_and_skip(std::size_t bytes) {
    RAMR_REQUIRE(read_pos_ + bytes <= buffer_.size(), "MessageStream underflow");
    const std::byte* p = buffer_.data() + read_pos_;
    read_pos_ += bytes;
    return p;
  }

 private:
  std::vector<std::byte> buffer_;
  std::size_t read_pos_ = 0;
  bool reserved_ = false;
};

}  // namespace ramr::pdat
