// The PatchData strategy interface (paper Fig. 2).
//
// Every simulation quantity on a patch is a PatchData object. The
// interface defines exactly the operations SAMRAI's data management and
// communication need: copy between objects, estimate stream sizes, and
// pack/unpack overlap regions to a MessageStream. Implementing this
// interface is what lets GPU-resident data (pdat::cuda) plug into the
// unmodified mesh-management machinery — the paper's key design point.
#pragma once

#include <memory>

#include <string>

#include "mesh/box.hpp"
#include "pdat/box_overlap.hpp"
#include "pdat/database.hpp"
#include "pdat/message_stream.hpp"
#include "util/array_view.hpp"

namespace ramr::vgpu {
class Device;
}  // namespace ramr::vgpu

namespace ramr::pdat {

/// Abstract base for all patch-resident data.
class PatchData {
 public:
  PatchData(const mesh::Box& cell_box, const mesh::IntVector& ghosts,
            mesh::Centering centering, int depth)
      : box_(cell_box),
        ghosts_(ghosts),
        ghost_box_(cell_box.grow(ghosts)),
        centering_(centering),
        depth_(depth) {}

  virtual ~PatchData() = default;

  PatchData(const PatchData&) = delete;
  PatchData& operator=(const PatchData&) = delete;

  /// Interior cell box of the owning patch.
  const mesh::Box& box() const { return box_; }

  /// Interior cell box grown by the ghost width.
  const mesh::Box& ghost_box() const { return ghost_box_; }

  const mesh::IntVector& ghost_cell_width() const { return ghosts_; }

  mesh::Centering centering() const { return centering_; }
  int depth() const { return depth_; }

  double time() const { return time_; }
  void set_time(double t) { time_ = t; }

  /// Copies from `src` on the intersection of the two ghost index boxes
  /// (component-wise for side data).
  virtual void copy(const PatchData& src) = 0;

  /// Copies the overlap regions from `src` (which must be of the same
  /// concrete kind and centring).
  virtual void copy(const PatchData& src, const BoxOverlap& overlap) = 0;

  /// True when the stream size depends only on the overlap boxes (always
  /// true for the fixed-depth double arrays used here).
  virtual bool can_estimate_stream_size_from_box() const { return true; }

  /// Bytes pack_stream will append for this overlap.
  virtual std::size_t data_stream_size(const BoxOverlap& overlap) const = 0;

  /// Per-box marshalling of one overlap. Retained as the
  /// legacy_transfer_path: the compiled transfer plans (see
  /// xfer::TransferSchedule) move data through exported views instead,
  /// and fall back to these when a kind cannot export views.
  virtual void pack_stream(MessageStream& stream, const BoxOverlap& overlap) const = 0;
  virtual void unpack_stream(MessageStream& stream, const BoxOverlap& overlap) = 0;

  // -- Compiled-transfer support (optional capability) -------------------

  /// True when component planes can be exported as device views for the
  /// fused transfer-plan kernels. Data that cannot (host-resident arrays,
  /// device arrays spilled to the host) is moved per transaction through
  /// pack_stream/unpack_stream/copy instead.
  virtual bool supports_transfer_views() const { return false; }

  /// Device owning the exported views (null when unsupported).
  virtual vgpu::Device* transfer_device() const { return nullptr; }

  /// View of component `k`, depth plane `d`, valid at least over `region`
  /// (a box in the component's index space). Only callable when
  /// supports_transfer_views() holds.
  virtual util::View transfer_view(int k, int d, const mesh::Box& region) const {
    (void)k;
    (void)d;
    (void)region;
    RAMR_FAIL("transfer views unsupported for this PatchData kind");
  }

  /// Checkpoint support (Fig. 2: putToRestart / getFromRestart): writes
  /// or reads all component arrays under `prefix` in the database.
  virtual void put_to_restart(class Database& db, const std::string& prefix) const = 0;
  virtual void get_from_restart(const class Database& db, const std::string& prefix) = 0;

 private:
  mesh::Box box_;
  mesh::IntVector ghosts_;
  mesh::Box ghost_box_;
  mesh::Centering centering_;
  int depth_;
  double time_ = 0.0;
};

/// Abstract factory: a variable registers one of these so levels can
/// allocate the matching concrete PatchData for each patch (host or
/// GPU-resident).
class PatchDataFactory {
 public:
  virtual ~PatchDataFactory() = default;
  virtual std::unique_ptr<PatchData> allocate(const mesh::Box& cell_box) const = 0;

  /// Allocates scratch storage with an explicit ghost width (used by the
  /// communication schedules for temporary gather regions).
  virtual std::unique_ptr<PatchData> allocate_with_ghosts(
      const mesh::Box& cell_box, const mesh::IntVector& ghosts) const = 0;

  /// Allocates on an explicit device (multi-device ranks: the patch's
  /// assigned device, see vgpu::Topology). Factories for host-resident
  /// kinds ignore the hint; null means the factory's default device.
  virtual std::unique_ptr<PatchData> allocate_on(const mesh::Box& cell_box,
                                                 vgpu::Device* device) const {
    (void)device;
    return allocate(cell_box);
  }
  virtual std::unique_ptr<PatchData> allocate_with_ghosts_on(
      const mesh::Box& cell_box, const mesh::IntVector& ghosts,
      vgpu::Device* device) const {
    (void)device;
    return allocate_with_ghosts(cell_box, ghosts);
  }

  virtual mesh::Centering centering() const = 0;
  virtual mesh::IntVector ghosts() const = 0;
  virtual int depth() const = 0;
};

}  // namespace ramr::pdat
