#include "pdat/array_data.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ramr::pdat {

using mesh::Box;
using mesh::BoxList;
using mesh::IntVector;

ArrayData::ArrayData(const Box& index_box, int depth)
    : box_(index_box), depth_(depth) {
  RAMR_REQUIRE(!index_box.empty(), "ArrayData over empty box");
  RAMR_REQUIRE(depth >= 1, "ArrayData depth must be >= 1, got " << depth);
  data_.assign(static_cast<std::size_t>(total_elements()), 0.0);
}

util::View ArrayData::view(int d) {
  RAMR_DEBUG_ASSERT(d >= 0 && d < depth_);
  return util::View(plane(d), box_.lower().i, box_.lower().j, box_.width(),
                    box_.height());
}

util::ConstView ArrayData::view(int d) const {
  RAMR_DEBUG_ASSERT(d >= 0 && d < depth_);
  return util::ConstView(plane(d), box_.lower().i, box_.lower().j,
                         box_.width(), box_.height());
}

double* ArrayData::plane(int d) {
  return data_.data() + static_cast<std::size_t>(d) *
                            static_cast<std::size_t>(elements_per_depth());
}

const double* ArrayData::plane(int d) const {
  return data_.data() + static_cast<std::size_t>(d) *
                            static_cast<std::size_t>(elements_per_depth());
}

void ArrayData::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void ArrayData::fill(double value, const Box& region) {
  const Box r = box_.intersect(region);
  if (r.empty()) {
    return;
  }
  for (int d = 0; d < depth_; ++d) {
    util::View v = view(d);
    for (int j = r.lower().j; j <= r.upper().j; ++j) {
      for (int i = r.lower().i; i <= r.upper().i; ++i) {
        v(i, j) = value;
      }
    }
  }
}

void ArrayData::copy_from(const ArrayData& src, const Box& region,
                          const IntVector& shift) {
  RAMR_REQUIRE(src.depth_ == depth_, "depth mismatch in ArrayData copy");
  const Box dst_valid = box_.intersect(region);
  const Box src_valid = src.box_.shift(shift).intersect(dst_valid);
  if (src_valid.empty()) {
    return;
  }
  for (int d = 0; d < depth_; ++d) {
    util::View dst = view(d);
    util::ConstView s = src.view(d);
    for (int j = src_valid.lower().j; j <= src_valid.upper().j; ++j) {
      for (int i = src_valid.lower().i; i <= src_valid.upper().i; ++i) {
        dst(i, j) = s(i - shift.i, j - shift.j);
      }
    }
  }
}

void ArrayData::pack(MessageStream& stream, const BoxList& regions) const {
  for (int d = 0; d < depth_; ++d) {
    util::ConstView v = view(d);
    for (const Box& b : regions.boxes()) {
      RAMR_REQUIRE(box_.contains(b),
                   "pack region " << b << " outside array box " << box_);
      for (int j = b.lower().j; j <= b.upper().j; ++j) {
        stream.write_doubles(&v(b.lower().i, j),
                             static_cast<std::size_t>(b.width()));
      }
    }
  }
}

void ArrayData::unpack(MessageStream& stream, const BoxList& regions) {
  for (int d = 0; d < depth_; ++d) {
    util::View v = view(d);
    for (const Box& b : regions.boxes()) {
      RAMR_REQUIRE(box_.contains(b),
                   "unpack region " << b << " outside array box " << box_);
      for (int j = b.lower().j; j <= b.upper().j; ++j) {
        stream.read_doubles(&v(b.lower().i, j),
                            static_cast<std::size_t>(b.width()));
      }
    }
  }
}

}  // namespace ramr::pdat
