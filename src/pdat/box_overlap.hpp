// Overlap descriptions for patch-to-patch data transfer.
//
// A BoxOverlap records, per data component, the destination-index-space
// boxes that must be filled, plus the shift applied to map a destination
// index back to the source index space (zero except for future periodic
// support). SAMRAI passes these to every copy/pack/unpack in the
// PatchData interface (Fig. 2); we do the same.
#pragma once

#include <vector>

#include "mesh/box.hpp"
#include "mesh/box_list.hpp"

namespace ramr::pdat {

/// Per-component fill boxes for one transfer.
class BoxOverlap {
 public:
  BoxOverlap(mesh::Centering centering, std::vector<mesh::BoxList> component_boxes,
             mesh::IntVector src_shift = mesh::IntVector::zero())
      : centering_(centering),
        component_boxes_(std::move(component_boxes)),
        src_shift_(src_shift) {}

  mesh::Centering centering() const { return centering_; }
  int components() const { return static_cast<int>(component_boxes_.size()); }
  const mesh::BoxList& component(int k) const {
    return component_boxes_[static_cast<std::size_t>(k)];
  }

  /// Maps a destination index to the source index space.
  mesh::IntVector src_shift() const { return src_shift_; }

  bool empty() const {
    for (const auto& list : component_boxes_) {
      if (!list.empty()) {
        return false;
      }
    }
    return true;
  }

  /// Total data elements described (all components).
  std::int64_t element_count() const {
    std::int64_t n = 0;
    for (const auto& list : component_boxes_) {
      n += list.size();
    }
    return n;
  }

 private:
  mesh::Centering centering_;
  std::vector<mesh::BoxList> component_boxes_;
  mesh::IntVector src_shift_;
};

/// Overlap for copying the *interior* of a source patch (cell box
/// `src_cells`) into the interior+ghost region of a destination patch
/// (cell box `dst_cells` grown by `dst_ghosts`), in the index spaces of
/// variable centring `centering`.
BoxOverlap overlap_for_copy(mesh::Centering centering, const mesh::Box& src_cells,
                            const mesh::Box& dst_cells,
                            const mesh::IntVector& dst_ghosts);

/// Overlap restricted to an explicit cell-space fill region (used when a
/// schedule has computed exactly which ghost pieces a source provides).
BoxOverlap overlap_for_region(mesh::Centering centering,
                              const mesh::BoxList& fill_cells);

}  // namespace ramr::pdat
