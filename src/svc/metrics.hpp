// Per-run metrics report: one JSON document summarising a simulation's
// progress, modeled time, transfer-layer traffic (per fill window,
// overlap savings included), refinement activity and conservation
// totals. The simulation server attaches one per job; the --config
// driver prints the same document after a standalone run, so a job's
// report reads identically whether it ran alone or under the service.
#pragma once

#include "app/simulation.hpp"
#include "cfg/json.hpp"

namespace ramr::svc {

/// The full metrics document for one simulation (see docs/scenarios.md
/// for the layout). Safe to call at any point after initialize().
cfg::Json run_metrics_json(app::Simulation& sim);

}  // namespace ramr::svc
