#include "svc/server.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "app/vtk_writer.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/logger.hpp"

namespace ramr::svc {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kStopped: return "stopped";
    case JobState::kQuarantined: return "quarantined";
  }
  return "unknown";
}

namespace {

/// cfg::Json prints non-finite numbers as bare "nan"/"inf" tokens, which
/// no JSON parser accepts — and a quarantined job's sim_time can be NaN.
/// Status output must stay machine-parseable no matter how sick a job is.
double safe_number(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

// ---------------------------------------------------------------- queue

int JobQueue::submit(JobSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int id = static_cast<int>(records_.size());
  records_.push_back(Record{std::move(spec), JobStatus{}});
  queued_.push_back(id);
  return id;
}

std::optional<int> JobQueue::claim() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queued_.empty()) {
    return std::nullopt;
  }
  const int id = queued_.front();
  queued_.pop_front();
  records_[static_cast<std::size_t>(id)].status.state = JobState::kRunning;
  return id;
}

int JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(records_.size());
}

int JobQueue::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(queued_.size());
}

JobSpec JobQueue::spec(int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  RAMR_REQUIRE(id >= 0 && id < static_cast<int>(records_.size()),
               "unknown job id " << id);
  return records_[static_cast<std::size_t>(id)].spec;
}

JobStatus JobQueue::status(int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  RAMR_REQUIRE(id >= 0 && id < static_cast<int>(records_.size()),
               "unknown job id " << id);
  return records_[static_cast<std::size_t>(id)].status;
}

void JobQueue::update(int id, const JobStatus& status) {
  std::lock_guard<std::mutex> lock(mutex_);
  RAMR_REQUIRE(id >= 0 && id < static_cast<int>(records_.size()),
               "unknown job id " << id);
  records_[static_cast<std::size_t>(id)].status = status;
}

// --------------------------------------------------------------- server

SimulationServer::SimulationServer(const ServerConfig& config)
    : config_(config),
      device_(std::make_unique<vgpu::Device>(config.device, &clock_)) {
  RAMR_REQUIRE(config_.max_concurrent_jobs >= 1,
               "max_concurrent_jobs must be >= 1, got "
                   << config_.max_concurrent_jobs);
}

int SimulationServer::submit(JobSpec spec) {
  RAMR_REQUIRE(spec.config.run.ranks == 1,
               "service job \"" << spec.name
                                << "\": multi-rank jobs are not supported "
                                   "(run.ranks must be 1)");
  RAMR_REQUIRE(!spec.config.sim.async_overlap,
               "service job \"" << spec.name
                                << "\": async_overlap requires a private "
                                   "timeline and cannot run on the shared "
                                   "device");
  const int id = queue_.submit(std::move(spec));
  RAMR_LOG_INFO("job " << id << " (" << queue_.spec(id).name << ") submitted");
  return id;
}

std::string SimulationServer::output_prefix(const ActiveJob& job) const {
  return config_.output_dir + "/" + job.spec.config.output.basename;
}

bool SimulationServer::start_job(ActiveJob& job, std::string* error) {
  while (true) {
    try {
      // The job rides the server's device and clock; its own device spec
      // is ignored (one shared modeled accelerator, arena included). The
      // fault plan stays owned by the ActiveJob so its schedule survives
      // this restart.
      job.sim = std::make_unique<app::Simulation>(job.spec.config.sim,
                                                  /*comm=*/nullptr,
                                                  device_.get(),
                                                  job.fault_plan.get());
    } catch (const util::Error& e) {
      *error = e.what();
      return false;
    }
    if (job.checkpoints.empty()) {
      try {
        job.sim->initialize();
        return true;
      } catch (const util::Error& e) {
        *error = e.what();
        job.sim.reset();
        return false;
      }
    }
    const std::string newest = job.checkpoints.back();
    try {
      job.sim->restore_checkpoint(newest);
      return true;
    } catch (const util::Error& e) {
      // Corrupt or unreadable: drop it and fall back to the previous
      // interval (then, eventually, to a scratch re-init).
      RAMR_LOG_DEBUG("job " << job.id << ": checkpoint " << newest
                     << " rejected (" << e.what() << "), falling back");
      job.checkpoints.pop_back();
      ++job.checkpoint_fallbacks;
      job.sim.reset();
    }
  }
}

bool SimulationServer::admit_one() {
  const std::optional<int> id = queue_.claim();
  if (!id.has_value()) {
    return false;
  }
  ActiveJob job;
  job.id = *id;
  job.spec = queue_.spec(*id);
  job.checkpoints = job.spec.resume_checkpoints;
  const auto& faults = job.spec.config.sim.faults;
  if (faults != nullptr && faults->enabled()) {
    job.fault_plan = std::make_unique<util::FaultPlan>(*faults);
  }
  std::string error;
  if (!start_job(job, &error)) {
    JobStatus st = queue_.status(*id);
    st.state = JobState::kFailed;
    st.error = error;
    st.checkpoint_fallbacks = job.checkpoint_fallbacks;
    queue_.update(*id, st);
    RAMR_LOG_INFO("job " << *id << " failed to start: " << error);
    return true;  // the claim was consumed; try the next one
  }
  if (config_.health_interval > 0) {
    // Conservation baseline for the drift check. Costs a summary
    // reduction per admission — only taken when health checks are on.
    job.baseline = job.sim->composite_summary();
    job.baseline_valid = std::isfinite(job.baseline.mass);
  }
  if (job.sim->step_count() > 0) {
    job.last_checkpoint_step = job.sim->step_count();
    RAMR_LOG_INFO("job " << *id << " resumed from step "
                  << job.sim->step_count());
  }
  RAMR_LOG_INFO("job " << *id << " (" << job.spec.name << ") admitted");
  active_.push_back(std::move(job));
  return true;
}

bool SimulationServer::handle_failure(ActiveJob& job,
                                      const std::string& error) {
  vgpu::AnnotationScope recovery_annotation(&clock_, "server:recovery");
  job.sim.reset();  // release the attempt's slice of the shared arena
  if (job.retry_count >= config_.max_retries) {
    retire(job, JobState::kFailed, error);
    return false;
  }
  ++job.retry_count;
  // Capped exponential backoff, booked as modeled recovery time: a real
  // service sleeps before retrying, and goodput must pay for it.
  const double backoff =
      std::min(config_.backoff_base_s * std::ldexp(1.0, job.retry_count - 1),
               config_.backoff_cap_s);
  clock_.charge_to("recovery", backoff);
  job.backoff_seconds += backoff;
  std::string restart_error;
  if (!start_job(job, &restart_error)) {
    retire(job, JobState::kFailed,
           error + " (restart also failed: " + restart_error + ")");
    return false;
  }
  ++job.recoveries;
  job.just_revived = true;
  RAMR_LOG_INFO("job " << job.id << " recovered from \"" << error
                << "\" at step " << job.sim->step_count() << " (retry "
                << job.retry_count << ")");
  return true;
}

std::string SimulationServer::health_violation(ActiveJob& job) {
  const double dt = job.sim->last_dt();
  if (!std::isfinite(dt) || dt <= 0.0) {
    std::ostringstream ss;
    ss << "diverged: non-finite or non-positive dt (" << dt << ") at step "
       << job.sim->step_count();
    return ss.str();
  }
  if (config_.dt_floor > 0.0 && dt < config_.dt_floor) {
    std::ostringstream ss;
    ss << "diverged: dt " << dt << " collapsed below floor "
       << config_.dt_floor << " at step " << job.sim->step_count();
    return ss.str();
  }
  if (config_.watchdog_step_seconds > 0.0 &&
      job.last_step_seconds > config_.watchdog_step_seconds) {
    std::ostringstream ss;
    ss << "watchdog: step " << job.sim->step_count() << " took "
       << job.last_step_seconds << " attributed kernel-seconds (deadline "
       << config_.watchdog_step_seconds << ")";
    return ss.str();
  }
  if (config_.health_interval > 0 && job.baseline_valid &&
      job.sim->step_count() % config_.health_interval == 0) {
    const hydro::FieldSummary now = job.sim->composite_summary();
    if (!std::isfinite(now.mass) || !std::isfinite(now.internal_energy) ||
        !std::isfinite(now.kinetic_energy)) {
      std::ostringstream ss;
      ss << "diverged: non-finite field summary at step "
         << job.sim->step_count();
      return ss.str();
    }
    const double drift = std::abs(now.mass - job.baseline.mass) /
                         std::max(std::abs(job.baseline.mass), 1.0e-300);
    if (drift > config_.drift_tolerance) {
      std::ostringstream ss;
      ss << "diverged: mass drifted " << drift * 100.0 << "% from baseline "
         << job.baseline.mass << " at step " << job.sim->step_count();
      return ss.str();
    }
  }
  return {};
}

void SimulationServer::step_all() {
  vgpu::AnnotationScope round_annotation(&clock_, "server:round");
  std::vector<std::pair<int, std::string>> failed;
  {
    // One interleaved round: every resident job advances one step with
    // charges deferred, so the same stage kernel of different jobs
    // flushes as one fused launch. Outputs and admissions stay outside
    // the scope — only level advances fuse.
    vgpu::LaunchFusionScope fuse(config_.fuse_across_jobs ? device_.get()
                                                          : nullptr);
    for (ActiveJob& job : active_) {
      const double serial_before = device_->fusion_stats().serial_seconds;
      const double kernel_before = device_->kernel_seconds();
      try {
        job.sim->step();
      } catch (const util::Error& e) {
        failed.emplace_back(job.id, e.what());
        continue;
      }
      // Attributed demand: what this job's kernels would cost unfused.
      // Inside a fusion scope that is the serial_seconds delta; unfused
      // the charges land directly in kernel_seconds.
      job.last_step_seconds =
          config_.fuse_across_jobs
              ? device_->fusion_stats().serial_seconds - serial_before
              : device_->kernel_seconds() - kernel_before;
      job.serial_kernel_seconds += job.last_step_seconds;
    }
  }
  // Recovery happens OUTSIDE the fusion scope: restoring a checkpoint
  // moves real data and a retired/revived job must not fuse with the
  // round that killed it.
  for (const auto& [id, error] : failed) {
    auto it = std::find_if(active_.begin(), active_.end(),
                           [id = id](const ActiveJob& j) { return j.id == id; });
    if (!handle_failure(*it, error)) {
      active_.erase(it);
    }
  }
}

void SimulationServer::write_outputs(ActiveJob& job, bool final_output) {
  const cfg::OutputPolicy& out = job.spec.config.output;
  if (out.basename.empty()) {
    return;
  }
  const int step = job.sim->step_count();
  const std::string prefix =
      output_prefix(job) + "_step" + std::to_string(step);
  const bool ckpt_due =
      out.checkpoint_interval > 0 &&
      (final_output || step % out.checkpoint_interval == 0);
  const bool vtk_due = out.vtk_interval > 0 &&
                       (final_output || step % out.vtk_interval == 0);
  if (ckpt_due) {
    job.sim->save_checkpoint(prefix + ".ckpt");
    job.files.push_back(prefix + ".ckpt");
    // Recorded as believed-good: restore verifies the checksum and falls
    // back down this list if the write was silently corrupted.
    job.checkpoints.push_back(prefix + ".ckpt");
    job.last_checkpoint_step = step;
  }
  if (vtk_due) {
    app::write_vtk(*job.sim, prefix,
                   {{"density", job.sim->fields().density0},
                    {"energy", job.sim->fields().energy0}});
    job.files.push_back(prefix + ".visit");
  }
}

void SimulationServer::retire(ActiveJob& job, JobState state,
                              const std::string& error) {
  JobStatus st = queue_.status(job.id);
  st.state = state;
  st.error = error;
  st.serial_kernel_seconds = job.serial_kernel_seconds;
  st.retry_count = job.retry_count;
  st.recoveries = job.recoveries;
  st.checkpoint_fallbacks = job.checkpoint_fallbacks;
  st.backoff_seconds = job.backoff_seconds;
  if (job.sim != nullptr) {
    st.steps = job.sim->step_count();
    st.sim_time = job.sim->time();
    if (state != JobState::kFailed && state != JobState::kQuarantined) {
      // A quarantined job's fields may be NaN: skip final outputs and the
      // metrics reductions, like a failed job.
      write_outputs(job, /*final_output=*/true);
      st.metrics = run_metrics_json(*job.sim);
    }
  }
  // After the final outputs: the closing checkpoint (and any fault
  // injected into its write) must show in the retired record.
  st.last_checkpoint_step = job.last_checkpoint_step;
  if (job.fault_plan != nullptr) {
    st.faults_injected =
        static_cast<std::int64_t>(job.fault_plan->injected_total());
  }
  st.files = job.files;
  st.checkpoints = job.checkpoints;
  queue_.update(job.id, st);
  if (state == JobState::kDone) {
    ++jobs_completed_;
  }
  RAMR_LOG_INFO("job " << job.id << " retired: " << job_state_name(state)
                << (error.empty() ? "" : " (" + error + ")"));
  job.sim.reset();  // release the job's slice of the shared arena
}

void SimulationServer::refresh_status(const ActiveJob& job) {
  JobStatus st = queue_.status(job.id);
  st.steps = job.sim->step_count();
  st.sim_time = job.sim->time();
  st.serial_kernel_seconds = job.serial_kernel_seconds;
  st.retry_count = job.retry_count;
  st.recoveries = job.recoveries;
  st.checkpoint_fallbacks = job.checkpoint_fallbacks;
  st.backoff_seconds = job.backoff_seconds;
  st.last_checkpoint_step = job.last_checkpoint_step;
  if (job.fault_plan != nullptr) {
    st.faults_injected =
        static_cast<std::int64_t>(job.fault_plan->injected_total());
  }
  st.checkpoints = job.checkpoints;
  queue_.update(job.id, st);
}

void SimulationServer::run() {
  while (true) {
    while (static_cast<int>(active_.size()) < config_.max_concurrent_jobs &&
           queue_.pending() > 0) {
      admit_one();
    }
    if (stop_requested_.exchange(false)) {
      // Clean shutdown: every resident job checkpoints (as configured)
      // and reports final metrics; queued jobs stay queued for a later
      // run() — or a later server, via the manifest.
      for (ActiveJob& job : active_) {
        retire(job, JobState::kStopped, "");
      }
      active_.clear();
      write_manifest();
      publish_metrics();
      return;
    }
    if (active_.empty()) {
      write_manifest();
      publish_metrics();
      return;  // queue drained
    }
    step_all();
    // Health checks, interval outputs and completions, outside the
    // fusion scope.
    std::vector<ActiveJob> still_active;
    still_active.reserve(active_.size());
    for (ActiveJob& job : active_) {
      if (job.sim == nullptr) {
        continue;  // already retired by step_all
      }
      if (job.just_revived) {
        // Freshly restored: last_dt and the fields reflect the
        // checkpoint, not a completed step. Health checks resume next
        // round.
        job.just_revived = false;
        refresh_status(job);
        still_active.push_back(std::move(job));
        continue;
      }
      const std::string violation = health_violation(job);
      if (!violation.empty()) {
        retire(job, JobState::kQuarantined, violation);
        continue;
      }
      const cfg::RunBudget& budget = job.spec.config.run;
      const bool done = job.sim->step_count() >= budget.max_steps ||
                        job.sim->time() >= budget.end_time;
      if (done) {
        retire(job, JobState::kDone, "");
      } else {
        write_outputs(job, /*final_output=*/false);
        // Keep the externally visible progress fresh for pollers.
        refresh_status(job);
        still_active.push_back(std::move(job));
      }
    }
    active_ = std::move(still_active);
    write_manifest();
    publish_metrics();
  }
}

cfg::Json SimulationServer::status_json() const {
  cfg::Json j = cfg::Json::make_object();
  j.set("device", cfg::Json(config_.device.name));
  j.set("max_concurrent_jobs", cfg::Json(config_.max_concurrent_jobs));
  j.set("fuse_across_jobs", cfg::Json(config_.fuse_across_jobs));
  j.set("clock_seconds", cfg::Json(clock_.total()));
  j.set("jobs_completed", cfg::Json(jobs_completed_));

  const vgpu::FusionStats& fs = device_->fusion_stats();
  cfg::Json fusion = cfg::Json::make_object();
  fusion.set("enqueued", cfg::Json(static_cast<std::int64_t>(fs.enqueued)));
  fusion.set("groups_flushed",
             cfg::Json(static_cast<std::int64_t>(fs.groups_flushed)));
  fusion.set("serial_seconds", cfg::Json(fs.serial_seconds));
  fusion.set("fused_seconds", cfg::Json(fs.fused_seconds));
  fusion.set("seconds_saved",
             cfg::Json(fs.serial_seconds - fs.fused_seconds));
  j.set("fusion", std::move(fusion));

  const vgpu::FaultStats& dfs = device_->fault_stats();
  cfg::Json faults = cfg::Json::make_object();
  faults.set("launch_faults",
             cfg::Json(static_cast<std::int64_t>(dfs.launch_faults)));
  faults.set("launch_retries",
             cfg::Json(static_cast<std::int64_t>(dfs.launch_retries)));
  faults.set("launch_aborts",
             cfg::Json(static_cast<std::int64_t>(dfs.launch_aborts)));
  faults.set("alloc_faults",
             cfg::Json(static_cast<std::int64_t>(dfs.alloc_faults)));
  j.set("faults", std::move(faults));

  cfg::Json jobs = cfg::Json::make_array();
  for (int id = 0; id < queue_.size(); ++id) {
    const JobStatus st = queue_.status(id);
    cfg::Json job = cfg::Json::make_object();
    job.set("id", cfg::Json(id));
    job.set("name", cfg::Json(queue_.spec(id).name));
    job.set("state", cfg::Json(job_state_name(st.state)));
    job.set("steps", cfg::Json(st.steps));
    job.set("sim_time", cfg::Json(safe_number(st.sim_time)));
    job.set("serial_kernel_seconds",
            cfg::Json(safe_number(st.serial_kernel_seconds)));
    job.set("retry_count", cfg::Json(st.retry_count));
    job.set("recoveries", cfg::Json(st.recoveries));
    job.set("checkpoint_fallbacks", cfg::Json(st.checkpoint_fallbacks));
    job.set("last_checkpoint_step", cfg::Json(st.last_checkpoint_step));
    job.set("backoff_seconds", cfg::Json(safe_number(st.backoff_seconds)));
    job.set("faults_injected", cfg::Json(st.faults_injected));
    if (!st.error.empty()) {
      job.set("error", cfg::Json(st.error));
    }
    cfg::Json files = cfg::Json::make_array();
    for (const std::string& f : st.files) {
      files.push_back(cfg::Json(f));
    }
    job.set("files", std::move(files));
    cfg::Json checkpoints = cfg::Json::make_array();
    for (const std::string& c : st.checkpoints) {
      checkpoints.push_back(cfg::Json(c));
    }
    job.set("checkpoints", std::move(checkpoints));
    if (!st.metrics.is_null()) {
      job.set("metrics", st.metrics);
    }
    jobs.push_back(std::move(job));
  }
  j.set("jobs", std::move(jobs));
  return j;
}

void SimulationServer::write_manifest() const {
  if (config_.manifest_path.empty()) {
    return;
  }
  cfg::Json j = cfg::Json::make_object();
  cfg::Json jobs = cfg::Json::make_array();
  for (int id = 0; id < queue_.size(); ++id) {
    const JobStatus st = queue_.status(id);
    const JobSpec spec = queue_.spec(id);
    cfg::Json job = cfg::Json::make_object();
    job.set("name", cfg::Json(spec.name));
    job.set("state", cfg::Json(job_state_name(st.state)));
    job.set("steps", cfg::Json(st.steps));
    job.set("config", cfg::to_json(spec.config));
    cfg::Json checkpoints = cfg::Json::make_array();
    for (const std::string& c : st.checkpoints) {
      checkpoints.push_back(cfg::Json(c));
    }
    job.set("checkpoints", std::move(checkpoints));
    jobs.push_back(std::move(job));
  }
  j.set("jobs", std::move(jobs));
  // Atomic like the checkpoints: tmp + rename, so a server killed
  // mid-write can never leave a torn manifest behind.
  const std::string tmp = config_.manifest_path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    RAMR_REQUIRE(os.good(), "cannot open " << tmp << " for writing");
    os << j.dump() << "\n";
    os.flush();
    RAMR_REQUIRE(os.good(), "write to " << tmp << " failed");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, config_.manifest_path, ec);
  RAMR_REQUIRE(!ec, "cannot rename " << tmp << " to "
               << config_.manifest_path << ": " << ec.message());
}

void SimulationServer::publish_metrics() {
  obs::MetricsRegistry& m = metrics_;
  m.set("ramr_server_jobs_total", static_cast<std::uint64_t>(queue_.size()));
  m.set("ramr_server_jobs_completed_total",
        static_cast<std::uint64_t>(jobs_completed_));
  m.set("ramr_server_jobs_active",
        static_cast<std::uint64_t>(active_.size()));
  m.set("ramr_server_jobs_pending",
        static_cast<std::uint64_t>(queue_.pending()));
  m.set("ramr_server_clock_seconds", clock_.total());
  m.set("ramr_server_recovery_seconds", clock_.component("recovery"));
  m.set("ramr_server_launches_total", device_->launch_count());
  for (int t = 0; t < vgpu::kLaunchTagCount; ++t) {
    m.set(std::string("ramr_server_launches_total{tag=\"") +
              obs::launch_tag_label(t) + "\"}",
          device_->launch_count(static_cast<vgpu::LaunchTag>(t)));
  }
  m.set("ramr_server_arena_peak_bytes", device_->peak_bytes_allocated());
  const vgpu::FusionStats& fs = device_->fusion_stats();
  m.set("ramr_server_fusion_enqueued_total", fs.enqueued);
  m.set("ramr_server_fusion_groups_total", fs.groups_flushed);
  m.set("ramr_server_fusion_serial_seconds", fs.serial_seconds);
  m.set("ramr_server_fusion_fused_seconds", fs.fused_seconds);
  m.set("ramr_server_fusion_seconds_saved",
        fs.serial_seconds - fs.fused_seconds);
  const vgpu::FaultStats& dfs = device_->fault_stats();
  m.set("ramr_server_faults_total{site=\"launch\"}", dfs.launch_faults);
  m.set("ramr_server_faults_total{site=\"alloc\"}", dfs.alloc_faults);
  m.set("ramr_server_launch_retries_total", dfs.launch_retries);
  m.set("ramr_server_launch_aborts_total", dfs.launch_aborts);
  if (config_.metrics_out.empty()) {
    return;
  }
  // Same atomicity discipline as the manifest: a scraper never reads a
  // torn dump.
  const std::string tmp = config_.metrics_out + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    RAMR_REQUIRE(os.good(), "cannot open " << tmp << " for writing");
    os << metrics_.prometheus_text();
    os.flush();
    RAMR_REQUIRE(os.good(), "write to " << tmp << " failed");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, config_.metrics_out, ec);
  RAMR_REQUIRE(!ec, "cannot rename " << tmp << " to "
               << config_.metrics_out << ": " << ec.message());
}

int SimulationServer::resume_from_manifest() {
  if (config_.manifest_path.empty()) {
    return 0;
  }
  std::ifstream in(config_.manifest_path);
  if (!in) {
    return 0;  // first boot: nothing to resume
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const cfg::Json j = cfg::Json::parse(ss.str());
  RAMR_REQUIRE(j.is_object() && j.find("jobs") != nullptr &&
                   j.find("jobs")->is_array(),
               "manifest " << config_.manifest_path
               << " is not a server manifest (no jobs array)");
  int resumed = 0;
  for (const cfg::Json& job : j.find("jobs")->as_array()) {
    RAMR_REQUIRE(job.is_object(), "manifest " << config_.manifest_path
                 << ": jobs entries must be objects");
    const cfg::Json* state = job.find("state");
    const cfg::Json* name = job.find("name");
    const cfg::Json* config = job.find("config");
    RAMR_REQUIRE(state != nullptr && state->is_string() && name != nullptr &&
                     name->is_string() && config != nullptr,
                 "manifest " << config_.manifest_path
                 << ": jobs entries need name/state/config");
    const std::string& s = state->as_string();
    // Finished jobs (done/failed/quarantined) stay finished; everything
    // still in flight returns with its checkpoint chain.
    if (s != "queued" && s != "running" && s != "stopped") {
      continue;
    }
    JobSpec spec;
    spec.name = name->as_string();
    spec.config = cfg::parse_run_config(*config);
    if (const cfg::Json* ckpts = job.find("checkpoints")) {
      RAMR_REQUIRE(ckpts->is_array(), "manifest " << config_.manifest_path
                   << ": checkpoints must be an array");
      for (const cfg::Json& c : ckpts->as_array()) {
        RAMR_REQUIRE(c.is_string(), "manifest " << config_.manifest_path
                     << ": checkpoints must be strings");
        spec.resume_checkpoints.push_back(c.as_string());
      }
    }
    submit(std::move(spec));
    ++resumed;
  }
  RAMR_LOG_INFO("resumed " << resumed << " jobs from "
                << config_.manifest_path);
  return resumed;
}

}  // namespace ramr::svc
