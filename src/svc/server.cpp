#include "svc/server.hpp"

#include <algorithm>

#include "app/vtk_writer.hpp"
#include "util/error.hpp"
#include "util/logger.hpp"

namespace ramr::svc {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kStopped: return "stopped";
  }
  return "unknown";
}

// ---------------------------------------------------------------- queue

int JobQueue::submit(JobSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int id = static_cast<int>(records_.size());
  records_.push_back(Record{std::move(spec), JobStatus{}});
  queued_.push_back(id);
  return id;
}

std::optional<int> JobQueue::claim() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queued_.empty()) {
    return std::nullopt;
  }
  const int id = queued_.front();
  queued_.pop_front();
  records_[static_cast<std::size_t>(id)].status.state = JobState::kRunning;
  return id;
}

int JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(records_.size());
}

int JobQueue::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(queued_.size());
}

JobSpec JobQueue::spec(int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  RAMR_REQUIRE(id >= 0 && id < static_cast<int>(records_.size()),
               "unknown job id " << id);
  return records_[static_cast<std::size_t>(id)].spec;
}

JobStatus JobQueue::status(int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  RAMR_REQUIRE(id >= 0 && id < static_cast<int>(records_.size()),
               "unknown job id " << id);
  return records_[static_cast<std::size_t>(id)].status;
}

void JobQueue::update(int id, const JobStatus& status) {
  std::lock_guard<std::mutex> lock(mutex_);
  RAMR_REQUIRE(id >= 0 && id < static_cast<int>(records_.size()),
               "unknown job id " << id);
  records_[static_cast<std::size_t>(id)].status = status;
}

// --------------------------------------------------------------- server

SimulationServer::SimulationServer(const ServerConfig& config)
    : config_(config),
      device_(std::make_unique<vgpu::Device>(config.device, &clock_)) {
  RAMR_REQUIRE(config_.max_concurrent_jobs >= 1,
               "max_concurrent_jobs must be >= 1, got "
                   << config_.max_concurrent_jobs);
}

int SimulationServer::submit(JobSpec spec) {
  RAMR_REQUIRE(spec.config.run.ranks == 1,
               "service job \"" << spec.name
                                << "\": multi-rank jobs are not supported "
                                   "(run.ranks must be 1)");
  RAMR_REQUIRE(!spec.config.sim.async_overlap,
               "service job \"" << spec.name
                                << "\": async_overlap requires a private "
                                   "timeline and cannot run on the shared "
                                   "device");
  return queue_.submit(std::move(spec));
}

std::string SimulationServer::output_prefix(const ActiveJob& job) const {
  return config_.output_dir + "/" + job.spec.config.output.basename;
}

bool SimulationServer::admit_one() {
  const std::optional<int> id = queue_.claim();
  if (!id.has_value()) {
    return false;
  }
  ActiveJob job;
  job.id = *id;
  job.spec = queue_.spec(*id);
  try {
    // The job rides the server's device and clock; its own device spec
    // is ignored (one shared modeled accelerator, arena included).
    job.sim = std::make_unique<app::Simulation>(job.spec.config.sim,
                                                /*comm=*/nullptr,
                                                device_.get());
    job.sim->initialize();
  } catch (const util::Error& e) {
    JobStatus st = queue_.status(*id);
    st.state = JobState::kFailed;
    st.error = e.what();
    queue_.update(*id, st);
    RAMR_LOG_DEBUG("job " << *id << " failed to start: " << e.what());
    return true;  // the claim was consumed; try the next one
  }
  RAMR_LOG_DEBUG("job " << *id << " (" << job.spec.name << ") admitted");
  active_.push_back(std::move(job));
  return true;
}

void SimulationServer::step_all() {
  std::vector<std::pair<int, std::string>> failed;
  {
    // One interleaved round: every resident job advances one step with
    // charges deferred, so the same stage kernel of different jobs
    // flushes as one fused launch. Outputs and admissions stay outside
    // the scope — only level advances fuse.
    vgpu::LaunchFusionScope fuse(config_.fuse_across_jobs ? device_.get()
                                                          : nullptr);
    for (ActiveJob& job : active_) {
      const double serial_before = device_->fusion_stats().serial_seconds;
      const double kernel_before = device_->kernel_seconds();
      try {
        job.sim->step();
      } catch (const util::Error& e) {
        failed.emplace_back(job.id, e.what());
        continue;
      }
      // Attributed demand: what this job's kernels would cost unfused.
      // Inside a fusion scope that is the serial_seconds delta; unfused
      // the charges land directly in kernel_seconds.
      job.serial_kernel_seconds +=
          config_.fuse_across_jobs
              ? device_->fusion_stats().serial_seconds - serial_before
              : device_->kernel_seconds() - kernel_before;
    }
  }
  for (const auto& [id, error] : failed) {
    auto it = std::find_if(active_.begin(), active_.end(),
                           [id = id](const ActiveJob& j) { return j.id == id; });
    retire(*it, JobState::kFailed, error);
    active_.erase(it);
  }
}

void SimulationServer::write_outputs(ActiveJob& job, bool final_output) {
  const cfg::OutputPolicy& out = job.spec.config.output;
  if (out.basename.empty()) {
    return;
  }
  const int step = job.sim->step_count();
  const std::string prefix =
      output_prefix(job) + "_step" + std::to_string(step);
  const bool ckpt_due =
      out.checkpoint_interval > 0 &&
      (final_output || step % out.checkpoint_interval == 0);
  const bool vtk_due = out.vtk_interval > 0 &&
                       (final_output || step % out.vtk_interval == 0);
  if (ckpt_due) {
    job.sim->save_checkpoint(prefix + ".ckpt");
    job.files.push_back(prefix + ".ckpt");
  }
  if (vtk_due) {
    app::write_vtk(*job.sim, prefix,
                   {{"density", job.sim->fields().density0},
                    {"energy", job.sim->fields().energy0}});
    job.files.push_back(prefix + ".visit");
  }
}

void SimulationServer::retire(ActiveJob& job, JobState state,
                              const std::string& error) {
  JobStatus st = queue_.status(job.id);
  st.state = state;
  st.error = error;
  st.serial_kernel_seconds = job.serial_kernel_seconds;
  if (job.sim != nullptr) {
    st.steps = job.sim->step_count();
    st.sim_time = job.sim->time();
    if (state != JobState::kFailed) {
      write_outputs(job, /*final_output=*/true);
      st.metrics = run_metrics_json(*job.sim);
    }
  }
  st.files = job.files;
  queue_.update(job.id, st);
  if (state == JobState::kDone) {
    ++jobs_completed_;
  }
  RAMR_LOG_DEBUG("job " << job.id << " retired: " << job_state_name(state));
  job.sim.reset();  // release the job's slice of the shared arena
}

void SimulationServer::run() {
  while (true) {
    while (static_cast<int>(active_.size()) < config_.max_concurrent_jobs &&
           queue_.pending() > 0) {
      admit_one();
    }
    if (stop_requested_.exchange(false)) {
      // Clean shutdown: every resident job checkpoints (as configured)
      // and reports final metrics; queued jobs stay queued for a later
      // run().
      for (ActiveJob& job : active_) {
        retire(job, JobState::kStopped, "");
      }
      active_.clear();
      return;
    }
    if (active_.empty()) {
      return;  // queue drained
    }
    step_all();
    // Interval outputs and completions, outside the fusion scope.
    std::vector<ActiveJob> still_active;
    still_active.reserve(active_.size());
    for (ActiveJob& job : active_) {
      if (job.sim == nullptr) {
        continue;  // already retired by step_all
      }
      const cfg::RunBudget& budget = job.spec.config.run;
      const bool done = job.sim->step_count() >= budget.max_steps ||
                        job.sim->time() >= budget.end_time;
      if (done) {
        retire(job, JobState::kDone, "");
      } else {
        write_outputs(job, /*final_output=*/false);
        // Keep the externally visible progress fresh for pollers.
        JobStatus st = queue_.status(job.id);
        st.steps = job.sim->step_count();
        st.sim_time = job.sim->time();
        st.serial_kernel_seconds = job.serial_kernel_seconds;
        queue_.update(job.id, st);
        still_active.push_back(std::move(job));
      }
    }
    active_ = std::move(still_active);
  }
}

cfg::Json SimulationServer::status_json() const {
  cfg::Json j = cfg::Json::make_object();
  j.set("device", cfg::Json(config_.device.name));
  j.set("max_concurrent_jobs", cfg::Json(config_.max_concurrent_jobs));
  j.set("fuse_across_jobs", cfg::Json(config_.fuse_across_jobs));
  j.set("clock_seconds", cfg::Json(clock_.total()));
  j.set("jobs_completed", cfg::Json(jobs_completed_));

  const vgpu::FusionStats& fs = device_->fusion_stats();
  cfg::Json fusion = cfg::Json::make_object();
  fusion.set("enqueued", cfg::Json(static_cast<std::int64_t>(fs.enqueued)));
  fusion.set("groups_flushed",
             cfg::Json(static_cast<std::int64_t>(fs.groups_flushed)));
  fusion.set("serial_seconds", cfg::Json(fs.serial_seconds));
  fusion.set("fused_seconds", cfg::Json(fs.fused_seconds));
  fusion.set("seconds_saved",
             cfg::Json(fs.serial_seconds - fs.fused_seconds));
  j.set("fusion", std::move(fusion));

  cfg::Json jobs = cfg::Json::make_array();
  for (int id = 0; id < queue_.size(); ++id) {
    const JobStatus st = queue_.status(id);
    cfg::Json job = cfg::Json::make_object();
    job.set("id", cfg::Json(id));
    job.set("name", cfg::Json(queue_.spec(id).name));
    job.set("state", cfg::Json(job_state_name(st.state)));
    job.set("steps", cfg::Json(st.steps));
    job.set("sim_time", cfg::Json(st.sim_time));
    job.set("serial_kernel_seconds", cfg::Json(st.serial_kernel_seconds));
    if (!st.error.empty()) {
      job.set("error", cfg::Json(st.error));
    }
    cfg::Json files = cfg::Json::make_array();
    for (const std::string& f : st.files) {
      files.push_back(cfg::Json(f));
    }
    job.set("files", std::move(files));
    if (!st.metrics.is_null()) {
      job.set("metrics", st.metrics);
    }
    jobs.push_back(std::move(job));
  }
  j.set("jobs", std::move(jobs));
  return j;
}

}  // namespace ramr::svc
