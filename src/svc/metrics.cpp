#include "svc/metrics.hpp"

#include "app/integrator.hpp"
#include "obs/metrics.hpp"
#include "vgpu/topology.hpp"

namespace ramr::svc {

using app::TransferCounters;

cfg::Json run_metrics_json(app::Simulation& sim) {
  cfg::Json j = cfg::Json::make_object();
  j.set("steps", cfg::Json(sim.step_count()));
  j.set("sim_time", cfg::Json(sim.time()));
  j.set("last_dt", cfg::Json(sim.last_dt()));
  j.set("modeled_seconds", cfg::Json(sim.modeled_seconds()));

  cfg::Json clock = cfg::Json::make_object();
  for (const auto& [name, seconds] : sim.clock().components()) {
    clock.set(name, cfg::Json(seconds));
  }
  j.set("clock_components", std::move(clock));

  cfg::Json hierarchy = cfg::Json::make_object();
  hierarchy.set("levels", cfg::Json(sim.hierarchy().num_levels()));
  hierarchy.set("cells",
                cfg::Json(static_cast<std::int64_t>(sim.hierarchy().total_cells())));
  j.set("hierarchy", std::move(hierarchy));

  // Transfer-layer traffic, with the per-window breakdown: which fill
  // windows ran split-phase and how much modeled wire time each window
  // actually hid (hidden_fraction = saved / issued comm; 0 on the
  // synchronous path, where nothing overlaps).
  const TransferCounters& tc = sim.integrator().transfer_counters();
  cfg::Json transfer = cfg::Json::make_object();
  transfer.set("halo_fills", cfg::Json(static_cast<std::int64_t>(tc.halo_fills)));
  transfer.set("split_fills",
               cfg::Json(static_cast<std::int64_t>(tc.split_fills)));
  transfer.set("messages_sent",
               cfg::Json(static_cast<std::int64_t>(tc.messages_sent)));
  transfer.set("messages_received",
               cfg::Json(static_cast<std::int64_t>(tc.messages_received)));
  transfer.set("bytes_sent", cfg::Json(static_cast<std::int64_t>(tc.bytes_sent)));
  // Compiled-plan demotions to the legacy per-transaction path: a silent
  // performance cliff when nonzero, so it is surfaced here (and asserted
  // zero by bench_residency for single-device runs).
  transfer.set("plan_fallbacks",
               cfg::Json(static_cast<std::int64_t>(tc.plan_fallbacks)));
  cfg::Json windows = cfg::Json::make_object();
  for (int w = 0; w < TransferCounters::kWindowCount; ++w) {
    const TransferCounters::WindowStats& ws = tc.window[w];
    cfg::Json win = cfg::Json::make_object();
    win.set("fills", cfg::Json(static_cast<std::int64_t>(ws.fills)));
    win.set("split_fills",
            cfg::Json(static_cast<std::int64_t>(ws.split_fills)));
    win.set("comm_seconds", cfg::Json(ws.comm_seconds));
    win.set("overlap_seconds_saved", cfg::Json(ws.overlap_seconds_saved));
    win.set("hidden_fraction",
            cfg::Json(ws.comm_seconds > 0.0
                          ? ws.overlap_seconds_saved / ws.comm_seconds
                          : 0.0));
    windows.set(TransferCounters::window_name(w), std::move(win));
  }
  transfer.set("windows", std::move(windows));
  j.set("transfer", std::move(transfer));

  if (vgpu::Timeline* tl = sim.timeline()) {
    cfg::Json overlap = cfg::Json::make_object();
    overlap.set("serial_seconds", cfg::Json(tl->serial_seconds()));
    overlap.set("makespan", cfg::Json(tl->makespan()));
    overlap.set("comparable_seconds", cfg::Json(tl->comparable_seconds()));
    overlap.set("overlap_seconds_saved", cfg::Json(tl->overlap_seconds_saved()));
    j.set("overlap", std::move(overlap));
  }

  const amr::GriddingStats& gs = sim.gridding_stats();
  cfg::Json gridding = cfg::Json::make_object();
  gridding.set("initial_builds", cfg::Json(gs.initial_builds));
  gridding.set("regrids", cfg::Json(gs.regrids));
  gridding.set("levels_built", cfg::Json(gs.levels_built));
  gridding.set("cells_tagged",
               cfg::Json(static_cast<std::int64_t>(gs.cells_tagged)));
  // Cross-rank load imbalance (max/mean local cells) of every level
  // build, in build order; "load_imbalance" is the most recent value —
  // the partition the run ended on.
  cfg::Json imbalance = cfg::Json::make_array();
  for (double v : gs.imbalance_history) {
    imbalance.push_back(cfg::Json(v));
  }
  gridding.set("imbalance_history", std::move(imbalance));
  gridding.set("load_imbalance",
               cfg::Json(gs.imbalance_history.empty()
                             ? 1.0
                             : gs.imbalance_history.back()));
  j.set("gridding", std::move(gridding));

  // Per-device attribution on multi-device ranks: what each device of
  // the topology computed (gpu lane busy under the timeline model),
  // launched, held and shipped over peer links / NIC-direct.
  if (vgpu::Topology* topo = sim.topology(); topo != nullptr &&
                                             topo->device_count() > 1) {
    vgpu::Timeline* tl = sim.timeline();
    cfg::Json devices = cfg::Json::make_array();
    for (int d = 0; d < topo->device_count(); ++d) {
      vgpu::Device& dev = topo->device(d);
      cfg::Json e = cfg::Json::make_object();
      e.set("ordinal", cfg::Json(d));
      e.set("busy_seconds",
            cfg::Json(tl != nullptr
                          ? tl->busy(tl->lane(vgpu::Topology::gpu_lane_name(d)))
                          : 0.0));
      e.set("kernel_seconds", cfg::Json(dev.kernel_seconds()));
      e.set("launches",
            cfg::Json(static_cast<std::int64_t>(dev.launch_count())));
      e.set("peak_bytes",
            cfg::Json(static_cast<std::int64_t>(dev.peak_bytes_allocated())));
      e.set("peer_bytes", cfg::Json(static_cast<std::int64_t>(
                              dev.transfers().peer_bytes)));
      e.set("gpu_direct_bytes", cfg::Json(static_cast<std::int64_t>(
                                    dev.transfers().gpu_direct_bytes)));
      // Directed peer-link lanes OUT of this device: peer copies are
      // lane charges like any other, so their busy/idle split belongs in
      // the per-device accounting (it was silently omitted before —
      // peer-heavy runs looked idle on every lane the report showed).
      if (tl != nullptr) {
        const double makespan = tl->makespan();
        cfg::Json links = cfg::Json::make_object();
        for (int o = 0; o < topo->device_count(); ++o) {
          if (o == d) {
            continue;
          }
          const std::string name = vgpu::Topology::peer_lane_name(d, o);
          const double busy = tl->busy(tl->lane(name));
          cfg::Json link = cfg::Json::make_object();
          link.set("busy_seconds", cfg::Json(busy));
          link.set("idle_seconds", cfg::Json(makespan - busy));
          links.set(name, std::move(link));
        }
        e.set("peer_links", std::move(links));
      }
      devices.push_back(std::move(e));
    }
    j.set("devices", std::move(devices));
  }

  // Latest per-step metric snapshot (observability.metrics runs only):
  // the same registry the JSONL stream samples, folded into the report.
  if (obs::MetricsRegistry* reg = sim.metrics_registry();
      reg != nullptr && !reg->empty()) {
    j.set("metrics", reg->latest());
  }

  const hydro::FieldSummary summary = sim.composite_summary();
  cfg::Json totals = cfg::Json::make_object();
  totals.set("mass", cfg::Json(summary.mass));
  totals.set("internal_energy", cfg::Json(summary.internal_energy));
  totals.set("kinetic_energy", cfg::Json(summary.kinetic_energy));
  j.set("summary", std::move(totals));

  return j;
}

}  // namespace ramr::svc
