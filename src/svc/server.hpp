// Multi-job simulation service: a queue of configured runs executed by
// one event loop over ONE shared virtual device.
//
// The throughput lever is cross-job launch fusion: the server interleaves
// the level advances of up to K resident jobs inside a launch-fusion
// scope, so the same stage kernel of different jobs is charged as one
// launch (amortized launch overhead, occupancy computed from the summed
// grids) — the multi-job generalisation of the paper's per-level kernel
// batching. Execution stays eager and per-job, so every job's fields are
// bit-identical to a standalone run of the same config; only the modeled
// time accounting changes. Checkpoints and VTK dumps stream per job on
// their configured intervals, outside the fusion scope.
//
// The server RECOVERS failed jobs (docs/fault_tolerance.md): a step that
// throws triggers a retry with capped exponential backoff (booked in
// modeled time) restarting from the newest good streamed checkpoint,
// falling back interval by interval when a checkpoint fails its checksum
// and to a scratch re-init when none survive. A per-step watchdog
// deadline and NaN/conservation-drift health checks QUARANTINE hung or
// diverging jobs instead of burning retries on them. When a manifest
// path is configured, the queue state persists across server restarts:
// a new server resumes queued/running/stopped jobs from their recorded
// checkpoints.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cfg/config.hpp"
#include "obs/metrics.hpp"
#include "svc/metrics.hpp"
#include "util/fault.hpp"
#include "vgpu/device.hpp"

namespace ramr::svc {

/// One unit of work: a named, fully validated run configuration.
struct JobSpec {
  std::string name;
  cfg::RunConfig config;
  /// Checkpoint paths (oldest first) a re-submitted job may restore
  /// from, newest first preference — filled by resume_from_manifest so a
  /// restarted server picks jobs up where they left off. Empty = start
  /// from scratch.
  std::vector<std::string> resume_checkpoints;
};

enum class JobState {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kStopped,
  /// Pulled from execution by a health check (hung on the watchdog
  /// deadline, non-finite dt/fields, or conservation drift). Not
  /// retried: the failure is systematic, not transient.
  kQuarantined,
};

const char* job_state_name(JobState state);

/// Externally visible progress of one job.
struct JobStatus {
  JobState state = JobState::kQueued;
  int steps = 0;
  double sim_time = 0.0;
  /// Modeled seconds the job's kernels would have cost unfused — the
  /// job's attributed share of device demand (fusion savings are a
  /// server-level property and reported there).
  double serial_kernel_seconds = 0.0;
  std::string error;                     ///< non-empty iff kFailed/kQuarantined
  std::vector<std::string> files;        ///< checkpoints + VTK indexes written
  cfg::Json metrics;                     ///< run_metrics_json (final for done jobs)

  // Recovery activity (docs/fault_tolerance.md).
  int retry_count = 0;            ///< failed attempts so far
  int recoveries = 0;             ///< successful restarts after a failure
  int checkpoint_fallbacks = 0;   ///< corrupt checkpoints skipped on restore
  int last_checkpoint_step = -1;  ///< step of the newest streamed checkpoint
  double backoff_seconds = 0.0;   ///< modeled seconds spent backing off
  std::int64_t faults_injected = 0;  ///< fault-plan injections attributed
  /// Streamed checkpoint paths believed good, oldest first (the restore
  /// fallback chain; also what the manifest records for resume).
  std::vector<std::string> checkpoints;
};

/// FIFO of submitted jobs plus their status records. Thread-safe so a
/// controller thread may submit and poll while the server loop runs.
class JobQueue {
 public:
  /// Enqueues a job; returns its id (dense, starting at 0).
  int submit(JobSpec spec);

  /// Claims the oldest queued job (marking it kRunning); nullopt when
  /// none are queued.
  std::optional<int> claim();

  int size() const;
  int pending() const;

  JobSpec spec(int id) const;
  JobStatus status(int id) const;
  void update(int id, const JobStatus& status);

 private:
  struct Record {
    JobSpec spec;
    JobStatus status;
  };

  mutable std::mutex mutex_;
  std::vector<Record> records_;
  std::deque<int> queued_;
};

/// Server construction knobs.
struct ServerConfig {
  vgpu::DeviceSpec device = vgpu::tesla_k20x();
  /// Jobs resident (advancing) at once. 1 = plain serial back-to-back.
  int max_concurrent_jobs = 4;
  /// Directory prefixed to every job output path ("." = CWD).
  std::string output_dir = ".";
  /// Cross-job launch fusion (ablation lever; on in production).
  bool fuse_across_jobs = true;

  // --- recovery (docs/fault_tolerance.md) ---
  /// Failed step attempts tolerated per job before kFailed. Each retry
  /// restarts from the newest good checkpoint (or scratch).
  int max_retries = 3;
  /// Exponential backoff before retry r: min(base * 2^(r-1), cap),
  /// charged to the server clock's "recovery" component — recovery cost
  /// is modeled time, visible in jobs/hour goodput.
  double backoff_base_s = 1.0e-3;
  double backoff_cap_s = 1.0e-1;
  /// Quarantine a job whose single step exceeds this many attributed
  /// kernel-seconds (0 = watchdog off).
  double watchdog_step_seconds = 0.0;
  /// Quarantine when dt collapses below this floor (0 = only the always-on
  /// non-finite/non-positive dt check).
  double dt_floor = 0.0;
  /// Steps between conservation health checks (0 = off). Each check
  /// launches a composite-summary reduction — real modeled cost, so it
  /// is opt-in.
  int health_interval = 0;
  /// Relative mass drift against the job's admission baseline that
  /// triggers quarantine.
  double drift_tolerance = 0.25;
  /// When non-empty, the queue/job state persists here (atomically, as
  /// JSON) after every round, and resume_from_manifest() re-submits
  /// unfinished jobs from it — server-restart resume.
  std::string manifest_path;
  /// When non-empty, a Prometheus-text dump of the server's metrics
  /// (jobs, device counters, fusion, faults, recovery seconds) refreshes
  /// here each round alongside the manifest (atomic tmp+rename;
  /// `ramr_run --serve K --metrics-out <path>`, docs/observability.md).
  std::string metrics_out;
};

/// The event loop. Single-threaded: construct, submit jobs (directly or
/// through queue()), then run() to completion — or call request_stop()
/// from a controller thread for a clean early shutdown (in-flight jobs
/// checkpoint and stop at the next step boundary).
class SimulationServer {
 public:
  explicit SimulationServer(const ServerConfig& config);

  /// Validates and enqueues; returns the job id. Service jobs must be
  /// single-rank and synchronous-model (async_overlap implies a private
  /// timeline, which a shared device cannot carry).
  int submit(JobSpec spec);

  JobQueue& queue() { return queue_; }

  /// Runs until the queue drains (or request_stop()). Safe to call again
  /// after submitting more jobs.
  void run();

  /// Asks the loop to stop at the next step boundary: active jobs write
  /// a final checkpoint (when their config checkpoints at all) and are
  /// marked kStopped; queued jobs stay queued. One-shot: the request is
  /// consumed by the stop, so a later run() resumes draining the queue.
  void request_stop() { stop_requested_ = true; }

  JobStatus status(int id) const { return queue_.status(id); }

  /// Full service report: device + fusion counters and every job's
  /// status and metrics.
  cfg::Json status_json() const;

  /// Reads the manifest at config.manifest_path (written by a previous
  /// server's run loop) and re-submits every job that had not finished —
  /// queued and stopped/running jobs return with their recorded
  /// checkpoints, so admission restores them where they left off.
  /// Returns the number of jobs resumed (0 when the manifest is absent
  /// or no path is configured).
  int resume_from_manifest();

  /// Persists the queue/job state as JSON (atomic tmp+rename). Called
  /// automatically after every round when manifest_path is set.
  void write_manifest() const;

  vgpu::Device& device() { return *device_; }
  vgpu::SimClock& clock() { return clock_; }
  int jobs_completed() const { return jobs_completed_; }

 private:
  struct ActiveJob {
    int id = -1;
    JobSpec spec;
    std::unique_ptr<app::Simulation> sim;
    double serial_kernel_seconds = 0.0;
    std::vector<std::string> files;

    /// The job's fault schedule. Owned HERE, not by the Simulation, so
    /// it survives restarts: a retry continues the schedule instead of
    /// deterministically replaying the fault that killed the attempt.
    std::unique_ptr<util::FaultPlan> fault_plan;
    /// Believed-good streamed checkpoints, oldest first (restore tries
    /// newest first and pops the ones that fail verification).
    std::vector<std::string> checkpoints;
    int last_checkpoint_step = -1;
    int retry_count = 0;
    int recoveries = 0;
    int checkpoint_fallbacks = 0;
    double backoff_seconds = 0.0;
    /// Attributed kernel-seconds of the latest step (watchdog input).
    double last_step_seconds = 0.0;
    /// Set when the job was revived this round: it has not completed a
    /// step since the restore, so the post-round health checks (which
    /// read last_dt and the live fields) do not apply yet.
    bool just_revived = false;
    /// Conservation baseline captured at admission (health checks).
    hydro::FieldSummary baseline{};
    bool baseline_valid = false;
  };

  bool admit_one();
  void step_all();
  /// (Re)creates job.sim restoring from the newest good checkpoint
  /// (fallback chain) or initializing from scratch. False + error when
  /// even that fails.
  bool start_job(ActiveJob& job, std::string* error);
  /// Retry-with-backoff path for a thrown step: true if the job was
  /// revived (stays active), false if it was retired kFailed.
  bool handle_failure(ActiveJob& job, const std::string& error);
  /// Post-step health checks; returns a non-empty quarantine reason when
  /// the job must be pulled.
  std::string health_violation(ActiveJob& job);
  void write_outputs(ActiveJob& job, bool final_output);
  void retire(ActiveJob& job, JobState state, const std::string& error);
  void refresh_status(const ActiveJob& job);
  std::string output_prefix(const ActiveJob& job) const;
  /// Re-samples the server metrics and (when config.metrics_out is set)
  /// rewrites the Prometheus-text dump. Called alongside write_manifest.
  void publish_metrics();

  ServerConfig config_;
  vgpu::SimClock clock_;
  std::unique_ptr<vgpu::Device> device_;
  JobQueue queue_;
  std::vector<ActiveJob> active_;
  std::atomic<bool> stop_requested_{false};
  int jobs_completed_ = 0;
  obs::MetricsRegistry metrics_;
};

}  // namespace ramr::svc
