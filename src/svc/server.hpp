// Multi-job simulation service: a queue of configured runs executed by
// one event loop over ONE shared virtual device.
//
// The throughput lever is cross-job launch fusion: the server interleaves
// the level advances of up to K resident jobs inside a launch-fusion
// scope, so the same stage kernel of different jobs is charged as one
// launch (amortized launch overhead, occupancy computed from the summed
// grids) — the multi-job generalisation of the paper's per-level kernel
// batching. Execution stays eager and per-job, so every job's fields are
// bit-identical to a standalone run of the same config; only the modeled
// time accounting changes. Checkpoints and VTK dumps stream per job on
// their configured intervals, outside the fusion scope.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cfg/config.hpp"
#include "svc/metrics.hpp"
#include "vgpu/device.hpp"

namespace ramr::svc {

/// One unit of work: a named, fully validated run configuration.
struct JobSpec {
  std::string name;
  cfg::RunConfig config;
};

enum class JobState { kQueued, kRunning, kDone, kFailed, kStopped };

const char* job_state_name(JobState state);

/// Externally visible progress of one job.
struct JobStatus {
  JobState state = JobState::kQueued;
  int steps = 0;
  double sim_time = 0.0;
  /// Modeled seconds the job's kernels would have cost unfused — the
  /// job's attributed share of device demand (fusion savings are a
  /// server-level property and reported there).
  double serial_kernel_seconds = 0.0;
  std::string error;                     ///< non-empty iff kFailed
  std::vector<std::string> files;        ///< checkpoints + VTK indexes written
  cfg::Json metrics;                     ///< run_metrics_json (final for done jobs)
};

/// FIFO of submitted jobs plus their status records. Thread-safe so a
/// controller thread may submit and poll while the server loop runs.
class JobQueue {
 public:
  /// Enqueues a job; returns its id (dense, starting at 0).
  int submit(JobSpec spec);

  /// Claims the oldest queued job (marking it kRunning); nullopt when
  /// none are queued.
  std::optional<int> claim();

  int size() const;
  int pending() const;

  JobSpec spec(int id) const;
  JobStatus status(int id) const;
  void update(int id, const JobStatus& status);

 private:
  struct Record {
    JobSpec spec;
    JobStatus status;
  };

  mutable std::mutex mutex_;
  std::vector<Record> records_;
  std::deque<int> queued_;
};

/// Server construction knobs.
struct ServerConfig {
  vgpu::DeviceSpec device = vgpu::tesla_k20x();
  /// Jobs resident (advancing) at once. 1 = plain serial back-to-back.
  int max_concurrent_jobs = 4;
  /// Directory prefixed to every job output path ("." = CWD).
  std::string output_dir = ".";
  /// Cross-job launch fusion (ablation lever; on in production).
  bool fuse_across_jobs = true;
};

/// The event loop. Single-threaded: construct, submit jobs (directly or
/// through queue()), then run() to completion — or call request_stop()
/// from a controller thread for a clean early shutdown (in-flight jobs
/// checkpoint and stop at the next step boundary).
class SimulationServer {
 public:
  explicit SimulationServer(const ServerConfig& config);

  /// Validates and enqueues; returns the job id. Service jobs must be
  /// single-rank and synchronous-model (async_overlap implies a private
  /// timeline, which a shared device cannot carry).
  int submit(JobSpec spec);

  JobQueue& queue() { return queue_; }

  /// Runs until the queue drains (or request_stop()). Safe to call again
  /// after submitting more jobs.
  void run();

  /// Asks the loop to stop at the next step boundary: active jobs write
  /// a final checkpoint (when their config checkpoints at all) and are
  /// marked kStopped; queued jobs stay queued. One-shot: the request is
  /// consumed by the stop, so a later run() resumes draining the queue.
  void request_stop() { stop_requested_ = true; }

  JobStatus status(int id) const { return queue_.status(id); }

  /// Full service report: device + fusion counters and every job's
  /// status and metrics.
  cfg::Json status_json() const;

  vgpu::Device& device() { return *device_; }
  vgpu::SimClock& clock() { return clock_; }
  int jobs_completed() const { return jobs_completed_; }

 private:
  struct ActiveJob {
    int id = -1;
    JobSpec spec;
    std::unique_ptr<app::Simulation> sim;
    double serial_kernel_seconds = 0.0;
    std::vector<std::string> files;
  };

  bool admit_one();
  void step_all();
  void write_outputs(ActiveJob& job, bool final_output);
  void retire(ActiveJob& job, JobState state, const std::string& error);
  std::string output_prefix(const ActiveJob& job) const;

  ServerConfig config_;
  vgpu::SimClock clock_;
  std::unique_ptr<vgpu::Device> device_;
  JobQueue queue_;
  std::vector<ActiveJob> active_;
  std::atomic<bool> stop_requested_{false};
  int jobs_completed_ = 0;
};

}  // namespace ramr::svc
