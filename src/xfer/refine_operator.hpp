// RefineOperator: interpolates data from a coarse patch into the finer
// index space (SAMRAI's RefineOperator strategy; paper §IV-B2). The
// implementations in src/geom are fully data-parallel device kernels —
// one thread per fine element — which the paper presents as the first of
// their kind.
#pragma once

#include <span>

#include "mesh/box.hpp"
#include "pdat/patch_data.hpp"

namespace ramr::xfer {

/// One application of a refine operator inside a fused batch.
struct RefineTask {
  pdat::PatchData* dst = nullptr;
  const pdat::PatchData* src = nullptr;
  mesh::Box fine_cells;
};

/// Strategy interface for coarse-to-fine interpolation.
class RefineOperator {
 public:
  virtual ~RefineOperator() = default;

  /// Coarse cells needed around the coarsened fine region.
  virtual mesh::IntVector stencil_width() const = 0;

  /// Fills `dst` over `fine_cells` (fine cell space, clipped internally
  /// to both arrays) by interpolating `src`, whose index space is coarser
  /// by `ratio`.
  virtual void refine(pdat::PatchData& dst, const pdat::PatchData& src,
                      const mesh::Box& fine_cells,
                      const mesh::IntVector& ratio) const = 0;

  /// Applies the operator to every task, fusing the per-task kernels
  /// into ONE launch per component where the implementation supports it
  /// (this default falls back to per-task refine()). Task write regions
  /// must be disjoint, which schedule plans guarantee.
  virtual void refine_batched(std::span<const RefineTask> tasks,
                              const mesh::IntVector& ratio) const {
    for (const RefineTask& t : tasks) {
      refine(*t.dst, *t.src, t.fine_cells, ratio);
    }
  }

  virtual const char* name() const = 0;
};

}  // namespace ramr::xfer
