// RefineOperator: interpolates data from a coarse patch into the finer
// index space (SAMRAI's RefineOperator strategy; paper §IV-B2). The
// implementations in src/geom are fully data-parallel device kernels —
// one thread per fine element — which the paper presents as the first of
// their kind.
#pragma once

#include "mesh/box.hpp"
#include "pdat/patch_data.hpp"

namespace ramr::xfer {

/// Strategy interface for coarse-to-fine interpolation.
class RefineOperator {
 public:
  virtual ~RefineOperator() = default;

  /// Coarse cells needed around the coarsened fine region.
  virtual mesh::IntVector stencil_width() const = 0;

  /// Fills `dst` over `fine_cells` (fine cell space, clipped internally
  /// to both arrays) by interpolating `src`, whose index space is coarser
  /// by `ratio`.
  virtual void refine(pdat::PatchData& dst, const pdat::PatchData& src,
                      const mesh::Box& fine_cells,
                      const mesh::IntVector& ratio) const = 0;

  virtual const char* name() const = 0;
};

}  // namespace ramr::xfer
