#include "xfer/transfer_schedule.hpp"

#include "util/error.hpp"

namespace ramr::xfer {

namespace {

/// Fixed-size frame at the head of every aggregated message, validated on
/// receive against the receiver's replicated plan.
struct MessageHeader {
  std::uint32_t transaction_count = 0;
  std::uint32_t reserved = 0;
  std::uint64_t payload_bytes = 0;
};

}  // namespace

void TransferSchedule::finalize(const TransactionDelegate& delegate) {
  RAMR_REQUIRE(!finalized_, "TransferSchedule finalized twice");
  RAMR_REQUIRE(ctx_ != nullptr, "TransferSchedule used before initialize()");
  finalized_ = true;

  const int me = ctx_->my_rank;
  for (std::size_t i = 0; i < transactions_.size(); ++i) {
    const Transaction& t = transactions_[i];
    if (t.src_owner == t.dst_owner) {
      continue;  // local transactions are applied directly, never framed
    }
    PeerMessage* msg = nullptr;
    if (t.src_owner == me) {
      msg = &send_messages_[t.dst_owner];
    } else if (t.dst_owner == me) {
      msg = &recv_messages_[t.src_owner];
    } else {
      continue;  // between two other ranks; not our traffic
    }
    msg->transaction_indices.push_back(i);
    msg->payload_bytes += delegate.stream_size(t.handle);
  }
  for (auto* messages : {&send_messages_, &recv_messages_}) {
    for (auto& [peer, msg] : *messages) {
      (void)peer;
      msg.wire_bytes = sizeof(MessageHeader) + msg.payload_bytes;
    }
  }
  for (const auto& [peer, msg] : send_messages_) {
    (void)peer;
    bytes_sent_ += msg.wire_bytes;
  }
}

void TransferSchedule::execute(TransactionDelegate& delegate) {
  RAMR_REQUIRE(finalized_, "TransferSchedule executed before finalize()");
  const int me = ctx_->my_rank;
  const bool remote = !send_messages_.empty() || !recv_messages_.empty();
  RAMR_REQUIRE(!remote || ctx_->comm != nullptr,
               "distributed transfer plan without a communicator");

  // 1. Post every receive before any packing happens.
  std::map<int, simmpi::Request> recvs;
  for (const auto& [peer, msg] : recv_messages_) {
    (void)msg;
    recvs.emplace(peer, ctx_->comm->irecv(peer, tag_));
  }

  // 2. One aggregated message per destination peer: exact-size
  //    preallocation, fused pack (one modeled PCIe crossing for the whole
  //    buffer when the data is device-resident), single isend.
  std::vector<pdat::MessageStream> send_streams;
  send_streams.reserve(send_messages_.size());
  std::vector<simmpi::Request> sends;
  sends.reserve(send_messages_.size());
  for (const auto& [peer, msg] : send_messages_) {
    pdat::MessageStream ms;
    ms.reserve(msg.wire_bytes);
    MessageHeader header;
    header.transaction_count =
        static_cast<std::uint32_t>(msg.transaction_indices.size());
    header.payload_bytes = msg.payload_bytes;
    ms.write(header);
    {
      vgpu::TransferBatch batch(ctx_->device);
      for (const std::size_t i : msg.transaction_indices) {
        delegate.pack(ms, transactions_[i].handle);
      }
    }
    RAMR_REQUIRE(ms.size() == msg.wire_bytes,
                 "aggregated message to rank " << peer << " packed "
                 << ms.size() << " bytes, planned " << msg.wire_bytes);
    send_streams.push_back(std::move(ms));
    sends.push_back(ctx_->comm->isend(peer, tag_, send_streams.back().data(),
                                      send_streams.back().size()));
  }

  // 3. Apply in plan order. Each peer's stream is opened (and its frame
  //    validated) on first use and then consumed sequentially — the
  //    sender packed it in the same replicated plan order. Each received
  //    aggregated buffer is charged as ONE modeled PCIe crossing when it
  //    is opened; the absorbing batch swallows the per-transaction
  //    staging uploads, which interleave across peers and are part of
  //    those already-charged buffers.
  std::map<int, pdat::MessageStream> streams;
  vgpu::TransferBatch unpack_batch(recvs.empty() ? nullptr : ctx_->device,
                                   /*absorb=*/true);
  for (const Transaction& t : transactions_) {
    if (t.dst_owner != me) {
      continue;
    }
    if (t.src_owner == me) {
      delegate.copy_local(t.handle);
      continue;
    }
    auto it = streams.find(t.src_owner);
    if (it == streams.end()) {
      auto rit = recvs.find(t.src_owner);
      RAMR_REQUIRE(rit != recvs.end(), "no posted receive for rank "
                   << t.src_owner);
      ctx_->comm->wait(rit->second);
      pdat::MessageStream ms(rit->second.take_payload());
      const PeerMessage& expected = recv_messages_.at(t.src_owner);
      RAMR_REQUIRE(ms.size() == expected.wire_bytes,
                   "aggregated message from rank " << t.src_owner << " is "
                   << ms.size() << " bytes, planned " << expected.wire_bytes);
      const auto header = ms.read<MessageHeader>();
      RAMR_REQUIRE(header.transaction_count ==
                           expected.transaction_indices.size() &&
                       header.payload_bytes == expected.payload_bytes,
                   "aggregated message frame mismatch from rank "
                   << t.src_owner);
      if (ctx_->device != nullptr) {
        ctx_->device->charge_h2d_crossing(expected.payload_bytes);
      }
      it = streams.emplace(t.src_owner, std::move(ms)).first;
    }
    delegate.unpack(it->second, t.handle);
  }
  for (auto& [peer, ms] : streams) {
    RAMR_REQUIRE(ms.fully_consumed(), "aggregated message from rank " << peer
                 << " not fully consumed: " << ms.read_position() << " of "
                 << ms.size());
  }
  RAMR_REQUIRE(streams.size() == recvs.size(),
               "posted receives without matching transactions");
  if (!sends.empty()) {
    ctx_->comm->wait_all(sends);
  }
}

}  // namespace ramr::xfer
