#include "xfer/transfer_schedule.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "vgpu/device_buffer.hpp"
#include "vgpu/topology.hpp"

namespace ramr::xfer {

namespace {

/// Fixed-size frame at the head of every aggregated message, validated on
/// receive against the receiver's replicated plan.
struct MessageHeader {
  std::uint32_t transaction_count = 0;
  std::uint32_t reserved = 0;
  std::uint64_t payload_bytes = 0;
};

/// Pack / unpack / copy move 8 bytes in and 8 bytes out per thread (the
/// same per-element cost the per-transaction kernels charge, so fusing
/// changes launch overhead and occupancy, not per-element work).
constexpr vgpu::KernelCost kXferCost{0.0, 16.0};

}  // namespace

void TransferSchedule::finalize(const TransferDelegate& delegate) {
  RAMR_REQUIRE(!finalized_, "TransferSchedule finalized twice");
  RAMR_REQUIRE(ctx_ != nullptr, "TransferSchedule used before initialize()");
  finalized_ = true;

  const int me = ctx_->my_rank;
  geometry_.reserve(transactions_.size());
  for (std::size_t i = 0; i < transactions_.size(); ++i) {
    const Transaction& t = transactions_[i];
    geometry_.push_back(delegate.geometry(t.handle));
    RAMR_REQUIRE(geometry_.back().overlap != nullptr,
                 "transaction described without an overlap");
    if (t.src_owner == t.dst_owner) {
      continue;  // local transactions are applied directly, never framed
    }
    PeerMessage* msg = nullptr;
    if (t.src_owner == me) {
      msg = &send_messages_[t.dst_owner];
    } else if (t.dst_owner == me) {
      msg = &recv_messages_[t.src_owner];
    } else {
      continue;  // between two other ranks; not our traffic
    }
    msg->transaction_indices.push_back(i);
    msg->payload_bytes +=
        overlap_stream_size(*geometry_[i].overlap, geometry_[i].depth);
  }
  for (auto* messages : {&send_messages_, &recv_messages_}) {
    for (auto& [peer, msg] : *messages) {
      (void)peer;
      msg.wire_bytes = sizeof(MessageHeader) + msg.payload_bytes;
    }
  }
  for (const auto& [peer, msg] : send_messages_) {
    (void)peer;
    bytes_sent_ += msg.wire_bytes;
  }
  compile_plans();
}

void TransferSchedule::compile_plans() {
  const int me = ctx_->my_rank;

  // Payload base (in doubles) of each framed transaction within its
  // message — the same accumulation order the legacy per-transaction
  // pack walks, so compiled and legacy endpoints agree on the wire.
  std::vector<std::int64_t> payload_base(transactions_.size(), 0);
  for (auto* messages : {&send_messages_, &recv_messages_}) {
    for (auto& [peer, msg] : *messages) {
      (void)peer;
      std::int64_t base = 0;
      for (const std::size_t i : msg.transaction_indices) {
        payload_base[i] = base;
        base += geometry_[i].overlap->element_count() * geometry_[i].depth;
      }
    }
  }

  // Pack plans: segments in SOURCE index space, in exact payload layout
  // order — component-major, then depth plane, then overlap box, each box
  // row-major — matching the byte layout PatchData::pack_stream produces.
  // Pack only reads, so no clipping is needed and the segment-table
  // offsets walk the payload contiguously.
  for (const auto& [peer, msg] : send_messages_) {
    Plan& plan = pack_plans_[peer];
    plan.payload_doubles =
        static_cast<std::int64_t>(msg.payload_bytes / sizeof(double));
    for (const std::size_t i : msg.transaction_indices) {
      const TransferGeometry& g = geometry_[i];
      const mesh::IntVector shift = g.overlap->src_shift();
      std::int64_t off = payload_base[i];
      for (int k = 0; k < g.overlap->components(); ++k) {
        for (int d = 0; d < g.depth; ++d) {
          for (const mesh::Box& b : g.overlap->component(k).boxes()) {
            const mesh::Box src = b.shift(mesh::IntVector(-shift.i, -shift.j));
            PlanSeg op;
            op.txn = static_cast<std::uint32_t>(i);
            op.comp = static_cast<std::uint16_t>(k);
            op.plane = static_cast<std::uint16_t>(d);
            op.run_ilo = src.lower().i;
            op.run_jlo = src.lower().j;
            op.run_w = src.width();
            op.payload_base = off;
            plan.segs.add(src.lower().i, src.lower().j, src.width(),
                          src.height());
            plan.ops.push_back(op);
            off += b.size();
          }
        }
      }
    }
  }

  // Destination-side write runs (local copies + unpacks) in GLOBAL plan
  // order. Each run is clipped against every LATER run targeting the same
  // (dst_slot, component, plane): only the last plan-order writer keeps
  // each element, so the fused launches are free of intra-launch write
  // conflicts and their any-order execution reproduces the sequential
  // apply bit-for-bit.
  struct WriteRun {
    std::size_t txn;
    int comp;
    int plane;
    mesh::Box box;          ///< un-clipped destination run
    std::int64_t base;      ///< payload base of the run (unpack runs)
  };
  std::vector<WriteRun> runs;
  std::map<std::tuple<int, int, int>, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < transactions_.size(); ++i) {
    const Transaction& t = transactions_[i];
    if (t.dst_owner != me) {
      continue;
    }
    const TransferGeometry& g = geometry_[i];
    std::int64_t off = t.src_owner == me ? 0 : payload_base[i];
    for (int k = 0; k < g.overlap->components(); ++k) {
      for (int d = 0; d < g.depth; ++d) {
        for (const mesh::Box& b : g.overlap->component(k).boxes()) {
          groups[{g.dst_slot, k, d}].push_back(runs.size());
          runs.push_back(WriteRun{i, k, d, b, off});
          off += b.size();
        }
      }
    }
  }
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const WriteRun& run = runs[r];
    const TransferGeometry& g = geometry_[run.txn];
    mesh::BoxList pieces(run.box);
    for (const std::size_t q : groups[{g.dst_slot, run.comp, run.plane}]) {
      if (q <= r) {
        continue;
      }
      pieces.remove_intersections(runs[q].box);
      if (pieces.empty()) {
        break;
      }
    }
    if (pieces.empty()) {
      continue;  // fully overwritten by later plan-order writers
    }
    const Transaction& t = transactions_[run.txn];
    const bool local = t.src_owner == me;
    Plan& plan = local ? local_plan_ : unpack_plans_[t.src_owner];
    const mesh::IntVector shift = g.overlap->src_shift();
    for (const mesh::Box& piece : pieces.boxes()) {
      PlanSeg op;
      op.txn = static_cast<std::uint32_t>(run.txn);
      op.comp = static_cast<std::uint16_t>(run.comp);
      op.plane = static_cast<std::uint16_t>(run.plane);
      op.shift_i = shift.i;
      op.shift_j = shift.j;
      if (local) {
        // Local copies address no payload; the run fields address the
        // snapshot buffer over the clipped piece itself (dst space).
        op.run_ilo = piece.lower().i;
        op.run_jlo = piece.lower().j;
        op.run_w = piece.width();
        // Snapshot reads that alias ANY write of this exchange: the
        // source seam lines of node/side same-level fills are also
        // ghost-fill targets, so a live read would race with (and
        // order-depend on) the fused apply writes.
        if (g.src_slot >= 0) {
          const mesh::Box read_box = piece.shift(-shift);
          for (const std::size_t q :
               groups[{g.src_slot, run.comp, run.plane}]) {
            if (!read_box.intersect(runs[q].box).empty()) {
              op.staged = true;
              break;
            }
          }
        }
        if (op.staged) {
          op.payload_base = local_plan_.staging_doubles;
          local_plan_.staging_doubles += piece.size();
          local_plan_.staged_segs.add(piece.lower().i, piece.lower().j,
                                      piece.width(), piece.height());
          local_plan_.staged_ops.push_back(local_plan_.ops.size());
        }
      } else {
        op.run_ilo = run.box.lower().i;
        op.run_jlo = run.box.lower().j;
        op.run_w = run.box.width();
        op.payload_base = run.base;
      }
      plan.segs.add(piece.lower().i, piece.lower().j, piece.width(),
                    piece.height());
      plan.ops.push_back(op);
    }
  }
  // Every received message has a plan entry even when its writes were
  // fully clipped: the message must still be received and charged.
  for (const auto& [peer, msg] : recv_messages_) {
    unpack_plans_[peer].payload_doubles =
        static_cast<std::int64_t>(msg.payload_bytes / sizeof(double));
  }
  plans_compiled_ = true;
}

bool TransferSchedule::bind(TransferDelegate& delegate) {
  bindings_.assign(transactions_.size(), TransferEndpoints{});
  plan_device_ = nullptr;
  multi_device_ = false;
  bool viewable = true;
  const int me = ctx_->my_rank;
  for (std::size_t i = 0; i < transactions_.size(); ++i) {
    const Transaction& t = transactions_[i];
    if (t.src_owner != me && t.dst_owner != me) {
      continue;
    }
    TransferEndpoints ep = delegate.endpoints(t.handle);
    if (t.src_owner == me) {
      RAMR_REQUIRE(ep.src != nullptr, "missing local source object");
    }
    if (t.dst_owner == me) {
      RAMR_REQUIRE(ep.dst != nullptr, "missing local destination object");
    }
    for (pdat::PatchData* data : {t.src_owner == me ? ep.src : nullptr,
                                  t.dst_owner == me ? ep.dst : nullptr}) {
      if (data == nullptr) {
        continue;
      }
      if (!data->supports_transfer_views()) {
        viewable = false;
        continue;
      }
      vgpu::Device* dev = data->transfer_device();
      if (plan_device_ == nullptr) {
        plan_device_ = dev;
      } else if (plan_device_ != dev) {
        if (ctx_->topology != nullptr) {
          // FAST path: with a topology the plans stay compiled and split
          // into per-device launch partitions, peer crossings charged to
          // the link lanes (build_device_parts below).
          multi_device_ = true;
        } else {
          viewable = false;  // cross-device endpoints: stage per transaction
        }
      }
    }
    bindings_[i] = ep;
  }
  const bool compiled = viewable && plan_device_ != nullptr;
  multi_device_ = multi_device_ && compiled;
  if (multi_device_) {
    build_device_parts();
  }
  return compiled;
}

void TransferSchedule::build_device_parts() {
  // Re-partition every compiled plan by the device its bound endpoints
  // actually live on. Rebuilt each bind: scratch objects (and, after a
  // measured-balance regrid, patch->device placement) change between
  // executes while the plan geometry does not.
  pack_parts_.clear();
  unpack_parts_.clear();
  local_same_parts_.clear();
  local_staged_parts_.clear();
  local_peer_parts_.clear();
  peer_offset_.assign(local_plan_.ops.size(), 0);

  const auto part_for = [](std::vector<DevicePart>& parts,
                           vgpu::Device* dev) -> DevicePart& {
    for (DevicePart& p : parts) {
      if (p.dev == dev) {
        return p;
      }
    }
    parts.push_back(DevicePart{dev, {}});
    return parts.back();
  };

  for (const auto& [peer, plan] : pack_plans_) {
    std::vector<DevicePart>& parts = pack_parts_[peer];
    for (std::size_t s = 0; s < plan.ops.size(); ++s) {
      const vgpu::LaunchSeg2D& seg = plan.segs.segment(s);
      vgpu::Device* dev = bindings_[plan.ops[s].txn].src->transfer_device();
      part_for(parts, dev).segs.add(seg.ilo, seg.jlo, seg.width, seg.height, s);
    }
  }
  for (const auto& [peer, plan] : unpack_plans_) {
    std::vector<DevicePart>& parts = unpack_parts_[peer];
    for (std::size_t s = 0; s < plan.ops.size(); ++s) {
      const vgpu::LaunchSeg2D& seg = plan.segs.segment(s);
      vgpu::Device* dev = bindings_[plan.ops[s].txn].dst->transfer_device();
      part_for(parts, dev).segs.add(seg.ilo, seg.jlo, seg.width, seg.height, s);
    }
  }
  for (std::size_t s = 0; s < local_plan_.ops.size(); ++s) {
    const vgpu::LaunchSeg2D& seg = local_plan_.segs.segment(s);
    const TransferEndpoints& ep = bindings_[local_plan_.ops[s].txn];
    vgpu::Device* src_dev = ep.src->transfer_device();
    vgpu::Device* dst_dev = ep.dst->transfer_device();
    if (src_dev == dst_dev) {
      part_for(local_same_parts_, dst_dev)
          .segs.add(seg.ilo, seg.jlo, seg.width, seg.height, s);
      if (local_plan_.ops[s].staged) {
        part_for(local_staged_parts_, dst_dev)
            .segs.add(seg.ilo, seg.jlo, seg.width, seg.height, s);
      }
      continue;
    }
    // Cross-device: compact peer buffer per directed (src, dst) pair.
    PeerPart* pp = nullptr;
    for (PeerPart& cand : local_peer_parts_) {
      if (cand.src_dev == src_dev && cand.dst_dev == dst_dev) {
        pp = &cand;
        break;
      }
    }
    if (pp == nullptr) {
      local_peer_parts_.push_back(PeerPart{src_dev, dst_dev, {}, 0});
      pp = &local_peer_parts_.back();
    }
    peer_offset_[s] = pp->doubles;
    pp->doubles += seg.size();
    pp->segs.add(seg.ilo, seg.jlo, seg.width, seg.height, s);
  }
}

int TransferSchedule::device_lane(vgpu::Timeline* tl, int comm_lane,
                                  vgpu::Device* dev) {
  if (tl == nullptr || comm_lane < 0) {
    return comm_lane;
  }
  const int lane = tl->lane(vgpu::Topology::xfer_lane_name(dev->ordinal()));
  tl->advance(lane, tl->now(comm_lane));
  flight_lanes_.push_back(lane);
  return lane;
}

void TransferSchedule::execute(TransferDelegate& delegate) {
  execute_begin(delegate);
  execute_finish();
}

void TransferSchedule::execute_begin(TransferDelegate& delegate) {
  RAMR_REQUIRE(finalized_, "TransferSchedule executed before finalize()");
  RAMR_REQUIRE(!in_flight_, "execute_begin() while an exchange is in flight");
  const bool remote = !send_messages_.empty() || !recv_messages_.empty();
  RAMR_REQUIRE(!remote || ctx_->comm != nullptr,
               "distributed transfer plan without a communicator");
  const bool viewable = bind(delegate);
  in_flight_ = true;
  flight_compiled_ = ctx_->compiled_transfer && viewable;
  if (ctx_->compiled_transfer && !viewable) {
    // Wanted the fast path, demoted to legacy: surfaced through the run
    // metrics and hard-asserted zero in single-device benches.
    ++ctx_->plan_fallbacks;
  }
  if (flight_compiled_) {
    ++compiled_executions_;
    execute_compiled_begin();
  } else {
    // The per-transaction path interleaves receives with applies and
    // cannot split; run the whole exchange here so begin/finish callers
    // stay correct on any data kind.
    ++legacy_executions_;
    execute_legacy();
  }
}

void TransferSchedule::execute_finish() {
  RAMR_REQUIRE(in_flight_, "execute_finish() without execute_begin()");
  if (flight_compiled_) {
    execute_compiled_finish();
  }
  in_flight_ = false;
  flight_recvs_.clear();
  flight_send_streams_.clear();
  flight_sends_.clear();
  flight_lanes_.clear();
}

std::vector<util::View> TransferSchedule::resolve_views(const Plan& plan,
                                                        bool src_side) const {
  // Rebind each segment to its endpoint's current device view: the
  // geometric plan is stable across executes, only the object pointers
  // (per-exchange scratch) change.
  std::vector<util::View> views;
  views.reserve(plan.ops.size());
  for (std::size_t s = 0; s < plan.ops.size(); ++s) {
    const PlanSeg& op = plan.ops[s];
    const TransferEndpoints& ep = bindings_[op.txn];
    pdat::PatchData* data = src_side ? ep.src : ep.dst;
    RAMR_DEBUG_ASSERT(data != nullptr);
    const vgpu::LaunchSeg2D& seg = plan.segs.segment(s);
    mesh::Box region(seg.ilo, seg.jlo, seg.ilo + seg.width - 1,
                     seg.jlo + seg.height - 1);
    if (src_side && (op.shift_i != 0 || op.shift_j != 0)) {
      region = region.shift(mesh::IntVector(-op.shift_i, -op.shift_j));
    }
    views.push_back(data->transfer_view(op.comp, op.plane, region));
  }
  return views;
}

void TransferSchedule::execute_compiled_begin() {
  vgpu::Device& dev = *plan_device_;
  vgpu::Stream stream(dev, "xfer");
  // Under a timeline the whole begin phase runs on the comm lane: the
  // pack launches and D2H crossings advance it (the comm stream is bound
  // to it), the isends' wire time rides the network lane, and the
  // caller's compute lane does not move — whatever runs between begin
  // and finish overlaps this communication.
  vgpu::Timeline* tl = ctx_->timeline;
  const int comm_lane = tl != nullptr ? tl->lane("comm") : -1;
  vgpu::LaneScope comm_scope(tl, comm_lane);
  stream.bind_lane(comm_lane);

  // 1. Post every receive before any packing happens.
  std::map<int, simmpi::Request>& recvs = flight_recvs_;
  for (const auto& [peer, msg] : recv_messages_) {
    (void)msg;
    recvs.emplace(peer, ctx_->comm->irecv(peer, tag_));
  }

  // 2. One fused gather launch + ONE PCIe crossing + one isend per
  //    outgoing peer message. The download rides the device's D2H COPY
  //    ENGINE — its own timeline lane, chained after this message's pack
  //    (fork) and before its isend (the send issues from the engine's
  //    cursor) — so the NEXT message's pack launch overlaps this
  //    message's bus crossing, exactly as CUDA streams overlap compute
  //    with the dedicated copy engines.
  const int d2h_lane = tl != nullptr ? tl->lane("d2h") : -1;
  std::vector<pdat::MessageStream>& send_streams = flight_send_streams_;
  send_streams.reserve(send_messages_.size());
  std::vector<simmpi::Request>& sends = flight_sends_;
  sends.reserve(send_messages_.size());
  const bool gpu_direct = ctx_->gpu_direct;
  for (const auto& [peer, msg] : send_messages_) {
    const Plan& plan = pack_plans_.at(peer);
    vgpu::DeviceBuffer<double> staging(dev, plan.payload_doubles);
    {
      vgpu::AnnotationScope pack_annotation(ctx_->clock, "xfer:pack");
      const std::vector<util::View> views =
          resolve_views(plan, /*src_side=*/true);
      double* out = staging.device_ptr();
      const PlanSeg* ops = plan.ops.data();
      const util::View* v = views.data();
      const auto pack_body = [=](std::size_t s, int i, int j) {
        const PlanSeg& op = ops[s];
        out[op.payload_base +
            static_cast<std::int64_t>(j - op.run_jlo) * op.run_w +
            (i - op.run_ilo)] = v[s](i, j);
      };
      if (!multi_device_) {
        vgpu::LaunchTagScope tag_scope(&dev, vgpu::LaunchTag::kTransferPack);
        dev.launch_batched(stream, plan.segs, kXferCost, pack_body);
      } else {
        // One gather launch per source device, all writing the SAME staging
        // buffer at the GLOBAL payload offsets — the wire layout is
        // bit-identical to the single-device pack by construction. Each
        // partition rides its device's own transfer lane (forked from the
        // comm cursor) so the devices gather concurrently; the join below
        // holds the message's bus crossing / isend until every partition
        // has finished.
        double packed = tl != nullptr ? tl->now(comm_lane) : 0.0;
        for (const DevicePart& part : pack_parts_.at(peer)) {
          vgpu::Stream part_stream(*part.dev, "xfer");
          const int lane = device_lane(tl, comm_lane, part.dev);
          part_stream.bind_lane(lane);
          vgpu::LaunchTagScope tag_scope(part.dev,
                                         vgpu::LaunchTag::kTransferPack);
          part.dev->launch_batched(part_stream, part.segs, kXferCost,
                                   pack_body);
          if (tl != nullptr) {
            packed = std::max(packed, tl->now(lane));
          }
        }
        if (tl != nullptr) {
          tl->advance(comm_lane, packed);
        }
      }
    }
    // Wire leg: staging crossing (unless gpu_direct) + isend.
    vgpu::AnnotationScope wire_annotation(ctx_->clock, "xfer:wire");
    pdat::MessageStream ms;
    ms.reserve(msg.wire_bytes);
    MessageHeader header;
    header.transaction_count =
        static_cast<std::uint32_t>(msg.transaction_indices.size());
    header.payload_bytes = msg.payload_bytes;
    ms.write(header);
    std::byte* dst = ms.grow(msg.payload_bytes);
    if (gpu_direct) {
      // NIC-direct: no modeled D2H staging; the isend issues straight
      // from the comm lane (pack completion) and wire time is unchanged.
      dev.memcpy_d2h_direct(dst, staging.device_ptr(), msg.payload_bytes);
      RAMR_REQUIRE(ms.size() == msg.wire_bytes,
                   "aggregated message to rank " << peer << " packed "
                   << ms.size() << " bytes, planned " << msg.wire_bytes);
      send_streams.push_back(std::move(ms));
      sends.push_back(ctx_->comm->isend(peer, tag_, send_streams.back().data(),
                                        send_streams.back().size()));
    } else {
      // Fork the copy engine from the pack's completion; the isend below
      // issues from the engine's cursor (still inside this scope), so
      // wire follows download follows pack — per message, while packs of
      // later messages proceed on the comm lane concurrently. On a
      // multi-device rank the whole payload crosses on the message's
      // home device (the plan device).
      vgpu::LaneScope d2h_scope(tl, comm_lane >= 0 ? d2h_lane : -1);
      dev.memcpy_d2h(dst, staging.device_ptr(), msg.payload_bytes);
      RAMR_REQUIRE(ms.size() == msg.wire_bytes,
                   "aggregated message to rank " << peer << " packed "
                   << ms.size() << " bytes, planned " << msg.wire_bytes);
      send_streams.push_back(std::move(ms));
      sends.push_back(ctx_->comm->isend(peer, tag_, send_streams.back().data(),
                                        send_streams.back().size()));
    }
  }

  // 3. ONE fused local-copy launch per exchange. Compile-time clipping
  //    made all remaining writes (here and in the unpack plans) disjoint,
  //    so the order between this launch and the per-peer scatters is
  //    free — every element receives exactly its last plan-order writer.
  //    Reads that alias any of the exchange's writes (node/side seam
  //    lines) go through a pre-apply snapshot — one extra gather launch,
  //    issued before any apply write, so every copied value is the
  //    pre-exchange source value, identical to what a remote peer's pack
  //    ships regardless of the rank layout.
  if (local_plan_.segs.total_threads() > 0) {
    execute_local_plan(tl, comm_lane);
  }
}

void TransferSchedule::execute_local_plan(vgpu::Timeline* tl, int comm_lane) {
  vgpu::AnnotationScope annotation(ctx_->clock, "xfer:local");
  vgpu::Device& dev = *plan_device_;
  vgpu::Stream stream(dev, "xfer");
  stream.bind_lane(comm_lane);
  const std::vector<util::View> dst_views =
      resolve_views(local_plan_, /*src_side=*/false);
  const std::vector<util::View> src_views =
      resolve_views(local_plan_, /*src_side=*/true);
  const PlanSeg* ops = local_plan_.ops.data();
  const util::View* dv = dst_views.data();
  const util::View* sv = src_views.data();
  if (!multi_device_) {
    vgpu::LaunchTagScope tag_scope(&dev, vgpu::LaunchTag::kLocalCopy);
    vgpu::DeviceBuffer<double> snapshot(
        dev, std::max<std::int64_t>(local_plan_.staging_doubles, 1));
    double* snap = snapshot.device_ptr();
    if (local_plan_.staging_doubles > 0) {
      const std::size_t* staged = local_plan_.staged_ops.data();
      dev.launch_batched(stream, local_plan_.staged_segs, kXferCost,
                         [=](std::size_t t, int i, int j) {
                           const PlanSeg& op = ops[staged[t]];
                           snap[op.payload_base +
                                static_cast<std::int64_t>(j - op.run_jlo) *
                                    op.run_w +
                                (i - op.run_ilo)] =
                               sv[staged[t]](i - op.shift_i, j - op.shift_j);
                         });
    }
    dev.launch_batched(
        stream, local_plan_.segs, kXferCost, [=](std::size_t s, int i, int j) {
          const PlanSeg& op = ops[s];
          dv[s](i, j) =
              op.staged
                  ? snap[op.payload_base +
                         static_cast<std::int64_t>(j - op.run_jlo) * op.run_w +
                         (i - op.run_ilo)]
                  : sv[s](i - op.shift_i, j - op.shift_j);
        });
    return;
  }

  // Multi-device local plan, strict read-before-write phases: every read
  // of the exchange (same-device snapshot gathers, cross-device peer
  // packs) completes before any write (same-device applies, peer
  // unpacks). Global clipping already made all writes disjoint, so the
  // order among writers is free — the same pack-then-apply semantics the
  // single-device plan has.
  //
  // 1. Per-device snapshot gathers for same-device aliased reads. Each
  //    device gathers into its own snapshot buffer at the plan's global
  //    staging offsets.
  std::vector<vgpu::DeviceBuffer<double>> snapshots;
  snapshots.reserve(local_staged_parts_.size());
  std::vector<std::pair<vgpu::Device*, double*>> snap_by_dev;
  for (const DevicePart& part : local_staged_parts_) {
    snapshots.emplace_back(
        *part.dev, std::max<std::int64_t>(local_plan_.staging_doubles, 1));
    double* snap = snapshots.back().device_ptr();
    snap_by_dev.emplace_back(part.dev, snap);
    vgpu::Stream part_stream(*part.dev, "xfer");
    part_stream.bind_lane(device_lane(tl, comm_lane, part.dev));
    vgpu::LaunchTagScope tag_scope(part.dev, vgpu::LaunchTag::kLocalCopy);
    part.dev->launch_batched(part_stream, part.segs, kXferCost,
                             [=](std::size_t s, int i, int j) {
                               const PlanSeg& op = ops[s];
                               snap[op.payload_base +
                                    static_cast<std::int64_t>(j - op.run_jlo) *
                                        op.run_w +
                                    (i - op.run_ilo)] =
                                   sv[s](i - op.shift_i, j - op.shift_j);
                             });
  }

  // 2. Cross-device packs into compact per-(src,dst) buffers — before
  //    any apply write, so the live reads see pre-exchange values — then
  //    the peer-link crossing itself, charged to the directed
  //    "peer<i>-<j>" lane forked from the comm lane.
  struct PeerFlight {
    const PeerPart* part;
    vgpu::DeviceBuffer<double> src_buf;
    vgpu::DeviceBuffer<double> dst_buf;
    double ready = 0.0;  ///< link-lane completion of the crossing
  };
  std::vector<PeerFlight> flights;
  flights.reserve(local_peer_parts_.size());
  const std::int64_t* off = peer_offset_.data();
  for (const PeerPart& part : local_peer_parts_) {
    PeerFlight f{&part,
                 vgpu::DeviceBuffer<double>(
                     *part.src_dev, std::max<std::int64_t>(part.doubles, 1)),
                 vgpu::DeviceBuffer<double>(
                     *part.dst_dev, std::max<std::int64_t>(part.doubles, 1)),
                 0.0};
    double* buf = f.src_buf.device_ptr();
    vgpu::Stream part_stream(*part.src_dev, "xfer");
    const int src_lane = device_lane(tl, comm_lane, part.src_dev);
    part_stream.bind_lane(src_lane);
    {
      vgpu::LaunchTagScope tag_scope(part.src_dev, vgpu::LaunchTag::kLocalCopy);
      part.src_dev->launch_batched(part_stream, part.segs, kXferCost,
                                   [=](std::size_t s, int i, int j) {
                                     const PlanSeg& op = ops[s];
                                     buf[off[s] +
                                         static_cast<std::int64_t>(
                                             j - op.run_jlo) *
                                             op.run_w +
                                         (i - op.run_ilo)] =
                                         sv[s](i - op.shift_i, j - op.shift_j);
                                   });
    }
    // memcpy_peer forks the directed link lane from the active lane;
    // scoping to the source device's transfer lane chains the crossing
    // after the pack launch above, not after unrelated comm work.
    vgpu::LaneScope src_scope(tl, src_lane);
    f.ready = part.src_dev->memcpy_peer(
        f.dst_buf.device_ptr(), *part.dst_dev, f.src_buf.device_ptr(),
        static_cast<std::uint64_t>(part.doubles) * sizeof(double));
    flights.push_back(std::move(f));
  }

  // 3. Same-device applies, one launch per device.
  for (const DevicePart& part : local_same_parts_) {
    double* snap = nullptr;
    for (const auto& [d, p] : snap_by_dev) {
      if (d == part.dev) {
        snap = p;
        break;
      }
    }
    vgpu::Stream part_stream(*part.dev, "xfer");
    part_stream.bind_lane(device_lane(tl, comm_lane, part.dev));
    vgpu::LaunchTagScope tag_scope(part.dev, vgpu::LaunchTag::kLocalCopy);
    part.dev->launch_batched(
        part_stream, part.segs, kXferCost, [=](std::size_t s, int i, int j) {
          const PlanSeg& op = ops[s];
          dv[s](i, j) =
              op.staged
                  ? snap[op.payload_base +
                         static_cast<std::int64_t>(j - op.run_jlo) * op.run_w +
                         (i - op.run_ilo)]
                  : sv[s](i - op.shift_i, j - op.shift_j);
        });
  }

  // 4. Peer unpacks on the destination device, each ordered after its
  //    link crossing completes.
  for (const PeerFlight& f : flights) {
    const PeerPart& part = *f.part;
    const int dst_lane = device_lane(tl, comm_lane, part.dst_dev);
    if (tl != nullptr) {
      tl->advance(dst_lane, f.ready);
    }
    const double* buf = f.dst_buf.device_ptr();
    vgpu::Stream part_stream(*part.dst_dev, "xfer");
    part_stream.bind_lane(dst_lane);
    vgpu::LaunchTagScope tag_scope(part.dst_dev, vgpu::LaunchTag::kLocalCopy);
    part.dst_dev->launch_batched(
        part_stream, part.segs, kXferCost, [=](std::size_t s, int i, int j) {
          const PlanSeg& op = ops[s];
          dv[s](i, j) = buf[off[s] +
                            static_cast<std::int64_t>(j - op.run_jlo) *
                                op.run_w +
                            (i - op.run_ilo)];
        });
  }
}

void TransferSchedule::execute_compiled_finish() {
  vgpu::Device& dev = *plan_device_;
  vgpu::Stream stream(dev, "xfer");
  // Finish continues the comm lane PRE-ISSUED: its stream operations —
  // per-message arrival waits, uploads, fused scatters — model receive
  // processing enqueued on the transfer stream at begin time and gated
  // on the arrival events (stream-ordered receives), so they start at
  // max(comm-lane progress, arrival), not at the caller's present.
  // That is what lets the DEcomposition side of an exchange hide behind
  // the compute issued between begin and finish, exactly as the pack
  // side already does; the closing Event still joins the lane back into
  // the caller's, so completion is the max of the compute and
  // communication chains, never less than either.
  vgpu::Timeline* tl = ctx_->timeline;
  const int comm_lane = tl != nullptr ? tl->lane("comm") : -1;
  {
    vgpu::LaneScope comm_scope(tl, comm_lane, /*preissued=*/true);
    stream.bind_lane(comm_lane);

    // 4. Per received message: ONE upload crossing + one fused scatter
    //    launch. Uploads ride the H2D COPY ENGINE (its own lane, forked
    //    per message from the arrival wait), and every upload is issued
    //    before any scatter: message k+1's bus crossing overlaps message
    //    k's scatter kernel, with each scatter chained after its own
    //    upload's completion.
    const int h2d_lane = tl != nullptr ? tl->lane("h2d") : -1;
    struct Arrived {
      int peer;
      vgpu::DeviceBuffer<double> staging;
      double uploaded_at = 0.0;  ///< H2D engine cursor after the upload
    };
    std::vector<Arrived> arrived;
    arrived.reserve(recv_messages_.size());
    for (const auto& [peer, msg] : recv_messages_) {
      vgpu::AnnotationScope wire_annotation(ctx_->clock, "xfer:wire");
      auto rit = flight_recvs_.find(peer);
      RAMR_REQUIRE(rit != flight_recvs_.end(),
                   "no posted receive for rank " << peer);
      ctx_->comm->wait(rit->second);
      pdat::MessageStream ms(rit->second.take_payload());
      RAMR_REQUIRE(ms.size() == msg.wire_bytes,
                   "aggregated message from rank " << peer << " is "
                   << ms.size() << " bytes, planned " << msg.wire_bytes);
      const auto header = ms.read<MessageHeader>();
      RAMR_REQUIRE(header.transaction_count == msg.transaction_indices.size() &&
                       header.payload_bytes == msg.payload_bytes,
                   "aggregated message frame mismatch from rank " << peer);
      const Plan& plan = unpack_plans_.at(peer);
      Arrived a{peer, vgpu::DeviceBuffer<double>(dev, plan.payload_doubles),
                0.0};
      const std::byte* src = ms.view_and_skip(msg.payload_bytes);
      if (ctx_->gpu_direct) {
        // NIC-direct receive: the payload lands in device memory with no
        // modeled H2D staging; the scatter issues from the comm cursor
        // (which the arrival wait already advanced).
        dev.memcpy_h2d_direct(a.staging.device_ptr(), src, msg.payload_bytes);
      } else {
        vgpu::LaneScope h2d_scope(tl, comm_lane >= 0 ? h2d_lane : -1);
        dev.memcpy_h2d(a.staging.device_ptr(), src, msg.payload_bytes);
        if (tl != nullptr) {
          a.uploaded_at = tl->now(h2d_lane);
        }
      }
      RAMR_REQUIRE(ms.fully_consumed(), "aggregated message from rank " << peer
                   << " not fully consumed: " << ms.read_position() << " of "
                   << ms.size());
      arrived.push_back(std::move(a));
    }
    for (const Arrived& a : arrived) {
      const Plan& plan = unpack_plans_.at(a.peer);
      if (plan.segs.total_threads() == 0) {
        continue;
      }
      vgpu::AnnotationScope unpack_annotation(ctx_->clock, "xfer:unpack");
      if (tl != nullptr) {
        // The scatter cannot start before its payload is device-resident.
        tl->advance(comm_lane, a.uploaded_at);
      }
      const std::vector<util::View> views =
          resolve_views(plan, /*src_side=*/false);
      const PlanSeg* ops = plan.ops.data();
      const util::View* v = views.data();
      const double* in = a.staging.device_ptr();
      const auto scatter_body = [=](std::size_t s, int i, int j) {
        const PlanSeg& op = ops[s];
        v[s](i, j) = in[op.payload_base +
                        static_cast<std::int64_t>(j - op.run_jlo) * op.run_w +
                        (i - op.run_ilo)];
      };
      if (!multi_device_) {
        vgpu::LaunchTagScope tag_scope(&dev, vgpu::LaunchTag::kTransferUnpack);
        dev.launch_batched(stream, plan.segs, kXferCost, scatter_body);
      } else {
        // One scatter launch per destination device, all reading the
        // message's staging buffer at the global payload offsets. Each
        // partition's lane forks from the comm cursor, which the arrival
        // wait and upload already advanced — devices scatter concurrently
        // but never before their payload is resident.
        for (const DevicePart& part : unpack_parts_.at(a.peer)) {
          vgpu::Stream part_stream(*part.dev, "xfer");
          part_stream.bind_lane(device_lane(tl, comm_lane, part.dev));
          vgpu::LaunchTagScope tag_scope(part.dev,
                                         vgpu::LaunchTag::kTransferUnpack);
          part.dev->launch_batched(part_stream, part.segs, kXferCost,
                                   scatter_body);
        }
      }
    }
    if (!flight_sends_.empty()) {
      ctx_->comm->wait_all(flight_sends_);
    }
  }
  if (tl != nullptr) {
    // Join: the exchange's writes are visible to the caller only once
    // the comm lane — and, on a multi-device rank, every per-device
    // transfer lane this exchange used — has drained.
    vgpu::Event done;
    done.record(stream);
    double join = done.timestamp();
    for (const int lane : flight_lanes_) {
      join = std::max(join, tl->now(lane));
    }
    tl->advance(tl->active_lane(), join);
  }
}

void TransferSchedule::execute_legacy() {
  // Per-transaction path over PatchData::pack_stream / unpack_stream /
  // copy: the fallback for data without view export, and the
  // differential-testing reference for the compiled plans (identical
  // wire format, identical plan-order apply).
  const int me = ctx_->my_rank;

  // 1. Post every receive before any packing happens.
  std::map<int, simmpi::Request> recvs;
  for (const auto& [peer, msg] : recv_messages_) {
    (void)msg;
    recvs.emplace(peer, ctx_->comm->irecv(peer, tag_));
  }

  // 2. One aggregated message per destination peer: exact-size
  //    preallocation, fused pack (one modeled PCIe crossing for the whole
  //    buffer when the data is device-resident), single isend.
  std::vector<pdat::MessageStream> send_streams;
  send_streams.reserve(send_messages_.size());
  std::vector<simmpi::Request> sends;
  sends.reserve(send_messages_.size());
  for (const auto& [peer, msg] : send_messages_) {
    pdat::MessageStream ms;
    ms.reserve(msg.wire_bytes);
    MessageHeader header;
    header.transaction_count =
        static_cast<std::uint32_t>(msg.transaction_indices.size());
    header.payload_bytes = msg.payload_bytes;
    ms.write(header);
    {
      vgpu::TransferBatch batch(ctx_->device);
      vgpu::LaunchTagScope tag_scope(plan_device_,
                                     vgpu::LaunchTag::kTransferPack);
      for (const std::size_t i : msg.transaction_indices) {
        bindings_[i].src->pack_stream(ms, *geometry_[i].overlap);
      }
    }
    RAMR_REQUIRE(ms.size() == msg.wire_bytes,
                 "aggregated message to rank " << peer << " packed "
                 << ms.size() << " bytes, planned " << msg.wire_bytes);
    send_streams.push_back(std::move(ms));
    sends.push_back(ctx_->comm->isend(peer, tag_, send_streams.back().data(),
                                      send_streams.back().size()));
  }

  // 3. Stage every LOCAL transaction's source before any apply write —
  //    the same pack-then-apply snapshot a remote peer performs (remote
  //    payloads are always packed before the apply phase), so a local
  //    copy can never observe this exchange's writes. Without this,
  //    seam values of node/side data could depend on the rank layout
  //    (an in-place serial copy chains through earlier writes, a packed
  //    remote copy does not). The absorbing batch keeps the modeled PCIe
  //    account clean: local staging never crosses the bus.
  std::map<std::size_t, pdat::MessageStream> local_streams;
  {
    vgpu::TransferBatch local_batch(ctx_->device, /*absorb=*/true);
    vgpu::LaunchTagScope tag_scope(plan_device_, vgpu::LaunchTag::kLocalCopy);
    for (std::size_t i = 0; i < transactions_.size(); ++i) {
      const Transaction& t = transactions_[i];
      if (t.src_owner != me || t.dst_owner != me) {
        continue;
      }
      pdat::MessageStream ms;
      bindings_[i].src->pack_stream(ms, *geometry_[i].overlap);
      local_streams.emplace(i, std::move(ms));
    }
  }

  // 4. Apply in plan order. Each peer's stream is opened (and its frame
  //    validated) on first use and then consumed sequentially — the
  //    sender packed it in the same replicated plan order. Each received
  //    aggregated buffer is charged as ONE modeled PCIe crossing when it
  //    is opened; the absorbing batch swallows the per-transaction
  //    staging uploads, which interleave across peers and are part of
  //    those already-charged buffers (and the local snapshot downloads,
  //    which never really cross the bus).
  std::map<int, pdat::MessageStream> streams;
  vgpu::TransferBatch unpack_batch(
      recvs.empty() && local_streams.empty() ? nullptr : ctx_->device,
      /*absorb=*/true);
  for (std::size_t i = 0; i < transactions_.size(); ++i) {
    const Transaction& t = transactions_[i];
    if (t.dst_owner != me) {
      continue;
    }
    if (t.src_owner == me) {
      vgpu::LaunchTagScope tag_scope(plan_device_,
                                     vgpu::LaunchTag::kLocalCopy);
      auto ls = local_streams.find(i);
      RAMR_DEBUG_ASSERT(ls != local_streams.end());
      bindings_[i].dst->unpack_stream(ls->second, *geometry_[i].overlap);
      continue;
    }
    auto it = streams.find(t.src_owner);
    if (it == streams.end()) {
      auto rit = recvs.find(t.src_owner);
      RAMR_REQUIRE(rit != recvs.end(), "no posted receive for rank "
                   << t.src_owner);
      ctx_->comm->wait(rit->second);
      pdat::MessageStream ms(rit->second.take_payload());
      const PeerMessage& expected = recv_messages_.at(t.src_owner);
      RAMR_REQUIRE(ms.size() == expected.wire_bytes,
                   "aggregated message from rank " << t.src_owner << " is "
                   << ms.size() << " bytes, planned " << expected.wire_bytes);
      const auto header = ms.read<MessageHeader>();
      RAMR_REQUIRE(header.transaction_count ==
                           expected.transaction_indices.size() &&
                       header.payload_bytes == expected.payload_bytes,
                   "aggregated message frame mismatch from rank "
                   << t.src_owner);
      if (ctx_->device != nullptr) {
        ctx_->device->charge_h2d_crossing(expected.payload_bytes);
      }
      it = streams.emplace(t.src_owner, std::move(ms)).first;
    }
    vgpu::LaunchTagScope tag_scope(plan_device_,
                                   vgpu::LaunchTag::kTransferUnpack);
    bindings_[i].dst->unpack_stream(it->second, *geometry_[i].overlap);
  }
  for (auto& [peer, ms] : streams) {
    RAMR_REQUIRE(ms.fully_consumed(), "aggregated message from rank " << peer
                 << " not fully consumed: " << ms.read_position() << " of "
                 << ms.size());
  }
  RAMR_REQUIRE(streams.size() == recvs.size(),
               "posted receives without matching transactions");
  if (!sends.empty()) {
    ctx_->comm->wait_all(sends);
  }
}

}  // namespace ramr::xfer
