// Parallel execution context shared by all communication schedules on a
// rank. Serial runs use a default-constructed context (null communicator).
//
// Tags are allocated from a monotonically increasing counter at schedule
// construction; every rank constructs schedules in the same order (the
// metadata is replicated), so tags agree without negotiation.
#pragma once

#include "simmpi/communicator.hpp"
#include "vgpu/device.hpp"
#include "vgpu/sim_clock.hpp"
#include "vgpu/timeline.hpp"

namespace ramr::vgpu {
class Topology;
}  // namespace ramr::vgpu

namespace ramr::xfer {

/// Rank-local handle to the (simulated) MPI world.
struct ParallelContext {
  int my_rank = 0;
  int world_size = 1;
  simmpi::Communicator* comm = nullptr;  ///< null when world_size == 1
  /// Clock charged for host-side mesh-management work (schedule
  /// construction, box calculus); may be null in unit tests.
  vgpu::SimClock* clock = nullptr;
  /// The rank's compute device, when data is device-resident: the
  /// legacy transfer path fuses all staging copies of one aggregated
  /// message into a single modeled PCIe crossing on it. Null disables
  /// fusing (host-resident data, or tests that count raw crossings).
  vgpu::Device* device = nullptr;
  /// Execute schedules through the compiled per-peer transfer plans (one
  /// fused pack/unpack launch per message, one local-copy launch per
  /// exchange) whenever the data can export device views. False forces
  /// the per-transaction legacy path (differential testing, ablation).
  bool compiled_transfer = true;
  /// The rank's device complex when it has more than one device. With a
  /// topology set, compiled plans treat cross-device endpoints as the
  /// FAST path — per-(src,dst)-device launch partitions with peer-lane
  /// copies — instead of demoting the exchange to the legacy path.
  vgpu::Topology* topology = nullptr;
  /// GPU-direct RDMA wire mode: packed send buffers ship NIC-direct, so
  /// the compiled path skips the modeled per-message D2H before isend and
  /// H2D after receive (wire time is unchanged). Compiled path only.
  bool gpu_direct = false;
  /// Executes that wanted the compiled path but demoted to legacy (data
  /// could not export views, or endpoints spanned devices without a
  /// topology). Single-device runs assert this stays zero — a silent
  /// demotion is a performance bug, not a correctness fallback.
  std::uint64_t plan_fallbacks = 0;
  /// Multi-lane timing model of the async-overlap runs, or null for the
  /// synchronous single-cursor model. When set, split-phase schedule
  /// execution charges its pack/send legs on the "comm" lane so their
  /// wire time overlaps compute issued between begin and finish
  /// (docs/async_overlap.md).
  vgpu::Timeline* timeline = nullptr;
  /// Widened overlap window (requires a timeline): every stencil stage
  /// splits into an interior sweep that overlaps its halo exchange and a
  /// rind sweep after it, and RefineSchedule::fill_begin() additionally
  /// starts the strictly-interior part of the coarse gather so its wire
  /// time hides too. False = the single EOS window of the original
  /// async-overlap subsystem (ablation; docs/async_overlap.md).
  bool wide_overlap = false;
  int next_tag = 1 << 10;

  int allocate_tag() { return next_tag++; }

  bool is_serial() const { return world_size <= 1; }

  /// Charges `ops` box-calculus operations at a sustained host rate
  /// (~50 ns per box intersection/removal on one core). This is the
  /// SAMRAI mesh-management time the paper's §V-B identifies as the
  /// serial fraction behind the strong-scaling falloff.
  void charge_host_ops(double ops) {
    if (clock != nullptr) {
      clock->charge(ops * 50.0e-9);
    }
  }
};

}  // namespace ramr::xfer
