#include "xfer/coarsen_schedule.hpp"

#include <algorithm>

#include "pdat/box_overlap.hpp"
#include "util/error.hpp"
#include "vgpu/topology.hpp"

namespace ramr::xfer {

using hier::GlobalPatch;
using mesh::Box;
using mesh::BoxList;
using mesh::IntVector;

namespace {

/// Forks `dev`'s compute lane from the caller's active lane for a
/// per-device fan-out scope. Returns -1 — a no-op LaneScope — without a
/// timeline (single-device ranks pass tl == nullptr), so the launches
/// stay on the caller's lane exactly as before.
int fork_gpu_lane(vgpu::Timeline* tl, const vgpu::Device* dev) {
  if (tl == nullptr || dev == nullptr) {
    return -1;
  }
  const int lane = tl->lane(vgpu::Topology::gpu_lane_name(dev->ordinal()));
  tl->advance(lane, tl->now(tl->active_lane()));
  return lane;
}

}  // namespace

std::unique_ptr<CoarsenSchedule> CoarsenAlgorithm::create_schedule(
    std::shared_ptr<hier::PatchLevel> coarse_level,
    std::shared_ptr<hier::PatchLevel> fine_level,
    const hier::VariableDatabase& db, ParallelContext& ctx) const {
  RAMR_REQUIRE(coarse_level != nullptr && fine_level != nullptr,
               "coarsen schedule needs both levels");
  RAMR_REQUIRE(!items_.empty(), "coarsen schedule with no items");

  auto sched = std::unique_ptr<CoarsenSchedule>(new CoarsenSchedule());
  sched->items_ = items_;
  sched->coarse_level_ = coarse_level;
  sched->fine_level_ = fine_level;
  sched->db_ = &db;
  sched->ctx_ = &ctx;
  sched->engine_.initialize(ctx);

  // Overlapping node-seam contributions must land identically on every
  // rank layout, so the plan order (fine x coarse metadata order, items
  // within) is the apply order on every rank — the engine guarantees it.
  // Edges between two other ranks are skipped: the retained subset keeps
  // its relative order, which is all a peer message depends on.
  const int me = ctx.my_rank;
  const IntVector ratio = fine_level->ratio_to_coarser();
  std::int64_t global_edges = 0;
  for (const GlobalPatch& f : fine_level->global_patches()) {
    const Box covered = f.box.coarsen(ratio);
    for (const GlobalPatch& c : coarse_level->global_patches()) {
      const Box region = covered.intersect(c.box);
      if (region.empty()) {
        continue;
      }
      ++global_edges;
      if (f.owner_rank != me && c.owner_rank != me) {
        continue;
      }
      for (std::size_t n = 0; n < items_.size(); ++n) {
        pdat::BoxOverlap ov = pdat::overlap_for_region(
            db.variable(items_[n].var_id).centering, BoxList(region));
        if (ov.empty()) {
          continue;
        }
        sched->xacts_.push_back(CoarsenSchedule::Xact{f.global_id, c.global_id, n, region,
                                     std::move(ov)});
        sched->engine_.add(Transaction{f.owner_rank, c.owner_rank,
                                       sched->xacts_.size() - 1});
      }
    }
  }
  sched->engine_.finalize(*sched);
  // The box-calculus cost of the replicated plan is identical on every
  // rank (global_edges, not the locally retained transaction count).
  ctx.charge_host_ops(4.0 * static_cast<double>(fine_level->patch_count()) *
                          coarse_level->patch_count() +
                      16.0 * static_cast<double>(global_edges));
  return sched;
}

void CoarsenSchedule::coarsen_data() {
  prepare_scratch();
  engine_.execute(*this);
  scratch_cache_.clear();
}

void CoarsenSchedule::prepare_scratch() {
  // Unlike the per-transaction path this replaced (allocate, coarsen,
  // consume, free — one scratch live at a time), the batched pre-pass
  // holds every locally-sourced transaction's scratch at once: the sum
  // over all coarse overlap regions and items, ~1/r^2 of the fine
  // level's field footprint per cell item. The scratch stays alive
  // through the engine's (fused) pack/copy and is dropped as one batch
  // when coarsen_data() finishes.
  scratch_cache_.clear();
  scratch_cache_.resize(xacts_.size());
  const IntVector ratio = fine_level_->ratio_to_coarser();
  std::vector<std::vector<CoarsenTask>> tasks_by_item(items_.size());
  for (std::size_t h = 0; h < xacts_.size(); ++h) {
    const Xact& x = xacts_[h];
    const CoarsenItem& item = items_[x.item];
    const auto fine = fine_level_->local_patch(x.fine_gid);
    if (fine == nullptr) {
      continue;  // remote fine source: its owner coarsens and sends
    }
    // Scratch follows the fine source patch's device: the coarsening
    // kernel reads the fine arrays, so source and scratch must be
    // device-local on a multi-device rank.
    vgpu::Device* dev = nullptr;
    if (ctx_->topology != nullptr) {
      dev = &ctx_->topology->device(fine->device_ordinal());
    }
    auto scratch =
        db_->factory(item.var_id)
            .allocate_with_ghosts_on(x.coarse_cells, IntVector::zero(), dev);
    const pdat::PatchData* aux =
        item.aux_var_id >= 0 ? &fine->data(item.aux_var_id) : nullptr;
    RAMR_REQUIRE(!item.op->needs_aux() || aux != nullptr,
                 "operator " << item.op->name() << " needs an aux field");
    tasks_by_item[x.item].push_back(CoarsenTask{
        scratch.get(), &fine->data(item.var_id), aux, x.coarse_cells});
    scratch_cache_[h] = std::move(scratch);
  }
  // Per-device fan-out: each group's coarsening launches ride the fine
  // patches' device lane, forked from the caller's lane; the caller
  // rejoins at the slowest device once every item has been issued.
  vgpu::Timeline* tl =
      ctx_->topology != nullptr && ctx_->topology->device_count() > 1
          ? ctx_->timeline
          : nullptr;
  double join = tl != nullptr ? tl->now(tl->active_lane()) : 0.0;
  for (std::size_t n = 0; n < items_.size(); ++n) {
    if (tasks_by_item[n].empty()) {
      continue;
    }
    // One fused call per destination device: the operator charges the
    // whole batch to its first task's device, and a multi-device rank's
    // scratch is spread over the fine patches' devices.
    std::vector<const vgpu::Device*> seen;
    std::vector<CoarsenTask> group;
    for (const CoarsenTask& probe : tasks_by_item[n]) {
      const vgpu::Device* key = probe.dst->transfer_device();
      bool visited = false;
      for (const vgpu::Device* d : seen) {
        visited = visited || d == key;
      }
      if (visited) {
        continue;
      }
      seen.push_back(key);
      group.clear();
      for (const CoarsenTask& t : tasks_by_item[n]) {
        if (t.dst->transfer_device() == key) {
          group.push_back(t);
        }
      }
      vgpu::LaneScope scope(tl, fork_gpu_lane(tl, key));
      items_[n].op->coarsen_batched(group, ratio);
      if (tl != nullptr) {
        join = std::max(join, tl->now(tl->active_lane()));
      }
    }
  }
  if (tl != nullptr) {
    tl->advance(tl->active_lane(), join);
  }
}

TransferGeometry CoarsenSchedule::geometry(std::size_t handle) const {
  const Xact& x = xacts_[handle];
  TransferGeometry g;
  g.overlap = &x.overlap;
  g.depth = db_->variable(items_[x.item].var_id).depth;
  // Destination-object id for the engine's write clipping: every
  // contribution targets one (coarse patch, item) datum; node-seam
  // contributions from adjacent fine patches overlap there and must land
  // last-writer-wins in plan order.
  g.dst_slot =
      x.coarse_gid * static_cast<int>(items_.size()) + static_cast<int>(x.item);
  return g;
}

TransferEndpoints CoarsenSchedule::endpoints(std::size_t handle) {
  const Xact& x = xacts_[handle];
  TransferEndpoints ep;
  ep.src = scratch_cache_[handle].get();  // null when the fine source is remote
  if (const auto coarse = coarse_level_->local_patch(x.coarse_gid)) {
    ep.dst = &coarse->data(items_[x.item].var_id);
  }
  return ep;
}

}  // namespace ramr::xfer
