#include "xfer/coarsen_schedule.hpp"

#include <map>

#include "pdat/box_overlap.hpp"
#include "util/error.hpp"

namespace ramr::xfer {

using hier::GlobalPatch;
using mesh::Box;
using mesh::BoxList;
using mesh::IntVector;

std::unique_ptr<CoarsenSchedule> CoarsenAlgorithm::create_schedule(
    std::shared_ptr<hier::PatchLevel> coarse_level,
    std::shared_ptr<hier::PatchLevel> fine_level,
    const hier::VariableDatabase& db, ParallelContext& ctx) const {
  RAMR_REQUIRE(coarse_level != nullptr && fine_level != nullptr,
               "coarsen schedule needs both levels");
  RAMR_REQUIRE(!items_.empty(), "coarsen schedule with no items");

  auto sched = std::unique_ptr<CoarsenSchedule>(new CoarsenSchedule());
  sched->items_ = items_;
  sched->coarse_level_ = coarse_level;
  sched->fine_level_ = fine_level;
  sched->db_ = &db;
  sched->ctx_ = &ctx;
  sched->tag_ = ctx.allocate_tag();

  const IntVector ratio = fine_level->ratio_to_coarser();
  for (const GlobalPatch& f : fine_level->global_patches()) {
    const Box covered = f.box.coarsen(ratio);
    for (const GlobalPatch& c : coarse_level->global_patches()) {
      const Box region = covered.intersect(c.box);
      if (region.empty()) {
        continue;
      }
      CoarsenSchedule::SyncEdge edge;
      edge.fine_gid = f.global_id;
      edge.coarse_gid = c.global_id;
      edge.fine_owner = f.owner_rank;
      edge.coarse_owner = c.owner_rank;
      edge.coarse_cells = region;
      sched->edges_.push_back(edge);
    }
  }
  ctx.charge_host_ops(4.0 * static_cast<double>(fine_level->patch_count()) *
                          coarse_level->patch_count() +
                      16.0 * sched->edges_.size());
  return sched;
}

void CoarsenSchedule::coarsen_data() {
  const int me = ctx_->my_rank;
  const IntVector ratio = fine_level_->ratio_to_coarser();

  // Pass 1 (fine owners): coarsen into scratch; ship remote edges, stash
  // local ones so pass 2 can apply every contribution in plan order
  // (overlapping node-seam writes must land identically on every rank
  // layout).
  std::map<std::size_t, std::vector<std::unique_ptr<pdat::PatchData>>> stashed;
  for (std::size_t idx = 0; idx < edges_.size(); ++idx) {
    const SyncEdge& e = edges_[idx];
    if (e.fine_owner != me) {
      continue;
    }
    const auto fine = fine_level_->local_patch(e.fine_gid);
    RAMR_REQUIRE(fine != nullptr, "missing local fine patch");

    // Scratch at coarse resolution covering exactly the synced region.
    std::vector<std::unique_ptr<pdat::PatchData>> scratch(items_.size());
    for (std::size_t n = 0; n < items_.size(); ++n) {
      const CoarsenItem& item = items_[n];
      scratch[n] = db_->factory(item.var_id)
                       .allocate_with_ghosts(e.coarse_cells, IntVector::zero());
      const pdat::PatchData* aux =
          item.aux_var_id >= 0 ? &fine->data(item.aux_var_id) : nullptr;
      RAMR_REQUIRE(!item.op->needs_aux() || aux != nullptr,
                   "operator " << item.op->name() << " needs an aux field");
      item.op->coarsen(*scratch[n], fine->data(item.var_id), aux,
                       e.coarse_cells, ratio);
    }

    if (e.coarse_owner == me) {
      stashed.emplace(idx, std::move(scratch));
    } else {
      pdat::MessageStream ms;
      for (std::size_t n = 0; n < items_.size(); ++n) {
        const pdat::BoxOverlap ov = pdat::overlap_for_region(
            db_->variable(items_[n].var_id).centering, BoxList(e.coarse_cells));
        scratch[n]->pack_stream(ms, ov);
      }
      ctx_->comm->send(e.coarse_owner, tag_, ms.data(), ms.size());
    }
  }

  // Pass 2 (coarse owners): apply all contributions in plan order.
  for (std::size_t idx = 0; idx < edges_.size(); ++idx) {
    const SyncEdge& e = edges_[idx];
    if (e.coarse_owner != me) {
      continue;
    }
    const auto coarse = coarse_level_->local_patch(e.coarse_gid);
    RAMR_REQUIRE(coarse != nullptr, "missing local coarse patch");
    if (e.fine_owner == me) {
      const auto it = stashed.find(idx);
      RAMR_REQUIRE(it != stashed.end(), "missing stashed sync scratch");
      for (std::size_t n = 0; n < items_.size(); ++n) {
        const pdat::BoxOverlap ov = pdat::overlap_for_region(
            db_->variable(items_[n].var_id).centering, BoxList(e.coarse_cells));
        coarse->data(items_[n].var_id).copy(*it->second[n], ov);
      }
      stashed.erase(it);
    } else {
      pdat::MessageStream ms(ctx_->comm->recv(e.fine_owner, tag_));
      for (std::size_t n = 0; n < items_.size(); ++n) {
        const pdat::BoxOverlap ov = pdat::overlap_for_region(
            db_->variable(items_[n].var_id).centering, BoxList(e.coarse_cells));
        coarse->data(items_[n].var_id).unpack_stream(ms, ov);
      }
      RAMR_REQUIRE(ms.fully_consumed(), "sync message size mismatch");
    }
  }
}

std::uint64_t CoarsenSchedule::bytes_sent_per_sync() const {
  const int me = ctx_->my_rank;
  std::uint64_t bytes = 0;
  for (const SyncEdge& e : edges_) {
    if (e.fine_owner != me || e.coarse_owner == me) {
      continue;
    }
    for (const CoarsenItem& item : items_) {
      const pdat::BoxOverlap ov = pdat::overlap_for_region(
          db_->variable(item.var_id).centering, BoxList(e.coarse_cells));
      bytes += static_cast<std::uint64_t>(ov.element_count()) *
               static_cast<std::uint64_t>(db_->variable(item.var_id).depth) *
               sizeof(double);
    }
  }
  return bytes;
}

}  // namespace ramr::xfer
