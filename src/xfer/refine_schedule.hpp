// RefineAlgorithm / RefineSchedule: fill patch data (ghost regions, or
// whole new patches during regridding) from three sources, in the order
// the paper describes (§II):
//   (i)   same-level neighbours (copy, or device-pack -> MPI -> unpack
//         when the neighbour lives on another rank, Fig. 4),
//   (ii)  the next coarser level (gather coarse data into a device
//         scratch region, then apply a data-parallel RefineOperator),
//   (iii) physical boundary conditions (application strategy).
//
// The schedule is the precomputed communication plan; executing it moves
// data. All ranks compute identical plans from the replicated level
// metadata, so matching sends/receives need no negotiation. Execution is
// delegated to the shared TransferSchedule engine: planning expands every
// (edge, variable) pair into a Transaction with a precomputed overlap,
// and the schedule implements TransferDelegate — describing each
// transaction's geometry once (the engine compiles fused per-message
// transfer plans from it) and binding endpoint objects each fill().
#pragma once

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "hier/patch_hierarchy.hpp"
#include "xfer/parallel_context.hpp"
#include "xfer/physical_boundary.hpp"
#include "xfer/refine_operator.hpp"
#include "xfer/transfer_schedule.hpp"

namespace ramr::xfer {

/// One quantity handled by a refine schedule.
struct RefineItem {
  int var_id = -1;
  /// Interpolator for coarse->fine fill; when null the variable is only
  /// copied from same-level sources (work arrays, fluxes).
  std::shared_ptr<RefineOperator> op;
};

/// What the schedule fills on each destination patch.
enum class FillMode {
  kGhostsOnly,        ///< halo exchange during time integration
  kInteriorAndGhosts  ///< populating a freshly created level (regrid)
};

/// Builder: register items, then create schedules for levels.
class RefineAlgorithm {
 public:
  void add(RefineItem item) { items_.push_back(std::move(item)); }
  const std::vector<RefineItem>& items() const { return items_; }

  /// Creates a schedule that fills `dst_level` from `src_level` (same
  /// index space; usually dst_level itself, or the old level during
  /// regridding; may be null), from `coarse_level` (next coarser index
  /// space; may be null), and from physical boundary conditions.
  std::unique_ptr<class RefineSchedule> create_schedule(
      std::shared_ptr<hier::PatchLevel> dst_level,
      std::shared_ptr<hier::PatchLevel> src_level,
      std::shared_ptr<hier::PatchLevel> coarse_level,
      const hier::VariableDatabase& db, ParallelContext& ctx,
      PhysicalBoundaryStrategy* bc, FillMode mode) const;

 private:
  std::vector<RefineItem> items_;
};

/// Executable communication plan. Rebuild after any regrid that changes
/// the participating levels (rebuilding also recompiles the engine's
/// fused transfer plans — the plan cache is the schedule's lifetime).
class RefineSchedule : private TransferDelegate {
 public:
  /// Moves the data. May be executed repeatedly (every timestep).
  /// Equivalent to fill_begin() + fill_finish().
  void fill();

  /// Split-phase fill. fill_begin() starts the same-level exchange
  /// (posts receives, fused pack + isend per peer, local ghost copies) —
  /// under a timeline on the comm/network lanes, so its wire time
  /// overlaps whatever the caller runs before fill_finish(). Under
  /// ParallelContext::wide_overlap it also starts the EARLY half of the
  /// coarse gather: the transactions sourced from strictly-interior
  /// coarse data, whose values cannot change before fill_finish() (the
  /// coarse level's own exchange only rewrites its ghost and seam
  /// indices, and the overlapped interior compute sweeps stay off the
  /// boundary shell), so the bulk of the gather's wire time hides too.
  /// Safe to interleave with compute that neither writes the exchanged
  /// variables' interiors nor reads their ghosts — the ghost-free
  /// interior sweeps of the stencil stages (hydro::SweepPart), of which
  /// the EOS stage is the trivial whole-stage case. fill_finish()
  /// completes the same-level exchange and the early gather, runs the
  /// LATE gather (coarse boundary-shell and ghost sources, which need
  /// the coarse level's finished exchange), then interpolation and the
  /// physical boundaries exactly as fill() does. Launch contents are
  /// identical either way, so split and single-phase fills are
  /// bit-identical by construction.
  void fill_begin();
  void fill_finish();

  /// Wire bytes this rank sends per execution (diagnostics / tests).
  std::uint64_t bytes_sent_per_fill() const {
    return same_engine_.bytes_sent_per_exchange() +
           coarse_engine_.bytes_sent_per_exchange() +
           coarse_late_engine_.bytes_sent_per_exchange();
  }

  /// Aggregated messages this rank sends / receives per execution: at
  /// most one per (peer, exchange phase) regardless of how many patch
  /// edges and variables the fill covers.
  std::uint64_t messages_sent_per_fill() const {
    return same_engine_.messages_sent_per_exchange() +
           coarse_engine_.messages_sent_per_exchange() +
           coarse_late_engine_.messages_sent_per_exchange();
  }
  std::uint64_t messages_received_per_fill() const {
    return same_engine_.messages_received_per_exchange() +
           coarse_engine_.messages_received_per_exchange() +
           coarse_late_engine_.messages_received_per_exchange();
  }

  /// The engine exchanges of one fill (same-level; early coarse gather
  /// from strictly-interior sources; late coarse gather from
  /// boundary-shell and ghost sources), for plan-level observability in
  /// tests.
  const TransferSchedule& same_level_engine() const { return same_engine_; }
  const TransferSchedule& coarse_engine() const { return coarse_engine_; }
  const TransferSchedule& coarse_late_engine() const {
    return coarse_late_engine_;
  }

 private:
  friend class RefineAlgorithm;
  RefineSchedule() = default;

  /// One planned (edge, variable) movement with its precomputed overlap.
  struct Xact {
    enum class Kind {
      kSameLevel,    ///< source patch -> destination patch, same level
      kCoarseGather  ///< coarse patch -> interpolation scratch region
    };
    Kind kind;
    int src_gid;
    int dst_gid;
    std::size_t item;  ///< index into items_
    std::size_t fill;  ///< index into coarse_fills_ (kCoarseGather only)
    pdat::BoxOverlap overlap;
  };

  /// Scratch region on the coarse level feeding one destination patch.
  struct CoarseFill {
    int dst_gid = -1;
    int dst_owner = -1;
    mesh::Box scratch_cells;        ///< coarse cell box of the scratch
    mesh::BoxList fine_fill_cells;  ///< fine cell regions to interpolate
    /// Pieces of scratch_cells no coarse source covers (stencil fringe
    /// outside the coarse level's patch+ghost union), each paired with
    /// the nearest covered box. fill() clamp-fills them after the gather
    /// so interpolation stencils read defined, locally plausible values
    /// instead of the raw allocation (seed bug: NaN densities after
    /// regrids near coverage corners).
    std::vector<std::pair<mesh::Box, mesh::Box>> uncovered_clamp;
    /// The covered complement (scratch_cells minus the uncovered pieces):
    /// the clamp fill must not overwrite any node/side seam index these
    /// boxes own, however the cell-space pieces adjoin.
    mesh::BoxList covered;
  };

  // TransferDelegate (shared engine: geometry at compile, endpoints at
  // execute).
  TransferGeometry geometry(std::size_t handle) const override;
  TransferEndpoints endpoints(std::size_t handle) override;

  void allocate_scratch();
  void clamp_fill_uncovered_scratch();
  void interpolate_coarse_fills();
  void execute_physical_boundaries();

  std::vector<RefineItem> items_;
  std::vector<int> var_ids_;
  std::shared_ptr<hier::PatchLevel> dst_level_;
  std::shared_ptr<hier::PatchLevel> src_level_;
  std::shared_ptr<hier::PatchLevel> coarse_level_;
  const hier::VariableDatabase* db_ = nullptr;
  ParallelContext* ctx_ = nullptr;
  PhysicalBoundaryStrategy* bc_ = nullptr;
  FillMode mode_ = FillMode::kGhostsOnly;

  std::vector<Xact> xacts_;
  std::vector<CoarseFill> coarse_fills_;
  TransferSchedule same_engine_;
  /// Early coarse gather: sources strictly inside a coarse patch (at
  /// least one cell off its boundary), whose values are stable between
  /// fill_begin and fill_finish; may therefore start in fill_begin.
  TransferSchedule coarse_engine_;
  /// Late coarse gather: coarse boundary-shell and ghost sources, valid
  /// only after the coarse level's own exchange finished — always
  /// executed whole in fill_finish. Runs after the early engine's
  /// writes, reproducing the pre-split single-engine plan order where
  /// their seam node/side images overlap.
  TransferSchedule coarse_late_engine_;
  /// True while the early coarse engine is in flight (wide_overlap
  /// split fills); scratch is then allocated at begin, not finish.
  bool coarse_in_flight_ = false;

  /// Per-CoarseFill, per-item interpolation scratch; alive only while
  /// fill() runs the coarse exchange.
  std::vector<std::vector<std::unique_ptr<pdat::PatchData>>> scratch_;
};

}  // namespace ramr::xfer
