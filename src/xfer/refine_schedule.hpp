// RefineAlgorithm / RefineSchedule: fill patch data (ghost regions, or
// whole new patches during regridding) from three sources, in the order
// the paper describes (§II):
//   (i)   same-level neighbours (copy, or device-pack -> MPI -> unpack
//         when the neighbour lives on another rank, Fig. 4),
//   (ii)  the next coarser level (gather coarse data into a device
//         scratch region, then apply a data-parallel RefineOperator),
//   (iii) physical boundary conditions (application strategy).
//
// The schedule is the precomputed communication plan; executing it moves
// data. All ranks compute identical plans from the replicated level
// metadata, so matching sends/receives need no negotiation. Execution is
// delegated to the shared TransferSchedule engine: planning expands every
// (edge, variable) pair into a Transaction with a precomputed overlap,
// and each fill() exchanges ONE aggregated message per peer rank.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "hier/patch_hierarchy.hpp"
#include "xfer/parallel_context.hpp"
#include "xfer/physical_boundary.hpp"
#include "xfer/refine_operator.hpp"
#include "xfer/transfer_schedule.hpp"

namespace ramr::xfer {

/// One quantity handled by a refine schedule.
struct RefineItem {
  int var_id = -1;
  /// Interpolator for coarse->fine fill; when null the variable is only
  /// copied from same-level sources (work arrays, fluxes).
  std::shared_ptr<RefineOperator> op;
};

/// What the schedule fills on each destination patch.
enum class FillMode {
  kGhostsOnly,        ///< halo exchange during time integration
  kInteriorAndGhosts  ///< populating a freshly created level (regrid)
};

/// Builder: register items, then create schedules for levels.
class RefineAlgorithm {
 public:
  void add(RefineItem item) { items_.push_back(std::move(item)); }
  const std::vector<RefineItem>& items() const { return items_; }

  /// Creates a schedule that fills `dst_level` from `src_level` (same
  /// index space; usually dst_level itself, or the old level during
  /// regridding; may be null), from `coarse_level` (next coarser index
  /// space; may be null), and from physical boundary conditions.
  std::unique_ptr<class RefineSchedule> create_schedule(
      std::shared_ptr<hier::PatchLevel> dst_level,
      std::shared_ptr<hier::PatchLevel> src_level,
      std::shared_ptr<hier::PatchLevel> coarse_level,
      const hier::VariableDatabase& db, ParallelContext& ctx,
      PhysicalBoundaryStrategy* bc, FillMode mode) const;

 private:
  std::vector<RefineItem> items_;
};

/// Executable communication plan. Rebuild after any regrid that changes
/// the participating levels.
class RefineSchedule : private TransactionDelegate {
 public:
  /// Moves the data. May be executed repeatedly (every timestep).
  void fill();

  /// Wire bytes this rank sends per execution (diagnostics / tests).
  std::uint64_t bytes_sent_per_fill() const {
    return same_engine_.bytes_sent_per_exchange() +
           coarse_engine_.bytes_sent_per_exchange();
  }

  /// Aggregated messages this rank sends / receives per execution: at
  /// most one per (peer, exchange phase) regardless of how many patch
  /// edges and variables the fill covers.
  std::uint64_t messages_sent_per_fill() const {
    return same_engine_.messages_sent_per_exchange() +
           coarse_engine_.messages_sent_per_exchange();
  }
  std::uint64_t messages_received_per_fill() const {
    return same_engine_.messages_received_per_exchange() +
           coarse_engine_.messages_received_per_exchange();
  }

 private:
  friend class RefineAlgorithm;
  RefineSchedule() = default;

  /// One planned (edge, variable) movement with its precomputed overlap.
  struct Xact {
    enum class Kind {
      kSameLevel,    ///< source patch -> destination patch, same level
      kCoarseGather  ///< coarse patch -> interpolation scratch region
    };
    Kind kind;
    int src_gid;
    int dst_gid;
    std::size_t item;  ///< index into items_
    std::size_t fill;  ///< index into coarse_fills_ (kCoarseGather only)
    pdat::BoxOverlap overlap;
  };

  /// Scratch region on the coarse level feeding one destination patch.
  struct CoarseFill {
    int dst_gid = -1;
    int dst_owner = -1;
    mesh::Box scratch_cells;        ///< coarse cell box of the scratch
    mesh::BoxList fine_fill_cells;  ///< fine cell regions to interpolate
  };

  // TransactionDelegate (shared engine callbacks).
  std::size_t stream_size(std::size_t handle) const override;
  void pack(pdat::MessageStream& stream, std::size_t handle) override;
  void unpack(pdat::MessageStream& stream, std::size_t handle) override;
  void copy_local(std::size_t handle) override;

  void allocate_scratch();
  void interpolate_coarse_fills();
  void execute_physical_boundaries();

  std::vector<RefineItem> items_;
  std::vector<int> var_ids_;
  std::shared_ptr<hier::PatchLevel> dst_level_;
  std::shared_ptr<hier::PatchLevel> src_level_;
  std::shared_ptr<hier::PatchLevel> coarse_level_;
  const hier::VariableDatabase* db_ = nullptr;
  ParallelContext* ctx_ = nullptr;
  PhysicalBoundaryStrategy* bc_ = nullptr;
  FillMode mode_ = FillMode::kGhostsOnly;

  std::vector<Xact> xacts_;
  std::vector<CoarseFill> coarse_fills_;
  TransferSchedule same_engine_;
  TransferSchedule coarse_engine_;

  /// Per-CoarseFill, per-item interpolation scratch; alive only while
  /// fill() runs the coarse exchange.
  std::vector<std::vector<std::unique_ptr<pdat::PatchData>>> scratch_;
};

}  // namespace ramr::xfer
