// RefineAlgorithm / RefineSchedule: fill patch data (ghost regions, or
// whole new patches during regridding) from three sources, in the order
// the paper describes (§II):
//   (i)   same-level neighbours (copy, or device-pack -> MPI -> unpack
//         when the neighbour lives on another rank, Fig. 4),
//   (ii)  the next coarser level (gather coarse data into a device
//         scratch region, then apply a data-parallel RefineOperator),
//   (iii) physical boundary conditions (application strategy).
//
// The schedule is the precomputed communication plan; executing it moves
// data. All ranks compute identical plans from the replicated level
// metadata, so matching sends/receives need no negotiation.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "hier/patch_hierarchy.hpp"
#include "xfer/parallel_context.hpp"
#include "xfer/physical_boundary.hpp"
#include "xfer/refine_operator.hpp"

namespace ramr::xfer {

/// One quantity handled by a refine schedule.
struct RefineItem {
  int var_id = -1;
  /// Interpolator for coarse->fine fill; when null the variable is only
  /// copied from same-level sources (work arrays, fluxes).
  std::shared_ptr<RefineOperator> op;
};

/// What the schedule fills on each destination patch.
enum class FillMode {
  kGhostsOnly,        ///< halo exchange during time integration
  kInteriorAndGhosts  ///< populating a freshly created level (regrid)
};

/// Builder: register items, then create schedules for levels.
class RefineAlgorithm {
 public:
  void add(RefineItem item) { items_.push_back(std::move(item)); }
  const std::vector<RefineItem>& items() const { return items_; }

  /// Creates a schedule that fills `dst_level` from `src_level` (same
  /// index space; usually dst_level itself, or the old level during
  /// regridding; may be null), from `coarse_level` (next coarser index
  /// space; may be null), and from physical boundary conditions.
  std::unique_ptr<class RefineSchedule> create_schedule(
      std::shared_ptr<hier::PatchLevel> dst_level,
      std::shared_ptr<hier::PatchLevel> src_level,
      std::shared_ptr<hier::PatchLevel> coarse_level,
      const hier::VariableDatabase& db, ParallelContext& ctx,
      PhysicalBoundaryStrategy* bc, FillMode mode) const;

 private:
  std::vector<RefineItem> items_;
};

/// Executable communication plan. Rebuild after any regrid that changes
/// the participating levels.
class RefineSchedule {
 public:
  /// Moves the data. May be executed repeatedly (every timestep).
  void fill();

  /// Bytes this rank sends per execution (diagnostics / tests).
  std::uint64_t bytes_sent_per_fill() const;

 private:
  friend class RefineAlgorithm;
  RefineSchedule() = default;

  /// A planned transfer between two patches (same index space).
  struct CopyEdge {
    int src_gid = -1;
    int dst_gid = -1;
    int src_owner = -1;
    int dst_owner = -1;
    mesh::Box dst_cell_box;    ///< destination patch box (for clipping)
    mesh::BoxList fill_cells;  ///< cell-space regions to move
  };

  /// Scratch region on the coarse level feeding one destination patch.
  struct CoarseFill {
    int dst_gid = -1;
    int dst_owner = -1;
    mesh::Box scratch_cells;            ///< coarse cell box of the scratch
    std::vector<CopyEdge> gather;       ///< coarse patches -> scratch
    mesh::BoxList fine_fill_cells;      ///< fine cell regions to interpolate
  };

  void execute_same_level();
  void execute_coarse_fill();
  void execute_physical_boundaries();

  std::vector<RefineItem> items_;
  std::vector<int> var_ids_;
  std::shared_ptr<hier::PatchLevel> dst_level_;
  std::shared_ptr<hier::PatchLevel> src_level_;
  std::shared_ptr<hier::PatchLevel> coarse_level_;
  const hier::VariableDatabase* db_ = nullptr;
  ParallelContext* ctx_ = nullptr;
  PhysicalBoundaryStrategy* bc_ = nullptr;
  FillMode mode_ = FillMode::kGhostsOnly;
  int tag_same_ = 0;
  int tag_coarse_ = 0;

  std::vector<CopyEdge> same_level_edges_;
  std::vector<CoarseFill> coarse_fills_;
};

}  // namespace ramr::xfer
