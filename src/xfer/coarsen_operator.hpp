// CoarsenOperator: restricts fine data onto the next coarser index space
// (SAMRAI's CoarsenOperator strategy; paper §IV-B2 and §IV-C). The
// volume- and mass-weighted implementations in src/geom ensure the
// hydrodynamic quantities remain conserved when fine patches overwrite
// the coarse solution.
#pragma once

#include <span>

#include "mesh/box.hpp"
#include "pdat/patch_data.hpp"

namespace ramr::xfer {

/// One application of a coarsen operator inside a fused batch.
struct CoarsenTask {
  pdat::PatchData* dst = nullptr;
  const pdat::PatchData* src = nullptr;
  const pdat::PatchData* src_aux = nullptr;
  mesh::Box coarse_cells;
};

/// Strategy interface for fine-to-coarse restriction.
class CoarsenOperator {
 public:
  virtual ~CoarsenOperator() = default;

  /// Fills `dst` over `coarse_cells` (coarse cell space) from `src`,
  /// whose index space is finer by `ratio`. `src_aux` supplies an
  /// auxiliary fine field when needs_aux() is true (the fine density for
  /// mass weighting).
  virtual void coarsen(pdat::PatchData& dst, const pdat::PatchData& src,
                       const pdat::PatchData* src_aux,
                       const mesh::Box& coarse_cells,
                       const mesh::IntVector& ratio) const = 0;

  /// Applies the operator to every task, fusing the per-task kernels
  /// into ONE launch per component where the implementation supports it
  /// (this default falls back to per-task coarsen()). Task destinations
  /// must not alias, which the schedule's per-transaction scratch
  /// guarantees.
  virtual void coarsen_batched(std::span<const CoarsenTask> tasks,
                               const mesh::IntVector& ratio) const {
    for (const CoarsenTask& t : tasks) {
      coarsen(*t.dst, *t.src, t.src_aux, t.coarse_cells, ratio);
    }
  }

  /// True when the operator requires an auxiliary source field.
  virtual bool needs_aux() const { return false; }

  virtual const char* name() const = 0;
};

}  // namespace ramr::xfer
