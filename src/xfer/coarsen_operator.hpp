// CoarsenOperator: restricts fine data onto the next coarser index space
// (SAMRAI's CoarsenOperator strategy; paper §IV-B2 and §IV-C). The
// volume- and mass-weighted implementations in src/geom ensure the
// hydrodynamic quantities remain conserved when fine patches overwrite
// the coarse solution.
#pragma once

#include "mesh/box.hpp"
#include "pdat/patch_data.hpp"

namespace ramr::xfer {

/// Strategy interface for fine-to-coarse restriction.
class CoarsenOperator {
 public:
  virtual ~CoarsenOperator() = default;

  /// Fills `dst` over `coarse_cells` (coarse cell space) from `src`,
  /// whose index space is finer by `ratio`. `src_aux` supplies an
  /// auxiliary fine field when needs_aux() is true (the fine density for
  /// mass weighting).
  virtual void coarsen(pdat::PatchData& dst, const pdat::PatchData& src,
                       const pdat::PatchData* src_aux,
                       const mesh::Box& coarse_cells,
                       const mesh::IntVector& ratio) const = 0;

  /// True when the operator requires an auxiliary source field.
  virtual bool needs_aux() const { return false; }

  virtual const char* name() const = 0;
};

}  // namespace ramr::xfer
