// Shared execution engine for all communication schedules (the paper's
// Fig. 4 transfer path, aggregated and compiled).
//
// Planning (done by RefineSchedule / CoarsenSchedule) produces a list of
// Transactions — one (source object, destination object, variable,
// overlap) movement each — in a deterministic plan order that every rank
// computes identically from the replicated level metadata. The engine
// groups them into ONE PeerMessage per destination rank, and finalize()
// COMPILES the replicated geometry into persistent transfer plans:
//
//   PackPlan   (per outgoing peer)  — a segment table gathering every
//                                     transaction's source regions into
//                                     the message payload layout,
//   UnpackPlan (per incoming peer)  — a segment table scattering the
//                                     received payload into destination
//                                     arrays,
//   LocalCopyPlan (one per engine)  — a segment table of all on-rank
//                                     device-to-device copies.
//
// execute() then issues ONE fused device launch per plan: one pack launch
// + one PCIe crossing per message sent, one upload + one scatter launch
// per message received, and one local-copy launch per exchange (plus one
// snapshot-gather launch when node/side seam reads alias writes) —
// instead of one launch per (transaction, component, box). Two compile-
// time analyses make the fused launches race-free and deterministic:
// destination regions that overlap in plan order (node seams written by
// several sources) are CLIPPED so only the last plan-order writer touches
// each element, and local-copy reads that alias any write of the exchange
// are SNAPSHOTTED before the apply writes start, so every transferred
// value is the pre-exchange source value — the same pack-then-apply
// semantics a remote transfer always has, independent of the rank
// layout. Plans are cached across timesteps; a regrid rebuilds the
// schedule (and therefore the plans).
//
// Schedules describe their transactions through TransferDelegate
// (geometry once at compile time, endpoint binding each execute); the
// engine owns all marshalling. Data kinds that cannot export device
// views (host arrays, spilled device arrays) — or a context with
// compiled_transfer disabled — run the per-transaction legacy path built
// on PatchData::pack_stream/unpack_stream/copy, kept for differential
// testing and as the wire-compatible fallback.
#pragma once

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "pdat/box_overlap.hpp"
#include "pdat/message_stream.hpp"
#include "pdat/patch_data.hpp"
#include "util/array_view.hpp"
#include "vgpu/launch_batch.hpp"
#include "xfer/parallel_context.hpp"

namespace ramr::xfer {

/// Exact bytes a depth-`depth` double-array PatchData packs for
/// `overlap` — the shared sizing rule both endpoints of a transaction
/// apply to the replicated overlap metadata. Every current PatchData
/// kind can_estimate_stream_size_from_box(), so this equals its
/// data_stream_size(); the engine's packed-size REQUIRE catches any
/// future kind that diverges.
inline std::size_t overlap_stream_size(const pdat::BoxOverlap& overlap,
                                       int depth) {
  return static_cast<std::size_t>(overlap.element_count()) *
         static_cast<std::size_t>(depth) * sizeof(double);
}

/// One planned data movement between two ranks (possibly the same).
struct Transaction {
  int src_owner = -1;
  int dst_owner = -1;
  /// Opaque index into the owning schedule's transaction table; the
  /// engine hands it back through the TransferDelegate calls.
  std::size_t handle = 0;
};

/// Replicated, compile-time description of one transaction. Every rank
/// derives the identical geometry from the shared level metadata; the
/// overlap pointer must stay valid for the schedule's lifetime.
struct TransferGeometry {
  /// Destination-index-space fill regions (per component) + src shift.
  const pdat::BoxOverlap* overlap = nullptr;
  /// Depth planes of the moved variable.
  int depth = 1;
  /// Opaque destination-object id: two transactions may write the same
  /// element only if they share dst_slot. The plan compiler clips
  /// earlier writers against later ones per (dst_slot, component, plane),
  /// reproducing the plan-order last-writer-wins semantics in one fused
  /// race-free launch.
  int dst_slot = 0;
  /// Source-object id in the SAME space as dst_slot, or -1 when the
  /// source object is never a write target of this exchange (scratch,
  /// another level's arrays). Same-level ghost fills of node/side data
  /// read source seam lines that other transactions write; the compiler
  /// snapshots such reads before any apply write (see Plan::staged_segs),
  /// giving local copies the pack-then-apply semantics remote transfers
  /// always had — race-free and independent of the rank layout.
  int src_slot = -1;
};

/// Execute-time binding of a transaction's endpoints on this rank.
struct TransferEndpoints {
  pdat::PatchData* src = nullptr;  ///< null when the source is remote
  pdat::PatchData* dst = nullptr;  ///< null when the destination is remote
};

/// How a concrete schedule describes its transactions. This replaces the
/// callback-per-transaction TransactionDelegate (stream_size / pack /
/// unpack / copy_local): the engine owns all data movement; schedules
/// only describe it, which is what lets the engine fuse a whole message
/// into one launch.
class TransferDelegate {
 public:
  virtual ~TransferDelegate() = default;

  /// Replicated plan geometry of one transaction (sizing, plan
  /// compilation). Must agree between sender and receiver.
  virtual TransferGeometry geometry(std::size_t handle) const = 0;

  /// Binds the transaction's local endpoints for one execute(). Called
  /// after the schedule's per-exchange scratch exists; endpoints whose
  /// owner is another rank are returned null. Object identity may change
  /// between executes (scratch reallocation) — the compiled plans rebind
  /// views each execute — but the geometry may not.
  virtual TransferEndpoints endpoints(std::size_t handle) = 0;
};

/// Aggregated exchange plan: one message per peer rank per execute(),
/// one fused device launch per plan.
class TransferSchedule {
 public:
  TransferSchedule() = default;

  /// Binds the rank context and allocates the exchange's message tag.
  void initialize(ParallelContext& ctx) {
    ctx_ = &ctx;
    tag_ = ctx.allocate_tag();
  }

  /// Appends a transaction; plan order is the add order.
  void add(const Transaction& t) { transactions_.push_back(t); }

  /// Groups transactions into per-peer messages, computes exact message
  /// sizes, and compiles the pack/unpack/local-copy plans. Call once,
  /// after the last add().
  void finalize(const TransferDelegate& delegate);

  /// Runs one exchange. May be called repeatedly (every timestep); plans
  /// compiled by finalize() are reused, only endpoint views rebind.
  /// Equivalent to execute_begin() + execute_finish().
  void execute(TransferDelegate& delegate);

  /// Split-phase execution, compiled-plan path: execute_begin() posts
  /// every receive, issues the fused pack launches + one isend per peer
  /// message, and runs the local-copy apply (snapshot included) — under
  /// an attached timeline (ParallelContext::timeline) all of it on the
  /// "comm" lane, with the wire legs on the network lane, so everything
  /// the caller runs before execute_finish() overlaps the communication.
  /// execute_finish() waits for the messages, uploads + fused-unpacks
  /// them, completes the sends, and joins the comm lane back into the
  /// caller's lane (an Event recorded on the comm stream).
  ///
  /// The data movement and launch contents are identical to execute()'s
  /// — only the modeled timestamps differ — so split and single-phase
  /// execution are bit-identical by construction. The caller must not
  /// touch data the exchange reads or writes between begin and finish.
  /// The legacy per-transaction path cannot split: begin runs the whole
  /// exchange synchronously and finish only clears the in-flight state.
  void execute_begin(TransferDelegate& delegate);
  void execute_finish();

  /// True between execute_begin() and execute_finish().
  bool in_flight() const { return in_flight_; }

  bool empty() const { return transactions_.empty(); }
  std::size_t transaction_count() const { return transactions_.size(); }

  /// Wire bytes this rank sends per execute() (headers included).
  std::uint64_t bytes_sent_per_exchange() const { return bytes_sent_; }

  /// Aggregated messages this rank sends / receives per execute().
  std::uint64_t messages_sent_per_exchange() const {
    return send_messages_.size();
  }
  std::uint64_t messages_received_per_exchange() const {
    return recv_messages_.size();
  }

  // -- Compiled-plan observability (tests, benches) ----------------------

  /// True once finalize() has compiled the transfer plans.
  bool plans_compiled() const { return plans_compiled_; }

  /// Total clipped segments across all compiled plans.
  std::size_t plan_segment_count() const {
    std::size_t n = local_plan_.ops.size();
    for (const auto& [peer, plan] : pack_plans_) {
      (void)peer;
      n += plan.ops.size();
    }
    for (const auto& [peer, plan] : unpack_plans_) {
      (void)peer;
      n += plan.ops.size();
    }
    return n;
  }

  /// How many executes ran the compiled / legacy path.
  std::uint64_t compiled_executions() const { return compiled_executions_; }
  std::uint64_t legacy_executions() const { return legacy_executions_; }

 private:
  /// All transactions flowing between this rank and one peer, in plan
  /// order, with the exact aggregated wire size.
  struct PeerMessage {
    std::vector<std::size_t> transaction_indices;
    std::size_t payload_bytes = 0;
    std::size_t wire_bytes = 0;  ///< payload + header
  };

  /// One rectangle of a fused transfer launch. The segment table holds
  /// the (possibly clipped) iteration box; the op records which
  /// transaction/component/plane it belongs to, run geometry addressing
  /// the payload (pack/unpack: the UNclipped run; local: the clipped
  /// piece, addressing the snapshot buffer), and the dst->src shift.
  struct PlanSeg {
    std::uint32_t txn = 0;    ///< index into transactions_
    std::uint16_t comp = 0;   ///< component index
    std::uint16_t plane = 0;  ///< depth plane
    bool staged = false;      ///< local op reads the pre-apply snapshot
    int run_ilo = 0;          ///< run box for payload/snapshot addressing
    int run_jlo = 0;
    int run_w = 0;
    std::int64_t payload_base = 0;  ///< doubles from the payload/snapshot start
    int shift_i = 0;                ///< dst index - shift = src index
    int shift_j = 0;
  };

  /// A compiled fused launch: segment table + per-segment ops. The local
  /// plan may additionally carry a snapshot stage: segments whose READ
  /// region intersects any write of the exchange (node/side seam lines)
  /// are gathered into a staging buffer before the apply writes start,
  /// so every read observes the pre-exchange state — exactly what a
  /// remote peer's pack would have seen.
  struct Plan {
    vgpu::SegmentTable segs;
    std::vector<PlanSeg> ops;
    std::int64_t payload_doubles = 0;  ///< full message payload (pack/unpack)
    vgpu::SegmentTable staged_segs;    ///< aliased-read subset (local plan)
    std::vector<std::size_t> staged_ops;  ///< indices into ops
    std::int64_t staging_doubles = 0;
  };

  /// One device's share of a fused plan launch (multi-device ranks): the
  /// subset of a Plan's segments whose bound endpoint lives on `dev`.
  /// Segment args carry the GLOBAL op index, so the partition's launch
  /// body indexes the original plan.ops / view arrays unchanged — the
  /// split changes which device is charged, never what is computed.
  struct DevicePart {
    vgpu::Device* dev = nullptr;
    vgpu::SegmentTable segs;
  };

  /// Local-copy ops whose endpoints live on two different devices of the
  /// rank: packed on src_dev into a compact buffer, shipped over the
  /// directed peer link, scattered on dst_dev. Per-op buffer offsets
  /// live in peer_offset_ (indexed by the global op index).
  struct PeerPart {
    vgpu::Device* src_dev = nullptr;
    vgpu::Device* dst_dev = nullptr;
    vgpu::SegmentTable segs;
    std::int64_t doubles = 0;  ///< compact peer-buffer size
  };

  void compile_plans();
  bool bind(TransferDelegate& delegate);
  void build_device_parts();
  void execute_compiled_begin();
  void execute_compiled_finish();
  void execute_local_plan(vgpu::Timeline* tl, int comm_lane);
  void execute_legacy();
  /// Forks `dev`'s per-device transfer lane from the comm lane's cursor
  /// and remembers it for the closing join (multi-device ranks: each
  /// device's plan partitions serialize on their own lane, not on the
  /// single comm lane). Returns comm_lane itself without a timeline.
  int device_lane(vgpu::Timeline* tl, int comm_lane, vgpu::Device* dev);
  std::vector<util::View> resolve_views(const Plan& plan, bool src_side) const;

  ParallelContext* ctx_ = nullptr;
  int tag_ = 0;
  bool finalized_ = false;
  std::vector<Transaction> transactions_;
  /// Per-transaction replicated geometry, cached at finalize().
  std::vector<TransferGeometry> geometry_;
  std::map<int, PeerMessage> send_messages_;  ///< keyed by destination rank
  std::map<int, PeerMessage> recv_messages_;  ///< keyed by source rank
  std::uint64_t bytes_sent_ = 0;

  // Compiled plans (geometry only; views rebind each execute).
  bool plans_compiled_ = false;
  std::map<int, Plan> pack_plans_;    ///< keyed by destination rank
  std::map<int, Plan> unpack_plans_;  ///< keyed by source rank
  Plan local_plan_;

  // Per-execute state.
  std::vector<TransferEndpoints> bindings_;
  vgpu::Device* plan_device_ = nullptr;
  /// Endpoints span several devices of the rank's topology; the compiled
  /// plans execute through the per-device partitions below.
  bool multi_device_ = false;
  std::map<int, std::vector<DevicePart>> pack_parts_;    ///< by dst rank
  std::map<int, std::vector<DevicePart>> unpack_parts_;  ///< by src rank
  std::vector<DevicePart> local_same_parts_;
  std::vector<DevicePart> local_staged_parts_;
  std::vector<PeerPart> local_peer_parts_;
  std::vector<std::int64_t> peer_offset_;  ///< per local op, doubles
  std::uint64_t compiled_executions_ = 0;
  std::uint64_t legacy_executions_ = 0;

  // Split-phase in-flight state (execute_begin .. execute_finish).
  bool in_flight_ = false;
  bool flight_compiled_ = false;
  std::map<int, simmpi::Request> flight_recvs_;
  std::vector<pdat::MessageStream> flight_send_streams_;
  std::vector<simmpi::Request> flight_sends_;
  /// Per-device transfer lanes used this exchange; the closing join
  /// covers them alongside the comm lane.
  std::vector<int> flight_lanes_;
};

}  // namespace ramr::xfer
