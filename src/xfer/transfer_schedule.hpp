// Shared execution engine for all communication schedules (the paper's
// Fig. 4 transfer path, aggregated).
//
// Planning (done by RefineSchedule / CoarsenSchedule) produces a list of
// Transactions — one (source object, destination object, variable,
// overlap) movement each — in a deterministic plan order that every rank
// computes identically from the replicated level metadata. The engine
// groups them into ONE PeerMessage per destination rank and executes an
// exchange as:
//
//   1. post one irecv per source peer (all receives up front),
//   2. per destination peer: preallocate the exact message size, fuse the
//      pack of every transaction into that one contiguous MessageStream
//      (a single modeled PCIe crossing when the data is device-resident),
//      and isend it — one message per peer per exchange,
//   3. apply local transactions and unpack received ones in plan order
//      (seam-overlapping writes must land identically on every rank
//      layout), consuming each peer's stream sequentially.
//
// The per-edge-per-variable pack/send/recv/unpack loops this replaces
// sent O(edges x variables) messages and crossed PCIe once per overlap.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "pdat/box_overlap.hpp"
#include "pdat/message_stream.hpp"
#include "xfer/parallel_context.hpp"

namespace ramr::xfer {

/// Exact bytes a depth-`depth` double-array PatchData packs for
/// `overlap` — the shared sizing rule both endpoints of a transaction
/// apply to the replicated overlap metadata. Every current PatchData
/// kind can_estimate_stream_size_from_box(), so this equals its
/// data_stream_size(); the engine's packed-size REQUIRE catches any
/// future kind that diverges.
inline std::size_t overlap_stream_size(const pdat::BoxOverlap& overlap,
                                       int depth) {
  return static_cast<std::size_t>(overlap.element_count()) *
         static_cast<std::size_t>(depth) * sizeof(double);
}

/// One planned data movement between two ranks (possibly the same).
struct Transaction {
  int src_owner = -1;
  int dst_owner = -1;
  /// Opaque index into the owning schedule's transaction table; the
  /// engine hands it back through the TransactionDelegate callbacks.
  std::size_t handle = 0;
};

/// How a concrete schedule sizes, packs, applies and unpacks its
/// transactions. stream_size() must agree between sender and receiver
/// (both derive it from the replicated overlap metadata).
class TransactionDelegate {
 public:
  virtual ~TransactionDelegate() = default;

  /// Exact bytes pack() appends for this transaction.
  virtual std::size_t stream_size(std::size_t handle) const = 0;

  /// Appends the transaction's payload (source side).
  virtual void pack(pdat::MessageStream& stream, std::size_t handle) = 0;

  /// Consumes the transaction's payload into the destination object.
  virtual void unpack(pdat::MessageStream& stream, std::size_t handle) = 0;

  /// Source and destination live on this rank: move directly (device
  /// copy), no stream involved.
  virtual void copy_local(std::size_t handle) = 0;
};

/// Aggregated exchange plan: one message per peer rank per execute().
class TransferSchedule {
 public:
  TransferSchedule() = default;

  /// Binds the rank context and allocates the exchange's message tag.
  void initialize(ParallelContext& ctx) {
    ctx_ = &ctx;
    tag_ = ctx.allocate_tag();
  }

  /// Appends a transaction; plan order is the add order.
  void add(const Transaction& t) { transactions_.push_back(t); }

  /// Groups transactions into per-peer messages and computes exact
  /// message sizes. Call once, after the last add().
  void finalize(const TransactionDelegate& delegate);

  /// Runs one exchange. May be called repeatedly (every timestep).
  void execute(TransactionDelegate& delegate);

  bool empty() const { return transactions_.empty(); }
  std::size_t transaction_count() const { return transactions_.size(); }

  /// Wire bytes this rank sends per execute() (headers included).
  std::uint64_t bytes_sent_per_exchange() const { return bytes_sent_; }

  /// Aggregated messages this rank sends / receives per execute().
  std::uint64_t messages_sent_per_exchange() const {
    return send_messages_.size();
  }
  std::uint64_t messages_received_per_exchange() const {
    return recv_messages_.size();
  }

 private:
  /// All transactions flowing between this rank and one peer, in plan
  /// order, with the exact aggregated wire size.
  struct PeerMessage {
    std::vector<std::size_t> transaction_indices;
    std::size_t payload_bytes = 0;
    std::size_t wire_bytes = 0;  ///< payload + header
  };

  ParallelContext* ctx_ = nullptr;
  int tag_ = 0;
  bool finalized_ = false;
  std::vector<Transaction> transactions_;
  std::map<int, PeerMessage> send_messages_;  ///< keyed by destination rank
  std::map<int, PeerMessage> recv_messages_;  ///< keyed by source rank
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace ramr::xfer
