// CoarsenAlgorithm / CoarsenSchedule: level synchronisation. After each
// step the fine solution conservatively replaces the coarse solution in
// covered cells (paper §II): the fine owner runs the data-parallel
// coarsen operator into device scratch, packs it (Fig. 4) and ships it
// to the coarse patch owner, who unpacks directly into the coarse data.
#pragma once

#include <memory>
#include <vector>

#include "hier/patch_hierarchy.hpp"
#include "xfer/coarsen_operator.hpp"
#include "xfer/parallel_context.hpp"

namespace ramr::xfer {

/// One quantity handled by a coarsen schedule.
struct CoarsenItem {
  int var_id = -1;
  std::shared_ptr<CoarsenOperator> op;
  /// Auxiliary source variable for operators with needs_aux() (the fine
  /// density id for mass-weighted energy coarsening); -1 otherwise.
  int aux_var_id = -1;
};

/// Builder for coarsen schedules.
class CoarsenAlgorithm {
 public:
  void add(CoarsenItem item) { items_.push_back(std::move(item)); }
  const std::vector<CoarsenItem>& items() const { return items_; }

  std::unique_ptr<class CoarsenSchedule> create_schedule(
      std::shared_ptr<hier::PatchLevel> coarse_level,
      std::shared_ptr<hier::PatchLevel> fine_level,
      const hier::VariableDatabase& db, ParallelContext& ctx) const;

 private:
  std::vector<CoarsenItem> items_;
};

/// Executable synchronisation plan.
class CoarsenSchedule {
 public:
  /// Restricts fine data onto the coarse level.
  void coarsen_data();

  std::uint64_t bytes_sent_per_sync() const;

 private:
  friend class CoarsenAlgorithm;
  CoarsenSchedule() = default;

  struct SyncEdge {
    int fine_gid = -1;
    int coarse_gid = -1;
    int fine_owner = -1;
    int coarse_owner = -1;
    mesh::Box coarse_cells;  ///< coarse cell region covered by the fine patch
  };

  std::vector<CoarsenItem> items_;
  std::shared_ptr<hier::PatchLevel> coarse_level_;
  std::shared_ptr<hier::PatchLevel> fine_level_;
  const hier::VariableDatabase* db_ = nullptr;
  ParallelContext* ctx_ = nullptr;
  int tag_ = 0;
  std::vector<SyncEdge> edges_;
};

}  // namespace ramr::xfer
