// CoarsenAlgorithm / CoarsenSchedule: level synchronisation. After each
// step the fine solution conservatively replaces the coarse solution in
// covered cells (paper §II): the fine owner runs the data-parallel
// coarsen operator into device scratch, packs it (Fig. 4) and ships it
// to the coarse patch owner, who unpacks directly into the coarse data.
// Execution rides the shared TransferSchedule engine, so one sync sends
// ONE aggregated message per coarse-owner peer covering every (edge,
// variable) contribution.
#pragma once

#include <memory>
#include <vector>

#include "hier/patch_hierarchy.hpp"
#include "xfer/coarsen_operator.hpp"
#include "xfer/parallel_context.hpp"
#include "xfer/transfer_schedule.hpp"

namespace ramr::xfer {

/// One quantity handled by a coarsen schedule.
struct CoarsenItem {
  int var_id = -1;
  std::shared_ptr<CoarsenOperator> op;
  /// Auxiliary source variable for operators with needs_aux() (the fine
  /// density id for mass-weighted energy coarsening); -1 otherwise.
  int aux_var_id = -1;
};

/// Builder for coarsen schedules.
class CoarsenAlgorithm {
 public:
  void add(CoarsenItem item) { items_.push_back(std::move(item)); }
  const std::vector<CoarsenItem>& items() const { return items_; }

  std::unique_ptr<class CoarsenSchedule> create_schedule(
      std::shared_ptr<hier::PatchLevel> coarse_level,
      std::shared_ptr<hier::PatchLevel> fine_level,
      const hier::VariableDatabase& db, ParallelContext& ctx) const;

 private:
  std::vector<CoarsenItem> items_;
};

/// Executable synchronisation plan.
class CoarsenSchedule : private TransferDelegate {
 public:
  /// Restricts fine data onto the coarse level.
  void coarsen_data();

  std::uint64_t bytes_sent_per_sync() const {
    return engine_.bytes_sent_per_exchange();
  }
  std::uint64_t messages_sent_per_sync() const {
    return engine_.messages_sent_per_exchange();
  }
  std::uint64_t messages_received_per_sync() const {
    return engine_.messages_received_per_exchange();
  }

  /// Engine exchange of one sync, for plan-level observability in tests.
  const TransferSchedule& transfer_engine() const { return engine_; }

 private:
  friend class CoarsenAlgorithm;
  CoarsenSchedule() = default;

  /// One (fine patch -> coarse patch, variable) contribution.
  struct Xact {
    int fine_gid;
    int coarse_gid;
    std::size_t item;         ///< index into items_
    mesh::Box coarse_cells;   ///< coarse cell region covered by the fine patch
    pdat::BoxOverlap overlap;
  };

  // TransferDelegate (shared engine: geometry at compile, endpoints at
  // execute).
  TransferGeometry geometry(std::size_t handle) const override;
  TransferEndpoints endpoints(std::size_t handle) override;

  /// Runs every locally-sourced transaction's coarsen operator into
  /// per-transaction scratch, batched by item: one fused launch per
  /// (item, component) for the whole sync instead of one launch per
  /// transaction. The engine then packs/copies from scratch_cache_.
  void prepare_scratch();

  std::vector<CoarsenItem> items_;
  std::shared_ptr<hier::PatchLevel> coarse_level_;
  std::shared_ptr<hier::PatchLevel> fine_level_;
  const hier::VariableDatabase* db_ = nullptr;
  ParallelContext* ctx_ = nullptr;
  std::vector<Xact> xacts_;
  TransferSchedule engine_;

  /// Per-transaction coarsened scratch, indexed by handle; alive only
  /// while coarsen_data() runs.
  std::vector<std::unique_ptr<pdat::PatchData>> scratch_cache_;
};

}  // namespace ramr::xfer
