#include "xfer/refine_schedule.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/logger.hpp"

namespace ramr::xfer {

using hier::GlobalPatch;
using hier::Patch;
using hier::PatchLevel;
using mesh::Box;
using mesh::BoxList;
using mesh::IntVector;

namespace {

/// Largest ghost width over the scheduled items.
IntVector max_ghosts(const std::vector<RefineItem>& items,
                     const hier::VariableDatabase& db) {
  IntVector g(0, 0);
  for (const RefineItem& item : items) {
    g = mesh::componentwise_max(g, db.variable(item.var_id).ghosts);
  }
  return g;
}

/// Smallest ghost width over items that interpolate (coarse sources must
/// provide at least this much BC-filled halo).
IntVector min_op_ghosts(const std::vector<RefineItem>& items,
                        const hier::VariableDatabase& db) {
  IntVector g(1 << 20, 1 << 20);
  bool any = false;
  for (const RefineItem& item : items) {
    if (item.op != nullptr) {
      g = mesh::componentwise_min(g, db.variable(item.var_id).ghosts);
      any = true;
    }
  }
  return any ? g : IntVector(0, 0);
}

/// Largest interpolation stencil over items.
IntVector max_stencil(const std::vector<RefineItem>& items) {
  IntVector s(0, 0);
  for (const RefineItem& item : items) {
    if (item.op != nullptr) {
      s = mesh::componentwise_max(s, item.op->stencil_width());
    }
  }
  return s;
}

/// Clips edge fill cells to the destination's per-variable ghost box and
/// converts to index-space overlap (identical on sender and receiver).
pdat::BoxOverlap item_overlap(const BoxList& fill_cells, const Box& dst_cell_box,
                              const hier::Variable& var) {
  BoxList cells = fill_cells;
  cells.intersect(dst_cell_box.grow(var.ghosts));
  return pdat::overlap_for_region(var.centering, cells);
}

}  // namespace

std::unique_ptr<RefineSchedule> RefineAlgorithm::create_schedule(
    std::shared_ptr<PatchLevel> dst_level, std::shared_ptr<PatchLevel> src_level,
    std::shared_ptr<PatchLevel> coarse_level, const hier::VariableDatabase& db,
    ParallelContext& ctx, PhysicalBoundaryStrategy* bc, FillMode mode) const {
  RAMR_REQUIRE(dst_level != nullptr, "refine schedule needs a destination");
  RAMR_REQUIRE(!items_.empty(), "refine schedule with no items");

  auto sched = std::unique_ptr<RefineSchedule>(new RefineSchedule());
  sched->items_ = items_;
  for (const RefineItem& item : items_) {
    sched->var_ids_.push_back(item.var_id);
  }
  sched->dst_level_ = dst_level;
  sched->src_level_ = src_level;
  sched->coarse_level_ = coarse_level;
  sched->db_ = &db;
  sched->ctx_ = &ctx;
  sched->bc_ = bc;
  sched->mode_ = mode;
  sched->tag_same_ = ctx.allocate_tag();
  sched->tag_coarse_ = ctx.allocate_tag();

  const IntVector ghosts = max_ghosts(items_, db);
  const IntVector stencil = max_stencil(items_);
  const IntVector coarse_avail = min_op_ghosts(items_, db);
  const bool any_op =
      std::any_of(items_.begin(), items_.end(),
                  [](const RefineItem& i) { return i.op != nullptr; });
  const Box dst_domain = dst_level->domain_box();

  for (const GlobalPatch& d : dst_level->global_patches()) {
    const Box fill_box = d.box.grow(ghosts);
    BoxList remaining(fill_box);
    if (mode == FillMode::kGhostsOnly) {
      remaining.remove_intersections(d.box);
    }

    // (i) same-level sources, assigned disjointly in metadata order.
    if (src_level != nullptr) {
      const bool same_object = (src_level == dst_level);
      for (const GlobalPatch& s : src_level->global_patches()) {
        if (same_object && s.global_id == d.global_id) {
          continue;
        }
        if (remaining.empty()) {
          break;
        }
        BoxList provided = remaining;
        provided.intersect(s.box);
        if (provided.empty()) {
          continue;
        }
        provided.coalesce();
        RefineSchedule::CopyEdge edge;
        edge.src_gid = s.global_id;
        edge.dst_gid = d.global_id;
        edge.src_owner = s.owner_rank;
        edge.dst_owner = d.owner_rank;
        edge.dst_cell_box = d.box;
        edge.fill_cells = provided;
        sched->same_level_edges_.push_back(std::move(edge));
        remaining.remove_intersections(s.box);
      }
    }

    // (ii) coarse interpolation for what is still unfilled inside the
    // domain.
    BoxList in_domain = remaining;
    in_domain.intersect(dst_domain);
    if (coarse_level != nullptr && any_op && !in_domain.empty()) {
      in_domain.coalesce();
      const IntVector ratio = dst_level->ratio_to_coarser();
      RefineSchedule::CoarseFill cf;
      cf.dst_gid = d.global_id;
      cf.dst_owner = d.owner_rank;
      cf.fine_fill_cells = in_domain;
      cf.scratch_cells =
          fill_box.coarsen(ratio).grow(stencil).intersect(
              coarse_level->domain_box().grow(coarse_avail));

      BoxList scratch_remaining(cf.scratch_cells);
      // Pass 1: coarse patch interiors.
      for (const GlobalPatch& c : coarse_level->global_patches()) {
        if (scratch_remaining.empty()) {
          break;
        }
        BoxList provided = scratch_remaining;
        provided.intersect(c.box);
        if (provided.empty()) {
          continue;
        }
        provided.coalesce();
        RefineSchedule::CopyEdge edge;
        edge.src_gid = c.global_id;
        edge.dst_gid = d.global_id;
        edge.src_owner = c.owner_rank;
        edge.dst_owner = d.owner_rank;
        edge.dst_cell_box = cf.scratch_cells;
        edge.fill_cells = provided;
        cf.gather.push_back(std::move(edge));
        scratch_remaining.remove_intersections(c.box);
      }
      // Pass 2: coarse patch ghost regions (carry BC-filled values needed
      // for stencils that poke past the domain or patch edges).
      for (const GlobalPatch& c : coarse_level->global_patches()) {
        if (scratch_remaining.empty()) {
          break;
        }
        const Box gbox = c.box.grow(coarse_avail);
        BoxList provided = scratch_remaining;
        provided.intersect(gbox);
        if (provided.empty()) {
          continue;
        }
        provided.coalesce();
        RefineSchedule::CopyEdge edge;
        edge.src_gid = c.global_id;
        edge.dst_gid = d.global_id;
        edge.src_owner = c.owner_rank;
        edge.dst_owner = d.owner_rank;
        edge.dst_cell_box = cf.scratch_cells;
        edge.fill_cells = provided;
        cf.gather.push_back(std::move(edge));
        scratch_remaining.remove_intersections(gbox);
      }
      if (!scratch_remaining.empty()) {
        RAMR_LOG_DEBUG("refine schedule: " << scratch_remaining.count()
                       << " scratch pieces uncovered for patch "
                       << d.global_id << " (outside coarse coverage)");
      }
      sched->coarse_fills_.push_back(std::move(cf));
    }
  }
  // Host cost of building the plan: the pairwise box calculus over the
  // replicated metadata (dst x src patch enumeration plus per-edge box
  // difference work).
  double ops = static_cast<double>(dst_level->patch_count()) *
               (src_level != nullptr ? src_level->patch_count() : 0);
  if (coarse_level != nullptr) {
    ops += static_cast<double>(dst_level->patch_count()) *
           coarse_level->patch_count();
  }
  for (const auto& e : sched->same_level_edges_) {
    ops += 8.0 * e.fill_cells.count();
  }
  for (const auto& cf : sched->coarse_fills_) {
    ops += 16.0 * cf.gather.size();
  }
  ctx.charge_host_ops(4.0 * ops);
  return sched;
}

void RefineSchedule::fill() {
  execute_same_level();
  execute_coarse_fill();
  execute_physical_boundaries();
}

void RefineSchedule::execute_same_level() {
  const int me = ctx_->my_rank;
  // Send pass (buffered, never blocks).
  for (const CopyEdge& e : same_level_edges_) {
    if (e.src_owner != me || e.dst_owner == me) {
      continue;
    }
    const auto src = src_level_->local_patch(e.src_gid);
    RAMR_REQUIRE(src != nullptr, "missing local source patch");
    pdat::MessageStream ms;
    for (const RefineItem& item : items_) {
      const pdat::BoxOverlap ov =
          item_overlap(e.fill_cells, e.dst_cell_box, db_->variable(item.var_id));
      src->data(item.var_id).pack_stream(ms, ov);
    }
    ctx_->comm->send(e.dst_owner, tag_same_, ms.data(), ms.size());
  }
  // Local copies and receives, in plan order (per-sender FIFO matches).
  for (const CopyEdge& e : same_level_edges_) {
    if (e.dst_owner != me) {
      continue;
    }
    const auto dst = dst_level_->local_patch(e.dst_gid);
    RAMR_REQUIRE(dst != nullptr, "missing local destination patch");
    if (e.src_owner == me) {
      const auto src = src_level_->local_patch(e.src_gid);
      RAMR_REQUIRE(src != nullptr, "missing local source patch");
      for (const RefineItem& item : items_) {
        const pdat::BoxOverlap ov = item_overlap(e.fill_cells, e.dst_cell_box,
                                                 db_->variable(item.var_id));
        dst->data(item.var_id).copy(src->data(item.var_id), ov);
      }
    } else {
      pdat::MessageStream ms(ctx_->comm->recv(e.src_owner, tag_same_));
      for (const RefineItem& item : items_) {
        const pdat::BoxOverlap ov = item_overlap(e.fill_cells, e.dst_cell_box,
                                                 db_->variable(item.var_id));
        dst->data(item.var_id).unpack_stream(ms, ov);
      }
      RAMR_REQUIRE(ms.fully_consumed(), "halo message size mismatch");
    }
  }
}

void RefineSchedule::execute_coarse_fill() {
  if (coarse_fills_.empty()) {
    return;
  }
  const int me = ctx_->my_rank;
  const IntVector ratio = dst_level_->ratio_to_coarser();

  // Send pass: contributions to remote scratch regions.
  for (const CoarseFill& cf : coarse_fills_) {
    if (cf.dst_owner == me) {
      continue;
    }
    for (const CopyEdge& e : cf.gather) {
      if (e.src_owner != me) {
        continue;
      }
      const auto src = coarse_level_->local_patch(e.src_gid);
      RAMR_REQUIRE(src != nullptr, "missing local coarse patch");
      pdat::MessageStream ms;
      for (const RefineItem& item : items_) {
        if (item.op == nullptr) {
          continue;
        }
        const pdat::BoxOverlap ov = pdat::overlap_for_region(
            db_->variable(item.var_id).centering, e.fill_cells);
        src->data(item.var_id).pack_stream(ms, ov);
      }
      ctx_->comm->send(cf.dst_owner, tag_coarse_, ms.data(), ms.size());
    }
  }

  // Fill pass on destination owners.
  for (const CoarseFill& cf : coarse_fills_) {
    if (cf.dst_owner != me) {
      continue;
    }
    const auto dst = dst_level_->local_patch(cf.dst_gid);
    RAMR_REQUIRE(dst != nullptr, "missing local destination patch");

    // Scratch storage per interpolated item.
    std::vector<std::unique_ptr<pdat::PatchData>> scratch(items_.size());
    for (std::size_t n = 0; n < items_.size(); ++n) {
      if (items_[n].op != nullptr) {
        scratch[n] = db_->factory(items_[n].var_id)
                         .allocate_with_ghosts(cf.scratch_cells,
                                               IntVector::zero());
      }
    }
    // Gather coarse data into the scratch.
    for (const CopyEdge& e : cf.gather) {
      if (e.src_owner == me) {
        const auto src = coarse_level_->local_patch(e.src_gid);
        RAMR_REQUIRE(src != nullptr, "missing local coarse patch");
        for (std::size_t n = 0; n < items_.size(); ++n) {
          if (items_[n].op == nullptr) {
            continue;
          }
          const pdat::BoxOverlap ov = pdat::overlap_for_region(
              db_->variable(items_[n].var_id).centering, e.fill_cells);
          scratch[n]->copy(src->data(items_[n].var_id), ov);
        }
      } else {
        pdat::MessageStream ms(ctx_->comm->recv(e.src_owner, tag_coarse_));
        for (std::size_t n = 0; n < items_.size(); ++n) {
          if (items_[n].op == nullptr) {
            continue;
          }
          const pdat::BoxOverlap ov = pdat::overlap_for_region(
              db_->variable(items_[n].var_id).centering, e.fill_cells);
          scratch[n]->unpack_stream(ms, ov);
        }
        RAMR_REQUIRE(ms.fully_consumed(), "coarse gather size mismatch");
      }
    }
    // Interpolate into the destination patch.
    for (std::size_t n = 0; n < items_.size(); ++n) {
      if (items_[n].op == nullptr) {
        continue;
      }
      for (const Box& piece : cf.fine_fill_cells.boxes()) {
        items_[n].op->refine(dst->data(items_[n].var_id), *scratch[n], piece,
                             ratio);
      }
    }
  }
}

void RefineSchedule::execute_physical_boundaries() {
  if (bc_ == nullptr) {
    return;
  }
  for (const auto& patch : dst_level_->local_patches()) {
    bc_->fill_physical_boundaries(*patch, dst_level_->domain_box(), var_ids_);
  }
}

std::uint64_t RefineSchedule::bytes_sent_per_fill() const {
  const int me = ctx_->my_rank;
  std::uint64_t bytes = 0;
  for (const CopyEdge& e : same_level_edges_) {
    if (e.src_owner != me || e.dst_owner == me) {
      continue;
    }
    for (const RefineItem& item : items_) {
      const pdat::BoxOverlap ov =
          item_overlap(e.fill_cells, e.dst_cell_box, db_->variable(item.var_id));
      bytes += static_cast<std::uint64_t>(ov.element_count()) *
               static_cast<std::uint64_t>(db_->variable(item.var_id).depth) *
               sizeof(double);
    }
  }
  for (const CoarseFill& cf : coarse_fills_) {
    if (cf.dst_owner == me) {
      continue;
    }
    for (const CopyEdge& e : cf.gather) {
      if (e.src_owner != me) {
        continue;
      }
      for (const RefineItem& item : items_) {
        if (item.op == nullptr) {
          continue;
        }
        const pdat::BoxOverlap ov = pdat::overlap_for_region(
            db_->variable(item.var_id).centering, e.fill_cells);
        bytes += static_cast<std::uint64_t>(ov.element_count()) *
                 static_cast<std::uint64_t>(db_->variable(item.var_id).depth) *
                 sizeof(double);
      }
    }
  }
  return bytes;
}

}  // namespace ramr::xfer
