#include "xfer/refine_schedule.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/logger.hpp"
#include "vgpu/topology.hpp"

namespace ramr::xfer {

using hier::GlobalPatch;
using hier::Patch;
using hier::PatchLevel;
using mesh::Box;
using mesh::BoxList;
using mesh::IntVector;

namespace {

/// Forks `dev`'s compute lane from the caller's active lane for a
/// per-device fan-out scope. Returns -1 — a no-op LaneScope — without a
/// timeline (single-device ranks pass tl == nullptr), so the launches
/// stay on the caller's lane exactly as before.
int fork_gpu_lane(vgpu::Timeline* tl, const vgpu::Device* dev) {
  if (tl == nullptr || dev == nullptr) {
    return -1;
  }
  const int lane = tl->lane(vgpu::Topology::gpu_lane_name(dev->ordinal()));
  tl->advance(lane, tl->now(tl->active_lane()));
  return lane;
}

/// Largest ghost width over the scheduled items.
IntVector max_ghosts(const std::vector<RefineItem>& items,
                     const hier::VariableDatabase& db) {
  IntVector g(0, 0);
  for (const RefineItem& item : items) {
    g = mesh::componentwise_max(g, db.variable(item.var_id).ghosts);
  }
  return g;
}

/// Smallest ghost width over items that interpolate (coarse sources must
/// provide at least this much BC-filled halo).
IntVector min_op_ghosts(const std::vector<RefineItem>& items,
                        const hier::VariableDatabase& db) {
  IntVector g(1 << 20, 1 << 20);
  bool any = false;
  for (const RefineItem& item : items) {
    if (item.op != nullptr) {
      g = mesh::componentwise_min(g, db.variable(item.var_id).ghosts);
      any = true;
    }
  }
  return any ? g : IntVector(0, 0);
}

/// Largest interpolation stencil over items.
IntVector max_stencil(const std::vector<RefineItem>& items) {
  IntVector s(0, 0);
  for (const RefineItem& item : items) {
    if (item.op != nullptr) {
      s = mesh::componentwise_max(s, item.op->stencil_width());
    }
  }
  return s;
}

/// Clips edge fill cells to the destination's per-variable ghost box and
/// converts to index-space overlap (identical on sender and receiver).
pdat::BoxOverlap item_overlap(const BoxList& fill_cells, const Box& dst_cell_box,
                              const hier::Variable& var) {
  BoxList cells = fill_cells;
  cells.intersect(dst_cell_box.grow(var.ghosts));
  return pdat::overlap_for_region(var.centering, cells);
}

/// L1 gap between two boxes (0 when they touch or overlap).
std::int64_t box_gap(const Box& a, const Box& b) {
  const int gi = std::max({0, a.lower().i - b.upper().i,
                           b.lower().i - a.upper().i});
  const int gj = std::max({0, a.lower().j - b.upper().j,
                           b.lower().j - a.upper().j});
  return gi + gj;
}

}  // namespace

std::unique_ptr<RefineSchedule> RefineAlgorithm::create_schedule(
    std::shared_ptr<PatchLevel> dst_level, std::shared_ptr<PatchLevel> src_level,
    std::shared_ptr<PatchLevel> coarse_level, const hier::VariableDatabase& db,
    ParallelContext& ctx, PhysicalBoundaryStrategy* bc, FillMode mode) const {
  RAMR_REQUIRE(dst_level != nullptr, "refine schedule needs a destination");
  RAMR_REQUIRE(!items_.empty(), "refine schedule with no items");

  auto sched = std::unique_ptr<RefineSchedule>(new RefineSchedule());
  sched->items_ = items_;
  for (const RefineItem& item : items_) {
    sched->var_ids_.push_back(item.var_id);
  }
  sched->dst_level_ = dst_level;
  sched->src_level_ = src_level;
  sched->coarse_level_ = coarse_level;
  sched->db_ = &db;
  sched->ctx_ = &ctx;
  sched->bc_ = bc;
  sched->mode_ = mode;
  sched->same_engine_.initialize(ctx);
  sched->coarse_engine_.initialize(ctx);
  sched->coarse_late_engine_.initialize(ctx);

  const IntVector ghosts = max_ghosts(items_, db);
  const IntVector stencil = max_stencil(items_);
  const IntVector coarse_avail = min_op_ghosts(items_, db);
  const bool any_op =
      std::any_of(items_.begin(), items_.end(),
                  [](const RefineItem& i) { return i.op != nullptr; });
  const Box dst_domain = dst_level->domain_box();

  // Expands one planned patch edge into per-variable transactions, all
  // carried by the same aggregated peer message. Only edges touching
  // this rank are recorded: the box calculus must walk the full
  // replicated metadata (the disjoint source assignment depends on every
  // earlier source), but a transaction between two other ranks is never
  // packed, applied or counted here, so storing it would make plan
  // memory and the per-fill scan scale with the global mesh instead of
  // this rank's partition. Relative plan order of the retained subset is
  // preserved, which is all both endpoints of a message rely on.
  const int me = ctx.my_rank;
  std::int64_t overlap_pieces = 0;
  const auto add_same_level = [&](const GlobalPatch& s, const GlobalPatch& d,
                                  const BoxList& provided) {
    overlap_pieces += 8 * provided.count();
    if (s.owner_rank != me && d.owner_rank != me) {
      return;
    }
    for (std::size_t n = 0; n < items_.size(); ++n) {
      pdat::BoxOverlap ov =
          item_overlap(provided, d.box, db.variable(items_[n].var_id));
      if (ov.empty()) {
        continue;
      }
      sched->xacts_.push_back(RefineSchedule::Xact{RefineSchedule::Xact::Kind::kSameLevel, s.global_id,
                                   d.global_id, n, 0, std::move(ov)});
      sched->same_engine_.add(Transaction{s.owner_rank, d.owner_rank,
                                          sched->xacts_.size() - 1});
    }
  };
  // Adds the gather transactions of one (coarse patch, destination)
  // pair, splitting each item between the EARLY engine (sources whose
  // values are provably stable from fill_begin to fill_finish, so a
  // wide-overlap split fill may pack and ship them at begin) and the
  // LATE engine (sources valid only once the coarse level's own exchange
  // finished). `stable` is the cell region of begin-stable sources:
  // for interior gathers the coarse patch box, clipped one cell inward
  // for node/side items — a cell variable's interior (shell included)
  // is never rewritten by the patch's own exchange, but a node/side
  // variable's shell maps onto the seam lines the exchange DOES rewrite.
  const auto add_gather = [&](const GlobalPatch& c, const GlobalPatch& d,
                              const BoxList& provided, const Box& stable,
                              std::size_t fill) {
    overlap_pieces += 16;
    if (c.owner_rank != me && d.owner_rank != me) {
      return;
    }
    for (std::size_t n = 0; n < items_.size(); ++n) {
      if (items_[n].op == nullptr) {
        continue;
      }
      const hier::Variable& var = db.variable(items_[n].var_id);
      const Box item_stable = var.centering == mesh::Centering::kCell
                                  ? stable
                                  : stable.shrink(1);
      BoxList early = provided;
      early.intersect(item_stable);
      BoxList late = provided;
      late.remove_intersections(item_stable);
      for (auto* part : {&early, &late}) {
        if (part->empty()) {
          continue;
        }
        part->coalesce();
        pdat::BoxOverlap ov = pdat::overlap_for_region(var.centering, *part);
        if (ov.empty()) {
          continue;
        }
        sched->xacts_.push_back(
            RefineSchedule::Xact{RefineSchedule::Xact::Kind::kCoarseGather,
                                 c.global_id, d.global_id, n, fill,
                                 std::move(ov)});
        TransferSchedule& engine = part == &early
                                       ? sched->coarse_engine_
                                       : sched->coarse_late_engine_;
        engine.add(Transaction{c.owner_rank, d.owner_rank,
                               sched->xacts_.size() - 1});
      }
    }
  };

  for (const GlobalPatch& d : dst_level->global_patches()) {
    const Box fill_box = d.box.grow(ghosts);
    BoxList remaining(fill_box);
    if (mode == FillMode::kGhostsOnly) {
      remaining.remove_intersections(d.box);
    }

    // (i) same-level sources, assigned disjointly in metadata order.
    if (src_level != nullptr) {
      const bool same_object = (src_level == dst_level);
      for (const GlobalPatch& s : src_level->global_patches()) {
        if (same_object && s.global_id == d.global_id) {
          continue;
        }
        if (remaining.empty()) {
          break;
        }
        BoxList provided = remaining;
        provided.intersect(s.box);
        if (provided.empty()) {
          continue;
        }
        provided.coalesce();
        add_same_level(s, d, provided);
        remaining.remove_intersections(s.box);
      }
    }

    // (ii) coarse interpolation for what is still unfilled inside the
    // domain.
    BoxList in_domain = remaining;
    in_domain.intersect(dst_domain);
    if (coarse_level != nullptr && any_op && !in_domain.empty()) {
      in_domain.coalesce();
      RefineSchedule::CoarseFill cf;
      cf.dst_gid = d.global_id;
      cf.dst_owner = d.owner_rank;
      cf.fine_fill_cells = in_domain;
      cf.scratch_cells =
          fill_box.coarsen(dst_level->ratio_to_coarser()).grow(stencil)
              .intersect(coarse_level->domain_box().grow(coarse_avail));
      const std::size_t fill = sched->coarse_fills_.size();

      BoxList scratch_remaining(cf.scratch_cells);
      // Pass 1: coarse patch interiors, split per item between the two
      // gather engines by add_gather: a cell item's whole interior ships
      // early; a node/side item keeps its depth-0 shell late (the seam
      // lines the coarse exchange rewrites).
      for (const GlobalPatch& c : coarse_level->global_patches()) {
        if (scratch_remaining.empty()) {
          break;
        }
        BoxList provided = scratch_remaining;
        provided.intersect(c.box);
        if (provided.empty()) {
          continue;
        }
        provided.coalesce();
        add_gather(c, d, provided, c.box, fill);
        scratch_remaining.remove_intersections(c.box);
      }
      // Pass 2: coarse patch ghost regions (carry BC-filled values needed
      // for stencils that poke past the domain or patch edges) — never
      // stable before the coarse level's finish, so entirely late (the
      // empty `stable` box routes every item there).
      for (const GlobalPatch& c : coarse_level->global_patches()) {
        if (scratch_remaining.empty()) {
          break;
        }
        const Box gbox = c.box.grow(coarse_avail);
        BoxList provided = scratch_remaining;
        provided.intersect(gbox);
        if (provided.empty()) {
          continue;
        }
        provided.coalesce();
        add_gather(c, d, provided, Box(), fill);
        scratch_remaining.remove_intersections(gbox);
      }
      if (!scratch_remaining.empty()) {
        // Scratch corners can fall outside the union of coarse patch +
        // ghost boxes: nesting bounds the fine INTERIOR, not the stencil
        // fringe of its ghost fill. Pair each uncovered piece with its
        // nearest covered box; fill() clamp-fills them after the gather,
        // so interpolation stencils never read the raw allocation.
        BoxList covered(cf.scratch_cells);
        for (const Box& u : scratch_remaining.boxes()) {
          covered.remove_intersections(u);
        }
        std::ostringstream pieces;
        for (const Box& u : scratch_remaining.boxes()) {
          pieces << " " << u;
          const Box* best = nullptr;
          std::int64_t best_gap = 0;
          for (const Box& c : covered.boxes()) {
            const std::int64_t gap = box_gap(u, c);
            if (best == nullptr || gap < best_gap) {
              best = &c;
              best_gap = gap;
            }
          }
          if (best != nullptr) {
            cf.uncovered_clamp.emplace_back(u, *best);
          }
        }
        cf.covered = covered;
        RAMR_LOG_DEBUG("refine schedule: " << scratch_remaining.count()
                       << " scratch pieces uncovered for patch "
                       << d.global_id << " (outside coarse coverage):"
                       << pieces.str() << " of scratch " << cf.scratch_cells
                       << "; clamp-filled from nearest covered data");
      }
      sched->coarse_fills_.push_back(std::move(cf));
    }
  }
  sched->same_engine_.finalize(*sched);
  sched->coarse_engine_.finalize(*sched);
  sched->coarse_late_engine_.finalize(*sched);

  // Host cost of building the plan: the pairwise box calculus over the
  // replicated metadata (dst x src patch enumeration plus per-edge box
  // difference work).
  double ops = static_cast<double>(dst_level->patch_count()) *
               (src_level != nullptr ? src_level->patch_count() : 0);
  if (coarse_level != nullptr) {
    ops += static_cast<double>(dst_level->patch_count()) *
           coarse_level->patch_count();
  }
  ops += static_cast<double>(overlap_pieces);
  ctx.charge_host_ops(4.0 * ops);
  return sched;
}

void RefineSchedule::fill() {
  fill_begin();
  fill_finish();
}

void RefineSchedule::fill_begin() {
  same_engine_.execute_begin(*this);
  if (ctx_->wide_overlap && !coarse_fills_.empty()) {
    // Wide window: ship the strictly-interior coarse sources now, so
    // the gather's wire time rides the comm/net lanes alongside the
    // same-level exchange. Their values cannot change before finish
    // (the coarse level's own exchange rewrites only ghost and seam
    // indices; the overlapped interior sweeps stay off the boundary
    // shell), so begin-time packs equal the synchronous gather's reads.
    allocate_scratch();
    coarse_engine_.execute_begin(*this);
    coarse_in_flight_ = true;
  }
}

void RefineSchedule::fill_finish() {
  same_engine_.execute_finish();
  if (!coarse_fills_.empty()) {
    if (coarse_in_flight_) {
      coarse_engine_.execute_finish();
      coarse_in_flight_ = false;
    } else {
      allocate_scratch();
      coarse_engine_.execute(*this);
    }
    // Boundary-shell and ghost sources read the coarse level's FINISHED
    // exchange (finish_all runs coarse-to-fine), and execute after the
    // early engine's writes — the pre-split single-engine plan order
    // wherever their seam images overlap.
    coarse_late_engine_.execute(*this);
    clamp_fill_uncovered_scratch();
    interpolate_coarse_fills();
    scratch_.clear();
  }
  execute_physical_boundaries();
}

TransferGeometry RefineSchedule::geometry(std::size_t handle) const {
  const Xact& x = xacts_[handle];
  TransferGeometry g;
  g.overlap = &x.overlap;
  g.depth = db_->variable(items_[x.item].var_id).depth;
  // Destination-object id for the engine's write clipping: same-level
  // transactions write (dst patch, item) data; gathers write (fill, item)
  // scratch. The two kinds live in different engines, so the id spaces
  // cannot collide.
  const int n = static_cast<int>(items_.size());
  g.dst_slot = x.kind == Xact::Kind::kSameLevel
                   ? x.dst_gid * n + static_cast<int>(x.item)
                   : static_cast<int>(x.fill) * n + static_cast<int>(x.item);
  // When source and destination are the SAME level (halo exchange), the
  // source arrays are themselves ghost-fill targets of this exchange:
  // give them ids in the dst_slot space so the engine can snapshot seam
  // reads that alias writes. Regrid transfers (old level -> new level)
  // and gathers (coarse -> scratch) read arrays no transaction writes.
  if (x.kind == Xact::Kind::kSameLevel && src_level_ == dst_level_) {
    g.src_slot = x.src_gid * n + static_cast<int>(x.item);
  }
  return g;
}

TransferEndpoints RefineSchedule::endpoints(std::size_t handle) {
  const Xact& x = xacts_[handle];
  TransferEndpoints ep;
  const PatchLevel& src_level =
      x.kind == Xact::Kind::kSameLevel ? *src_level_ : *coarse_level_;
  if (const auto src = src_level.local_patch(x.src_gid)) {
    ep.src = &src->data(items_[x.item].var_id);
  }
  if (x.kind == Xact::Kind::kSameLevel) {
    if (const auto dst = dst_level_->local_patch(x.dst_gid)) {
      ep.dst = &dst->data(items_[x.item].var_id);
    }
  } else if (!scratch_[x.fill].empty()) {
    ep.dst = scratch_[x.fill][x.item].get();
  }
  return ep;
}

void RefineSchedule::allocate_scratch() {
  const int me = ctx_->my_rank;
  scratch_.clear();
  scratch_.resize(coarse_fills_.size());
  for (std::size_t f = 0; f < coarse_fills_.size(); ++f) {
    const CoarseFill& cf = coarse_fills_[f];
    if (cf.dst_owner != me) {
      continue;
    }
    // Scratch follows the destination patch's device so the coarse
    // gather's endpoint and the interpolation stay device-local on a
    // multi-device rank.
    vgpu::Device* dev = nullptr;
    if (ctx_->topology != nullptr) {
      if (const auto dst = dst_level_->local_patch(cf.dst_gid)) {
        dev = &ctx_->topology->device(dst->device_ordinal());
      }
    }
    scratch_[f].resize(items_.size());
    for (std::size_t n = 0; n < items_.size(); ++n) {
      if (items_[n].op != nullptr) {
        scratch_[f][n] = db_->factory(items_[n].var_id)
                             .allocate_with_ghosts_on(cf.scratch_cells,
                                                      IntVector::zero(), dev);
      }
    }
  }
}

void RefineSchedule::clamp_fill_uncovered_scratch() {
  // Constant-extrapolate the gathered data into the uncovered scratch
  // corners: scratch(p) = scratch(clamp(p into nearest covered box)).
  // The write regions exclude the source box, so reads and writes of the
  // in-place kernel never alias; planning is replicated and only the dst
  // owner executes, so every rank layout produces identical values.
  const int me = ctx_->my_rank;
  // Per-device fan-out as in interpolate_coarse_fills: each fill's clamp
  // launches ride its scratch's device lane; fills on different devices
  // extrapolate concurrently.
  vgpu::Timeline* tl =
      ctx_->topology != nullptr && ctx_->topology->device_count() > 1
          ? ctx_->timeline
          : nullptr;
  double join = tl != nullptr ? tl->now(tl->active_lane()) : 0.0;
  for (std::size_t f = 0; f < coarse_fills_.size(); ++f) {
    const CoarseFill& cf = coarse_fills_[f];
    if (cf.dst_owner != me || cf.uncovered_clamp.empty()) {
      continue;
    }
    for (std::size_t n = 0; n < items_.size(); ++n) {
      if (items_[n].op == nullptr) {
        continue;
      }
      pdat::PatchData* scratch = scratch_[f][n].get();
      if (!scratch->supports_transfer_views()) {
        continue;  // host scratch: value-initialised storage, no raw reads
      }
      vgpu::Device& dev = *scratch->transfer_device();
      vgpu::Stream stream(dev, "xfer");
      vgpu::LaneScope scope(tl, fork_gpu_lane(tl, &dev));
      const mesh::Centering centering = scratch->centering();
      const int ncomp = mesh::centering_components(centering);
      for (int k = 0; k < ncomp; ++k) {
        const mesh::Centering comp = mesh::component_centering(centering, k);
        for (const auto& [uncovered, source] : cf.uncovered_clamp) {
          const Box src = mesh::to_centering(source, comp);
          // Write only indices no covered box owns: mapping cells to the
          // component's index space widens the region onto seam
          // node/side lines shared with covered neighbours, which the
          // gather just filled with real data.
          BoxList pieces(mesh::to_centering(uncovered, comp));
          for (const Box& c : cf.covered.boxes()) {
            pieces.remove_intersections(mesh::to_centering(c, comp));
          }
          const int ilo_s = src.lower().i;
          const int ihi_s = src.upper().i;
          const int jlo_s = src.lower().j;
          const int jhi_s = src.upper().j;
          for (int d = 0; d < scratch->depth(); ++d) {
            for (const Box& piece : pieces.boxes()) {
              // The kernel reads clamped indices inside `src`, so request
              // the view over the union's bounding box, as the
              // transfer_view contract promises validity only there.
              const Box span(std::min(piece.lower().i, src.lower().i),
                             std::min(piece.lower().j, src.lower().j),
                             std::max(piece.upper().i, src.upper().i),
                             std::max(piece.upper().j, src.upper().j));
              util::View v = scratch->transfer_view(k, d, span);
              dev.launch2d(stream, piece.lower().i, piece.lower().j,
                           piece.width(), piece.height(),
                           vgpu::KernelCost{0.0, 16.0}, [=](int i, int j) {
                             v(i, j) = v(std::clamp(i, ilo_s, ihi_s),
                                         std::clamp(j, jlo_s, jhi_s));
                           });
            }
          }
        }
      }
      if (tl != nullptr) {
        join = std::max(join, tl->now(tl->active_lane()));
      }
    }
  }
  if (tl != nullptr) {
    tl->advance(tl->active_lane(), join);
  }
}

void RefineSchedule::interpolate_coarse_fills() {
  const int me = ctx_->my_rank;
  const IntVector ratio = dst_level_->ratio_to_coarser();
  // Fan the per-device groups onto the devices' compute lanes only on a
  // multi-device rank: with one device fork_gpu_lane yields a no-op
  // scope and the launches stay on the caller's lane, unchanged.
  vgpu::Timeline* tl =
      ctx_->topology != nullptr && ctx_->topology->device_count() > 1
          ? ctx_->timeline
          : nullptr;
  double join = tl != nullptr ? tl->now(tl->active_lane()) : 0.0;
  // Batched by operator: the interpolation of a whole level costs one
  // fused refine_batched call per item per round instead of one launch
  // per (fill, piece). Tasks of one fused launch must not write the same
  // element concurrently: pieces of DIFFERENT fills target different
  // destination patches, but adjacent pieces of ONE fill share boundary
  // nodes/faces once mapped to the variable's centring. So round r fuses
  // piece r of every fill — alias-free within a round, and fills rarely
  // have more than a couple of pieces.
  for (std::size_t n = 0; n < items_.size(); ++n) {
    if (items_[n].op == nullptr) {
      continue;
    }
    std::vector<RefineTask> tasks;
    for (std::size_t round = 0;; ++round) {
      tasks.clear();
      for (std::size_t f = 0; f < coarse_fills_.size(); ++f) {
        const CoarseFill& cf = coarse_fills_[f];
        if (cf.dst_owner != me ||
            round >= cf.fine_fill_cells.boxes().size()) {
          continue;
        }
        const auto dst = dst_level_->local_patch(cf.dst_gid);
        RAMR_REQUIRE(dst != nullptr, "missing local destination patch");
        tasks.push_back(RefineTask{&dst->data(items_[n].var_id),
                                   scratch_[f][n].get(),
                                   cf.fine_fill_cells.boxes()[round]});
      }
      if (tasks.empty()) {
        break;
      }
      // One fused call per destination device: the operator charges the
      // whole batch to its first task's device, and a multi-device
      // rank's round may target patches on several devices. Each group
      // rides its device's compute lane, forked from the caller's lane,
      // so the devices interpolate concurrently; the caller rejoins at
      // the slowest lane once every item and round has been issued.
      std::vector<const vgpu::Device*> seen;
      std::vector<RefineTask> group;
      for (const RefineTask& probe : tasks) {
        const vgpu::Device* key = probe.dst->transfer_device();
        if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
          continue;
        }
        seen.push_back(key);
        group.clear();
        for (const RefineTask& t : tasks) {
          if (t.dst->transfer_device() == key) {
            group.push_back(t);
          }
        }
        vgpu::LaneScope scope(tl, fork_gpu_lane(tl, key));
        items_[n].op->refine_batched(group, ratio);
        if (tl != nullptr) {
          join = std::max(join, tl->now(tl->active_lane()));
        }
      }
    }
  }
  if (tl != nullptr) {
    tl->advance(tl->active_lane(), join);
  }
}

void RefineSchedule::execute_physical_boundaries() {
  if (bc_ == nullptr) {
    return;
  }
  // Per-device fan-out: each patch's reflective fills ride its device's
  // compute lane, so a multi-device rank applies physical BCs on all
  // devices concurrently.
  vgpu::Timeline* tl =
      ctx_->topology != nullptr && ctx_->topology->device_count() > 1
          ? ctx_->timeline
          : nullptr;
  double join = tl != nullptr ? tl->now(tl->active_lane()) : 0.0;
  for (const auto& patch : dst_level_->local_patches()) {
    vgpu::LaneScope scope(
        tl, fork_gpu_lane(
                tl, tl != nullptr
                        ? &ctx_->topology->device(patch->device_ordinal())
                        : nullptr));
    bc_->fill_physical_boundaries(*patch, dst_level_->domain_box(), var_ids_);
    if (tl != nullptr) {
      join = std::max(join, tl->now(tl->active_lane()));
    }
  }
  if (tl != nullptr) {
    tl->advance(tl->active_lane(), join);
  }
}

}  // namespace ramr::xfer
