// Strategy interface for filling ghost cells that lie outside the
// physical domain. As in the paper (§IV-B2), physical boundary
// conditions are supplied by the application (CleverLeaf uses the
// reflective CloverLeaf boundaries); the schedules call this after all
// same-level and coarse-to-fine fills complete.
#pragma once

#include <vector>

#include "hier/patch.hpp"
#include "mesh/box.hpp"

namespace ramr::xfer {

/// Application-supplied physical boundary condition filler.
class PhysicalBoundaryStrategy {
 public:
  virtual ~PhysicalBoundaryStrategy() = default;

  /// Fills all ghost regions of `patch` outside `level_domain_box` for
  /// the listed variables. Interior-adjacent values are already valid.
  virtual void fill_physical_boundaries(hier::Patch& patch,
                                        const mesh::Box& level_domain_box,
                                        const std::vector<int>& var_ids) = 0;
};

}  // namespace ramr::xfer
