#include "app/reflective_boundary.hpp"

#include "pdat/cuda/cuda_data.hpp"
#include "util/error.hpp"

namespace ramr::app {

using mesh::Box;
using mesh::Centering;
using mesh::IntVector;
using pdat::cuda::CudaArrayData;
using pdat::cuda::CudaData;

ReflectiveBoundary::ReflectiveBoundary(const Fields& f) {
  const auto set = [&](int id, Parity p0,
                       Parity p1 = Parity{}) {
    std::vector<Parity> ps{p0};
    if (id == f.vol_flux || id == f.mass_flux) {
      ps.push_back(p1);
    }
    parity_[id] = std::move(ps);
  };
  const Parity sym{1.0, 1.0};
  for (int id : {f.density0, f.density1, f.energy0, f.energy1, f.pressure,
                 f.viscosity, f.soundspeed, f.pre_vol, f.post_vol}) {
    set(id, sym);
  }
  for (int id : {f.xvel0, f.xvel1}) {
    set(id, Parity{-1.0, 1.0});
  }
  for (int id : {f.yvel0, f.yvel1}) {
    set(id, Parity{1.0, -1.0});
  }
  // Side data: x-face component flips across x, y-face across y.
  for (int id : {f.vol_flux, f.mass_flux, f.ener_flux}) {
    if (id == f.ener_flux) {
      set(id, Parity{-1.0, 1.0}, Parity{1.0, -1.0});
      parity_[id] = {Parity{-1.0, 1.0}, Parity{1.0, -1.0}};
      continue;
    }
    set(id, Parity{-1.0, 1.0}, Parity{1.0, -1.0});
  }
  for (int id : {f.node_flux, f.node_mass_post, f.node_mass_pre, f.mom_flux}) {
    set(id, sym);
  }
}

namespace {

/// Mirrors ghost entries of `array` across one domain edge.
///
/// `axis` 0 = x, 1 = y; `low_side` selects the domain edge. `node_like`
/// marks index spaces with an entry *on* the boundary plane (nodes and
/// normal faces): ghosts then mirror around the plane index b as
/// a(b-k) = parity * a(b+k); cell-like spaces mirror around the plane as
/// a(b-1-k+1)... i.e. a(blo-k) = parity * a(blo+k-1).
/// `rows` restricts the orthogonal extent processed.
void mirror(vgpu::Device& dev, vgpu::Stream& s, CudaArrayData& array, int axis,
            bool low_side, bool node_like, int boundary_index, int ghosts,
            const Box& rows_box, double parity) {
  const Box ib = array.index_box();
  const Box region = ib.intersect(rows_box);
  if (region.empty() || ghosts <= 0) {
    return;
  }
  util::View v = array.device_view();
  const vgpu::KernelCost cost{1.0, 16.0};
  if (axis == 0) {
    const int jlo = region.lower().j;
    const int h = region.height();
    dev.launch2d(s, 1, jlo, ghosts, h, cost, [=](int k, int j) {
      // k = 1..ghosts
      int ghost_i, src_i;
      if (low_side) {
        if (node_like) {
          ghost_i = boundary_index - k;
          src_i = boundary_index + k;
        } else {
          ghost_i = boundary_index - k;          // boundary_index = first cell
          src_i = boundary_index + k - 1;
        }
      } else {
        if (node_like) {
          ghost_i = boundary_index + k;
          src_i = boundary_index - k;
        } else {
          ghost_i = boundary_index + k;          // boundary_index = last cell
          src_i = boundary_index - k + 1;
        }
      }
      if (v.contains(ghost_i, j) && v.contains(src_i, j)) {
        v(ghost_i, j) = parity * v(src_i, j);
      }
    });
  } else {
    const int ilo = region.lower().i;
    const int w = region.width();
    dev.launch2d(s, ilo, 1, w, ghosts, cost, [=](int i, int k) {
      int ghost_j, src_j;
      if (low_side) {
        if (node_like) {
          ghost_j = boundary_index - k;
          src_j = boundary_index + k;
        } else {
          ghost_j = boundary_index - k;
          src_j = boundary_index + k - 1;
        }
      } else {
        if (node_like) {
          ghost_j = boundary_index + k;
          src_j = boundary_index - k;
        } else {
          ghost_j = boundary_index + k;
          src_j = boundary_index - k + 1;
        }
      }
      if (v.contains(i, ghost_j) && v.contains(i, src_j)) {
        v(i, ghost_j) = parity * v(i, src_j);
      }
    });
  }
}

/// True when the component index space has an entry on the boundary
/// plane normal to `axis`.
bool is_node_like(Centering comp, int axis) {
  switch (comp) {
    case Centering::kNode:
      return true;
    case Centering::kXSide:
      return axis == 0;
    case Centering::kYSide:
      return axis == 1;
    default:
      return false;
  }
}

}  // namespace

void ReflectiveBoundary::fill_physical_boundaries(
    hier::Patch& patch, const Box& domain, const std::vector<int>& var_ids) {
  auto* first = dynamic_cast<CudaData*>(&patch.data(var_ids.front()));
  RAMR_REQUIRE(first != nullptr, "reflective BC requires device data");
  vgpu::Device& dev = first->device();
  vgpu::Stream stream(dev, "bc");

  const Box& pbox = patch.box();
  const bool at_xlo = pbox.lower().i == domain.lower().i;
  const bool at_xhi = pbox.upper().i == domain.upper().i;
  const bool at_ylo = pbox.lower().j == domain.lower().j;
  const bool at_yhi = pbox.upper().j == domain.upper().j;
  if (!(at_xlo || at_xhi || at_ylo || at_yhi)) {
    return;
  }

  for (int id : var_ids) {
    const auto it = parity_.find(id);
    RAMR_REQUIRE(it != parity_.end(), "no parity registered for variable " << id);
    auto& data = patch.typed_data<CudaData>(id);
    const int g = data.ghost_cell_width().i;
    for (int k = 0; k < data.components(); ++k) {
      const Centering comp =
          mesh::component_centering(data.centering(), k);
      CudaArrayData& array = data.component(k);
      const Parity par = it->second[static_cast<std::size_t>(k)];
      const Box all = array.index_box();

      // CloverLeaf's two-pass order: bottom/top over the full width
      // first, then left/right over the full height — the second pass
      // mirrors corner ghosts from columns the first pass made valid.
      if (at_ylo) {
        const bool nl = is_node_like(comp, 1);
        mirror(dev, stream, array, 1, true, nl, domain.lower().j, g, all,
               par.across_y);
      }
      if (at_yhi) {
        const bool nl = is_node_like(comp, 1);
        const int b = nl ? mesh::to_centering(domain, comp).upper().j
                         : domain.upper().j;
        mirror(dev, stream, array, 1, false, nl, b, g, all, par.across_y);
      }
      if (at_xlo) {
        const bool nl = is_node_like(comp, 0);
        mirror(dev, stream, array, 0, true, nl, domain.lower().i, g, all,
               par.across_x);
      }
      if (at_xhi) {
        const bool nl = is_node_like(comp, 0);
        const int b = nl ? mesh::to_centering(domain, comp).upper().i
                         : domain.upper().i;
        mirror(dev, stream, array, 0, false, nl, b, g, all, par.across_x);
      }
    }
  }
}

}  // namespace ramr::app
