// The CleverLeaf field set: every CloverLeaf array registered as a
// GPU-resident AMR variable. Ghost width 2 throughout (CloverLeaf's halo
// depth).
#pragma once

#include "hier/variable_database.hpp"
#include "vgpu/device.hpp"

namespace ramr::app {

/// Data ids of all simulation quantities on a rank.
struct Fields {
  // Cell-centred state (time level n and n+1).
  int density0 = -1;
  int density1 = -1;
  int energy0 = -1;
  int energy1 = -1;
  int pressure = -1;
  int viscosity = -1;
  int soundspeed = -1;
  // Node-centred velocities.
  int xvel0 = -1;
  int xvel1 = -1;
  int yvel0 = -1;
  int yvel1 = -1;
  // Side-centred fluxes (x- and y-face components in one variable).
  int vol_flux = -1;
  int mass_flux = -1;
  // Work arrays (never communicated across levels).
  int pre_vol = -1;
  int post_vol = -1;
  int ener_flux = -1;   // side-centred
  int node_flux = -1;   // node-centred
  int node_mass_post = -1;
  int node_mass_pre = -1;
  int mom_flux = -1;

  /// Registers every field with GPU-resident storage on `device`.
  static Fields register_all(hier::VariableDatabase& db, vgpu::Device& device);
};

}  // namespace ramr::app
