#include "app/problem_registry.hpp"

#include <utility>

#include "util/error.hpp"

namespace ramr::app {

namespace {

// --- Stock region scenarios -------------------------------------------
//
// Three workloads stressing AMR paths the two classics do not: a radial
// blast driving a deep hierarchy, a shear layer whose refinement
// follows the rolling billows (regrid churn), and a gravity-driven
// interface on a tall domain. States are chosen pressure-balanced where
// the physics wants it (p = (gamma-1) rho e).

cfg::ScenarioSpec sedov_spec() {
  cfg::ScenarioSpec s;
  s.name = "sedov";
  s.domain_lower = {0.0, 0.0};
  s.domain_upper = {1.0, 1.0};
  // Cold quiescent background (p = 0.01) with a hot disc at the centre:
  // a circular shock sweeps outward and the gradient tagger refines a
  // thin moving annulus on every level.
  s.background = {1.0, 0.025, 0.0, 0.0};
  cfg::Region blast;
  blast.shape = cfg::Region::Shape::kCircle;
  blast.center = {0.5, 0.5};
  blast.radius = 0.0625;
  blast.state = {1.0, 250.0, 0.0, 0.0};
  s.regions.push_back(blast);
  return s;
}

cfg::ScenarioSpec kelvin_helmholtz_spec() {
  cfg::ScenarioSpec s;
  s.name = "kelvin_helmholtz";
  s.domain_lower = {0.0, 0.0};
  s.domain_upper = {1.0, 1.0};
  // Counter-streaming layers in pressure balance (p = 1 on both sides);
  // the lower, denser stream's top edge carries a sinusoidal seed so the
  // billows roll up deterministically — refinement has to chase them.
  s.background = {1.0, 2.5, -0.5, 0.0};
  cfg::Region lower;
  lower.shape = cfg::Region::Shape::kBox;
  lower.y_max = 0.5;
  lower.interface_side = "y_max";
  lower.interface_amplitude = 0.01;
  lower.interface_wavelength = 0.5;
  lower.state = {2.0, 1.25, 0.5, 0.0};
  s.regions.push_back(lower);
  return s;
}

cfg::ScenarioSpec rayleigh_taylor_spec() {
  cfg::ScenarioSpec s;
  s.name = "rayleigh_taylor";
  s.domain_lower = {0.0, 0.0};
  s.domain_upper = {0.5, 1.5};  // tall box, 1:3 aspect
  s.gravity = {0.0, -0.5};
  // Heavy fluid over light in pressure balance at the perturbed
  // mid-height interface; gravity (the accelerate-stage source hook)
  // pulls the spikes down.
  s.background = {1.0, 2.5, 0.0, 0.0};
  cfg::Region heavy;
  heavy.shape = cfg::Region::Shape::kBox;
  heavy.y_min = 0.75;
  heavy.interface_side = "y_min";
  heavy.interface_amplitude = 0.0075;
  heavy.interface_wavelength = 0.5;
  heavy.state = {2.0, 1.25, 0.0, 0.0};
  s.regions.push_back(heavy);
  return s;
}

}  // namespace

ProblemRegistry::ProblemRegistry() {
  register_factory("sod",
                   [](const Fields& f, double t) -> std::unique_ptr<HydroProblem> {
                     return std::make_unique<SodProblem>(f, t);
                   });
  register_factory("triple_point",
                   [](const Fields& f, double t) -> std::unique_ptr<HydroProblem> {
                     return std::make_unique<TriplePointProblem>(f, t);
                   });
  register_scenario(sedov_spec());
  register_scenario(kelvin_helmholtz_spec());
  register_scenario(rayleigh_taylor_spec());
}

ProblemRegistry& ProblemRegistry::instance() {
  static ProblemRegistry registry;
  return registry;
}

void ProblemRegistry::register_factory(const std::string& name,
                                       Factory factory) {
  RAMR_REQUIRE(!name.empty(), "problem name must not be empty");
  entries_[name] = Entry{std::move(factory), nullptr};
}

void ProblemRegistry::register_scenario(cfg::ScenarioSpec spec) {
  RAMR_REQUIRE(!spec.name.empty(), "scenario name must not be empty");
  const std::string name = spec.name;
  entries_[name] =
      Entry{nullptr,
            std::make_shared<const cfg::ScenarioSpec>(std::move(spec))};
}

bool ProblemRegistry::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::vector<std::string> ProblemRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(name);
  }
  return out;
}

std::unique_ptr<HydroProblem> ProblemRegistry::create(
    const std::string& name, const Fields& fields,
    double tag_threshold) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const std::string& n : names()) {
      known += known.empty() ? n : ", " + n;
    }
    RAMR_FAIL("unknown problem \"" << name << "\" (known: " << known << ")");
  }
  if (it->second.factory) {
    return it->second.factory(fields, tag_threshold);
  }
  return std::make_unique<RegionProblem>(fields, tag_threshold,
                                         it->second.spec);
}

std::shared_ptr<const cfg::ScenarioSpec> ProblemRegistry::scenario(
    const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.spec;
}

}  // namespace ramr::app
