// CloverLeaf's reflective physical boundary conditions as device
// kernels. Ghost values mirror the interior with a per-field parity:
// thermodynamic fields reflect symmetrically, the wall-normal velocity
// and flux components flip sign.
#pragma once

#include <map>

#include "app/fields.hpp"
#include "xfer/physical_boundary.hpp"

namespace ramr::app {

/// Parity of one variable under reflection across x / y boundaries,
/// per component.
struct Parity {
  double across_x = 1.0;
  double across_y = 1.0;
};

/// Reflective (free-slip wall) boundaries on all four domain edges.
class ReflectiveBoundary : public xfer::PhysicalBoundaryStrategy {
 public:
  explicit ReflectiveBoundary(const Fields& fields);

  void fill_physical_boundaries(hier::Patch& patch,
                                const mesh::Box& level_domain_box,
                                const std::vector<int>& var_ids) override;

 private:
  /// parity_[var_id][component]
  std::map<int, std::vector<Parity>> parity_;
};

}  // namespace ramr::app
