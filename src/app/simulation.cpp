#include "app/simulation.hpp"

#include <algorithm>
#include <array>

#include "app/problem_registry.hpp"
#include "geom/refine_operators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/logger.hpp"
#include "vgpu/device.hpp"

namespace ramr::app {

namespace {

std::unique_ptr<HydroProblem> make_problem(const SimulationConfig& cfg,
                                           const Fields& fields) {
  if (cfg.scenario != nullptr) {
    return std::make_unique<RegionProblem>(fields, cfg.tag_threshold,
                                           cfg.scenario);
  }
  return ProblemRegistry::instance().create(cfg.problem, fields,
                                            cfg.tag_threshold);
}

}  // namespace

Simulation::Simulation(const SimulationConfig& config,
                       simmpi::Communicator* comm)
    : Simulation(config, comm, nullptr) {}

Simulation::Simulation(const SimulationConfig& config,
                       simmpi::Communicator* comm,
                       vgpu::Device* shared_device,
                       util::FaultPlan* shared_fault_plan)
    : config_(config) {
  if (shared_fault_plan != nullptr) {
    fault_plan_ = shared_fault_plan;
  } else if (config_.faults != nullptr && config_.faults->enabled()) {
    // Per-rank salt: ranks share the seed but draw independent schedules.
    own_fault_plan_ = std::make_unique<util::FaultPlan>(
        *config_.faults,
        static_cast<std::uint64_t>(comm != nullptr ? comm->rank() : 0));
    fault_plan_ = own_fault_plan_.get();
  }
  RAMR_REQUIRE(config_.topology.device_count <= 1 ||
                   (config_.batched_launch && config_.compiled_transfer),
               "a multi-device topology requires batched_launch and "
               "compiled_transfer (per-device stage groups and compiled "
               "cross-device plans)");
  RAMR_REQUIRE(!config_.topology.gpu_direct || config_.compiled_transfer,
               "gpu_direct requires compiled_transfer (packed wire buffers)");
  if (shared_device != nullptr) {
    // Service mode: ride the server's device and clock so K jobs share
    // one modeled accelerator (memory arena included) and one account of
    // modeled time. The async model is per-rank-clock and cannot be
    // shared — the server interleaves jobs on the synchronous model and
    // hides launch overhead through its launch-fusion scope instead.
    RAMR_REQUIRE(!config_.async_overlap,
                 "async_overlap is incompatible with a shared device");
    RAMR_REQUIRE(config_.topology.device_count <= 1,
                 "a multi-device topology is incompatible with a shared "
                 "device");
    device_ = shared_device;
    clock_ = &shared_device->clock();
  } else {
    topology_ = std::make_unique<vgpu::Topology>(config_.topology,
                                                 config_.device, &own_clock_);
    device_ = &topology_->device(0);
    clock_ = &own_clock_;
  }
  if (config_.async_overlap) {
    // The timeline attaches to the rank clock: every modeled charge
    // (device, network, host ops) now advances a lane cursor, and the
    // integrator runs every halo exchange split-phase: the state
    // exchange around EOS, and — with wide_overlap (default) — the
    // remaining exchanges around the interior sweeps of their consumer
    // stages (interior/rind requires the batched launch route).
    timeline_ = std::make_unique<vgpu::Timeline>(*clock_);
    ctx_.timeline = timeline_.get();
    ctx_.wide_overlap = config_.wide_overlap && config_.batched_launch;
  }
  ctx_.comm = comm;
  ctx_.my_rank = comm != nullptr ? comm->rank() : 0;
  ctx_.clock = clock_;
  // The transfer engine fuses each aggregated message's staging copies
  // into one modeled PCIe crossing on this device.
  ctx_.device = device_;
  ctx_.compiled_transfer = config.compiled_transfer;
  // The single-device bind path is untouched when ctx_.topology stays
  // null: schedules only consider cross-device plans on a real complex.
  if (topology_ != nullptr && topology_->device_count() > 1) {
    ctx_.topology = topology_.get();
  }
  ctx_.gpu_direct = config_.topology.gpu_direct;
  ctx_.world_size = comm != nullptr ? comm->size() : 1;
  if (comm != nullptr) {
    comm->set_clock(clock_);
    if (fault_plan_ != nullptr) {
      comm->set_fault_plan(fault_plan_);
    }
  }

  const auto make_geometry = [&]() {
    // A throwaway problem instance supplies the physical extents; its
    // field ids are irrelevant for that query.
    std::unique_ptr<HydroProblem> p = make_problem(config_, Fields{});
    return mesh::GridGeometry(
        mesh::Box(0, 0, config_.nx - 1, config_.ny - 1), p->domain_lower(),
        p->domain_upper());
  };

  hierarchy_ = std::make_unique<hier::PatchHierarchy>(
      make_geometry(), config_.max_levels,
      mesh::IntVector(config_.ratio, config_.ratio), ctx_.my_rank,
      ctx_.world_size);
  fields_ = Fields::register_all(hierarchy_->variables(), *device_);
  problem_ = make_problem(config_, fields_);
  bc_ = std::make_unique<ReflectiveBoundary>(fields_);
  const hydro::Physics physics = problem_->physics();
  patch_integrator_ =
      std::make_unique<CudaPatchIntegrator>(*device_, fields_, physics);
  if (config_.batched_launch) {
    level_runner_ = std::make_unique<LevelKernelRunner>(
        *device_, fields_, physics, ctx_.topology);
  }
  level_integrator_ = std::make_unique<LagrangianEulerianLevelIntegrator>(
      *patch_integrator_, level_runner_.get());

  amr::GriddingParams gp;
  gp.cluster.efficiency = config_.cluster_efficiency;
  gp.cluster.min_size = config_.min_patch_size;
  gp.cluster.max_box_cells = config_.max_patch_cells * 16;
  gp.balance.max_patch_cells = config_.max_patch_cells;
  gp.balance.min_size = config_.min_patch_size;
  gp.balance.method = config_.balance_method;
  gp.balance.devices_per_rank =
      topology_ != nullptr ? topology_->device_count() : 1;
  gp.tag_buffer = config_.tag_buffer;

  // Variables moved onto newly created patches during regridding.
  xfer::RefineAlgorithm transfer;
  auto cell_op = std::make_shared<geom::CellConservativeLinearRefine>();
  auto node_op = std::make_shared<geom::NodeLinearRefine>();
  transfer.add(xfer::RefineItem{fields_.density0, cell_op});
  transfer.add(xfer::RefineItem{fields_.energy0, cell_op});
  transfer.add(xfer::RefineItem{fields_.xvel0, node_op});
  transfer.add(xfer::RefineItem{fields_.yvel0, node_op});

  gridding_ = std::make_unique<amr::GriddingAlgorithm>(
      gp, *problem_, std::move(transfer), bc_.get(), ctx_);
  gridding_->set_host_clock(clock_);
  gridding_->set_topology(ctx_.topology);
  integrator_ = std::make_unique<LagrangianEulerianIntegrator>(
      *hierarchy_, *level_integrator_, *gridding_, fields_, ctx_, *bc_,
      *clock_, config_.regrid_interval);

  if (config_.observability != nullptr) {
    const obs::ObservabilityConfig& oc = *config_.observability;
    if (!oc.log_level.empty()) {
      util::Logger::instance().set_level(util::parse_log_level(oc.log_level));
    }
    if (oc.trace) {
      if (clock_->listener() == nullptr) {
        recorder_ = std::make_unique<obs::TraceRecorder>(
            *clock_, static_cast<std::size_t>(oc.trace_capacity));
      } else {
        // One recorder per clock: on a shared device (service mode) the
        // first traced job wins the slot; later ones run untraced.
        RAMR_LOG_WARN("observability.trace: clock already has a listener; "
                      "tracing disabled for this instance");
      }
    }
    if (oc.metrics) {
      metrics_ = std::make_unique<obs::MetricsRegistry>();
    }
  }
}

Simulation::~Simulation() {
  // The communicator outlives this instance (it belongs to the World::run
  // body); never leave it holding a plan that dies with us.
  if (ctx_.comm != nullptr && ctx_.comm->fault_plan() == fault_plan_) {
    ctx_.comm->set_fault_plan(nullptr);
  }
}

void Simulation::initialize() {
  vgpu::ComponentScope scope(*clock_, "regrid");
  vgpu::FaultScope faults(device_, fault_plan_);
  integrator_->initialize(0.0);
  RAMR_LOG_DEBUG("initialized hierarchy: " << hierarchy_->num_levels()
                 << " levels, " << hierarchy_->total_cells() << " cells");
}

double Simulation::step() {
  if (recorder_ != nullptr) {
    recorder_->begin_step(step_count());
  }
  double dt;
  if (fault_plan_ != nullptr) {
    fault_plan_->begin_step(step_count());
    if (fault_plan_->should_inject(util::FaultSite::kStep)) {
      RAMR_FAIL("injected step fault at step " << step_count()
                << " (unhandled exception in job step)");
    }
    // The device consults the plan only while the step runs: on a shared
    // device (service mode) other jobs' launches are never attributed to
    // this job's schedule.
    vgpu::FaultScope faults(device_, fault_plan_);
    dt = integrator_->advance();
  } else {
    dt = integrator_->advance();
  }
  if (metrics_ != nullptr) {
    const int stride = config_.observability->metrics_stride;
    if (stride <= 1 || step_count() % stride == 0) {
      sample_metrics();
    }
  }
  return dt;
}

void Simulation::sample_metrics() {
  obs::MetricsRegistry& m = *metrics_;
  const double prev_modeled = m.empty() ? 0.0 : m.value("ramr_modeled_seconds");
  const std::int64_t prev_steps =
      m.empty() ? 0 : static_cast<std::int64_t>(m.value("ramr_steps_total"));
  m.set("ramr_steps_total", static_cast<std::int64_t>(step_count()));
  m.set("ramr_sim_time", time());
  m.set("ramr_last_dt", last_dt());
  m.set("ramr_modeled_seconds", modeled_seconds());

  const int devices = topology_ != nullptr ? topology_->device_count() : 1;
  std::uint64_t launches = 0;
  double kernel_seconds = 0.0;
  vgpu::TransferLog transfers;
  std::uint64_t arena_peak = 0;
  std::array<std::uint64_t, vgpu::kLaunchTagCount> by_tag{};
  for (int d = 0; d < devices; ++d) {
    vgpu::Device& dev = topology_ != nullptr ? topology_->device(d) : *device_;
    launches += dev.launch_count();
    kernel_seconds += dev.kernel_seconds();
    const vgpu::TransferLog& t = dev.transfers();
    transfers.h2d_bytes += t.h2d_bytes;
    transfers.d2h_bytes += t.d2h_bytes;
    transfers.peer_bytes += t.peer_bytes;
    transfers.gpu_direct_bytes += t.gpu_direct_bytes;
    arena_peak = std::max(arena_peak, dev.peak_bytes_allocated());
    for (int tag = 0; tag < vgpu::kLaunchTagCount; ++tag) {
      by_tag[static_cast<std::size_t>(tag)] +=
          dev.launch_count(static_cast<vgpu::LaunchTag>(tag));
    }
  }
  m.set("ramr_launches_total", launches);
  for (int tag = 0; tag < vgpu::kLaunchTagCount; ++tag) {
    m.set(std::string("ramr_launches_total{tag=\"") +
              obs::launch_tag_label(tag) + "\"}",
          by_tag[static_cast<std::size_t>(tag)]);
  }
  m.set("ramr_kernel_seconds", kernel_seconds);
  m.set("ramr_bytes_total{dir=\"d2h\"}", transfers.d2h_bytes);
  m.set("ramr_bytes_total{dir=\"h2d\"}", transfers.h2d_bytes);
  m.set("ramr_bytes_total{dir=\"peer\"}", transfers.peer_bytes);
  m.set("ramr_bytes_total{dir=\"gpu_direct\"}", transfers.gpu_direct_bytes);
  m.set("ramr_arena_peak_bytes", arena_peak);

  const TransferCounters& tc = integrator_->transfer_counters();
  m.set("ramr_halo_fills_total", tc.halo_fills);
  m.set("ramr_split_fills_total", tc.split_fills);
  m.set("ramr_messages_sent_total", tc.messages_sent);
  m.set("ramr_wire_bytes_total", tc.bytes_sent);
  // One loop per metric family, not one per window: registration order
  // is exposition order, and Prometheus text requires each family's
  // labelled series contiguous under a single TYPE line.
  const auto window_label = [](int w) {
    return std::string("{window=\"") + TransferCounters::window_name(w) +
           "\"}";
  };
  for (int w = 0; w < TransferCounters::kWindowCount; ++w) {
    m.set("ramr_window_fills_total" + window_label(w),
          tc.window[static_cast<std::size_t>(w)].fills);
  }
  for (int w = 0; w < TransferCounters::kWindowCount; ++w) {
    const TransferCounters::WindowStats& ws =
        tc.window[static_cast<std::size_t>(w)];
    m.set("ramr_window_hidden_fraction" + window_label(w),
          ws.comm_seconds > 0.0 ? ws.overlap_seconds_saved / ws.comm_seconds
                                : 0.0);
  }

  const amr::GriddingStats& gs = gridding_->stats();
  m.set("ramr_regrids_total", gs.regrids);
  m.set("ramr_load_imbalance", gs.imbalance_history.empty()
                                   ? 0.0
                                   : gs.imbalance_history.back());

  if (fault_plan_ != nullptr) {
    const vgpu::FaultStats& fs = device_->fault_stats();
    m.set("ramr_faults_total{site=\"launch\"}", fs.launch_faults);
    m.set("ramr_faults_total{site=\"alloc\"}", fs.alloc_faults);
    m.set("ramr_launch_aborts_total", fs.launch_aborts);
  }

  if (timeline_ != nullptr) {
    m.set("ramr_overlap_seconds_saved", timeline_->overlap_seconds_saved());
    m.set("ramr_makespan_seconds", timeline_->makespan());
  }
  if (recorder_ != nullptr) {
    m.set("ramr_trace_spans", static_cast<std::uint64_t>(recorder_->size()));
    m.set("ramr_trace_dropped_total", recorder_->dropped());
  }
  // With metrics_stride > 1 the delta since the previous sample covers
  // several steps; normalize so the histogram keeps per-step semantics.
  const std::int64_t steps_since =
      std::max<std::int64_t>(1, step_count() - prev_steps);
  m.observe("ramr_step_seconds", (modeled_seconds() - prev_modeled) /
                                     static_cast<double>(steps_since));
  m.sample(step_count());
}

void Simulation::run(int max_steps, double end_time) {
  for (int s = 0; s < max_steps && time() < end_time; ++s) {
    step();
  }
}

}  // namespace ramr::app
