#include "app/simulation.hpp"

#include "app/problem_registry.hpp"
#include "geom/refine_operators.hpp"
#include "util/error.hpp"
#include "util/logger.hpp"
#include "vgpu/device.hpp"

namespace ramr::app {

namespace {

std::unique_ptr<HydroProblem> make_problem(const SimulationConfig& cfg,
                                           const Fields& fields) {
  if (cfg.scenario != nullptr) {
    return std::make_unique<RegionProblem>(fields, cfg.tag_threshold,
                                           cfg.scenario);
  }
  return ProblemRegistry::instance().create(cfg.problem, fields,
                                            cfg.tag_threshold);
}

}  // namespace

Simulation::Simulation(const SimulationConfig& config,
                       simmpi::Communicator* comm)
    : Simulation(config, comm, nullptr) {}

Simulation::Simulation(const SimulationConfig& config,
                       simmpi::Communicator* comm,
                       vgpu::Device* shared_device,
                       util::FaultPlan* shared_fault_plan)
    : config_(config) {
  if (shared_fault_plan != nullptr) {
    fault_plan_ = shared_fault_plan;
  } else if (config_.faults != nullptr && config_.faults->enabled()) {
    // Per-rank salt: ranks share the seed but draw independent schedules.
    own_fault_plan_ = std::make_unique<util::FaultPlan>(
        *config_.faults,
        static_cast<std::uint64_t>(comm != nullptr ? comm->rank() : 0));
    fault_plan_ = own_fault_plan_.get();
  }
  RAMR_REQUIRE(config_.topology.device_count <= 1 ||
                   (config_.batched_launch && config_.compiled_transfer),
               "a multi-device topology requires batched_launch and "
               "compiled_transfer (per-device stage groups and compiled "
               "cross-device plans)");
  RAMR_REQUIRE(!config_.topology.gpu_direct || config_.compiled_transfer,
               "gpu_direct requires compiled_transfer (packed wire buffers)");
  if (shared_device != nullptr) {
    // Service mode: ride the server's device and clock so K jobs share
    // one modeled accelerator (memory arena included) and one account of
    // modeled time. The async model is per-rank-clock and cannot be
    // shared — the server interleaves jobs on the synchronous model and
    // hides launch overhead through its launch-fusion scope instead.
    RAMR_REQUIRE(!config_.async_overlap,
                 "async_overlap is incompatible with a shared device");
    RAMR_REQUIRE(config_.topology.device_count <= 1,
                 "a multi-device topology is incompatible with a shared "
                 "device");
    device_ = shared_device;
    clock_ = &shared_device->clock();
  } else {
    topology_ = std::make_unique<vgpu::Topology>(config_.topology,
                                                 config_.device, &own_clock_);
    device_ = &topology_->device(0);
    clock_ = &own_clock_;
  }
  if (config_.async_overlap) {
    // The timeline attaches to the rank clock: every modeled charge
    // (device, network, host ops) now advances a lane cursor, and the
    // integrator runs every halo exchange split-phase: the state
    // exchange around EOS, and — with wide_overlap (default) — the
    // remaining exchanges around the interior sweeps of their consumer
    // stages (interior/rind requires the batched launch route).
    timeline_ = std::make_unique<vgpu::Timeline>(*clock_);
    ctx_.timeline = timeline_.get();
    ctx_.wide_overlap = config_.wide_overlap && config_.batched_launch;
  }
  ctx_.comm = comm;
  ctx_.my_rank = comm != nullptr ? comm->rank() : 0;
  ctx_.clock = clock_;
  // The transfer engine fuses each aggregated message's staging copies
  // into one modeled PCIe crossing on this device.
  ctx_.device = device_;
  ctx_.compiled_transfer = config.compiled_transfer;
  // The single-device bind path is untouched when ctx_.topology stays
  // null: schedules only consider cross-device plans on a real complex.
  if (topology_ != nullptr && topology_->device_count() > 1) {
    ctx_.topology = topology_.get();
  }
  ctx_.gpu_direct = config_.topology.gpu_direct;
  ctx_.world_size = comm != nullptr ? comm->size() : 1;
  if (comm != nullptr) {
    comm->set_clock(clock_);
    if (fault_plan_ != nullptr) {
      comm->set_fault_plan(fault_plan_);
    }
  }

  const auto make_geometry = [&]() {
    // A throwaway problem instance supplies the physical extents; its
    // field ids are irrelevant for that query.
    std::unique_ptr<HydroProblem> p = make_problem(config_, Fields{});
    return mesh::GridGeometry(
        mesh::Box(0, 0, config_.nx - 1, config_.ny - 1), p->domain_lower(),
        p->domain_upper());
  };

  hierarchy_ = std::make_unique<hier::PatchHierarchy>(
      make_geometry(), config_.max_levels,
      mesh::IntVector(config_.ratio, config_.ratio), ctx_.my_rank,
      ctx_.world_size);
  fields_ = Fields::register_all(hierarchy_->variables(), *device_);
  problem_ = make_problem(config_, fields_);
  bc_ = std::make_unique<ReflectiveBoundary>(fields_);
  const hydro::Physics physics = problem_->physics();
  patch_integrator_ =
      std::make_unique<CudaPatchIntegrator>(*device_, fields_, physics);
  if (config_.batched_launch) {
    level_runner_ = std::make_unique<LevelKernelRunner>(
        *device_, fields_, physics, ctx_.topology);
  }
  level_integrator_ = std::make_unique<LagrangianEulerianLevelIntegrator>(
      *patch_integrator_, level_runner_.get());

  amr::GriddingParams gp;
  gp.cluster.efficiency = config_.cluster_efficiency;
  gp.cluster.min_size = config_.min_patch_size;
  gp.cluster.max_box_cells = config_.max_patch_cells * 16;
  gp.balance.max_patch_cells = config_.max_patch_cells;
  gp.balance.min_size = config_.min_patch_size;
  gp.balance.method = config_.balance_method;
  gp.balance.devices_per_rank =
      topology_ != nullptr ? topology_->device_count() : 1;
  gp.tag_buffer = config_.tag_buffer;

  // Variables moved onto newly created patches during regridding.
  xfer::RefineAlgorithm transfer;
  auto cell_op = std::make_shared<geom::CellConservativeLinearRefine>();
  auto node_op = std::make_shared<geom::NodeLinearRefine>();
  transfer.add(xfer::RefineItem{fields_.density0, cell_op});
  transfer.add(xfer::RefineItem{fields_.energy0, cell_op});
  transfer.add(xfer::RefineItem{fields_.xvel0, node_op});
  transfer.add(xfer::RefineItem{fields_.yvel0, node_op});

  gridding_ = std::make_unique<amr::GriddingAlgorithm>(
      gp, *problem_, std::move(transfer), bc_.get(), ctx_);
  gridding_->set_host_clock(clock_);
  gridding_->set_topology(ctx_.topology);
  integrator_ = std::make_unique<LagrangianEulerianIntegrator>(
      *hierarchy_, *level_integrator_, *gridding_, fields_, ctx_, *bc_,
      *clock_, config_.regrid_interval);
}

Simulation::~Simulation() {
  // The communicator outlives this instance (it belongs to the World::run
  // body); never leave it holding a plan that dies with us.
  if (ctx_.comm != nullptr && ctx_.comm->fault_plan() == fault_plan_) {
    ctx_.comm->set_fault_plan(nullptr);
  }
}

void Simulation::initialize() {
  vgpu::ComponentScope scope(*clock_, "regrid");
  vgpu::FaultScope faults(device_, fault_plan_);
  integrator_->initialize(0.0);
  RAMR_LOG_DEBUG("initialized hierarchy: " << hierarchy_->num_levels()
                 << " levels, " << hierarchy_->total_cells() << " cells");
}

double Simulation::step() {
  if (fault_plan_ != nullptr) {
    fault_plan_->begin_step(step_count());
    if (fault_plan_->should_inject(util::FaultSite::kStep)) {
      RAMR_FAIL("injected step fault at step " << step_count()
                << " (unhandled exception in job step)");
    }
    // The device consults the plan only while the step runs: on a shared
    // device (service mode) other jobs' launches are never attributed to
    // this job's schedule.
    vgpu::FaultScope faults(device_, fault_plan_);
    return integrator_->advance();
  }
  return integrator_->advance();
}

void Simulation::run(int max_steps, double end_time) {
  for (int s = 0; s < max_steps && time() < end_time; ++s) {
    step();
  }
}

}  // namespace ramr::app
