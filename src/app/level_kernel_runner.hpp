// Batched per-level kernel driver: gathers every local patch's views and
// geometry once per stage and issues ONE fused launch per kernel
// sub-stage per level (vgpu::Device::launch_batched), instead of the
// per-patch launches of PatchIntegrator. A level with P patches pays one
// launch overhead per sub-stage and an occupancy ramp computed from the
// level's total thread count — the batched-launch approach of GPU AMR
// frameworks (GAMER, Uintah) applied to the paper's resident step.
// Results are bit-identical to the per-patch path: both routes share the
// kernel bodies in hydro/kernels.cpp.
#pragma once

#include <vector>

#include "app/fields.hpp"
#include "hier/patch_level.hpp"
#include "hydro/kernels.hpp"

namespace ramr::app {

/// Fused per-level forms of the CloverLeaf timestep stages.
class LevelKernelRunner {
 public:
  LevelKernelRunner(vgpu::Device& device, const Fields& fields)
      : device_(&device), stream_(device, "hydro"), f_(fields) {}

  /// Minimum stable dt over the level: one fused reduction and ONE
  /// scalar D2H readback per level (was one of each per patch).
  double compute_dt(hier::PatchLevel& level, const hydro::CellGeom& g);

  void ideal_gas(hier::PatchLevel& level, const hydro::CellGeom& g,
                 bool predict);
  void viscosity(hier::PatchLevel& level, const hydro::CellGeom& g);
  void pdv(hier::PatchLevel& level, const hydro::CellGeom& g, double dt,
           bool predict);
  void accelerate(hier::PatchLevel& level, const hydro::CellGeom& g,
                  double dt);
  void flux_calc(hier::PatchLevel& level, const hydro::CellGeom& g, double dt);
  void advec_cell(hier::PatchLevel& level, const hydro::CellGeom& g,
                  bool x_direction, int sweep_number);
  void advec_mom(hier::PatchLevel& level, const hydro::CellGeom& g,
                 bool x_direction, int sweep_number, bool x_velocity);
  void reset_field(hier::PatchLevel& level, const hydro::CellGeom& g);

 private:
  util::View view(hier::Patch& p, int id, int comp = 0) const;

  vgpu::Device* device_;
  vgpu::Stream stream_;
  Fields f_;
};

}  // namespace ramr::app
