// Batched per-level kernel driver: gathers every local patch's views and
// geometry once per stage and issues ONE fused launch per kernel
// sub-stage per level (vgpu::Device::launch_batched), instead of the
// per-patch launches of PatchIntegrator. A level with P patches pays one
// launch overhead per sub-stage and an occupancy ramp computed from the
// level's total thread count — the batched-launch approach of GPU AMR
// frameworks (GAMER, Uintah) applied to the paper's resident step.
// Results are bit-identical to the per-patch path: both routes share the
// kernel bodies in hydro/kernels.cpp.
#pragma once

#include <algorithm>
#include <vector>

#include "app/fields.hpp"
#include "hier/patch_level.hpp"
#include "hydro/kernels.hpp"
#include "vgpu/topology.hpp"

namespace ramr::app {

/// Fused per-level forms of the CloverLeaf timestep stages.
class LevelKernelRunner {
 public:
  /// `physics` carries the scenario's EOS gamma and gravity; the default
  /// keeps the historical arithmetic bit-identical. With a multi-device
  /// `topology`, every stage issues one fused launch per device over
  /// that device's patches (grouped by the data's actual residency), on
  /// the device's "gpu<i>" timeline lane — devices compute their groups
  /// concurrently and the stage completes at the slowest device's join.
  LevelKernelRunner(vgpu::Device& device, const Fields& fields,
                    const hydro::Physics& physics = {},
                    vgpu::Topology* topology = nullptr)
      : device_(&device), stream_(device, "hydro"), f_(fields),
        phys_(physics), topology_(topology) {}

  /// Minimum stable dt over the level: one fused reduction and ONE
  /// scalar D2H readback per level (was one of each per patch).
  double compute_dt(hier::PatchLevel& level, const hydro::CellGeom& g);

  /// Every stage can sweep the full level (kAll), only the patch
  /// interiors (kInterior — safe while a halo exchange is in flight), or
  /// the complementary boundary rind (kRind — run after the exchange
  /// finished); see hydro::SweepPart.
  void ideal_gas(hier::PatchLevel& level, const hydro::CellGeom& g,
                 bool predict, hydro::SweepPart part = hydro::SweepPart::kAll);
  void viscosity(hier::PatchLevel& level, const hydro::CellGeom& g,
                 hydro::SweepPart part = hydro::SweepPart::kAll);
  void pdv(hier::PatchLevel& level, const hydro::CellGeom& g, double dt,
           bool predict, hydro::SweepPart part = hydro::SweepPart::kAll);
  void accelerate(hier::PatchLevel& level, const hydro::CellGeom& g, double dt,
                  hydro::SweepPart part = hydro::SweepPart::kAll);
  void flux_calc(hier::PatchLevel& level, const hydro::CellGeom& g, double dt,
                 hydro::SweepPart part = hydro::SweepPart::kAll);
  void advec_cell(hier::PatchLevel& level, const hydro::CellGeom& g,
                  bool x_direction, int sweep_number,
                  hydro::SweepPart part = hydro::SweepPart::kAll);
  void advec_mom(hier::PatchLevel& level, const hydro::CellGeom& g,
                 bool x_direction, int sweep_number, bool x_velocity,
                 hydro::SweepPart part = hydro::SweepPart::kAll);
  /// Both velocity components of one momentum sweep in six fused
  /// launches instead of twelve: the component-independent volumes /
  /// node fluxes / node masses run ONCE (the per-component route
  /// recomputes them bit-identically), and the per-component momentum
  /// flux + velocity update fuse both components into one launch each
  /// (each component writes its own vel1 and mom_flux plane, so the
  /// fusion is race-free).
  void advec_mom_both(hier::PatchLevel& level, const hydro::CellGeom& g,
                      bool x_direction, int sweep_number,
                      hydro::SweepPart part = hydro::SweepPart::kAll);
  void reset_field(hier::PatchLevel& level, const hydro::CellGeom& g,
                   hydro::SweepPart part = hydro::SweepPart::kAll);

 private:
  util::View view(hier::Patch& p, int id, int comp = 0, int plane = 0) const;

  /// Calls `fn(device, stream, patches, boxes)` once per device group of
  /// the level's local patches. Single-device (or no topology): one call
  /// on the runner's own device and stream — the legacy fused launch,
  /// unchanged. Multi-device: groups by each patch's device ordinal; with
  /// a timeline each group's lane forks from the caller's cursor (the
  /// host issues a stage only after the previous one joined) and the
  /// stage joins back at the slowest group's completion.
  template <typename Fn>
  void for_groups(hier::PatchLevel& level, Fn&& fn) {
    if (topology_ == nullptr || topology_->device_count() <= 1) {
      std::vector<hier::Patch*> patches;
      std::vector<mesh::Box> boxes;
      patches.reserve(level.local_patches().size());
      boxes.reserve(level.local_patches().size());
      for (const auto& p : level.local_patches()) {
        patches.push_back(p.get());
        boxes.push_back(p->box());
      }
      fn(*device_, stream_, patches, boxes);
      return;
    }
    vgpu::Timeline* tl = device_->timeline();
    double join = 0.0;
    for (int d = 0; d < topology_->device_count(); ++d) {
      std::vector<hier::Patch*> patches;
      std::vector<mesh::Box> boxes;
      for (const auto& p : level.local_patches()) {
        if (p->device_ordinal() == d) {
          patches.push_back(p.get());
          boxes.push_back(p->box());
        }
      }
      if (patches.empty()) {
        continue;
      }
      vgpu::Device& dev = topology_->device(d);
      vgpu::Stream stream(dev, "hydro");
      if (tl != nullptr) {
        const int lane = tl->lane(vgpu::Topology::gpu_lane_name(d));
        tl->advance(lane, tl->now(tl->active_lane()));
        stream.bind_lane(lane);
      }
      fn(dev, stream, patches, boxes);
      if (tl != nullptr) {
        vgpu::Event done;
        done.record(stream);
        join = std::max(join, done.timestamp());
      }
    }
    if (tl != nullptr) {
      tl->advance(tl->active_lane(), join);
    }
  }

  vgpu::Device* device_;
  vgpu::Stream stream_;
  Fields f_;
  hydro::Physics phys_;
  vgpu::Topology* topology_ = nullptr;
};

}  // namespace ramr::app
