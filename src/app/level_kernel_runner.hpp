// Batched per-level kernel driver: gathers every local patch's views and
// geometry once per stage and issues ONE fused launch per kernel
// sub-stage per level (vgpu::Device::launch_batched), instead of the
// per-patch launches of PatchIntegrator. A level with P patches pays one
// launch overhead per sub-stage and an occupancy ramp computed from the
// level's total thread count — the batched-launch approach of GPU AMR
// frameworks (GAMER, Uintah) applied to the paper's resident step.
// Results are bit-identical to the per-patch path: both routes share the
// kernel bodies in hydro/kernels.cpp.
#pragma once

#include <vector>

#include "app/fields.hpp"
#include "hier/patch_level.hpp"
#include "hydro/kernels.hpp"

namespace ramr::app {

/// Fused per-level forms of the CloverLeaf timestep stages.
class LevelKernelRunner {
 public:
  /// `physics` carries the scenario's EOS gamma and gravity; the default
  /// keeps the historical arithmetic bit-identical.
  LevelKernelRunner(vgpu::Device& device, const Fields& fields,
                    const hydro::Physics& physics = {})
      : device_(&device), stream_(device, "hydro"), f_(fields),
        phys_(physics) {}

  /// Minimum stable dt over the level: one fused reduction and ONE
  /// scalar D2H readback per level (was one of each per patch).
  double compute_dt(hier::PatchLevel& level, const hydro::CellGeom& g);

  /// Every stage can sweep the full level (kAll), only the patch
  /// interiors (kInterior — safe while a halo exchange is in flight), or
  /// the complementary boundary rind (kRind — run after the exchange
  /// finished); see hydro::SweepPart.
  void ideal_gas(hier::PatchLevel& level, const hydro::CellGeom& g,
                 bool predict, hydro::SweepPart part = hydro::SweepPart::kAll);
  void viscosity(hier::PatchLevel& level, const hydro::CellGeom& g,
                 hydro::SweepPart part = hydro::SweepPart::kAll);
  void pdv(hier::PatchLevel& level, const hydro::CellGeom& g, double dt,
           bool predict, hydro::SweepPart part = hydro::SweepPart::kAll);
  void accelerate(hier::PatchLevel& level, const hydro::CellGeom& g, double dt,
                  hydro::SweepPart part = hydro::SweepPart::kAll);
  void flux_calc(hier::PatchLevel& level, const hydro::CellGeom& g, double dt,
                 hydro::SweepPart part = hydro::SweepPart::kAll);
  void advec_cell(hier::PatchLevel& level, const hydro::CellGeom& g,
                  bool x_direction, int sweep_number,
                  hydro::SweepPart part = hydro::SweepPart::kAll);
  void advec_mom(hier::PatchLevel& level, const hydro::CellGeom& g,
                 bool x_direction, int sweep_number, bool x_velocity,
                 hydro::SweepPart part = hydro::SweepPart::kAll);
  /// Both velocity components of one momentum sweep in six fused
  /// launches instead of twelve: the component-independent volumes /
  /// node fluxes / node masses run ONCE (the per-component route
  /// recomputes them bit-identically), and the per-component momentum
  /// flux + velocity update fuse both components into one launch each
  /// (each component writes its own vel1 and mom_flux plane, so the
  /// fusion is race-free).
  void advec_mom_both(hier::PatchLevel& level, const hydro::CellGeom& g,
                      bool x_direction, int sweep_number,
                      hydro::SweepPart part = hydro::SweepPart::kAll);
  void reset_field(hier::PatchLevel& level, const hydro::CellGeom& g,
                   hydro::SweepPart part = hydro::SweepPart::kAll);

 private:
  util::View view(hier::Patch& p, int id, int comp = 0, int plane = 0) const;

  vgpu::Device* device_;
  vgpu::Stream stream_;
  Fields f_;
  hydro::Physics phys_;
};

}  // namespace ramr::app
