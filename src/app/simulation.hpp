// CleverLeaf simulation facade: wires the device, fields, problem,
// gridding and integrators together for one rank (paper Fig. 6's
// `main`). Examples, tests and benches drive the library through this
// class; the simulation service (src/svc) drives many instances over
// one shared device.
#pragma once

#include <memory>
#include <string>

#include "amr/gridding_algorithm.hpp"
#include "app/integrator.hpp"
#include "app/level_kernel_runner.hpp"
#include "app/problems.hpp"
#include "obs/observability.hpp"
#include "simmpi/communicator.hpp"
#include "util/fault.hpp"
#include "vgpu/timeline.hpp"

namespace ramr::obs {
class MetricsRegistry;
class TraceRecorder;
}  // namespace ramr::obs

namespace ramr::app {

/// Everything needed to set up a run.
struct SimulationConfig {
  /// Problem name resolved through the ProblemRegistry ("sod",
  /// "triple_point", "sedov", "kelvin_helmholtz", "rayleigh_taylor", or
  /// anything registered at startup).
  std::string problem = "sod";
  /// Inline scenario override: when set, the run uses this spec (through
  /// RegionProblem) instead of looking `problem` up in the registry —
  /// the route JSON configs with a custom `scenario` block take.
  std::shared_ptr<const cfg::ScenarioSpec> scenario;
  int nx = 128;                 ///< level-0 cells in x
  int ny = 128;                 ///< level-0 cells in y
  int max_levels = 3;           ///< paper: 3 levels
  int ratio = 2;                ///< paper: refinement ratio 2
  int regrid_interval = 10;     ///< steps between regrids
  int tag_buffer = 2;
  double tag_threshold = 0.05;
  std::int64_t max_patch_cells = 64 * 64;
  int min_patch_size = 8;
  double cluster_efficiency = 0.75;
  vgpu::DeviceSpec device = vgpu::tesla_k20x();  ///< compute backend
  /// Devices per rank and their peer links (the JSON `topology` block).
  /// device_count == 1 (default) is the paper's single-GPU rank and
  /// changes nothing; > 1 spreads the level's patches over the rank's
  /// devices, runs every stage as one fused launch per device and
  /// compiles cross-device halo copies onto the peer-link lanes
  /// (docs/device_topology.md). Multi-device requires batched_launch and
  /// compiled_transfer; speedup manifests under async_overlap (the
  /// synchronous model sums charges across lanes).
  vgpu::TopologySpec topology;
  /// Patch-to-rank partitioning (kMorton default, kGreedy ablation,
  /// kMeasured = Morton ranks + measured per-device costs steering the
  /// patch-to-device assignment between regrids).
  amr::BalanceMethod balance_method = amr::BalanceMethod::kMorton;
  /// Fused per-level kernel batching: one launch per kernel sub-stage
  /// per level (default). Off = the per-patch launch structure of the
  /// paper's original code; both produce bit-identical fields.
  bool batched_launch = true;
  /// Compiled transfer plans: one fused pack/unpack launch per peer
  /// message and one local-copy launch per exchange (default). Off = the
  /// per-transaction legacy transfer path; both produce bit-identical
  /// fields (docs/transfer_api.md).
  bool compiled_transfer = true;
  /// Async timeline model: attach a vgpu::Timeline to the rank clock and
  /// run the start-of-step state exchange split-phase around the EOS
  /// stage, with send/recv wire legs on the network lane — communication
  /// overlaps compute and the receiver waits on message arrival instead
  /// of re-paying wire time. Fields are bit-identical to the synchronous
  /// path (identical launch contents; only modeled timestamps differ);
  /// step time is then Timeline::makespan(), strictly below the serial
  /// sum when any overlap occurs (docs/async_overlap.md). Off (default)
  /// = the synchronous single-cursor model of the compiled-plan path.
  bool async_overlap = false;
  /// Widened overlap window (effective only with async_overlap and
  /// batched_launch): EVERY per-step halo exchange hides behind compute,
  /// not just the state exchange behind EOS. Each stencil stage splits
  /// into a ghost-free interior sweep that runs while its exchange's
  /// messages fly and a boundary rind sweep after the exchange finishes,
  /// and the strictly-interior half of each coarse gather ships at
  /// begin. Fields stay bit-identical to the synchronous path. False =
  /// the single-window overlap, kept for ablation
  /// (docs/async_overlap.md).
  bool wide_overlap = true;
  /// Deterministic fault injection (util/fault.hpp, the JSON `faults`
  /// block): when set, the simulation owns a seeded FaultPlan consulted
  /// at kernel launches, allocations, message sends, checkpoint writes
  /// and step boundaries. Null (default) = no injection. Shared across
  /// copies of the config; the plan itself is per-instance.
  std::shared_ptr<const util::FaultConfig> faults;
  /// Observability (the JSON `observability` block, docs/
  /// observability.md): span tracing and per-step metric sampling. Null
  /// (default) = fully off — the run is bit-identical (launch counts,
  /// modeled seconds, fields) to one without the subsystem, because
  /// recording only observes the clock, never charges it.
  std::shared_ptr<const obs::ObservabilityConfig> observability;
};

/// One rank's simulation instance.
class Simulation {
 public:
  /// `comm` may be null for a serial run. The per-rank clock accumulates
  /// all modeled time (device + network) by component.
  Simulation(const SimulationConfig& config, simmpi::Communicator* comm);

  /// Multi-job form (svc::SimulationServer): the simulation runs on
  /// `shared_device` and charges ITS clock instead of owning either, so
  /// K concurrent jobs compete for one modeled accelerator (arena
  /// capacity included) and their kernel charges can fuse across jobs
  /// inside the server's launch-fusion scope. Requires the synchronous
  /// timing model (config.async_overlap == false).
  ///
  /// `shared_fault_plan` lets an owner (the recovering server) keep ONE
  /// fault plan alive across restarts of the same job: a fresh Simulation
  /// constructed with the plan of its predecessor continues the fault
  /// schedule instead of replaying it — without this, the deterministic
  /// fault that killed an attempt would re-fire on every retry. Null =
  /// the simulation owns a fresh plan when config.faults is set.
  Simulation(const SimulationConfig& config, simmpi::Communicator* comm,
             vgpu::Device* shared_device,
             util::FaultPlan* shared_fault_plan = nullptr);

  ~Simulation();

  /// Builds the initial hierarchy.
  void initialize();

  /// Advances one step; returns dt.
  double step();

  /// Runs until `max_steps` or `end_time`, whichever first.
  void run(int max_steps, double end_time = 1.0e30);

  double time() const { return integrator_->time(); }
  int step_count() const { return integrator_->step_count(); }
  double last_dt() const { return integrator_->last_dt(); }

  hier::PatchHierarchy& hierarchy() { return *hierarchy_; }
  vgpu::SimClock& clock() { return *clock_; }
  /// Multi-lane timing model (async_overlap runs); null otherwise.
  vgpu::Timeline* timeline() { return timeline_.get(); }
  /// Modeled completion time of this rank, comparable across the two
  /// timing models: the serial clock total (a pure busy sum) on the
  /// synchronous path, and the timeline's comparable_seconds() (lane
  /// makespan minus cross-rank imbalance idle, which the serial account
  /// never contained) under async_overlap. Timeline::makespan() stays
  /// available for the wait-inclusive completion time.
  double modeled_seconds() const {
    return timeline_ != nullptr ? timeline_->comparable_seconds()
                                : clock_->total();
  }
  vgpu::Device& device() { return *device_; }
  /// The rank's device complex; null on shared-device (service) runs.
  vgpu::Topology* topology() { return topology_.get(); }
  const Fields& fields() const { return fields_; }
  const SimulationConfig& config() const { return config_; }
  HydroProblem& problem() { return *problem_; }
  LagrangianEulerianIntegrator& integrator() { return *integrator_; }
  xfer::ParallelContext& context() { return ctx_; }
  /// Refinement activity (tags collected, regrids fired, levels built).
  const amr::GriddingStats& gridding_stats() const {
    return gridding_->stats();
  }

  hydro::FieldSummary composite_summary() {
    return integrator_->composite_summary();
  }

  /// Live fault plan (owned or shared); null when injection is off.
  util::FaultPlan* fault_plan() const { return fault_plan_; }

  /// Span recorder attached to this rank's clock; null unless
  /// config.observability->trace is on (docs/observability.md).
  obs::TraceRecorder* trace_recorder() { return recorder_.get(); }
  /// Per-step metric samples; null unless config.observability->metrics.
  obs::MetricsRegistry* metrics_registry() { return metrics_.get(); }

  /// Writes the full state (hierarchy structure, all fields, time) to
  /// `path` + ".rank<r>" (Fig. 2's putToRestart applied to every patch
  /// datum; device data crosses PCIe once, charged and logged).
  void save_checkpoint(const std::string& path);

  /// Rebuilds the hierarchy and reloads all data from a checkpoint
  /// written by a run with the same configuration and world size. Call
  /// instead of initialize().
  void restore_checkpoint(const std::string& path);

 private:
  /// Snapshots every registered metric for the step just completed.
  void sample_metrics();

  SimulationConfig config_;
  /// Owned when config_.faults is set and no shared plan was injected.
  std::unique_ptr<util::FaultPlan> own_fault_plan_;
  util::FaultPlan* fault_plan_ = nullptr;
  /// Rank clock when this instance owns its device; unused (and empty)
  /// when a shared device injects its own clock.
  vgpu::SimClock own_clock_;
  vgpu::SimClock* clock_;
  /// Attached to the clock when async_overlap is on (declared after the
  /// owned clock: detaches before it dies).
  std::unique_ptr<vgpu::Timeline> timeline_;
  /// Observability (config.observability): the recorder attaches to the
  /// clock as its ChargeListener (declared after the owned clock so it
  /// detaches first, like the timeline).
  std::unique_ptr<obs::TraceRecorder> recorder_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  /// Owns this rank's devices (even when device_count == 1) unless a
  /// shared device was injected; device_ then aliases ordinal 0.
  std::unique_ptr<vgpu::Topology> topology_;
  vgpu::Device* device_;
  xfer::ParallelContext ctx_;
  std::unique_ptr<hier::PatchHierarchy> hierarchy_;
  Fields fields_;
  std::unique_ptr<HydroProblem> problem_;
  std::unique_ptr<ReflectiveBoundary> bc_;
  std::unique_ptr<CudaPatchIntegrator> patch_integrator_;
  std::unique_ptr<LevelKernelRunner> level_runner_;
  std::unique_ptr<LagrangianEulerianLevelIntegrator> level_integrator_;
  std::unique_ptr<amr::GriddingAlgorithm> gridding_;
  std::unique_ptr<LagrangianEulerianIntegrator> integrator_;
};

}  // namespace ramr::app
