// Checkpoint/restart for the whole simulation: hierarchy structure plus
// every patch datum through the PatchData restart interface (paper
// Fig. 2: putToRestart / getFromRestart). Writes are crash-consistent:
// the database serialises with a checksummed version header to a .tmp
// that is atomically renamed (pdat/database.cpp), and restore fails
// loudly — naming the file — on any corruption.
#include <cstring>
#include <filesystem>
#include <string>

#include "app/simulation.hpp"
#include "pdat/database.hpp"
#include "util/logger.hpp"

namespace ramr::app {

using hier::GlobalPatch;
using hier::PatchLevel;
using pdat::Database;

namespace {

std::string rank_path(const std::string& path, int rank) {
  return path + ".rank" + std::to_string(rank);
}

std::string patch_prefix(int level, int gid, int var) {
  return "l" + std::to_string(level) + ".p" + std::to_string(gid) + ".v" +
         std::to_string(var);
}

}  // namespace

void Simulation::save_checkpoint(const std::string& path) {
  Database db;
  db.put_value<double>("meta.time", integrator_->time());
  db.put_value<int>("meta.step", integrator_->step_count());
  db.put_value<int>("meta.num_levels", hierarchy_->num_levels());
  db.put_value<int>("meta.world_size", ctx_.world_size);
  db.put_value<int>("meta.nx", config_.nx);
  db.put_value<int>("meta.ny", config_.ny);
  db.put_string("meta.problem", config_.problem);

  for (int l = 0; l < hierarchy_->num_levels(); ++l) {
    const PatchLevel& level = hierarchy_->level(l);
    const std::string lp = "l" + std::to_string(l);
    // Replicated structure: box corners, owners, global ids.
    std::vector<int> meta;
    for (const GlobalPatch& gp : level.global_patches()) {
      meta.push_back(gp.box.lower().i);
      meta.push_back(gp.box.lower().j);
      meta.push_back(gp.box.upper().i);
      meta.push_back(gp.box.upper().j);
      meta.push_back(gp.owner_rank);
      meta.push_back(gp.global_id);
    }
    db.put_bytes(lp + ".patches", meta.data(), meta.size() * sizeof(int));
    // Local data.
    for (const auto& patch : level.local_patches()) {
      for (int v = 0; v < hierarchy_->variables().count(); ++v) {
        patch->data(v).put_to_restart(
            db, patch_prefix(l, patch->global_id(), v));
      }
    }
  }
  const std::string file = rank_path(path, ctx_.my_rank);
  db.write_file(file);
  if (fault_plan_ != nullptr &&
      fault_plan_->should_inject(util::FaultSite::kCheckpointWrite)) {
    // Injected storage fault: the atomic write itself succeeded, then the
    // medium lost the tail (torn sector / bit rot). The checksum header
    // guarantees a later restore detects it and falls back.
    const int cut = fault_plan_->config().truncate_bytes;
    std::error_code ec;
    const auto size = std::filesystem::file_size(file, ec);
    if (!ec && size > 0) {
      const std::uintmax_t keep =
          size > static_cast<std::uintmax_t>(cut)
              ? size - static_cast<std::uintmax_t>(cut)
              : 0;
      std::filesystem::resize_file(file, keep, ec);
    }
    RAMR_LOG_DEBUG("injected checkpoint corruption on " << file);
  }
  RAMR_LOG_DEBUG("checkpoint written to " << file);
}

void Simulation::restore_checkpoint(const std::string& path) {
  const Database db = Database::read_file(rank_path(path, ctx_.my_rank));
  RAMR_REQUIRE(db.get_value<int>("meta.world_size") == ctx_.world_size,
               "checkpoint was written with a different world size");
  RAMR_REQUIRE(db.get_value<int>("meta.nx") == config_.nx &&
                   db.get_value<int>("meta.ny") == config_.ny,
               "checkpoint was written with a different base grid");
  if (db.has("meta.problem")) {
    RAMR_REQUIRE(db.get_string("meta.problem") == config_.problem,
                 "checkpoint was written for problem \""
                     << db.get_string("meta.problem")
                     << "\", this run is configured for \"" << config_.problem
                     << "\"");
  }

  const int num_levels = db.get_value<int>("meta.num_levels");
  RAMR_REQUIRE(num_levels <= hierarchy_->max_levels(),
               "checkpoint has more levels than max_levels");
  for (int l = 0; l < num_levels; ++l) {
    const std::string lp = "l" + std::to_string(l);
    const auto& bytes = db.get_bytes(lp + ".patches");
    RAMR_REQUIRE(bytes.size() % (6 * sizeof(int)) == 0,
                 "corrupt level metadata in checkpoint");
    std::vector<int> meta(bytes.size() / sizeof(int));
    std::memcpy(meta.data(), bytes.data(), bytes.size());
    std::vector<GlobalPatch> patches;
    for (std::size_t n = 0; n + 5 < meta.size(); n += 6) {
      GlobalPatch gp;
      gp.box = mesh::Box(meta[n], meta[n + 1], meta[n + 2], meta[n + 3]);
      gp.owner_rank = meta[n + 4];
      gp.global_id = meta[n + 5];
      patches.push_back(gp);
    }
    // The 6-int metadata format predates multi-device ranks and stays
    // unchanged: devices are a per-rank placement, not part of the
    // replicated structure, so the restore reassigns them exactly as a
    // regrid would (deterministic in global-id order).
    amr::BalanceParams bp;
    bp.devices_per_rank = topology_ != nullptr ? topology_->device_count() : 1;
    amr::assign_devices(patches, ctx_.my_rank, bp);
    const mesh::IntVector ratio_to_coarser =
        l == 0 ? mesh::IntVector(1, 1) : hierarchy_->ratio();
    auto level = std::make_shared<PatchLevel>(
        l, ratio_to_coarser, hierarchy_->ratio_to_zero(l), patches,
        ctx_.my_rank, hierarchy_->geometry());
    level->allocate_data(hierarchy_->variables(), ctx_.topology);
    for (const auto& patch : level->local_patches()) {
      for (int v = 0; v < hierarchy_->variables().count(); ++v) {
        patch->data(v).get_from_restart(
            db, patch_prefix(l, patch->global_id(), v));
      }
    }
    hierarchy_->set_level(l, level);
  }
  integrator_->restore_state(db.get_value<double>("meta.time"),
                             db.get_value<int>("meta.step"));
  integrator_->rebuild_schedules();
  RAMR_LOG_DEBUG("checkpoint restored from " << rank_path(path, ctx_.my_rank));
}

}  // namespace ramr::app
