// Visualisation output: writes the AMR hierarchy as legacy-VTK
// structured-points files (one per patch) plus a plain-text master index
// — the role SAMRAI's VisIt writer plays for CleverLeaf ("using SAMRAI
// for mesh management, communication, and visualisation", paper §IV-B).
// Device-resident fields cross PCIe once per write, charged and logged
// like every other crossing.
#pragma once

#include <string>
#include <vector>

#include "app/simulation.hpp"

namespace ramr::app {

/// Writes `fields` (name, variable id) of every local patch to
/// `<basename>_l<level>_p<gid>.vtk` plus `<basename>.visit` listing all
/// files. Returns the file names written.
std::vector<std::string> write_vtk(Simulation& sim, const std::string& basename,
                                   const std::vector<std::pair<std::string, int>>& fields);

}  // namespace ramr::app
