// The black-box patch integrator (paper §IV-C, Fig. 6): one class
// controls the integration of the numerical solution on a single patch.
// The driving algorithm (LagrangianEulerianIntegrator and its level
// integrator) never touches field data directly, so swapping the CPU and
// GPU implementations requires no other change — exactly the property
// the paper exploits.
//
// In this reproduction one concrete class serves both backends: the
// kernels run through the virtual device the patch data lives on, so a
// K20x-spec device gives the GPU CleverLeaf and a host-spec device the
// CPU CleverLeaf, with bitwise-identical numerics.
#pragma once

#include "app/fields.hpp"
#include "hier/patch.hpp"
#include "hydro/kernels.hpp"

namespace ramr::app {

/// Abstract patch integrator: the stages of one CloverLeaf timestep.
class PatchIntegrator {
 public:
  virtual ~PatchIntegrator() = default;

  virtual void ideal_gas(hier::Patch& p, const hydro::CellGeom& g,
                         bool predict) = 0;
  virtual void viscosity(hier::Patch& p, const hydro::CellGeom& g) = 0;
  virtual double calc_dt(hier::Patch& p, const hydro::CellGeom& g) = 0;
  virtual void pdv(hier::Patch& p, const hydro::CellGeom& g, double dt,
                   bool predict) = 0;
  virtual void accelerate(hier::Patch& p, const hydro::CellGeom& g,
                          double dt) = 0;
  virtual void flux_calc(hier::Patch& p, const hydro::CellGeom& g,
                         double dt) = 0;
  virtual void advec_cell(hier::Patch& p, const hydro::CellGeom& g,
                          bool x_direction, int sweep_number) = 0;
  virtual void advec_mom(hier::Patch& p, const hydro::CellGeom& g,
                         bool x_direction, int sweep_number,
                         bool x_velocity) = 0;
  virtual void reset_field(hier::Patch& p, const hydro::CellGeom& g) = 0;
  virtual hydro::FieldSummary field_summary(hier::Patch& p,
                                            const hydro::CellGeom& g,
                                            const mesh::Box& region) = 0;
};

/// Device-resident integrator ("Cudaleaf" in Fig. 6); serves as the CPU
/// integrator when constructed over a host-spec device.
class CudaPatchIntegrator : public PatchIntegrator {
 public:
  /// `physics` carries the scenario's EOS gamma and gravity; the default
  /// keeps the historical arithmetic bit-identical.
  CudaPatchIntegrator(vgpu::Device& device, const Fields& fields,
                      const hydro::Physics& physics = {})
      : device_(&device), stream_(device, "hydro"), f_(fields),
        phys_(physics) {}

  void ideal_gas(hier::Patch& p, const hydro::CellGeom& g, bool predict) override;
  void viscosity(hier::Patch& p, const hydro::CellGeom& g) override;
  double calc_dt(hier::Patch& p, const hydro::CellGeom& g) override;
  void pdv(hier::Patch& p, const hydro::CellGeom& g, double dt,
           bool predict) override;
  void accelerate(hier::Patch& p, const hydro::CellGeom& g, double dt) override;
  void flux_calc(hier::Patch& p, const hydro::CellGeom& g, double dt) override;
  void advec_cell(hier::Patch& p, const hydro::CellGeom& g, bool x_direction,
                  int sweep_number) override;
  void advec_mom(hier::Patch& p, const hydro::CellGeom& g, bool x_direction,
                 int sweep_number, bool x_velocity) override;
  void reset_field(hier::Patch& p, const hydro::CellGeom& g) override;
  hydro::FieldSummary field_summary(hier::Patch& p, const hydro::CellGeom& g,
                                    const mesh::Box& region) override;

 private:
  /// Device view of (variable id, component, depth plane).
  util::View view(hier::Patch& p, int id, int comp = 0, int plane = 0) const;

  vgpu::Device* device_;
  vgpu::Stream stream_;
  Fields f_;
  hydro::Physics phys_;
};

}  // namespace ramr::app
