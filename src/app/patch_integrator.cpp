#include "app/patch_integrator.hpp"

#include "pdat/cuda/cuda_data.hpp"

namespace ramr::app {

using pdat::cuda::CudaData;

util::View CudaPatchIntegrator::view(hier::Patch& p, int id, int comp,
                                     int plane) const {
  return p.typed_data<CudaData>(id).device_view(comp, plane);
}

void CudaPatchIntegrator::ideal_gas(hier::Patch& p, const hydro::CellGeom&,
                                    bool predict) {
  const int density = predict ? f_.density1 : f_.density0;
  const int energy = predict ? f_.energy1 : f_.energy0;
  hydro::ideal_gas(*device_, stream_, p.box(), view(p, density),
                   view(p, energy), view(p, f_.pressure),
                   view(p, f_.soundspeed), phys_.gamma);
}

void CudaPatchIntegrator::viscosity(hier::Patch& p, const hydro::CellGeom& g) {
  hydro::viscosity_kernel(*device_, stream_, p.box(), g, view(p, f_.density0),
                          view(p, f_.pressure), view(p, f_.viscosity),
                          view(p, f_.xvel0), view(p, f_.yvel0));
}

double CudaPatchIntegrator::calc_dt(hier::Patch& p, const hydro::CellGeom& g) {
  return hydro::calc_dt(*device_, stream_, p.box(), g, view(p, f_.density0),
                        view(p, f_.soundspeed), view(p, f_.viscosity),
                        view(p, f_.xvel0), view(p, f_.yvel0));
}

void CudaPatchIntegrator::pdv(hier::Patch& p, const hydro::CellGeom& g,
                              double dt, bool predict) {
  hydro::pdv(*device_, stream_, p.box(), g, dt, predict, view(p, f_.xvel0),
             view(p, f_.yvel0), view(p, f_.xvel1), view(p, f_.yvel1),
             view(p, f_.density0), view(p, f_.density1), view(p, f_.energy0),
             view(p, f_.energy1), view(p, f_.pressure), view(p, f_.viscosity));
}

void CudaPatchIntegrator::accelerate(hier::Patch& p, const hydro::CellGeom& g,
                                     double dt) {
  hydro::accelerate(*device_, stream_, p.box(), g, dt, view(p, f_.density0),
                    view(p, f_.pressure), view(p, f_.viscosity),
                    view(p, f_.xvel0), view(p, f_.yvel0), view(p, f_.xvel1),
                    view(p, f_.yvel1), phys_.gx, phys_.gy);
}

void CudaPatchIntegrator::flux_calc(hier::Patch& p, const hydro::CellGeom& g,
                                    double dt) {
  hydro::flux_calc(*device_, stream_, p.box(), g, dt, view(p, f_.xvel0),
                   view(p, f_.yvel0), view(p, f_.xvel1), view(p, f_.yvel1),
                   view(p, f_.vol_flux, 0), view(p, f_.vol_flux, 1));
}

void CudaPatchIntegrator::advec_cell(hier::Patch& p, const hydro::CellGeom& g,
                                     bool x_direction, int sweep_number) {
  hydro::advec_cell(*device_, stream_, p.box(), g, x_direction, sweep_number,
                    view(p, f_.density1), view(p, f_.energy1),
                    view(p, f_.vol_flux, 0), view(p, f_.vol_flux, 1),
                    view(p, f_.mass_flux, 0), view(p, f_.mass_flux, 1),
                    view(p, f_.pre_vol), view(p, f_.post_vol),
                    view(p, f_.ener_flux, x_direction ? 0 : 1));
}

void CudaPatchIntegrator::advec_mom(hier::Patch& p, const hydro::CellGeom& g,
                                    bool x_direction, int sweep_number,
                                    bool x_velocity) {
  const int mom_sweep = (x_direction ? 1 : 2) + 2 * (sweep_number - 1);
  hydro::advec_mom(*device_, stream_, p.box(), g, x_direction, mom_sweep,
                   view(p, x_velocity ? f_.xvel1 : f_.yvel1),
                   view(p, f_.density1), view(p, f_.vol_flux, 0),
                   view(p, f_.vol_flux, 1), view(p, f_.mass_flux, 0),
                   view(p, f_.mass_flux, 1), view(p, f_.node_flux),
                   view(p, f_.node_mass_post), view(p, f_.node_mass_pre),
                   view(p, f_.mom_flux, 0, x_velocity ? 0 : 1),
                   view(p, f_.pre_vol),
                   view(p, f_.post_vol));
}

void CudaPatchIntegrator::reset_field(hier::Patch& p, const hydro::CellGeom&) {
  hydro::reset_field(*device_, stream_, p.box(), view(p, f_.density0),
                     view(p, f_.density1), view(p, f_.energy0),
                     view(p, f_.energy1), view(p, f_.xvel0), view(p, f_.xvel1),
                     view(p, f_.yvel0), view(p, f_.yvel1));
}

hydro::FieldSummary CudaPatchIntegrator::field_summary(hier::Patch& p,
                                                       const hydro::CellGeom& g,
                                                       const mesh::Box& region) {
  return hydro::field_summary(*device_, stream_, region, g,
                              view(p, f_.density0), view(p, f_.energy0),
                              view(p, f_.xvel0), view(p, f_.yvel0));
}

}  // namespace ramr::app
