#include "app/fields.hpp"

#include "pdat/cuda/cuda_data.hpp"

namespace ramr::app {

using mesh::Centering;
using mesh::IntVector;

namespace {

int add(hier::VariableDatabase& db, vgpu::Device& device, const char* name,
        Centering centering, int depth = 1) {
  const IntVector ghosts(2, 2);
  hier::Variable v{name, centering, depth, ghosts};
  return db.register_variable(
      v, std::make_shared<pdat::cuda::CudaDataFactory>(device, centering,
                                                       ghosts, depth));
}

}  // namespace

Fields Fields::register_all(hier::VariableDatabase& db, vgpu::Device& device) {
  Fields f;
  f.density0 = add(db, device, "density0", Centering::kCell);
  f.density1 = add(db, device, "density1", Centering::kCell);
  f.energy0 = add(db, device, "energy0", Centering::kCell);
  f.energy1 = add(db, device, "energy1", Centering::kCell);
  f.pressure = add(db, device, "pressure", Centering::kCell);
  f.viscosity = add(db, device, "viscosity", Centering::kCell);
  f.soundspeed = add(db, device, "soundspeed", Centering::kCell);
  f.xvel0 = add(db, device, "xvel0", Centering::kNode);
  f.xvel1 = add(db, device, "xvel1", Centering::kNode);
  f.yvel0 = add(db, device, "yvel0", Centering::kNode);
  f.yvel1 = add(db, device, "yvel1", Centering::kNode);
  f.vol_flux = add(db, device, "vol_flux", Centering::kSide);
  f.mass_flux = add(db, device, "mass_flux", Centering::kSide);
  f.pre_vol = add(db, device, "pre_vol", Centering::kCell);
  f.post_vol = add(db, device, "post_vol", Centering::kCell);
  f.ener_flux = add(db, device, "ener_flux", Centering::kSide);
  f.node_flux = add(db, device, "node_flux", Centering::kNode);
  f.node_mass_post = add(db, device, "node_mass_post", Centering::kNode);
  f.node_mass_pre = add(db, device, "node_mass_pre", Centering::kNode);
  // One plane per advected velocity component: the x- and y-velocity
  // momentum sweeps of one direction then share no divergent work array,
  // which is what lets the interior sweeps of both components run while
  // the post-cell exchange is in flight and the rind sweeps follow
  // without re-reading each other's fluxes (hydro::SweepPart).
  f.mom_flux = add(db, device, "mom_flux", Centering::kNode, 2);
  return f;
}

}  // namespace ramr::app
