#include "app/vtk_writer.hpp"

#include <fstream>

#include "pdat/cuda/cuda_data.hpp"
#include "util/error.hpp"

namespace ramr::app {

using mesh::Box;
using pdat::cuda::CudaData;

namespace {

/// One patch's cell-centred fields as legacy VTK STRUCTURED_POINTS.
void write_patch(const std::string& path, hier::Patch& patch,
                 const hier::PatchLevel& level,
                 const mesh::GridGeometry& geometry,
                 const std::vector<std::pair<std::string, int>>& fields) {
  std::ofstream os(path, std::ios::trunc);
  RAMR_REQUIRE(os.good(), "cannot open " << path);
  const Box& box = patch.box();
  const auto dx = level.dx();
  const auto origin = geometry.cell_lower(box.lower(),
                                          level.ratio_to_level_zero());
  os << "# vtk DataFile Version 3.0\n"
     << "ramr level " << level.number() << " patch " << patch.global_id()
     << "\nASCII\nDATASET STRUCTURED_POINTS\n"
     << "DIMENSIONS " << box.width() + 1 << " " << box.height() + 1 << " 1\n"
     << "ORIGIN " << origin[0] << " " << origin[1] << " 0\n"
     << "SPACING " << dx[0] << " " << dx[1] << " 1\n"
     << "CELL_DATA " << box.size() << "\n";
  for (const auto& [name, id] : fields) {
    auto& data = patch.typed_data<CudaData>(id);
    RAMR_REQUIRE(data.centering() == mesh::Centering::kCell,
                 "write_vtk supports cell-centred fields; " << name
                 << " is not");
    os << "SCALARS " << name << " double 1\nLOOKUP_TABLE default\n";
    const auto plane = data.component(0).download_plane();
    const Box ib = data.component(0).index_box();
    util::ConstView v(plane.data(), ib.lower().i, ib.lower().j, ib.width(),
                      ib.height());
    for (int j = box.lower().j; j <= box.upper().j; ++j) {
      for (int i = box.lower().i; i <= box.upper().i; ++i) {
        os << v(i, j) << "\n";
      }
    }
  }
  RAMR_REQUIRE(os.good(), "write to " << path << " failed");
}

}  // namespace

std::vector<std::string> write_vtk(
    Simulation& sim, const std::string& basename,
    const std::vector<std::pair<std::string, int>>& fields) {
  std::vector<std::string> written;
  auto& h = sim.hierarchy();
  for (int l = 0; l < h.num_levels(); ++l) {
    auto& level = h.level(l);
    for (const auto& patch : level.local_patches()) {
      const std::string path = basename + "_l" + std::to_string(l) + "_p" +
                               std::to_string(patch->global_id()) + ".vtk";
      write_patch(path, *patch, level, h.geometry(), fields);
      written.push_back(path);
    }
  }
  // Master index (VisIt-style list of blocks; rank 0 of a distributed run
  // appends its own files only — callers merge per-rank lists).
  std::ofstream master(basename + ".visit", std::ios::trunc);
  master << "!NBLOCKS " << written.size() << "\n";
  for (const std::string& path : written) {
    master << path << "\n";
  }
  return written;
}

}  // namespace ramr::app
