#include "app/problems.hpp"

#include <cmath>

#include "hydro/kernels.hpp"
#include "pdat/cuda/cuda_data.hpp"

namespace ramr::app {

using mesh::Box;
using pdat::cuda::CudaData;

void HydroProblem::initialize_level_data(hier::Patch& patch,
                                         const hier::PatchLevel& level,
                                         const mesh::GridGeometry& geometry,
                                         double /*time*/) {
  auto& density0 = patch.typed_data<CudaData>(fields_.density0);
  vgpu::Device& dev = density0.device();
  vgpu::Stream stream(dev, "init");

  const auto dx = level.dx();
  const auto xlo = geometry.x_lo();
  const InitialState state = initial_state();
  const double gamma = physics().gamma;

  // Cell-centred state over the full ghost box (analytic continuation
  // outside the domain is harmless: boundary conditions overwrite it on
  // the first halo fill).
  const Box cells = density0.component(0).index_box();
  util::View rho0 = density0.device_view();
  util::View rho1 = patch.typed_data<CudaData>(fields_.density1).device_view();
  util::View e0 = patch.typed_data<CudaData>(fields_.energy0).device_view();
  util::View e1 = patch.typed_data<CudaData>(fields_.energy1).device_view();
  util::View p = patch.typed_data<CudaData>(fields_.pressure).device_view();
  util::View ss = patch.typed_data<CudaData>(fields_.soundspeed).device_view();
  dev.launch2d(
      stream, cells.lower().i, cells.lower().j, cells.width(), cells.height(),
      vgpu::KernelCost{20.0, 6.0 * 8.0}, [=](int i, int j) {
        const double x = xlo[0] + (i + 0.5) * dx[0];
        const double y = xlo[1] + (j + 0.5) * dx[1];
        const auto [rho, e] = state(x, y);
        rho0(i, j) = rho;
        rho1(i, j) = rho;
        e0(i, j) = e;
        e1(i, j) = e;
        const double pressure = (gamma - 1.0) * rho * e;
        p(i, j) = pressure;
        ss(i, j) = std::sqrt(gamma * pressure / rho);
      });

  // Velocities and work arrays start at rest / zero. Viscosity is in the
  // list too: it is recomputed from pressure gradients each step, but the
  // timestep and acceleration kernels read its ghost cells, which on a
  // freshly created patch would otherwise be raw allocations.
  for (int id : {fields_.viscosity,
                 fields_.xvel0, fields_.xvel1, fields_.yvel0, fields_.yvel1,
                 fields_.vol_flux, fields_.mass_flux, fields_.pre_vol,
                 fields_.post_vol, fields_.ener_flux, fields_.node_flux,
                 fields_.node_mass_post, fields_.node_mass_pre,
                 fields_.mom_flux}) {
    patch.typed_data<CudaData>(id).fill(0.0);
  }
  // Avoid zero node masses in advec_mom before the first real step.
  patch.typed_data<CudaData>(fields_.node_mass_pre).fill(1.0);
  patch.typed_data<CudaData>(fields_.node_mass_post).fill(1.0);

  // Scenarios with bulk motion (Kelvin-Helmholtz shear layers) overwrite
  // the at-rest velocities analytically at node coordinates, full ghost
  // box included. Problems returning null keep the zero-fill above
  // untouched — the exact historical initialization.
  if (const InitialVelocity vel = initial_velocity()) {
    auto& xvel0 = patch.typed_data<CudaData>(fields_.xvel0);
    const Box nodes = xvel0.component(0).index_box();
    util::View xv0 = xvel0.device_view();
    util::View xv1 = patch.typed_data<CudaData>(fields_.xvel1).device_view();
    util::View yv0 = patch.typed_data<CudaData>(fields_.yvel0).device_view();
    util::View yv1 = patch.typed_data<CudaData>(fields_.yvel1).device_view();
    dev.launch2d(
        stream, nodes.lower().i, nodes.lower().j, nodes.width(),
        nodes.height(), vgpu::KernelCost{10.0, 4.0 * 8.0}, [=](int i, int j) {
          const double x = xlo[0] + i * dx[0];
          const double y = xlo[1] + j * dx[1];
          const auto [u, v] = vel(x, y);
          xv0(i, j) = u;
          xv1(i, j) = u;
          yv0(i, j) = v;
          yv1(i, j) = v;
        });
  }
}

void HydroProblem::tag_cells(hier::Patch& patch, const hier::PatchLevel&,
                             const mesh::GridGeometry&,
                             amr::DeviceTagData& tags, double /*time*/) {
  auto& density0 = patch.typed_data<CudaData>(fields_.density0);
  vgpu::Device& dev = density0.device();
  vgpu::Stream stream(dev, "tag");

  util::View rho = density0.device_view();
  util::View e = patch.typed_data<CudaData>(fields_.energy0).device_view();
  util::ArrayView2D<int> tag = tags.device_view();
  const Box box = tags.box();
  const double threshold = tag_threshold_;
  dev.launch2d(
      stream, box.lower().i, box.lower().j, box.width(), box.height(),
      vgpu::KernelCost{16.0, 10.0 * 8.0 + 4.0}, [=](int i, int j) {
        const double drho =
            (std::fabs(rho(i + 1, j) - rho(i - 1, j)) +
             std::fabs(rho(i, j + 1) - rho(i, j - 1))) /
            (2.0 * std::fabs(rho(i, j)) + 1.0e-100);
        const double de = (std::fabs(e(i + 1, j) - e(i - 1, j)) +
                           std::fabs(e(i, j + 1) - e(i, j - 1))) /
                          (2.0 * std::fabs(e(i, j)) + 1.0e-100);
        tag(i, j) = (drho > threshold || de > threshold) ? 1 : 0;
      });
}

InitialState SodProblem::initial_state() const {
  return [](double x, double /*y*/) -> std::array<double, 2> {
    if (x < 0.5) {
      return {1.0, 2.5};  // rho = 1,     p = 1   -> e = 2.5
    }
    return {0.125, 2.0};  // rho = 0.125, p = 0.1 -> e = 2.0
  };
}

InitialState TriplePointProblem::initial_state() const {
  return [](double x, double y) -> std::array<double, 2> {
    if (x < 1.0) {
      return {1.0, 2.5};  // driver: rho = 1, p = 1
    }
    if (y < 1.5) {
      return {1.0, 0.25};  // dense low-pressure region: rho = 1, p = 0.1
    }
    return {0.125, 2.0};  // light low-pressure region: rho = 0.125, p = 0.1
  };
}

InitialState RegionProblem::initial_state() const {
  // The shared_ptr rides in the lambda: the state function stays valid
  // past the problem object (gridding holds it across regrids).
  std::shared_ptr<const cfg::ScenarioSpec> spec = spec_;
  return [spec](double x, double y) -> std::array<double, 2> {
    const cfg::FluidState s = spec->sample(x, y);
    return {s.density, s.energy};
  };
}

InitialVelocity RegionProblem::initial_velocity() const {
  if (!spec_->has_velocity()) {
    return nullptr;
  }
  std::shared_ptr<const cfg::ScenarioSpec> spec = spec_;
  return [spec](double x, double y) -> std::array<double, 2> {
    const cfg::FluidState s = spec->sample(x, y);
    return {s.xvel, s.yvel};
  };
}

}  // namespace ramr::app
