#include "app/level_kernel_runner.hpp"

#include <limits>

#include "pdat/cuda/cuda_data.hpp"

namespace ramr::app {

using pdat::cuda::CudaData;

util::View LevelKernelRunner::view(hier::Patch& p, int id, int comp,
                                   int plane) const {
  return p.typed_data<CudaData>(id).device_view(comp, plane);
}

namespace {

/// Builds the per-patch argument span for a fused launch: one entry per
/// group patch, in group (= segment) order.
template <typename Arg, typename Fn>
std::vector<Arg> gather_args(const std::vector<hier::Patch*>& patches,
                             Fn&& make) {
  std::vector<Arg> args;
  args.reserve(patches.size());
  for (hier::Patch* patch : patches) {
    args.push_back(make(*patch));
  }
  return args;
}

}  // namespace

double LevelKernelRunner::compute_dt(hier::PatchLevel& level,
                                     const hydro::CellGeom& g) {
  double dt = std::numeric_limits<double>::max();
  for_groups(level, [&](vgpu::Device& dev, vgpu::Stream& stream,
                        const std::vector<hier::Patch*>& patches,
                        const std::vector<mesh::Box>& boxes) {
    const auto args =
        gather_args<hydro::CalcDtPatch>(patches, [&](hier::Patch& p) {
          return hydro::CalcDtPatch{view(p, f_.density0),
                                    view(p, f_.soundspeed),
                                    view(p, f_.viscosity), view(p, f_.xvel0),
                                    view(p, f_.yvel0)};
        });
    dt = std::min(dt, hydro::calc_dt_batched(dev, stream, boxes, g, args));
  });
  return dt;
}

void LevelKernelRunner::ideal_gas(hier::PatchLevel& level,
                                  const hydro::CellGeom&, bool predict,
                                  hydro::SweepPart part) {
  const int density = predict ? f_.density1 : f_.density0;
  const int energy = predict ? f_.energy1 : f_.energy0;
  for_groups(level, [&](vgpu::Device& dev, vgpu::Stream& stream,
                        const std::vector<hier::Patch*>& patches,
                        const std::vector<mesh::Box>& boxes) {
    const auto args =
        gather_args<hydro::IdealGasPatch>(patches, [&](hier::Patch& p) {
          return hydro::IdealGasPatch{view(p, density), view(p, energy),
                                      view(p, f_.pressure),
                                      view(p, f_.soundspeed)};
        });
    hydro::ideal_gas_batched(dev, stream, boxes, args, part, phys_.gamma);
  });
}

void LevelKernelRunner::viscosity(hier::PatchLevel& level,
                                  const hydro::CellGeom& g,
                                  hydro::SweepPart part) {
  for_groups(level, [&](vgpu::Device& dev, vgpu::Stream& stream,
                        const std::vector<hier::Patch*>& patches,
                        const std::vector<mesh::Box>& boxes) {
    const auto args =
        gather_args<hydro::ViscosityPatch>(patches, [&](hier::Patch& p) {
          return hydro::ViscosityPatch{view(p, f_.density0),
                                       view(p, f_.pressure),
                                       view(p, f_.viscosity),
                                       view(p, f_.xvel0), view(p, f_.yvel0)};
        });
    hydro::viscosity_batched(dev, stream, boxes, g, args, part);
  });
}

void LevelKernelRunner::pdv(hier::PatchLevel& level, const hydro::CellGeom& g,
                            double dt, bool predict,
                            hydro::SweepPart part) {
  for_groups(level, [&](vgpu::Device& dev, vgpu::Stream& stream,
                        const std::vector<hier::Patch*>& patches,
                        const std::vector<mesh::Box>& boxes) {
    const auto args = gather_args<hydro::PdvPatch>(patches, [&](hier::Patch& p) {
      return hydro::PdvPatch{view(p, f_.xvel0), view(p, f_.yvel0),
                             view(p, f_.xvel1), view(p, f_.yvel1),
                             view(p, f_.density0), view(p, f_.density1),
                             view(p, f_.energy0), view(p, f_.energy1),
                             view(p, f_.pressure), view(p, f_.viscosity)};
    });
    hydro::pdv_batched(dev, stream, boxes, g, dt, predict, args, part);
  });
}

void LevelKernelRunner::accelerate(hier::PatchLevel& level,
                                   const hydro::CellGeom& g, double dt,
                                   hydro::SweepPart part) {
  for_groups(level, [&](vgpu::Device& dev, vgpu::Stream& stream,
                        const std::vector<hier::Patch*>& patches,
                        const std::vector<mesh::Box>& boxes) {
    const auto args =
        gather_args<hydro::AcceleratePatch>(patches, [&](hier::Patch& p) {
          return hydro::AcceleratePatch{
              view(p, f_.density0), view(p, f_.pressure), view(p, f_.viscosity),
              view(p, f_.xvel0), view(p, f_.yvel0), view(p, f_.xvel1),
              view(p, f_.yvel1)};
        });
    hydro::accelerate_batched(dev, stream, boxes, g, dt, args, part, phys_.gx,
                              phys_.gy);
  });
}

void LevelKernelRunner::flux_calc(hier::PatchLevel& level,
                                  const hydro::CellGeom& g, double dt,
                                  hydro::SweepPart part) {
  for_groups(level, [&](vgpu::Device& dev, vgpu::Stream& stream,
                        const std::vector<hier::Patch*>& patches,
                        const std::vector<mesh::Box>& boxes) {
    const auto args =
        gather_args<hydro::FluxCalcPatch>(patches, [&](hier::Patch& p) {
          return hydro::FluxCalcPatch{view(p, f_.xvel0), view(p, f_.yvel0),
                                      view(p, f_.xvel1), view(p, f_.yvel1),
                                      view(p, f_.vol_flux, 0),
                                      view(p, f_.vol_flux, 1)};
        });
    hydro::flux_calc_batched(dev, stream, boxes, g, dt, args, part);
  });
}

void LevelKernelRunner::advec_cell(hier::PatchLevel& level,
                                   const hydro::CellGeom& g, bool x_direction,
                                   int sweep_number, hydro::SweepPart part) {
  for_groups(level, [&](vgpu::Device& dev, vgpu::Stream& stream,
                        const std::vector<hier::Patch*>& patches,
                        const std::vector<mesh::Box>& boxes) {
    const auto args =
        gather_args<hydro::AdvecCellPatch>(patches, [&](hier::Patch& p) {
          return hydro::AdvecCellPatch{
              view(p, f_.density1), view(p, f_.energy1),
              view(p, f_.vol_flux, 0), view(p, f_.vol_flux, 1),
              view(p, f_.mass_flux, 0), view(p, f_.mass_flux, 1),
              view(p, f_.pre_vol), view(p, f_.post_vol),
              view(p, f_.ener_flux, x_direction ? 0 : 1)};
        });
    hydro::advec_cell_batched(dev, stream, boxes, g, x_direction, sweep_number,
                              args, part);
  });
}

void LevelKernelRunner::advec_mom(hier::PatchLevel& level,
                                  const hydro::CellGeom& g, bool x_direction,
                                  int sweep_number, bool x_velocity,
                                  hydro::SweepPart part) {
  const int mom_sweep = (x_direction ? 1 : 2) + 2 * (sweep_number - 1);
  for_groups(level, [&](vgpu::Device& dev, vgpu::Stream& stream,
                        const std::vector<hier::Patch*>& patches,
                        const std::vector<mesh::Box>& boxes) {
    const auto args =
        gather_args<hydro::AdvecMomPatch>(patches, [&](hier::Patch& p) {
          return hydro::AdvecMomPatch{
              view(p, x_velocity ? f_.xvel1 : f_.yvel1), view(p, f_.density1),
              view(p, f_.vol_flux, 0), view(p, f_.vol_flux, 1),
              view(p, f_.mass_flux, 0), view(p, f_.mass_flux, 1),
              view(p, f_.node_flux), view(p, f_.node_mass_post),
              view(p, f_.node_mass_pre),
              view(p, f_.mom_flux, 0, x_velocity ? 0 : 1),
              view(p, f_.pre_vol), view(p, f_.post_vol)};
        });
    hydro::advec_mom_batched(dev, stream, boxes, g, x_direction, mom_sweep,
                             args, part);
  });
}

void LevelKernelRunner::advec_mom_both(hier::PatchLevel& level,
                                       const hydro::CellGeom& g,
                                       bool x_direction, int sweep_number,
                                       hydro::SweepPart part) {
  const int mom_sweep = (x_direction ? 1 : 2) + 2 * (sweep_number - 1);
  for_groups(level, [&](vgpu::Device& dev, vgpu::Stream& stream,
                        const std::vector<hier::Patch*>& patches,
                        const std::vector<mesh::Box>& boxes) {
    const auto shared =
        gather_args<hydro::AdvecMomSharedPatch>(patches, [&](hier::Patch& p) {
          return hydro::AdvecMomSharedPatch{
              view(p, f_.density1), view(p, f_.vol_flux, 0),
              view(p, f_.vol_flux, 1), view(p, f_.mass_flux, 0),
              view(p, f_.mass_flux, 1), view(p, f_.node_flux),
              view(p, f_.node_mass_post), view(p, f_.node_mass_pre),
              view(p, f_.pre_vol), view(p, f_.post_vol)};
        });
    hydro::advec_mom_shared_batched(dev, stream, boxes, g, mom_sweep, shared,
                                    part);

    // Both components in one fused launch per sub-stage: entries (and
    // boxes) for the x-velocity first, then the y-velocity.
    std::vector<mesh::Box> both_boxes(boxes);
    both_boxes.insert(both_boxes.end(), boxes.begin(), boxes.end());
    std::vector<hydro::AdvecMomVelPatch> vels;
    vels.reserve(2 * boxes.size());
    for (const bool x_velocity : {true, false}) {
      for (hier::Patch* patch : patches) {
        hier::Patch& p = *patch;
        vels.push_back(hydro::AdvecMomVelPatch{
            view(p, x_velocity ? f_.xvel1 : f_.yvel1),
            view(p, f_.mom_flux, 0, x_velocity ? 0 : 1), view(p, f_.node_flux),
            view(p, f_.node_mass_post), view(p, f_.node_mass_pre)});
      }
    }
    hydro::advec_mom_velocity_batched(dev, stream, both_boxes, g, x_direction,
                                      vels, part);
  });
}

void LevelKernelRunner::reset_field(hier::PatchLevel& level,
                                    const hydro::CellGeom&,
                                    hydro::SweepPart part) {
  for_groups(level, [&](vgpu::Device& dev, vgpu::Stream& stream,
                        const std::vector<hier::Patch*>& patches,
                        const std::vector<mesh::Box>& boxes) {
    const auto args =
        gather_args<hydro::ResetFieldPatch>(patches, [&](hier::Patch& p) {
          return hydro::ResetFieldPatch{
              view(p, f_.density0), view(p, f_.density1), view(p, f_.energy0),
              view(p, f_.energy1), view(p, f_.xvel0), view(p, f_.xvel1),
              view(p, f_.yvel0), view(p, f_.yvel1)};
        });
    hydro::reset_field_batched(dev, stream, boxes, args, part);
  });
}

}  // namespace ramr::app
