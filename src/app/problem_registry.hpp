// Named problem registry: maps a scenario name to either a C++ factory
// (the two classics from the paper, kept as hand-coded classes) or a
// declarative cfg::ScenarioSpec instantiated through RegionProblem.
// Replaces the old ProblemKind enum switch so JSON configs, examples and
// the simulation service all select problems by string, and new
// scenarios register without touching the Simulation wiring
// (docs/scenarios.md).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "app/problems.hpp"

namespace ramr::app {

/// Process-wide registry of named problems. Thread-compatible like the
/// rest of the library: registration happens at startup, lookups after.
class ProblemRegistry {
 public:
  using Factory = std::function<std::unique_ptr<HydroProblem>(
      const Fields& fields, double tag_threshold)>;

  /// The singleton, pre-populated with the stock scenarios: sod,
  /// triple_point (C++ factories), sedov, kelvin_helmholtz,
  /// rayleigh_taylor (region specs).
  static ProblemRegistry& instance();

  /// Registers a hand-coded problem class under `name`.
  void register_factory(const std::string& name, Factory factory);

  /// Registers a declarative scenario under spec.name.
  void register_scenario(cfg::ScenarioSpec spec);

  bool contains(const std::string& name) const;

  /// Registered names, sorted (error messages and --list output).
  std::vector<std::string> names() const;

  /// Instantiates the named problem; throws util::Error listing the
  /// known names when `name` is not registered.
  std::unique_ptr<HydroProblem> create(const std::string& name,
                                       const Fields& fields,
                                       double tag_threshold) const;

  /// The scenario spec behind a region-based entry, or null for
  /// factory-backed ones (sod, triple_point).
  std::shared_ptr<const cfg::ScenarioSpec> scenario(
      const std::string& name) const;

 private:
  ProblemRegistry();

  struct Entry {
    Factory factory;  // null for scenario-backed entries
    std::shared_ptr<const cfg::ScenarioSpec> spec;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace ramr::app
