#include "app/level_integrator.hpp"

#include <algorithm>
#include <limits>

#include "app/level_kernel_runner.hpp"
#include "util/error.hpp"

namespace ramr::app {

namespace {

/// The per-patch route sweeps whole patches; interior/rind parts exist
/// only on the batched route (the paper's original structure has no
/// split, and the split-phase integrator requires batching).
void require_all(const LevelKernelRunner* batched, hydro::SweepPart part) {
  RAMR_REQUIRE(batched != nullptr || part == hydro::SweepPart::kAll,
               "interior/rind sweep parts require the batched launch route");
}

}  // namespace

double LagrangianEulerianLevelIntegrator::compute_dt(hier::PatchLevel& level) {
  const hydro::CellGeom g = geom_of(level);
  if (batched_ != nullptr) {
    return batched_->compute_dt(level, g);
  }
  double dt = std::numeric_limits<double>::infinity();
  for (const auto& patch : level.local_patches()) {
    dt = std::min(dt, pi_->calc_dt(*patch, g));
  }
  return dt;
}

void LagrangianEulerianLevelIntegrator::stage_eos(hier::PatchLevel& level) {
  const hydro::CellGeom g = geom_of(level);
  if (batched_ != nullptr) {
    batched_->ideal_gas(level, g, /*predict=*/false);
    return;
  }
  for (const auto& patch : level.local_patches()) {
    pi_->ideal_gas(*patch, g, /*predict=*/false);
  }
}

void LagrangianEulerianLevelIntegrator::stage_viscosity(
    hier::PatchLevel& level, hydro::SweepPart part) {
  const hydro::CellGeom g = geom_of(level);
  require_all(batched_, part);
  if (batched_ != nullptr) {
    batched_->viscosity(level, g, part);
    return;
  }
  for (const auto& patch : level.local_patches()) {
    pi_->viscosity(*patch, g);
  }
}

void LagrangianEulerianLevelIntegrator::stage_pdv_predict(
    hier::PatchLevel& level, double dt, hydro::SweepPart part) {
  const hydro::CellGeom g = geom_of(level);
  require_all(batched_, part);
  if (batched_ != nullptr) {
    batched_->pdv(level, g, dt, /*predict=*/true, part);
    batched_->ideal_gas(level, g, /*predict=*/true, part);
    return;
  }
  for (const auto& patch : level.local_patches()) {
    pi_->pdv(*patch, g, dt, /*predict=*/true);
  }
  for (const auto& patch : level.local_patches()) {
    pi_->ideal_gas(*patch, g, /*predict=*/true);
  }
}

void LagrangianEulerianLevelIntegrator::stage_accelerate(
    hier::PatchLevel& level, double dt, hydro::SweepPart part) {
  const hydro::CellGeom g = geom_of(level);
  require_all(batched_, part);
  if (batched_ != nullptr) {
    batched_->accelerate(level, g, dt, part);
    return;
  }
  for (const auto& patch : level.local_patches()) {
    pi_->accelerate(*patch, g, dt);
  }
}

void LagrangianEulerianLevelIntegrator::stage_pdv_correct(
    hier::PatchLevel& level, double dt, hydro::SweepPart part) {
  const hydro::CellGeom g = geom_of(level);
  require_all(batched_, part);
  if (batched_ != nullptr) {
    batched_->pdv(level, g, dt, /*predict=*/false, part);
    return;
  }
  for (const auto& patch : level.local_patches()) {
    pi_->pdv(*patch, g, dt, /*predict=*/false);
  }
}

void LagrangianEulerianLevelIntegrator::stage_flux_calc(hier::PatchLevel& level,
                                                        double dt,
                                                        hydro::SweepPart part) {
  const hydro::CellGeom g = geom_of(level);
  require_all(batched_, part);
  if (batched_ != nullptr) {
    batched_->flux_calc(level, g, dt, part);
    return;
  }
  for (const auto& patch : level.local_patches()) {
    pi_->flux_calc(*patch, g, dt);
  }
}

void LagrangianEulerianLevelIntegrator::stage_advec_cell(
    hier::PatchLevel& level, bool x_direction, int sweep_number,
    hydro::SweepPart part) {
  const hydro::CellGeom g = geom_of(level);
  require_all(batched_, part);
  if (batched_ != nullptr) {
    batched_->advec_cell(level, g, x_direction, sweep_number, part);
    return;
  }
  for (const auto& patch : level.local_patches()) {
    pi_->advec_cell(*patch, g, x_direction, sweep_number);
  }
}

void LagrangianEulerianLevelIntegrator::stage_advec_mom(
    hier::PatchLevel& level, bool x_direction, int sweep_number,
    hydro::SweepPart part) {
  const hydro::CellGeom g = geom_of(level);
  require_all(batched_, part);
  if (batched_ != nullptr) {
    batched_->advec_mom_both(level, g, x_direction, sweep_number, part);
    return;
  }
  for (const auto& patch : level.local_patches()) {
    pi_->advec_mom(*patch, g, x_direction, sweep_number, /*x_velocity=*/true);
    pi_->advec_mom(*patch, g, x_direction, sweep_number, /*x_velocity=*/false);
  }
}

void LagrangianEulerianLevelIntegrator::stage_reset(hier::PatchLevel& level,
                                                    hydro::SweepPart part) {
  const hydro::CellGeom g = geom_of(level);
  require_all(batched_, part);
  if (batched_ != nullptr) {
    batched_->reset_field(level, g, part);
    return;
  }
  for (const auto& patch : level.local_patches()) {
    pi_->reset_field(*patch, g);
  }
}

}  // namespace ramr::app
