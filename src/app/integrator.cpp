#include "app/integrator.hpp"

#include <algorithm>
#include <limits>

#include "geom/coarsen_operators.hpp"
#include "geom/refine_operators.hpp"

namespace ramr::app {

using xfer::CoarsenItem;
using xfer::FillMode;
using xfer::RefineItem;

LagrangianEulerianIntegrator::LagrangianEulerianIntegrator(
    hier::PatchHierarchy& hierarchy,
    LagrangianEulerianLevelIntegrator& level_integrator,
    amr::GriddingAlgorithm& gridding, const Fields& fields,
    xfer::ParallelContext& ctx, ReflectiveBoundary& bc, vgpu::SimClock& clock,
    int regrid_interval)
    : hierarchy_(&hierarchy),
      li_(&level_integrator),
      gridding_(&gridding),
      fields_(fields),
      ctx_(&ctx),
      bc_(&bc),
      clock_(&clock),
      regrid_interval_(regrid_interval) {
  auto cell_op = std::make_shared<geom::CellConservativeLinearRefine>();
  auto node_op = std::make_shared<geom::NodeLinearRefine>();
  auto side_op = std::make_shared<geom::SideConservativeLinearRefine>();

  // Start-of-step state exchange.
  alg_state_.add(RefineItem{fields_.density0, cell_op});
  alg_state_.add(RefineItem{fields_.energy0, cell_op});
  alg_state_.add(RefineItem{fields_.xvel0, node_op});
  alg_state_.add(RefineItem{fields_.yvel0, node_op});
  // Pressure after each EOS evaluation.
  alg_pressure_.add(RefineItem{fields_.pressure, cell_op});
  // Viscosity before the timestep calculation / acceleration.
  alg_viscosity_.add(RefineItem{fields_.viscosity, cell_op});
  // Before the first advection sweep.
  alg_preadvec_.add(RefineItem{fields_.density1, cell_op});
  alg_preadvec_.add(RefineItem{fields_.energy1, cell_op});
  alg_preadvec_.add(RefineItem{fields_.vol_flux, side_op});
  // Between sweeps (mass fluxes + advanced velocities for advec_mom).
  alg_postcell_.add(RefineItem{fields_.density1, cell_op});
  alg_postcell_.add(RefineItem{fields_.energy1, cell_op});
  alg_postcell_.add(RefineItem{fields_.mass_flux, side_op});
  alg_postcell_.add(RefineItem{fields_.xvel1, node_op});
  alg_postcell_.add(RefineItem{fields_.yvel1, node_op});
  // Fine-to-coarse synchronisation (paper §IV-C: volume-weighted density,
  // mass-weighted energy, node injection for velocities).
  alg_sync_.add(CoarsenItem{fields_.density0,
                            std::make_shared<geom::VolumeWeightedCoarsen>(), -1});
  alg_sync_.add(CoarsenItem{fields_.energy0,
                            std::make_shared<geom::MassWeightedCoarsen>(),
                            fields_.density0});
  alg_sync_.add(CoarsenItem{fields_.xvel0,
                            std::make_shared<geom::NodeInjectionCoarsen>(), -1});
  alg_sync_.add(CoarsenItem{fields_.yvel0,
                            std::make_shared<geom::NodeInjectionCoarsen>(), -1});
}

void LagrangianEulerianIntegrator::initialize(double time) {
  time_ = time;
  gridding_->make_initial_hierarchy(*hierarchy_, time);
  rebuild_schedules();
}

void LagrangianEulerianIntegrator::rebuild_schedules() {
  const auto build = [&](const xfer::RefineAlgorithm& alg,
                         std::vector<std::unique_ptr<xfer::RefineSchedule>>& out) {
    out.clear();
    for (int l = 0; l < hierarchy_->num_levels(); ++l) {
      auto dst = hierarchy_->level_ptr(l);
      auto coarse = l > 0 ? hierarchy_->level_ptr(l - 1) : nullptr;
      out.push_back(alg.create_schedule(dst, dst, coarse,
                                        hierarchy_->variables(), *ctx_, bc_,
                                        FillMode::kGhostsOnly));
    }
  };
  build(alg_state_, sched_state_);
  build(alg_pressure_, sched_pressure_);
  build(alg_viscosity_, sched_viscosity_);
  build(alg_preadvec_, sched_preadvec_);
  build(alg_postcell_, sched_postcell_);

  sched_sync_.clear();
  for (int l = hierarchy_->num_levels() - 1; l >= 1; --l) {
    sched_sync_.push_back(alg_sync_.create_schedule(
        hierarchy_->level_ptr(l - 1), hierarchy_->level_ptr(l),
        hierarchy_->variables(), *ctx_));
  }
}

void LagrangianEulerianIntegrator::fill_all(
    std::vector<std::unique_ptr<xfer::RefineSchedule>>& scheds) {
  // Coarse-to-fine: coarse ghosts must be valid before a finer level's
  // coarse-fill gathers from them.
  for (auto& sched : scheds) {
    sched->fill();
    ++xfer_counters_.halo_fills;
    xfer_counters_.messages_sent += sched->messages_sent_per_fill();
    xfer_counters_.messages_received += sched->messages_received_per_fill();
    xfer_counters_.bytes_sent += sched->bytes_sent_per_fill();
  }
}

void LagrangianEulerianIntegrator::begin_all(
    std::vector<std::unique_ptr<xfer::RefineSchedule>>& scheds) {
  // Every level's same-level exchange starts here: its begin phase only
  // reads that level's interiors and writes that level's ghosts, so the
  // begins are mutually independent and the wire time of all levels'
  // messages is in flight together.
  for (auto& sched : scheds) {
    sched->fill_begin();
  }
}

void LagrangianEulerianIntegrator::finish_all(
    std::vector<std::unique_ptr<xfer::RefineSchedule>>& scheds) {
  // Finish coarse-to-fine, like fill_all: a level's coarse gather reads
  // the coarser level's ghosts, which its (earlier) finish completed.
  for (auto& sched : scheds) {
    sched->fill_finish();
    ++xfer_counters_.halo_fills;
    ++xfer_counters_.split_fills;
    xfer_counters_.messages_sent += sched->messages_sent_per_fill();
    xfer_counters_.messages_received += sched->messages_received_per_fill();
    xfer_counters_.bytes_sent += sched->bytes_sent_per_fill();
  }
}

double LagrangianEulerianIntegrator::advance() {
  hier::PatchHierarchy& h = *hierarchy_;
  const int levels = h.num_levels();

  // --- Boundary + EOS + viscosity + timestep --------------------------
  //
  // With a timeline attached (async-overlap runs) the start-of-step
  // state exchange executes split-phase around the EOS stage: EOS is
  // pointwise over patch INTERIORS of density/energy and writes only
  // pressure/soundspeed, so it neither reads the ghosts the exchange
  // fills nor touches the interiors it packs — a real device can run it
  // while the halo messages are on the wire. The launches and their
  // inputs are identical to the synchronous order (the exchange packs
  // before EOS runs either way), so the fields are bit-identical; only
  // the modeled completion time drops (docs/async_overlap.md).
  const bool split_phase = ctx_->timeline != nullptr;
  {
    vgpu::ComponentScope scope(*clock_, "boundary");
    if (split_phase) {
      begin_all(sched_state_);
    } else {
      fill_all(sched_state_);
    }
  }
  {
    vgpu::ComponentScope scope(*clock_, "hydro");
    vgpu::LaunchTagScope launch_tag(ctx_->device, vgpu::LaunchTag::kHydro);
    for (int l = 0; l < levels; ++l) {
      li_->stage_eos(h.level(l));
    }
  }
  if (split_phase) {
    vgpu::ComponentScope scope(*clock_, "boundary");
    finish_all(sched_state_);
  }
  {
    vgpu::ComponentScope scope(*clock_, "boundary");
    fill_all(sched_pressure_);
  }
  {
    vgpu::ComponentScope scope(*clock_, "hydro");
    vgpu::LaunchTagScope launch_tag(ctx_->device, vgpu::LaunchTag::kHydro);
    for (int l = 0; l < levels; ++l) {
      li_->stage_viscosity(h.level(l));
    }
  }
  {
    vgpu::ComponentScope scope(*clock_, "boundary");
    fill_all(sched_viscosity_);
  }
  double dt = std::numeric_limits<double>::infinity();
  {
    vgpu::ComponentScope scope(*clock_, "timestep");
    vgpu::LaunchTagScope launch_tag(ctx_->device, vgpu::LaunchTag::kHydro);
    for (int l = 0; l < levels; ++l) {
      dt = std::min(dt, li_->compute_dt(h.level(l)));
    }
    if (ctx_->comm != nullptr) {
      dt = ctx_->comm->allreduce(dt, simmpi::ReduceOp::kMin);
    }
  }

  // --- Lagrangian step -------------------------------------------------
  {
    vgpu::ComponentScope scope(*clock_, "hydro");
    vgpu::LaunchTagScope launch_tag(ctx_->device, vgpu::LaunchTag::kHydro);
    for (int l = 0; l < levels; ++l) {
      li_->stage_pdv_predict(h.level(l), dt);
    }
  }
  {
    vgpu::ComponentScope scope(*clock_, "boundary");
    fill_all(sched_pressure_);
  }
  {
    vgpu::ComponentScope scope(*clock_, "hydro");
    vgpu::LaunchTagScope launch_tag(ctx_->device, vgpu::LaunchTag::kHydro);
    for (int l = 0; l < levels; ++l) {
      li_->stage_accelerate(h.level(l), dt);
    }
    for (int l = 0; l < levels; ++l) {
      li_->stage_pdv_correct(h.level(l), dt);
    }
    for (int l = 0; l < levels; ++l) {
      li_->stage_flux_calc(h.level(l), dt);
    }
  }

  // --- Advection (directional split, alternating order) ----------------
  const bool x_first = (step_count_ % 2) == 0;
  {
    vgpu::ComponentScope scope(*clock_, "boundary");
    fill_all(sched_preadvec_);
  }
  {
    vgpu::ComponentScope scope(*clock_, "hydro");
    vgpu::LaunchTagScope launch_tag(ctx_->device, vgpu::LaunchTag::kHydro);
    for (int l = 0; l < levels; ++l) {
      li_->stage_advec_cell(h.level(l), x_first, 1);
    }
  }
  {
    vgpu::ComponentScope scope(*clock_, "boundary");
    fill_all(sched_postcell_);
  }
  {
    vgpu::ComponentScope scope(*clock_, "hydro");
    vgpu::LaunchTagScope launch_tag(ctx_->device, vgpu::LaunchTag::kHydro);
    for (int l = 0; l < levels; ++l) {
      li_->stage_advec_mom(h.level(l), x_first, 1);
    }
    for (int l = 0; l < levels; ++l) {
      li_->stage_advec_cell(h.level(l), !x_first, 2);
    }
  }
  {
    vgpu::ComponentScope scope(*clock_, "boundary");
    fill_all(sched_postcell_);
  }
  {
    vgpu::ComponentScope scope(*clock_, "hydro");
    vgpu::LaunchTagScope launch_tag(ctx_->device, vgpu::LaunchTag::kHydro);
    for (int l = 0; l < levels; ++l) {
      li_->stage_advec_mom(h.level(l), !x_first, 2);
    }
    for (int l = 0; l < levels; ++l) {
      li_->stage_reset(h.level(l));
    }
  }

  // --- Synchronisation: fine solution replaces coarse -------------------
  {
    vgpu::ComponentScope scope(*clock_, "sync");
    for (auto& sched : sched_sync_) {
      sched->coarsen_data();
      ++xfer_counters_.halo_fills;
      xfer_counters_.messages_sent += sched->messages_sent_per_sync();
      xfer_counters_.messages_received += sched->messages_received_per_sync();
      xfer_counters_.bytes_sent += sched->bytes_sent_per_sync();
    }
  }

  time_ += dt;
  last_dt_ = dt;
  ++step_count_;

  // --- Regridding -------------------------------------------------------
  if (regrid_interval_ > 0 && (step_count_ % regrid_interval_) == 0 &&
      h.max_levels() > 1) {
    vgpu::ComponentScope scope(*clock_, "regrid");
    // Refresh halos so tagging and solution transfer see current data.
    fill_all(sched_state_);
    gridding_->regrid(h, time_);
    rebuild_schedules();
  }
  return dt;
}

hydro::FieldSummary LagrangianEulerianIntegrator::composite_summary() {
  hydro::FieldSummary total;
  hier::PatchHierarchy& h = *hierarchy_;
  for (int l = 0; l < h.num_levels(); ++l) {
    hier::PatchLevel& level = h.level(l);
    const hydro::CellGeom g = LagrangianEulerianLevelIntegrator::geom_of(level);
    // Cells covered by the finer level don't count (their fine values do).
    mesh::BoxList covered;
    if (h.has_level(l + 1)) {
      for (const mesh::Box& b : h.level(l + 1).boxes().boxes()) {
        covered.push_back(b.coarsen(h.level(l + 1).ratio_to_coarser()));
      }
    }
    for (const auto& patch : level.local_patches()) {
      mesh::BoxList uncovered(patch->box());
      uncovered.remove_intersections(covered);
      for (const mesh::Box& piece : uncovered.boxes()) {
        const hydro::FieldSummary s =
            li_->patch_integrator().field_summary(*patch, g, piece);
        total.mass += s.mass;
        total.internal_energy += s.internal_energy;
        total.kinetic_energy += s.kinetic_energy;
      }
    }
  }
  if (ctx_->comm != nullptr) {
    total.mass = ctx_->comm->allreduce(total.mass, simmpi::ReduceOp::kSum);
    total.internal_energy =
        ctx_->comm->allreduce(total.internal_energy, simmpi::ReduceOp::kSum);
    total.kinetic_energy =
        ctx_->comm->allreduce(total.kinetic_energy, simmpi::ReduceOp::kSum);
  }
  return total;
}

}  // namespace ramr::app
