#include "app/integrator.hpp"

#include <algorithm>
#include <limits>

#include "geom/coarsen_operators.hpp"
#include "geom/refine_operators.hpp"
#include "vgpu/topology.hpp"

namespace ramr::app {

using xfer::CoarsenItem;
using xfer::FillMode;
using xfer::RefineItem;

LagrangianEulerianIntegrator::LagrangianEulerianIntegrator(
    hier::PatchHierarchy& hierarchy,
    LagrangianEulerianLevelIntegrator& level_integrator,
    amr::GriddingAlgorithm& gridding, const Fields& fields,
    xfer::ParallelContext& ctx, ReflectiveBoundary& bc, vgpu::SimClock& clock,
    int regrid_interval)
    : hierarchy_(&hierarchy),
      li_(&level_integrator),
      gridding_(&gridding),
      fields_(fields),
      ctx_(&ctx),
      bc_(&bc),
      clock_(&clock),
      regrid_interval_(regrid_interval) {
  auto cell_op = std::make_shared<geom::CellConservativeLinearRefine>();
  auto node_op = std::make_shared<geom::NodeLinearRefine>();
  auto side_op = std::make_shared<geom::SideConservativeLinearRefine>();

  // Start-of-step state exchange.
  alg_state_.add(RefineItem{fields_.density0, cell_op});
  alg_state_.add(RefineItem{fields_.energy0, cell_op});
  alg_state_.add(RefineItem{fields_.xvel0, node_op});
  alg_state_.add(RefineItem{fields_.yvel0, node_op});
  // Pressure after each EOS evaluation.
  alg_pressure_.add(RefineItem{fields_.pressure, cell_op});
  // Viscosity before the timestep calculation / acceleration.
  alg_viscosity_.add(RefineItem{fields_.viscosity, cell_op});
  // Before the first advection sweep.
  alg_preadvec_.add(RefineItem{fields_.density1, cell_op});
  alg_preadvec_.add(RefineItem{fields_.energy1, cell_op});
  alg_preadvec_.add(RefineItem{fields_.vol_flux, side_op});
  // Between sweeps (mass fluxes + advanced velocities for advec_mom).
  alg_postcell_.add(RefineItem{fields_.density1, cell_op});
  alg_postcell_.add(RefineItem{fields_.energy1, cell_op});
  alg_postcell_.add(RefineItem{fields_.mass_flux, side_op});
  alg_postcell_.add(RefineItem{fields_.xvel1, node_op});
  alg_postcell_.add(RefineItem{fields_.yvel1, node_op});
  // Fine-to-coarse synchronisation (paper §IV-C: volume-weighted density,
  // mass-weighted energy, node injection for velocities).
  alg_sync_.add(CoarsenItem{fields_.density0,
                            std::make_shared<geom::VolumeWeightedCoarsen>(), -1});
  alg_sync_.add(CoarsenItem{fields_.energy0,
                            std::make_shared<geom::MassWeightedCoarsen>(),
                            fields_.density0});
  alg_sync_.add(CoarsenItem{fields_.xvel0,
                            std::make_shared<geom::NodeInjectionCoarsen>(), -1});
  alg_sync_.add(CoarsenItem{fields_.yvel0,
                            std::make_shared<geom::NodeInjectionCoarsen>(), -1});
}

void LagrangianEulerianIntegrator::initialize(double time) {
  time_ = time;
  gridding_->make_initial_hierarchy(*hierarchy_, time);
  rebuild_schedules();
}

void LagrangianEulerianIntegrator::rebuild_schedules() {
  const auto build = [&](const xfer::RefineAlgorithm& alg,
                         std::vector<std::unique_ptr<xfer::RefineSchedule>>& out) {
    out.clear();
    for (int l = 0; l < hierarchy_->num_levels(); ++l) {
      auto dst = hierarchy_->level_ptr(l);
      auto coarse = l > 0 ? hierarchy_->level_ptr(l - 1) : nullptr;
      out.push_back(alg.create_schedule(dst, dst, coarse,
                                        hierarchy_->variables(), *ctx_, bc_,
                                        FillMode::kGhostsOnly));
    }
  };
  build(alg_state_, sched_state_);
  build(alg_pressure_, sched_pressure_);
  build(alg_viscosity_, sched_viscosity_);
  build(alg_preadvec_, sched_preadvec_);
  build(alg_postcell_, sched_postcell_);

  sched_sync_.clear();
  for (int l = hierarchy_->num_levels() - 1; l >= 1; --l) {
    sched_sync_.push_back(alg_sync_.create_schedule(
        hierarchy_->level_ptr(l - 1), hierarchy_->level_ptr(l),
        hierarchy_->variables(), *ctx_));
  }
}

void LagrangianEulerianIntegrator::fill_all(
    std::vector<std::unique_ptr<xfer::RefineSchedule>>& scheds,
    TransferCounters::Window window) {
  // Coarse-to-fine: coarse ghosts must be valid before a finer level's
  // coarse-fill gathers from them.
  for (auto& sched : scheds) {
    sched->fill();
    ++xfer_counters_.halo_fills;
    ++xfer_counters_.window[window].fills;
    xfer_counters_.messages_sent += sched->messages_sent_per_fill();
    xfer_counters_.messages_received += sched->messages_received_per_fill();
    xfer_counters_.bytes_sent += sched->bytes_sent_per_fill();
  }
}

void LagrangianEulerianIntegrator::begin_all(
    std::vector<std::unique_ptr<xfer::RefineSchedule>>& scheds) {
  // Every level's same-level exchange starts here: its begin phase only
  // reads that level's interiors and writes that level's ghosts (the
  // wide-overlap early gather reads only the coarser level's
  // strictly-interior data), so the begins are mutually independent and
  // the wire time of all levels' messages is in flight together.
  for (auto& sched : scheds) {
    sched->fill_begin();
  }
}

void LagrangianEulerianIntegrator::finish_all(
    std::vector<std::unique_ptr<xfer::RefineSchedule>>& scheds,
    TransferCounters::Window window) {
  // Finish coarse-to-fine, like fill_all: a level's coarse gather reads
  // the coarser level's ghosts, which its (earlier) finish completed.
  for (auto& sched : scheds) {
    sched->fill_finish();
    ++xfer_counters_.halo_fills;
    ++xfer_counters_.split_fills;
    ++xfer_counters_.window[window].fills;
    ++xfer_counters_.window[window].split_fills;
    xfer_counters_.messages_sent += sched->messages_sent_per_fill();
    xfer_counters_.messages_received += sched->messages_received_per_fill();
    xfer_counters_.bytes_sent += sched->bytes_sent_per_fill();
  }
}

bool LagrangianEulerianIntegrator::wide_overlap_active() const {
  // The stage splits pay a launch/occupancy premium per sub-stage; with
  // no remote peers there is no wire to buy back, so a 1-rank world
  // keeps the single-window shape (local-copy time already hides behind
  // EOS at zero extra cost). Interior/rind parts need the batched route.
  return ctx_->timeline != nullptr && ctx_->wide_overlap && li_->batched() &&
         !ctx_->is_serial();
}

double LagrangianEulerianIntegrator::overlap_saved_now() const {
  return ctx_->timeline != nullptr ? ctx_->timeline->overlap_seconds_saved()
                                   : 0.0;
}

double LagrangianEulerianIntegrator::comm_busy_now() const {
  // Comm kernels + wire legs + the two PCIe copy engines: everything a
  // window's exchange occupies off the host lane.
  vgpu::Timeline* tl = ctx_->timeline;
  if (tl == nullptr) {
    return 0.0;
  }
  return tl->busy(tl->lane("comm")) + tl->busy(tl->lane("net")) +
         tl->busy(tl->lane("d2h")) + tl->busy(tl->lane("h2d"));
}

void LagrangianEulerianIntegrator::fill_window(
    TransferCounters::Window window,
    std::vector<std::unique_ptr<xfer::RefineSchedule>>& scheds,
    const StageFn& stage) {
  static constexpr const char* kWindowAnnotations
      [TransferCounters::kWindowCount] = {"window:state", "window:pressure",
                                          "window:viscosity",
                                          "window:preadvec", "window:postcell"};
  vgpu::AnnotationScope annotation(clock_, kWindowAnnotations[window]);
  const double saved0 = overlap_saved_now();
  const double comm0 = comm_busy_now();
  if (wide_overlap_active()) {
    {
      vgpu::ComponentScope scope(*clock_, "boundary");
      begin_all(scheds);
    }
    {
      // The ghost-free interior sweep runs on the host lane while the
      // exchange's wire legs ride the comm/net lanes.
      vgpu::ComponentScope scope(*clock_, "hydro");
      vgpu::LaunchTagScope launch_tag(ctx_->device, vgpu::LaunchTag::kHydro);
      stage(hydro::SweepPart::kInterior);
    }
    {
      vgpu::ComponentScope scope(*clock_, "boundary");
      finish_all(scheds, window);
    }
    {
      // Boundary rind: the shell cells whose stencils read the ghosts
      // the finish just filled.
      vgpu::ComponentScope scope(*clock_, "hydro");
      vgpu::LaunchTagScope launch_tag(ctx_->device, vgpu::LaunchTag::kRind);
      stage(hydro::SweepPart::kRind);
    }
  } else {
    {
      vgpu::ComponentScope scope(*clock_, "boundary");
      fill_all(scheds, window);
    }
    {
      vgpu::ComponentScope scope(*clock_, "hydro");
      vgpu::LaunchTagScope launch_tag(ctx_->device, vgpu::LaunchTag::kHydro);
      stage(hydro::SweepPart::kAll);
    }
  }
  xfer_counters_.window[window].overlap_seconds_saved +=
      overlap_saved_now() - saved0;
  xfer_counters_.window[window].comm_seconds += comm_busy_now() - comm0;
}

double LagrangianEulerianIntegrator::advance() {
  hier::PatchHierarchy& h = *hierarchy_;
  const int levels = h.num_levels();
  using Window = TransferCounters::Window;

  // --- Boundary + EOS + viscosity + timestep --------------------------
  //
  // With a timeline attached (async-overlap runs) every halo exchange
  // executes split-phase around compute that provably needs no ghosts:
  // the state exchange around the pointwise EOS stage, and — under
  // wide_overlap — each later exchange around the INTERIOR sweep of its
  // consumer stencil stage (hydro::SweepPart), with the boundary rind
  // swept after the exchange finished. The launches and their inputs are
  // identical to the synchronous order (packs happen before any
  // overlapped compute; interior sweeps read no in-flight ghost or seam
  // data; rind sweeps read finished ghosts exactly as a post-fill stage
  // would), so the fields are bit-identical; only the modeled completion
  // time drops (docs/async_overlap.md).
  const bool split_phase = ctx_->timeline != nullptr;
  const bool wide = wide_overlap_active();
  double dt = std::numeric_limits<double>::infinity();
  const auto compute_dt_all = [&]() {
    vgpu::AnnotationScope annotation(clock_, "stage:timestep");
    vgpu::ComponentScope scope(*clock_, "timestep");
    vgpu::LaunchTagScope launch_tag(ctx_->device, vgpu::LaunchTag::kHydro);
    for (int l = 0; l < levels; ++l) {
      dt = std::min(dt, li_->compute_dt(h.level(l)));
    }
    if (ctx_->comm != nullptr) {
      dt = ctx_->comm->allreduce(dt, simmpi::ReduceOp::kMin);
    }
  };
  const auto hydro_stage = [&](vgpu::LaunchTag tag, auto&& body) {
    vgpu::AnnotationScope annotation(clock_, "stage:hydro");
    vgpu::ComponentScope scope(*clock_, "hydro");
    vgpu::LaunchTagScope launch_tag(ctx_->device, tag);
    for (int l = 0; l < levels; ++l) {
      body(h.level(l));
    }
  };
  const auto boundary = [&](auto&& body) {
    vgpu::ComponentScope scope(*clock_, "boundary");
    body();
  };
  if (wide) {
    using hydro::SweepPart;
    // State window: EOS is pointwise, so the whole stage is its own
    // interior and there is no rind — the original single-window shape.
    // (Keeping this window separate from the pressure window measures
    // strictly better than fusing them: the two exchanges' chains share
    // the comm lane and the copy engines, so beginning the second fill
    // early only delays the first one's finish.)
    {
      vgpu::AnnotationScope annotation(clock_, "window:state");
      const double saved0 = overlap_saved_now();
      const double comm0 = comm_busy_now();
      boundary([&] { begin_all(sched_state_); });
      hydro_stage(vgpu::LaunchTag::kHydro,
                  [&](hier::PatchLevel& l) { li_->stage_eos(l); });
      boundary([&] { finish_all(sched_state_, Window::kState); });
      xfer_counters_.window[Window::kState].overlap_seconds_saved +=
          overlap_saved_now() - saved0;
      xfer_counters_.window[Window::kState].comm_seconds +=
          comm_busy_now() - comm0;
    }
    // First pressure window: hidden behind the viscosity interior.
    fill_window(Window::kPressure, sched_pressure_,
                [&](SweepPart part) {
                  for (int l = 0; l < levels; ++l) {
                    li_->stage_viscosity(h.level(l), part);
                  }
                });
    // Viscosity window: neither the timestep reduction (allreduce
    // included) nor the Lagrangian predictor reads any ghost, so the
    // viscosity exchange stays in flight across BOTH and finishes just
    // before the acceleration stage that consumes viscosity ghosts.
    {
      vgpu::AnnotationScope annotation(clock_, "window:viscosity");
      const double saved0 = overlap_saved_now();
      const double comm0 = comm_busy_now();
      boundary([&] { begin_all(sched_viscosity_); });
      compute_dt_all();
      hydro_stage(vgpu::LaunchTag::kHydro, [&](hier::PatchLevel& l) {
        li_->stage_pdv_predict(l, dt);
      });
      boundary([&] { finish_all(sched_viscosity_, Window::kViscosity); });
      xfer_counters_.window[Window::kViscosity].overlap_seconds_saved +=
          overlap_saved_now() - saved0;
      xfer_counters_.window[Window::kViscosity].comm_seconds +=
          comm_busy_now() - comm0;
    }
    // Second pressure window: the whole Lagrangian step's interiors run
    // inside it — acceleration first, then the corrector and flux sweeps,
    // whose velocity reads chain within the acceleration's interior
    // (depths in hydro/kernels.cpp) and which read no in-flight ghost.
    fill_window(Window::kPressure, sched_pressure_,
                [&](SweepPart part) {
                  for (int l = 0; l < levels; ++l) {
                    li_->stage_accelerate(h.level(l), dt, part);
                    li_->stage_pdv_correct(h.level(l), dt, part);
                    li_->stage_flux_calc(h.level(l), dt, part);
                  }
                });
  } else {
    // Single-window (PR-4) and synchronous shapes: only the state
    // exchange splits (around EOS); every other fill precedes its
    // consumer stage whole.
    {
      vgpu::AnnotationScope annotation(clock_, "window:state");
      const double saved0 = overlap_saved_now();
      boundary([&] {
        if (split_phase) {
          begin_all(sched_state_);
        } else {
          fill_all(sched_state_, Window::kState);
        }
      });
      hydro_stage(vgpu::LaunchTag::kHydro,
                  [&](hier::PatchLevel& l) { li_->stage_eos(l); });
      if (split_phase) {
        boundary([&] { finish_all(sched_state_, Window::kState); });
      }
      xfer_counters_.window[Window::kState].overlap_seconds_saved +=
          overlap_saved_now() - saved0;
    }
    boundary([&] { fill_all(sched_pressure_, Window::kPressure); });
    hydro_stage(vgpu::LaunchTag::kHydro,
                [&](hier::PatchLevel& l) { li_->stage_viscosity(l); });
    boundary([&] { fill_all(sched_viscosity_, Window::kViscosity); });
    compute_dt_all();

    // --- Lagrangian step ----------------------------------------------
    hydro_stage(vgpu::LaunchTag::kHydro, [&](hier::PatchLevel& l) {
      li_->stage_pdv_predict(l, dt);
    });
    boundary([&] { fill_all(sched_pressure_, Window::kPressure); });
    hydro_stage(vgpu::LaunchTag::kHydro, [&](hier::PatchLevel& l) {
      li_->stage_accelerate(l, dt);
    });
    hydro_stage(vgpu::LaunchTag::kHydro, [&](hier::PatchLevel& l) {
      li_->stage_pdv_correct(l, dt);
    });
    hydro_stage(vgpu::LaunchTag::kHydro, [&](hier::PatchLevel& l) {
      li_->stage_flux_calc(l, dt);
    });
  }

  // --- Advection (directional split, alternating order) ----------------
  const bool x_first = (step_count_ % 2) == 0;
  fill_window(Window::kPreAdvec, sched_preadvec_,
              [&](hydro::SweepPart part) {
                for (int l = 0; l < levels; ++l) {
                  li_->stage_advec_cell(h.level(l), x_first, 1, part);
                }
              });
  fill_window(Window::kPostCell, sched_postcell_,
              [&](hydro::SweepPart part) {
                for (int l = 0; l < levels; ++l) {
                  li_->stage_advec_mom(h.level(l), x_first, 1, part);
                }
              });
  {
    vgpu::ComponentScope scope(*clock_, "hydro");
    vgpu::LaunchTagScope launch_tag(ctx_->device, vgpu::LaunchTag::kHydro);
    for (int l = 0; l < levels; ++l) {
      li_->stage_advec_cell(h.level(l), !x_first, 2);
    }
  }
  fill_window(Window::kPostCell, sched_postcell_,
              [&](hydro::SweepPart part) {
                for (int l = 0; l < levels; ++l) {
                  li_->stage_advec_mom(h.level(l), !x_first, 2, part);
                }
              });
  {
    vgpu::ComponentScope scope(*clock_, "hydro");
    vgpu::LaunchTagScope launch_tag(ctx_->device, vgpu::LaunchTag::kHydro);
    for (int l = 0; l < levels; ++l) {
      li_->stage_reset(h.level(l));
    }
  }

  // --- Synchronisation: fine solution replaces coarse -------------------
  {
    vgpu::AnnotationScope annotation(clock_, "sync");
    vgpu::ComponentScope scope(*clock_, "sync");
    for (auto& sched : sched_sync_) {
      sched->coarsen_data();
      ++xfer_counters_.halo_fills;
      xfer_counters_.messages_sent += sched->messages_sent_per_sync();
      xfer_counters_.messages_received += sched->messages_received_per_sync();
      xfer_counters_.bytes_sent += sched->bytes_sent_per_sync();
    }
  }

  time_ += dt;
  last_dt_ = dt;
  ++step_count_;

  // --- Regridding -------------------------------------------------------
  if (regrid_interval_ > 0 && (step_count_ % regrid_interval_) == 0 &&
      h.max_levels() > 1) {
    vgpu::AnnotationScope annotation(clock_, "regrid");
    vgpu::ComponentScope scope(*clock_, "regrid");
    // Refresh halos so tagging and solution transfer see current data.
    fill_all(sched_state_, TransferCounters::Window::kState);
    if (ctx_->topology != nullptr) {
      // Feed the observed per-device costs forward: the rebuilt levels'
      // patch-to-device assignment adapts to what the devices actually
      // did since the last regrid (amr::BalanceMethod::kMeasured).
      gridding_->set_measured_costs(measure_device_costs());
    }
    gridding_->regrid(h, time_);
    rebuild_schedules();
  }
  xfer_counters_.plan_fallbacks = ctx_->plan_fallbacks;
  return dt;
}

std::vector<amr::MeasuredDeviceCosts>
LagrangianEulerianIntegrator::measure_device_costs() {
  vgpu::Topology* topo = ctx_->topology;
  const int n = topo->device_count();
  std::vector<amr::MeasuredDeviceCosts> costs(
      static_cast<std::size_t>(n));
  gpu_busy_snapshot_.resize(static_cast<std::size_t>(n), 0.0);
  vgpu::Timeline* tl = ctx_->timeline;
  for (int d = 0; d < n; ++d) {
    double busy = 0.0;
    if (tl != nullptr) {
      busy = tl->busy(tl->lane(vgpu::Topology::gpu_lane_name(d)));
    }
    costs[static_cast<std::size_t>(d)].busy_seconds =
        busy - gpu_busy_snapshot_[static_cast<std::size_t>(d)];
    gpu_busy_snapshot_[static_cast<std::size_t>(d)] = busy;
  }
  for (int l = 0; l < hierarchy_->num_levels(); ++l) {
    for (const auto& p : hierarchy_->level(l).local_patches()) {
      const int d = p->device_ordinal();
      if (d >= 0 && d < n) {
        costs[static_cast<std::size_t>(d)].cells += p->box().size();
      }
    }
  }
  return costs;
}

hydro::FieldSummary LagrangianEulerianIntegrator::composite_summary() {
  hydro::FieldSummary total;
  hier::PatchHierarchy& h = *hierarchy_;
  for (int l = 0; l < h.num_levels(); ++l) {
    hier::PatchLevel& level = h.level(l);
    const hydro::CellGeom g = LagrangianEulerianLevelIntegrator::geom_of(level);
    // Cells covered by the finer level don't count (their fine values do).
    mesh::BoxList covered;
    if (h.has_level(l + 1)) {
      for (const mesh::Box& b : h.level(l + 1).boxes().boxes()) {
        covered.push_back(b.coarsen(h.level(l + 1).ratio_to_coarser()));
      }
    }
    for (const auto& patch : level.local_patches()) {
      mesh::BoxList uncovered(patch->box());
      uncovered.remove_intersections(covered);
      for (const mesh::Box& piece : uncovered.boxes()) {
        const hydro::FieldSummary s =
            li_->patch_integrator().field_summary(*patch, g, piece);
        total.mass += s.mass;
        total.internal_energy += s.internal_energy;
        total.kinetic_energy += s.kinetic_energy;
      }
    }
  }
  if (ctx_->comm != nullptr) {
    total.mass = ctx_->comm->allreduce(total.mass, simmpi::ReduceOp::kSum);
    total.internal_energy =
        ctx_->comm->allreduce(total.internal_energy, simmpi::ReduceOp::kSum);
    total.kinetic_energy =
        ctx_->comm->allreduce(total.kinetic_energy, simmpi::ReduceOp::kSum);
  }
  return total;
}

}  // namespace ramr::app
