// LagrangianEulerianIntegrator (paper Fig. 6): manages the adaptive
// hierarchy and advances the simulation. One advance() performs the
// CloverLeaf timestep on every level (non-subcycled, as CleverLeaf),
// with halo exchanges between stages, conservative fine-to-coarse
// synchronisation afterwards, and periodic regridding — charging each
// phase to the named clock components the paper's Fig. 11 reports
// (hydro / boundary / timestep / sync / regrid).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "amr/gridding_algorithm.hpp"
#include "app/level_integrator.hpp"
#include "app/reflective_boundary.hpp"
#include "hier/patch_hierarchy.hpp"
#include "xfer/coarsen_schedule.hpp"
#include "xfer/refine_schedule.hpp"

namespace ramr::app {

/// Cumulative transfer-layer traffic of one rank's integration, counted
/// by the aggregated-message engine (diagnostics for the paper's Fig. 10
/// communication analysis: messages shrink to one per peer per fill).
struct TransferCounters {
  std::uint64_t halo_fills = 0;         ///< schedule executions (fill + sync)
  std::uint64_t messages_sent = 0;      ///< aggregated peer messages sent
  std::uint64_t messages_received = 0;  ///< aggregated peer messages received
  std::uint64_t bytes_sent = 0;         ///< wire bytes sent
  /// Fills executed split-phase (begin / overlapped compute / finish) on
  /// the async-overlap path; 0 on the synchronous path.
  std::uint64_t split_fills = 0;
  /// Schedule executions that requested a compiled plan but demoted to
  /// the per-transaction legacy path (an endpoint was not device-viewable
  /// or not plannable). A silent performance cliff when nonzero: every
  /// such fill pays per-transaction launches and staging.
  std::uint64_t plan_fallbacks = 0;

  /// The per-step fill windows of the integrator, named after the
  /// exchanged quantity. Windows executed more than once per step (the
  /// pressure fill after EOS and after the Lagrangian predictor, the
  /// post-cell fill after each advection sweep) accumulate into one slot.
  enum Window : int {
    kState = 0,   ///< start-of-step state exchange (hidden by EOS)
    kPressure,    ///< pressure fills (hidden by viscosity / acceleration)
    kViscosity,   ///< viscosity fill (hidden by dt + Lagrangian predictor)
    kPreAdvec,    ///< pre-advection fill (hidden by the first cell sweep)
    kPostCell,    ///< post-cell fills (hidden by the momentum sweeps)
    kWindowCount
  };
  static const char* window_name(int w) {
    static constexpr const char* kNames[kWindowCount] = {
        "state", "pressure", "viscosity", "preadvec", "postcell"};
    return kNames[w];
  }

  /// Per-window breakdown: how often each exchange ran, how often it ran
  /// split-phase, how much comm/net-lane work the window issued, and how
  /// much modeled time the timeline attributes to it (the
  /// overlap_seconds_saved delta across it) — which fill windows
  /// actually hide time, not just the step aggregate.
  struct WindowStats {
    std::uint64_t fills = 0;
    std::uint64_t split_fills = 0;
    /// comm+net lane busy seconds issued inside the window (an upper
    /// bound on what the window could hide); 0 without a timeline.
    double comm_seconds = 0.0;
    double overlap_seconds_saved = 0.0;
  };
  std::array<WindowStats, kWindowCount> window{};
};

/// Hierarchy-wide time integration.
class LagrangianEulerianIntegrator {
 public:
  LagrangianEulerianIntegrator(hier::PatchHierarchy& hierarchy,
                               LagrangianEulerianLevelIntegrator& level_integrator,
                               amr::GriddingAlgorithm& gridding,
                               const Fields& fields,
                               xfer::ParallelContext& ctx,
                               ReflectiveBoundary& bc, vgpu::SimClock& clock,
                               int regrid_interval = 10);

  /// Builds the initial hierarchy and the communication schedules.
  void initialize(double time);

  /// One timestep; returns the dt taken.
  double advance();

  double time() const { return time_; }
  int step_count() const { return step_count_; }
  double last_dt() const { return last_dt_; }

  /// Conservation diagnostics over the composite mesh: cells covered by
  /// a finer level are excluded, so totals are physical.
  hydro::FieldSummary composite_summary();

  /// Cumulative aggregated-message traffic since construction.
  const TransferCounters& transfer_counters() const { return xfer_counters_; }

  /// Rebuilds every communication schedule (after any regrid).
  void rebuild_schedules();

  /// Restores the integration state after a checkpoint reload.
  void restore_state(double time, int step_count) {
    time_ = time;
    step_count_ = step_count;
  }

 private:
  void fill_all(std::vector<std::unique_ptr<xfer::RefineSchedule>>& scheds,
                TransferCounters::Window window);

  // Split-phase halves of fill_all (async-overlap path): begin starts
  // every level's same-level exchange (and, under wide_overlap, the
  // early half of each coarse gather); finish completes them in level
  // order (so a level's coarse gather still sees the coarser level's
  // finished ghosts) and accounts the traffic.
  void begin_all(std::vector<std::unique_ptr<xfer::RefineSchedule>>& scheds);
  void finish_all(std::vector<std::unique_ptr<xfer::RefineSchedule>>& scheds,
                  TransferCounters::Window window);

  /// Runs the stencil stage of one fill window over every level.
  using StageFn = std::function<void(hydro::SweepPart)>;

  /// One overlapped fill window (wide_overlap): begin the exchange, run
  /// the stage's ghost-free interior sweep on the host lane while the
  /// messages fly, finish the exchange, then run the boundary rind
  /// sweep. Without wide overlap this degrades to the synchronous
  /// fill-then-full-stage pair, unchanged from the single-window
  /// subsystem. Either way the launch inputs match the synchronous
  /// order, so fields are bit-identical (docs/async_overlap.md).
  void fill_window(TransferCounters::Window window,
                   std::vector<std::unique_ptr<xfer::RefineSchedule>>& scheds,
                   const StageFn& stage);

  /// True when the widened overlap window is in effect: timeline
  /// attached, wide_overlap requested, batched route, distributed world.
  bool wide_overlap_active() const;

  /// overlap_seconds_saved of the attached timeline (0 without one).
  double overlap_saved_now() const;

  /// comm+net lane busy seconds of the attached timeline (0 without one).
  double comm_busy_now() const;

  /// Per-device compute cost observed since the previous regrid: the
  /// "gpu<i>" lane busy delta plus the device's current cell count — the
  /// measured inputs of amr::BalanceMethod::kMeasured. Only meaningful
  /// with a multi-device topology in ctx_.
  std::vector<amr::MeasuredDeviceCosts> measure_device_costs();

  hier::PatchHierarchy* hierarchy_;
  LagrangianEulerianLevelIntegrator* li_;
  amr::GriddingAlgorithm* gridding_;
  Fields fields_;
  xfer::ParallelContext* ctx_;
  ReflectiveBoundary* bc_;
  vgpu::SimClock* clock_;
  int regrid_interval_;

  xfer::RefineAlgorithm alg_state_;
  xfer::RefineAlgorithm alg_pressure_;
  xfer::RefineAlgorithm alg_viscosity_;
  xfer::RefineAlgorithm alg_preadvec_;
  xfer::RefineAlgorithm alg_postcell_;
  xfer::CoarsenAlgorithm alg_sync_;

  std::vector<std::unique_ptr<xfer::RefineSchedule>> sched_state_;
  std::vector<std::unique_ptr<xfer::RefineSchedule>> sched_pressure_;
  std::vector<std::unique_ptr<xfer::RefineSchedule>> sched_viscosity_;
  std::vector<std::unique_ptr<xfer::RefineSchedule>> sched_preadvec_;
  std::vector<std::unique_ptr<xfer::RefineSchedule>> sched_postcell_;
  std::vector<std::unique_ptr<xfer::CoarsenSchedule>> sched_sync_;

  double time_ = 0.0;
  double last_dt_ = 0.0;
  int step_count_ = 0;
  TransferCounters xfer_counters_;
  /// Cumulative gpu-lane busy at the last measurement, one per device.
  std::vector<double> gpu_busy_snapshot_;
};

}  // namespace ramr::app
