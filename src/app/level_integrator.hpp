// LagrangianEulerianLevelIntegrator (paper Fig. 6): advances the
// solution on a single level, one stage at a time. Halo exchanges
// between stages are owned by the hierarchy integrator.
//
// Two execution routes share the kernel bodies and produce bit-identical
// fields: the batched route (default; one fused launch per kernel
// sub-stage per level through a LevelKernelRunner) and the per-patch
// route (the paper's original structure; one launch per patch through
// the black-box PatchIntegrator).
#pragma once

#include "app/patch_integrator.hpp"
#include "hier/patch_level.hpp"

namespace ramr::app {

class LevelKernelRunner;

/// Stage-wise advancement of one PatchLevel.
class LagrangianEulerianLevelIntegrator {
 public:
  /// With a non-null `batched` runner every stage fuses its per-patch
  /// kernels into one launch per sub-stage per level; otherwise stages
  /// loop `integrator` over each local patch.
  explicit LagrangianEulerianLevelIntegrator(PatchIntegrator& integrator,
                                             LevelKernelRunner* batched = nullptr)
      : pi_(&integrator), batched_(batched) {}

  /// True when stages run as fused per-level launches.
  bool batched() const { return batched_ != nullptr; }

  /// Minimum stable dt over the level's local patches.
  double compute_dt(hier::PatchLevel& level);

  /// Stencil stages take a sweep part (hydro::SweepPart): kInterior runs
  /// only the ghost-free patch cores (safe while a halo exchange is in
  /// flight), kRind the complementary boundary shells afterwards, and
  /// kAll (the default) the whole stage. Parts other than kAll require
  /// the batched route; the per-patch route always sweeps everything.

  /// EOS + artificial viscosity from the level-n state.
  void stage_eos(hier::PatchLevel& level);
  void stage_viscosity(hier::PatchLevel& level,
                       hydro::SweepPart part = hydro::SweepPart::kAll);

  /// Lagrangian predictor: half-step PdV, then EOS on the predicted
  /// state (pressure at t + dt/2).
  void stage_pdv_predict(hier::PatchLevel& level, double dt,
                         hydro::SweepPart part = hydro::SweepPart::kAll);

  /// Nodal acceleration with the half-step pressure.
  void stage_accelerate(hier::PatchLevel& level, double dt,
                        hydro::SweepPart part = hydro::SweepPart::kAll);

  /// Lagrangian corrector: full-step PdV with time-centred velocities.
  void stage_pdv_correct(hier::PatchLevel& level, double dt,
                         hydro::SweepPart part = hydro::SweepPart::kAll);

  void stage_flux_calc(hier::PatchLevel& level, double dt,
                       hydro::SweepPart part = hydro::SweepPart::kAll);

  /// One advection sweep: cells then both momentum components.
  void stage_advec_cell(hier::PatchLevel& level, bool x_direction,
                        int sweep_number,
                        hydro::SweepPart part = hydro::SweepPart::kAll);
  void stage_advec_mom(hier::PatchLevel& level, bool x_direction,
                       int sweep_number,
                       hydro::SweepPart part = hydro::SweepPart::kAll);

  void stage_reset(hier::PatchLevel& level,
                   hydro::SweepPart part = hydro::SweepPart::kAll);

  PatchIntegrator& patch_integrator() { return *pi_; }

  static hydro::CellGeom geom_of(const hier::PatchLevel& level) {
    return hydro::CellGeom{level.dx()[0], level.dx()[1]};
  }

 private:
  PatchIntegrator* pi_;
  LevelKernelRunner* batched_ = nullptr;
};

}  // namespace ramr::app
