// Test problems (paper §V): the Sod shock tube used for the serial and
// strong-scaling studies, and the triple-point shock interaction used
// for the weak-scaling study on Titan. Both provide initial conditions
// and the gradient-based refinement-flagging heuristic, evaluated as
// data-parallel device kernels (paper §IV-C: "evaluating the tagging
// heuristic at each mesh cell is trivially parallel").
//
// Beyond the two C++-coded classics, RegionProblem adapts a declarative
// cfg::ScenarioSpec (background + box/circle/ramp regions, optional
// gamma / gravity / initial velocity) to the same interface — the route
// every JSON-configured scenario takes (docs/scenarios.md).
#pragma once

#include <array>
#include <functional>
#include <memory>

#include "amr/tag_strategy.hpp"
#include "app/fields.hpp"
#include "cfg/scenario.hpp"
#include "hydro/kernels.hpp"

namespace ramr::app {

/// (density, specific internal energy) at a physical point.
using InitialState = std::function<std::array<double, 2>(double x, double y)>;

/// (x-velocity, y-velocity) at a physical point (node-centred).
using InitialVelocity =
    std::function<std::array<double, 2>(double x, double y)>;

/// Common CleverLeaf problem behaviour: analytic initial data for every
/// field and density/energy gradient tagging.
class HydroProblem : public amr::TagStrategy {
 public:
  HydroProblem(const Fields& fields, double tag_threshold)
      : fields_(fields), tag_threshold_(tag_threshold) {}

  void initialize_level_data(hier::Patch& patch, const hier::PatchLevel& level,
                             const mesh::GridGeometry& geometry,
                             double time) override;

  void tag_cells(hier::Patch& patch, const hier::PatchLevel& level,
                 const mesh::GridGeometry& geometry, amr::DeviceTagData& tags,
                 double time) override;

  /// Physical domain this problem is defined on.
  virtual std::array<double, 2> domain_lower() const = 0;
  virtual std::array<double, 2> domain_upper() const = 0;

  /// Initial (rho, e) as a function of position.
  virtual InitialState initial_state() const = 0;

  /// Initial nodal velocity, or null for the at-rest default. Null keeps
  /// initialization on the exact zero-fill path of the historical
  /// problems; a non-null function is evaluated at node coordinates over
  /// the full ghost box, like the cell state.
  virtual InitialVelocity initial_velocity() const { return nullptr; }

  /// Scenario physics; the defaults are the historical constants.
  virtual hydro::Physics physics() const { return {}; }

 private:
  Fields fields_;
  double tag_threshold_;
};

/// Sod shock tube (planar, along x): (rho, p) = (1, 1) on the left,
/// (0.125, 0.1) on the right of x = 0.5 on a unit square.
class SodProblem : public HydroProblem {
 public:
  SodProblem(const Fields& fields, double tag_threshold = 0.05)
      : HydroProblem(fields, tag_threshold) {}
  std::array<double, 2> domain_lower() const override { return {0.0, 0.0}; }
  std::array<double, 2> domain_upper() const override { return {1.0, 1.0}; }
  InitialState initial_state() const override;
};

/// Triple-point shock interaction (Galera et al. [33]): a 7 x 3
/// rectangle; a high-pressure driver for x < 1 and two low-pressure
/// regions of different density above and below y = 1.5 for x > 1. A
/// strong shock runs left to right, generating vorticity and a complex
/// rolled-up interface — the paper's weak-scaling workload.
class TriplePointProblem : public HydroProblem {
 public:
  TriplePointProblem(const Fields& fields, double tag_threshold = 0.05)
      : HydroProblem(fields, tag_threshold) {}
  std::array<double, 2> domain_lower() const override { return {0.0, 0.0}; }
  std::array<double, 2> domain_upper() const override { return {7.0, 3.0}; }
  InitialState initial_state() const override;
};

/// A problem defined entirely by a cfg::ScenarioSpec: initial state is
/// the spec's painted regions, physics its gamma/gravity. Scenarios with
/// no velocity anywhere keep the zero-fill initialization path, so a
/// region spec that reproduces a built-in problem's analytic state
/// produces bit-identical runs.
class RegionProblem : public HydroProblem {
 public:
  RegionProblem(const Fields& fields, double tag_threshold,
                std::shared_ptr<const cfg::ScenarioSpec> spec)
      : HydroProblem(fields, tag_threshold), spec_(std::move(spec)) {
    RAMR_REQUIRE(spec_ != nullptr, "RegionProblem needs a scenario spec");
  }

  std::array<double, 2> domain_lower() const override {
    return spec_->domain_lower;
  }
  std::array<double, 2> domain_upper() const override {
    return spec_->domain_upper;
  }
  InitialState initial_state() const override;
  InitialVelocity initial_velocity() const override;
  hydro::Physics physics() const override {
    return {spec_->gamma, spec_->gravity[0], spec_->gravity[1]};
  }

  const cfg::ScenarioSpec& spec() const { return *spec_; }

 private:
  std::shared_ptr<const cfg::ScenarioSpec> spec_;
};

}  // namespace ramr::app
