// Test problems (paper §V): the Sod shock tube used for the serial and
// strong-scaling studies, and the triple-point shock interaction used
// for the weak-scaling study on Titan. Both provide initial conditions
// and the gradient-based refinement-flagging heuristic, evaluated as
// data-parallel device kernels (paper §IV-C: "evaluating the tagging
// heuristic at each mesh cell is trivially parallel").
#pragma once

#include <array>
#include <functional>
#include <memory>

#include "amr/tag_strategy.hpp"
#include "app/fields.hpp"

namespace ramr::app {

/// (density, specific internal energy) at a physical point.
using InitialState = std::function<std::array<double, 2>(double x, double y)>;

/// Common CleverLeaf problem behaviour: analytic initial data for every
/// field and density/energy gradient tagging.
class HydroProblem : public amr::TagStrategy {
 public:
  HydroProblem(const Fields& fields, double tag_threshold)
      : fields_(fields), tag_threshold_(tag_threshold) {}

  void initialize_level_data(hier::Patch& patch, const hier::PatchLevel& level,
                             const mesh::GridGeometry& geometry,
                             double time) override;

  void tag_cells(hier::Patch& patch, const hier::PatchLevel& level,
                 const mesh::GridGeometry& geometry, amr::DeviceTagData& tags,
                 double time) override;

  /// Physical domain this problem is defined on.
  virtual std::array<double, 2> domain_lower() const = 0;
  virtual std::array<double, 2> domain_upper() const = 0;

  /// Initial (rho, e) as a function of position.
  virtual InitialState initial_state() const = 0;

 private:
  Fields fields_;
  double tag_threshold_;
};

/// Sod shock tube (planar, along x): (rho, p) = (1, 1) on the left,
/// (0.125, 0.1) on the right of x = 0.5 on a unit square.
class SodProblem : public HydroProblem {
 public:
  SodProblem(const Fields& fields, double tag_threshold = 0.05)
      : HydroProblem(fields, tag_threshold) {}
  std::array<double, 2> domain_lower() const override { return {0.0, 0.0}; }
  std::array<double, 2> domain_upper() const override { return {1.0, 1.0}; }
  InitialState initial_state() const override;
};

/// Triple-point shock interaction (Galera et al. [33]): a 7 x 3
/// rectangle; a high-pressure driver for x < 1 and two low-pressure
/// regions of different density above and below y = 1.5 for x > 1. A
/// strong shock runs left to right, generating vorticity and a complex
/// rolled-up interface — the paper's weak-scaling workload.
class TriplePointProblem : public HydroProblem {
 public:
  TriplePointProblem(const Fields& fields, double tag_threshold = 0.05)
      : HydroProblem(fields, tag_threshold) {}
  std::array<double, 2> domain_lower() const override { return {0.0, 0.0}; }
  std::array<double, 2> domain_upper() const override { return {7.0, 3.0}; }
  InitialState initial_state() const override;
};

}  // namespace ramr::app
