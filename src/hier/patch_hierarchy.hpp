// The patch hierarchy: levels G_0 .. G_{L-1} (paper §II, Fig. 1), plus
// the parallel context (my rank / world size) and the variable database.
#pragma once

#include <memory>
#include <vector>

#include "hier/patch_level.hpp"
#include "hier/variable_database.hpp"
#include "mesh/grid_geometry.hpp"

namespace ramr::hier {

/// Mutable AMR hierarchy. Levels are replaced wholesale by regridding.
class PatchHierarchy {
 public:
  /// `ratio` is the (uniform) refinement ratio r between adjacent levels;
  /// `max_levels` bounds the depth (3 in the paper's experiments).
  PatchHierarchy(mesh::GridGeometry geometry, int max_levels,
                 mesh::IntVector ratio, int my_rank = 0, int world_size = 1)
      : geometry_(std::move(geometry)),
        max_levels_(max_levels),
        ratio_(ratio),
        my_rank_(my_rank),
        world_size_(world_size) {
    RAMR_REQUIRE(max_levels >= 1, "need at least one level");
    levels_.reserve(static_cast<std::size_t>(max_levels));
  }

  const mesh::GridGeometry& geometry() const { return geometry_; }
  int max_levels() const { return max_levels_; }
  mesh::IntVector ratio() const { return ratio_; }
  int my_rank() const { return my_rank_; }
  int world_size() const { return world_size_; }

  int num_levels() const { return static_cast<int>(levels_.size()); }
  bool has_level(int l) const { return l >= 0 && l < num_levels(); }
  int finest_level_number() const { return num_levels() - 1; }

  PatchLevel& level(int l) { return *levels_[index(l)]; }
  const PatchLevel& level(int l) const { return *levels_[index(l)]; }
  std::shared_ptr<PatchLevel> level_ptr(int l) const { return levels_[index(l)]; }

  /// Cumulative index-space ratio of level l to level 0.
  mesh::IntVector ratio_to_zero(int l) const {
    mesh::IntVector r(1, 1);
    for (int k = 1; k <= l; ++k) {
      r = r * ratio_;
    }
    return r;
  }

  /// Appends or replaces level l (which must be <= num_levels()).
  void set_level(int l, std::shared_ptr<PatchLevel> level) {
    RAMR_REQUIRE(l >= 0 && l <= num_levels() && l < max_levels_,
                 "bad level number " << l);
    if (l == num_levels()) {
      levels_.push_back(std::move(level));
    } else {
      levels_[static_cast<std::size_t>(l)] = std::move(level);
    }
  }

  /// Drops level l and everything finer.
  void remove_levels_from(int l) {
    RAMR_REQUIRE(l >= 1, "cannot remove the base level");
    if (l < num_levels()) {
      levels_.resize(static_cast<std::size_t>(l));
    }
  }

  VariableDatabase& variables() { return variables_; }
  const VariableDatabase& variables() const { return variables_; }

  /// Total cells across all levels (the paper's "effective" workload is
  /// per-level cells since all levels advance every step).
  std::int64_t total_cells() const {
    std::int64_t n = 0;
    for (const auto& l : levels_) {
      n += l->total_cells();
    }
    return n;
  }

 private:
  std::size_t index(int l) const {
    RAMR_REQUIRE(has_level(l), "no level " << l);
    return static_cast<std::size_t>(l);
  }

  mesh::GridGeometry geometry_;
  int max_levels_;
  mesh::IntVector ratio_;
  int my_rank_;
  int world_size_;
  std::vector<std::shared_ptr<PatchLevel>> levels_;
  VariableDatabase variables_;
};

}  // namespace ramr::hier
