// A PatchLevel groups all patches of one refinement level G_l.
//
// The *metadata* (every patch's box and owner rank) is replicated on all
// ranks, SAMRAI-style, so communication schedules and regridding are
// computed identically everywhere with no extra negotiation; patch
// *data* is allocated only on the owner.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <vector>

#include "hier/patch.hpp"
#include "mesh/box_list.hpp"
#include "mesh/grid_geometry.hpp"

namespace ramr::vgpu {
class Topology;
}  // namespace ramr::vgpu

namespace ramr::hier {

/// Globally replicated descriptor of one patch.
struct GlobalPatch {
  mesh::Box box;
  int owner_rank = 0;
  int global_id = 0;
  /// Rank-local device ordinal the owner allocates on (vgpu::Topology).
  /// Meaningful only on the owner rank; remote ranks never consult it.
  int device = 0;
};

/// One level of the AMR hierarchy.
class PatchLevel {
 public:
  /// `ratio_to_coarser` is r_l (1,1 for the base level); `ratio_to_zero`
  /// the cumulative product defining this level's index space.
  PatchLevel(int level_number, mesh::IntVector ratio_to_coarser,
             mesh::IntVector ratio_to_zero, std::vector<GlobalPatch> patches,
             int my_rank, const mesh::GridGeometry& geometry);

  int number() const { return number_; }
  mesh::IntVector ratio_to_coarser() const { return ratio_to_coarser_; }
  mesh::IntVector ratio_to_level_zero() const { return ratio_to_zero_; }

  const std::vector<GlobalPatch>& global_patches() const { return global_; }
  std::size_t patch_count() const { return global_.size(); }

  /// Union of all patch boxes (disjoint by construction).
  const mesh::BoxList& boxes() const { return boxes_; }

  /// This level's index-space image of the physical domain.
  const mesh::Box& domain_box() const { return domain_box_; }

  /// Mesh spacing h_l.
  std::array<double, 2> dx() const { return dx_; }

  /// Total cells on the level (all ranks).
  std::int64_t total_cells() const { return boxes_.size(); }

  /// Cells owned by this rank.
  std::int64_t local_cells() const;

  const std::vector<std::shared_ptr<Patch>>& local_patches() const {
    return local_;
  }

  /// The local Patch with the given global id (null when remote).
  std::shared_ptr<Patch> local_patch(int global_id) const;

  /// Allocates data for every local patch. With a topology, each patch's
  /// data goes to its assigned device (GlobalPatch::device); without one,
  /// every factory uses its default device.
  void allocate_data(const VariableDatabase& db,
                     vgpu::Topology* topology = nullptr);

  /// Sets the logical simulation time on all local data.
  void set_time(double time, const VariableDatabase& db);

 private:
  int number_;
  mesh::IntVector ratio_to_coarser_;
  mesh::IntVector ratio_to_zero_;
  std::vector<GlobalPatch> global_;
  mesh::BoxList boxes_;
  mesh::Box domain_box_;
  std::array<double, 2> dx_;
  std::vector<std::shared_ptr<Patch>> local_;
  std::map<int, std::shared_ptr<Patch>> local_by_id_;
};

}  // namespace ramr::hier
