// Level-wide patch-data gathering for batched (fused per-level) kernel
// launches: the per-stage driver collects every local patch's box and
// device views ONCE, then issues a single fused launch over the whole
// level instead of one launch per patch — plus the interior/rind box
// carving the wide-overlap stage splits are built on (mesh::rind_pieces
// applied to a patch's cell box).
#pragma once

#include <vector>

#include "hier/patch_level.hpp"
#include "util/array_view.hpp"

namespace ramr::hier {

/// Interior core of a patch's cell box at rind depth `d`: the cells at
/// least d away from every patch face — the index region whose stencil
/// reads (up to the sub-stage's declared reach) provably touch no ghost
/// and no exchange-rewritten seam line. Empty when the patch is thinner
/// than 2d+1.
inline mesh::Box interior_box(const mesh::Box& cells, int depth) {
  return cells.shrink(depth);
}

/// The complementary boundary shell: up to four disjoint boxes which,
/// together with interior_box(cells, depth), cover every cell of the
/// patch exactly once — for ANY depth, including depths that leave no
/// interior (the whole patch is then rind).
inline std::vector<mesh::Box> rind_boxes(const mesh::Box& cells, int depth) {
  std::vector<mesh::Box> out;
  for (const mesh::Box& piece :
       mesh::rind_pieces(cells, cells.shrink(depth)).piece) {
    if (!piece.empty()) {
      out.push_back(piece);
    }
  }
  return out;
}

/// Cell boxes of every local patch, in local-patch order (the segment
/// order of the fused launches built from them).
inline std::vector<mesh::Box> local_boxes(const PatchLevel& level) {
  std::vector<mesh::Box> boxes;
  boxes.reserve(level.local_patches().size());
  for (const auto& patch : level.local_patches()) {
    boxes.push_back(patch->box());
  }
  return boxes;
}

/// Device views of (variable `id`, component `comp`) from every local
/// patch, in local-patch order. DataT is the concrete PatchData type
/// (e.g. pdat::cuda::CudaData).
template <typename DataT>
std::vector<util::View> gather_views(const PatchLevel& level, int id,
                                     int comp = 0) {
  std::vector<util::View> views;
  views.reserve(level.local_patches().size());
  for (const auto& patch : level.local_patches()) {
    views.push_back(patch->typed_data<DataT>(id).device_view(comp));
  }
  return views;
}

}  // namespace ramr::hier
