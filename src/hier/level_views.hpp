// Level-wide patch-data gathering for batched (fused per-level) kernel
// launches: the per-stage driver collects every local patch's box and
// device views ONCE, then issues a single fused launch over the whole
// level instead of one launch per patch.
#pragma once

#include <vector>

#include "hier/patch_level.hpp"
#include "util/array_view.hpp"

namespace ramr::hier {

/// Cell boxes of every local patch, in local-patch order (the segment
/// order of the fused launches built from them).
inline std::vector<mesh::Box> local_boxes(const PatchLevel& level) {
  std::vector<mesh::Box> boxes;
  boxes.reserve(level.local_patches().size());
  for (const auto& patch : level.local_patches()) {
    boxes.push_back(patch->box());
  }
  return boxes;
}

/// Device views of (variable `id`, component `comp`) from every local
/// patch, in local-patch order. DataT is the concrete PatchData type
/// (e.g. pdat::cuda::CudaData).
template <typename DataT>
std::vector<util::View> gather_views(const PatchLevel& level, int id,
                                     int comp = 0) {
  std::vector<util::View> views;
  views.reserve(level.local_patches().size());
  for (const auto& patch : level.local_patches()) {
    views.push_back(patch->typed_data<DataT>(id).device_view(comp));
  }
  return views;
}

}  // namespace ramr::hier
