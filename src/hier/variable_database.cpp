#include "hier/variable_database.hpp"

#include "util/error.hpp"

namespace ramr::hier {

int VariableDatabase::register_variable(
    Variable variable, std::shared_ptr<pdat::PatchDataFactory> factory) {
  RAMR_REQUIRE(factory != nullptr, "null factory for " << variable.name);
  RAMR_REQUIRE(by_name_.find(variable.name) == by_name_.end(),
               "variable registered twice: " << variable.name);
  RAMR_REQUIRE(factory->centering() == variable.centering &&
                   factory->depth() == variable.depth &&
                   factory->ghosts() == variable.ghosts,
               "factory does not match variable " << variable.name);
  const int id = static_cast<int>(records_.size());
  by_name_.emplace(variable.name, id);
  records_.push_back(Record{std::move(variable), std::move(factory)});
  return id;
}

int VariableDatabase::id(const std::string& name) const {
  const auto it = by_name_.find(name);
  RAMR_REQUIRE(it != by_name_.end(), "unknown variable: " << name);
  return it->second;
}

bool VariableDatabase::has(const std::string& name) const {
  return by_name_.find(name) != by_name_.end();
}

const Variable& VariableDatabase::variable(int id) const {
  RAMR_REQUIRE(id >= 0 && id < count(), "bad variable id " << id);
  return records_[static_cast<std::size_t>(id)].variable;
}

const pdat::PatchDataFactory& VariableDatabase::factory(int id) const {
  RAMR_REQUIRE(id >= 0 && id < count(), "bad variable id " << id);
  return *records_[static_cast<std::size_t>(id)].factory;
}

}  // namespace ramr::hier
