// Variable registry: maps simulation quantities (density, energy,
// velocity, fluxes, ...) to integer data ids and the PatchDataFactory
// that allocates their storage on each patch.
//
// One VariableDatabase exists per rank (ranks are threads here, so no
// singletons); the factories it holds are bound to that rank's device,
// which is how a whole application switches between the CPU and the
// GPU-resident backend (paper Fig. 6).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdat/patch_data.hpp"

namespace ramr::hier {

/// A named simulation quantity.
struct Variable {
  std::string name;
  mesh::Centering centering = mesh::Centering::kCell;
  int depth = 1;
  mesh::IntVector ghosts;
};

/// Registry of variables and their storage factories.
class VariableDatabase {
 public:
  /// Registers a variable; returns its data id (dense, starting at 0).
  int register_variable(Variable variable,
                        std::shared_ptr<pdat::PatchDataFactory> factory);

  int count() const { return static_cast<int>(records_.size()); }

  /// Id of a registered name; throws if unknown.
  int id(const std::string& name) const;
  bool has(const std::string& name) const;

  const Variable& variable(int id) const;
  const pdat::PatchDataFactory& factory(int id) const;

 private:
  struct Record {
    Variable variable;
    std::shared_ptr<pdat::PatchDataFactory> factory;
  };
  std::vector<Record> records_;
  std::unordered_map<std::string, int> by_name_;
};

}  // namespace ramr::hier
