#include "hier/patch_level.hpp"

#include "util/error.hpp"
#include "vgpu/topology.hpp"

namespace ramr::hier {

PatchLevel::PatchLevel(int level_number, mesh::IntVector ratio_to_coarser,
                       mesh::IntVector ratio_to_zero,
                       std::vector<GlobalPatch> patches, int my_rank,
                       const mesh::GridGeometry& geometry)
    : number_(level_number),
      ratio_to_coarser_(ratio_to_coarser),
      ratio_to_zero_(ratio_to_zero),
      global_(std::move(patches)),
      domain_box_(geometry.domain_box_at(ratio_to_zero)),
      dx_(geometry.dx_at(ratio_to_zero)) {
  RAMR_REQUIRE(ratio_to_coarser.all_gt(mesh::IntVector::zero()) &&
                   ratio_to_zero.all_gt(mesh::IntVector::zero()),
               "refinement ratios must be positive");
  for (const GlobalPatch& gp : global_) {
    RAMR_REQUIRE(!gp.box.empty(), "empty patch box on level " << number_);
    RAMR_REQUIRE(domain_box_.contains(gp.box),
                 "patch " << gp.box << " outside level domain " << domain_box_);
    boxes_.push_back(gp.box);
    if (gp.owner_rank == my_rank) {
      auto patch = std::make_shared<Patch>(gp.box, number_, gp.global_id,
                                           gp.owner_rank, gp.device);
      local_.push_back(patch);
      RAMR_REQUIRE(local_by_id_.emplace(gp.global_id, patch).second,
                   "duplicate global patch id " << gp.global_id);
    }
  }
}

std::int64_t PatchLevel::local_cells() const {
  std::int64_t total = 0;
  for (const auto& p : local_) {
    total += p->box().size();
  }
  return total;
}

std::shared_ptr<Patch> PatchLevel::local_patch(int global_id) const {
  const auto it = local_by_id_.find(global_id);
  return it == local_by_id_.end() ? nullptr : it->second;
}

void PatchLevel::allocate_data(const VariableDatabase& db,
                               vgpu::Topology* topology) {
  for (const auto& p : local_) {
    vgpu::Device* dev = nullptr;
    if (topology != nullptr) {
      dev = &topology->device(p->device_ordinal());
    }
    p->allocate(db, dev);
  }
}

void PatchLevel::set_time(double time, const VariableDatabase& db) {
  for (const auto& p : local_) {
    for (int id = 0; id < db.count(); ++id) {
      p->data(id).set_time(time);
    }
  }
}

}  // namespace ramr::hier
