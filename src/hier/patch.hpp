// A Patch is the container for all data living in a particular mesh
// region (paper §IV-B): an index box plus one PatchData object per
// registered variable. Patches are the basic unit of work: once ghost
// values are supplied, a patch advances independently.
#pragma once

#include <memory>
#include <vector>

#include "hier/variable_database.hpp"
#include "mesh/box.hpp"
#include "util/error.hpp"

namespace ramr::hier {

/// One rectangular mesh region and its data.
class Patch {
 public:
  Patch(const mesh::Box& box, int level_number, int global_id, int owner_rank,
        int device_ordinal = 0)
      : box_(box),
        level_number_(level_number),
        global_id_(global_id),
        owner_rank_(owner_rank),
        device_ordinal_(device_ordinal) {}

  const mesh::Box& box() const { return box_; }
  int level_number() const { return level_number_; }
  int global_id() const { return global_id_; }
  int owner_rank() const { return owner_rank_; }

  /// Ordinal of the rank-local device this patch's data lives on
  /// (vgpu::Topology; 0 on single-device ranks).
  int device_ordinal() const { return device_ordinal_; }

  /// Allocates storage for every variable in the database; `device`
  /// overrides each factory's default placement (multi-device ranks).
  void allocate(const VariableDatabase& db, vgpu::Device* device = nullptr) {
    data_.clear();
    data_.reserve(static_cast<std::size_t>(db.count()));
    for (int id = 0; id < db.count(); ++id) {
      data_.push_back(db.factory(id).allocate_on(box_, device));
    }
  }

  bool allocated() const { return !data_.empty(); }

  /// Number of PatchData slots (== VariableDatabase::count() used to
  /// allocate).
  int data_count() const { return static_cast<int>(data_.size()); }

  pdat::PatchData& data(int id) {
    RAMR_DEBUG_ASSERT(id >= 0 && id < static_cast<int>(data_.size()));
    return *data_[static_cast<std::size_t>(id)];
  }
  const pdat::PatchData& data(int id) const {
    RAMR_DEBUG_ASSERT(id >= 0 && id < static_cast<int>(data_.size()));
    return *data_[static_cast<std::size_t>(id)];
  }

  /// Typed accessor, e.g. patch.typed_data<pdat::cuda::CudaCellData>(id).
  template <typename T>
  T& typed_data(int id) {
    T* p = dynamic_cast<T*>(&data(id));
    RAMR_REQUIRE(p != nullptr, "patch data " << id << " has wrong type");
    return *p;
  }
  template <typename T>
  const T& typed_data(int id) const {
    const T* p = dynamic_cast<const T*>(&data(id));
    RAMR_REQUIRE(p != nullptr, "patch data " << id << " has wrong type");
    return *p;
  }

 private:
  mesh::Box box_;
  int level_number_;
  int global_id_;
  int owner_rank_;
  int device_ordinal_;
  std::vector<std::unique_ptr<pdat::PatchData>> data_;
};

}  // namespace ramr::hier
