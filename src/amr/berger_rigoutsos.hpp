// Berger-Rigoutsos clustering: groups flagged cells into rectangular
// patches (the "clustering" step of the regridding procedure, paper §II).
//
// The classic signature algorithm: shrink each candidate box to the
// bounding box of its tags; accept when the fill efficiency is high
// enough; otherwise split at a hole in a signature, at the strongest
// inflection of the signature Laplacian, or at the midpoint, and recurse.
#pragma once

#include <vector>

#include "amr/tag_buffer.hpp"
#include "mesh/box_list.hpp"

namespace ramr::amr {

/// Tuning knobs for the clustering.
struct ClusterParams {
  double efficiency = 0.75;  ///< minimum tagged fraction to accept a box
  int min_size = 4;          ///< minimum box side length (cells)
  std::int64_t max_box_cells = 1 << 30;  ///< split boxes larger than this
};

/// Clusters the tags within `within` into boxes covering every tag.
/// Returned boxes are disjoint, tag-tight and respect params.min_size
/// where possible (boxes clipped by `within` may be smaller).
std::vector<mesh::Box> berger_rigoutsos(const TagBitmap& tags,
                                        const mesh::Box& within,
                                        const ClusterParams& params);

}  // namespace ramr::amr
