// Load balancing: assigns clustered boxes to ranks.
//
// Patches are the unit of work (paper §II: "work can be easily shared
// between multiple processes"). Boxes larger than max_patch_cells are
// chopped first; assignment either follows a Morton (Z-order) curve with
// prefix-sum partitioning (locality preserving, the default) or a greedy
// largest-first heap (best balance).
#pragma once

#include <cstdint>
#include <vector>

#include "hier/patch_level.hpp"
#include "mesh/box.hpp"

namespace ramr::amr {

enum class BalanceMethod {
  kMorton,
  kGreedy,
  /// Morton rank partitioning plus measured-cost device assignment:
  /// patch->device placement uses per-device seconds-per-cell rates
  /// observed between regrids (Timeline gpu-lane busy time) instead of
  /// assuming uniform devices.
  kMeasured,
};

struct BalanceParams {
  std::int64_t max_patch_cells = 64 * 64;
  int min_size = 4;  ///< do not chop below this side length
  BalanceMethod method = BalanceMethod::kMorton;
  int devices_per_rank = 1;  ///< vgpu::Topology device count
};

/// What one device actually did between two regrids: busy seconds on its
/// Timeline compute lane and the cells it was responsible for. The ratio
/// is the measured cost rate assign_devices uses under kMeasured.
struct MeasuredDeviceCosts {
  double busy_seconds = 0.0;
  std::int64_t cells = 0;
};

/// Splits oversized boxes into roughly equal halves until every piece is
/// at most max_patch_cells (or cannot be split further).
std::vector<mesh::Box> chop_boxes(const std::vector<mesh::Box>& boxes,
                                  const BalanceParams& params);

/// Morton code of a box centre (for locality ordering).
std::uint64_t morton_code(const mesh::Box& box);

/// Assigns boxes to `world_size` ranks; returns GlobalPatch descriptors
/// with dense global ids (stable across ranks: the function is
/// deterministic in its inputs).
std::vector<hier::GlobalPatch> balance_boxes(const std::vector<mesh::Box>& boxes,
                                             int world_size,
                                             const BalanceParams& params);

/// Max-over-ranks load divided by mean load (1.0 is perfect).
double load_imbalance(const std::vector<hier::GlobalPatch>& patches,
                      int world_size);

/// Assigns this rank's patches to its devices: deterministic greedy in
/// global-id order, each patch to the device whose predicted completion
/// (accumulated load + cells * rate) is smallest. Rates are uniform
/// unless `measured` supplies valid per-ordinal costs (kMeasured), in
/// which case slower devices receive proportionally fewer cells. Remote
/// patches keep device 0 — their placement is never consulted here.
void assign_devices(std::vector<hier::GlobalPatch>& patches, int my_rank,
                    const BalanceParams& params,
                    const std::vector<MeasuredDeviceCosts>* measured = nullptr);

}  // namespace ramr::amr
