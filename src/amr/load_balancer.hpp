// Load balancing: assigns clustered boxes to ranks.
//
// Patches are the unit of work (paper §II: "work can be easily shared
// between multiple processes"). Boxes larger than max_patch_cells are
// chopped first; assignment either follows a Morton (Z-order) curve with
// prefix-sum partitioning (locality preserving, the default) or a greedy
// largest-first heap (best balance).
#pragma once

#include <cstdint>
#include <vector>

#include "hier/patch_level.hpp"
#include "mesh/box.hpp"

namespace ramr::amr {

enum class BalanceMethod { kMorton, kGreedy };

struct BalanceParams {
  std::int64_t max_patch_cells = 64 * 64;
  int min_size = 4;  ///< do not chop below this side length
  BalanceMethod method = BalanceMethod::kMorton;
};

/// Splits oversized boxes into roughly equal halves until every piece is
/// at most max_patch_cells (or cannot be split further).
std::vector<mesh::Box> chop_boxes(const std::vector<mesh::Box>& boxes,
                                  const BalanceParams& params);

/// Morton code of a box centre (for locality ordering).
std::uint64_t morton_code(const mesh::Box& box);

/// Assigns boxes to `world_size` ranks; returns GlobalPatch descriptors
/// with dense global ids (stable across ranks: the function is
/// deterministic in its inputs).
std::vector<hier::GlobalPatch> balance_boxes(const std::vector<mesh::Box>& boxes,
                                             int world_size,
                                             const BalanceParams& params);

/// Max-over-ranks load divided by mean load (1.0 is perfect).
double load_imbalance(const std::vector<hier::GlobalPatch>& patches,
                      int world_size);

}  // namespace ramr::amr
