// Refinement tags and their bit-compressed transfer (paper §IV-C).
//
// Tagging runs as a device kernel writing one int per cell; to move the
// result to the host for SAMRAI's clustering, the paper compresses the
// int array to a bit array (32x smaller) on the device and additionally
// keeps a per-patch "any tagged" flag so untouched patches transfer
// nothing at all. This module implements both the device tag array and
// the compressed host-side representation.
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/box.hpp"
#include "util/array_view.hpp"
#include "vgpu/device_buffer.hpp"

namespace ramr::amr {

/// Device-resident int tag array over a cell box.
class DeviceTagData {
 public:
  DeviceTagData(vgpu::Device& device, const mesh::Box& cell_box);

  const mesh::Box& box() const { return box_; }
  vgpu::Device& device() const { return *device_; }

  /// Device view for tagging kernels (1 = refine, 0 = keep).
  util::ArrayView2D<int> device_view();

  /// Clears all tags (device kernel).
  void clear();

  /// Device-side reduction: true when any cell is tagged. The flag is a
  /// single int transfer, so untagged patches cost 4 bytes (paper: "if no
  /// cells in a patch are flagged ... we don't copy data").
  bool any_tagged();

  /// Compresses the int tags to bits on the device and downloads the bit
  /// array (one PCIe transfer of ceil(n/32) words). Returns the packed
  /// words in row-major cell order.
  std::vector<std::uint32_t> download_compressed();

  /// Raw int download (the naive path; kept for the ablation bench).
  std::vector<int> download_raw();

 private:
  vgpu::Device* device_;
  mesh::Box box_;
  vgpu::DeviceBuffer<int> tags_;
  vgpu::Stream stream_;
};

/// Host-side tag bitmap over an arbitrary region (the union of a level's
/// patches), assembled from per-patch compressed tag arrays gathered from
/// all ranks. Feeds Berger-Rigoutsos clustering.
class TagBitmap {
 public:
  explicit TagBitmap(const mesh::Box& region);

  const mesh::Box& region() const { return region_; }

  bool is_tagged(int i, int j) const {
    if (!region_.contains(mesh::IntVector(i, j))) {
      return false;
    }
    return bits_[bit_index(i, j) >> 5] >> (bit_index(i, j) & 31) & 1u;
  }

  void set(int i, int j);

  /// ORs a patch's compressed tag words (as produced by
  /// DeviceTagData::download_compressed) into this bitmap.
  void merge_compressed(const mesh::Box& patch_box,
                        const std::vector<std::uint32_t>& words);

  /// Grows every tag into a (2b+1)^2 neighbourhood, ensuring features
  /// cannot escape the refined region before the next regrid (the tag
  /// buffer of Berger-Colella AMR).
  void buffer(int b);

  std::int64_t count_tags() const;
  std::int64_t count_tags(const mesh::Box& within) const;

 private:
  std::uint64_t bit_index(int i, int j) const {
    return static_cast<std::uint64_t>(j - region_.lower().j) *
               static_cast<std::uint64_t>(region_.width()) +
           static_cast<std::uint64_t>(i - region_.lower().i);
  }

  mesh::Box region_;
  std::vector<std::uint32_t> bits_;
};

}  // namespace ramr::amr
