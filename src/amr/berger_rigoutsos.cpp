#include "amr/berger_rigoutsos.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ramr::amr {

using mesh::Box;
using mesh::IntVector;

namespace {

/// Column (axis 0) and row (axis 1) tag signatures over a box.
struct Signatures {
  std::vector<std::int64_t> x;  // per column i
  std::vector<std::int64_t> y;  // per row j
  std::int64_t total = 0;
};

Signatures compute_signatures(const TagBitmap& tags, const Box& box) {
  Signatures s;
  s.x.assign(static_cast<std::size_t>(box.width()), 0);
  s.y.assign(static_cast<std::size_t>(box.height()), 0);
  for (int j = box.lower().j; j <= box.upper().j; ++j) {
    for (int i = box.lower().i; i <= box.upper().i; ++i) {
      if (tags.is_tagged(i, j)) {
        ++s.x[static_cast<std::size_t>(i - box.lower().i)];
        ++s.y[static_cast<std::size_t>(j - box.lower().j)];
        ++s.total;
      }
    }
  }
  return s;
}

/// Shrinks `box` to the bounding box of its tags (empty when untagged).
Box tag_bounding_box(const Box& box, const Signatures& s) {
  if (s.total == 0) {
    return {};
  }
  int ilo = box.lower().i;
  while (s.x[static_cast<std::size_t>(ilo - box.lower().i)] == 0) ++ilo;
  int ihi = box.upper().i;
  while (s.x[static_cast<std::size_t>(ihi - box.lower().i)] == 0) --ihi;
  int jlo = box.lower().j;
  while (s.y[static_cast<std::size_t>(jlo - box.lower().j)] == 0) ++jlo;
  int jhi = box.upper().j;
  while (s.y[static_cast<std::size_t>(jhi - box.lower().j)] == 0) --jhi;
  return Box(ilo, jlo, ihi, jhi);
}

/// A split position along one axis, expressed as the last index of the
/// lower part in box-local coordinates; -1 when no acceptable split.
int find_hole(const std::vector<std::int64_t>& sig, int min_size) {
  const int n = static_cast<int>(sig.size());
  for (int k = min_size - 1; k < n - min_size; ++k) {
    if (sig[static_cast<std::size_t>(k)] == 0 ||
        sig[static_cast<std::size_t>(k + 1)] == 0) {
      return k;
    }
  }
  return -1;
}

/// Strongest zero crossing of the discrete Laplacian of the signature.
int find_inflection(const std::vector<std::int64_t>& sig, int min_size) {
  const int n = static_cast<int>(sig.size());
  if (n < 2 * min_size || n < 4) {
    return -1;
  }
  std::vector<std::int64_t> lap(static_cast<std::size_t>(n), 0);
  for (int k = 1; k < n - 1; ++k) {
    lap[static_cast<std::size_t>(k)] =
        sig[static_cast<std::size_t>(k - 1)] - 2 * sig[static_cast<std::size_t>(k)] +
        sig[static_cast<std::size_t>(k + 1)];
  }
  int best = -1;
  std::int64_t best_jump = 0;
  for (int k = std::max(1, min_size - 1); k < std::min(n - 2, n - min_size); ++k) {
    const std::int64_t a = lap[static_cast<std::size_t>(k)];
    const std::int64_t b = lap[static_cast<std::size_t>(k + 1)];
    if ((a <= 0 && b >= 0) || (a >= 0 && b <= 0)) {
      const std::int64_t jump = std::llabs(a - b);
      if (jump > best_jump) {
        best_jump = jump;
        best = k;
      }
    }
  }
  return best;
}

void cluster_recursive(const TagBitmap& tags, const Box& candidate,
                       const ClusterParams& params, std::vector<Box>& out) {
  const Signatures s = compute_signatures(tags, candidate);
  if (s.total == 0) {
    return;
  }
  const Box box = tag_bounding_box(candidate, s);
  const double efficiency =
      static_cast<double>(tags.count_tags(box)) / static_cast<double>(box.size());
  const bool small = box.width() <= 2 * params.min_size &&
                     box.height() <= 2 * params.min_size;
  if ((efficiency >= params.efficiency && box.size() <= params.max_box_cells) ||
      (small && box.size() <= params.max_box_cells)) {
    out.push_back(box);
    return;
  }

  const Signatures sb = compute_signatures(tags, box);
  // Prefer splitting the longer axis; try hole, then inflection, then
  // midpoint. Split position k: lower part is [lo, lo+k].
  const bool x_first = box.width() >= box.height();
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool along_x = (attempt == 0) ? x_first : !x_first;
    const auto& sig = along_x ? sb.x : sb.y;
    const int extent = along_x ? box.width() : box.height();
    if (extent < 2 * params.min_size) {
      continue;
    }
    int k = find_hole(sig, params.min_size);
    if (k < 0) {
      k = find_inflection(sig, params.min_size);
    }
    if (k < 0) {
      k = extent / 2 - 1;
    }
    if (k < params.min_size - 1 || k >= extent - params.min_size) {
      continue;
    }
    Box lower_part;
    Box upper_part;
    if (along_x) {
      const int cut = box.lower().i + k;
      lower_part = Box(box.lower(), IntVector(cut, box.upper().j));
      upper_part = Box(IntVector(cut + 1, box.lower().j), box.upper());
    } else {
      const int cut = box.lower().j + k;
      lower_part = Box(box.lower(), IntVector(box.upper().i, cut));
      upper_part = Box(IntVector(box.lower().i, cut + 1), box.upper());
    }
    cluster_recursive(tags, lower_part, params, out);
    cluster_recursive(tags, upper_part, params, out);
    return;
  }
  // No admissible split: accept as-is.
  out.push_back(box);
}

}  // namespace

std::vector<Box> berger_rigoutsos(const TagBitmap& tags, const Box& within,
                                  const ClusterParams& params) {
  RAMR_REQUIRE(params.efficiency > 0.0 && params.efficiency <= 1.0,
               "efficiency must be in (0, 1]");
  RAMR_REQUIRE(params.min_size >= 1, "min_size must be positive");
  std::vector<Box> out;
  const Box region = tags.region().intersect(within);
  if (!region.empty()) {
    cluster_recursive(tags, region, params, out);
  }
  return out;
}

}  // namespace ramr::amr
