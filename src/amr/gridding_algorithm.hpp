// The regridding procedure of Berger-Colella AMR (paper §II):
//
//   flagging    — the application heuristic marks level-l cells (device
//                 kernel; bit-compressed transfer to the host, §IV-C);
//   clustering  — Berger-Rigoutsos groups flagged cells into boxes;
//   solution
//   transfer    — data is copied from the old hierarchy and interpolated
//                 from the coarser level into the new patches.
//
// Applied recursively from the second-finest to the coarsest level; new
// level l+1 boxes are forced to nest properly inside level l, and tags
// are injected under the already-rebuilt level l+2 so the whole hierarchy
// stays properly nested.
#pragma once

#include <functional>
#include <memory>

#include "amr/berger_rigoutsos.hpp"
#include "amr/load_balancer.hpp"
#include "amr/tag_strategy.hpp"
#include "hier/patch_hierarchy.hpp"
#include "xfer/refine_schedule.hpp"

namespace ramr::vgpu {
class Topology;
}  // namespace ramr::vgpu

namespace ramr::amr {

struct GriddingParams {
  ClusterParams cluster;
  BalanceParams balance;
  int tag_buffer = 2;      ///< cells grown around every tag
  int nesting_buffer = 1;  ///< coarse cells between level l+1 and l edges
};

/// Cumulative refinement activity of one rank's gridding (scenario smoke
/// tests and the service's per-job metrics assert on these: did tagging
/// fire, did regrids actually rebuild levels).
struct GriddingStats {
  int initial_builds = 0;       ///< make_initial_hierarchy calls
  int regrids = 0;              ///< regrid() invocations
  int levels_built = 0;         ///< levels constructed (initial + regrid)
  long long cells_tagged = 0;   ///< raw tags collected before buffering
  /// load_imbalance of every level built, in build order (fig11 and the
  /// run-metrics JSON report these; 1.0 is a perfect rank split).
  std::vector<double> imbalance_history;
};

/// Builds and rebuilds the patch hierarchy.
class GriddingAlgorithm {
 public:
  /// `transfer` lists the state variables (with refine operators) moved
  /// onto new levels during regridding; `bc` fills physical boundaries.
  GriddingAlgorithm(GriddingParams params, TagStrategy& strategy,
                    xfer::RefineAlgorithm transfer,
                    xfer::PhysicalBoundaryStrategy* bc,
                    xfer::ParallelContext& ctx)
      : params_(params),
        strategy_(&strategy),
        transfer_(std::move(transfer)),
        bc_(bc),
        ctx_(&ctx) {}

  /// Creates level 0 (domain chopped and balanced) and applies initial
  /// conditions; then repeatedly tags and creates finer levels until
  /// max_levels is reached or nothing is flagged, initialising each new
  /// level analytically (SAMRAI start-up behaviour).
  void make_initial_hierarchy(hier::PatchHierarchy& hierarchy, double time);

  /// Rebuilds levels 1..max-1 from fresh tags; data moves via solution
  /// transfer (copy from the old level, interpolate from the coarser
  /// level). Level ghosts on the *old* hierarchy must be valid.
  void regrid(hier::PatchHierarchy& hierarchy, double time);

  /// Tags on level l gathered to every rank as a host bitmap (exposed for
  /// tests and the tag-compression bench).
  TagBitmap collect_tags(hier::PatchHierarchy& hierarchy, int level_number,
                         double time);

  /// Charges host-side regridding work (tag merge, buffering, clustering,
  /// balancing — all of which SAMRAI runs on the CPU) to this clock.
  void set_host_clock(vgpu::SimClock* clock) { host_clock_ = clock; }

  /// Routes new levels' data to per-patch devices (multi-device ranks);
  /// null keeps every factory's default device.
  void set_topology(vgpu::Topology* topology) { topology_ = topology; }

  /// Installs the per-device cost rates the next make_level's
  /// assign_devices uses (BalanceMethod::kMeasured feedback loop: the
  /// integrator measures gpu-lane busy time between regrids and feeds it
  /// back here). Empty clears to uniform rates.
  void set_measured_costs(std::vector<MeasuredDeviceCosts> costs) {
    measured_costs_ = std::move(costs);
  }

  /// Refinement activity since construction.
  const GriddingStats& stats() const { return stats_; }

 private:
  /// Candidate boxes for new level l+1, in level-(l+1) index space.
  std::vector<mesh::Box> build_candidate_boxes(hier::PatchHierarchy& hierarchy,
                                               int tag_level, double time);

  std::shared_ptr<hier::PatchLevel> make_level(hier::PatchHierarchy& hierarchy,
                                               int level_number,
                                               const std::vector<mesh::Box>& boxes);

  /// Models the host-CPU cost of sweeping `cells` bitmap entries
  /// `passes` times (the serial fraction the paper's Amdahl analysis in
  /// §V-B attributes the strong-scaling falloff to).
  void charge_host_work(std::int64_t cells, double passes);

  GriddingParams params_;
  TagStrategy* strategy_;
  xfer::RefineAlgorithm transfer_;
  xfer::PhysicalBoundaryStrategy* bc_;
  xfer::ParallelContext* ctx_;
  vgpu::SimClock* host_clock_ = nullptr;
  vgpu::Topology* topology_ = nullptr;
  std::vector<MeasuredDeviceCosts> measured_costs_;
  GriddingStats stats_;
};

}  // namespace ramr::amr
