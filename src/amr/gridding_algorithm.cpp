#include "amr/gridding_algorithm.hpp"

#include <algorithm>
#include <cstring>

#include "pdat/cuda/cuda_data.hpp"
#include "util/error.hpp"
#include "util/logger.hpp"

namespace ramr::amr {

using hier::GlobalPatch;
using hier::PatchHierarchy;
using hier::PatchLevel;
using mesh::Box;
using mesh::BoxList;
using mesh::IntVector;

namespace {

/// The device that a patch's (GPU-resident) data lives on.
vgpu::Device& device_of(hier::Patch& patch) {
  auto* cd = dynamic_cast<pdat::cuda::CudaData*>(&patch.data(0));
  RAMR_REQUIRE(cd != nullptr, "tagging requires device-resident patch data");
  return cd->device();
}

}  // namespace

void GriddingAlgorithm::charge_host_work(std::int64_t cells, double passes) {
  if (host_clock_ != nullptr) {
    // Sustained host rate for bitmap sweeps / signature sums on one core
    // (the clustering in SAMRAI is not GPU-accelerated).
    constexpr double kHostCellsPerSecond = 2.0e9;
    host_clock_->charge(passes * static_cast<double>(cells) /
                        kHostCellsPerSecond);
  }
}

TagBitmap GriddingAlgorithm::collect_tags(PatchHierarchy& hierarchy,
                                          int level_number, double time) {
  PatchLevel& level = hierarchy.level(level_number);
  TagBitmap bitmap(level.domain_box());

  // Local tagging: device kernel per patch, then the paper's compressed
  // transfer — a per-patch "any tagged" flag, and bits instead of ints.
  // All of it is regrid-path device work: attribute the launches to the
  // kRegrid tag so benches can split clustering from the hydro stages.
  pdat::MessageStream local;
  for (const auto& patch : level.local_patches()) {
    vgpu::LaunchTagScope regrid_tag(&device_of(*patch),
                                    vgpu::LaunchTag::kRegrid);
    DeviceTagData tags(device_of(*patch), patch->box());
    strategy_->tag_cells(*patch, level, hierarchy.geometry(), tags, time);
    if (!tags.any_tagged()) {
      continue;  // nothing to transfer for this patch
    }
    const std::vector<std::uint32_t> words = tags.download_compressed();
    local.write<int>(patch->global_id());
    local.write<std::uint64_t>(words.size());
    local.write_bytes(words.data(), words.size() * sizeof(std::uint32_t));
  }

  // Merge, exchanging compressed tags across ranks when distributed.
  const auto merge_stream = [&](pdat::MessageStream& ms) {
    while (!ms.fully_consumed()) {
      const int gid = ms.read<int>();
      const auto nwords = ms.read<std::uint64_t>();
      std::vector<std::uint32_t> words(nwords);
      ms.read_bytes(words.data(), nwords * sizeof(std::uint32_t));
      const GlobalPatch* gp = nullptr;
      for (const GlobalPatch& cand : level.global_patches()) {
        if (cand.global_id == gid) {
          gp = &cand;
          break;
        }
      }
      RAMR_REQUIRE(gp != nullptr, "tag stream references unknown patch " << gid);
      bitmap.merge_compressed(gp->box, words);
    }
  };

  if (ctx_->is_serial()) {
    merge_stream(local);
  } else {
    const auto all = ctx_->comm->allgather(local.data(), local.size());
    for (const auto& bytes : all) {
      pdat::MessageStream ms(bytes);
      merge_stream(ms);
    }
  }
  return bitmap;
}

std::vector<Box> GriddingAlgorithm::build_candidate_boxes(
    PatchHierarchy& hierarchy, int tag_level, double time) {
  PatchLevel& level = hierarchy.level(tag_level);
  TagBitmap tags = collect_tags(hierarchy, tag_level, time);
  stats_.cells_tagged += tags.count_tags();

  // Keep cells under the already-rebuilt level tag_level+2 flagged so the
  // new level tag_level+1 still covers it (proper nesting from above).
  if (hierarchy.has_level(tag_level + 2)) {
    const PatchLevel& upper = hierarchy.level(tag_level + 2);
    const IntVector r2 = upper.ratio_to_coarser() * level.ratio_to_coarser()
                             ;  // to tag_level index space
    for (const Box& b : upper.boxes().boxes()) {
      const Box cb = b.coarsen(IntVector(r2.i, r2.j)).grow(params_.nesting_buffer);
      const Box clipped = cb.intersect(tags.region());
      for (int j = clipped.lower().j; j <= clipped.upper().j; ++j) {
        for (int i = clipped.lower().i; i <= clipped.upper().i; ++i) {
          tags.set(i, j);
        }
      }
    }
  }

  tags.buffer(params_.tag_buffer);
  if (tags.count_tags() == 0) {
    return {};
  }
  // Host cost: tag merge + buffer sweep + count (~2 full-bitmap passes;
  // the buffer only expands around the small tagged fraction).
  charge_host_work(tags.region().size(), 2.0);

  // Cluster on the tag level.
  std::vector<Box> clustered =
      berger_rigoutsos(tags, level.domain_box(), params_.cluster);
  // Host cost: signature computation revisits the tagged bounding boxes
  // during recursion.
  charge_host_work(tags.region().size(), 1.5);

  // Proper nesting inside the tag level: stay nesting_buffer cells away
  // from the tag level's own coarse-fine boundaries (the physical domain
  // boundary is exempt).
  BoxList allowed = level.boxes();
  BoxList complement(level.domain_box().grow(params_.nesting_buffer));
  complement.remove_intersections(allowed);
  BoxList nested_allowed(level.domain_box());
  for (const Box& c : complement.boxes()) {
    nested_allowed.remove_intersections(c.grow(params_.nesting_buffer));
  }

  BoxList candidates;
  for (const Box& b : clustered) {
    BoxList piece(b);
    piece.intersect(nested_allowed);
    piece.coalesce();
    for (const Box& p : piece.boxes()) {
      candidates.push_back(p);
    }
  }

  // Refine to the new level's index space.
  std::vector<Box> fine_boxes;
  fine_boxes.reserve(candidates.count());
  for (const Box& b : candidates.boxes()) {
    fine_boxes.push_back(b.refine(hierarchy.ratio()));
  }
  return fine_boxes;
}

std::shared_ptr<PatchLevel> GriddingAlgorithm::make_level(
    PatchHierarchy& hierarchy, int level_number,
    const std::vector<Box>& boxes) {
  std::vector<GlobalPatch> balanced =
      balance_boxes(boxes, hierarchy.world_size(), params_.balance);
  assign_devices(balanced, hierarchy.my_rank(), params_.balance,
                 measured_costs_.empty() ? nullptr : &measured_costs_);
  stats_.imbalance_history.push_back(
      load_imbalance(balanced, hierarchy.world_size()));
  const IntVector ratio_to_coarser =
      level_number == 0 ? IntVector(1, 1) : hierarchy.ratio();
  auto level = std::make_shared<PatchLevel>(
      level_number, ratio_to_coarser, hierarchy.ratio_to_zero(level_number),
      balanced, hierarchy.my_rank(), hierarchy.geometry());
  level->allocate_data(hierarchy.variables(), topology_);
  ++stats_.levels_built;
  return level;
}

void GriddingAlgorithm::make_initial_hierarchy(PatchHierarchy& hierarchy,
                                               double time) {
  RAMR_REQUIRE(hierarchy.num_levels() == 0, "hierarchy already initialised");
  ++stats_.initial_builds;

  // Level 0: the base grid chopped into patches and balanced.
  const std::vector<Box> base = {hierarchy.geometry().domain_box()};
  auto level0 = make_level(hierarchy, 0, base);
  hierarchy.set_level(0, level0);
  for (const auto& patch : level0->local_patches()) {
    strategy_->initialize_level_data(*patch, *level0, hierarchy.geometry(),
                                     time);
  }

  // Finer levels: tag, cluster, create, initialise analytically.
  for (int l = 0; l < hierarchy.max_levels() - 1; ++l) {
    const std::vector<Box> boxes = build_candidate_boxes(hierarchy, l, time);
    if (boxes.empty()) {
      break;
    }
    auto fine = make_level(hierarchy, l + 1, boxes);
    hierarchy.set_level(l + 1, fine);
    for (const auto& patch : fine->local_patches()) {
      strategy_->initialize_level_data(*patch, *fine, hierarchy.geometry(),
                                       time);
    }
    RAMR_LOG_DEBUG("initial hierarchy: level " << (l + 1) << " with "
                   << fine->patch_count() << " patches, "
                   << fine->total_cells() << " cells");
  }
}

void GriddingAlgorithm::regrid(PatchHierarchy& hierarchy, double time) {
  RAMR_REQUIRE(hierarchy.num_levels() >= 1, "cannot regrid an empty hierarchy");
  ++stats_.regrids;

  // Recursively from the second-finest regriddable level to the coarsest
  // (paper §II). Note new finer levels are in place when coarser ones are
  // rebuilt, so tag injection keeps nesting.
  const int top_tag_level =
      std::min(hierarchy.num_levels() - 1, hierarchy.max_levels() - 2);
  for (int l = top_tag_level; l >= 0; --l) {
    const std::vector<Box> boxes = build_candidate_boxes(hierarchy, l, time);
    if (boxes.empty()) {
      // No tags: drop the finer level (nothing above it can exist, since
      // injected tags would have been present otherwise).
      if (hierarchy.has_level(l + 1)) {
        hierarchy.remove_levels_from(l + 1);
      }
      continue;
    }
    auto new_level = make_level(hierarchy, l + 1, boxes);

    // Freshly allocated patch data is raw device memory. Only the state
    // variables listed in `transfer_` are moved by the solution-transfer
    // schedule below; every other field (work arrays, EOS outputs) must
    // still hold *defined* values, because the next step's kernels read
    // some of them (e.g. advec_mom's node masses) before rewriting them.
    // Analytic initialisation first gives them the same defined start as
    // make_initial_hierarchy; the schedule then overwrites the state.
    // Attribute the regrid-path launches (analytic init, the solution
    // transfer's interpolation + scratch clamp fills) to kRegrid; the
    // engine's own pack/unpack/local-copy scopes override within.
    vgpu::LaunchTagScope regrid_tag(ctx_->device, vgpu::LaunchTag::kRegrid);
    for (const auto& patch : new_level->local_patches()) {
      strategy_->initialize_level_data(*patch, *new_level,
                                       hierarchy.geometry(), time);
    }

    // Solution transfer: copy from the old level where it overlapped,
    // interpolate from level l elsewhere, then physical boundaries.
    std::shared_ptr<PatchLevel> old_level =
        hierarchy.has_level(l + 1) ? hierarchy.level_ptr(l + 1) : nullptr;
    auto schedule = transfer_.create_schedule(
        new_level, old_level, hierarchy.level_ptr(l), hierarchy.variables(),
        *ctx_, bc_, xfer::FillMode::kInteriorAndGhosts);
    schedule->fill();
    new_level->set_time(time, hierarchy.variables());
    hierarchy.set_level(l + 1, new_level);
    RAMR_LOG_DEBUG("regrid: level " << (l + 1) << " now has "
                   << new_level->patch_count() << " patches, "
                   << new_level->total_cells() << " cells");
  }
}

}  // namespace ramr::amr
