#include "amr/load_balancer.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/error.hpp"

namespace ramr::amr {

using hier::GlobalPatch;
using mesh::Box;
using mesh::IntVector;

std::vector<Box> chop_boxes(const std::vector<Box>& boxes,
                            const BalanceParams& params) {
  std::vector<Box> out;
  std::vector<Box> work(boxes.begin(), boxes.end());
  while (!work.empty()) {
    const Box b = work.back();
    work.pop_back();
    if (b.empty()) {
      continue;
    }
    const bool can_split_x = b.width() >= 2 * params.min_size;
    const bool can_split_y = b.height() >= 2 * params.min_size;
    if (b.size() <= params.max_patch_cells || (!can_split_x && !can_split_y)) {
      out.push_back(b);
      continue;
    }
    // Split the longer splittable axis at its midpoint.
    const bool along_x = can_split_x && (!can_split_y || b.width() >= b.height());
    if (along_x) {
      const int cut = b.lower().i + b.width() / 2 - 1;
      work.emplace_back(b.lower(), IntVector(cut, b.upper().j));
      work.emplace_back(IntVector(cut + 1, b.lower().j), b.upper());
    } else {
      const int cut = b.lower().j + b.height() / 2 - 1;
      work.emplace_back(b.lower(), IntVector(b.upper().i, cut));
      work.emplace_back(IntVector(b.lower().i, cut + 1), b.upper());
    }
  }
  return out;
}

std::uint64_t morton_code(const Box& box) {
  // Interleave the bits of the (non-negative, shifted) centre coordinates.
  const std::uint32_t cx =
      static_cast<std::uint32_t>(box.lower().i + box.width() / 2 + (1 << 30));
  const std::uint32_t cy =
      static_cast<std::uint32_t>(box.lower().j + box.height() / 2 + (1 << 30));
  auto spread = [](std::uint32_t v) {
    std::uint64_t x = v;
    x = (x | (x << 16)) & 0x0000FFFF0000FFFFull;
    x = (x | (x << 8)) & 0x00FF00FF00FF00FFull;
    x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0Full;
    x = (x | (x << 2)) & 0x3333333333333333ull;
    x = (x | (x << 1)) & 0x5555555555555555ull;
    return x;
  };
  return spread(cx) | (spread(cy) << 1);
}

std::vector<GlobalPatch> balance_boxes(const std::vector<Box>& boxes,
                                       int world_size,
                                       const BalanceParams& params) {
  RAMR_REQUIRE(world_size >= 1, "world_size must be positive");
  std::vector<Box> chopped = chop_boxes(boxes, params);

  std::vector<GlobalPatch> out;
  out.reserve(chopped.size());

  if (params.method != BalanceMethod::kGreedy) {
    // kMorton and kMeasured share the curve partitioning: measurement
    // only changes the patch->device mapping (assign_devices), not the
    // globally replicated rank decomposition.
    std::sort(chopped.begin(), chopped.end(), [](const Box& a, const Box& b) {
      const std::uint64_t ma = morton_code(a);
      const std::uint64_t mb = morton_code(b);
      if (ma != mb) {
        return ma < mb;
      }
      // Total order for identical codes.
      return std::make_tuple(a.lower().i, a.lower().j, a.upper().i,
                             a.upper().j) <
             std::make_tuple(b.lower().i, b.lower().j, b.upper().i,
                             b.upper().j);
    });
    const std::int64_t total = std::accumulate(
        chopped.begin(), chopped.end(), std::int64_t{0},
        [](std::int64_t acc, const Box& b) { return acc + b.size(); });
    // Prefix-sum partitioning along the curve.
    std::int64_t seen = 0;
    int gid = 0;
    for (const Box& b : chopped) {
      const std::int64_t midpoint = seen + b.size() / 2;
      int rank = static_cast<int>((midpoint * world_size) / std::max<std::int64_t>(total, 1));
      rank = std::min(rank, world_size - 1);
      out.push_back(GlobalPatch{b, rank, gid++});
      seen += b.size();
    }
  } else {
    // Greedy: largest box to the least-loaded rank.
    std::sort(chopped.begin(), chopped.end(), [](const Box& a, const Box& b) {
      if (a.size() != b.size()) {
        return a.size() > b.size();
      }
      return std::make_tuple(a.lower().i, a.lower().j, a.upper().i, a.upper().j) <
             std::make_tuple(b.lower().i, b.lower().j, b.upper().i, b.upper().j);
    });
    using Load = std::pair<std::int64_t, int>;  // (cells, rank)
    std::priority_queue<Load, std::vector<Load>, std::greater<Load>> heap;
    for (int r = 0; r < world_size; ++r) {
      heap.emplace(0, r);
    }
    int gid = 0;
    for (const Box& b : chopped) {
      auto [load, rank] = heap.top();
      heap.pop();
      out.push_back(GlobalPatch{b, rank, gid++});
      heap.emplace(load + b.size(), rank);
    }
    // Restore a deterministic patch order (by global id is already true;
    // sort by box for stable downstream schedules).
    std::sort(out.begin(), out.end(),
              [](const GlobalPatch& a, const GlobalPatch& b) {
                return a.global_id < b.global_id;
              });
  }
  return out;
}

void assign_devices(std::vector<GlobalPatch>& patches, int my_rank,
                    const BalanceParams& params,
                    const std::vector<MeasuredDeviceCosts>* measured) {
  const int devices = std::max(params.devices_per_rank, 1);
  if (devices == 1) {
    for (GlobalPatch& p : patches) {
      p.device = 0;
    }
    return;
  }
  // Seconds-per-cell rate per device. Uniform unless every ordinal has a
  // valid measurement (first regrid, or a device that ran no cells yet).
  std::vector<double> rate(static_cast<std::size_t>(devices), 1.0);
  if (measured != nullptr && static_cast<int>(measured->size()) >= devices) {
    bool valid = true;
    for (int d = 0; d < devices; ++d) {
      const MeasuredDeviceCosts& m = (*measured)[static_cast<std::size_t>(d)];
      if (m.cells <= 0 || m.busy_seconds <= 0.0) {
        valid = false;
        break;
      }
    }
    if (valid) {
      for (int d = 0; d < devices; ++d) {
        const MeasuredDeviceCosts& m = (*measured)[static_cast<std::size_t>(d)];
        rate[static_cast<std::size_t>(d)] =
            m.busy_seconds / static_cast<double>(m.cells);
      }
    }
  }
  // Greedy in global-id order (the vector is already id-sorted): patch to
  // the device finishing earliest under its rate. Strict < keeps ties on
  // the lowest ordinal, so the mapping is deterministic.
  std::vector<double> load(static_cast<std::size_t>(devices), 0.0);
  for (GlobalPatch& p : patches) {
    if (p.owner_rank != my_rank) {
      p.device = 0;
      continue;
    }
    const double cells = static_cast<double>(p.box.size());
    int best = 0;
    double best_t = load[0] + cells * rate[0];
    for (int d = 1; d < devices; ++d) {
      const double t = load[static_cast<std::size_t>(d)] +
                       cells * rate[static_cast<std::size_t>(d)];
      if (t < best_t) {
        best_t = t;
        best = d;
      }
    }
    p.device = best;
    load[static_cast<std::size_t>(best)] = best_t;
  }
}

double load_imbalance(const std::vector<GlobalPatch>& patches, int world_size) {
  if (patches.empty() || world_size <= 0) {
    return 1.0;
  }
  std::vector<std::int64_t> load(static_cast<std::size_t>(world_size), 0);
  std::int64_t total = 0;
  for (const GlobalPatch& p : patches) {
    load[static_cast<std::size_t>(p.owner_rank)] += p.box.size();
    total += p.box.size();
  }
  const double mean = static_cast<double>(total) / world_size;
  const std::int64_t max_load = *std::max_element(load.begin(), load.end());
  return mean > 0.0 ? static_cast<double>(max_load) / mean : 1.0;
}

}  // namespace ramr::amr
