#include "amr/tag_buffer.hpp"

#include "util/error.hpp"

namespace ramr::amr {

using mesh::Box;
using mesh::IntVector;

DeviceTagData::DeviceTagData(vgpu::Device& device, const Box& cell_box)
    : device_(&device),
      box_(cell_box),
      tags_(device, cell_box.size()),
      stream_(device, "tags") {
  RAMR_REQUIRE(!cell_box.empty(), "tag data over empty box");
  clear();
}

util::ArrayView2D<int> DeviceTagData::device_view() {
  return util::ArrayView2D<int>(tags_.device_ptr(), box_.lower().i,
                                box_.lower().j, box_.width(), box_.height());
}

void DeviceTagData::clear() {
  int* p = tags_.device_ptr();
  device_->launch(stream_, box_.size(), vgpu::KernelCost{0.0, 4.0},
                  [p](std::int64_t t) { p[t] = 0; });
}

bool DeviceTagData::any_tagged() {
  // Device-side OR-reduction, then a single scalar readback.
  vgpu::DeviceBuffer<int> flag(*device_, 1);
  int* f = flag.device_ptr();
  device_->launch(stream_, 1, vgpu::KernelCost{0.0, 4.0},
                  [f](std::int64_t) { f[0] = 0; });
  const int* p = tags_.device_ptr();
  device_->charge_reduction(box_.size(), sizeof(int));
  util::ThreadPool::global().parallel_for(
      box_.size(), [&](std::int64_t b, std::int64_t e) {
        int local = 0;
        for (std::int64_t t = b; t < e; ++t) {
          local |= p[t];
        }
        if (local != 0) {
          __atomic_store_n(f, 1, __ATOMIC_RELAXED);
        }
      });
  int result = 0;
  flag.download(&result, 1);
  return result != 0;
}

std::vector<std::uint32_t> DeviceTagData::download_compressed() {
  const std::int64_t n = box_.size();
  const std::int64_t words = (n + 31) / 32;
  vgpu::DeviceBuffer<std::uint32_t> packed(*device_, words);
  const int* p = tags_.device_ptr();
  std::uint32_t* w = packed.device_ptr();
  // One device thread per output word: reads 32 ints, writes one word.
  device_->launch(stream_, words, vgpu::KernelCost{32.0, 32.0 * 4.0 + 4.0},
                  [=](std::int64_t t) {
                    std::uint32_t bits = 0;
                    const std::int64_t base = t * 32;
                    for (int b = 0; b < 32 && base + b < n; ++b) {
                      if (p[base + b] != 0) {
                        bits |= (1u << b);
                      }
                    }
                    w[t] = bits;
                  });
  std::vector<std::uint32_t> host(static_cast<std::size_t>(words));
  packed.download(host.data(), words);
  return host;
}

std::vector<int> DeviceTagData::download_raw() {
  std::vector<int> host(static_cast<std::size_t>(box_.size()));
  tags_.download(host.data(), box_.size());
  return host;
}

// ---------------------------------------------------------------------------

TagBitmap::TagBitmap(const Box& region) : region_(region) {
  RAMR_REQUIRE(!region.empty(), "tag bitmap over empty region");
  bits_.assign(static_cast<std::size_t>((region.size() + 31) / 32), 0u);
}

void TagBitmap::set(int i, int j) {
  RAMR_REQUIRE(region_.contains(IntVector(i, j)),
               "tag (" << i << "," << j << ") outside " << region_);
  bits_[bit_index(i, j) >> 5] |= (1u << (bit_index(i, j) & 31));
}

void TagBitmap::merge_compressed(const Box& patch_box,
                                 const std::vector<std::uint32_t>& words) {
  RAMR_REQUIRE(region_.contains(patch_box),
               "patch " << patch_box << " outside tag region " << region_);
  const std::int64_t n = patch_box.size();
  RAMR_REQUIRE(static_cast<std::int64_t>(words.size()) == (n + 31) / 32,
               "compressed tag size mismatch");
  for (std::int64_t t = 0; t < n; ++t) {
    if ((words[static_cast<std::size_t>(t >> 5)] >> (t & 31)) & 1u) {
      const int i = patch_box.lower().i + static_cast<int>(t % patch_box.width());
      const int j = patch_box.lower().j + static_cast<int>(t / patch_box.width());
      set(i, j);
    }
  }
}

void TagBitmap::buffer(int b) {
  if (b <= 0) {
    return;
  }
  std::vector<std::uint32_t> grown = bits_;
  const auto set_in = [&](int i, int j) {
    if (region_.contains(IntVector(i, j))) {
      grown[bit_index(i, j) >> 5] |= (1u << (bit_index(i, j) & 31));
    }
  };
  for (int j = region_.lower().j; j <= region_.upper().j; ++j) {
    for (int i = region_.lower().i; i <= region_.upper().i; ++i) {
      if (!is_tagged(i, j)) {
        continue;
      }
      for (int dj = -b; dj <= b; ++dj) {
        for (int di = -b; di <= b; ++di) {
          set_in(i + di, j + dj);
        }
      }
    }
  }
  bits_ = std::move(grown);
}

std::int64_t TagBitmap::count_tags() const { return count_tags(region_); }

std::int64_t TagBitmap::count_tags(const Box& within) const {
  const Box r = region_.intersect(within);
  std::int64_t count = 0;
  for (int j = r.lower().j; j <= r.upper().j; ++j) {
    for (int i = r.lower().i; i <= r.upper().i; ++i) {
      count += is_tagged(i, j) ? 1 : 0;
    }
  }
  return count;
}

}  // namespace ramr::amr
