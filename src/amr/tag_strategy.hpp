// Application callbacks for the gridding algorithm: initial data and the
// refinement-flagging heuristic (evaluated as a device kernel in the
// GPU-resident application; paper §IV-C).
#pragma once

#include "amr/tag_buffer.hpp"
#include "hier/patch.hpp"
#include "hier/patch_level.hpp"
#include "mesh/grid_geometry.hpp"

namespace ramr::amr {

/// Strategy supplied by the application (CleverLeaf).
class TagStrategy {
 public:
  virtual ~TagStrategy() = default;

  /// Sets initial conditions on a freshly created patch (used when the
  /// initial hierarchy is built; later regrids transfer data instead).
  virtual void initialize_level_data(hier::Patch& patch,
                                     const hier::PatchLevel& level,
                                     const mesh::GridGeometry& geometry,
                                     double time) = 0;

  /// Flags cells of `patch` that need refinement (writes 0/1 into
  /// `tags`). Runs data-parallel on the device.
  virtual void tag_cells(hier::Patch& patch, const hier::PatchLevel& level,
                         const mesh::GridGeometry& geometry,
                         DeviceTagData& tags, double time) = 0;
};

}  // namespace ramr::amr
