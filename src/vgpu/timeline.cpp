#include "vgpu/timeline.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "vgpu/sim_clock.hpp"

namespace ramr::vgpu {

Timeline::Timeline(SimClock& clock) : clock_(&clock) {
  lanes_.push_back(Lane{"host", 0.0, 0.0});
  active_stack_.push_back(kHostLane);
  RAMR_REQUIRE(clock_->timeline() == nullptr,
               "SimClock already has an attached timeline");
  clock_->set_timeline(this);
}

Timeline::~Timeline() {
  if (clock_->timeline() == this) {
    clock_->set_timeline(nullptr);
  }
}

int Timeline::lane(const std::string& name) {
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (lanes_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  // New lanes are born at the host cursor: they model engines that exist
  // from the start but have been idle, and idle lanes never drag the
  // makespan backwards.
  lanes_.push_back(Lane{name, lanes_[kHostLane].cursor, 0.0});
  return static_cast<int>(lanes_.size() - 1);
}

const std::string& Timeline::lane_name(int lane) const {
  return lanes_[static_cast<std::size_t>(lane)].name;
}

double Timeline::now(int lane) const {
  return lanes_[static_cast<std::size_t>(lane)].cursor;
}

void Timeline::advance(int lane, double t) {
  Lane& l = lanes_[static_cast<std::size_t>(lane)];
  if (t > l.cursor) {
    if (ChargeListener* listener = clock_->listener()) {
      listener->on_lane_wait(lane, l.cursor, t, /*rendezvous=*/false);
    }
    l.cursor = t;
  }
}

void Timeline::rendezvous(double t) {
  const int lane = active_lane();
  Lane& l = lanes_[static_cast<std::size_t>(lane)];
  if (t > l.cursor) {
    if (ChargeListener* listener = clock_->listener()) {
      listener->on_lane_wait(lane, l.cursor, t, /*rendezvous=*/true);
    }
    imbalance_idle_ += t - l.cursor;
    l.cursor = t;
  }
}

double Timeline::makespan() const {
  double m = 0.0;
  for (const Lane& l : lanes_) {
    m = std::max(m, l.cursor);
  }
  return m;
}

double Timeline::busy(int lane) const {
  return lanes_[static_cast<std::size_t>(lane)].busy;
}

void Timeline::reset() {
  for (Lane& l : lanes_) {
    l.cursor = 0.0;
    l.busy = 0.0;
  }
  busy_total_ = 0.0;
  serial_only_ = 0.0;
  imbalance_idle_ = 0.0;
}

void Timeline::on_charge(double seconds) {
  Lane& l = lanes_[static_cast<std::size_t>(active_lane())];
  l.cursor += seconds;
  l.busy += seconds;
  busy_total_ += seconds;
}

void Timeline::push_lane(int lane) {
  RAMR_DEBUG_ASSERT(lane >= 0 && static_cast<std::size_t>(lane) < lanes_.size());
  // Fork: work routed here is issued by the currently active lane, so it
  // cannot start before that lane's present.
  advance(lane, lanes_[static_cast<std::size_t>(active_lane())].cursor);
  active_stack_.push_back(lane);
}

void Timeline::pop_lane() {
  RAMR_REQUIRE(active_stack_.size() > 1, "lane scope underflow");
  active_stack_.pop_back();
}

}  // namespace ramr::vgpu
