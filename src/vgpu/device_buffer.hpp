// RAII buffer in a virtual device's memory space.
#pragma once

#include <cstdint>
#include <utility>

#include "util/error.hpp"
#include "vgpu/device.hpp"

namespace ramr::vgpu {

/// Typed, move-only allocation in device memory. Host code must not
/// dereference device_ptr() directly; use Device::memcpy_{h2d,d2h} (or a
/// kernel) so that every PCIe crossing is charged and logged.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  DeviceBuffer(Device& device, std::int64_t n)
      : device_(&device), n_(n), data_(device.allocate<T>(n)) {}

  ~DeviceBuffer() { release(); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  DeviceBuffer(DeviceBuffer&& other) noexcept { swap(other); }

  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }

  /// Device-space pointer for kernel arguments.
  T* device_ptr() const { return data_; }
  std::int64_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  Device* device() const { return device_; }

  /// Uploads n elements from host memory (charges PCIe).
  void upload(const T* host_src, std::int64_t n, std::int64_t dst_offset = 0) {
    RAMR_REQUIRE(dst_offset + n <= n_, "upload overflows device buffer");
    device_->memcpy_h2d(data_ + dst_offset, host_src,
                        static_cast<std::uint64_t>(n) * sizeof(T));
  }

  /// Downloads n elements to host memory (charges PCIe).
  void download(T* host_dst, std::int64_t n, std::int64_t src_offset = 0) const {
    RAMR_REQUIRE(src_offset + n <= n_, "download overflows device buffer");
    device_->memcpy_d2h(host_dst, data_ + src_offset,
                        static_cast<std::uint64_t>(n) * sizeof(T));
  }

 private:
  void release() noexcept {
    if (data_ != nullptr) {
      device_->deallocate(data_, n_);
      data_ = nullptr;
      n_ = 0;
    }
  }

  void swap(DeviceBuffer& other) noexcept {
    std::swap(device_, other.device_);
    std::swap(n_, other.n_);
    std::swap(data_, other.data_);
  }

  Device* device_ = nullptr;
  std::int64_t n_ = 0;
  T* data_ = nullptr;
};

}  // namespace ramr::vgpu
