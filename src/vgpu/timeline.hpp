// Multi-lane timing model for asynchronous execution.
//
// The SimClock answers "how many modeled seconds of work were charged,
// by component" — a serial account. The Timeline answers "WHEN does each
// piece of work complete if independent engines run concurrently": every
// lane (a compute stream, the communication stream, the NIC) owns a time
// cursor on the shared clock, operations advance the lane they run on,
// and cross-lane ordering is imposed only where the program records it
// (events, message arrivals, collective rendezvous). The completion time
// of overlapped work is therefore the MAX of the dependency chains, not
// the sum of the charges — which is exactly the paper's claim for
// GPU-resident AMR: wire time hidden behind compute costs nothing.
//
// Attachment is opt-in: without a Timeline on the SimClock every charge
// is serial and nothing changes (the synchronous model of PR 3). With
// one attached, every SimClock charge advances the ACTIVE lane (a scope
// stack, like ComponentScope; lane 0 "host" is the default), so code
// that never touches lanes still serializes naturally. Overlap appears
// only where a caller deliberately routes work onto another lane
// (LaneScope, Stream::bind_lane) between a fork and a join.
//
// Accounting:
//   busy(lane)       modeled seconds of work charged on the lane
//   makespan()       max lane cursor = completion time of the rank
//   serial_seconds() what the synchronous model would have charged for
//                    the same run: every charge, PLUS the costs the
//                    async model deliberately does not pay (a receiver
//                    re-paying wire time, see Communicator::recv)
//   overlap_seconds_saved() = serial_seconds() - makespan()
#pragma once

#include <string>
#include <vector>

namespace ramr::vgpu {

class SimClock;

/// Per-rank multi-lane virtual time. Not thread-safe: one rank, one
/// thread, like the SimClock it attaches to.
class Timeline {
 public:
  /// Lane 0 always exists: the host/compute lane every charge lands on
  /// unless a scope routes it elsewhere.
  static constexpr int kHostLane = 0;

  /// Attaches to `clock`: every subsequent clock charge advances the
  /// active lane. Detaches on destruction.
  explicit Timeline(SimClock& clock);
  ~Timeline();

  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;

  /// Returns the lane with this name, creating it at the current host
  /// cursor if it does not exist yet.
  int lane(const std::string& name);
  std::size_t lane_count() const { return lanes_.size(); }
  const std::string& lane_name(int lane) const;

  /// Current cursor of one lane / of the active lane.
  double now(int lane) const;
  double now() const { return now(active_lane()); }
  int active_lane() const { return active_stack_.back(); }

  /// Cross-lane ordering: cursor(lane) = max(cursor(lane), t). Waits add
  /// no busy time — idle is exactly what overlap removes.
  void advance(int lane, double t);

  /// Collective rendezvous on the active lane: like advance(), but the
  /// forward jump is booked as imbalance idle — load-imbalance wait
  /// that exists identically in the synchronous world yet is absent
  /// from its serial account, so overlap_seconds_saved() excludes it
  /// rather than mistaking it for lost overlap.
  void rendezvous(double t);

  /// Books load-imbalance idle directly (the receiver's wait beyond the
  /// wire time when a sender lags — see Communicator::recv).
  void add_imbalance_idle(double seconds) { imbalance_idle_ += seconds; }
  double imbalance_idle() const { return imbalance_idle_; }

  /// Completion time of everything issued so far (max over lanes),
  /// including cross-rank waits (rendezvous idle, lagging senders).
  double makespan() const;

  /// makespan() with the imbalance idle removed: the completion time
  /// comparable to the synchronous model's clock total, which is a pure
  /// busy sum and never contained wait time. Use this when comparing
  /// async and sync step times; by construction
  /// comparable_seconds() == serial_seconds() - overlap_seconds_saved().
  double comparable_seconds() const { return makespan() - imbalance_idle_; }

  /// Work charged on one lane / on all lanes.
  double busy(int lane) const;
  double busy_total() const { return busy_total_; }

  /// What the synchronous single-cursor model charges for the same run.
  double serial_seconds() const { return busy_total_ + serial_only_; }

  /// Records a cost the synchronous model pays that this model does not
  /// (the receiver's serial re-pay of wire time).
  void add_serial_only(double seconds) { serial_only_ += seconds; }

  /// Modeled seconds the asynchronous schedule saves over the serial
  /// one — the headline counter of the async subsystem: the comm/net
  /// lane work hidden off the critical path (plus the receiver re-pays
  /// that no longer exist), minus any time the critical path stalled on
  /// wire that failed to hide. Imbalance idle — collective rendezvous
  /// waits and the part of a message wait caused by a lagging sender —
  /// is excluded from the comparison: it is pure load imbalance, present
  /// identically in the synchronous world but absent from its serial
  /// account.
  double overlap_seconds_saved() const {
    return serial_seconds() + imbalance_idle_ - makespan();
  }

  /// Re-anchors every cursor at zero (benches reset with the clock).
  void reset();

  /// SimClock hook: `seconds` of work just charged; runs on the active
  /// lane starting at its cursor.
  void on_charge(double seconds);

  // Scope management (prefer LaneScope). Pushing forks the lane from the
  // previously active one: ops on the new lane are issued now, so they
  // cannot start earlier than the issuing lane's cursor.
  void push_lane(int lane);
  /// Like push_lane but WITHOUT the fork: the routed work was already
  /// enqueued on `lane` at an earlier point (stream operations recorded
  /// at begin time, gated on event/message arrival — the pre-issued
  /// receive processing of a split-phase exchange), so it continues from
  /// the lane's own cursor instead of the issuing lane's present.
  void push_lane_preissued(int lane) { active_stack_.push_back(lane); }
  void pop_lane();

 private:
  struct Lane {
    std::string name;
    double cursor = 0.0;
    double busy = 0.0;
  };

  SimClock* clock_;
  std::vector<Lane> lanes_;
  std::vector<int> active_stack_;
  double busy_total_ = 0.0;
  double serial_only_ = 0.0;
  double imbalance_idle_ = 0.0;
};

/// RAII active-lane scope: charges within go to `lane`, forked from the
/// previously active lane — or, with `preissued`, continuing from the
/// lane's own cursor (work recorded on the lane earlier and gated on
/// arrival events, not issued now). A null timeline or negative lane
/// makes the scope a no-op, so call sites need no branching.
class LaneScope {
 public:
  LaneScope(Timeline* timeline, int lane, bool preissued = false)
      : timeline_(lane >= 0 ? timeline : nullptr) {
    if (timeline_ != nullptr) {
      if (preissued) {
        timeline_->push_lane_preissued(lane);
      } else {
        timeline_->push_lane(lane);
      }
    }
  }
  ~LaneScope() {
    if (timeline_ != nullptr) {
      timeline_->pop_lane();
    }
  }

  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;

 private:
  Timeline* timeline_;
};

}  // namespace ramr::vgpu
