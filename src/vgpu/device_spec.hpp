// Modeled processor specifications.
//
// The reproduction has no physical GPU, so kernels execute for real on a
// host thread pool while a first-order machine model accumulates the time
// the kernel *would* take on the modeled device:
//
//   t_kernel   = launch_overhead + max(flops / peak_flops, bytes / mem_bw)
//   t_transfer = pcie_latency + bytes / pcie_bw
//
// The presets below correspond to the hardware in Table I of the paper.
// Sustained (not peak) rates are used, since explicit hydrodynamics is
// bandwidth bound and sustains roughly 70% of STREAM on these parts.
#pragma once

#include <cstdint>
#include <string>

namespace ramr::vgpu {

/// First-order performance description of a processor (GPU or CPU node).
struct DeviceSpec {
  std::string name;

  double peak_gflops = 0.0;     ///< sustained double-precision GFLOP/s
  double mem_bw_gbs = 0.0;      ///< sustained memory bandwidth, GB/s
  double launch_overhead_s = 0.0;  ///< per-kernel launch / loop-start cost

  // Host link (PCIe for accelerators, zero-cost for host processors).
  double pcie_bw_gbs = 0.0;   ///< host<->device bandwidth, GB/s
  double pcie_lat_s = 0.0;    ///< host<->device latency per transfer

  /// Occupancy ramp: a kernel with n threads sustains a fraction
  /// n / (n + half_saturation_threads) of peak bandwidth/flops. Models
  /// the throughput orientation of GPUs (paper §V-A: "performance
  /// improvement at larger problem sizes is typical of the
  /// throughput-oriented GPU architecture"). 0 = always saturated.
  double half_saturation_threads = 0.0;

  std::uint64_t mem_bytes = 0;  ///< device memory capacity

  bool is_accelerator = false;  ///< true when data movement crosses PCIe
};

/// NVIDIA Tesla K20x (Kepler GK110): 14 SMs, 732 MHz, 6 GB GDDR5.
/// Peak 1.31 DP TFLOP/s and 250 GB/s; we model sustained 950 GFLOP/s and
/// 180 GB/s (ECC on), PCIe 2.0 x16 (~6 GB/s). Launch overhead is the
/// sustained back-to-back cost of asynchronous stream launches (~3 us on
/// Kepler), not the one-off 8-10 us launch latency.
inline DeviceSpec tesla_k20x() {
  DeviceSpec s;
  s.name = "NVIDIA Tesla K20x";
  s.peak_gflops = 950.0;
  s.mem_bw_gbs = 180.0;
  s.launch_overhead_s = 3.0e-6;
  s.pcie_bw_gbs = 6.0;
  s.pcie_lat_s = 10.0e-6;
  s.mem_bytes = 6ull * 1024 * 1024 * 1024;
  s.is_accelerator = true;
  // 14 SMs x 2048 resident threads need several waves in flight to cover
  // DRAM latency; half-saturation near 12k threads.
  s.half_saturation_threads = 12000.0;
  return s;
}

/// One IPA node: dual-socket Intel Xeon E5-2670 "Sandy Bridge",
/// 2 x 8 cores at 2.6 GHz. Peak DP 332 GFLOP/s, peak DRAM 102 GB/s;
/// sustained 230 GFLOP/s and 68 GB/s. Loop-start cost is tiny.
inline DeviceSpec xeon_e5_2670_node() {
  DeviceSpec s;
  s.name = "2x Intel Xeon E5-2670 (16 cores)";
  s.peak_gflops = 230.0;
  s.mem_bw_gbs = 68.0;
  s.launch_overhead_s = 0.4e-6;
  s.pcie_bw_gbs = 0.0;
  s.pcie_lat_s = 0.0;
  s.mem_bytes = 128ull * 1024 * 1024 * 1024;
  s.is_accelerator = false;
  return s;
}

/// Half an IPA node (one socket, 8 cores): used when the strong-scaling
/// study pairs one MPI rank with each of the two GPUs in a node.
inline DeviceSpec xeon_e5_2670_socket() {
  DeviceSpec s = xeon_e5_2670_node();
  s.name = "Intel Xeon E5-2670 (8 cores)";
  s.peak_gflops /= 2.0;
  s.mem_bw_gbs /= 2.0;
  s.mem_bytes /= 2;
  return s;
}

/// One Titan node CPU: AMD Opteron 6274 "Interlagos", 16 cores, 2.2 GHz.
/// Sustained ~140 GFLOP/s, ~52 GB/s. Hosts the K20x and runs the
/// regridding (clustering / load-balance) portions of SAMRAI.
inline DeviceSpec opteron_6274_node() {
  DeviceSpec s;
  s.name = "AMD Opteron 6274 (16 cores)";
  s.peak_gflops = 140.0;
  s.mem_bw_gbs = 52.0;
  s.launch_overhead_s = 0.4e-6;
  s.pcie_bw_gbs = 0.0;
  s.pcie_lat_s = 0.0;
  s.mem_bytes = 32ull * 1024 * 1024 * 1024;
  s.is_accelerator = false;
  return s;
}

}  // namespace ramr::vgpu
