// Fused (batched) kernel launches: many per-patch index ranges flattened
// into ONE device launch.
//
// The per-patch hot loop launches one kernel per patch per stage, so a
// level with P patches pays P launch overheads and P occupancy ramps,
// each computed from one small patch alone. A SegmentTable flattens the
// per-patch 2-D tiles into a single concatenated index space: the fused
// launch charges ONE launch overhead and computes utilization from the
// TOTAL thread count, so many small patches saturate the device like one
// big grid (the batched-launch approach of GPU AMR frameworks such as
// GAMER and Uintah). The fused body runs the per-patch bodies over
// exactly the same (i, j) sets with the same per-element arithmetic, so
// results are bit-identical to the per-patch launches it replaces.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace ramr::vgpu {

/// One rectangular tile of a fused 2-D launch: columns [ilo, ilo+width)
/// and rows [jlo, jlo+height) in global index space.
struct LaunchSeg2D {
  int ilo = 0;
  int jlo = 0;
  int width = 0;
  int height = 0;

  std::int64_t size() const {
    return width <= 0 || height <= 0
               ? 0
               : static_cast<std::int64_t>(width) * height;
  }
};

/// Prefix-summed table of launch segments. Segment indices are stable:
/// empty segments are kept (they occupy zero threads and are never
/// visited), so callers can index per-segment argument arrays directly
/// with the segment id the fused body receives. A segment may carry an
/// explicit ARGUMENT id instead (add with arg): the fused body receives
/// that id, so several segments can share one argument-array entry — the
/// rind sweep of an interior/boundary stage split launches up to four
/// shell pieces per patch against the patch's single argument bundle.
class SegmentTable {
 public:
  /// Appends one tile; returns its segment index (also its argument id).
  std::size_t add(int ilo, int jlo, int width, int height) {
    return add(ilo, jlo, width, height, segs_.size());
  }

  /// Appends one tile whose fused body receives `arg` instead of the
  /// segment index.
  std::size_t add(int ilo, int jlo, int width, int height, std::size_t arg) {
    segs_.push_back(LaunchSeg2D{ilo, jlo, width, height});
    ends_.push_back(total_threads() + segs_.back().size());
    args_.push_back(arg);
    return segs_.size() - 1;
  }

  std::size_t segment_count() const { return segs_.size(); }
  bool empty() const { return total_threads() == 0; }

  /// Total threads of the fused launch (sum of segment sizes).
  std::int64_t total_threads() const { return ends_.empty() ? 0 : ends_.back(); }

  const LaunchSeg2D& segment(std::size_t s) const { return segs_[s]; }

  /// Argument id handed to the fused body for segment s.
  std::size_t arg(std::size_t s) const { return args_[s]; }

  /// First flattened index of segment s.
  std::int64_t offset(std::size_t s) const { return s == 0 ? 0 : ends_[s - 1]; }

  /// Segment owning flattened index `flat` (binary search over the
  /// prefix sums; zero-size segments are never selected).
  std::size_t find(std::int64_t flat) const {
    RAMR_DEBUG_ASSERT(flat >= 0 && flat < total_threads());
    std::size_t lo = 0;
    std::size_t hi = ends_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (ends_[mid] <= flat) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<LaunchSeg2D> segs_;
  std::vector<std::int64_t> ends_;
  std::vector<std::size_t> args_;
};

}  // namespace ramr::vgpu
