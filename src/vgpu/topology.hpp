// Multi-device rank topology: N modeled devices sharing one rank clock,
// connected all-to-all by NVLink-style peer links.
//
// The paper's single-GPU ranks keep data resident and cross PCIe only
// for halos, tags and sync. A multi-device rank adds one more link
// class: device-to-device peer copies that never touch the host. The
// Topology owns the rank's devices (each with its own memory arena and
// ordinal), gives every device the peer-link parameters, and names the
// Timeline lanes the model charges: one compute lane per device
// ("gpu<i>") and one copy lane per directed link ("peer<i>-<j>"), so
// peer crossings overlap compute exactly like the d2h/h2d copy engines
// of the async subsystem (docs/device_topology.md).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "vgpu/device.hpp"

namespace ramr::vgpu {

/// Latency/bandwidth description of the device-to-device link, the peer
/// analogue of simmpi::NetworkSpec. Uniform all-to-all: every ordered
/// device pair of the rank shares these parameters (an NVLink clique or
/// a PCIe switch, not a ring).
struct PeerLinkSpec {
  std::string name;
  double latency_s = 0.0;  ///< per-copy initiation latency
  double bw_gbs = 0.0;     ///< per-direction bandwidth, GB/s

  /// Modeled seconds one peer copy of `bytes` occupies its link lane.
  double copy_time(std::uint64_t bytes) const {
    return latency_s + static_cast<double>(bytes) / (bw_gbs * 1.0e9);
  }
};

/// NVLink 2.0 brick: 25 GB/s per direction peak, ~23 GB/s sustained,
/// sub-2us initiation through the copy engine.
inline PeerLinkSpec nvlink2() {
  PeerLinkSpec s;
  s.name = "NVLink 2.0";
  s.latency_s = 1.3e-6;
  s.bw_gbs = 23.0;
  return s;
}

/// Peer DMA through a PCIe 3.0 switch: both directions share the x16
/// port, ~10 GB/s sustained and PCIe-class latency.
inline PeerLinkSpec pcie_switch() {
  PeerLinkSpec s;
  s.name = "PCIe 3.0 switch";
  s.latency_s = 2.5e-6;
  s.bw_gbs = 10.0;
  return s;
}

/// Infinitely fast link (ablation baseline: what would a zero-cost
/// interconnect buy). Bandwidth stays finite so copy_time never divides
/// by zero.
inline PeerLinkSpec ideal_peer_link() {
  PeerLinkSpec s;
  s.name = "ideal";
  s.latency_s = 0.0;
  s.bw_gbs = 1.0e9;
  return s;
}

/// JSON-configurable shape of one rank's device complex (the `topology`
/// config block, cfg/config.cpp).
struct TopologySpec {
  int device_count = 1;          ///< devices per rank
  PeerLinkSpec link = nvlink2();  ///< uniform all-to-all peer link
  /// GPU-direct RDMA wire mode: packed message buffers ship NIC-direct,
  /// so per-message host staging (the modeled D2H before send and H2D
  /// after receive) disappears; wire time itself is unchanged.
  bool gpu_direct = false;
};

/// The devices of one rank. All share the rank's SimClock (and thus its
/// Timeline when the async model is attached), so per-device busy time
/// is separable by lane while modeled totals stay one account.
class Topology {
 public:
  /// Builds `spec.device_count` devices of type `device_spec`, charging
  /// `clock`. Each device gets its ordinal and the peer-link parameters.
  Topology(const TopologySpec& spec, const DeviceSpec& device_spec,
           SimClock* clock);

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  int device_count() const { return static_cast<int>(devices_.size()); }

  Device& device(int ordinal) {
    RAMR_REQUIRE(ordinal >= 0 && ordinal < device_count(),
                 "device ordinal " << ordinal << " out of range (topology has "
                                   << device_count() << " devices)");
    return *devices_[static_cast<std::size_t>(ordinal)];
  }

  const TopologySpec& spec() const { return spec_; }

  /// Timeline lane carrying the directed peer link src -> dst (the name
  /// Device::memcpy_peer charges).
  static std::string peer_lane_name(int src, int dst) {
    return "peer" + std::to_string(src) + "-" + std::to_string(dst);
  }

  /// Timeline compute lane of one device's hydro stream.
  static std::string gpu_lane_name(int ordinal) {
    return "gpu" + std::to_string(ordinal);
  }

  /// Timeline lane carrying one device's transfer-plan launches (pack /
  /// unpack / local-copy partitions). Separate from the device's compute
  /// lane so a rank's devices pack and scatter concurrently while the
  /// caller's compute overlaps the whole exchange.
  static std::string xfer_lane_name(int ordinal) {
    return "xfer" + std::to_string(ordinal);
  }

 private:
  TopologySpec spec_;
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace ramr::vgpu
