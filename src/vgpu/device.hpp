// The virtual device: a modeled processor with its own memory space.
//
// Functional semantics are real — kernels run their bodies over the full
// index space (data-parallel on the global host thread pool) and memcpy
// actually moves bytes. Performance semantics are modeled: each launch
// and transfer charges time on the device's SimClock according to the
// DeviceSpec. Device memory is a tracked arena so capacity (6 GB on a
// K20x) and residency can be asserted by tests.
//
// The launch API deliberately mirrors the paper's CUDA usage (Fig. 5a):
// a 1-D grid of threads covering one element each.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <mutex>
#include <memory>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"
#include "vgpu/device_spec.hpp"
#include "vgpu/launch_batch.hpp"
#include "vgpu/sim_clock.hpp"
#include "vgpu/timeline.hpp"
#include "vgpu/transfer_log.hpp"

namespace ramr::vgpu {

/// Cost declaration for a kernel launch: per-thread arithmetic and memory
/// traffic, used by the machine model. Bytes should count reads+writes of
/// the kernel body per output element.
struct KernelCost {
  double flops_per_thread = 0.0;
  double bytes_per_thread = 0.0;
};

/// Category a kernel launch is attributed to. The aggregate launch_count
/// stays the headline number; per-tag counts let benches and tests break
/// it down (hydro stages vs the transfer path) and assert launch budgets
/// like "pack launches == messages sent" per exchange.
enum class LaunchTag : int {
  kOther = 0,       ///< untagged (init, diagnostics)
  kHydro,           ///< hydro stage + timestep kernels
  kTransferPack,    ///< message packing (fused plan or per-transaction)
  kTransferUnpack,  ///< message unpacking
  kLocalCopy,       ///< schedule-local device-to-device copies
  kRegrid,          ///< regrid path: tagging/clustering + interpolation
  kRind,            ///< boundary-shell sweeps of interior/rind stage splits
};
inline constexpr int kLaunchTagCount = 7;

/// Cumulative accounting of launch fusion (begin/end_launch_fusion): how
/// many kernel charges were deferred into how many fused launches, and
/// the modeled seconds each accounting assigns the same work — the
/// throughput lever of the multi-job service (svc::SimulationServer):
/// serial_seconds - fused_seconds is pure savings from amortized launch
/// overhead and the better occupancy of summed grids.
struct FusionStats {
  std::uint64_t enqueued = 0;        ///< kernel charges deferred
  std::uint64_t groups_flushed = 0;  ///< fused launches actually charged
  double serial_seconds = 0.0;       ///< unfused cost of everything enqueued
  double fused_seconds = 0.0;        ///< fused cost actually charged
};

/// Cumulative injected-fault accounting for one device (util/fault.hpp).
/// launch_faults counts injections; each is either absorbed by ECC-style
/// retries (launch_retries charges, one launch overhead apiece) or
/// escapes as a thrown util::Error (launch_aborts).
struct FaultStats {
  std::uint64_t launch_faults = 0;   ///< injected launch failures
  std::uint64_t launch_retries = 0;  ///< ECC retries charged
  std::uint64_t launch_aborts = 0;   ///< launch faults that escaped as errors
  std::uint64_t alloc_faults = 0;    ///< injected allocation failures
};

class Device;

/// An in-order execution queue, as in CUDA. Functionally the virtual
/// device executes kernels eagerly (so stream semantics are trivially
/// preserved); the stream scopes TIMING: when the device's clock carries
/// a Timeline and the stream is bound to a lane, every launch on the
/// stream advances that lane's cursor instead of the active lane — the
/// stream is a concurrent engine, exactly a CUDA stream. Unbound streams
/// follow the active lane (the CUDA default stream: fully ordered with
/// the issuing code).
class Stream {
 public:
  Stream(Device& device, std::string name) : device_(&device), name_(std::move(name)) {}

  Device& device() const { return *device_; }
  const std::string& name() const { return name_; }

  /// Routes this stream's launches onto a timeline lane (see
  /// Timeline::lane). Negative restores default-stream behavior.
  void bind_lane(int lane) { lane_ = lane; }
  int lane() const { return lane_; }

 private:
  Device* device_;
  std::string name_;
  int lane_ = -1;  ///< timeline lane; -1 = follow the active lane
};

/// A marker in a stream; wait_event models cross-stream ordering. With
/// eager execution ordering always holds functionally; under a timeline
/// the event carries the REAL timestamp of the stream's lane at record
/// time, and waiting advances the waiter to it (completion = max of the
/// dependency chains, never the sum).
class Event {
 public:
  void record(Stream& stream);  // defined after Device
  bool recorded() const { return recorded_; }

  /// Lane time at record (0 without a timeline).
  double timestamp() const { return timestamp_; }

 private:
  bool recorded_ = false;
  double timestamp_ = 0.0;
};

/// A modeled processor with a private memory arena, a simulated clock and
/// a transfer log.
class Device {
 public:
  /// When `shared_clock` is non-null all modeled time is charged there
  /// (used by distributed ranks so device + network time share one
  /// component scope); otherwise the device owns a private clock.
  explicit Device(DeviceSpec spec, SimClock* shared_clock = nullptr)
      : spec_(std::move(spec)),
        owned_clock_(shared_clock == nullptr ? std::make_unique<SimClock>()
                                             : nullptr),
        clock_(shared_clock != nullptr ? shared_clock : owned_clock_.get()) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceSpec& spec() const { return spec_; }
  SimClock& clock() { return *clock_; }
  const SimClock& clock() const { return *clock_; }
  TransferLog& transfers() { return transfers_; }
  const TransferLog& transfers() const { return transfers_; }

  /// Timing model attached to this device's clock, or null when running
  /// the synchronous (single-cursor) model.
  Timeline* timeline() const { return clock_->timeline(); }

  /// Models cudaStreamWaitEvent: `stream`'s lane (or the active lane for
  /// an unbound stream) cannot proceed before the event's timestamp.
  /// No-op without a timeline.
  void wait_event(Stream& stream, const Event& event) {
    Timeline* tl = timeline();
    if (tl != nullptr) {
      tl->advance(stream.lane() >= 0 ? stream.lane() : tl->active_lane(),
                  event.timestamp());
    }
  }

  std::uint64_t bytes_allocated() const { return bytes_allocated_; }
  std::uint64_t peak_bytes_allocated() const { return peak_bytes_; }

  /// Cumulative kernel launches charged (a fused batched launch counts
  /// once, however many segments it covers).
  std::uint64_t launch_count() const { return launch_count_; }

  /// Launches attributed to one category (see LaunchTag). The sum over
  /// all tags equals launch_count().
  std::uint64_t launch_count(LaunchTag tag) const {
    return launch_count_by_tag_[static_cast<std::size_t>(tag)];
  }

  /// Category charged for launches until changed (prefer LaunchTagScope).
  LaunchTag launch_tag() const { return launch_tag_; }
  void set_launch_tag(LaunchTag tag) { launch_tag_ = tag; }

  /// Cumulative modeled seconds charged for kernels (launch overhead
  /// included) — the kernel-time slice of the clock's total.
  double kernel_seconds() const { return kernel_seconds_; }

  /// Attaches a fault plan (util/fault.hpp) consulted at every launch
  /// charge and allocation; null (the default) disables injection. The
  /// device does not own the plan — prefer the FaultScope RAII so the
  /// pointer cannot outlive the plan.
  void set_fault_plan(util::FaultPlan* plan) { fault_plan_ = plan; }
  util::FaultPlan* fault_plan() const { return fault_plan_; }
  const FaultStats& fault_stats() const { return fault_stats_; }

  /// Allocates `n` elements in device memory. Throws util::Error when the
  /// modeled capacity would be exceeded (a real cudaMalloc failure) or an
  /// allocation fault is injected (a transient cudaMalloc failure).
  template <typename T>
  T* allocate(std::int64_t n) {
    const std::uint64_t bytes = static_cast<std::uint64_t>(n) * sizeof(T);
    if (fault_plan_ != nullptr &&
        fault_plan_->should_inject(util::FaultSite::kAlloc)) {
      ++fault_stats_.alloc_faults;
      RAMR_FAIL("injected allocation fault on " << spec_.name << ": cudaMalloc("
                << bytes << " bytes) returned cudaErrorMemoryAllocation");
    }
    RAMR_REQUIRE(bytes_allocated_ + bytes <= spec_.mem_bytes,
                 "device memory exhausted on " << spec_.name << ": "
                 << bytes_allocated_ << " + " << bytes << " > "
                 << spec_.mem_bytes);
    bytes_allocated_ += bytes;
    peak_bytes_ = std::max(peak_bytes_, bytes_allocated_);
    return new T[static_cast<std::size_t>(n)];
  }

  template <typename T>
  void deallocate(T* p, std::int64_t n) noexcept {
    bytes_allocated_ -= static_cast<std::uint64_t>(n) * sizeof(T);
    delete[] p;
  }

  /// Copies host -> device, charging PCIe cost (no cost on a host
  /// "device", where the copy degenerates to memcpy within one space).
  void memcpy_h2d(void* dst, const void* src, std::uint64_t bytes);

  /// Copies device -> host, charging PCIe cost.
  void memcpy_d2h(void* dst, const void* src, std::uint64_t bytes);

  /// Position of this device within its rank's vgpu::Topology (0 for a
  /// standalone device).
  int ordinal() const { return ordinal_; }
  void set_ordinal(int ordinal) { ordinal_ = ordinal; }

  /// Peer-link parameters used by memcpy_peer (set by vgpu::Topology).
  /// Until set, peer copies fall back to the PCIe link model (a
  /// staged-through-host copy without NVLink).
  void set_peer_link(double latency_s, double bw_gbs) {
    peer_lat_s_ = latency_s;
    peer_bw_gbs_ = bw_gbs;
  }

  /// Copies this device -> `dst_device` over the peer link, charging
  /// link latency + bytes/bandwidth on the directed Timeline copy lane
  /// "peer<src>-<dst>" (Topology::peer_lane_name); forked from the
  /// active lane, so the copy cannot start before the pack that produced
  /// the data. Returns the link-lane completion timestamp (the caller
  /// orders the consuming unpack after it); 0 without a timeline, where
  /// the cost is charged serially. No modeled cost on host "devices" or
  /// same-device copies.
  double memcpy_peer(void* dst, Device& dst_device, const void* src,
                     std::uint64_t bytes);

  /// GPU-direct staging: moves the bytes between device memory and a
  /// wire buffer WITHOUT a modeled PCIe crossing — the NIC reads/writes
  /// device memory directly (GPUDirect RDMA), so per-message host
  /// staging disappears from the model. Logged separately so residency
  /// tests can assert the eliminated crossings.
  void memcpy_d2h_direct(void* dst, const void* src, std::uint64_t bytes);
  void memcpy_h2d_direct(void* dst, const void* src, std::uint64_t bytes);

  /// While a transfer batch is open, memcpy_h2d/memcpy_d2h still move the
  /// bytes but defer the modeled cost: on close, each direction with
  /// traffic is charged as ONE crossing (one PCIe latency + total bytes at
  /// bandwidth) and logged as one transfer. This models the fused pack of
  /// the aggregated transfer path: many per-variable staging copies become
  /// a single bus crossing per aggregated buffer. Batches nest; the charge
  /// happens when the outermost scope closes. Use the TransferBatch RAII.
  ///
  /// An *absorbing* batch drops the accumulated staging copies at close
  /// instead of charging them: for paths that charge the aggregated
  /// crossing explicitly via charge_h2d_crossing / charge_d2h_crossing
  /// (the batched-unpack side, where several peers' buffers are consumed
  /// interleaved and per-buffer fusion cannot be expressed as one scope).
  /// Nested batches must agree on the mode — mixing would silently
  /// double-count or zero crossings.
  void begin_transfer_batch(bool absorb = false) {
    RAMR_DEBUG_ASSERT(batch_depth_ == 0 || absorb == batch_absorb_);
    if (batch_depth_++ == 0) {
      batch_absorb_ = absorb;
    }
  }
  void end_transfer_batch();

  /// Logs and charges one fused crossing of an aggregated buffer without
  /// moving data (the data movement happens through memcpys inside an
  /// absorbing batch). No-op on host "devices".
  void charge_h2d_crossing(std::uint64_t bytes);
  void charge_d2h_crossing(std::uint64_t bytes);

  /// Launches `n` threads executing body(i) for i in [0, n), data
  /// parallel. Charges modeled kernel time to the device clock.
  template <typename F>
  void launch(Stream& stream, std::int64_t n, const KernelCost& cost, F&& body) {
    RAMR_DEBUG_ASSERT(&stream.device() == this);
    if (n <= 0) {
      return;
    }
    charge_kernel(stream, n, cost);
    util::ThreadPool::global().parallel_for(
        n, [&body](std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i) {
            body(i);
          }
        });
  }

  /// 2-D convenience wrapper: body(i, j) over a width x height tile with
  /// global offsets (ilo, jlo), mapping j to the slow axis as the paper's
  /// kernels do. Iteration inside each parallel_for chunk is row-wise:
  /// the div/mod locating the chunk start runs once per chunk, not once
  /// per element.
  template <typename F>
  void launch2d(Stream& stream, int ilo, int jlo, int width, int height,
                const KernelCost& cost, F&& body) {
    RAMR_DEBUG_ASSERT(&stream.device() == this);
    if (width <= 0 || height <= 0) {
      return;
    }
    const std::int64_t n = static_cast<std::int64_t>(width) * height;
    charge_kernel(stream, n, cost);
    // Single-tile fast path: shares run_tile_rows with the fused
    // executor but needs no SegmentTable (no per-launch allocations —
    // this is still the path under every per-transaction transfer
    // kernel).
    const LaunchSeg2D tile{ilo, jlo, width, height};
    util::ThreadPool::global().parallel_for(
        n, [&](std::int64_t begin, std::int64_t end) {
          auto drop_seg = [&body](std::size_t, int i, int j) { body(i, j); };
          run_tile_rows(tile, 0, begin, end, drop_seg);
        });
  }

  /// Fused launch over a SegmentTable (vgpu/launch_batch.hpp): ONE
  /// launch-overhead charge and one data-parallel sweep over the
  /// concatenated index space of all segments, with utilization computed
  /// from the total thread count. body(seg, i, j) runs for every (i, j)
  /// of every segment, row-wise within each segment — the same index
  /// sets and per-element arithmetic as the equivalent per-segment
  /// launch2d calls, so results are bit-identical to the per-patch path.
  template <typename F>
  void launch_batched(Stream& stream, const SegmentTable& segments,
                      const KernelCost& cost, F&& body) {
    RAMR_DEBUG_ASSERT(&stream.device() == this);
    const std::int64_t n = segments.total_threads();
    if (n <= 0) {
      return;
    }
    charge_kernel(stream, n, cost);
    util::ThreadPool::global().parallel_for(
        n, [&](std::int64_t begin, std::int64_t end) {
          run_segments(segments, begin, end, body);
        });
  }

  /// Charges a device-side reduction of n elements (tree depth ~ log n is
  /// dominated by the memory sweep at these sizes).
  void charge_reduction(std::int64_t n, double bytes_per_item = sizeof(double));

  /// Device-side min-reduction: evaluates f(i) for i in [0, n) data
  /// parallel and returns the minimum. Charges one kernel plus (for
  /// accelerators) the scalar D2H readback — this is the only per-step
  /// PCIe traffic of the resident scheme outside halo exchange. A
  /// wrapper over reduce_min_batched: [0, n) is laid out as rows of a
  /// wide virtual tile so 64-bit trip counts fit the int-typed segment
  /// fields; same single kernel charge and readback, same ascending
  /// evaluation order.
  template <typename F>
  double reduce_min(Stream& stream, std::int64_t n, const KernelCost& cost,
                    F&& f) {
    if (n <= 0) {
      return std::numeric_limits<double>::infinity();
    }
    constexpr std::int64_t kRow = std::int64_t{1} << 30;
    SegmentTable rows;
    if (n / kRow > 0) {
      rows.add(0, 0, static_cast<int>(kRow), static_cast<int>(n / kRow));
    }
    if (n % kRow > 0) {
      rows.add(0, static_cast<int>(n / kRow), static_cast<int>(n % kRow), 1);
    }
    return reduce_min_batched(
        stream, rows, cost, [&f](std::size_t, int i, int j) {
          return f(static_cast<std::int64_t>(j) * kRow + i);
        });
  }

  /// Fused min-reduction over a SegmentTable: one kernel charge for the
  /// total thread count and ONE scalar D2H readback, replacing P
  /// per-patch reduce_min calls (P kernels and P readbacks). f(seg, i, j)
  /// must be pure; min is exact, so the result is bit-identical to the
  /// per-segment reductions it fuses.
  template <typename F>
  double reduce_min_batched(Stream& stream, const SegmentTable& segments,
                            const KernelCost& cost, F&& f) {
    RAMR_DEBUG_ASSERT(&stream.device() == this);
    const std::int64_t n = segments.total_threads();
    if (n <= 0) {
      return std::numeric_limits<double>::infinity();
    }
    Timeline* tl = stream.lane() >= 0 ? timeline() : nullptr;
    double global_min = std::numeric_limits<double>::infinity();
    {
      // The scalar readback rides the stream's lane with the kernel.
      LaneScope lane(tl, stream.lane());
      charge_kernel(n, cost);
      std::mutex m;
      util::ThreadPool::global().parallel_for(
          n, [&](std::int64_t begin, std::int64_t end) {
            double local = std::numeric_limits<double>::infinity();
            auto take = [&](std::size_t seg, int i, int j) {
              local = std::min(local, f(seg, i, j));
            };
            run_segments(segments, begin, end, take);
            std::lock_guard<std::mutex> lock(m);
            global_min = std::min(global_min, local);
          });
      charge_scalar_readback();
    }
    if (tl != nullptr) {
      // Returning the scalar is a synchronization point: the caller's
      // lane cannot consume the value before the reduction completed.
      tl->advance(tl->active_lane(), tl->now(stream.lane()));
    }
    return global_min;
  }

  /// Charges the D2H readback of one scalar result (no-op on host specs).
  void charge_scalar_readback();

  /// While a launch-fusion scope is open, kernel bodies still execute
  /// eagerly (results stay bit-identical by construction) but their
  /// modeled charges are DEFERRED: charges with the same per-thread
  /// cost, launch tag and clock component accumulate into one group, and
  /// on close each group is charged as ONE launch — one launch overhead
  /// and an occupancy ramp computed from the group's total thread count.
  /// This is the cross-job analogue of launch_batched: the service
  /// interleaves K jobs' level advances inside one scope, so the same
  /// stage kernel of different jobs fuses exactly like the same stage of
  /// different patches. SimClock totals are order-independent
  /// accumulators, so deferring is sound on the synchronous path;
  /// a timeline (async model) is rejected at begin. Scopes nest; the
  /// flush happens when the outermost closes. Scalar readbacks and PCIe
  /// crossings are never deferred (the data is consumed immediately).
  void begin_launch_fusion();
  void end_launch_fusion();
  bool launch_fusion_open() const { return fusion_depth_ > 0; }
  const FusionStats& fusion_stats() const { return fusion_stats_; }

  /// The modeled cost of launching `n` threads at `cost` right now (the
  /// single home of the kernel-time formula).
  double modeled_kernel_seconds(std::int64_t n, const KernelCost& cost) const;

 private:
  void charge_kernel(std::int64_t n, const KernelCost& cost);

  /// Consults the fault plan before a launch charge: an injected launch
  /// fault is absorbed by up to config().launch_retries ECC-style retries
  /// (one launch-overhead charge each); past that it escapes as a thrown
  /// util::Error.
  void maybe_inject_launch_fault();

  /// Charges the launch on the stream's timeline lane when the stream is
  /// bound to one (async streams); on the active lane otherwise.
  void charge_kernel(const Stream& stream, std::int64_t n,
                     const KernelCost& cost) {
    LaneScope lane(stream.lane() >= 0 ? timeline() : nullptr, stream.lane());
    charge_kernel(n, cost);
  }

  /// Runs body(seg_id, i, j) over one tile's tile-local flattened index
  /// range [begin, end): the (i, j) position is resolved once at the
  /// start and advanced row-wise — no per-element div/mod.
  template <typename F>
  static void run_tile_rows(const LaunchSeg2D& seg, std::size_t seg_id,
                            std::int64_t begin, std::int64_t end, F& body) {
    int j = seg.jlo + static_cast<int>(begin / seg.width);
    int i = seg.ilo + static_cast<int>(begin % seg.width);
    std::int64_t idx = begin;
    while (idx < end) {
      const std::int64_t run =
          std::min<std::int64_t>(end - idx, (seg.ilo + seg.width) - i);
      for (const int iend = i + static_cast<int>(run); i < iend; ++i) {
        body(seg_id, i, j);
      }
      idx += run;
      if (i == seg.ilo + seg.width) {
        i = seg.ilo;
        ++j;
      }
    }
  }

  /// Runs body(arg, i, j) over flattened indices [begin, end) of a fused
  /// launch: the segment is resolved once per transition (binary search
  /// at the chunk start, increment afterwards), rows via run_tile_rows.
  /// The body receives the segment's ARGUMENT id (== the segment index
  /// unless the table assigned one explicitly).
  template <typename F>
  static void run_segments(const SegmentTable& segments, std::int64_t begin,
                           std::int64_t end, F& body) {
    std::size_t s = segments.find(begin);
    std::int64_t idx = begin;
    while (idx < end) {
      const LaunchSeg2D& seg = segments.segment(s);
      const std::int64_t seg_begin = segments.offset(s);
      const std::int64_t seg_end = seg_begin + seg.size();
      if (idx >= seg_end) {
        ++s;
        continue;
      }
      const std::int64_t stop = std::min(end, seg_end);
      run_tile_rows(seg, segments.arg(s), idx - seg_begin, stop - seg_begin,
                    body);
      idx = stop;
    }
  }

  /// Logs one crossing in the given direction and charges its modeled
  /// wire time (the single home of the PCIe cost formula).
  void charge_crossing(bool h2d, std::uint64_t bytes);

  DeviceSpec spec_;
  std::unique_ptr<SimClock> owned_clock_;
  SimClock* clock_ = nullptr;
  TransferLog transfers_;
  int ordinal_ = 0;
  double peer_lat_s_ = 0.0;
  double peer_bw_gbs_ = 0.0;  ///< 0 = unset, fall back to the PCIe model
  std::uint64_t bytes_allocated_ = 0;
  std::uint64_t peak_bytes_ = 0;
  std::uint64_t launch_count_ = 0;
  LaunchTag launch_tag_ = LaunchTag::kOther;
  std::array<std::uint64_t, kLaunchTagCount> launch_count_by_tag_{};
  double kernel_seconds_ = 0.0;
  int batch_depth_ = 0;
  bool batch_absorb_ = false;
  std::uint64_t batch_h2d_bytes_ = 0;
  std::uint64_t batch_d2h_bytes_ = 0;

  /// One deferred-charge group of an open launch-fusion scope: charges
  /// agreeing on (per-thread cost, tag, component) fuse into one launch.
  /// In this codebase the KernelCost constants uniquely identify the
  /// kernel bodies, so the key needs no function identity.
  struct FusionGroup {
    double flops_per_thread = 0.0;
    double bytes_per_thread = 0.0;
    LaunchTag tag = LaunchTag::kOther;
    std::string component;
    std::int64_t threads = 0;
  };
  std::vector<FusionGroup> fusion_groups_;
  int fusion_depth_ = 0;
  FusionStats fusion_stats_;
  util::FaultPlan* fault_plan_ = nullptr;
  FaultStats fault_stats_;
};

inline void Event::record(Stream& stream) {
  recorded_ = true;
  const Timeline* tl = stream.device().clock().timeline();
  if (tl != nullptr) {
    timestamp_ =
        tl->now(stream.lane() >= 0 ? stream.lane() : tl->active_lane());
  }
}

/// RAII launch-tag scope: launches on `device` are attributed to `tag`
/// for the scope's lifetime. A null device makes the scope a no-op, so
/// callers that may run host-only need no branching.
class LaunchTagScope {
 public:
  LaunchTagScope(Device* device, LaunchTag tag) : device_(device) {
    if (device_ != nullptr) {
      previous_ = device_->launch_tag();
      device_->set_launch_tag(tag);
    }
  }
  ~LaunchTagScope() {
    if (device_ != nullptr) {
      device_->set_launch_tag(previous_);
    }
  }

  LaunchTagScope(const LaunchTagScope&) = delete;
  LaunchTagScope& operator=(const LaunchTagScope&) = delete;

 private:
  Device* device_;
  LaunchTag previous_ = LaunchTag::kOther;
};

/// RAII launch-fusion scope (see Device::begin_launch_fusion). A null
/// device makes the scope a no-op, so call sites need no branching.
class LaunchFusionScope {
 public:
  explicit LaunchFusionScope(Device* device) : device_(device) {
    if (device_ != nullptr) {
      device_->begin_launch_fusion();
    }
  }
  ~LaunchFusionScope() {
    if (device_ != nullptr) {
      device_->end_launch_fusion();
    }
  }

  LaunchFusionScope(const LaunchFusionScope&) = delete;
  LaunchFusionScope& operator=(const LaunchFusionScope&) = delete;

 private:
  Device* device_;
};

/// RAII transfer batch. A null device is allowed and makes the scope a
/// no-op, so callers that may run host-only need no branching.
class TransferBatch {
 public:
  explicit TransferBatch(Device* device, bool absorb = false)
      : device_(device) {
    if (device_ != nullptr) {
      device_->begin_transfer_batch(absorb);
    }
  }
  ~TransferBatch() {
    if (device_ != nullptr) {
      device_->end_transfer_batch();
    }
  }

  TransferBatch(const TransferBatch&) = delete;
  TransferBatch& operator=(const TransferBatch&) = delete;

 private:
  Device* device_;
};

/// RAII fault-plan scope: `device` consults `plan` for the scope's
/// lifetime, then reverts to the previous plan (normally null) — the
/// device can never hold a dangling plan pointer past the scope. A null
/// device or null plan makes the scope a no-op.
class FaultScope {
 public:
  FaultScope(Device* device, util::FaultPlan* plan)
      : device_(plan != nullptr ? device : nullptr) {
    if (device_ != nullptr) {
      previous_ = device_->fault_plan();
      device_->set_fault_plan(plan);
    }
  }
  ~FaultScope() {
    if (device_ != nullptr) {
      device_->set_fault_plan(previous_);
    }
  }

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  Device* device_;
  util::FaultPlan* previous_ = nullptr;
};

}  // namespace ramr::vgpu
