#include "vgpu/sim_clock.hpp"

#include "util/error.hpp"
#include "vgpu/timeline.hpp"

namespace ramr::vgpu {

namespace {
const std::string kOther = "other";
}  // namespace

void SimClock::charge(double seconds) {
  charge_to(current_component(), seconds);
}

void SimClock::charge_to(const std::string& component, double seconds) {
  RAMR_DEBUG_ASSERT(seconds >= 0.0);
  by_component_[component] += seconds;
  total_ += seconds;
  if (timeline_ != nullptr) {
    timeline_->on_charge(seconds);
  }
  if (listener_ != nullptr) {
    listener_->on_charge(component, seconds);
  }
}

double SimClock::component(const std::string& name) const {
  const auto it = by_component_.find(name);
  return it == by_component_.end() ? 0.0 : it->second;
}

const std::string& SimClock::current_component() const {
  return scope_stack_.empty() ? kOther : scope_stack_.back();
}

void SimClock::reset() {
  by_component_.clear();
  total_ = 0.0;
  if (timeline_ != nullptr) {
    timeline_->reset();
  }
  if (listener_ != nullptr) {
    listener_->on_clock_reset();
  }
}

void SimClock::merge(const SimClock& other) {
  for (const auto& [name, seconds] : other.by_component_) {
    by_component_[name] += seconds;
  }
  total_ += other.total_;
}

void SimClock::push_component(std::string name) {
  scope_stack_.push_back(std::move(name));
}

void SimClock::pop_component() {
  RAMR_REQUIRE(!scope_stack_.empty(), "component scope underflow");
  scope_stack_.pop_back();
}

}  // namespace ramr::vgpu
