// Accounting of every host<->device crossing.
//
// The paper's central claim is residency: simulation data stays in GPU
// memory and crosses the PCIe bus only for regridding tags, MPI halo
// buffers, and level synchronisation. The TransferLog makes this claim
// testable — unit tests assert exact byte counts for each phase.
#pragma once

#include <cstdint>

namespace ramr::vgpu {

/// Counters for host-to-device (H2D) and device-to-host (D2H) traffic.
struct TransferLog {
  std::uint64_t h2d_count = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_count = 0;
  std::uint64_t d2h_bytes = 0;
  /// Subset of d2h_count that is scalar reduction readbacks — every
  /// charge_scalar_readback(), i.e. dt results and field-summary
  /// reductions alike. During a step only the dt reduction reads back,
  /// so after launch batching a step's resident PCIe traffic is regrid
  /// tags + ONE dt scalar per level + halo staging, which tests assert
  /// through this counter; windows that include composite_summary()
  /// also count its per-piece readbacks.
  std::uint64_t d2h_scalar_count = 0;
  /// Device-to-device copies over the peer link (Device::memcpy_peer),
  /// counted on the SOURCE device. Peer traffic never crosses PCIe, so
  /// it is excluded from total_bytes() — the residency claim the h2d/d2h
  /// counters test is about the host link.
  std::uint64_t peer_count = 0;
  std::uint64_t peer_bytes = 0;
  /// GPU-direct wire staging (memcpy_{d2h,h2d}_direct): message buffers
  /// the NIC moved without a modeled host crossing. What these counters
  /// count is exactly the crossings the h2d/d2h counters no longer see.
  std::uint64_t gpu_direct_count = 0;
  std::uint64_t gpu_direct_bytes = 0;

  std::uint64_t total_bytes() const { return h2d_bytes + d2h_bytes; }
  std::uint64_t total_count() const { return h2d_count + d2h_count; }

  void reset() { *this = TransferLog{}; }

  TransferLog operator-(const TransferLog& rhs) const {
    TransferLog d;
    d.h2d_count = h2d_count - rhs.h2d_count;
    d.h2d_bytes = h2d_bytes - rhs.h2d_bytes;
    d.d2h_count = d2h_count - rhs.d2h_count;
    d.d2h_bytes = d2h_bytes - rhs.d2h_bytes;
    d.d2h_scalar_count = d2h_scalar_count - rhs.d2h_scalar_count;
    d.peer_count = peer_count - rhs.peer_count;
    d.peer_bytes = peer_bytes - rhs.peer_bytes;
    d.gpu_direct_count = gpu_direct_count - rhs.gpu_direct_count;
    d.gpu_direct_bytes = gpu_direct_bytes - rhs.gpu_direct_bytes;
    return d;
  }
};

}  // namespace ramr::vgpu
