// Accounting of every host<->device crossing.
//
// The paper's central claim is residency: simulation data stays in GPU
// memory and crosses the PCIe bus only for regridding tags, MPI halo
// buffers, and level synchronisation. The TransferLog makes this claim
// testable — unit tests assert exact byte counts for each phase.
#pragma once

#include <cstdint>

namespace ramr::vgpu {

/// Counters for host-to-device (H2D) and device-to-host (D2H) traffic.
struct TransferLog {
  std::uint64_t h2d_count = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_count = 0;
  std::uint64_t d2h_bytes = 0;

  std::uint64_t total_bytes() const { return h2d_bytes + d2h_bytes; }
  std::uint64_t total_count() const { return h2d_count + d2h_count; }

  void reset() { *this = TransferLog{}; }

  TransferLog operator-(const TransferLog& rhs) const {
    TransferLog d;
    d.h2d_count = h2d_count - rhs.h2d_count;
    d.h2d_bytes = h2d_bytes - rhs.h2d_bytes;
    d.d2h_count = d2h_count - rhs.d2h_count;
    d.d2h_bytes = d2h_bytes - rhs.d2h_bytes;
    return d;
  }
};

}  // namespace ramr::vgpu
