#include "vgpu/topology.hpp"

namespace ramr::vgpu {

Topology::Topology(const TopologySpec& spec, const DeviceSpec& device_spec,
                   SimClock* clock)
    : spec_(spec) {
  RAMR_REQUIRE(spec.device_count >= 1,
               "topology needs at least one device, got " << spec.device_count);
  RAMR_REQUIRE(spec.link.bw_gbs > 0.0,
               "peer link bandwidth must be positive, got " << spec.link.bw_gbs);
  RAMR_REQUIRE(spec.link.latency_s >= 0.0,
               "peer link latency must be non-negative, got "
                   << spec.link.latency_s);
  devices_.reserve(static_cast<std::size_t>(spec.device_count));
  for (int d = 0; d < spec.device_count; ++d) {
    auto dev = std::make_unique<Device>(device_spec, clock);
    dev->set_ordinal(d);
    dev->set_peer_link(spec.link.latency_s, spec.link.bw_gbs);
    devices_.push_back(std::move(dev));
  }
}

}  // namespace ramr::vgpu
