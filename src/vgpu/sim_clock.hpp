// Per-rank simulated clock with named components.
//
// Every modeled cost (kernel launches, PCIe copies, network messages)
// is charged to the component currently on top of the clock's scope
// stack, so the benches can report the same breakdown as Figure 11 of
// the paper (hydrodynamics / synchronisation / regridding / timestep).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace ramr::vgpu {

class Timeline;

/// Accumulates modeled seconds per named component.
class SimClock {
 public:
  /// Charges `seconds` to the current component (and the total). With an
  /// attached Timeline the charge also advances the active lane's time
  /// cursor (vgpu/timeline.hpp).
  void charge(double seconds);

  /// Charges to an explicit component regardless of the current scope.
  void charge_to(const std::string& component, double seconds);

  double total() const { return total_; }
  double component(const std::string& name) const;
  const std::map<std::string, double>& components() const { return by_component_; }

  /// Name of the component currently on top of the scope stack.
  const std::string& current_component() const;

  /// Zeros the accumulations; an attached timeline resets with it so
  /// benches that reset the clock re-anchor virtual time at zero.
  void reset();

  /// Adds another clock's accumulations into this one.
  void merge(const SimClock& other);

  // Scope management (used via ComponentScope).
  void push_component(std::string name);
  void pop_component();

  /// Multi-lane timing model, when one is attached (async-overlap runs);
  /// null in the synchronous model. Managed by Timeline's ctor/dtor.
  Timeline* timeline() const { return timeline_; }
  void set_timeline(Timeline* timeline) { timeline_ = timeline; }

 private:
  std::map<std::string, double> by_component_;
  std::vector<std::string> scope_stack_;
  double total_ = 0.0;
  Timeline* timeline_ = nullptr;
};

/// RAII helper: all charges within the scope go to `component`.
class ComponentScope {
 public:
  ComponentScope(SimClock& clock, std::string component) : clock_(clock) {
    clock_.push_component(std::move(component));
  }
  ~ComponentScope() { clock_.pop_component(); }

  ComponentScope(const ComponentScope&) = delete;
  ComponentScope& operator=(const ComponentScope&) = delete;

 private:
  SimClock& clock_;
};

}  // namespace ramr::vgpu
