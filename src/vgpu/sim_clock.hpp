// Per-rank simulated clock with named components.
//
// Every modeled cost (kernel launches, PCIe copies, network messages)
// is charged to the component currently on top of the clock's scope
// stack, so the benches can report the same breakdown as Figure 11 of
// the paper (hydrodynamics / synchronisation / regridding / timestep).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace ramr::vgpu {

class Timeline;

/// Observer of everything the modeled clock does. The clock (and, via
/// the clock, Timeline and Device) notifies the attached listener of
/// every charge, counted kernel launch, lane wait, and annotation
/// scope. Observing is strictly passive: a listener never alters
/// modeled seconds, launch counts, or lane cursors, so a run with a
/// listener attached is bit-identical to one without.
class ChargeListener {
 public:
  virtual ~ChargeListener() = default;

  /// Every modeled charge, after the clock and timeline have absorbed
  /// it: `component` is the clock component it was booked to.
  virtual void on_charge(const std::string& component, double seconds) = 0;

  /// A counted kernel launch (Device::launch_count is about to
  /// increment); the next on_charge carries its cost. `tag` is the
  /// LaunchTag as an int. Fault-retry overhead does NOT fire this —
  /// retries charge time without counting a launch.
  virtual void on_kernel_launch(int tag) { (void)tag; }

  /// A lane's cursor jumped forward without busy time: a fork syncing
  /// to its issuer, a join, an arrival wait, or (rendezvous=true) a
  /// cross-rank barrier booking imbalance idle.
  virtual void on_lane_wait(int lane, double t_begin, double t_end,
                            bool rendezvous) {
    (void)lane;
    (void)t_begin;
    (void)t_end;
    (void)rendezvous;
  }

  /// Named scope entry/exit (AnnotationScope). Scopes nest.
  virtual void on_annotation_begin(const std::string& name) { (void)name; }
  virtual void on_annotation_end() {}

  /// The clock (and any timeline) re-anchored virtual time at zero.
  virtual void on_clock_reset() {}
};

/// Accumulates modeled seconds per named component.
class SimClock {
 public:
  /// Charges `seconds` to the current component (and the total). With an
  /// attached Timeline the charge also advances the active lane's time
  /// cursor (vgpu/timeline.hpp).
  void charge(double seconds);

  /// Charges to an explicit component regardless of the current scope.
  void charge_to(const std::string& component, double seconds);

  double total() const { return total_; }
  double component(const std::string& name) const;
  const std::map<std::string, double>& components() const { return by_component_; }

  /// Name of the component currently on top of the scope stack.
  const std::string& current_component() const;

  /// Zeros the accumulations; an attached timeline resets with it so
  /// benches that reset the clock re-anchor virtual time at zero.
  void reset();

  /// Adds another clock's accumulations into this one.
  void merge(const SimClock& other);

  // Scope management (used via ComponentScope).
  void push_component(std::string name);
  void pop_component();

  /// Multi-lane timing model, when one is attached (async-overlap runs);
  /// null in the synchronous model. Managed by Timeline's ctor/dtor.
  Timeline* timeline() const { return timeline_; }
  void set_timeline(Timeline* timeline) { timeline_ = timeline; }

  /// Attached observer (obs::TraceRecorder), or null — the default and
  /// the zero-overhead path. One slot: managed by the listener's
  /// ctor/dtor like the timeline's.
  ChargeListener* listener() const { return listener_; }
  void set_listener(ChargeListener* listener) { listener_ = listener; }

 private:
  std::map<std::string, double> by_component_;
  std::vector<std::string> scope_stack_;
  double total_ = 0.0;
  Timeline* timeline_ = nullptr;
  ChargeListener* listener_ = nullptr;
};

/// RAII helper: all charges within the scope go to `component`.
class ComponentScope {
 public:
  ComponentScope(SimClock& clock, std::string component) : clock_(clock) {
    clock_.push_component(std::move(component));
  }
  ~ComponentScope() { clock_.pop_component(); }

  ComponentScope(const ComponentScope&) = delete;
  ComponentScope& operator=(const ComponentScope&) = delete;

 private:
  SimClock& clock_;
};

/// RAII helper: names a region of modeled time for the clock's
/// listener ("stage:hydro", "window:state", "xfer:pack", ...). Unlike
/// ComponentScope this charges nothing and books nothing — with no
/// listener attached (the default) it is a pair of null checks, so
/// annotated code paths stay bit-identical when observability is off.
class AnnotationScope {
 public:
  AnnotationScope(SimClock* clock, const char* name) : clock_(clock) {
    ChargeListener* listener = clock_ != nullptr ? clock_->listener() : nullptr;
    if (listener != nullptr) {
      listener->on_annotation_begin(name);
    }
  }
  ~AnnotationScope() {
    // Re-queried, never cached: the listener present at entry may have
    // been destroyed inside the scope (service mode tears down a traced
    // job's recorder mid-recovery), and a listener attached inside the
    // scope never saw the begin — it drops the unmatched end.
    ChargeListener* listener = clock_ != nullptr ? clock_->listener() : nullptr;
    if (listener != nullptr) {
      listener->on_annotation_end();
    }
  }

  AnnotationScope(const AnnotationScope&) = delete;
  AnnotationScope& operator=(const AnnotationScope&) = delete;

 private:
  SimClock* clock_;
};

}  // namespace ramr::vgpu
