#include "vgpu/device.hpp"

#include <cstring>

namespace ramr::vgpu {

void Device::charge_crossing(bool h2d, std::uint64_t bytes) {
  if (h2d) {
    ++transfers_.h2d_count;
    transfers_.h2d_bytes += bytes;
  } else {
    ++transfers_.d2h_count;
    transfers_.d2h_bytes += bytes;
  }
  clock_->charge(spec_.pcie_lat_s +
                 static_cast<double>(bytes) / (spec_.pcie_bw_gbs * 1.0e9));
}

void Device::memcpy_h2d(void* dst, const void* src, std::uint64_t bytes) {
  std::memcpy(dst, src, bytes);
  if (spec_.is_accelerator && bytes > 0) {
    if (batch_depth_ > 0) {
      batch_h2d_bytes_ += bytes;
      return;
    }
    charge_crossing(/*h2d=*/true, bytes);
  }
}

void Device::memcpy_d2h(void* dst, const void* src, std::uint64_t bytes) {
  std::memcpy(dst, src, bytes);
  if (spec_.is_accelerator && bytes > 0) {
    if (batch_depth_ > 0) {
      batch_d2h_bytes_ += bytes;
      return;
    }
    charge_crossing(/*h2d=*/false, bytes);
  }
}

double Device::memcpy_peer(void* dst, Device& dst_device, const void* src,
                           std::uint64_t bytes) {
  std::memcpy(dst, src, bytes);
  if (!spec_.is_accelerator || bytes == 0 || &dst_device == this) {
    return 0.0;
  }
  ++transfers_.peer_count;
  transfers_.peer_bytes += bytes;
  // Unset link parameters degrade to the PCIe model: a peer copy staged
  // through the host port costs one PCIe crossing.
  const double lat = peer_bw_gbs_ > 0.0 ? peer_lat_s_ : spec_.pcie_lat_s;
  const double bw = peer_bw_gbs_ > 0.0 ? peer_bw_gbs_ : spec_.pcie_bw_gbs;
  const double seconds = lat + static_cast<double>(bytes) / (bw * 1.0e9);
  Timeline* tl = timeline();
  if (tl == nullptr) {
    clock_->charge(seconds);
    return 0.0;
  }
  // The directed link is its own copy engine (Topology::peer_lane_name):
  // the fork orders the copy after the issuing lane's pack, and the
  // caller orders the consuming unpack after the returned timestamp.
  const int lane = tl->lane("peer" + std::to_string(ordinal_) + "-" +
                            std::to_string(dst_device.ordinal_));
  double done = 0.0;
  {
    LaneScope scope(tl, lane);
    clock_->charge(seconds);
    done = tl->now(lane);
  }
  return done;
}

void Device::memcpy_d2h_direct(void* dst, const void* src,
                               std::uint64_t bytes) {
  std::memcpy(dst, src, bytes);
  if (spec_.is_accelerator && bytes > 0) {
    ++transfers_.gpu_direct_count;
    transfers_.gpu_direct_bytes += bytes;
  }
}

void Device::memcpy_h2d_direct(void* dst, const void* src,
                               std::uint64_t bytes) {
  std::memcpy(dst, src, bytes);
  if (spec_.is_accelerator && bytes > 0) {
    ++transfers_.gpu_direct_count;
    transfers_.gpu_direct_bytes += bytes;
  }
}

void Device::charge_h2d_crossing(std::uint64_t bytes) {
  if (spec_.is_accelerator && bytes > 0) {
    charge_crossing(/*h2d=*/true, bytes);
  }
}

void Device::charge_d2h_crossing(std::uint64_t bytes) {
  if (spec_.is_accelerator && bytes > 0) {
    charge_crossing(/*h2d=*/false, bytes);
  }
}

void Device::end_transfer_batch() {
  RAMR_DEBUG_ASSERT(batch_depth_ > 0);
  if (--batch_depth_ > 0) {
    return;
  }
  if (!batch_absorb_) {
    if (batch_h2d_bytes_ > 0) {
      charge_crossing(/*h2d=*/true, batch_h2d_bytes_);
    }
    if (batch_d2h_bytes_ > 0) {
      charge_crossing(/*h2d=*/false, batch_d2h_bytes_);
    }
  }
  batch_absorb_ = false;
  batch_h2d_bytes_ = 0;
  batch_d2h_bytes_ = 0;
}

double Device::modeled_kernel_seconds(std::int64_t n,
                                      const KernelCost& cost) const {
  const double flops = cost.flops_per_thread * static_cast<double>(n);
  const double bytes = cost.bytes_per_thread * static_cast<double>(n);
  // Occupancy ramp: small grids cannot saturate a throughput-oriented
  // device (see DeviceSpec::half_saturation_threads).
  const double utilization =
      static_cast<double>(n) /
      (static_cast<double>(n) + spec_.half_saturation_threads);
  const double t_compute = flops / (spec_.peak_gflops * 1.0e9 * utilization);
  const double t_memory = bytes / (spec_.mem_bw_gbs * 1.0e9 * utilization);
  return spec_.launch_overhead_s + std::max(t_compute, t_memory);
}

void Device::maybe_inject_launch_fault() {
  if (fault_plan_ == nullptr ||
      !fault_plan_->should_inject(util::FaultSite::kLaunch)) {
    return;
  }
  ++fault_stats_.launch_faults;
  const int retries = fault_plan_->config().launch_retries;
  for (int attempt = 0; attempt < retries; ++attempt) {
    // Each ECC-style retry re-issues the launch: one extra launch
    // overhead on the clock, then a fresh deterministic draw decides
    // whether the retry also faults.
    ++fault_stats_.launch_retries;
    kernel_seconds_ += spec_.launch_overhead_s;
    clock_->charge(spec_.launch_overhead_s);
    if (!fault_plan_->should_inject(util::FaultSite::kLaunch)) {
      return;
    }
    ++fault_stats_.launch_faults;
  }
  ++fault_stats_.launch_aborts;
  RAMR_FAIL("injected launch fault on " << spec_.name
            << ": kernel launch returned cudaErrorECCUncorrectable after "
            << retries << " retries");
}

void Device::charge_kernel(std::int64_t n, const KernelCost& cost) {
  maybe_inject_launch_fault();
  if (fusion_depth_ > 0) {
    // Deferred: execution already happened (eagerly, at the call site);
    // only the modeled charge waits for the flush. Track what the
    // unfused accounting would have cost — the serial-equivalent
    // baseline the service reports per job.
    const std::string& component = clock_->current_component();
    FusionGroup* group = nullptr;
    for (FusionGroup& g : fusion_groups_) {
      if (g.flops_per_thread == cost.flops_per_thread &&
          g.bytes_per_thread == cost.bytes_per_thread &&
          g.tag == launch_tag_ && g.component == component) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      fusion_groups_.push_back(FusionGroup{cost.flops_per_thread,
                                           cost.bytes_per_thread, launch_tag_,
                                           component, 0});
      group = &fusion_groups_.back();
    }
    group->threads += n;
    ++fusion_stats_.enqueued;
    fusion_stats_.serial_seconds += modeled_kernel_seconds(n, cost);
    return;
  }
  const double seconds = modeled_kernel_seconds(n, cost);
  ++launch_count_;
  ++launch_count_by_tag_[static_cast<std::size_t>(launch_tag_)];
  kernel_seconds_ += seconds;
  if (ChargeListener* listener = clock_->listener()) {
    listener->on_kernel_launch(static_cast<int>(launch_tag_));
  }
  clock_->charge(seconds);
}

void Device::begin_launch_fusion() {
  // Deferral re-orders charges; the SimClock is an order-independent
  // accumulator so totals are exact, but a timeline derives lane cursors
  // from charge ORDER — fusion and the async model are exclusive.
  RAMR_REQUIRE(clock_->timeline() == nullptr,
               "launch fusion requires the synchronous timing model "
               "(detach the Timeline first)");
  ++fusion_depth_;
}

void Device::end_launch_fusion() {
  RAMR_REQUIRE(fusion_depth_ > 0, "launch fusion scope underflow");
  if (--fusion_depth_ > 0) {
    return;
  }
  for (const FusionGroup& g : fusion_groups_) {
    const KernelCost cost{g.flops_per_thread, g.bytes_per_thread};
    const double seconds = modeled_kernel_seconds(g.threads, cost);
    ++launch_count_;
    ++launch_count_by_tag_[static_cast<std::size_t>(g.tag)];
    kernel_seconds_ += seconds;
    if (ChargeListener* listener = clock_->listener()) {
      listener->on_kernel_launch(static_cast<int>(g.tag));
    }
    clock_->charge_to(g.component, seconds);
    ++fusion_stats_.groups_flushed;
    fusion_stats_.fused_seconds += seconds;
  }
  fusion_groups_.clear();
}

void Device::charge_scalar_readback() {
  if (spec_.is_accelerator) {
    ++transfers_.d2h_scalar_count;
    charge_crossing(/*h2d=*/false, sizeof(double));
  }
}

void Device::charge_reduction(std::int64_t n, double bytes_per_item) {
  KernelCost cost;
  cost.flops_per_thread = 1.0;
  cost.bytes_per_thread = bytes_per_item;
  charge_kernel(n, cost);
  // Final partial-block reduction and result readback for accelerators is
  // a scalar D2H transfer; charged by the caller via memcpy_d2h when it
  // actually reads the value.
}

}  // namespace ramr::vgpu
