#include "hydro/kernels.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ramr::hydro {

using mesh::Box;

namespace {

double sign(double magnitude, double s) {
  return s >= 0.0 ? std::fabs(magnitude) : -std::fabs(magnitude);
}

/// Kernel cost from per-thread flop count and the number of doubles the
/// kernel logically reads+writes per thread. The factor ~3 on top of
/// 8 bytes/double calibrates for the imperfect reuse and coalescing of
/// real stencil kernels, which sustain ~1/3 of STREAM bandwidth on both
/// the K20x and the host processors (so backend ratios are unaffected).
constexpr double kEffectiveBytesPerDouble = 24.0;

constexpr vgpu::KernelCost hydro_cost(double flops, double doubles) {
  return vgpu::KernelCost{flops, doubles * kEffectiveBytesPerDouble};
}

}  // namespace

void ideal_gas(vgpu::Device& dev, vgpu::Stream& s, const Box& box,
               View density, View energy, View pressure, View soundspeed) {
  dev.launch2d(s, box.lower().i, box.lower().j, box.width(), box.height(),
               hydro_cost(8.0, 4.0), [=](int i, int j) {
                 const double v = 1.0 / density(i, j);
                 const double p =
                     (Constants::gamma - 1.0) * density(i, j) * energy(i, j);
                 const double pressure_by_energy =
                     (Constants::gamma - 1.0) * density(i, j);
                 const double pressure_by_volume = -density(i, j) * p;
                 // c^2 = v^2 (p * dp/de - dp/dv) = gamma p / rho.
                 const double ss2 =
                     v * v * (p * pressure_by_energy - pressure_by_volume);
                 pressure(i, j) = p;
                 soundspeed(i, j) = std::sqrt(ss2);
               });
}

void viscosity_kernel(vgpu::Device& dev, vgpu::Stream& s, const Box& box,
                      const CellGeom& g, View density0, View pressure,
                      View viscosity, View xvel0, View yvel0) {
  const double dx = g.dx;
  const double dy = g.dy;
  dev.launch2d(
      s, box.lower().i, box.lower().j, box.width(), box.height(),
      hydro_cost(45.0, 14.0), [=](int i, int j) {
        const double ugrad = (xvel0(i + 1, j) + xvel0(i + 1, j + 1)) -
                             (xvel0(i, j) + xvel0(i, j + 1));
        const double vgrad = (yvel0(i, j + 1) + yvel0(i + 1, j + 1)) -
                             (yvel0(i, j) + yvel0(i + 1, j));
        const double div = dx * ugrad + dy * vgrad;
        const double strain2 =
            0.5 * (xvel0(i, j + 1) + xvel0(i + 1, j + 1) - xvel0(i, j) -
                   xvel0(i + 1, j)) / dy +
            0.5 * (yvel0(i + 1, j) + yvel0(i + 1, j + 1) - yvel0(i, j) -
                   yvel0(i, j + 1)) / dx;
        double pgradx = (pressure(i + 1, j) - pressure(i - 1, j)) / (2.0 * dx);
        double pgrady = (pressure(i, j + 1) - pressure(i, j - 1)) / (2.0 * dy);
        const double pgradx2 = pgradx * pgradx;
        const double pgrady2 = pgrady * pgrady;
        const double limiter =
            ((0.5 * ugrad / dx) * pgradx2 + (0.5 * vgrad / dy) * pgrady2 +
             strain2 * pgradx * pgrady) /
            std::max(pgradx2 + pgrady2, Constants::g_small);
        if (limiter > 0.0 || div >= 0.0) {
          viscosity(i, j) = 0.0;
          return;
        }
        pgradx = sign(std::max(Constants::g_small, std::fabs(pgradx)), pgradx);
        pgrady = sign(std::max(Constants::g_small, std::fabs(pgrady)), pgrady);
        const double pgrad = std::sqrt(pgradx * pgradx + pgrady * pgrady);
        const double xgrad = std::fabs(dx * pgrad / pgradx);
        const double ygrad = std::fabs(dy * pgrad / pgrady);
        const double grad = std::min(xgrad, ygrad);
        const double grad2 = grad * grad;
        viscosity(i, j) = 2.0 * density0(i, j) * grad2 * limiter * limiter;
      });
}

double calc_dt(vgpu::Device& dev, vgpu::Stream& s, const Box& box,
               const CellGeom& g, View density0, View soundspeed,
               View viscosity, View xvel0, View yvel0) {
  const double dx = g.dx;
  const double dy = g.dy;
  const double volume = g.volume();
  const double xarea = g.xarea();
  const double yarea = g.yarea();
  const int ilo = box.lower().i;
  const int jlo = box.lower().j;
  const int w = box.width();
  return dev.reduce_min(
      s, box.size(), hydro_cost(40.0, 9.0), [=](std::int64_t t) {
        const int i = ilo + static_cast<int>(t % w);
        const int j = jlo + static_cast<int>(t / w);
        double cc = soundspeed(i, j) * soundspeed(i, j);
        cc += 2.0 * viscosity(i, j) / density0(i, j);
        cc = std::max(std::sqrt(cc), Constants::g_small);
        const double dtct = Constants::dtc_safe * std::min(dx, dy) / cc;
        double div = 0.0;
        double dv1 = (xvel0(i, j) + xvel0(i, j + 1)) * xarea;
        double dv2 = (xvel0(i + 1, j) + xvel0(i + 1, j + 1)) * xarea;
        div += dv2 - dv1;
        const double dtut =
            Constants::dtu_safe * 2.0 * volume /
            std::max({std::fabs(dv1), std::fabs(dv2), Constants::g_small * volume});
        dv1 = (yvel0(i, j) + yvel0(i + 1, j)) * yarea;
        dv2 = (yvel0(i, j + 1) + yvel0(i + 1, j + 1)) * yarea;
        div += dv2 - dv1;
        const double dtvt =
            Constants::dtv_safe * 2.0 * volume /
            std::max({std::fabs(dv1), std::fabs(dv2), Constants::g_small * volume});
        div /= (2.0 * volume);
        const double dtdivt = (div < -Constants::g_small)
                                  ? Constants::dtdiv_safe * (-1.0 / div)
                                  : Constants::g_big;
        return std::min({dtct, dtut, dtvt, dtdivt});
      });
}

void pdv(vgpu::Device& dev, vgpu::Stream& s, const Box& box, const CellGeom& g,
         double dt, bool predict, View xvel0, View yvel0, View xvel1,
         View yvel1, View density0, View density1, View energy0, View energy1,
         View pressure, View viscosity) {
  const double volume = g.volume();
  const double xarea = g.xarea();
  const double yarea = g.yarea();
  const vgpu::KernelCost cost = hydro_cost(40.0, 16.0);
  if (predict) {
    dev.launch2d(
        s, box.lower().i, box.lower().j, box.width(), box.height(), cost,
        [=](int i, int j) {
          const double left =
              xarea * (xvel0(i, j) + xvel0(i, j + 1) + xvel0(i, j) +
                       xvel0(i, j + 1)) * 0.25 * dt * 0.5;
          const double right =
              xarea * (xvel0(i + 1, j) + xvel0(i + 1, j + 1) + xvel0(i + 1, j) +
                       xvel0(i + 1, j + 1)) * 0.25 * dt * 0.5;
          const double bottom =
              yarea * (yvel0(i, j) + yvel0(i + 1, j) + yvel0(i, j) +
                       yvel0(i + 1, j)) * 0.25 * dt * 0.5;
          const double top =
              yarea * (yvel0(i, j + 1) + yvel0(i + 1, j + 1) + yvel0(i, j + 1) +
                       yvel0(i + 1, j + 1)) * 0.25 * dt * 0.5;
          const double total_flux = right - left + top - bottom;
          const double volume_change = volume / (volume + total_flux);
          const double recip_volume = 1.0 / volume;
          const double energy_change =
              (pressure(i, j) / density0(i, j) +
               viscosity(i, j) / density0(i, j)) * total_flux * recip_volume;
          energy1(i, j) = energy0(i, j) - energy_change;
          density1(i, j) = density0(i, j) * volume_change;
        });
  } else {
    dev.launch2d(
        s, box.lower().i, box.lower().j, box.width(), box.height(), cost,
        [=](int i, int j) {
          const double left =
              xarea * (xvel0(i, j) + xvel0(i, j + 1) + xvel1(i, j) +
                       xvel1(i, j + 1)) * 0.25 * dt;
          const double right =
              xarea * (xvel0(i + 1, j) + xvel0(i + 1, j + 1) + xvel1(i + 1, j) +
                       xvel1(i + 1, j + 1)) * 0.25 * dt;
          const double bottom =
              yarea * (yvel0(i, j) + yvel0(i + 1, j) + yvel1(i, j) +
                       yvel1(i + 1, j)) * 0.25 * dt;
          const double top =
              yarea * (yvel0(i, j + 1) + yvel0(i + 1, j + 1) + yvel1(i, j + 1) +
                       yvel1(i + 1, j + 1)) * 0.25 * dt;
          const double total_flux = right - left + top - bottom;
          const double volume_change = volume / (volume + total_flux);
          const double recip_volume = 1.0 / volume;
          const double energy_change =
              (pressure(i, j) / density0(i, j) +
               viscosity(i, j) / density0(i, j)) * total_flux * recip_volume;
          energy1(i, j) = energy0(i, j) - energy_change;
          density1(i, j) = density0(i, j) * volume_change;
        });
  }
}

void accelerate(vgpu::Device& dev, vgpu::Stream& s, const Box& box,
                const CellGeom& g, double dt, View density0, View pressure,
                View viscosity, View xvel0, View yvel0, View xvel1,
                View yvel1) {
  const double halfdt = 0.5 * dt;
  const double volume = g.volume();
  const double xarea = g.xarea();
  const double yarea = g.yarea();
  const Box nodes = mesh::to_centering(box, mesh::Centering::kNode);
  dev.launch2d(
      s, nodes.lower().i, nodes.lower().j, nodes.width(), nodes.height(),
      hydro_cost(45.0, 18.0), [=](int i, int j) {
        const double nodal_mass =
            (density0(i - 1, j - 1) * volume + density0(i, j - 1) * volume +
             density0(i, j) * volume + density0(i - 1, j) * volume) * 0.25;
        const double stepbymass = halfdt / nodal_mass;
        double xv =
            xvel0(i, j) -
            stepbymass * (xarea * (pressure(i, j) - pressure(i - 1, j)) +
                          xarea * (pressure(i, j - 1) - pressure(i - 1, j - 1)));
        double yv =
            yvel0(i, j) -
            stepbymass * (yarea * (pressure(i, j) - pressure(i, j - 1)) +
                          yarea * (pressure(i - 1, j) - pressure(i - 1, j - 1)));
        xv -= stepbymass * (xarea * (viscosity(i, j) - viscosity(i - 1, j)) +
                            xarea * (viscosity(i, j - 1) -
                                     viscosity(i - 1, j - 1)));
        yv -= stepbymass * (yarea * (viscosity(i, j) - viscosity(i, j - 1)) +
                            yarea * (viscosity(i - 1, j) -
                                     viscosity(i - 1, j - 1)));
        xvel1(i, j) = xv;
        yvel1(i, j) = yv;
      });
}

void flux_calc(vgpu::Device& dev, vgpu::Stream& s, const Box& box,
               const CellGeom& g, double dt, View xvel0, View yvel0, View xvel1,
               View yvel1, View vol_flux_x, View vol_flux_y) {
  const double xarea = g.xarea();
  const double yarea = g.yarea();
  const Box xf = mesh::to_centering(box, mesh::Centering::kXSide);
  dev.launch2d(s, xf.lower().i, xf.lower().j, xf.width(), xf.height(),
               hydro_cost(6.0, 5.0), [=](int i, int j) {
                 vol_flux_x(i, j) = 0.25 * dt * xarea *
                                    (xvel0(i, j) + xvel0(i, j + 1) +
                                     xvel1(i, j) + xvel1(i, j + 1));
               });
  const Box yf = mesh::to_centering(box, mesh::Centering::kYSide);
  dev.launch2d(s, yf.lower().i, yf.lower().j, yf.width(), yf.height(),
               hydro_cost(6.0, 5.0), [=](int i, int j) {
                 vol_flux_y(i, j) = 0.25 * dt * yarea *
                                    (yvel0(i, j) + yvel0(i + 1, j) +
                                     yvel1(i, j) + yvel1(i + 1, j));
               });
}

void advec_cell(vgpu::Device& dev, vgpu::Stream& s, const Box& box,
                const CellGeom& g, bool x_direction, int sweep_number,
                View density1, View energy1, View vol_flux_x, View vol_flux_y,
                View mass_flux_x, View mass_flux_y, View pre_vol, View post_vol,
                View ener_flux) {
  constexpr double one_by_six = 1.0 / 6.0;
  const double volume = g.volume();
  const int xmin = box.lower().i;
  const int xmax = box.upper().i;
  const int ymin = box.lower().j;
  const int ymax = box.upper().j;

  // Stage 1: pre/post volumes over a 2-cell halo.
  const Box vbox = box.grow(2);
  if (x_direction) {
    if (sweep_number == 1) {
      dev.launch2d(s, vbox.lower().i, vbox.lower().j, vbox.width(),
                   vbox.height(), hydro_cost(8.0, 6.0),
                   [=](int i, int j) {
                     pre_vol(i, j) =
                         volume + (vol_flux_x(i + 1, j) - vol_flux_x(i, j) +
                                   vol_flux_y(i, j + 1) - vol_flux_y(i, j));
                     post_vol(i, j) =
                         pre_vol(i, j) - (vol_flux_x(i + 1, j) - vol_flux_x(i, j));
                   });
    } else {
      dev.launch2d(s, vbox.lower().i, vbox.lower().j, vbox.width(),
                   vbox.height(), hydro_cost(4.0, 4.0),
                   [=](int i, int j) {
                     pre_vol(i, j) =
                         volume + vol_flux_x(i + 1, j) - vol_flux_x(i, j);
                     post_vol(i, j) = volume;
                   });
    }
    // Stage 2: second-order van Leer fluxes on x faces xmin..xmax+2
    // (CloverLeaf's j = x_min, x_max+2 loop bounds).
    dev.launch2d(
        s, xmin, ymin, box.width() + 2, box.height(),
        hydro_cost(45.0, 14.0), [=](int i, int j) {
          int upwind, donor, downwind, dif;
          if (vol_flux_x(i, j) > 0.0) {
            upwind = i - 2;
            donor = i - 1;
            downwind = i;
            dif = donor;
          } else {
            upwind = std::min(i + 1, xmax + 2);
            donor = i;
            downwind = i - 1;
            dif = upwind;
          }
          (void)dif;  // uniform mesh: vertexdx(i)/vertexdx(dif) == 1
          const double sigmat = std::fabs(vol_flux_x(i, j)) / pre_vol(donor, j);
          const double sigma3 = (1.0 + sigmat);
          const double sigma4 = 2.0 - sigmat;
          double diffuw = density1(donor, j) - density1(upwind, j);
          double diffdw = density1(downwind, j) - density1(donor, j);
          double limiter = 0.0;
          if (diffuw * diffdw > 0.0) {
            limiter = (1.0 - sigmat) * sign(1.0, diffdw) *
                      std::min({std::fabs(diffuw), std::fabs(diffdw),
                                one_by_six * (sigma3 * std::fabs(diffuw) +
                                              sigma4 * std::fabs(diffdw))});
          }
          mass_flux_x(i, j) = vol_flux_x(i, j) * (density1(donor, j) + limiter);
          const double sigmam =
              std::fabs(mass_flux_x(i, j)) / (density1(donor, j) * pre_vol(donor, j));
          diffuw = energy1(donor, j) - energy1(upwind, j);
          diffdw = energy1(downwind, j) - energy1(donor, j);
          limiter = 0.0;
          if (diffuw * diffdw > 0.0) {
            limiter = (1.0 - sigmam) * sign(1.0, diffdw) *
                      std::min({std::fabs(diffuw), std::fabs(diffdw),
                                one_by_six * (sigma3 * std::fabs(diffuw) +
                                              sigma4 * std::fabs(diffdw))});
          }
          ener_flux(i, j) = mass_flux_x(i, j) * (energy1(donor, j) + limiter);
        });
    // Stage 3: conservative cell update.
    dev.launch2d(
        s, xmin, ymin, box.width(), box.height(),
        hydro_cost(14.0, 9.0), [=](int i, int j) {
          const double pre_mass = density1(i, j) * pre_vol(i, j);
          const double post_mass =
              pre_mass + mass_flux_x(i, j) - mass_flux_x(i + 1, j);
          const double post_ener =
              (energy1(i, j) * pre_mass + ener_flux(i, j) - ener_flux(i + 1, j)) /
              post_mass;
          const double advec_vol =
              pre_vol(i, j) + vol_flux_x(i, j) - vol_flux_x(i + 1, j);
          density1(i, j) = post_mass / advec_vol;
          energy1(i, j) = post_ener;
        });
  } else {
    if (sweep_number == 1) {
      dev.launch2d(s, vbox.lower().i, vbox.lower().j, vbox.width(),
                   vbox.height(), hydro_cost(8.0, 6.0),
                   [=](int i, int j) {
                     pre_vol(i, j) =
                         volume + (vol_flux_y(i, j + 1) - vol_flux_y(i, j) +
                                   vol_flux_x(i + 1, j) - vol_flux_x(i, j));
                     post_vol(i, j) =
                         pre_vol(i, j) - (vol_flux_y(i, j + 1) - vol_flux_y(i, j));
                   });
    } else {
      dev.launch2d(s, vbox.lower().i, vbox.lower().j, vbox.width(),
                   vbox.height(), hydro_cost(4.0, 4.0),
                   [=](int i, int j) {
                     pre_vol(i, j) =
                         volume + vol_flux_y(i, j + 1) - vol_flux_y(i, j);
                     post_vol(i, j) = volume;
                   });
    }
    dev.launch2d(
        s, xmin, ymin, box.width(), box.height() + 2,
        hydro_cost(45.0, 14.0), [=](int i, int j) {
          int upwind, donor, downwind, dif;
          if (vol_flux_y(i, j) > 0.0) {
            upwind = j - 2;
            donor = j - 1;
            downwind = j;
            dif = donor;
          } else {
            upwind = std::min(j + 1, ymax + 2);
            donor = j;
            downwind = j - 1;
            dif = upwind;
          }
          (void)dif;
          const double sigmat = std::fabs(vol_flux_y(i, j)) / pre_vol(i, donor);
          const double sigma3 = (1.0 + sigmat);
          const double sigma4 = 2.0 - sigmat;
          double diffuw = density1(i, donor) - density1(i, upwind);
          double diffdw = density1(i, downwind) - density1(i, donor);
          double limiter = 0.0;
          if (diffuw * diffdw > 0.0) {
            limiter = (1.0 - sigmat) * sign(1.0, diffdw) *
                      std::min({std::fabs(diffuw), std::fabs(diffdw),
                                one_by_six * (sigma3 * std::fabs(diffuw) +
                                              sigma4 * std::fabs(diffdw))});
          }
          mass_flux_y(i, j) = vol_flux_y(i, j) * (density1(i, donor) + limiter);
          const double sigmam =
              std::fabs(mass_flux_y(i, j)) / (density1(i, donor) * pre_vol(i, donor));
          diffuw = energy1(i, donor) - energy1(i, upwind);
          diffdw = energy1(i, downwind) - energy1(i, donor);
          limiter = 0.0;
          if (diffuw * diffdw > 0.0) {
            limiter = (1.0 - sigmam) * sign(1.0, diffdw) *
                      std::min({std::fabs(diffuw), std::fabs(diffdw),
                                one_by_six * (sigma3 * std::fabs(diffuw) +
                                              sigma4 * std::fabs(diffdw))});
          }
          ener_flux(i, j) = mass_flux_y(i, j) * (energy1(i, donor) + limiter);
        });
    dev.launch2d(
        s, xmin, ymin, box.width(), box.height(),
        hydro_cost(14.0, 9.0), [=](int i, int j) {
          const double pre_mass = density1(i, j) * pre_vol(i, j);
          const double post_mass =
              pre_mass + mass_flux_y(i, j) - mass_flux_y(i, j + 1);
          const double post_ener =
              (energy1(i, j) * pre_mass + ener_flux(i, j) - ener_flux(i, j + 1)) /
              post_mass;
          const double advec_vol =
              pre_vol(i, j) + vol_flux_y(i, j) - vol_flux_y(i, j + 1);
          density1(i, j) = post_mass / advec_vol;
          energy1(i, j) = post_ener;
        });
  }
}

void advec_mom(vgpu::Device& dev, vgpu::Stream& s, const Box& box,
               const CellGeom& g, bool x_direction, int mom_sweep, View vel1,
               View density1, View vol_flux_x, View vol_flux_y,
               View mass_flux_x, View mass_flux_y, View node_flux,
               View node_mass_post, View node_mass_pre, View mom_flux,
               View pre_vol, View post_vol) {
  const double volume = g.volume();
  const int xmin = box.lower().i;
  const int xmax = box.upper().i;
  const int ymin = box.lower().j;
  const int ymax = box.upper().j;
  const double dx = g.dx;
  const double dy = g.dy;

  // Stage 1: cell volumes seen by this sweep, over a 2-cell halo.
  const Box vbox = box.grow(2);
  dev.launch2d(s, vbox.lower().i, vbox.lower().j, vbox.width(), vbox.height(),
               hydro_cost(6.0, 6.0), [=](int i, int j) {
                 switch (mom_sweep) {
                   case 1:  // x sweep, first
                     post_vol(i, j) =
                         volume + vol_flux_y(i, j + 1) - vol_flux_y(i, j);
                     pre_vol(i, j) = post_vol(i, j) + vol_flux_x(i + 1, j) -
                                     vol_flux_x(i, j);
                     break;
                   case 2:  // y sweep, first
                     post_vol(i, j) =
                         volume + vol_flux_x(i + 1, j) - vol_flux_x(i, j);
                     pre_vol(i, j) = post_vol(i, j) + vol_flux_y(i, j + 1) -
                                     vol_flux_y(i, j);
                     break;
                   case 3:  // x sweep, second
                     post_vol(i, j) = volume;
                     pre_vol(i, j) = post_vol(i, j) + vol_flux_y(i, j + 1) -
                                     vol_flux_y(i, j);
                     break;
                   default:  // 4: y sweep, second
                     post_vol(i, j) = volume;
                     pre_vol(i, j) = post_vol(i, j) + vol_flux_x(i + 1, j) -
                                     vol_flux_x(i, j);
                     break;
                 }
               });

  if (x_direction) {
    // Node fluxes over [xmin-2, xmax+2] (CloverLeaf bounds), node masses
    // over [xmin-1, xmax+2]; ghost data depth 2 covers every read.
    dev.launch2d(s, xmin - 2, ymin, box.width() + 4, box.height() + 1,
                 hydro_cost(10.0, 10.0), [=](int i, int j) {
                   node_flux(i, j) =
                       0.25 * (mass_flux_x(i, j - 1) + mass_flux_x(i, j) +
                               mass_flux_x(i + 1, j - 1) + mass_flux_x(i + 1, j));
                 });
    dev.launch2d(s, xmin - 1, ymin, box.width() + 3, box.height() + 1,
                 hydro_cost(10.0, 10.0), [=](int i, int j) {
                   node_mass_post(i, j) =
                       0.25 * (density1(i, j - 1) * post_vol(i, j - 1) +
                               density1(i, j) * post_vol(i, j) +
                               density1(i - 1, j - 1) * post_vol(i - 1, j - 1) +
                               density1(i - 1, j) * post_vol(i - 1, j));
                 });
    dev.launch2d(s, xmin - 1, ymin, box.width() + 3, box.height() + 1,
                 hydro_cost(3.0, 4.0), [=](int i, int j) {
                   node_mass_pre(i, j) = node_mass_post(i, j) -
                                         node_flux(i - 1, j) + node_flux(i, j);
                 });
    // Monotonic momentum flux.
    dev.launch2d(
        s, xmin - 1, ymin, box.width() + 2, box.height() + 1,
        hydro_cost(30.0, 8.0), [=](int i, int j) {
          int upwind, donor, downwind, dif;
          if (node_flux(i, j) < 0.0) {
            // No patch-local clamp: i+2 <= xmax+3 is inside the exchanged
            // ghost nodes, and clamping here would make the two patches
            // sharing a seam node disagree on its value.
            upwind = i + 2;
            donor = i + 1;
            downwind = i;
            dif = donor;
          } else {
            upwind = i - 1;
            donor = i;
            downwind = i + 1;
            dif = upwind;
          }
          (void)dif;
          const double sigma =
              std::fabs(node_flux(i, j)) / node_mass_pre(donor, j);
          const double width = dx;
          const double vdiffuw = vel1(donor, j) - vel1(upwind, j);
          const double vdiffdw = vel1(downwind, j) - vel1(donor, j);
          double limiter = 0.0;
          if (vdiffuw * vdiffdw > 0.0) {
            const double auw = std::fabs(vdiffuw);
            const double adw = std::fabs(vdiffdw);
            const double wind = (vdiffdw <= 0.0) ? -1.0 : 1.0;
            limiter =
                wind *
                std::min({width * ((2.0 - sigma) * adw / width +
                                   (1.0 + sigma) * auw / dx) / 6.0,
                          auw, adw});
          }
          const double advec_vel = vel1(donor, j) + (1.0 - sigma) * limiter;
          mom_flux(i, j) = advec_vel * node_flux(i, j);
        });
    // Velocity update on the patch's nodes.
    dev.launch2d(s, xmin, ymin, box.width() + 1, box.height() + 1,
                 hydro_cost(6.0, 5.0), [=](int i, int j) {
                   vel1(i, j) = (vel1(i, j) * node_mass_pre(i, j) +
                                 mom_flux(i - 1, j) - mom_flux(i, j)) /
                                node_mass_post(i, j);
                 });
  } else {
    dev.launch2d(s, xmin, ymin - 2, box.width() + 1, box.height() + 4,
                 hydro_cost(10.0, 10.0), [=](int i, int j) {
                   node_flux(i, j) =
                       0.25 * (mass_flux_y(i - 1, j) + mass_flux_y(i, j) +
                               mass_flux_y(i - 1, j + 1) + mass_flux_y(i, j + 1));
                 });
    dev.launch2d(s, xmin, ymin - 1, box.width() + 1, box.height() + 3,
                 hydro_cost(10.0, 10.0), [=](int i, int j) {
                   node_mass_post(i, j) =
                       0.25 * (density1(i, j - 1) * post_vol(i, j - 1) +
                               density1(i, j) * post_vol(i, j) +
                               density1(i - 1, j - 1) * post_vol(i - 1, j - 1) +
                               density1(i - 1, j) * post_vol(i - 1, j));
                 });
    dev.launch2d(s, xmin, ymin - 1, box.width() + 1, box.height() + 3,
                 hydro_cost(3.0, 4.0), [=](int i, int j) {
                   node_mass_pre(i, j) = node_mass_post(i, j) -
                                         node_flux(i, j - 1) + node_flux(i, j);
                 });
    dev.launch2d(
        s, xmin, ymin - 1, box.width() + 1, box.height() + 2,
        hydro_cost(30.0, 8.0), [=](int i, int j) {
          int upwind, donor, downwind, dif;
          if (node_flux(i, j) < 0.0) {
            upwind = j + 2;  // <= ymax+3: inside exchanged ghost nodes
            donor = j + 1;
            downwind = j;
            dif = donor;
          } else {
            upwind = j - 1;
            donor = j;
            downwind = j + 1;
            dif = upwind;
          }
          (void)dif;
          const double sigma =
              std::fabs(node_flux(i, j)) / node_mass_pre(i, donor);
          const double width = dy;
          const double vdiffuw = vel1(i, donor) - vel1(i, upwind);
          const double vdiffdw = vel1(i, downwind) - vel1(i, donor);
          double limiter = 0.0;
          if (vdiffuw * vdiffdw > 0.0) {
            const double auw = std::fabs(vdiffuw);
            const double adw = std::fabs(vdiffdw);
            const double wind = (vdiffdw <= 0.0) ? -1.0 : 1.0;
            limiter =
                wind *
                std::min({width * ((2.0 - sigma) * adw / width +
                                   (1.0 + sigma) * auw / dy) / 6.0,
                          auw, adw});
          }
          const double advec_vel = vel1(i, donor) + (1.0 - sigma) * limiter;
          mom_flux(i, j) = advec_vel * node_flux(i, j);
        });
    dev.launch2d(s, xmin, ymin, box.width() + 1, box.height() + 1,
                 hydro_cost(6.0, 5.0), [=](int i, int j) {
                   vel1(i, j) = (vel1(i, j) * node_mass_pre(i, j) +
                                 mom_flux(i, j - 1) - mom_flux(i, j)) /
                                node_mass_post(i, j);
                 });
  }
}

void reset_field(vgpu::Device& dev, vgpu::Stream& s, const Box& box,
                 View density0, View density1, View energy0, View energy1,
                 View xvel0, View xvel1, View yvel0, View yvel1) {
  dev.launch2d(s, box.lower().i, box.lower().j, box.width(), box.height(),
               hydro_cost(0.0, 8.0), [=](int i, int j) {
                 density0(i, j) = density1(i, j);
                 energy0(i, j) = energy1(i, j);
               });
  const Box nodes = mesh::to_centering(box, mesh::Centering::kNode);
  dev.launch2d(s, nodes.lower().i, nodes.lower().j, nodes.width(),
               nodes.height(), hydro_cost(0.0, 8.0),
               [=](int i, int j) {
                 xvel0(i, j) = xvel1(i, j);
                 yvel0(i, j) = yvel1(i, j);
               });
}

FieldSummary field_summary(vgpu::Device& dev, vgpu::Stream& s, const Box& box,
                           const CellGeom& g, View density0, View energy0,
                           View xvel0, View yvel0) {
  const double volume = g.volume();
  const int ilo = box.lower().i;
  const int jlo = box.lower().j;
  const int w = box.width();
  // Three reductions expressed through reduce_min on negated partial sums
  // would be awkward; use one pass with a mutex-combined accumulator and
  // charge it as a single summary kernel (CloverLeaf's field_summary).
  dev.charge_reduction(box.size() * 4, 8.0);
  std::mutex m;
  FieldSummary total;
  util::ThreadPool::global().parallel_for(
      box.size(), [&](std::int64_t begin, std::int64_t end) {
        FieldSummary local;
        for (std::int64_t t = begin; t < end; ++t) {
          const int i = ilo + static_cast<int>(t % w);
          const int j = jlo + static_cast<int>(t / w);
          const double cell_mass = density0(i, j) * volume;
          local.mass += cell_mass;
          local.internal_energy += cell_mass * energy0(i, j);
          double vsqrd = 0.0;
          for (int kj = j; kj <= j + 1; ++kj) {
            for (int ki = i; ki <= i + 1; ++ki) {
              vsqrd += 0.25 * (xvel0(ki, kj) * xvel0(ki, kj) +
                               yvel0(ki, kj) * yvel0(ki, kj));
            }
          }
          local.kinetic_energy += cell_mass * 0.5 * vsqrd;
        }
        std::lock_guard<std::mutex> lock(m);
        total.mass += local.mass;
        total.internal_energy += local.internal_energy;
        total.kinetic_energy += local.kinetic_energy;
      });
  dev.charge_scalar_readback();
  (void)s;
  return total;
}

}  // namespace ramr::hydro
