#include "hydro/kernels.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ramr::hydro {

using mesh::Box;

namespace {

double sign(double magnitude, double s) {
  return s >= 0.0 ? std::fabs(magnitude) : -std::fabs(magnitude);
}

/// Kernel cost from per-thread flop count and the number of doubles the
/// kernel logically reads+writes per thread. The factor ~3 on top of
/// 8 bytes/double calibrates for the imperfect reuse and coalescing of
/// real stencil kernels, which sustain ~1/3 of STREAM bandwidth on both
/// the K20x and the host processors (so backend ratios are unaffected).
constexpr double kEffectiveBytesPerDouble = 24.0;

constexpr vgpu::KernelCost hydro_cost(double flops, double doubles) {
  return vgpu::KernelCost{flops, doubles * kEffectiveBytesPerDouble};
}

/// One fused launch's segments for one sub-stage and sweep part.
///
/// kAll: one segment per patch covering region(box) (empty regions keep
/// their slot so the default argument ids index the argument spans).
/// kInterior: the same slots clipped to the patch cell box shrunk by
/// `depth` — at the depths declared per sub-stage below, an interior
/// element's reads stay off every ghost and seam node/side line an
/// in-flight exchange could rewrite, and off everything an earlier
/// sub-stage computes outside ITS interior. kRind: the exact complement
/// (up to four shell pieces per patch, each carrying the patch's
/// argument id). Interior + rind partition kAll exactly, whatever the
/// depth and however thin the patch (an interior-free patch is all
/// rind), so running kInterior then kRind is bit-identical to kAll.
template <typename RegionFn>
vgpu::SegmentTable make_segments(std::span<const Box> boxes, SweepPart part,
                                 int depth, RegionFn&& region) {
  vgpu::SegmentTable t;
  for (std::size_t p = 0; p < boxes.size(); ++p) {
    const Box r = region(boxes[p]);
    if (part == SweepPart::kAll) {
      t.add(r.lower().i, r.lower().j, r.width(), r.height());
      continue;
    }
    const Box core = r.intersect(boxes[p].shrink(depth));
    if (part == SweepPart::kInterior) {
      t.add(core.lower().i, core.lower().j, core.width(), core.height(), p);
      continue;
    }
    for (const Box& piece : mesh::rind_pieces(r, core).piece) {
      if (!piece.empty()) {
        t.add(piece.lower().i, piece.lower().j, piece.width(), piece.height(),
              p);
      }
    }
  }
  return t;
}

vgpu::SegmentTable cell_segments(std::span<const Box> boxes,
                                 SweepPart part = SweepPart::kAll,
                                 int depth = 0) {
  return make_segments(boxes, part, depth, [](const Box& b) { return b; });
}

// Rind depths per stage sub-launch, derived from the stencils (offsets
// into variables an overlapped exchange may have in flight, chained
// reads of earlier sub-launches' outputs, and the in-place update
// hazards of the advection stages). A read of an in-flight CELL variable
// at offset s needs depth >= s (ghosts start outside the box); a read of
// an in-flight NODE/SIDE variable must additionally stay off the seam
// lines (first/last index) that a same-level exchange rewrites. A read
// of sub-launch m's output at offset s from sub-launch k's interior
// needs depth_k >= depth_m + s, and the advection updates that rewrite
// their own inputs in place need the update's interior two deeper than
// the flux sweep's rind reads reach (kernels below note the specific
// hazard). Depth 0 means the whole region is interior (pointwise
// stages: their rind is empty and the split is free).
constexpr int kViscosityDepth = 1;   // pressure (in flight) at +-1
// The corrector and flux sweeps may run inside the window that overlaps
// the acceleration stage: their velocity reads at node offsets 0..+1
// must stay within the acceleration's depth-1 interior — depth 2.
constexpr int kPdvDepth = 2;
constexpr int kAccelerateDepth = 1;  // pressure (in flight) at -1..0
constexpr int kFluxCalcDepth = 2;    // velocity reads chained off accelerate
// advec_cell: volume sweep reads in-flight vol_flux seam faces at 0..+1;
// flux sweep reads in-flight density1/energy1 at -2..+1 and the volume
// sweep's pre_vol at -1..0; the cell update reads the flux sweep's
// output at 0..+1 AND rewrites density1/energy1 that the flux sweep's
// rind still has to read at up to depth 3 — hence 4, not 3.
constexpr int kAdvecCellVolDepth = 1;
constexpr int kAdvecCellFluxDepth = 2;
constexpr int kAdvecCellUpdateDepth = 4;
// advec_mom: the volume sweep reads only vol_flux, which no window
// overlapping advec_mom has in flight (it rides the pre-advection fill
// consumed by advec_cell), so its interior spans the whole patch box —
// required, since the node-mass sweep (depth 1) reads it at -1..0. The
// chain node_flux(1) -> node_mass_pre(2) -> mom_flux(3) -> velocity
// update adds one per link, and the update rewrites vel1 that the
// mom_flux rind still reads at up to depth 4 — hence 5.
constexpr int kAdvecMomVolDepth = 0;
constexpr int kAdvecMomNodeFluxDepth = 1;
constexpr int kAdvecMomNodeMassDepth = 1;
constexpr int kAdvecMomNodeMassPreDepth = 2;
constexpr int kAdvecMomFluxDepth = 3;
constexpr int kAdvecMomUpdateDepth = 5;
constexpr int kResetCellDepth = 0;   // pointwise cell copy
constexpr int kResetNodeDepth = 1;   // writes seam nodes

}  // namespace

void ideal_gas_batched(vgpu::Device& dev, vgpu::Stream& s,
                       std::span<const Box> boxes,
                       std::span<const IdealGasPatch> p, SweepPart part,
                       double gamma) {
  const IdealGasPatch* a = p.data();
  // Pointwise: depth 0, so the interior sweep is the whole stage.
  dev.launch_batched(
      s, cell_segments(boxes, part, 0), hydro_cost(8.0, 4.0),
      [=](std::size_t seg, int i, int j) {
        const IdealGasPatch& v = a[seg];
        const double vol = 1.0 / v.density(i, j);
        const double pr = (gamma - 1.0) * v.density(i, j) * v.energy(i, j);
        const double pressure_by_energy = (gamma - 1.0) * v.density(i, j);
        const double pressure_by_volume = -v.density(i, j) * pr;
        // c^2 = v^2 (p * dp/de - dp/dv) = gamma p / rho.
        const double ss2 =
            vol * vol * (pr * pressure_by_energy - pressure_by_volume);
        v.pressure(i, j) = pr;
        v.soundspeed(i, j) = std::sqrt(ss2);
      });
}

void ideal_gas(vgpu::Device& dev, vgpu::Stream& s, const Box& box,
               View density, View energy, View pressure, View soundspeed,
               double gamma) {
  const IdealGasPatch p{density, energy, pressure, soundspeed};
  ideal_gas_batched(dev, s, {&box, 1}, {&p, 1}, SweepPart::kAll, gamma);
}

void viscosity_batched(vgpu::Device& dev, vgpu::Stream& s,
                       std::span<const Box> boxes, const CellGeom& g,
                       std::span<const ViscosityPatch> p, SweepPart part) {
  const double dx = g.dx;
  const double dy = g.dy;
  const ViscosityPatch* a = p.data();
  dev.launch_batched(
      s, cell_segments(boxes, part, kViscosityDepth), hydro_cost(45.0, 14.0),
      [=](std::size_t seg, int i, int j) {
        const ViscosityPatch& v = a[seg];
        const double ugrad = (v.xvel0(i + 1, j) + v.xvel0(i + 1, j + 1)) -
                             (v.xvel0(i, j) + v.xvel0(i, j + 1));
        const double vgrad = (v.yvel0(i, j + 1) + v.yvel0(i + 1, j + 1)) -
                             (v.yvel0(i, j) + v.yvel0(i + 1, j));
        const double div = dx * ugrad + dy * vgrad;
        const double strain2 =
            0.5 * (v.xvel0(i, j + 1) + v.xvel0(i + 1, j + 1) - v.xvel0(i, j) -
                   v.xvel0(i + 1, j)) / dy +
            0.5 * (v.yvel0(i + 1, j) + v.yvel0(i + 1, j + 1) - v.yvel0(i, j) -
                   v.yvel0(i, j + 1)) / dx;
        double pgradx =
            (v.pressure(i + 1, j) - v.pressure(i - 1, j)) / (2.0 * dx);
        double pgrady =
            (v.pressure(i, j + 1) - v.pressure(i, j - 1)) / (2.0 * dy);
        const double pgradx2 = pgradx * pgradx;
        const double pgrady2 = pgrady * pgrady;
        const double limiter =
            ((0.5 * ugrad / dx) * pgradx2 + (0.5 * vgrad / dy) * pgrady2 +
             strain2 * pgradx * pgrady) /
            std::max(pgradx2 + pgrady2, Constants::g_small);
        if (limiter > 0.0 || div >= 0.0) {
          v.viscosity(i, j) = 0.0;
          return;
        }
        pgradx = sign(std::max(Constants::g_small, std::fabs(pgradx)), pgradx);
        pgrady = sign(std::max(Constants::g_small, std::fabs(pgrady)), pgrady);
        const double pgrad = std::sqrt(pgradx * pgradx + pgrady * pgrady);
        const double xgrad = std::fabs(dx * pgrad / pgradx);
        const double ygrad = std::fabs(dy * pgrad / pgrady);
        const double grad = std::min(xgrad, ygrad);
        const double grad2 = grad * grad;
        v.viscosity(i, j) =
            2.0 * v.density0(i, j) * grad2 * limiter * limiter;
      });
}

void viscosity_kernel(vgpu::Device& dev, vgpu::Stream& s, const Box& box,
                      const CellGeom& g, View density0, View pressure,
                      View viscosity, View xvel0, View yvel0) {
  const ViscosityPatch p{density0, pressure, viscosity, xvel0, yvel0};
  viscosity_batched(dev, s, {&box, 1}, g, {&p, 1});
}

double calc_dt_batched(vgpu::Device& dev, vgpu::Stream& s,
                       std::span<const Box> boxes, const CellGeom& g,
                       std::span<const CalcDtPatch> p) {
  const double dx = g.dx;
  const double dy = g.dy;
  const double volume = g.volume();
  const double xarea = g.xarea();
  const double yarea = g.yarea();
  const CalcDtPatch* a = p.data();
  return dev.reduce_min_batched(
      s, cell_segments(boxes), hydro_cost(40.0, 9.0),
      [=](std::size_t seg, int i, int j) {
        const CalcDtPatch& v = a[seg];
        double cc = v.soundspeed(i, j) * v.soundspeed(i, j);
        cc += 2.0 * v.viscosity(i, j) / v.density0(i, j);
        cc = std::max(std::sqrt(cc), Constants::g_small);
        const double dtct = Constants::dtc_safe * std::min(dx, dy) / cc;
        double div = 0.0;
        double dv1 = (v.xvel0(i, j) + v.xvel0(i, j + 1)) * xarea;
        double dv2 = (v.xvel0(i + 1, j) + v.xvel0(i + 1, j + 1)) * xarea;
        div += dv2 - dv1;
        const double dtut =
            Constants::dtu_safe * 2.0 * volume /
            std::max({std::fabs(dv1), std::fabs(dv2),
                      Constants::g_small * volume});
        dv1 = (v.yvel0(i, j) + v.yvel0(i + 1, j)) * yarea;
        dv2 = (v.yvel0(i, j + 1) + v.yvel0(i + 1, j + 1)) * yarea;
        div += dv2 - dv1;
        const double dtvt =
            Constants::dtv_safe * 2.0 * volume /
            std::max({std::fabs(dv1), std::fabs(dv2),
                      Constants::g_small * volume});
        div /= (2.0 * volume);
        const double dtdivt = (div < -Constants::g_small)
                                  ? Constants::dtdiv_safe * (-1.0 / div)
                                  : Constants::g_big;
        return std::min({dtct, dtut, dtvt, dtdivt});
      });
}

double calc_dt(vgpu::Device& dev, vgpu::Stream& s, const Box& box,
               const CellGeom& g, View density0, View soundspeed,
               View viscosity, View xvel0, View yvel0) {
  const CalcDtPatch p{density0, soundspeed, viscosity, xvel0, yvel0};
  return calc_dt_batched(dev, s, {&box, 1}, g, {&p, 1});
}

void pdv_batched(vgpu::Device& dev, vgpu::Stream& s,
                 std::span<const Box> boxes, const CellGeom& g, double dt,
                 bool predict, std::span<const PdvPatch> p, SweepPart part) {
  const double volume = g.volume();
  const double xarea = g.xarea();
  const double yarea = g.yarea();
  const vgpu::KernelCost cost = hydro_cost(40.0, 16.0);
  const vgpu::SegmentTable segs = cell_segments(boxes, part, kPdvDepth);
  const PdvPatch* a = p.data();
  if (predict) {
    dev.launch_batched(
        s, segs, cost, [=](std::size_t seg, int i, int j) {
          const PdvPatch& v = a[seg];
          const double left =
              xarea * (v.xvel0(i, j) + v.xvel0(i, j + 1) + v.xvel0(i, j) +
                       v.xvel0(i, j + 1)) * 0.25 * dt * 0.5;
          const double right =
              xarea * (v.xvel0(i + 1, j) + v.xvel0(i + 1, j + 1) +
                       v.xvel0(i + 1, j) + v.xvel0(i + 1, j + 1)) *
              0.25 * dt * 0.5;
          const double bottom =
              yarea * (v.yvel0(i, j) + v.yvel0(i + 1, j) + v.yvel0(i, j) +
                       v.yvel0(i + 1, j)) * 0.25 * dt * 0.5;
          const double top =
              yarea * (v.yvel0(i, j + 1) + v.yvel0(i + 1, j + 1) +
                       v.yvel0(i, j + 1) + v.yvel0(i + 1, j + 1)) *
              0.25 * dt * 0.5;
          const double total_flux = right - left + top - bottom;
          const double volume_change = volume / (volume + total_flux);
          const double recip_volume = 1.0 / volume;
          const double energy_change =
              (v.pressure(i, j) / v.density0(i, j) +
               v.viscosity(i, j) / v.density0(i, j)) *
              total_flux * recip_volume;
          v.energy1(i, j) = v.energy0(i, j) - energy_change;
          v.density1(i, j) = v.density0(i, j) * volume_change;
        });
  } else {
    dev.launch_batched(
        s, segs, cost, [=](std::size_t seg, int i, int j) {
          const PdvPatch& v = a[seg];
          const double left =
              xarea * (v.xvel0(i, j) + v.xvel0(i, j + 1) + v.xvel1(i, j) +
                       v.xvel1(i, j + 1)) * 0.25 * dt;
          const double right =
              xarea * (v.xvel0(i + 1, j) + v.xvel0(i + 1, j + 1) +
                       v.xvel1(i + 1, j) + v.xvel1(i + 1, j + 1)) * 0.25 * dt;
          const double bottom =
              yarea * (v.yvel0(i, j) + v.yvel0(i + 1, j) + v.yvel1(i, j) +
                       v.yvel1(i + 1, j)) * 0.25 * dt;
          const double top =
              yarea * (v.yvel0(i, j + 1) + v.yvel0(i + 1, j + 1) +
                       v.yvel1(i, j + 1) + v.yvel1(i + 1, j + 1)) * 0.25 * dt;
          const double total_flux = right - left + top - bottom;
          const double volume_change = volume / (volume + total_flux);
          const double recip_volume = 1.0 / volume;
          const double energy_change =
              (v.pressure(i, j) / v.density0(i, j) +
               v.viscosity(i, j) / v.density0(i, j)) *
              total_flux * recip_volume;
          v.energy1(i, j) = v.energy0(i, j) - energy_change;
          v.density1(i, j) = v.density0(i, j) * volume_change;
        });
  }
}

void pdv(vgpu::Device& dev, vgpu::Stream& s, const Box& box, const CellGeom& g,
         double dt, bool predict, View xvel0, View yvel0, View xvel1,
         View yvel1, View density0, View density1, View energy0, View energy1,
         View pressure, View viscosity) {
  const PdvPatch p{xvel0, yvel0, xvel1, yvel1, density0,
                   density1, energy0, energy1, pressure, viscosity};
  pdv_batched(dev, s, {&box, 1}, g, dt, predict, {&p, 1});
}

void accelerate_batched(vgpu::Device& dev, vgpu::Stream& s,
                        std::span<const Box> boxes, const CellGeom& g,
                        double dt, std::span<const AcceleratePatch> p,
                        SweepPart part, double gx, double gy) {
  const double halfdt = 0.5 * dt;
  const double volume = g.volume();
  const double xarea = g.xarea();
  const double yarea = g.yarea();
  // Gravity rides the half-step like the pressure impulse. Guarded so
  // the zero-gravity path performs no extra adds (bit-identity: += 0.0
  // would still rewrite a signed zero).
  const bool has_gravity = gx != 0.0 || gy != 0.0;
  const AcceleratePatch* a = p.data();
  dev.launch_batched(
      s,
      make_segments(boxes, part, kAccelerateDepth,
                    [](const Box& b) {
                      return mesh::to_centering(b, mesh::Centering::kNode);
                    }),
      hydro_cost(45.0, 18.0), [=](std::size_t seg, int i, int j) {
        const AcceleratePatch& v = a[seg];
        const double nodal_mass =
            (v.density0(i - 1, j - 1) * volume + v.density0(i, j - 1) * volume +
             v.density0(i, j) * volume + v.density0(i - 1, j) * volume) * 0.25;
        const double stepbymass = halfdt / nodal_mass;
        double xv =
            v.xvel0(i, j) -
            stepbymass *
                (xarea * (v.pressure(i, j) - v.pressure(i - 1, j)) +
                 xarea * (v.pressure(i, j - 1) - v.pressure(i - 1, j - 1)));
        double yv =
            v.yvel0(i, j) -
            stepbymass *
                (yarea * (v.pressure(i, j) - v.pressure(i, j - 1)) +
                 yarea * (v.pressure(i - 1, j) - v.pressure(i - 1, j - 1)));
        xv -= stepbymass *
              (xarea * (v.viscosity(i, j) - v.viscosity(i - 1, j)) +
               xarea * (v.viscosity(i, j - 1) - v.viscosity(i - 1, j - 1)));
        yv -= stepbymass *
              (yarea * (v.viscosity(i, j) - v.viscosity(i, j - 1)) +
               yarea * (v.viscosity(i - 1, j) - v.viscosity(i - 1, j - 1)));
        if (has_gravity) {
          xv += halfdt * gx;
          yv += halfdt * gy;
        }
        v.xvel1(i, j) = xv;
        v.yvel1(i, j) = yv;
      });
}

void accelerate(vgpu::Device& dev, vgpu::Stream& s, const Box& box,
                const CellGeom& g, double dt, View density0, View pressure,
                View viscosity, View xvel0, View yvel0, View xvel1,
                View yvel1, double gx, double gy) {
  const AcceleratePatch p{density0, pressure, viscosity, xvel0,
                          yvel0, xvel1, yvel1};
  accelerate_batched(dev, s, {&box, 1}, g, dt, {&p, 1}, SweepPart::kAll, gx,
                     gy);
}

void flux_calc_batched(vgpu::Device& dev, vgpu::Stream& s,
                       std::span<const Box> boxes, const CellGeom& g,
                       double dt, std::span<const FluxCalcPatch> p,
                       SweepPart part) {
  const double xarea = g.xarea();
  const double yarea = g.yarea();
  const FluxCalcPatch* a = p.data();
  dev.launch_batched(
      s,
      make_segments(boxes, part, kFluxCalcDepth,
                    [](const Box& b) {
                      return mesh::to_centering(b, mesh::Centering::kXSide);
                    }),
      hydro_cost(6.0, 5.0), [=](std::size_t seg, int i, int j) {
        const FluxCalcPatch& v = a[seg];
        v.vol_flux_x(i, j) = 0.25 * dt * xarea *
                             (v.xvel0(i, j) + v.xvel0(i, j + 1) +
                              v.xvel1(i, j) + v.xvel1(i, j + 1));
      });
  dev.launch_batched(
      s,
      make_segments(boxes, part, kFluxCalcDepth,
                    [](const Box& b) {
                      return mesh::to_centering(b, mesh::Centering::kYSide);
                    }),
      hydro_cost(6.0, 5.0), [=](std::size_t seg, int i, int j) {
        const FluxCalcPatch& v = a[seg];
        v.vol_flux_y(i, j) = 0.25 * dt * yarea *
                             (v.yvel0(i, j) + v.yvel0(i + 1, j) +
                              v.yvel1(i, j) + v.yvel1(i + 1, j));
      });
}

void flux_calc(vgpu::Device& dev, vgpu::Stream& s, const Box& box,
               const CellGeom& g, double dt, View xvel0, View yvel0, View xvel1,
               View yvel1, View vol_flux_x, View vol_flux_y) {
  const FluxCalcPatch p{xvel0, yvel0, xvel1, yvel1, vol_flux_x, vol_flux_y};
  flux_calc_batched(dev, s, {&box, 1}, g, dt, {&p, 1});
}

void advec_cell_batched(vgpu::Device& dev, vgpu::Stream& s,
                        std::span<const Box> boxes, const CellGeom& g,
                        bool x_direction, int sweep_number,
                        std::span<const AdvecCellPatch> p, SweepPart part) {
  constexpr double one_by_six = 1.0 / 6.0;
  const double volume = g.volume();
  const AdvecCellPatch* a = p.data();
  const Box* bx = boxes.data();

  // Stage 1: pre/post volumes over a 2-cell halo.
  const vgpu::SegmentTable vsegs = make_segments(
      boxes, part, kAdvecCellVolDepth, [](const Box& b) { return b.grow(2); });
  if (x_direction) {
    if (sweep_number == 1) {
      dev.launch_batched(
          s, vsegs, hydro_cost(8.0, 6.0), [=](std::size_t seg, int i, int j) {
            const AdvecCellPatch& v = a[seg];
            v.pre_vol(i, j) =
                volume + (v.vol_flux_x(i + 1, j) - v.vol_flux_x(i, j) +
                          v.vol_flux_y(i, j + 1) - v.vol_flux_y(i, j));
            v.post_vol(i, j) =
                v.pre_vol(i, j) - (v.vol_flux_x(i + 1, j) - v.vol_flux_x(i, j));
          });
    } else {
      dev.launch_batched(
          s, vsegs, hydro_cost(4.0, 4.0), [=](std::size_t seg, int i, int j) {
            const AdvecCellPatch& v = a[seg];
            v.pre_vol(i, j) =
                volume + v.vol_flux_x(i + 1, j) - v.vol_flux_x(i, j);
            v.post_vol(i, j) = volume;
          });
    }
    // Stage 2: second-order van Leer fluxes on x faces xmin..xmax+2
    // (CloverLeaf's j = x_min, x_max+2 loop bounds).
    dev.launch_batched(
        s,
        make_segments(boxes, part, kAdvecCellFluxDepth,
                      [](const Box& b) {
                        return Box(b.lower().i, b.lower().j, b.upper().i + 2,
                                   b.upper().j);
                      }),
        hydro_cost(45.0, 14.0), [=](std::size_t seg, int i, int j) {
          const AdvecCellPatch& v = a[seg];
          const int xmax = bx[seg].upper().i;
          int upwind, donor, downwind, dif;
          if (v.vol_flux_x(i, j) > 0.0) {
            upwind = i - 2;
            donor = i - 1;
            downwind = i;
            dif = donor;
          } else {
            upwind = std::min(i + 1, xmax + 2);
            donor = i;
            downwind = i - 1;
            dif = upwind;
          }
          (void)dif;  // uniform mesh: vertexdx(i)/vertexdx(dif) == 1
          const double sigmat =
              std::fabs(v.vol_flux_x(i, j)) / v.pre_vol(donor, j);
          const double sigma3 = (1.0 + sigmat);
          const double sigma4 = 2.0 - sigmat;
          double diffuw = v.density1(donor, j) - v.density1(upwind, j);
          double diffdw = v.density1(downwind, j) - v.density1(donor, j);
          double limiter = 0.0;
          if (diffuw * diffdw > 0.0) {
            limiter = (1.0 - sigmat) * sign(1.0, diffdw) *
                      std::min({std::fabs(diffuw), std::fabs(diffdw),
                                one_by_six * (sigma3 * std::fabs(diffuw) +
                                              sigma4 * std::fabs(diffdw))});
          }
          v.mass_flux_x(i, j) =
              v.vol_flux_x(i, j) * (v.density1(donor, j) + limiter);
          const double sigmam =
              std::fabs(v.mass_flux_x(i, j)) /
              (v.density1(donor, j) * v.pre_vol(donor, j));
          diffuw = v.energy1(donor, j) - v.energy1(upwind, j);
          diffdw = v.energy1(downwind, j) - v.energy1(donor, j);
          limiter = 0.0;
          if (diffuw * diffdw > 0.0) {
            limiter = (1.0 - sigmam) * sign(1.0, diffdw) *
                      std::min({std::fabs(diffuw), std::fabs(diffdw),
                                one_by_six * (sigma3 * std::fabs(diffuw) +
                                              sigma4 * std::fabs(diffdw))});
          }
          v.ener_flux(i, j) =
              v.mass_flux_x(i, j) * (v.energy1(donor, j) + limiter);
        });
    // Stage 3: conservative cell update. Its interior sits two deeper
    // than the flux sweep's (kAdvecCellUpdateDepth): the flux sweep's
    // RIND still reads pre-update density1/energy1 up to depth 3, so
    // the in-place interior update must not reach them.
    dev.launch_batched(
        s, cell_segments(boxes, part, kAdvecCellUpdateDepth),
        hydro_cost(14.0, 9.0), [=](std::size_t seg, int i, int j) {
          const AdvecCellPatch& v = a[seg];
          const double pre_mass = v.density1(i, j) * v.pre_vol(i, j);
          const double post_mass =
              pre_mass + v.mass_flux_x(i, j) - v.mass_flux_x(i + 1, j);
          const double post_ener =
              (v.energy1(i, j) * pre_mass + v.ener_flux(i, j) -
               v.ener_flux(i + 1, j)) /
              post_mass;
          const double advec_vol =
              v.pre_vol(i, j) + v.vol_flux_x(i, j) - v.vol_flux_x(i + 1, j);
          v.density1(i, j) = post_mass / advec_vol;
          v.energy1(i, j) = post_ener;
        });
  } else {
    if (sweep_number == 1) {
      dev.launch_batched(
          s, vsegs, hydro_cost(8.0, 6.0), [=](std::size_t seg, int i, int j) {
            const AdvecCellPatch& v = a[seg];
            v.pre_vol(i, j) =
                volume + (v.vol_flux_y(i, j + 1) - v.vol_flux_y(i, j) +
                          v.vol_flux_x(i + 1, j) - v.vol_flux_x(i, j));
            v.post_vol(i, j) =
                v.pre_vol(i, j) - (v.vol_flux_y(i, j + 1) - v.vol_flux_y(i, j));
          });
    } else {
      dev.launch_batched(
          s, vsegs, hydro_cost(4.0, 4.0), [=](std::size_t seg, int i, int j) {
            const AdvecCellPatch& v = a[seg];
            v.pre_vol(i, j) =
                volume + v.vol_flux_y(i, j + 1) - v.vol_flux_y(i, j);
            v.post_vol(i, j) = volume;
          });
    }
    dev.launch_batched(
        s,
        make_segments(boxes, part, kAdvecCellFluxDepth,
                      [](const Box& b) {
                        return Box(b.lower().i, b.lower().j, b.upper().i,
                                   b.upper().j + 2);
                      }),
        hydro_cost(45.0, 14.0), [=](std::size_t seg, int i, int j) {
          const AdvecCellPatch& v = a[seg];
          const int ymax = bx[seg].upper().j;
          int upwind, donor, downwind, dif;
          if (v.vol_flux_y(i, j) > 0.0) {
            upwind = j - 2;
            donor = j - 1;
            downwind = j;
            dif = donor;
          } else {
            upwind = std::min(j + 1, ymax + 2);
            donor = j;
            downwind = j - 1;
            dif = upwind;
          }
          (void)dif;
          const double sigmat =
              std::fabs(v.vol_flux_y(i, j)) / v.pre_vol(i, donor);
          const double sigma3 = (1.0 + sigmat);
          const double sigma4 = 2.0 - sigmat;
          double diffuw = v.density1(i, donor) - v.density1(i, upwind);
          double diffdw = v.density1(i, downwind) - v.density1(i, donor);
          double limiter = 0.0;
          if (diffuw * diffdw > 0.0) {
            limiter = (1.0 - sigmat) * sign(1.0, diffdw) *
                      std::min({std::fabs(diffuw), std::fabs(diffdw),
                                one_by_six * (sigma3 * std::fabs(diffuw) +
                                              sigma4 * std::fabs(diffdw))});
          }
          v.mass_flux_y(i, j) =
              v.vol_flux_y(i, j) * (v.density1(i, donor) + limiter);
          const double sigmam =
              std::fabs(v.mass_flux_y(i, j)) /
              (v.density1(i, donor) * v.pre_vol(i, donor));
          diffuw = v.energy1(i, donor) - v.energy1(i, upwind);
          diffdw = v.energy1(i, downwind) - v.energy1(i, donor);
          limiter = 0.0;
          if (diffuw * diffdw > 0.0) {
            limiter = (1.0 - sigmam) * sign(1.0, diffdw) *
                      std::min({std::fabs(diffuw), std::fabs(diffdw),
                                one_by_six * (sigma3 * std::fabs(diffuw) +
                                              sigma4 * std::fabs(diffdw))});
          }
          v.ener_flux(i, j) =
              v.mass_flux_y(i, j) * (v.energy1(i, donor) + limiter);
        });
    dev.launch_batched(
        s, cell_segments(boxes, part, kAdvecCellUpdateDepth),
        hydro_cost(14.0, 9.0), [=](std::size_t seg, int i, int j) {
          const AdvecCellPatch& v = a[seg];
          const double pre_mass = v.density1(i, j) * v.pre_vol(i, j);
          const double post_mass =
              pre_mass + v.mass_flux_y(i, j) - v.mass_flux_y(i, j + 1);
          const double post_ener =
              (v.energy1(i, j) * pre_mass + v.ener_flux(i, j) -
               v.ener_flux(i, j + 1)) /
              post_mass;
          const double advec_vol =
              v.pre_vol(i, j) + v.vol_flux_y(i, j) - v.vol_flux_y(i, j + 1);
          v.density1(i, j) = post_mass / advec_vol;
          v.energy1(i, j) = post_ener;
        });
  }
}

void advec_cell(vgpu::Device& dev, vgpu::Stream& s, const Box& box,
                const CellGeom& g, bool x_direction, int sweep_number,
                View density1, View energy1, View vol_flux_x, View vol_flux_y,
                View mass_flux_x, View mass_flux_y, View pre_vol, View post_vol,
                View ener_flux) {
  const AdvecCellPatch p{density1, energy1, vol_flux_x,
                         vol_flux_y, mass_flux_x, mass_flux_y,
                         pre_vol, post_vol, ener_flux};
  advec_cell_batched(dev, s, {&box, 1}, g, x_direction, sweep_number, {&p, 1});
}

void advec_mom_shared_batched(vgpu::Device& dev, vgpu::Stream& s,
                              std::span<const Box> boxes, const CellGeom& g,
                              int mom_sweep,
                              std::span<const AdvecMomSharedPatch> p,
                              SweepPart part) {
  const double volume = g.volume();
  const bool x_direction = mom_sweep == 1 || mom_sweep == 3;
  const AdvecMomSharedPatch* a = p.data();

  // Stage 1: cell volumes seen by this sweep, over a 2-cell halo.
  dev.launch_batched(
      s,
      make_segments(boxes, part, kAdvecMomVolDepth,
                    [](const Box& b) { return b.grow(2); }),
      hydro_cost(6.0, 6.0), [=](std::size_t seg, int i, int j) {
        const AdvecMomSharedPatch& v = a[seg];
        switch (mom_sweep) {
          case 1:  // x sweep, first
            v.post_vol(i, j) =
                volume + v.vol_flux_y(i, j + 1) - v.vol_flux_y(i, j);
            v.pre_vol(i, j) =
                v.post_vol(i, j) + v.vol_flux_x(i + 1, j) - v.vol_flux_x(i, j);
            break;
          case 2:  // y sweep, first
            v.post_vol(i, j) =
                volume + v.vol_flux_x(i + 1, j) - v.vol_flux_x(i, j);
            v.pre_vol(i, j) =
                v.post_vol(i, j) + v.vol_flux_y(i, j + 1) - v.vol_flux_y(i, j);
            break;
          case 3:  // x sweep, second
            v.post_vol(i, j) = volume;
            v.pre_vol(i, j) =
                v.post_vol(i, j) + v.vol_flux_y(i, j + 1) - v.vol_flux_y(i, j);
            break;
          default:  // 4: y sweep, second
            v.post_vol(i, j) = volume;
            v.pre_vol(i, j) =
                v.post_vol(i, j) + v.vol_flux_x(i + 1, j) - v.vol_flux_x(i, j);
            break;
        }
      });

  if (x_direction) {
    // Node fluxes over [xmin-2, xmax+2] (CloverLeaf bounds), node masses
    // over [xmin-1, xmax+2]; ghost data depth 2 covers every read.
    dev.launch_batched(
        s,
        make_segments(boxes, part, kAdvecMomNodeFluxDepth,
                      [](const Box& b) {
                        return Box(b.lower().i - 2, b.lower().j,
                                   b.upper().i + 2, b.upper().j + 1);
                      }),
        hydro_cost(10.0, 10.0), [=](std::size_t seg, int i, int j) {
          const AdvecMomSharedPatch& v = a[seg];
          v.node_flux(i, j) =
              0.25 * (v.mass_flux_x(i, j - 1) + v.mass_flux_x(i, j) +
                      v.mass_flux_x(i + 1, j - 1) + v.mass_flux_x(i + 1, j));
        });
    const auto mass_region = [](const Box& b) {
      return Box(b.lower().i - 1, b.lower().j, b.upper().i + 2,
                 b.upper().j + 1);
    };
    dev.launch_batched(
        s, make_segments(boxes, part, kAdvecMomNodeMassDepth, mass_region),
        hydro_cost(10.0, 10.0), [=](std::size_t seg, int i, int j) {
          const AdvecMomSharedPatch& v = a[seg];
          v.node_mass_post(i, j) =
              0.25 * (v.density1(i, j - 1) * v.post_vol(i, j - 1) +
                      v.density1(i, j) * v.post_vol(i, j) +
                      v.density1(i - 1, j - 1) * v.post_vol(i - 1, j - 1) +
                      v.density1(i - 1, j) * v.post_vol(i - 1, j));
        });
    dev.launch_batched(
        s, make_segments(boxes, part, kAdvecMomNodeMassPreDepth, mass_region),
        hydro_cost(3.0, 4.0), [=](std::size_t seg, int i, int j) {
          const AdvecMomSharedPatch& v = a[seg];
          v.node_mass_pre(i, j) = v.node_mass_post(i, j) -
                                  v.node_flux(i - 1, j) + v.node_flux(i, j);
        });
  } else {
    dev.launch_batched(
        s,
        make_segments(boxes, part, kAdvecMomNodeFluxDepth,
                      [](const Box& b) {
                        return Box(b.lower().i, b.lower().j - 2,
                                   b.upper().i + 1, b.upper().j + 2);
                      }),
        hydro_cost(10.0, 10.0), [=](std::size_t seg, int i, int j) {
          const AdvecMomSharedPatch& v = a[seg];
          v.node_flux(i, j) =
              0.25 * (v.mass_flux_y(i - 1, j) + v.mass_flux_y(i, j) +
                      v.mass_flux_y(i - 1, j + 1) + v.mass_flux_y(i, j + 1));
        });
    const auto mass_region = [](const Box& b) {
      return Box(b.lower().i, b.lower().j - 1, b.upper().i + 1,
                 b.upper().j + 2);
    };
    dev.launch_batched(
        s, make_segments(boxes, part, kAdvecMomNodeMassDepth, mass_region),
        hydro_cost(10.0, 10.0), [=](std::size_t seg, int i, int j) {
          const AdvecMomSharedPatch& v = a[seg];
          v.node_mass_post(i, j) =
              0.25 * (v.density1(i, j - 1) * v.post_vol(i, j - 1) +
                      v.density1(i, j) * v.post_vol(i, j) +
                      v.density1(i - 1, j - 1) * v.post_vol(i - 1, j - 1) +
                      v.density1(i - 1, j) * v.post_vol(i - 1, j));
        });
    dev.launch_batched(
        s, make_segments(boxes, part, kAdvecMomNodeMassPreDepth, mass_region),
        hydro_cost(3.0, 4.0), [=](std::size_t seg, int i, int j) {
          const AdvecMomSharedPatch& v = a[seg];
          v.node_mass_pre(i, j) = v.node_mass_post(i, j) -
                                  v.node_flux(i, j - 1) + v.node_flux(i, j);
        });
  }
}

void advec_mom_velocity_batched(vgpu::Device& dev, vgpu::Stream& s,
                                std::span<const Box> boxes, const CellGeom& g,
                                bool x_direction,
                                std::span<const AdvecMomVelPatch> p,
                                SweepPart part) {
  const double dx = g.dx;
  const double dy = g.dy;
  const AdvecMomVelPatch* a = p.data();

  if (x_direction) {
    // Monotonic momentum flux.
    dev.launch_batched(
        s,
        make_segments(boxes, part, kAdvecMomFluxDepth,
                      [](const Box& b) {
                        return Box(b.lower().i - 1, b.lower().j,
                                   b.upper().i + 1, b.upper().j + 1);
                      }),
        hydro_cost(30.0, 8.0), [=](std::size_t seg, int i, int j) {
          const AdvecMomVelPatch& v = a[seg];
          int upwind, donor, downwind, dif;
          if (v.node_flux(i, j) < 0.0) {
            // No patch-local clamp: i+2 <= xmax+3 is inside the exchanged
            // ghost nodes, and clamping here would make the two patches
            // sharing a seam node disagree on its value.
            upwind = i + 2;
            donor = i + 1;
            downwind = i;
            dif = donor;
          } else {
            upwind = i - 1;
            donor = i;
            downwind = i + 1;
            dif = upwind;
          }
          (void)dif;
          const double sigma =
              std::fabs(v.node_flux(i, j)) / v.node_mass_pre(donor, j);
          const double width = dx;
          const double vdiffuw = v.vel1(donor, j) - v.vel1(upwind, j);
          const double vdiffdw = v.vel1(downwind, j) - v.vel1(donor, j);
          double limiter = 0.0;
          if (vdiffuw * vdiffdw > 0.0) {
            const double auw = std::fabs(vdiffuw);
            const double adw = std::fabs(vdiffdw);
            const double wind = (vdiffdw <= 0.0) ? -1.0 : 1.0;
            limiter =
                wind *
                std::min({width * ((2.0 - sigma) * adw / width +
                                   (1.0 + sigma) * auw / dx) / 6.0,
                          auw, adw});
          }
          const double advec_vel = v.vel1(donor, j) + (1.0 - sigma) * limiter;
          v.mom_flux(i, j) = advec_vel * v.node_flux(i, j);
        });
    // Velocity update on the patch's nodes. Interior two deeper than the
    // mom_flux sweep (kAdvecMomUpdateDepth): that sweep's rind still
    // reads pre-update vel1 up to depth 4.
    dev.launch_batched(
        s,
        make_segments(boxes, part, kAdvecMomUpdateDepth,
                      [](const Box& b) {
                        return mesh::to_centering(b, mesh::Centering::kNode);
                      }),
        hydro_cost(6.0, 5.0), [=](std::size_t seg, int i, int j) {
          const AdvecMomVelPatch& v = a[seg];
          v.vel1(i, j) = (v.vel1(i, j) * v.node_mass_pre(i, j) +
                          v.mom_flux(i - 1, j) - v.mom_flux(i, j)) /
                         v.node_mass_post(i, j);
        });
  } else {
    dev.launch_batched(
        s,
        make_segments(boxes, part, kAdvecMomFluxDepth,
                      [](const Box& b) {
                        return Box(b.lower().i, b.lower().j - 1,
                                   b.upper().i + 1, b.upper().j + 1);
                      }),
        hydro_cost(30.0, 8.0), [=](std::size_t seg, int i, int j) {
          const AdvecMomVelPatch& v = a[seg];
          int upwind, donor, downwind, dif;
          if (v.node_flux(i, j) < 0.0) {
            upwind = j + 2;  // <= ymax+3: inside exchanged ghost nodes
            donor = j + 1;
            downwind = j;
            dif = donor;
          } else {
            upwind = j - 1;
            donor = j;
            downwind = j + 1;
            dif = upwind;
          }
          (void)dif;
          const double sigma =
              std::fabs(v.node_flux(i, j)) / v.node_mass_pre(i, donor);
          const double width = dy;
          const double vdiffuw = v.vel1(i, donor) - v.vel1(i, upwind);
          const double vdiffdw = v.vel1(i, downwind) - v.vel1(i, donor);
          double limiter = 0.0;
          if (vdiffuw * vdiffdw > 0.0) {
            const double auw = std::fabs(vdiffuw);
            const double adw = std::fabs(vdiffdw);
            const double wind = (vdiffdw <= 0.0) ? -1.0 : 1.0;
            limiter =
                wind *
                std::min({width * ((2.0 - sigma) * adw / width +
                                   (1.0 + sigma) * auw / dy) / 6.0,
                          auw, adw});
          }
          const double advec_vel = v.vel1(i, donor) + (1.0 - sigma) * limiter;
          v.mom_flux(i, j) = advec_vel * v.node_flux(i, j);
        });
    dev.launch_batched(
        s,
        make_segments(boxes, part, kAdvecMomUpdateDepth,
                      [](const Box& b) {
                        return mesh::to_centering(b, mesh::Centering::kNode);
                      }),
        hydro_cost(6.0, 5.0), [=](std::size_t seg, int i, int j) {
          const AdvecMomVelPatch& v = a[seg];
          v.vel1(i, j) = (v.vel1(i, j) * v.node_mass_pre(i, j) +
                          v.mom_flux(i, j - 1) - v.mom_flux(i, j)) /
                         v.node_mass_post(i, j);
        });
  }
}

void advec_mom_batched(vgpu::Device& dev, vgpu::Stream& s,
                       std::span<const Box> boxes, const CellGeom& g,
                       bool x_direction, int mom_sweep,
                       std::span<const AdvecMomPatch> p, SweepPart part) {
  // One component, all six sub-stages: the shared sweep recomputes the
  // component-independent work exactly as the paper's original kernel
  // does (per-patch route; the batched runner calls the shared sweep
  // once per direction and fuses both components instead).
  std::vector<AdvecMomSharedPatch> shared;
  std::vector<AdvecMomVelPatch> vel;
  shared.reserve(p.size());
  vel.reserve(p.size());
  for (const AdvecMomPatch& v : p) {
    shared.push_back(AdvecMomSharedPatch{
        v.density1, v.vol_flux_x, v.vol_flux_y, v.mass_flux_x, v.mass_flux_y,
        v.node_flux, v.node_mass_post, v.node_mass_pre, v.pre_vol,
        v.post_vol});
    vel.push_back(AdvecMomVelPatch{v.vel1, v.mom_flux, v.node_flux,
                                   v.node_mass_post, v.node_mass_pre});
  }
  advec_mom_shared_batched(dev, s, boxes, g, mom_sweep, shared, part);
  advec_mom_velocity_batched(dev, s, boxes, g, x_direction, vel, part);
}

void advec_mom(vgpu::Device& dev, vgpu::Stream& s, const Box& box,
               const CellGeom& g, bool x_direction, int mom_sweep, View vel1,
               View density1, View vol_flux_x, View vol_flux_y,
               View mass_flux_x, View mass_flux_y, View node_flux,
               View node_mass_post, View node_mass_pre, View mom_flux,
               View pre_vol, View post_vol) {
  const AdvecMomPatch p{vel1, density1, vol_flux_x, vol_flux_y,
                        mass_flux_x, mass_flux_y, node_flux, node_mass_post,
                        node_mass_pre, mom_flux, pre_vol, post_vol};
  advec_mom_batched(dev, s, {&box, 1}, g, x_direction, mom_sweep, {&p, 1});
}

void reset_field_batched(vgpu::Device& dev, vgpu::Stream& s,
                         std::span<const Box> boxes,
                         std::span<const ResetFieldPatch> p, SweepPart part) {
  const ResetFieldPatch* a = p.data();
  dev.launch_batched(
      s, cell_segments(boxes, part, kResetCellDepth), hydro_cost(0.0, 8.0),
      [=](std::size_t seg, int i, int j) {
        const ResetFieldPatch& v = a[seg];
        v.density0(i, j) = v.density1(i, j);
        v.energy0(i, j) = v.energy1(i, j);
      });
  dev.launch_batched(
      s,
      make_segments(boxes, part, kResetNodeDepth,
                    [](const Box& b) {
                      return mesh::to_centering(b, mesh::Centering::kNode);
                    }),
      hydro_cost(0.0, 8.0), [=](std::size_t seg, int i, int j) {
        const ResetFieldPatch& v = a[seg];
        v.xvel0(i, j) = v.xvel1(i, j);
        v.yvel0(i, j) = v.yvel1(i, j);
      });
}

void reset_field(vgpu::Device& dev, vgpu::Stream& s, const Box& box,
                 View density0, View density1, View energy0, View energy1,
                 View xvel0, View xvel1, View yvel0, View yvel1) {
  const ResetFieldPatch p{density0, density1, energy0, energy1,
                          xvel0, xvel1, yvel0, yvel1};
  reset_field_batched(dev, s, {&box, 1}, {&p, 1});
}

FieldSummary field_summary(vgpu::Device& dev, vgpu::Stream& s, const Box& box,
                           const CellGeom& g, View density0, View energy0,
                           View xvel0, View yvel0) {
  const double volume = g.volume();
  const int ilo = box.lower().i;
  const int jlo = box.lower().j;
  const int w = box.width();
  // Three reductions expressed through reduce_min on negated partial sums
  // would be awkward; use one pass with a mutex-combined accumulator and
  // charge it as a single summary kernel (CloverLeaf's field_summary).
  dev.charge_reduction(box.size() * 4, 8.0);
  std::mutex m;
  FieldSummary total;
  util::ThreadPool::global().parallel_for(
      box.size(), [&](std::int64_t begin, std::int64_t end) {
        FieldSummary local;
        for (std::int64_t t = begin; t < end; ++t) {
          const int i = ilo + static_cast<int>(t % w);
          const int j = jlo + static_cast<int>(t / w);
          const double cell_mass = density0(i, j) * volume;
          local.mass += cell_mass;
          local.internal_energy += cell_mass * energy0(i, j);
          double vsqrd = 0.0;
          for (int kj = j; kj <= j + 1; ++kj) {
            for (int ki = i; ki <= i + 1; ++ki) {
              vsqrd += 0.25 * (xvel0(ki, kj) * xvel0(ki, kj) +
                               yvel0(ki, kj) * yvel0(ki, kj));
            }
          }
          local.kinetic_energy += cell_mass * 0.5 * vsqrd;
        }
        std::lock_guard<std::mutex> lock(m);
        total.mass += local.mass;
        total.internal_energy += local.internal_energy;
        total.kinetic_energy += local.kinetic_energy;
      });
  dev.charge_scalar_readback();
  (void)s;
  return total;
}

}  // namespace ramr::hydro
