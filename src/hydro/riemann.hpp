// Exact Riemann solver for the 1-D Euler equations (Toro's algorithm):
// used to validate the hydrodynamics scheme against the analytic Sod
// shock tube solution in tests and the sod_shock_tube example.
#pragma once

namespace ramr::hydro {

/// Primitive state (density, velocity, pressure).
struct PrimitiveState {
  double rho = 0.0;
  double u = 0.0;
  double p = 0.0;
};

/// Exact solution of the Riemann problem with left/right states `l`, `r`
/// (ideal gas, ratio of specific heats `gamma`).
class RiemannSolution {
 public:
  RiemannSolution(const PrimitiveState& l, const PrimitiveState& r,
                  double gamma = 1.4);

  /// State at similarity coordinate x/t (x measured from the initial
  /// discontinuity).
  PrimitiveState sample(double x_over_t) const;

  double star_pressure() const { return p_star_; }
  double star_velocity() const { return u_star_; }

 private:
  double f_k(double p, const PrimitiveState& s) const;
  double df_k(double p, const PrimitiveState& s) const;

  PrimitiveState left_;
  PrimitiveState right_;
  double gamma_;
  double p_star_ = 0.0;
  double u_star_ = 0.0;
};

/// The classic Sod states: (1, 0, 1) | (0.125, 0, 0.1).
inline PrimitiveState sod_left() { return {1.0, 0.0, 1.0}; }
inline PrimitiveState sod_right() { return {0.125, 0.0, 0.1}; }

}  // namespace ramr::hydro
