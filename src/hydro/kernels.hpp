// The CloverLeaf explicit hydrodynamics kernels (2-D compressible Euler
// on a staggered grid), written as data-parallel device kernels: one
// thread per output element, exactly as CleverLeaf's CUDA port launches
// them (paper §IV-C).
//
// Scheme summary (Lagrangian step + directional-split advection):
//   ideal_gas   : p = (gamma-1) rho e,  c^2 = gamma p / rho
//   viscosity   : Wilkins-style artificial viscous pressure q
//   calc_dt     : CFL / velocity / divergence timestep limits
//   pdv         : compression work (predictor dt/2, corrector dt)
//   accelerate  : nodal velocity update from pressure + q gradients
//   flux_calc   : face volume fluxes from time-centred velocities
//   advec_cell  : van Leer second-order donor-cell advection (rho, e)
//   advec_mom   : momentum advection on the staggered nodes
//   reset_field : copy the time-advanced fields back to level n
//
// All kernels index in global (level) coordinates through ArrayView2D;
// `box` is the patch interior cell region unless noted. Ghost width 2 is
// assumed (CloverLeaf's halo depth).
#pragma once

#include <span>

#include "mesh/box.hpp"
#include "util/array_view.hpp"
#include "vgpu/device.hpp"

namespace ramr::hydro {

/// Ideal-gas constants and numerical fuzz, as in CloverLeaf.
struct Constants {
  static constexpr double gamma = 1.4;
  static constexpr double g_small = 1.0e-16;
  static constexpr double g_big = 1.0e+21;
  static constexpr double dtc_safe = 0.7;  ///< CFL safety factor
  static constexpr double dtu_safe = 0.5;
  static constexpr double dtv_safe = 0.5;
  static constexpr double dtdiv_safe = 0.7;
};

/// Runtime physics parameters a scenario may override (cfg::ScenarioSpec):
/// the EOS gamma and a constant body acceleration. The defaults select
/// the exact historical arithmetic (compile-time gamma, no gravity adds),
/// so default-constructed Physics is bit-identical to the pre-scenario
/// kernels.
struct Physics {
  double gamma = Constants::gamma;
  double gx = 0.0;  ///< body acceleration, x component
  double gy = 0.0;  ///< body acceleration, y component
};

/// Uniform-cell geometry of one patch's level.
struct CellGeom {
  double dx = 0.0;
  double dy = 0.0;
  double volume() const { return dx * dy; }
  double xarea() const { return dy; }
  double yarea() const { return dx; }
};

using View = util::View;

// ---------------------------------------------------------------------------
// Interior / rind stage decomposition.
//
// Every batched stage can run over one of three index-space parts, so a
// halo exchange can hide behind the stage instead of preceding it:
//
//   kAll       the full stage (the default; one fused launch per
//              sub-stage, exactly the pre-split behaviour),
//   kInterior  only the cells/faces/nodes of each patch at least the
//              sub-stage's rind depth away from the patch's cell
//              boundary — by construction these sweeps read no ghost
//              data of any exchanged variable, no seam node/side line a
//              same-level exchange rewrites, and no element an earlier
//              sub-stage computes outside ITS interior, so they may run
//              while the exchange's messages are on the wire,
//   kRind      the exact complement (up to four shell pieces per patch
//              per sub-stage), run after the exchange finished.
//
// kInterior followed by kRind covers every element of kAll exactly once
// with the same per-element arithmetic and a read order equivalent to
// the synchronous fill-then-stage schedule, so the split is bit-identical
// to kAll. Per-sub-stage rind depths are derived from the stencils (and
// the in-place update hazards of the advection stages) in kernels.cpp;
// a patch thinner than 2*depth simply has an empty interior and a rind
// covering everything. Empty parts launch nothing.
enum class SweepPart { kAll, kInterior, kRind };

// ---------------------------------------------------------------------------
// Batched (fused per-level) kernel forms.
//
// Every stage kernel has a batched entry taking parallel spans of
// per-patch interior cell boxes and per-patch view bundles (one entry
// per patch, indexed by the fused launch's segment argument id). A
// batched call issues ONE fused launch per kernel sub-stage and part —
// one launch overhead and an occupancy ramp computed from the part's
// total thread count — instead of one launch per patch. The per-patch
// entries below forward to the batched forms with a single segment, so
// both paths share one kernel body and stay bit-identical by
// construction. Geometry and scalar arguments (dt, sweep selectors) are
// uniform across a level.

/// Per-patch views for ideal_gas.
struct IdealGasPatch {
  View density, energy, pressure, soundspeed;
};
/// Per-patch views for viscosity_kernel.
struct ViscosityPatch {
  View density0, pressure, viscosity, xvel0, yvel0;
};
/// Per-patch views for calc_dt.
struct CalcDtPatch {
  View density0, soundspeed, viscosity, xvel0, yvel0;
};
/// Per-patch views for pdv.
struct PdvPatch {
  View xvel0, yvel0, xvel1, yvel1, density0, density1, energy0, energy1,
      pressure, viscosity;
};
/// Per-patch views for accelerate.
struct AcceleratePatch {
  View density0, pressure, viscosity, xvel0, yvel0, xvel1, yvel1;
};
/// Per-patch views for flux_calc.
struct FluxCalcPatch {
  View xvel0, yvel0, xvel1, yvel1, vol_flux_x, vol_flux_y;
};
/// Per-patch views for advec_cell.
struct AdvecCellPatch {
  View density1, energy1, vol_flux_x, vol_flux_y, mass_flux_x, mass_flux_y,
      pre_vol, post_vol, ener_flux;
};
/// Per-patch views for advec_mom (one velocity component).
struct AdvecMomPatch {
  View vel1, density1, vol_flux_x, vol_flux_y, mass_flux_x, mass_flux_y,
      node_flux, node_mass_post, node_mass_pre, mom_flux, pre_vol, post_vol;
};
/// Per-patch views of the component-INDEPENDENT advec_mom work: sweep
/// volumes, node fluxes and node masses are identical for both velocity
/// components of one sweep, so they are computed once per sweep instead
/// of once per component (the paper's original code recomputed them with
/// bit-identical results).
struct AdvecMomSharedPatch {
  View density1, vol_flux_x, vol_flux_y, mass_flux_x, mass_flux_y, node_flux,
      node_mass_post, node_mass_pre, pre_vol, post_vol;
};
/// Per-(patch, velocity component) views of the component-specific
/// advec_mom work (monotonic momentum flux + velocity update). Each
/// component writes its own mom_flux plane, so entries for BOTH
/// components can ride one fused launch.
struct AdvecMomVelPatch {
  View vel1, mom_flux, node_flux, node_mass_post, node_mass_pre;
};
/// Per-patch views for reset_field.
struct ResetFieldPatch {
  View density0, density1, energy0, energy1, xvel0, xvel1, yvel0, yvel1;
};

/// `gamma` overrides the ideal-gas ratio of specific heats per scenario
/// (cfg::ScenarioSpec::gamma); the default performs the exact arithmetic
/// of the historical compile-time constant.
void ideal_gas_batched(vgpu::Device& dev, vgpu::Stream& s,
                       std::span<const mesh::Box> boxes,
                       std::span<const IdealGasPatch> p,
                       SweepPart part = SweepPart::kAll,
                       double gamma = Constants::gamma);
void viscosity_batched(vgpu::Device& dev, vgpu::Stream& s,
                       std::span<const mesh::Box> boxes, const CellGeom& g,
                       std::span<const ViscosityPatch> p,
                       SweepPart part = SweepPart::kAll);
/// One fused min-reduction over every patch interior with a SINGLE
/// scalar D2H readback for the whole span (per level, not per patch).
double calc_dt_batched(vgpu::Device& dev, vgpu::Stream& s,
                       std::span<const mesh::Box> boxes, const CellGeom& g,
                       std::span<const CalcDtPatch> p);
void pdv_batched(vgpu::Device& dev, vgpu::Stream& s,
                 std::span<const mesh::Box> boxes, const CellGeom& g, double dt,
                 bool predict, std::span<const PdvPatch> p,
                 SweepPart part = SweepPart::kAll);
/// `gx`/`gy` add a constant body acceleration (the gravity source of the
/// Rayleigh-Taylor scenario). Exactly (0, 0) skips the extra update
/// entirely, so gravity-free runs stay bit-identical to the historical
/// kernel (no `x + 0.0` rounding of signed zeros).
void accelerate_batched(vgpu::Device& dev, vgpu::Stream& s,
                        std::span<const mesh::Box> boxes, const CellGeom& g,
                        double dt, std::span<const AcceleratePatch> p,
                        SweepPart part = SweepPart::kAll, double gx = 0.0,
                        double gy = 0.0);
void flux_calc_batched(vgpu::Device& dev, vgpu::Stream& s,
                       std::span<const mesh::Box> boxes, const CellGeom& g,
                       double dt, std::span<const FluxCalcPatch> p,
                       SweepPart part = SweepPart::kAll);
void advec_cell_batched(vgpu::Device& dev, vgpu::Stream& s,
                        std::span<const mesh::Box> boxes, const CellGeom& g,
                        bool x_direction, int sweep_number,
                        std::span<const AdvecCellPatch> p,
                        SweepPart part = SweepPart::kAll);
/// One velocity component, all six sub-stages (the per-patch wrapper's
/// entry): forwards to the shared + velocity entries below.
void advec_mom_batched(vgpu::Device& dev, vgpu::Stream& s,
                       std::span<const mesh::Box> boxes, const CellGeom& g,
                       bool x_direction, int mom_sweep,
                       std::span<const AdvecMomPatch> p,
                       SweepPart part = SweepPart::kAll);
/// Component-independent sub-stages (volumes, node flux, node masses) of
/// one momentum sweep: ONE run serves both velocity components.
void advec_mom_shared_batched(vgpu::Device& dev, vgpu::Stream& s,
                              std::span<const mesh::Box> boxes,
                              const CellGeom& g, int mom_sweep,
                              std::span<const AdvecMomSharedPatch> p,
                              SweepPart part = SweepPart::kAll);
/// Component-specific sub-stages (momentum flux + velocity update), one
/// fused launch per sub-stage over ALL entries: pass 2P entries (x- then
/// y-velocity, with `boxes` repeated) to advance both components per
/// launch — the entries write disjoint arrays (own vel1, own mom_flux
/// plane), so fusing them is race-free and bit-identical to running the
/// components back to back.
void advec_mom_velocity_batched(vgpu::Device& dev, vgpu::Stream& s,
                                std::span<const mesh::Box> boxes,
                                const CellGeom& g, bool x_direction,
                                std::span<const AdvecMomVelPatch> p,
                                SweepPart part = SweepPart::kAll);
void reset_field_batched(vgpu::Device& dev, vgpu::Stream& s,
                         std::span<const mesh::Box> boxes,
                         std::span<const ResetFieldPatch> p,
                         SweepPart part = SweepPart::kAll);

// ---------------------------------------------------------------------------
// Per-patch forms (single-segment wrappers over the batched entries).

/// Equation of state over `box` (+ any ghost region included by caller).
void ideal_gas(vgpu::Device& dev, vgpu::Stream& s, const mesh::Box& box,
               View density, View energy, View pressure, View soundspeed,
               double gamma = Constants::gamma);

/// Artificial viscosity over the interior `box` (reads velocity and
/// pressure in a 1-cell halo).
void viscosity_kernel(vgpu::Device& dev, vgpu::Stream& s, const mesh::Box& box,
                      const CellGeom& g, View density0, View pressure,
                      View viscosity, View xvel0, View yvel0);

/// Minimum stable timestep over the interior `box`.
double calc_dt(vgpu::Device& dev, vgpu::Stream& s, const mesh::Box& box,
               const CellGeom& g, View density0, View soundspeed,
               View viscosity, View xvel0, View yvel0);

/// PdV compression work. `predict` uses dt/2 and level-n velocities only.
void pdv(vgpu::Device& dev, vgpu::Stream& s, const mesh::Box& box,
         const CellGeom& g, double dt, bool predict, View xvel0, View yvel0,
         View xvel1, View yvel1, View density0, View density1, View energy0,
         View energy1, View pressure, View viscosity);

/// Nodal acceleration over the node box of `box`.
void accelerate(vgpu::Device& dev, vgpu::Stream& s, const mesh::Box& box,
                const CellGeom& g, double dt, View density0, View pressure,
                View viscosity, View xvel0, View yvel0, View xvel1, View yvel1,
                double gx = 0.0, double gy = 0.0);

/// Face volume fluxes over the side boxes of `box`.
void flux_calc(vgpu::Device& dev, vgpu::Stream& s, const mesh::Box& box,
               const CellGeom& g, double dt, View xvel0, View yvel0, View xvel1,
               View yvel1, View vol_flux_x, View vol_flux_y);

/// One directional sweep of cell-centred advection (density1, energy1).
/// `sweep_number` is 1 for the first sweep of the step, 2 for the second;
/// `x_direction` selects the sweep axis. Requires density1/energy1 and
/// vol_flux in a 2-cell halo; writes mass_flux and (work) ener_flux,
/// pre_vol, post_vol.
void advec_cell(vgpu::Device& dev, vgpu::Stream& s, const mesh::Box& box,
                const CellGeom& g, bool x_direction, int sweep_number,
                View density1, View energy1, View vol_flux_x, View vol_flux_y,
                View mass_flux_x, View mass_flux_y, View pre_vol, View post_vol,
                View ener_flux);

/// One directional sweep of momentum advection for one velocity
/// component `vel1`. `mom_sweep` = direction + 2*(sweep_number-1) as in
/// CloverLeaf. Work arrays are node-centred.
void advec_mom(vgpu::Device& dev, vgpu::Stream& s, const mesh::Box& box,
               const CellGeom& g, bool x_direction, int mom_sweep, View vel1,
               View density1, View vol_flux_x, View vol_flux_y,
               View mass_flux_x, View mass_flux_y, View node_flux,
               View node_mass_post, View node_mass_pre, View mom_flux,
               View pre_vol, View post_vol);

/// density0 <- density1 etc. over `box` (+ghosts handled by caller box).
void reset_field(vgpu::Device& dev, vgpu::Stream& s, const mesh::Box& box,
                 View density0, View density1, View energy0, View energy1,
                 View xvel0, View xvel1, View yvel0, View yvel1);

/// Total mass / internal energy / kinetic energy over `box` (device
/// reduction; diagnostics and conservation tests).
struct FieldSummary {
  double mass = 0.0;
  double internal_energy = 0.0;
  double kinetic_energy = 0.0;
};
FieldSummary field_summary(vgpu::Device& dev, vgpu::Stream& s,
                           const mesh::Box& box, const CellGeom& g,
                           View density0, View energy0, View xvel0, View yvel0);

}  // namespace ramr::hydro
