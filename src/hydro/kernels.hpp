// The CloverLeaf explicit hydrodynamics kernels (2-D compressible Euler
// on a staggered grid), written as data-parallel device kernels: one
// thread per output element, exactly as CleverLeaf's CUDA port launches
// them (paper §IV-C).
//
// Scheme summary (Lagrangian step + directional-split advection):
//   ideal_gas   : p = (gamma-1) rho e,  c^2 = gamma p / rho
//   viscosity   : Wilkins-style artificial viscous pressure q
//   calc_dt     : CFL / velocity / divergence timestep limits
//   pdv         : compression work (predictor dt/2, corrector dt)
//   accelerate  : nodal velocity update from pressure + q gradients
//   flux_calc   : face volume fluxes from time-centred velocities
//   advec_cell  : van Leer second-order donor-cell advection (rho, e)
//   advec_mom   : momentum advection on the staggered nodes
//   reset_field : copy the time-advanced fields back to level n
//
// All kernels index in global (level) coordinates through ArrayView2D;
// `box` is the patch interior cell region unless noted. Ghost width 2 is
// assumed (CloverLeaf's halo depth).
#pragma once

#include "mesh/box.hpp"
#include "util/array_view.hpp"
#include "vgpu/device.hpp"

namespace ramr::hydro {

/// Ideal-gas constants and numerical fuzz, as in CloverLeaf.
struct Constants {
  static constexpr double gamma = 1.4;
  static constexpr double g_small = 1.0e-16;
  static constexpr double g_big = 1.0e+21;
  static constexpr double dtc_safe = 0.7;  ///< CFL safety factor
  static constexpr double dtu_safe = 0.5;
  static constexpr double dtv_safe = 0.5;
  static constexpr double dtdiv_safe = 0.7;
};

/// Uniform-cell geometry of one patch's level.
struct CellGeom {
  double dx = 0.0;
  double dy = 0.0;
  double volume() const { return dx * dy; }
  double xarea() const { return dy; }
  double yarea() const { return dx; }
};

using View = util::View;

/// Equation of state over `box` (+ any ghost region included by caller).
void ideal_gas(vgpu::Device& dev, vgpu::Stream& s, const mesh::Box& box,
               View density, View energy, View pressure, View soundspeed);

/// Artificial viscosity over the interior `box` (reads velocity and
/// pressure in a 1-cell halo).
void viscosity_kernel(vgpu::Device& dev, vgpu::Stream& s, const mesh::Box& box,
                      const CellGeom& g, View density0, View pressure,
                      View viscosity, View xvel0, View yvel0);

/// Minimum stable timestep over the interior `box`.
double calc_dt(vgpu::Device& dev, vgpu::Stream& s, const mesh::Box& box,
               const CellGeom& g, View density0, View soundspeed,
               View viscosity, View xvel0, View yvel0);

/// PdV compression work. `predict` uses dt/2 and level-n velocities only.
void pdv(vgpu::Device& dev, vgpu::Stream& s, const mesh::Box& box,
         const CellGeom& g, double dt, bool predict, View xvel0, View yvel0,
         View xvel1, View yvel1, View density0, View density1, View energy0,
         View energy1, View pressure, View viscosity);

/// Nodal acceleration over the node box of `box`.
void accelerate(vgpu::Device& dev, vgpu::Stream& s, const mesh::Box& box,
                const CellGeom& g, double dt, View density0, View pressure,
                View viscosity, View xvel0, View yvel0, View xvel1, View yvel1);

/// Face volume fluxes over the side boxes of `box`.
void flux_calc(vgpu::Device& dev, vgpu::Stream& s, const mesh::Box& box,
               const CellGeom& g, double dt, View xvel0, View yvel0, View xvel1,
               View yvel1, View vol_flux_x, View vol_flux_y);

/// One directional sweep of cell-centred advection (density1, energy1).
/// `sweep_number` is 1 for the first sweep of the step, 2 for the second;
/// `x_direction` selects the sweep axis. Requires density1/energy1 and
/// vol_flux in a 2-cell halo; writes mass_flux and (work) ener_flux,
/// pre_vol, post_vol.
void advec_cell(vgpu::Device& dev, vgpu::Stream& s, const mesh::Box& box,
                const CellGeom& g, bool x_direction, int sweep_number,
                View density1, View energy1, View vol_flux_x, View vol_flux_y,
                View mass_flux_x, View mass_flux_y, View pre_vol, View post_vol,
                View ener_flux);

/// One directional sweep of momentum advection for one velocity
/// component `vel1`. `mom_sweep` = direction + 2*(sweep_number-1) as in
/// CloverLeaf. Work arrays are node-centred.
void advec_mom(vgpu::Device& dev, vgpu::Stream& s, const mesh::Box& box,
               const CellGeom& g, bool x_direction, int mom_sweep, View vel1,
               View density1, View vol_flux_x, View vol_flux_y,
               View mass_flux_x, View mass_flux_y, View node_flux,
               View node_mass_post, View node_mass_pre, View mom_flux,
               View pre_vol, View post_vol);

/// density0 <- density1 etc. over `box` (+ghosts handled by caller box).
void reset_field(vgpu::Device& dev, vgpu::Stream& s, const mesh::Box& box,
                 View density0, View density1, View energy0, View energy1,
                 View xvel0, View xvel1, View yvel0, View yvel1);

/// Total mass / internal energy / kinetic energy over `box` (device
/// reduction; diagnostics and conservation tests).
struct FieldSummary {
  double mass = 0.0;
  double internal_energy = 0.0;
  double kinetic_energy = 0.0;
};
FieldSummary field_summary(vgpu::Device& dev, vgpu::Stream& s,
                           const mesh::Box& box, const CellGeom& g,
                           View density0, View energy0, View xvel0, View yvel0);

}  // namespace ramr::hydro
