#include "hydro/riemann.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ramr::hydro {

RiemannSolution::RiemannSolution(const PrimitiveState& l,
                                 const PrimitiveState& r, double gamma)
    : left_(l), right_(r), gamma_(gamma) {
  RAMR_REQUIRE(l.rho > 0.0 && r.rho > 0.0 && l.p > 0.0 && r.p > 0.0,
               "Riemann states must have positive density and pressure");
  // Newton iteration for the star pressure (Toro ch. 4), starting from
  // the two-rarefaction approximation.
  const double cl = std::sqrt(gamma_ * l.p / l.rho);
  const double cr = std::sqrt(gamma_ * r.p / r.rho);
  const double g1 = (gamma_ - 1.0) / (2.0 * gamma_);
  double p = std::pow((cl + cr - 0.5 * (gamma_ - 1.0) * (r.u - l.u)) /
                          (cl / std::pow(l.p, g1) + cr / std::pow(r.p, g1)),
                      1.0 / g1);
  p = std::max(p, 1.0e-12);
  for (int it = 0; it < 60; ++it) {
    const double f = f_k(p, left_) + f_k(p, right_) + (right_.u - left_.u);
    const double df = df_k(p, left_) + df_k(p, right_);
    const double next = std::max(p - f / df, 1.0e-14);
    if (std::fabs(next - p) < 1.0e-14 * (next + p)) {
      p = next;
      break;
    }
    p = next;
  }
  p_star_ = p;
  u_star_ = 0.5 * (left_.u + right_.u) +
            0.5 * (f_k(p, right_) - f_k(p, left_));
}

double RiemannSolution::f_k(double p, const PrimitiveState& s) const {
  const double c = std::sqrt(gamma_ * s.p / s.rho);
  if (p > s.p) {
    // Shock.
    const double a = 2.0 / ((gamma_ + 1.0) * s.rho);
    const double b = (gamma_ - 1.0) / (gamma_ + 1.0) * s.p;
    return (p - s.p) * std::sqrt(a / (p + b));
  }
  // Rarefaction.
  return 2.0 * c / (gamma_ - 1.0) *
         (std::pow(p / s.p, (gamma_ - 1.0) / (2.0 * gamma_)) - 1.0);
}

double RiemannSolution::df_k(double p, const PrimitiveState& s) const {
  const double c = std::sqrt(gamma_ * s.p / s.rho);
  if (p > s.p) {
    const double a = 2.0 / ((gamma_ + 1.0) * s.rho);
    const double b = (gamma_ - 1.0) / (gamma_ + 1.0) * s.p;
    return std::sqrt(a / (b + p)) * (1.0 - 0.5 * (p - s.p) / (b + p));
  }
  return 1.0 / (s.rho * c) * std::pow(p / s.p, -(gamma_ + 1.0) / (2.0 * gamma_));
}

PrimitiveState RiemannSolution::sample(double xt) const {
  const double g = gamma_;
  // Left of the contact.
  if (xt <= u_star_) {
    const PrimitiveState& s = left_;
    const double c = std::sqrt(g * s.p / s.rho);
    if (p_star_ > s.p) {
      // Left shock.
      const double ratio = p_star_ / s.p;
      const double shock_speed =
          s.u - c * std::sqrt((g + 1.0) / (2.0 * g) * ratio +
                              (g - 1.0) / (2.0 * g));
      if (xt < shock_speed) {
        return s;
      }
      PrimitiveState out;
      out.rho = s.rho * (ratio + (g - 1.0) / (g + 1.0)) /
                ((g - 1.0) / (g + 1.0) * ratio + 1.0);
      out.u = u_star_;
      out.p = p_star_;
      return out;
    }
    // Left rarefaction.
    const double c_star = c * std::pow(p_star_ / s.p, (g - 1.0) / (2.0 * g));
    if (xt < s.u - c) {
      return s;
    }
    if (xt > u_star_ - c_star) {
      PrimitiveState out;
      out.rho = s.rho * std::pow(p_star_ / s.p, 1.0 / g);
      out.u = u_star_;
      out.p = p_star_;
      return out;
    }
    // Inside the fan.
    PrimitiveState out;
    const double v = 2.0 / (g + 1.0) * (c + (g - 1.0) / 2.0 * s.u + xt);
    const double cf = v - xt;
    out.rho = s.rho * std::pow(cf / c, 2.0 / (g - 1.0));
    out.u = v;
    out.p = s.p * std::pow(cf / c, 2.0 * g / (g - 1.0));
    return out;
  }
  // Right of the contact (mirrored logic).
  const PrimitiveState& s = right_;
  const double c = std::sqrt(g * s.p / s.rho);
  if (p_star_ > s.p) {
    // Right shock.
    const double ratio = p_star_ / s.p;
    const double shock_speed =
        s.u + c * std::sqrt((g + 1.0) / (2.0 * g) * ratio +
                            (g - 1.0) / (2.0 * g));
    if (xt > shock_speed) {
      return s;
    }
    PrimitiveState out;
    out.rho = s.rho * (ratio + (g - 1.0) / (g + 1.0)) /
              ((g - 1.0) / (g + 1.0) * ratio + 1.0);
    out.u = u_star_;
    out.p = p_star_;
    return out;
  }
  // Right rarefaction.
  const double c_star = c * std::pow(p_star_ / s.p, (g - 1.0) / (2.0 * g));
  if (xt > s.u + c) {
    return s;
  }
  if (xt < u_star_ + c_star) {
    PrimitiveState out;
    out.rho = s.rho * std::pow(p_star_ / s.p, 1.0 / g);
    out.u = u_star_;
    out.p = p_star_;
    return out;
  }
  PrimitiveState out;
  const double v = 2.0 / (g + 1.0) * (-c + (g - 1.0) / 2.0 * s.u + xt);
  const double cf = xt - v;
  out.rho = s.rho * std::pow(cf / c, 2.0 / (g - 1.0));
  out.u = v;
  out.p = s.p * std::pow(cf / c, 2.0 * g / (g - 1.0));
  return out;
}

}  // namespace ramr::hydro
