// Minimal leveled, rank-aware logger.
//
// Ranks in this codebase are threads (simmpi::World), so the rank
// prefix is thread-local: World::run stamps each rank thread once and
// every message from that thread carries "[rank N]" automatically. All
// output goes to stderr — stdout is reserved for machine-readable
// reports (run_report_json piped into tools), which log lines must not
// corrupt. The initial level comes from the RAMR_LOG_LEVEL environment
// variable ("debug"/"info"/"warn"/"error"); a config can override it
// via "observability".log_level (docs/observability.md).
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace ramr::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Parses a level name ("debug"/"info"/"warn"/"error"); throws
/// util::Error on anything else.
LogLevel parse_log_level(const std::string& name);

/// Process-wide logger. Thread safe; messages below the configured level
/// are discarded.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Rank prefix for the calling thread; negative clears it (the
  /// default — single-rank runs log unprefixed).
  static void set_thread_rank(int rank);
  static int thread_rank();

  /// Redirects output (tests); null restores the default (stderr).
  void set_stream(std::ostream* os);

  void write(LogLevel level, const std::string& message);

 private:
  Logger();
  std::mutex mutex_;
  LogLevel level_ = LogLevel::kInfo;
  std::ostream* stream_ = nullptr;
};

namespace detail {
const char* level_name(LogLevel level);
}  // namespace detail

}  // namespace ramr::util

#define RAMR_LOG(lvl, msg)                                              \
  do {                                                                  \
    if (static_cast<int>(lvl) >=                                        \
        static_cast<int>(::ramr::util::Logger::instance().level())) {   \
      std::ostringstream ramr_log_oss_;                                 \
      ramr_log_oss_ << msg;                                             \
      ::ramr::util::Logger::instance().write(lvl, ramr_log_oss_.str()); \
    }                                                                   \
  } while (false)

#define RAMR_LOG_DEBUG(msg) RAMR_LOG(::ramr::util::LogLevel::kDebug, msg)
#define RAMR_LOG_INFO(msg) RAMR_LOG(::ramr::util::LogLevel::kInfo, msg)
#define RAMR_LOG_WARN(msg) RAMR_LOG(::ramr::util::LogLevel::kWarn, msg)
#define RAMR_LOG_ERROR(msg) RAMR_LOG(::ramr::util::LogLevel::kError, msg)
