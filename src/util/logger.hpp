// Minimal leveled logger. Rank-aware output is handled by the caller
// (simmpi prefixes messages with the rank when running distributed).
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace ramr::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide logger. Thread safe; messages below the configured level
/// are discarded.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  std::mutex mutex_;
  LogLevel level_ = LogLevel::kInfo;
};

namespace detail {
const char* level_name(LogLevel level);
}  // namespace detail

}  // namespace ramr::util

#define RAMR_LOG(lvl, msg)                                              \
  do {                                                                  \
    if (static_cast<int>(lvl) >=                                        \
        static_cast<int>(::ramr::util::Logger::instance().level())) {   \
      std::ostringstream ramr_log_oss_;                                 \
      ramr_log_oss_ << msg;                                             \
      ::ramr::util::Logger::instance().write(lvl, ramr_log_oss_.str()); \
    }                                                                   \
  } while (false)

#define RAMR_LOG_DEBUG(msg) RAMR_LOG(::ramr::util::LogLevel::kDebug, msg)
#define RAMR_LOG_INFO(msg) RAMR_LOG(::ramr::util::LogLevel::kInfo, msg)
#define RAMR_LOG_WARN(msg) RAMR_LOG(::ramr::util::LogLevel::kWarn, msg)
#define RAMR_LOG_ERROR(msg) RAMR_LOG(::ramr::util::LogLevel::kError, msg)
