// A process-wide worker pool used to execute virtual-GPU kernels and
// host-side parallel loops for real (the timing of those operations is
// modeled separately; see vgpu/device.hpp).
//
// The pool follows CP.23/CP.25 of the C++ Core Guidelines in spirit:
// parallel_for is a fully joining (structured) operation — no detached
// work ever escapes a call.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ramr::util {

/// Fixed-size worker pool executing blocking parallel-for loops.
class ThreadPool {
 public:
  /// Creates `workers` threads (defaults to hardware concurrency).
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned worker_count() const { return static_cast<unsigned>(threads_.size()); }

  /// Executes body(begin, end) over [0, n) split into contiguous chunks,
  /// one or more per worker. Blocks until every chunk completed. Reentrant
  /// calls from inside a body are executed serially on the caller.
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t, std::int64_t)>& body);

  /// The process-wide pool shared by every virtual device and host
  /// executor. Created on first use.
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(std::int64_t, std::int64_t)>* body = nullptr;
    std::int64_t n = 0;
    std::int64_t chunk = 0;
    std::int64_t next = 0;       // next chunk start to claim
    std::int64_t remaining = 0;  // chunks not yet finished
    std::uint64_t id = 0;
  };

  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Task task_;
  std::uint64_t next_task_id_ = 1;
  bool has_task_ = false;
  bool stop_ = false;
  thread_local static bool inside_pool_;
};

}  // namespace ramr::util
