// Error handling primitives used across the ramr library.
//
// Following the C++ Core Guidelines (E.2, E.3) we throw exceptions for
// errors that callers can reasonably handle, and terminate via the
// always-on RAMR_REQUIRE check for contract violations that indicate a
// programming error. Hot-loop bounds checks use RAMR_DEBUG_ASSERT, which
// compiles away in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ramr::util {

/// Exception type thrown by all ramr components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void fail(const char* kind, const char* expr, const char* file,
                       int line, const std::string& message);
}  // namespace detail

}  // namespace ramr::util

/// Always-on contract check. Evaluates `expr`; on failure throws
/// ramr::util::Error with location information and the given message
/// (streamed, so `RAMR_REQUIRE(n > 0, "bad n: " << n)` works).
#define RAMR_REQUIRE(expr, msg)                                            \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream ramr_require_oss_;                                \
      ramr_require_oss_ << msg;                                            \
      ::ramr::util::detail::fail("requirement", #expr, __FILE__, __LINE__, \
                                 ramr_require_oss_.str());                 \
    }                                                                      \
  } while (false)

/// Unconditional failure with message.
#define RAMR_FAIL(msg)                                                   \
  do {                                                                   \
    std::ostringstream ramr_fail_oss_;                                   \
    ramr_fail_oss_ << msg;                                               \
    ::ramr::util::detail::fail("failure", "(unreachable)", __FILE__,     \
                               __LINE__, ramr_fail_oss_.str());          \
  } while (false)

/// Debug-only assertion for hot paths (bounds checks in array views and
/// kernels). Enabled unless NDEBUG is defined.
#ifdef NDEBUG
#define RAMR_DEBUG_ASSERT(expr) ((void)0)
#else
#define RAMR_DEBUG_ASSERT(expr)                                          \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::ramr::util::detail::fail("assertion", #expr, __FILE__, __LINE__, \
                                 "");                                    \
    }                                                                    \
  } while (false)
#endif
