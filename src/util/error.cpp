#include "util/error.hpp"

namespace ramr::util::detail {

[[noreturn]] void fail(const char* kind, const char* expr, const char* file,
                       int line, const std::string& message) {
  std::ostringstream oss;
  oss << "ramr " << kind << " violated: " << expr;
  if (!message.empty()) {
    oss << " — " << message;
  }
  oss << " [" << file << ":" << line << "]";
  throw Error(oss.str());
}

}  // namespace ramr::util::detail
