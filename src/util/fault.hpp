// Deterministic fault injection (docs/fault_tolerance.md).
//
// A FaultPlan is a seeded schedule of failures injected at the modeled
// stack's layer boundaries: kernel launches and arena allocations on the
// virtual device, message drops/delays on the simulated wire, checkpoint
// write corruption, and whole-step exceptions. Every draw is a pure
// function of (seed, stream salt, site, event counter), so the same seed
// replays the identical fault schedule — recovery behaviour is testable
// bit for bit, and a recovered run can be asserted identical to a
// fault-free one.
//
// The plan deliberately lives in util (below vgpu/simmpi/app): the
// layers that inject consult it through a raw pointer they do not own.
// One plan instance follows one job across restarts — its event counters
// keep advancing through a recovery, so a probabilistic fault that
// killed a step does not deterministically re-fire on the replay.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ramr::util {

/// Injection sites, one per layer boundary that can fail.
enum class FaultSite : int {
  kLaunch = 0,     ///< vgpu::Device kernel launch (ECC-style, retryable)
  kAlloc,          ///< vgpu::Device arena allocation (transient OOM)
  kMessageDrop,    ///< simmpi send: first copy lost, retransmitted
  kMessageDelay,   ///< simmpi send: extra wire delay on the net lane
  kCheckpointWrite,///< checkpoint file corrupted (torn write / bit rot)
  kStep,           ///< whole job step throws before any work
};
inline constexpr int kFaultSiteCount = 6;

const char* fault_site_name(FaultSite site);

/// When one site injects. Two trigger families compose:
///  - per-EVENT: `probability` is drawn for every primitive event of the
///    site (every launch, every send, ...); `at_events` fires at the
///    given 0-based event indices exactly once each.
///  - per-STEP: `step_probability` is drawn once per simulation step
///    (keyed by the plan's begin_step call count, so a replayed step
///    after recovery gets a fresh draw); `at_steps` fires once at the
///    given step numbers. A step trigger ARMS the site: the next event
///    of that site within the run injects.
struct FaultSiteConfig {
  double probability = 0.0;
  double step_probability = 0.0;
  std::vector<int> at_steps;
  std::vector<std::int64_t> at_events;
  /// Cap on total injections for the site (-1 = unlimited).
  int max_injections = -1;

  bool active() const {
    return probability > 0.0 || step_probability > 0.0 || !at_steps.empty() ||
           !at_events.empty();
  }
};

/// A full fault schedule plus the knobs the injecting layers consult.
struct FaultConfig {
  std::uint64_t seed = 0;
  std::array<FaultSiteConfig, kFaultSiteCount> sites;

  /// ECC-style launch retries the device absorbs before a launch fault
  /// escapes as an exception (each retry charges one launch overhead).
  int launch_retries = 2;
  /// Extra wire seconds of an injected message delay.
  double message_delay_s = 1.0e-5;
  /// Retransmit timeout of a dropped message: the sender pays the
  /// timeout plus a second wire crossing; the payload still arrives.
  double drop_timeout_s = 1.0e-4;
  /// Bytes sliced off the end of a corrupted checkpoint file.
  int truncate_bytes = 512;

  FaultSiteConfig& site(FaultSite s) {
    return sites[static_cast<std::size_t>(s)];
  }
  const FaultSiteConfig& site(FaultSite s) const {
    return sites[static_cast<std::size_t>(s)];
  }
  bool enabled() const {
    for (const FaultSiteConfig& s : sites) {
      if (s.active()) {
        return true;
      }
    }
    return false;
  }
};

/// One job's (or rank's) live fault schedule. Not thread-safe: a plan
/// belongs to the single thread driving its simulation. Counters persist
/// for the plan's lifetime — keep the plan alive across job restarts so
/// recovery does not rewind the schedule.
class FaultPlan {
 public:
  /// `stream_salt` decorrelates plans sharing a seed (per-rank salt for
  /// distributed runs: same config, independent schedules).
  explicit FaultPlan(FaultConfig config, std::uint64_t stream_salt = 0);

  const FaultConfig& config() const { return config_; }

  /// Starts a simulation step: evaluates every site's step triggers
  /// (step_probability and at_steps) and arms the ones that fire. Call
  /// once per step attempt, before any site events.
  void begin_step(int step);

  /// One primitive event of `site`: returns true when a fault is
  /// injected (consuming an armed step trigger, an at_events match, or a
  /// per-event probability draw, in that order). Advances the site's
  /// event counter either way.
  bool should_inject(FaultSite site);

  /// Total events seen / faults injected per site and overall.
  std::uint64_t events(FaultSite site) const {
    return events_[static_cast<std::size_t>(site)];
  }
  std::uint64_t injected(FaultSite site) const {
    return injected_[static_cast<std::size_t>(site)];
  }
  std::uint64_t injected_total() const;

  /// Order-sensitive fingerprint of every injection (site, event index):
  /// two runs with equal hashes executed the identical fault schedule.
  std::uint64_t schedule_hash() const { return schedule_hash_; }

 private:
  double uniform(FaultSite site, std::uint64_t counter,
                 std::uint64_t stream) const;

  FaultConfig config_;
  std::uint64_t salt_;
  std::array<std::uint64_t, kFaultSiteCount> events_{};
  std::array<std::uint64_t, kFaultSiteCount> injected_{};
  std::array<bool, kFaultSiteCount> armed_{};
  /// Steps whose at_steps trigger already fired (each fires once, so a
  /// replayed step after recovery does not deterministically re-fail).
  std::array<std::vector<int>, kFaultSiteCount> fired_steps_;
  std::uint64_t steps_seen_ = 0;
  std::uint64_t schedule_hash_ = 1469598103934665603ull;  // FNV offset
};

}  // namespace ramr::util
