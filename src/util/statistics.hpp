// Small statistics helpers used by the performance reports.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace ramr::util {

/// Online accumulator for min/max/mean/sum of a stream of samples.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  void merge(const RunningStats& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Relative difference |a-b| / max(|a|,|b|,eps); used by validation tests.
inline double rel_diff(double a, double b, double eps = 1e-300) {
  const double denom = std::max({std::fabs(a), std::fabs(b), eps});
  return std::fabs(a - b) / denom;
}

}  // namespace ramr::util
