// Non-owning 2-D views over contiguous field storage.
//
// All mesh data in ramr (host or virtual-GPU resident) is stored as a
// contiguous row-major array covering an index box [lo, hi] (inclusive).
// ArrayView2D provides (i, j) indexing in *global* index space, so kernel
// code reads like the paper's CUDA listings (Figs. 5 and 8) but without
// manual offset arithmetic scattered through every kernel.
#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace ramr::util {

/// Non-owning view of a row-major 2-D array indexed in global coordinates.
/// The view covers columns [ilo, ilo+width) and rows [jlo, jlo+height).
template <typename T>
class ArrayView2D {
 public:
  ArrayView2D() = default;

  ArrayView2D(T* data, int ilo, int jlo, int width, int height)
      : data_(data), ilo_(ilo), jlo_(jlo), width_(width), height_(height) {}

  /// Element access in global index space.
  T& operator()(int i, int j) const {
    RAMR_DEBUG_ASSERT(contains(i, j));
    return data_[static_cast<std::int64_t>(j - jlo_) * width_ + (i - ilo_)];
  }

  bool contains(int i, int j) const {
    return i >= ilo_ && i < ilo_ + width_ && j >= jlo_ && j < jlo_ + height_;
  }

  T* data() const { return data_; }
  int ilo() const { return ilo_; }
  int jlo() const { return jlo_; }
  int width() const { return width_; }
  int height() const { return height_; }
  std::int64_t size() const {
    return static_cast<std::int64_t>(width_) * height_;
  }

  /// Reinterpret as a view of const elements.
  ArrayView2D<const T> as_const() const {
    return ArrayView2D<const T>(data_, ilo_, jlo_, width_, height_);
  }

 private:
  T* data_ = nullptr;
  int ilo_ = 0;
  int jlo_ = 0;
  int width_ = 0;
  int height_ = 0;
};

using View = ArrayView2D<double>;
using ConstView = ArrayView2D<const double>;

}  // namespace ramr::util
