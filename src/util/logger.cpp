#include "util/logger.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace ramr::util {

namespace {
thread_local int t_rank = -1;
}  // namespace

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  RAMR_FAIL("unknown log level \"" << name
            << "\" (expected debug/info/warn/error)");
}

Logger::Logger() {
  if (const char* env = std::getenv("RAMR_LOG_LEVEL")) {
    // A bad environment value must not abort every binary; keep the
    // default (configs that misspell a level DO fail — cfg validates).
    try {
      level_ = parse_log_level(env);
    } catch (const Error&) {
    }
  }
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_thread_rank(int rank) {
  t_rank = rank;
}

int Logger::thread_rank() {
  return t_rank;
}

void Logger::set_stream(std::ostream* os) {
  std::lock_guard<std::mutex> lock(mutex_);
  stream_ = os;
}

void Logger::write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostream& os = stream_ != nullptr ? *stream_ : std::cerr;
  os << "[" << detail::level_name(level) << "] ";
  if (t_rank >= 0) {
    os << "[rank " << t_rank << "] ";
  }
  os << message << "\n";
}

namespace detail {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info ";
    case LogLevel::kWarn:
      return "warn ";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}
}  // namespace detail

}  // namespace ramr::util
